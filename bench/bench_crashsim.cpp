// Crash-sweep throughput and recovery-cost distribution. For each scenario: how many crash
// points the harness explores, how fast the sweep runs (wall-clock points/sec — the cost of
// using the harness in CI), and the distribution of *simulated* recovery time across crash
// points (what a real power cycle would cost at each point in the workload's history).
//
// Each scenario runs twice: write-through (clean/torn/corrupt points only) and behind the
// volatile write-back cache (adding destage-reordering points). The --json=PATH summary
// ("vlog-crash-sweep/1": points, violations, seeds per row) is the CI artifact that documents
// exactly which crash states each run covered; --seed=N replays a failing randomized sweep.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/crashsim/harness.h"
#include "src/crashsim/scenarios.h"
#include "src/obs/json.h"

namespace {

using namespace vlog;

struct SweepRow {
  std::string scenario;
  bool cached = false;
  crashsim::CrashSweepReport report;
  double wall_seconds = 0;
};

void PrintRow(const SweepRow& row) {
  const crashsim::CrashSweepReport& r = row.report;
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL %s%s: %llu invariant violations\n%s\n", row.scenario.c_str(),
                 row.cached ? " (cached)" : "", static_cast<unsigned long long>(r.violations),
                 r.Summary().c_str());
    std::exit(1);
  }
  const double rate =
      row.wall_seconds > 0 ? static_cast<double>(r.points) / row.wall_seconds : 0;
  std::printf("%-24s %-7s | %6llu %6llu %6llu %6llu %7llu | %8.0f | %s\n", row.scenario.c_str(),
              row.cached ? "cached" : "direct", static_cast<unsigned long long>(r.points),
              static_cast<unsigned long long>(r.clean_points),
              static_cast<unsigned long long>(r.torn_points),
              static_cast<unsigned long long>(r.corrupt_points),
              static_cast<unsigned long long>(r.reorder_points), rate, r.Summary().c_str());
}

// The artifact CI uploads next to the other BENCH_*.json files: which crash states this run
// explored, whether any invariant broke, and the seeds needed to replay it exactly.
std::string SummaryJson(const std::vector<SweepRow>& rows) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("vlog-crash-sweep/1");
  w.Key("rows");
  w.BeginArray();
  for (const SweepRow& row : rows) {
    const crashsim::CrashSweepReport& r = row.report;
    w.BeginObject();
    w.Key("scenario");
    w.String(row.scenario);
    w.Key("cached");
    w.UInt(row.cached ? 1 : 0);
    w.Key("points");
    w.UInt(r.points);
    w.Key("clean");
    w.UInt(r.clean_points);
    w.Key("torn");
    w.UInt(r.torn_points);
    w.Key("corrupt");
    w.UInt(r.corrupt_points);
    w.Key("reorder");
    w.UInt(r.reorder_points);
    w.Key("violations");
    w.UInt(r.violations);
    w.Key("seed");
    w.UInt(r.seed);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s (known: --smoke --json=PATH --seed=N)\n", argv[i]);
      return 2;
    }
  }

  crashsim::CrashSweepOptions options;
  options.enumerate.seed = seed;
  options.reorder.seed = seed;
  if (smoke) {
    options.reorder.samples_per_epoch = 6;  // Halve the sampled reorder states for CI.
  }

  bench::Header("Crash sweep: points explored, wall-clock rate, recovery-time distribution");
  std::printf("%-24s %-7s | %6s %6s %6s %6s %7s | %8s | summary\n", "scenario", "device",
              "points", "clean", "torn", "corru", "reorder", "pts/sec");

  std::vector<SweepRow> rows;
  const auto run = [&](const char* name, bool cached, const auto& sweep) {
    const auto t0 = std::chrono::steady_clock::now();
    SweepRow row;
    row.scenario = name;
    row.cached = cached;
    row.report = sweep();
    row.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    PrintRow(row);
    rows.push_back(std::move(row));
  };

  for (const bool cached : {false, true}) {
    const simdisk::DiskParams params =
        cached ? crashsim::CrashSimCachedDiskParams() : crashsim::CrashSimDiskParams();
    for (const auto scenario :
         {crashsim::VldScenario::kUfsOnVld, crashsim::VldScenario::kCompactorActive,
          crashsim::VldScenario::kCheckpointInterrupted,
          crashsim::VldScenario::kQueuedGroupCommit,
          crashsim::VldScenario::kQueuedMixedReadWrite,
          crashsim::VldScenario::kLfsOnVld}) {
      run(crashsim::VldScenarioName(scenario), cached, [&] {
        crashsim::VldCrashSim sim(params, crashsim::CrashSimVldConfig());
        bench::Check(crashsim::RecordVldScenario(scenario, sim), "record");
        return sim.Sweep(options);
      });
    }
    run("vlfs-script", cached, [&] {
      crashsim::VlfsCrashSim sim(params, crashsim::CrashSimVlfsConfig());
      bench::Check(sim.Record(crashsim::VlfsScenarioScript()), "record");
      return sim.Sweep(options);
    });
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    const std::string json = SummaryJson(rows);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("crash-sweep summary written to %s\n", json_path.c_str());
  }
  return 0;
}
