// Crash-sweep throughput and recovery-cost distribution. For each scenario: how many crash
// points the harness explores, how fast the sweep runs (wall-clock points/sec — the cost of
// using the harness in CI), and the distribution of *simulated* recovery time across crash
// points (what a real power cycle would cost at each point in the workload's history).
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/crashsim/harness.h"
#include "src/crashsim/scenarios.h"

namespace {

using namespace vlog;

void PrintReport(const char* name, const crashsim::CrashSweepReport& report,
                 double wall_seconds) {
  if (!report.ok()) {
    std::fprintf(stderr, "FATAL %s: %llu invariant violations\n%s\n", name,
                 static_cast<unsigned long long>(report.violations), report.Summary().c_str());
    std::exit(1);
  }
  const double rate = wall_seconds > 0 ? static_cast<double>(report.points) / wall_seconds : 0;
  std::printf("%-24s | %6llu %6llu %6llu %6llu | %8.0f | %s\n", name,
              static_cast<unsigned long long>(report.points),
              static_cast<unsigned long long>(report.clean_points),
              static_cast<unsigned long long>(report.torn_points),
              static_cast<unsigned long long>(report.corrupt_points), rate,
              report.Summary().c_str());
}

template <typename Sweep>
void Run(const char* name, const Sweep& sweep) {
  const auto t0 = std::chrono::steady_clock::now();
  const crashsim::CrashSweepReport report = sweep();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  PrintReport(name, report, wall);
}

}  // namespace

int main() {
  bench::Header("Crash sweep: points explored, wall-clock rate, recovery-time distribution");
  std::printf("%-24s | %6s %6s %6s %6s | %8s | summary\n", "scenario", "points", "clean",
              "torn", "corru", "pts/sec");

  for (const auto scenario :
       {crashsim::VldScenario::kUfsOnVld, crashsim::VldScenario::kCompactorActive,
        crashsim::VldScenario::kCheckpointInterrupted,
        crashsim::VldScenario::kQueuedGroupCommit, crashsim::VldScenario::kLfsOnVld}) {
    Run(crashsim::VldScenarioName(scenario), [&] {
      crashsim::VldCrashSim sim(crashsim::CrashSimDiskParams(), crashsim::CrashSimVldConfig());
      bench::Check(crashsim::RecordVldScenario(scenario, sim), "record");
      return sim.Sweep(crashsim::CrashSweepOptions{});
    });
  }
  Run("vlfs-script", [] {
    crashsim::VlfsCrashSim sim(crashsim::CrashSimDiskParams(), crashsim::CrashSimVlfsConfig());
    bench::Check(sim.Record(crashsim::VlfsScenarioScript()), "record");
    return sim.Sweep(crashsim::CrashSweepOptions{});
  });
  return 0;
}
