// Multi-disk virtual-log array: striped write-scaling across N member disks and mirrored
// healthy-vs-degraded read latency. The striped leg runs the closed-loop random-update driver
// (16 streams, cross-disk group commit: one packed virtual-log commit per touched member per
// batch) over N in {1, 2, 4, 8} identical members and reports IOPS plus p50/p99; the N = 1 row
// must produce exactly the IOPS of the same sequence against a bare member VLD — the array
// layer dissolves completely at N = 1. The mirrored leg prepopulates a 2-way mirror, measures
// read-balanced healthy reads, fails one replica, and measures the degraded path, verifying
// every payload both ways.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/array/vld_array.h"
#include "src/common/time.h"
#include "src/core/vld.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"
#include "src/workload/array_sweep.h"

namespace {

using namespace vlog;

constexpr uint64_t kSeed = 2;
constexpr uint32_t kDepth = 16;

// One member's full stack: its own clock, disk, and VLD, heap-held so the disk's clock pointer
// stays valid as the collection grows.
struct Stack {
  common::Clock clock;
  std::unique_ptr<simdisk::SimDisk> disk;
  std::unique_ptr<core::Vld> vld;
};

std::vector<std::unique_ptr<Stack>> MakeStacks(uint32_t n) {
  std::vector<std::unique_ptr<Stack>> stacks;
  for (uint32_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Stack>();
    s->disk = std::make_unique<simdisk::SimDisk>(simdisk::Truncated(simdisk::Hp97560(), 36),
                                                 &s->clock);
    s->vld = std::make_unique<core::Vld>(s->disk.get(), core::VldConfig{.queue_depth = 32});
    stacks.push_back(std::move(s));
  }
  return stacks;
}

std::vector<core::Vld*> Members(const std::vector<std::unique_ptr<Stack>>& stacks) {
  std::vector<core::Vld*> members;
  for (const auto& s : stacks) {
    members.push_back(s->vld.get());
  }
  return members;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv);
  const int updates = flags.smoke ? 300 : 1500;
  const int warmup = flags.smoke ? 48 : 192;
  const int reads = flags.smoke ? 200 : 1000;
  bench::Header("Virtual-log array: striped scaling and mirrored degraded reads, HP97560 members");
  bench::MetricsReport report("array");

  // --- Striped scaling: N in {1, 2, 4, 8}, write-heavy closed loop, depth 16 ---
  bench::Note("Striped write scaling (16 streams, one packed group commit per member per batch):");
  bench::PrintPercentileHeader();
  // All runs share the N = 1 array's region so the request sequence is identical across N and
  // against the bare-member baseline (only the data layout changes).
  uint32_t region_blocks = 0;
  double prev_iops = 0;
  double iops_n1 = 0;
  bool monotonic = true;
  // The N = 2 leg carries the per-member timeline: array-level gauges plus every member's
  // VLD/disk series under "m0."/"m1.", polled at each batch boundary with the barrier time.
  std::string array_timeline_json;
  size_t array_windows = 0;
  for (uint32_t n : {1u, 2u, 4u, 8u}) {
    auto stacks = MakeStacks(n);
    array::VldArray array(Members(stacks), {.mode = array::ArrayMode::kStriped});
    bench::Check(array.Format(), "array format");
    if (region_blocks == 0) {
      region_blocks =
          static_cast<uint32_t>(array.SectorCount() / array.block_sectors()) / 2;
    }
    std::unique_ptr<obs::Timeline> timeline;
    obs::WindowedHistogram* latency = nullptr;
    if (n == 2) {
      timeline = std::make_unique<obs::Timeline>(obs::TimelineConfig{
          .window = common::Milliseconds(100), .start = array.now()});
      latency = &timeline->AddHistogram("latency");
      array.RegisterTimelineProbes(*timeline);
      timeline->AddSteadySeries("m0.vld.free_blocks");
      timeline->AddSteadySeries("m1.vld.free_blocks");
    }
    const workload::ArraySweepResult r = bench::CheckOk(
        workload::RunArrayRandomUpdates(array, kDepth, updates, warmup, kSeed, region_blocks,
                                        timeline.get(), latency),
        "striped sweep");
    if (timeline != nullptr) {
      timeline->Finish(array.now());
      array_timeline_json = timeline->Json();
      array_windows = timeline->windows().size();
    }
    char label[32];
    std::snprintf(label, sizeof(label), "striped/N=%u", n);
    bench::PrintPercentileRow(label, r.iops, r.latency_hist);
    report.AddRow(label, r.iops, r.latency_hist, obs::TimeBreakdown{},
                  {{"members", static_cast<double>(n)},
                   {"depth", static_cast<double>(kDepth)},
                   {"region_blocks", static_cast<double>(region_blocks)}});
    monotonic &= r.iops + 1e-9 >= prev_iops;
    prev_iops = r.iops;
    if (n == 1) {
      iops_n1 = r.iops;
    }
  }

  // The bare-member baseline for the N = 1 identity gate: the same streams, seed, and region
  // through a single Vld's queue with no array layer in the path.
  double iops_bare = 0;
  {
    auto stacks = MakeStacks(1);
    bench::Check(stacks[0]->vld->Format(), "bare format");
    const workload::ArraySweepResult r = bench::CheckOk(
        workload::RunArrayRandomUpdates(*stacks[0]->vld, kDepth, updates, warmup, kSeed,
                                        region_blocks),
        "bare sweep");
    bench::PrintPercentileRow("bare-vld", r.iops, r.latency_hist);
    report.AddRow("bare-vld", r.iops, r.latency_hist, obs::TimeBreakdown{},
                  {{"members", 1.0},
                   {"depth", static_cast<double>(kDepth)},
                   {"region_blocks", static_cast<double>(region_blocks)}});
    iops_bare = r.iops;
  }

  // --- Mirrored: healthy (read-balanced) vs degraded (one replica failed) random reads ---
  bench::Note("\nMirrored 2-way random reads, healthy vs degraded (replica 0 failed):");
  bench::PrintPercentileHeader();
  auto stacks = MakeStacks(2);
  array::VldArray mirror(Members(stacks), {.mode = array::ArrayMode::kMirrored});
  bench::Check(mirror.Format(), "mirror format");
  const uint32_t mirror_region = std::min<uint32_t>(
      static_cast<uint32_t>(mirror.SectorCount() / mirror.block_sectors()) / 2, 512);
  bench::Check(workload::PrepopulateArray(mirror, mirror_region), "mirror prepopulate");
  const workload::ArrayReadResult healthy = bench::CheckOk(
      workload::RunArrayRandomReads(mirror, reads, /*seed=*/3, mirror_region), "healthy reads");
  bench::PrintPercentileRow("mirror/healthy", healthy.iops, healthy.latency_hist);
  bench::Check(mirror.MarkFailed(0), "fail replica");
  const workload::ArrayReadResult degraded = bench::CheckOk(
      workload::RunArrayRandomReads(mirror, reads, /*seed=*/3, mirror_region), "degraded reads");
  bench::PrintPercentileRow("mirror/degraded", degraded.iops, degraded.latency_hist);
  report.AddRow("mirror/healthy", healthy.iops, healthy.latency_hist, obs::TimeBreakdown{},
                {{"members", 2.0},
                 {"failed", 0.0},
                 {"payloads_ok", healthy.payloads_ok ? 1.0 : 0.0},
                 {"region_blocks", static_cast<double>(mirror_region)}});
  report.AddRow("mirror/degraded", degraded.iops, degraded.latency_hist, obs::TimeBreakdown{},
                {{"members", 2.0},
                 {"failed", 1.0},
                 {"payloads_ok", degraded.payloads_ok ? 1.0 : 0.0},
                 {"region_blocks", static_cast<double>(mirror_region)}});

  // Acceptance gates: striped IOPS monotonically non-decreasing N = 1 -> 8, the N = 1 array
  // exactly matching the bare member (bit-for-bit clock identity implies bit-for-bit IOPS),
  // and every mirrored read — healthy and degraded — returning the right payload.
  bench::Note("");
  const bool n1_identity = iops_n1 == iops_bare;
  const bool payloads = healthy.payloads_ok && degraded.payloads_ok;
  const bool timeline_ok = array_windows >= 1;
  std::printf("striped IOPS monotonically non-decreasing in N: %s\n", monotonic ? "yes" : "NO");
  std::printf("N=1 array IOPS == bare VLD exactly: %s (%.3f vs %.3f)\n",
              n1_identity ? "yes" : "NO", iops_n1, iops_bare);
  std::printf("mirrored read payloads correct (healthy and degraded): %s\n",
              payloads ? "yes" : "NO");
  std::printf("N=2 per-member timeline has windows: %s (%zu)\n", timeline_ok ? "yes" : "NO",
              array_windows);
  if (!monotonic || !n1_identity || !payloads || !timeline_ok) {
    std::fprintf(stderr, "FATAL: array acceptance gates failed\n");
    return 1;
  }

  bench::Note("\nStriping spreads the eager-write fan-out so a deep queue's batch lands as one");
  bench::Note("packed commit per member behind the cross-disk barrier; mirroring trades that");
  bench::Note("scaling for redundancy, and a failed replica only removes the read balance.");
  report.MaybeWrite(flags);
  bench::MaybeWriteTimeline(flags, array_timeline_json);
  return 0;
}
