// Google-benchmark microbenchmarks for the hot paths of the implementation itself (wall-clock
// CPU cost, not simulated disk time): record codecs, allocation decisions, VLD writes, and
// recovery. These guard the "runs at memory speed" assumption behind the simulation engine.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/core/map_sector.h"
#include "src/core/vld.h"
#include "src/models/analytic.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"
#include "src/simdisk/host_model.h"
#include "src/ufs/ufs.h"

namespace {

using namespace vlog;

void BM_Crc32c_512B(benchmark::State& state) {
  std::vector<std::byte> data(512, std::byte{0x5a});
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::Crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * 512);
}
BENCHMARK(BM_Crc32c_512B);

void BM_MapSectorSerialize(benchmark::State& state) {
  core::MapSector sector;
  sector.seq = 42;
  sector.piece = 3;
  sector.entries.assign(core::kEntriesPerSector, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sector.Serialize());
  }
}
BENCHMARK(BM_MapSectorSerialize);

void BM_MapSectorParse(benchmark::State& state) {
  core::MapSector sector;
  sector.seq = 42;
  sector.entries.assign(core::kEntriesPerSector, 7);
  const auto raw = sector.Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MapSector::Parse(raw));
  }
}
BENCHMARK(BM_MapSectorParse);

void BM_CylinderModelEval(benchmark::State& state) {
  double p = 0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::SingleCylinderSkips(p, 256, 16, 21.0));
  }
}
BENCHMARK(BM_CylinderModelEval);

void BM_VldWrite4K(benchmark::State& state) {
  common::Clock clock;
  simdisk::SimDisk raw(simdisk::Truncated(simdisk::SeagateSt19101(), 11), &clock);
  core::Vld vld(&raw);
  if (!vld.Format().ok()) {
    state.SkipWithError("format failed");
    return;
  }
  std::vector<std::byte> block(4096, std::byte{1});
  common::Rng rng(1);
  const uint32_t blocks = vld.logical_blocks() / 2;
  for (auto _ : state) {
    if (!vld.Write(rng.Below(blocks) * 8, block).ok()) {
      state.SkipWithError("write failed");
      return;
    }
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_VldWrite4K);

void BM_VldParkedRecovery(benchmark::State& state) {
  common::Clock clock;
  simdisk::SimDisk raw(simdisk::Truncated(simdisk::SeagateSt19101(), 11), &clock);
  {
    core::Vld vld(&raw);
    if (!vld.Format().ok()) {
      state.SkipWithError("format failed");
      return;
    }
    std::vector<std::byte> block(4096, std::byte{1});
    common::Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
      (void)vld.Write(rng.Below(vld.logical_blocks()) * 8, block).ok();
    }
    (void)vld.Park().ok();
  }
  for (auto _ : state) {
    state.PauseTiming();
    // Recovery clears the park record; re-park so every iteration takes the fast path.
    {
      core::Vld vld(&raw);
      (void)vld.Recover().ok();
      (void)vld.Park().ok();
    }
    state.ResumeTiming();
    core::Vld vld(&raw);
    auto info = vld.Recover();
    if (!info.ok() || info->used_scan) {
      state.SkipWithError("unexpected scan recovery");
      return;
    }
    state.PauseTiming();
    (void)vld.Park().ok();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_VldParkedRecovery)->Unit(benchmark::kMillisecond);

void BM_UfsCreateDelete(benchmark::State& state) {
  common::Clock clock;
  simdisk::SimDisk raw(simdisk::Truncated(simdisk::SeagateSt19101(), 11), &clock);
  simdisk::HostModel host(simdisk::ZeroCostHost(), &clock);
  ufs::Ufs fs(&raw, &host, ufs::UfsConfig{.blocks_per_cg = 512});
  if (!fs.Format().ok()) {
    state.SkipWithError("format failed");
    return;
  }
  int i = 0;
  for (auto _ : state) {
    const std::string path = "/f" + std::to_string(i++ % 64);
    if (!fs.Create(path).ok() || !fs.Remove(path).ok()) {
      state.SkipWithError("fs op failed");
      return;
    }
  }
}
BENCHMARK(BM_UfsCreateDelete);

}  // namespace

BENCHMARK_MAIN();
