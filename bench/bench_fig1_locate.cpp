// Figure 1: average time to locate the first free sector as a function of disk utilization —
// the single-cylinder analytical model (formula 2) against a Monte-Carlo simulation, for both
// disks. The paper's headline: latency ~ used/free ratio, and nearly an order of magnitude
// better on the newer Seagate because locate time scales with platter bandwidth.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/models/analytic.h"
#include "src/models/track_sim.h"
#include "src/simdisk/disk_params.h"

namespace {

struct DiskCase {
  vlog::simdisk::DiskParams params;
  double switch_sectors;  // Head switch expressed in sector times.
};

}  // namespace

int main() {
  using namespace vlog;
  bench::Header("Figure 1: time to locate a free sector vs disk utilization");
  const DiskCase cases[] = {
      {simdisk::Hp97560(), 0},
      {simdisk::SeagateSt19101(), 0},
  };
  common::Rng rng(20260706);

  std::printf("%-6s | %-25s | %-25s\n", "", "HP97560", "ST19101");
  std::printf("%-6s | %11s %11s | %11s %11s\n", "util%", "model(ms)", "sim(ms)", "model(ms)",
              "sim(ms)");
  for (int util = 0; util <= 95; util += 5) {
    const double p = 1.0 - util / 100.0;  // Free fraction.
    std::printf("%5d  |", util);
    for (const DiskCase& c : cases) {
      const auto& g = c.params.geometry;
      const double sector_ms = bench::Ms(c.params.SectorTime());
      const double s_sectors =
          static_cast<double>(c.params.head_switch) / c.params.SectorTime();
      const double model_ms =
          models::SingleCylinderSkips(p, g.sectors_per_track, g.tracks_per_cylinder, s_sectors) *
          sector_ms;
      const double sim_ms =
          models::SimulateCylinderSkips(p, g.sectors_per_track, g.tracks_per_cylinder, s_sectors,
                                        4000, rng) *
          sector_ms;
      std::printf(" %11.3f %11.3f |", model_ms, sim_ms);
    }
    std::printf("\n");
  }
  bench::Note("\nBaselines (update-in-place half rotation): HP 7.49 ms, Seagate 3.00 ms.");
  return 0;
}
