// Extension bench: VLFS (§3.3) on the Figure 8 workload.
//
// The paper deduces VLFS behaviour indirectly ("should approximate the performance of UFS on
// the VLD when we must write synchronously, while retaining the benefits of LFS"). Having
// implemented VLFS, we can measure it: random synchronous 4 KB updates vs utilization,
// side by side with UFS/VLD, plus a small-file run.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/host_model.h"
#include "src/simdisk/sim_disk.h"
#include "src/vlfs/vlfs.h"
#include "src/workload/benchmarks.h"
#include "src/workload/platform.h"

namespace {

using namespace vlog;

double VlfsUpdateMs(double target_util) {
  common::Clock clock;
  simdisk::SimDisk raw(simdisk::Truncated(simdisk::SeagateSt19101(), 11), &clock);
  simdisk::HostModel host(simdisk::SparcStation10(), &clock);
  vlfs::Vlfs fs(&raw, &host);
  bench::Check(fs.Format(), "format");

  // VLFS files are capped at ~4 MB (direct + single indirect); spread the working set over
  // several files to reach the target utilization.
  const uint64_t capacity = raw.geometry().CapacityBytes();
  const uint64_t total = static_cast<uint64_t>(capacity * target_util) / 4096 * 4096;
  const uint64_t per_file = 3ull << 20;
  const int files = static_cast<int>((total + per_file - 1) / per_file);
  std::vector<std::byte> chunk(64 << 10, std::byte{1});
  std::vector<uint64_t> file_sizes(files);
  for (int f = 0; f < files; ++f) {
    const std::string path = "/data" + std::to_string(f);
    bench::Check(fs.Create(path), "create");
    const uint64_t size = std::min<uint64_t>(per_file, total - f * per_file) / 4096 * 4096;
    file_sizes[f] = size;
    for (uint64_t off = 0; off < size; off += chunk.size()) {
      bench::Check(fs.Write(path, off,
                            std::span<const std::byte>(chunk).first(
                                std::min<uint64_t>(chunk.size(), size - off)),
                            fs::WritePolicy::kAsync),
                   "fill");
    }
  }
  bench::Check(fs.Sync(), "sync");

  common::Rng rng(4);
  std::vector<std::byte> block(4096);
  auto update = [&] {
    const int f = static_cast<int>(rng.Below(files));
    const uint64_t blocks = std::max<uint64_t>(1, file_sizes[f] / 4096);
    return fs.Write("/data" + std::to_string(f), rng.Below(blocks) * 4096, block,
                    fs::WritePolicy::kSync);
  };
  for (int i = 0; i < 100; ++i) {
    bench::Check(update(), "warmup");
  }
  fs.RunIdle(common::Seconds(30));
  const common::Time t0 = clock.Now();
  for (int i = 0; i < 200; ++i) {
    bench::Check(update(), "update");
  }
  return bench::Ms(clock.Now() - t0) / 200;
}

double UfsVldUpdateMs(double target_util) {
  workload::PlatformConfig config;
  config.disk_kind = workload::DiskKind::kVld;
  config.vld.target_empty_tracks = 1000;
  workload::Platform platform(config);
  bench::Check(platform.Format(), "format");
  const auto& sb = platform.ufs()->superblock();
  const uint64_t capacity = static_cast<uint64_t>(sb.cg_count) * sb.DataBlocksPerCg() * 4096;
  const uint64_t file_bytes = static_cast<uint64_t>(capacity * target_util) / 4096 * 4096;
  bench::Check(workload::FillFile(platform, "/d", file_bytes), "fill");
  common::Rng rng(4);
  std::vector<std::byte> block(4096);
  const uint64_t blocks = file_bytes / 4096;
  for (int i = 0; i < 100; ++i) {
    bench::Check(platform.fs().Write("/d", rng.Below(blocks) * 4096, block,
                                     fs::WritePolicy::kSync),
                 "warmup");
  }
  platform.RunIdle(common::Seconds(30));
  const common::Time t0 = platform.clock().Now();
  for (int i = 0; i < 200; ++i) {
    bench::Check(platform.fs().Write("/d", rng.Below(blocks) * 4096, block,
                                     fs::WritePolicy::kSync),
                 "update");
  }
  return bench::Ms(platform.clock().Now() - t0) / 200;
}

}  // namespace

int main() {
  bench::Header("Extension: VLFS vs UFS/VLD, synchronous 4 KB updates (ST19101, SPARC-10)");
  std::printf("%8s %14s %14s\n", "util", "UFS/VLD (ms)", "VLFS (ms)");
  for (const double util : {0.3, 0.5, 0.7}) {
    std::printf("%7.0f%% %14.3f %14.3f\n", util * 100, UfsVldUpdateMs(util), VlfsUpdateMs(util));
  }
  bench::Note("\nVLFS commits data + inode + inode-map atomically per synchronous write, yet");
  bench::Note("stays in the same latency class as UFS-on-VLD — §3.4's speculation, measured.");
  return 0;
}
