// Figure 6: small file performance — create, read back (after a cache flush), and delete 1500
// 1 KB files on empty disks, for the four configurations of Figure 5. Performance is shown
// normalized to UFS on the regular disk, as in the paper. Expected shape: the VLD speeds up
// the UFS create/delete phases dramatically (synchronous metadata becomes eager writes), reads
// are slightly worse on the VLD, and LFS (fully buffered) improves modestly on the VLD.
//
// Each configuration runs with a TraceRecorder attached, so the unified JSON report adds
// per-operation latency percentiles and the seek/rotation/transfer/host time decomposition on
// top of the paper's phase totals.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/benchmarks.h"
#include "src/workload/platform.h"

int main(int argc, char** argv) {
  using namespace vlog;
  using workload::DiskKind;
  using workload::FsKind;
  const bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv);
  const int files = flags.smoke ? 300 : 1500;
  bench::Header("Figure 6: small-file performance (1500 x 1 KB create/read/delete)");

  struct Config {
    const char* label;
    FsKind fs;
    DiskKind disk;
  };
  const Config configs[] = {
      {"UFS/regular", FsKind::kUfs, DiskKind::kRegular},
      {"UFS/VLD", FsKind::kUfs, DiskKind::kVld},
      {"LFS/regular", FsKind::kLfs, DiskKind::kRegular},
      {"LFS/VLD", FsKind::kLfs, DiskKind::kVld},
  };

  bench::MetricsReport report("fig6_smallfile");
  workload::SmallFileResult results[4];
  for (int i = 0; i < 4; ++i) {
    workload::PlatformConfig config;
    config.fs_kind = configs[i].fs;
    config.disk_kind = configs[i].disk;
    workload::Platform platform(config);
    bench::Check(platform.Format(), "format");
    obs::TraceRecorder tracer(&platform.clock());
    platform.AttachTracer(&tracer);
    results[i] = bench::CheckOk(workload::RunSmallFile(platform, files), configs[i].label);
    platform.AttachTracer(nullptr);
    const common::Duration total = results[i].create + results[i].read + results[i].remove;
    const double ops_per_s =
        total > 0 ? static_cast<double>(tracer.completed_spans()) / common::ToSeconds(total)
                  : 0;
    report.AddRow(configs[i].label, ops_per_s, tracer.latency_hist(), tracer.totals(),
                  {{"create_ms", bench::Ms(results[i].create)},
                   {"read_ms", bench::Ms(results[i].read)},
                   {"remove_ms", bench::Ms(results[i].remove)}});
  }

  const workload::SmallFileResult& base = results[0];
  std::printf("%-14s %12s %12s %12s %10s %8s %8s\n", "config", "create(ms)", "read(ms)",
              "delete(ms)", "x create", "x read", "x del");
  for (int i = 0; i < 4; ++i) {
    std::printf("%-14s %12.1f %12.1f %12.1f %10.2f %8.2f %8.2f\n", configs[i].label,
                bench::Ms(results[i].create), bench::Ms(results[i].read),
                bench::Ms(results[i].remove),
                static_cast<double>(base.create) / results[i].create,
                static_cast<double>(base.read) / results[i].read,
                static_cast<double>(base.remove) / results[i].remove);
  }
  bench::Note("\n(x columns are speedups normalized to UFS/regular, the paper's unit bar.)");
  report.MaybeWrite(flags);
  return 0;
}
