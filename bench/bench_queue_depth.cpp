// Queued I/O engine: closed-loop multi-stream random 4 KB updates against the VLD on the
// HP97560, sweeping queue depth 1 -> 32. Each depth-N run keeps N streams with one outstanding
// update each; the device pipelines controller overhead, eager-writes the data blocks, and
// group-commits the whole queue's map entries in one packed virtual-log transaction. Reports
// IOPS and mean/p50/p90/p99 per-request latency with the queueing/controller/seek/rotation/
// transfer breakdown from the trace layer, plus the synchronous baseline the depth-1 row must
// match exactly, and a raw-disk FCFS vs SPTF comparison for the positional scheduler.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/nvm/nvm_stage.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/nvm_device.h"
#include "src/simdisk/request_queue.h"
#include "src/simdisk/sim_disk.h"
#include "src/workload/queue_sweep.h"

namespace {

using namespace vlog;

constexpr uint64_t kSeed = 2;

// The synchronous baseline: the same random-update sequence through Vld::Write.
double SyncBaselineMs(int updates, int warmup, double* iops_out) {
  common::Clock clock;
  simdisk::SimDisk disk(simdisk::Truncated(simdisk::Hp97560(), 36), &clock);
  core::Vld vld(&disk, core::VldConfig{.queue_depth = 32});
  bench::Check(vld.Format(), "format");
  common::Rng rng(kSeed);
  const uint32_t blocks = vld.logical_blocks() / 2;
  std::vector<std::byte> payload(4096);
  for (int i = 0; i < warmup; ++i) {
    bench::Check(vld.Write(static_cast<simdisk::Lba>(rng.Below(blocks)) * 8, payload),
                 "warmup write");
  }
  const common::Time start = clock.Now();
  for (int i = 0; i < updates; ++i) {
    bench::Check(vld.Write(static_cast<simdisk::Lba>(rng.Below(blocks)) * 8, payload),
                 "sync write");
  }
  const common::Duration elapsed = clock.Now() - start;
  if (iops_out != nullptr) {
    *iops_out = static_cast<double>(updates) / common::ToSeconds(elapsed);
  }
  return bench::Ms(elapsed / updates);
}

void SchedulerComparison(int rounds) {
  bench::Note("\nPositional scheduling (raw disk, 16 queued random block writes per round):");
  std::printf("%8s %14s %14s %9s\n", "depth", "FCFS ms/req", "SPTF ms/req", "gain");
  for (uint32_t depth : {4u, 8u, 16u}) {
    double ms[2];
    int which = 0;
    for (const simdisk::SchedulerPolicy policy :
         {simdisk::SchedulerPolicy::kFcfs, simdisk::SchedulerPolicy::kSptf}) {
      common::Clock clock;
      simdisk::SimDisk disk(simdisk::Hp97560(), &clock);
      simdisk::RequestQueue queue(&disk, {.depth = depth, .policy = policy});
      common::Rng rng(7);
      std::vector<std::byte> block(4096, std::byte{0x5A});
      const uint64_t block_count = disk.SectorCount() / 8;
      int requests = 0;
      for (int round = 0; round < rounds; ++round) {
        for (uint32_t i = 0; i < depth; ++i) {
          bench::CheckOk(queue.SubmitWrite(rng.Below(block_count) * 8, block), "submit");
          ++requests;
        }
        bench::CheckOk(queue.Drain(), "drain");
      }
      ms[which++] = bench::Ms(clock.Now()) / requests;
    }
    std::printf("%8u %14.3f %14.3f %8.2fx\n", depth, ms[0], ms[1], ms[0] / ms[1]);
  }
}

// Exact (bit-for-bit) histogram equality: same buckets, count, sum, and observed range.
bool HistEq(const obs::LatencyHistogram& a, const obs::LatencyHistogram& b) {
  return a.buckets() == b.buckets() && a.Count() == b.Count() && a.Sum() == b.Sum() &&
         a.Min() == b.Min() && a.Max() == b.Max();
}

// One open-loop Poisson run with the full observability stack attached (tracer + timeline +
// SLO + steady-state), or — with `observed` false — the identical workload bare, as the
// control for the "observability never moves the virtual clock" gate.
struct OpenLoopLeg {
  workload::OpenLoopResult result;
  std::string timeline_json;
  size_t windows = 0;
  size_t violations = 0;
  std::string dominant;       // Of the first violation span.
  bool recovered = false;     // The last violation span ended before the final window.
  bool merge_exact = false;   // Window histograms merge to the run-wide one, bit for bit.
  uint64_t steady_windows = 0;
  common::Time final_time = 0;
};

OpenLoopLeg RunOpenLoopLeg(const workload::OpenLoopOptions& options, common::Duration window,
                           common::Duration budget, bool observed) {
  common::Clock clock;
  simdisk::SimDisk disk(simdisk::Truncated(simdisk::Hp97560(), 36), &clock);
  core::Vld vld(&disk, core::VldConfig{.queue_depth = 32});
  bench::Check(vld.Format(), "format");
  OpenLoopLeg leg;
  if (!observed) {
    leg.result = bench::CheckOk(workload::RunOpenLoopPoisson(vld, options), "open loop bare");
    leg.final_time = clock.Now();
    return leg;
  }
  obs::TraceRecorder tracer(&clock);
  disk.set_tracer(&tracer);
  obs::Timeline timeline(obs::TimelineConfig{.window = window, .start = clock.Now()});
  obs::WindowedHistogram& latency = timeline.AddHistogram("latency");
  obs::RegisterBreakdownCounters(timeline, tracer, "breakdown.");
  vld.RegisterTimelineProbes(timeline, "");
  timeline.AddSlo("latency", budget, "breakdown.");
  timeline.AddSteadySeries("vld.free_blocks");
  timeline.AddSteadySeries("p99:latency");
  timeline.ConfigureSteadyState(6, 0.15);
  leg.result =
      bench::CheckOk(workload::RunOpenLoopPoisson(vld, options, &timeline, &latency),
                     "open loop");
  timeline.Finish(clock.Now());
  leg.final_time = clock.Now();
  leg.timeline_json = timeline.Json();
  leg.windows = timeline.windows().size();
  obs::LatencyHistogram merged;
  for (const obs::TimelineWindow& w : timeline.windows()) {
    merged.Merge(w.histograms[0]);
  }
  leg.merge_exact =
      HistEq(merged, latency.total()) && HistEq(merged, leg.result.latency_hist);
  const obs::Timeline::SloResult& slo = timeline.slos()[0];
  leg.violations = slo.violations.size();
  if (!slo.violations.empty()) {
    leg.dominant = slo.violations.front().dominant;
    leg.recovered = slo.violations.back().end_window < timeline.windows().back().index;
  }
  leg.steady_windows = timeline.steady_windows();
  return leg;
}

// --- Long-horizon governed-compaction leg ---
//
// The paper's free-space claim run to steady state: continuous diurnal arrivals at high
// physical utilization, with the duty-cycled CompactionGovernor pacing hole-plugging against
// the foreground p99. The control leg (identical workload, governor never offered a grant)
// shows the eager allocator's fill-track reserve draining away — the free-space death spiral
// §5.2 predicts at sustained utilization — while the governed leg holds the reserve, settles
// to the steady-state detector's bar, and keeps every SLO violation span inside the declared
// overload burst plus a short recovery margin.

// Windows after the declared burst interval during which a breach (the backlog the burst
// queued still draining) or a depleted track reserve is still attributed to the burst.
constexpr uint64_t kBurstRecoveryWindows = 3;

struct LongHaulLeg {
  workload::OpenLoopResult result;
  std::string timeline_json;
  uint64_t empties_before = 0;
  uint64_t empties_after = 0;
  uint64_t min_empty_tracks = 0;  // Min vld.empty_tracks sample outside burst+margin windows.
  uint64_t tracks_compacted = 0;
  uint64_t idle_grants = 0;
  uint64_t backoffs = 0;
  size_t windows = 0;
  size_t violations = 0;
  bool violations_contained = true;  // Every span within the declared burst + margin.
  double worst_outside_ms = 0;       // Worst window p99 outside burst+margin windows.
  bool steady = false;
  uint64_t steady_windows = 0;
};

LongHaulLeg RunLongHaulLeg(workload::OpenLoopOptions options, common::Duration window,
                           common::Duration budget, bool governed) {
  common::Clock clock;
  simdisk::SimDisk disk(simdisk::Truncated(simdisk::Hp97560(), 36), &clock);
  core::Vld vld(&disk, core::VldConfig{.queue_depth = 32});
  bench::Check(vld.Format(), "format");
  // Prepopulate the whole update region so the run starts at its long-run utilization with a
  // finite fill-track reserve; every arrival is then an update that opens a hole somewhere.
  options.region_blocks = static_cast<uint32_t>(vld.logical_blocks() * 0.55);
  std::vector<std::byte> payload(4096);
  for (uint32_t b = 0; b < options.region_blocks; ++b) {
    bench::Check(vld.Write(static_cast<simdisk::Lba>(b) * 8, payload), "prepopulate");
  }
  obs::Timeline timeline(obs::TimelineConfig{.window = window, .start = clock.Now()});
  obs::WindowedHistogram& latency = timeline.AddHistogram("latency");
  vld.RegisterTimelineProbes(timeline, "");
  timeline.AddSlo("latency", budget, "vld.");
  timeline.AddSteadySeries("vld.free_blocks");
  timeline.AddSteadySeries("vld.utilization_ppm");
  timeline.ConfigureSteadyState(5, 0.05);
  core::GovernorConfig gov_config;
  gov_config.slo_budget = budget;
  // Chase a deeper reserve than the idle compactor's default target: under continuous load
  // the foreground drains whatever exists, so the trough-time surplus must stay ahead of
  // peak-time consumption.
  gov_config.target_empty_tracks = 8;
  gov_config.low_water_tracks = 3;
  // Compacting one track costs ~100 ms of media time (a handful of ~15 ms relocations), so a
  // 25 ms credit cap would forfeit most of what a peak-time inter-batch gap accrues; 50 ms
  // keeps bursts preemptible but lets one finish a track.
  gov_config.max_burst = common::Milliseconds(50);
  core::CompactionGovernor governor(&vld, &timeline, gov_config);
  // Registered on both legs (the control's governor just never runs) so the two timelines
  // export the identical series schema.
  governor.RegisterTimelineProbes(timeline, "");
  LongHaulLeg leg;
  leg.empties_before = vld.space().EmptyTrackCount();
  leg.result = bench::CheckOk(
      workload::RunGovernedOpenLoop(vld, options, governed ? &governor : nullptr, &timeline,
                                    &latency),
      "long-haul leg");
  timeline.Finish(clock.Now());
  leg.empties_after = vld.space().EmptyTrackCount();
  leg.tracks_compacted = vld.compactor().stats().tracks_compacted;
  leg.idle_grants = governor.stats().idle_grants;
  leg.backoffs = governor.stats().backoffs;
  leg.timeline_json = timeline.Json();
  leg.windows = timeline.windows().size();
  leg.steady = timeline.IsSteady();
  leg.steady_windows = timeline.steady_windows();
  // The declared overload interval in window indices, widened by the recovery margin: the
  // burst's arrivals queue a backlog that takes a few more windows to drain.
  const uint64_t bw_first = static_cast<uint64_t>(options.burst_start / window);
  const uint64_t bw_last =
      static_cast<uint64_t>((options.burst_start + options.burst_duration) / window) +
      kBurstRecoveryWindows;
  const obs::Timeline::SloResult& slo = timeline.slos()[0];
  leg.violations = slo.violations.size();
  for (const obs::Timeline::SloViolation& v : slo.violations) {
    leg.violations_contained &= v.start_window >= bw_first && v.end_window <= bw_last;
  }
  const int empty_gauge = timeline.GaugeIndex("vld.empty_tracks");
  uint64_t min_empty = ~0ull;
  for (const obs::TimelineWindow& w : timeline.windows()) {
    if (w.index >= bw_first && w.index <= bw_last) {
      continue;  // The declared burst may transiently eat deep into the reserve.
    }
    min_empty = std::min(min_empty, w.gauges[static_cast<size_t>(empty_gauge)]);
    leg.worst_outside_ms = std::max(leg.worst_outside_ms, w.histograms[0].Percentile(99) / 1e6);
  }
  leg.min_empty_tracks = min_empty;
  return leg;
}

// --- NVM staging legs (--nvm) ---
//
// The paper's two latency mechanisms composed and separated: eager writing alone (sync
// updates land wherever the head is), an NVM staging tier over NAIVE in-place placement
// (acks at NVM latency, background destage seeks to the in-place targets), and the stage
// over the eager-writing VLD (acks at NVM latency, destage batches ride the virtual log's
// group commit). Same seed, same closed-loop depth-1 sync 4 KB updates; the stage is pumped
// on a duty cycle between writes so the log never forces a synchronous overflow drain.

enum class NvmLegKind { kEagerOnly, kNvmOverNaive, kNvmOverEager };

struct NvmLeg {
  double iops = 0;
  obs::LatencyHistogram ack_hist;       // Per-write acknowledgement latency.
  obs::TimeBreakdown breakdown;         // Tracer totals over the whole leg (incl. destages).
  common::Duration trace_latency = 0;   // Tracer latency sum, for the exact identity gate.
  uint64_t staged_writes = 0;
  uint64_t overflow_drains = 0;
  uint64_t destage_batches = 0;
};

NvmLeg RunNvmLeg(NvmLegKind kind, int updates, int warmup) {
  common::Clock clock;
  simdisk::SimDisk disk(simdisk::Truncated(simdisk::Hp97560(), 36), &clock);
  obs::TraceRecorder tracer(&clock);
  disk.set_tracer(&tracer);
  std::unique_ptr<core::Vld> vld;
  std::unique_ptr<simdisk::NvmDevice> nvm;
  std::unique_ptr<core::NvmStage> stage;
  uint32_t blocks = 0;
  if (kind == NvmLegKind::kEagerOnly || kind == NvmLegKind::kNvmOverEager) {
    vld = std::make_unique<core::Vld>(&disk, core::VldConfig{.queue_depth = 32});
    bench::Check(vld->Format(), "format");
    blocks = vld->logical_blocks() / 2;
  } else {
    blocks = static_cast<uint32_t>(disk.SectorCount() / 8 / 2);
  }
  if (kind != NvmLegKind::kEagerOnly) {
    nvm = std::make_unique<simdisk::NvmDevice>(simdisk::NvmDeviceParams{}, &clock);
    stage = kind == NvmLegKind::kNvmOverEager
                ? std::make_unique<core::NvmStage>(nvm.get(), vld.get())
                : std::make_unique<core::NvmStage>(nvm.get(),
                                                   static_cast<simdisk::BlockDevice*>(&disk));
    bench::Check(stage->Format(), "stage format");
    stage->set_tracer(&tracer);
  }
  auto write = [&](simdisk::Lba lba, std::span<const std::byte> in) {
    return stage != nullptr ? stage->Write(lba, in) : vld->Write(lba, in);
  };
  common::Rng rng(kSeed);
  std::vector<std::byte> payload(4096, std::byte{0x3C});
  for (int i = 0; i < warmup; ++i) {
    bench::Check(write(static_cast<simdisk::Lba>(rng.Below(blocks)) * 8, payload), "warmup");
    if (stage != nullptr && i % 8 == 7) {
      bench::CheckOk(stage->RunDestageBurst(common::Milliseconds(30)), "warmup destage");
    }
  }
  NvmLeg leg;
  const common::Time start = clock.Now();
  for (int i = 0; i < updates; ++i) {
    const common::Time t0 = clock.Now();
    bench::Check(write(static_cast<simdisk::Lba>(rng.Below(blocks)) * 8, payload), "update");
    leg.ack_hist.Record(static_cast<uint64_t>(clock.Now() - t0));
    // The duty cycle: one burst per 8 staged writes retires at least one 8-record batch, so
    // the log stays ahead of the offered load without ever blocking an ack.
    if (stage != nullptr && i % 8 == 7) {
      bench::CheckOk(stage->RunDestageBurst(common::Milliseconds(30)), "destage");
    }
  }
  if (stage != nullptr) {
    bench::Check(stage->Drain(), "drain");
    leg.staged_writes = stage->stats().staged_writes;
    leg.overflow_drains = stage->stats().overflow_drains;
    leg.destage_batches = stage->stats().destage_batches;
  }
  // Sustained throughput includes the destage work and the final drain: the stage defers
  // media time, it does not erase it.
  leg.iops = static_cast<double>(updates) / common::ToSeconds(clock.Now() - start);
  leg.breakdown = tracer.totals();
  leg.trace_latency = static_cast<common::Duration>(tracer.latency_hist().Sum());
  return leg;
}

int RunNvmLegs(const bench::BenchFlags& flags) {
  const int updates = flags.smoke ? 400 : 2000;
  const int warmup = flags.smoke ? 64 : 256;
  bench::Header("NVM staging three-way: sync 4 KB updates, eager vs NVM-over-naive vs both");
  bench::MetricsReport report("queue_depth_nvm");
  bench::PrintPercentileHeader();
  NvmLeg legs[3];
  const char* labels[3] = {"eager-only", "nvm-naive", "nvm-eager"};
  const NvmLegKind kinds[3] = {NvmLegKind::kEagerOnly, NvmLegKind::kNvmOverNaive,
                               NvmLegKind::kNvmOverEager};
  bool identity = true;
  for (int i = 0; i < 3; ++i) {
    legs[i] = RunNvmLeg(kinds[i], updates, warmup);
    bench::PrintPercentileRow(labels[i], legs[i].iops, legs[i].ack_hist);
    std::printf("%-16s staged %llu, destage batches %llu, overflow drains %llu, "
                "nvm %.3f ms total\n",
                "", static_cast<unsigned long long>(legs[i].staged_writes),
                static_cast<unsigned long long>(legs[i].destage_batches),
                static_cast<unsigned long long>(legs[i].overflow_drains),
                bench::Ms(legs[i].breakdown.nvm));
    report.AddRow(labels[i], legs[i].iops, legs[i].ack_hist, legs[i].breakdown,
                  {{"staged_writes", static_cast<double>(legs[i].staged_writes)},
                   {"destage_batches", static_cast<double>(legs[i].destage_batches)},
                   {"overflow_drains", static_cast<double>(legs[i].overflow_drains)}});
    identity &= legs[i].breakdown.Total() == legs[i].trace_latency;
  }
  // Acceptance gates. The headline: an acked staged sync write costs NVM time, not disk
  // time, so the staged p99 must sit far below the eager-writing p99 — and the stage must
  // actually have absorbed the traffic rather than quietly routing it around.
  const auto p99 = [](const NvmLeg& l) { return l.ack_hist.Percentile(99); };
  const bool staged_faster = p99(legs[2]) < p99(legs[0]);
  const bool naive_staged_faster = p99(legs[1]) < p99(legs[0]);
  const bool absorbed = legs[1].staged_writes == static_cast<uint64_t>(updates + warmup) &&
                        legs[2].staged_writes == static_cast<uint64_t>(updates + warmup);
  const bool no_overflow = legs[1].overflow_drains == 0 && legs[2].overflow_drains == 0;
  const bool nvm_attributed = legs[2].breakdown.nvm > 0 && legs[0].breakdown.nvm == 0;
  std::printf("\nstaged sync p99 < unstaged eager p99: %s (%.3f vs %.3f ms)\n",
              staged_faster ? "yes" : "NO", p99(legs[2]) / 1e6, p99(legs[0]) / 1e6);
  std::printf("NVM-over-naive p99 < eager p99: %s (%.3f ms)\n",
              naive_staged_faster ? "yes" : "NO", p99(legs[1]) / 1e6);
  std::printf("every sync write absorbed by the stage: %s\n", absorbed ? "yes" : "NO");
  std::printf("duty-cycled destage avoided overflow drains: %s\n", no_overflow ? "yes" : "NO");
  std::printf("breakdown components sum to latency: %s\n", identity ? "yes" : "NO");
  std::printf("nvm time attributed only on staged legs: %s\n", nvm_attributed ? "yes" : "NO");
  if (!staged_faster || !naive_staged_faster || !absorbed || !no_overflow || !identity ||
      !nvm_attributed) {
    std::fprintf(stderr, "FATAL: NVM staging acceptance gates failed\n");
    return 1;
  }
  bench::Note("\nThe stage acks at NVM latency regardless of placement policy underneath;");
  bench::Note("eager writing still wins the destage bill (group-committed batches vs seeks");
  bench::Note("back to in-place targets), which is the 'both' column's throughput edge.");
  report.MaybeWrite(flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv);
  if (flags.nvm) {
    return RunNvmLegs(flags);
  }
  const int updates = flags.smoke ? 400 : 2000;
  const int warmup = flags.smoke ? 64 : 256;
  bench::Header("Queue-depth sweep: closed-loop random 4 KB updates, VLD on HP97560");

  double sync_iops = 0;
  const double sync_ms = SyncBaselineMs(updates, warmup, &sync_iops);
  std::printf("sync baseline (Vld::Write): %.3f ms/update, %.0f IOPS\n\n", sync_ms, sync_iops);

  bench::MetricsReport report("queue_depth");
  bench::PrintPercentileHeader();
  double iops_depth1 = 0, iops_depth16 = 0, prev_iops = 0;
  double mean_ms_depth1 = 0;
  bool monotonic = true;
  bool breakdown_sums = true;
  for (uint32_t depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
    common::Clock clock;
    simdisk::SimDisk disk(simdisk::Truncated(simdisk::Hp97560(), 36), &clock);
    core::Vld vld(&disk, core::VldConfig{.queue_depth = 32});
    bench::Check(vld.Format(), "format");
    obs::TraceRecorder tracer(&clock);
    disk.set_tracer(&tracer);
    const workload::QueueDepthResult r = bench::CheckOk(
        workload::RunQueuedRandomUpdates(vld, depth, updates, warmup, kSeed), "sweep");
    char label[32];
    std::snprintf(label, sizeof(label), "depth=%u", depth);
    bench::PrintPercentileRow(label, r.iops, r.latency_hist);
    std::printf("%-16s queueing %.3f ms/req, controller %.3f, seek %.3f, rotation %.3f, "
                "transfer %.3f\n",
                "", bench::Ms(r.breakdown.queueing / static_cast<common::Duration>(r.updates)),
                bench::Ms(r.breakdown.controller / static_cast<common::Duration>(r.updates)),
                bench::Ms(r.breakdown.seek / static_cast<common::Duration>(r.updates)),
                bench::Ms(r.breakdown.rotation / static_cast<common::Duration>(r.updates)),
                bench::Ms(r.breakdown.transfer / static_cast<common::Duration>(r.updates)));
    report.AddRow(label, r.iops, r.latency_hist, r.breakdown,
                  {{"depth", static_cast<double>(depth)},
                   {"mean_queue_delay_us", static_cast<double>(r.mean_queue_delay) / 1000.0}});
    // The trace identity: per-request components (incl. the queueing residual) sum to exactly
    // the summed request latency.
    breakdown_sums &=
        r.breakdown.Total() == static_cast<common::Duration>(r.latency_hist.Sum());
    monotonic &= r.iops + 1e-9 >= prev_iops;
    prev_iops = r.iops;
    if (depth == 1) {
      iops_depth1 = r.iops;
      mean_ms_depth1 = bench::Ms(r.mean_latency);
    }
    if (depth == 16) {
      iops_depth16 = r.iops;
    }
  }

  // Write-back cache leg: the same closed-loop workload with a volatile cache in the drive.
  // The VLD's durability barriers now destage it, so the per-request breakdown gains a flush
  // component — and the exact breakdown-sums-to-latency identity must keep holding.
  // Attribution follows the group-commit rule: a depth-1 batch's commit (and thus its destage
  // work) is the request's own, so its flush column is populated; a shared commit belongs to
  // no single request and its destage time folds into each member's queueing residual.
  bench::Note("\nWith volatile write-back drive cache (barriers destage; flush component):");
  bool cached_flush_seen = false;
  for (uint32_t depth : {1u, 4u, 16u}) {
    common::Clock clock;
    simdisk::DiskParams params = simdisk::Truncated(simdisk::Hp97560(), 36);
    params.cache.capacity_sectors = 4096;
    simdisk::SimDisk disk(params, &clock);
    core::Vld vld(&disk, core::VldConfig{.queue_depth = 32});
    bench::Check(vld.Format(), "format");
    obs::TraceRecorder tracer(&clock);
    disk.set_tracer(&tracer);
    const workload::QueueDepthResult r = bench::CheckOk(
        workload::RunQueuedRandomUpdates(vld, depth, updates, warmup, kSeed), "cached sweep");
    char label[32];
    std::snprintf(label, sizeof(label), "depth=%u+wbc", depth);
    bench::PrintPercentileRow(label, r.iops, r.latency_hist);
    std::printf("%-16s queueing %.3f ms/req, controller %.3f, transfer %.3f, flush %.3f\n", "",
                bench::Ms(r.breakdown.queueing / static_cast<common::Duration>(r.updates)),
                bench::Ms(r.breakdown.controller / static_cast<common::Duration>(r.updates)),
                bench::Ms(r.breakdown.transfer / static_cast<common::Duration>(r.updates)),
                bench::Ms(r.breakdown.flush / static_cast<common::Duration>(r.updates)));
    report.AddRow(label, r.iops, r.latency_hist, r.breakdown,
                  {{"depth", static_cast<double>(depth)},
                   {"cache_sectors", static_cast<double>(params.cache.capacity_sectors)},
                   {"flushes", static_cast<double>(disk.stats().flushes)},
                   {"destaged_sectors", static_cast<double>(disk.stats().destaged_sectors)}});
    breakdown_sums &=
        r.breakdown.Total() == static_cast<common::Duration>(r.latency_hist.Sum());
    cached_flush_seen |= r.breakdown.flush > 0;
  }

  // Mixed read/write legs: reads join the queue (SubmitRead), where the positional scheduler
  // finally has something to optimize — reads go where the data *is*, writes go wherever the
  // head already is. Each depth-N run keeps N streams with one outstanding op each; FCFS vs
  // SPTF on the same seed isolates the read-scheduling gain. Per-stream histograms feed the
  // max/min throughput fairness ratio.
  bool sptf_beats_fcfs = true;
  double worst_fairness = 1.0;
  for (const auto& [mix_label, read_fraction] :
       {std::pair<const char*, double>{"r90", 0.9}, {"r50", 0.5}}) {
    bench::Note(std::string("\nMixed streams, ") + mix_label +
                " (read fraction " + std::to_string(read_fraction).substr(0, 4) +
                "), FCFS vs SPTF:");
    bench::PrintPercentileHeader();
    for (uint32_t depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
      double iops_by_policy[2] = {0, 0};
      int which = 0;
      for (const simdisk::SchedulerPolicy policy :
           {simdisk::SchedulerPolicy::kFcfs, simdisk::SchedulerPolicy::kSptf}) {
        common::Clock clock;
        simdisk::SimDisk disk(simdisk::Truncated(simdisk::Hp97560(), 36), &clock);
        core::Vld vld(&disk, core::VldConfig{.queue_depth = 32, .read_policy = policy});
        bench::Check(vld.Format(), "format");
        obs::TraceRecorder tracer(&clock);
        disk.set_tracer(&tracer);
        workload::MixedStreamOptions options;
        options.streams = depth;
        options.ops = updates;
        options.warmup = warmup;
        options.seed = kSeed;
        options.stream_configs = {workload::StreamConfig{.read_fraction = read_fraction}};
        const workload::MixedStreamResult r =
            bench::CheckOk(workload::RunMixedStreams(vld, options), "mixed sweep");
        const bool sptf = policy == simdisk::SchedulerPolicy::kSptf;
        char label[48];
        std::snprintf(label, sizeof(label), "%s/%s/d%u", mix_label, sptf ? "sptf" : "fcfs",
                      depth);
        bench::PrintPercentileRow(label, r.iops, r.latency_hist);
        const double fairness = r.FairnessRatio();
        std::printf("%-16s fairness %.2f, forwarded %llu sectors, queueing %.3f ms/req\n", "",
                    fairness,
                    static_cast<unsigned long long>(vld.stats().forwarded_read_sectors),
                    bench::Ms(r.breakdown.queueing / static_cast<common::Duration>(
                                                         r.ops > 0 ? r.ops : 1)));
        std::map<std::string, double> extra = {
            {"depth", static_cast<double>(depth)},
            {"read_fraction", read_fraction},
            {"sptf", sptf ? 1.0 : 0.0},
            {"fairness_ratio", fairness},
        };
        for (const workload::StreamResult& s : r.streams) {
          char key[32];
          std::snprintf(key, sizeof(key), "s%u_p50_us", s.stream);
          extra[key] = static_cast<double>(s.p50_latency) / 1000.0;
          std::snprintf(key, sizeof(key), "s%u_p99_us", s.stream);
          extra[key] = static_cast<double>(s.p99_latency) / 1000.0;
        }
        report.AddRow(label, r.iops, r.latency_hist, r.breakdown, extra);
        breakdown_sums &=
            r.breakdown.Total() == static_cast<common::Duration>(r.latency_hist.Sum());
        iops_by_policy[which++] = r.iops;
        if (depth >= 8) {
          worst_fairness = std::max(worst_fairness, fairness);
        }
      }
      // The read-heavy gate: SPTF must beat FCFS once the queue is deep enough to reorder.
      if (read_fraction > 0.5 && depth >= 8) {
        sptf_beats_fcfs &= iops_by_policy[1] > iops_by_policy[0];
      }
    }
  }

  // Open-loop Poisson leg: arrivals are exogenous (decoupled from completions), so offered
  // load above the ~380 IOPS depth-32 service capacity grows an unbounded backlog and
  // arrival->completion latency climbs until the burst ends — the timeline's SLO monitor must
  // see that breach, attribute its dominant component, and watch it recover. Run twice on the
  // same seed (timeline export must be byte-identical) plus once bare (observability must not
  // move the virtual clock).
  bench::Note("\nOpen-loop Poisson arrivals (150/s base, 1.2k/s burst; p99 SLO 50 ms/250 ms "
              "window):");
  workload::OpenLoopOptions olopt;
  olopt.rate_ops_per_s = 150;
  olopt.burst_rate_ops_per_s = 1200;
  olopt.burst_start = flags.smoke ? common::Milliseconds(400) : common::Milliseconds(1000);
  olopt.burst_duration = flags.smoke ? common::Milliseconds(400) : common::Milliseconds(1000);
  olopt.arrivals = flags.smoke ? 700 : 2000;
  olopt.seed = kSeed;
  const common::Duration ol_window = common::Milliseconds(250);
  const common::Duration ol_budget = common::Milliseconds(50);
  const OpenLoopLeg leg = RunOpenLoopLeg(olopt, ol_window, ol_budget, true);
  const OpenLoopLeg rerun = RunOpenLoopLeg(olopt, ol_window, ol_budget, true);
  const OpenLoopLeg bare = RunOpenLoopLeg(olopt, ol_window, ol_budget, false);
  bench::PrintPercentileHeader();
  bench::PrintPercentileRow("open-loop", leg.result.achieved_iops, leg.result.latency_hist);
  std::printf("%-16s offered %.0f/s, peak backlog %llu, %zu windows, %zu violation span(s), "
              "dominant '%s'\n",
              "", leg.result.offered_rate,
              static_cast<unsigned long long>(leg.result.max_backlog), leg.windows,
              leg.violations, leg.dominant.c_str());
  report.AddRow("open-loop", leg.result.achieved_iops, leg.result.latency_hist,
                leg.result.breakdown,
                {{"offered_rate", leg.result.offered_rate},
                 {"max_backlog", static_cast<double>(leg.result.max_backlog)},
                 {"windows", static_cast<double>(leg.windows)},
                 {"slo_violations", static_cast<double>(leg.violations)},
                 {"steady_windows", static_cast<double>(leg.steady_windows)}});
  const bool ol_deterministic =
      !leg.timeline_json.empty() && leg.timeline_json == rerun.timeline_json;
  const bool ol_windows = leg.windows >= 1;
  const bool ol_breach = leg.violations >= 1 && !leg.dominant.empty();
  const bool ol_clock_pure = leg.final_time == bare.final_time &&
                             leg.result.makespan == bare.result.makespan;

  // Long-horizon leg: diurnal arrivals at high utilization, run to steady state, governed vs
  // governor-off control. Window width == the diurnal period so gauge samples are
  // phase-aligned (each window close sees the same point of the cycle).
  bench::Note("\nLong-horizon governed compaction (diurnal 24/s, declared 1.2k/s burst; "
              "p99 SLO 400 ms / 2 s windows):");
  workload::OpenLoopOptions lh;
  lh.process = workload::ArrivalProcess::kDiurnal;
  // One track compacted (~100 ms of media time) buys ~7 foreground updates, so sustaining
  // rate R costs the compactor ~R/7 tracks/s on top of the foreground's own ~3 ms/op. The
  // governor's measured production capacity under this duty cap is ~3.7 tracks/s; 24/s
  // (~3.4 tracks/s of demand) keeps the pair feasible with margin, while an ungoverned
  // reserve still drains to nothing well before the run ends.
  lh.rate_ops_per_s = 24;
  lh.diurnal_period = common::Seconds(2);
  lh.diurnal_amplitude = 0.75;
  lh.burst_rate_ops_per_s = 1200;
  lh.burst_start = common::Seconds(4);
  lh.burst_duration = common::Milliseconds(400);
  lh.arrivals = flags.smoke ? 1400 : 1000000;
  lh.max_batch = 8;
  lh.seed = kSeed;
  const common::Duration lh_window = common::Seconds(2);
  // The budget needs headroom over the governed steady-state tail (p99 ~140 ms at this rate:
  // diurnal-peak queueing plus compaction bursts the foreground lands behind). Set too close
  // to equilibrium, every second window violates, the AIMD duty collapses, and the reserve
  // hovers at the pressure floor instead of the target — a backoff storm, not a pace.
  const common::Duration lh_budget = common::Milliseconds(400);
  const LongHaulLeg lh_governed = RunLongHaulLeg(lh, lh_window, lh_budget, true);
  const LongHaulLeg lh_control = RunLongHaulLeg(lh, lh_window, lh_budget, false);
  bench::PrintPercentileHeader();
  bench::PrintPercentileRow("longhaul-gov", lh_governed.result.achieved_iops,
                            lh_governed.result.latency_hist);
  std::printf("%-16s empty tracks %llu -> %llu (min outside burst %llu), %llu compacted, "
              "%zu violation span(s), worst p99 outside burst %.1f ms, steady x%llu\n",
              "", static_cast<unsigned long long>(lh_governed.empties_before),
              static_cast<unsigned long long>(lh_governed.empties_after),
              static_cast<unsigned long long>(lh_governed.min_empty_tracks),
              static_cast<unsigned long long>(lh_governed.tracks_compacted),
              lh_governed.violations, lh_governed.worst_outside_ms,
              static_cast<unsigned long long>(lh_governed.steady_windows));
  bench::PrintPercentileRow("longhaul-off", lh_control.result.achieved_iops,
                            lh_control.result.latency_hist);
  std::printf("%-16s empty tracks %llu -> %llu (death spiral control)\n", "",
              static_cast<unsigned long long>(lh_control.empties_before),
              static_cast<unsigned long long>(lh_control.empties_after));
  for (const LongHaulLeg* l : {&lh_governed, &lh_control}) {
    report.AddRow(l == &lh_governed ? "longhaul-gov" : "longhaul-off",
                  l->result.achieved_iops, l->result.latency_hist, l->result.breakdown,
                  {{"empties_before", static_cast<double>(l->empties_before)},
                   {"empties_after", static_cast<double>(l->empties_after)},
                   {"min_empty_tracks", static_cast<double>(l->min_empty_tracks)},
                   {"tracks_compacted", static_cast<double>(l->tracks_compacted)},
                   {"idle_grants", static_cast<double>(l->idle_grants)},
                   {"backoffs", static_cast<double>(l->backoffs)},
                   {"windows", static_cast<double>(l->windows)},
                   {"slo_violations", static_cast<double>(l->violations)},
                   {"steady_windows", static_cast<double>(l->steady_windows)}});
  }
  const bool lh_steady = lh_governed.steady;
  const bool lh_floor =
      lh_governed.min_empty_tracks >= 1 && lh_governed.empties_after >= 2;
  const bool lh_contained =
      lh_governed.violations >= 1 && lh_governed.violations_contained;
  const bool lh_spiral = lh_control.empties_after < lh_control.empties_before &&
                         lh_governed.empties_after > lh_control.empties_after &&
                         lh_governed.tracks_compacted > 0;

  bench::Note("");
  // Acceptance gates: depth-1 latency identical to the sync path (tracing attached — it must
  // not move the clock), IOPS monotonically non-decreasing in depth, >= 2x throughput at
  // depth 16, and the traced breakdown summing exactly to the measured latency — including
  // the flush component on the write-back-cache rows and the queued-read mixed legs. The
  // read-heavy legs must show SPTF beating FCFS at every depth >= 8.
  const bool depth1_matches = mean_ms_depth1 == sync_ms;
  const bool doubled = iops_depth16 >= 2.0 * iops_depth1;
  std::printf("depth-1 latency == sync path: %s (%.3f vs %.3f ms)\n",
              depth1_matches ? "yes" : "NO", mean_ms_depth1, sync_ms);
  std::printf("IOPS monotonically non-decreasing: %s\n", monotonic ? "yes" : "NO");
  std::printf("depth-16 speedup >= 2x: %s (%.2fx)\n", doubled ? "yes" : "NO",
              iops_depth1 > 0 ? iops_depth16 / iops_depth1 : 0.0);
  std::printf("breakdown components sum to latency: %s\n", breakdown_sums ? "yes" : "NO");
  std::printf("write-back rows report a flush component: %s\n",
              cached_flush_seen ? "yes" : "NO");
  std::printf("read-heavy SPTF > FCFS at depth >= 8: %s (worst fairness %.2f)\n",
              sptf_beats_fcfs ? "yes" : "NO", worst_fairness);
  std::printf("open-loop timeline byte-identical on rerun: %s\n",
              ol_deterministic ? "yes" : "NO");
  std::printf("open-loop timeline has windows: %s (%zu)\n", ol_windows ? "yes" : "NO",
              leg.windows);
  std::printf("open-loop burst breaches the SLO with a dominant component: %s\n",
              ol_breach ? "yes" : "NO");
  std::printf("open-loop SLO breach recovers before end of run: %s\n",
              leg.recovered ? "yes" : "NO");
  std::printf("window histograms merge to run-wide exactly: %s\n",
              leg.merge_exact ? "yes" : "NO");
  std::printf("observability never moves the virtual clock: %s\n",
              ol_clock_pure ? "yes" : "NO");
  std::printf("long-haul steady-state detector fires: %s (x%llu)\n", lh_steady ? "yes" : "NO",
              static_cast<unsigned long long>(lh_governed.steady_windows));
  std::printf("long-haul reserve stays above the allocator floor: %s (min %llu, end %llu)\n",
              lh_floor ? "yes" : "NO",
              static_cast<unsigned long long>(lh_governed.min_empty_tracks),
              static_cast<unsigned long long>(lh_governed.empties_after));
  std::printf("long-haul p99 breaches only inside the declared burst: %s (%zu span(s))\n",
              lh_contained ? "yes" : "NO", lh_governed.violations);
  std::printf("long-haul governor-off control shows the death spiral: %s (%llu -> %llu)\n",
              lh_spiral ? "yes" : "NO",
              static_cast<unsigned long long>(lh_control.empties_before),
              static_cast<unsigned long long>(lh_control.empties_after));
  if (!depth1_matches || !monotonic || !doubled || !breakdown_sums || !cached_flush_seen ||
      !sptf_beats_fcfs || !ol_deterministic || !ol_windows || !ol_breach || !leg.recovered ||
      !leg.merge_exact || !ol_clock_pure || !lh_steady || !lh_floor || !lh_contained ||
      !lh_spiral) {
    std::fprintf(stderr, "FATAL: queue-depth acceptance gates failed\n");
    return 1;
  }

  SchedulerComparison(flags.smoke ? 10 : 40);
  bench::Note("\nGroup commit turns N map-sector appends into ceil(N/8) packed log writes and");
  bench::Note("hides per-command controller overhead behind media time; SPTF additionally cuts");
  bench::Note("positioning on a deep queue (Section 4.2's 'many entries share one sector').");
  report.MaybeWrite(flags);
  bench::MaybeWriteTimeline(flags, leg.timeline_json);
  bench::MaybeWriteNamedTimeline(flags, "longhaul", lh_governed.timeline_json);
  // The governor-off control too: the steady-state-vs-death-spiral pair in EXPERIMENTS.md
  // is rendered from these two artifacts.
  bench::MaybeWriteNamedTimeline(flags, "longhaul_off", lh_control.timeline_json);
  return 0;
}
