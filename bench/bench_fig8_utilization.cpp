// Figure 8: latency per random synchronous 4 KB update as a function of disk utilization, with
// no idle time. Three curves: UFS on the regular disk (update-in-place: flat and high — two
// half-rotation-class I/Os per update), LFS with its cache treated as NVRAM on the regular disk
// (excellent until the file outgrows the NVRAM, then cleaner-dominated), and UFS on the VLD
// (low, rising gently with utilization as free sectors get scarcer).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/benchmarks.h"
#include "src/workload/platform.h"

namespace {

using namespace vlog;

workload::UpdateResult RunPoint(workload::FsKind fs, workload::DiskKind disk,
                                double target_util, int updates, int warmup) {
  workload::PlatformConfig config;
  config.fs_kind = fs;
  config.disk_kind = disk;
  workload::Platform platform(config);
  bench::Check(platform.Format(), "format");
  // Size the file against the FS data capacity so the df-style utilization lands near target.
  uint64_t capacity;
  if (fs == workload::FsKind::kUfs) {
    const auto& sb = platform.ufs()->superblock();
    capacity = static_cast<uint64_t>(sb.cg_count) * sb.DataBlocksPerCg() * 4096;
  } else {
    capacity = static_cast<uint64_t>(platform.log_disk()->LogicalBlocks()) * 4096;
  }
  const uint64_t file_bytes = static_cast<uint64_t>(target_util * capacity) / 4096 * 4096;
  return bench::CheckOk(
      workload::RunRandomUpdates(platform, file_bytes, updates, warmup), "updates");
}

}  // namespace

int main() {
  using workload::DiskKind;
  using workload::FsKind;
  bench::Header(
      "Figure 8: random synchronous 4 KB updates vs disk utilization (no idle time)");
  std::printf("%7s | %-24s | %-24s | %-24s\n", "", "UFS/regular", "UFS/VLD",
              "LFS+NVRAM/regular");
  std::printf("%7s | %10s %11s | %10s %11s | %10s %11s\n", "target%", "df util", "ms/4KB",
              "df util", "ms/4KB", "df util", "ms/4KB");
  const double targets[] = {0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.85};
  for (const double t : targets) {
    const auto ufs_reg = RunPoint(FsKind::kUfs, DiskKind::kRegular, t, 300, 60);
    const auto ufs_vld = RunPoint(FsKind::kUfs, DiskKind::kVld, t, 300, 60);
    // LFS needs a longer warm-up to reach cleaner steady state once past the NVRAM size.
    const auto lfs_reg = RunPoint(FsKind::kLfs, DiskKind::kRegular, t, 1500, 2500);
    std::printf("%6.0f%% | %9.1f%% %11.3f | %9.1f%% %11.3f | %9.1f%% %11.3f\n", t * 100,
                ufs_reg.fs_utilization * 100, bench::Ms(ufs_reg.avg_latency),
                ufs_vld.fs_utilization * 100, bench::Ms(ufs_vld.avg_latency),
                lfs_reg.fs_utilization * 100, bench::Ms(lfs_reg.avg_latency));
  }
  bench::Note("\nLFS NVRAM = 6.1 MB buffer cache (~26% of the disk): the cliff past that point");
  bench::Note("is the cleaner. The VLD curve rises only gently with utilization.");
  return 0;
}
