// Figure 7: large-file performance. A 10 MB file is written sequentially, read sequentially,
// rewritten randomly (asynchronously; also synchronously in the UFS runs), read sequentially
// again, and read randomly; each phase is reported in MB/s for the four configurations.
// Expected shape: random synchronous writes excel on the VLD; sequential read after random
// write collapses on LFS and VLD alike (spatial locality destroyed); LFS random-async write
// beats its own sequential write (overwrites absorbed in the buffer).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/benchmarks.h"
#include "src/workload/platform.h"

int main() {
  using namespace vlog;
  using workload::DiskKind;
  using workload::FsKind;
  bench::Header("Figure 7: large-file performance, MB/s per phase (10 MB file)");

  struct Config {
    const char* label;
    FsKind fs;
    DiskKind disk;
  };
  const Config configs[] = {
      {"UFS/regular", FsKind::kUfs, DiskKind::kRegular},
      {"UFS/VLD", FsKind::kUfs, DiskKind::kVld},
      {"LFS/regular", FsKind::kLfs, DiskKind::kRegular},
      {"LFS/VLD", FsKind::kLfs, DiskKind::kVld},
  };
  constexpr uint64_t kFileBytes = 10 << 20;

  std::printf("%-14s %9s %9s %9s %9s %9s %9s\n", "config", "seq wr", "seq rd", "rnd wr(a)",
              "rnd wr(s)", "seq rd 2", "rnd rd");
  for (const Config& c : configs) {
    workload::PlatformConfig config;
    config.fs_kind = c.fs;
    config.disk_kind = c.disk;
    workload::Platform platform(config);
    bench::Check(platform.Format(), "format");
    const bool sync_phase = c.fs == FsKind::kUfs;  // The paper runs the sync phase on UFS only.
    const auto r = bench::CheckOk(
        workload::RunLargeFile(platform, kFileBytes, sync_phase), c.label);
    std::printf("%-14s %9.2f %9.2f %9.2f ", c.label, bench::Mbps(kFileBytes, r.seq_write),
                bench::Mbps(kFileBytes, r.seq_read), bench::Mbps(kFileBytes, r.rand_write_async));
    if (sync_phase) {
      std::printf("%9.2f ", bench::Mbps(kFileBytes, r.rand_write_sync));
    } else {
      std::printf("%9s ", "-");
    }
    std::printf("%9.2f %9.2f\n", bench::Mbps(kFileBytes, r.seq_read_again),
                bench::Mbps(kFileBytes, r.rand_read));
  }
  return 0;
}
