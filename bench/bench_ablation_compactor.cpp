// Ablation (§2.3, §4.2): what the free-space compactor and the fill-to-threshold policy buy.
//
// Random synchronous 4 KB updates on UFS/VLD at 80% utilization under three allocator regimes:
//   greedy            — no compactor, pure nearest-free-block writing (§2.2's model);
//   fill, no idle     — fill-to-threshold, but the disk never gets idle time to compact;
//   fill + compaction — periodic idle intervals let the hole-plugging compactor run.
// Also sweeps the track-switch threshold, the knob Figure 2 models.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/workload/benchmarks.h"
#include "src/workload/platform.h"

namespace {

using namespace vlog;

double RunMs(bool compactor_enabled, double threshold, bool idle_time) {
  workload::PlatformConfig config;
  config.fs_kind = workload::FsKind::kUfs;
  config.disk_kind = workload::DiskKind::kVld;
  config.vld.compactor_enabled = compactor_enabled;
  config.vld.track_switch_threshold = threshold;
  config.vld.target_empty_tracks = 1000;
  workload::Platform platform(config);
  bench::Check(platform.Format(), "format");
  const auto& sb = platform.ufs()->superblock();
  const uint64_t capacity = static_cast<uint64_t>(sb.cg_count) * sb.DataBlocksPerCg() * 4096;
  const uint64_t file_bytes = capacity * 8 / 10 / 4096 * 4096;
  bench::Check(workload::FillFile(platform, "/d", file_bytes), "fill");

  common::Rng rng(11);
  std::vector<std::byte> block(4096);
  const uint64_t blocks = file_bytes / 4096;
  common::Duration busy = 0;
  int measured = 0;
  for (int burst = 0; burst < 12; ++burst) {
    const common::Time t0 = platform.clock().Now();
    for (int i = 0; i < 50; ++i) {
      bench::Check(platform.fs().Write("/d", rng.Below(blocks) * 4096, block,
                                       fs::WritePolicy::kSync),
                   "update");
    }
    if (burst >= 4) {
      busy += platform.clock().Now() - t0;
      measured += 50;
    }
    if (idle_time) {
      platform.RunIdle(common::Seconds(2));
    }
  }
  return bench::Ms(busy) / measured;
}

}  // namespace

int main() {
  bench::Header("Ablation: compactor & fill-to-threshold policy (UFS/VLD, 80% util, ST19101)");
  std::printf("%-34s %14s\n", "regime", "ms per 4 KB");
  std::printf("%-34s %14.3f\n", "greedy (no compactor)", RunMs(false, 0.25, false));
  std::printf("%-34s %14.3f\n", "fill-to-75%, no idle time", RunMs(true, 0.25, false));
  std::printf("%-34s %14.3f\n", "fill-to-75% + idle compaction", RunMs(true, 0.25, true));

  std::printf("\nTrack-switch threshold sweep (with idle compaction):\n");
  std::printf("%-34s %14s\n", "reserve per track", "ms per 4 KB");
  for (const double threshold : {0.05, 0.15, 0.25, 0.40, 0.60}) {
    char label[64];
    std::snprintf(label, sizeof label, "reserve %.0f%% (fill to %.0f%%)", threshold * 100,
                  (1 - threshold) * 100);
    std::printf("%-34s %14.3f\n", label, RunMs(true, threshold, true));
  }
  bench::Note("\nThe §2.3 model says moderate reserves beat both extremes; compaction converts");
  bench::Note("idle time into empty tracks that keep eager writes near the head.");
  return 0;
}
