// Ablation (Appendix A.1 / §4.2): the choice of the VLD physical block size.
//
// Formula (9) predicts that locating all the free sectors for a 4 KB logical block is cheapest
// when the physical block size matches the logical block size (b == B). This bench prints the
// model's prediction and then measures real VLD write latency for physical blocks of 1, 2, 4,
// and 8 sectors at two utilizations.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/models/analytic.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace {

using namespace vlog;

// Average synchronous 4 KB write latency at roughly `target_util` logical utilization.
double MeasureMs(uint32_t block_sectors, double target_util) {
  common::Clock clock;
  simdisk::SimDisk raw(simdisk::Truncated(simdisk::SeagateSt19101(), 11), &clock);
  core::VldConfig config;
  config.block_sectors = block_sectors;
  config.compactor_enabled = false;  // Isolate the allocator's search cost (greedy mode).
  core::Vld vld(&raw, config);
  bench::Check(vld.Format(), "format");

  const uint64_t logical_4k = vld.SectorCount() / 8;
  const uint64_t used = static_cast<uint64_t>(target_util * logical_4k);
  std::vector<std::byte> block(4096, std::byte{1});
  for (uint64_t b = 0; b < used; ++b) {
    bench::Check(vld.Write(b * 8, block), "fill");
  }
  common::Rng rng(3);
  for (int i = 0; i < 100; ++i) {  // Reach a steady head position.
    bench::Check(vld.Write(rng.Below(used) * 8, block), "warmup");
  }
  const common::Time t0 = clock.Now();
  constexpr int kWrites = 400;
  for (int i = 0; i < kWrites; ++i) {
    bench::Check(vld.Write(rng.Below(used) * 8, block), "write");
  }
  return bench::Ms(clock.Now() - t0) / kWrites;
}

}  // namespace

int main() {
  bench::Header("Ablation: VLD physical block size (logical block B = 8 sectors = 4 KB)");
  const simdisk::DiskParams st = simdisk::SeagateSt19101();
  const uint32_t n = st.geometry.sectors_per_track;
  const double sector_ms = bench::Ms(st.SectorTime());

  std::printf("%-10s | %-23s | %-23s\n", "", "util 30%", "util 70%");
  std::printf("%10s | %10s %12s | %10s %12s\n", "b(sectors)", "model(ms)", "measured(ms)",
              "model(ms)", "measured(ms)");
  for (const uint32_t b : {1u, 2u, 4u, 8u}) {
    std::printf("%10u |", b);
    for (const double util : {0.30, 0.70}) {
      const double model_ms = models::BlockSkips(1.0 - util, n, 8, b) * sector_ms;
      const double measured = MeasureMs(b, util);
      std::printf(" %10.3f %12.3f |", model_ms, measured);
    }
    std::printf("\n");
  }
  bench::Note("\nThe model covers only the locate component; measurements include SCSI,");
  bench::Note("transfer, and the map-sector write. Matched sizes (b=8) win, as Appendix A.1");
  bench::Note("predicts — the paper's 4 KB choice.");
  return 0;
}
