// Small table-printing helpers shared by the figure/table reproduction binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/status.h"
#include "src/common/time.h"

namespace vlog::bench {

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

// Aborts the benchmark with a readable message when a simulation step fails.
inline void Check(const common::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(common::StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, value.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(value).value();
}

inline double Ms(common::Duration d) { return common::ToMilliseconds(d); }

// Bandwidth in MB/s for `bytes` moved in `elapsed`.
inline double Mbps(uint64_t bytes, common::Duration elapsed) {
  if (elapsed <= 0) {
    return 0;
  }
  return static_cast<double>(bytes) / 1e6 / common::ToSeconds(elapsed);
}

}  // namespace vlog::bench

#endif  // BENCH_BENCH_UTIL_H_
