// Shared helpers for the figure/table reproduction binaries: table printing, flag parsing,
// stat-window diffing, and the unified JSON metrics report every bench emits.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/obs/histogram.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace vlog::bench {

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

// Aborts the benchmark with a readable message when a simulation step fails.
inline void Check(const common::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(common::StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, value.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(value).value();
}

inline double Ms(common::Duration d) { return common::ToMilliseconds(d); }

// Bandwidth in MB/s for `bytes` moved in `elapsed`.
inline double Mbps(uint64_t bytes, common::Duration elapsed) {
  if (elapsed <= 0) {
    return 0;
  }
  return static_cast<double>(bytes) / 1e6 / common::ToSeconds(elapsed);
}

// --- Common bench flags ---
//
//   --smoke        shrink iteration counts for CI (each bench defines what that means)
//   --json=PATH    write the unified metrics report to PATH
//   --nvm          run the NVM-staging legs instead of the default sweep (bench_queue_depth)
struct BenchFlags {
  bool smoke = false;
  bool nvm = false;
  std::string json_path;

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--smoke") == 0) {
        flags.smoke = true;
      } else if (std::strcmp(argv[i], "--nvm") == 0) {
        flags.nvm = true;
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        flags.json_path = argv[i] + 7;
      } else {
        std::fprintf(stderr, "unknown flag %s (known: --smoke --nvm --json=PATH)\n", argv[i]);
        std::exit(2);
      }
    }
    return flags;
  }
};

// Measurement window over any stats struct with operator- (DiskStats, VldStats,
// VirtualLogStats, ...): snapshot at construction, Delta() subtracts it from the live value.
template <typename Stats>
class StatWindow {
 public:
  explicit StatWindow(const Stats& live) : live_(&live), start_(live) {}
  Stats Delta() const { return *live_ - start_; }
  void Restart() { start_ = *live_; }

 private:
  const Stats* live_;
  Stats start_;
};

// The unified per-bench metrics report ("vlog-bench/1"): one row per configuration with IOPS,
// a latency percentile summary, and the per-request time breakdown — every bench emits the
// same schema so downstream tooling can diff runs without per-bench parsers.
class MetricsReport {
 public:
  explicit MetricsReport(std::string bench) : bench_(std::move(bench)) {}

  // `latency_ns`: per-request latencies over the measured window. `breakdown_total_ns`: sum of
  // the same requests' component times (so component/count = mean per request); its components
  // including queueing sum to the window's total simulated request time. Pass a default
  // TimeBreakdown when the bench measured no per-request breakdown.
  void AddRow(const std::string& label, double iops, const obs::LatencyHistogram& latency_ns,
              const obs::TimeBreakdown& breakdown_total_ns,
              const std::map<std::string, double>& extra = {}) {
    rows_.push_back(Row{label, iops, latency_ns, breakdown_total_ns, extra});
  }

  std::string Json() const {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("schema");
    w.String("vlog-bench/1");
    w.Key("bench");
    w.String(bench_);
    w.Key("rows");
    w.BeginArray();
    for (const Row& row : rows_) {
      w.BeginObject();
      w.Key("label");
      w.String(row.label);
      w.Key("iops");
      w.Double(row.iops);
      w.Key("latency_us");
      w.BeginObject();
      w.Key("count");
      w.UInt(row.latency_ns.Count());
      w.Key("mean");
      w.Double(row.latency_ns.Mean() / 1000.0);
      w.Key("p50");
      w.Double(row.latency_ns.Percentile(50) / 1000.0);
      w.Key("p90");
      w.Double(row.latency_ns.Percentile(90) / 1000.0);
      w.Key("p99");
      w.Double(row.latency_ns.Percentile(99) / 1000.0);
      w.Key("max");
      w.Double(static_cast<double>(row.latency_ns.Max()) / 1000.0);
      w.EndObject();
      w.Key("breakdown_us");
      w.BeginObject();
      const double n = row.latency_ns.Count() > 0
                           ? static_cast<double>(row.latency_ns.Count())
                           : 1.0;
      const auto mean_us = [&](common::Duration total) {
        return static_cast<double>(total) / n / 1000.0;
      };
      w.Key("queueing");
      w.Double(mean_us(row.breakdown.queueing));
      w.Key("controller");
      w.Double(mean_us(row.breakdown.controller));
      w.Key("seek");
      w.Double(mean_us(row.breakdown.seek));
      w.Key("head_switch");
      w.Double(mean_us(row.breakdown.head_switch));
      w.Key("rotation");
      w.Double(mean_us(row.breakdown.rotation));
      w.Key("transfer");
      w.Double(mean_us(row.breakdown.transfer));
      w.Key("flush");
      w.Double(mean_us(row.breakdown.flush));
      w.Key("nvm");
      w.Double(mean_us(row.breakdown.nvm));
      w.Key("host_cpu");
      w.Double(mean_us(row.breakdown.host_cpu));
      w.Key("total");
      w.Double(mean_us(row.breakdown.Total()));
      w.EndObject();
      w.Key("extra");
      w.BeginObject();
      for (const auto& [key, value] : row.extra) {
        w.Key(key);
        w.Double(value);
      }
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    return w.str();
  }

  // Writes the report when --json was given; silently does nothing otherwise.
  void MaybeWrite(const BenchFlags& flags) const {
    if (flags.json_path.empty()) {
      return;
    }
    std::FILE* f = std::fopen(flags.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", flags.json_path.c_str());
      std::exit(1);
    }
    const std::string json = Json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("metrics written to %s\n", flags.json_path.c_str());
  }

 private:
  struct Row {
    std::string label;
    double iops = 0;
    obs::LatencyHistogram latency_ns;
    obs::TimeBreakdown breakdown;
    std::map<std::string, double> extra;
  };

  std::string bench_;
  std::vector<Row> rows_;
};

// Path for a bench's timeline artifact, derived from --json=PATH: "X.json" becomes
// "X.timeline.json" (any other PATH just gains the suffix). Empty when --json was not given,
// so timeline artifacts always land next to the vlog-bench/1 report.
inline std::string TimelinePath(const BenchFlags& flags) {
  if (flags.json_path.empty()) {
    return "";
  }
  std::string path = flags.json_path;
  const char suffix[] = ".json";
  const size_t n = sizeof(suffix) - 1;
  if (path.size() >= n && path.compare(path.size() - n, n, suffix) == 0) {
    path.resize(path.size() - n);
  }
  return path + ".timeline.json";
}

// Writes a vlog-timeline/1 document next to the --json report; no-op without --json.
inline void MaybeWriteTimeline(const BenchFlags& flags, const std::string& timeline_json) {
  const std::string path = TimelinePath(flags);
  if (path.empty()) {
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(timeline_json.data(), 1, timeline_json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("timeline written to %s\n", path.c_str());
}

// Like MaybeWriteTimeline, but for a bench emitting several timeline artifacts: "X.json"
// becomes "X.<name>.timeline.json" (so the CI artifact glob BENCH_*timeline*.json still
// matches). No-op without --json.
inline void MaybeWriteNamedTimeline(const BenchFlags& flags, const std::string& name,
                                    const std::string& timeline_json) {
  if (flags.json_path.empty()) {
    return;
  }
  std::string path = TimelinePath(flags);
  const char suffix[] = ".timeline.json";
  path.insert(path.size() - (sizeof(suffix) - 1), "." + name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(timeline_json.data(), 1, timeline_json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("timeline written to %s\n", path.c_str());
}

// Prints one aligned percentile table line for a row (values in ms), matching the JSON schema.
inline void PrintPercentileRow(const std::string& label, double iops,
                               const obs::LatencyHistogram& latency_ns) {
  std::printf("%-16s %10.0f %10.3f %10.3f %10.3f %10.3f %10.3f\n", label.c_str(), iops,
              latency_ns.Mean() / 1e6, latency_ns.Percentile(50) / 1e6,
              latency_ns.Percentile(90) / 1e6, latency_ns.Percentile(99) / 1e6,
              static_cast<double>(latency_ns.Max()) / 1e6);
}

inline void PrintPercentileHeader() {
  std::printf("%-16s %10s %10s %10s %10s %10s %10s\n", "label", "IOPS", "mean ms", "p50 ms",
              "p90 ms", "p99 ms", "max ms");
}

}  // namespace vlog::bench

#endif  // BENCH_BENCH_UTIL_H_
