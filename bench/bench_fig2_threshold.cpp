// Figure 2: average latency to locate free sectors while filling an initially empty track, as
// a function of the track switch threshold (the fraction of free sectors reserved per track
// before switching). Model (formula 13, with the non-randomness correction of formula 12)
// against a Monte-Carlo fill simulation, for both disks. The curve is U-shaped: switching too
// often pays the switch cost, switching too rarely pays crowded-track rotational delays.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/models/analytic.h"
#include "src/models/track_sim.h"
#include "src/simdisk/disk_params.h"

int main() {
  using namespace vlog;
  bench::Header("Figure 2: latency vs track switch threshold (fill-to-threshold writing)");
  common::Rng rng(42);
  const simdisk::DiskParams disks[] = {simdisk::Hp97560(), simdisk::SeagateSt19101()};

  std::printf("%-10s | %-25s | %-25s\n", "", "HP97560", "ST19101");
  std::printf("%-10s | %11s %11s | %11s %11s\n", "threshold%", "model(ms)", "sim(ms)",
              "model(ms)", "sim(ms)");
  for (int threshold = 2; threshold <= 96; threshold += 6) {
    std::printf("%9d  |", threshold);
    for (const simdisk::DiskParams& d : disks) {
      const uint32_t n = d.geometry.sectors_per_track;
      const uint32_t m = std::max(1u, static_cast<uint32_t>(n * threshold / 100));
      const double switch_sectors = static_cast<double>(d.head_switch) / d.SectorTime();
      const double sector_ms = bench::Ms(d.SectorTime());
      const double model_ms = common::ToMilliseconds(
          models::FillTrackLatency(n, m, d.head_switch, d.SectorTime()));
      const double sim_ms =
          models::SimulateFillTrack(n, m, switch_sectors, 1500, rng) * sector_ms;
      std::printf(" %11.3f %11.3f |", model_ms, sim_ms);
    }
    std::printf("\n");
  }
  bench::Note("\nHigh threshold = frequent switches. The interior optimum justifies the VLD's");
  bench::Note("fill-to-75% policy (reserve ~25% free per track).");
  return 0;
}
