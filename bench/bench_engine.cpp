// Engine wall-clock throughput: how many *simulated* operations (or crash points) the
// simulator retires per wall-second. Every other bench in this directory measures the
// modeled disk; this one measures us — the cost of running a sweep, a saturation curve, or a
// million-op trace on a developer machine or a CI runner. Four legs cover the hot paths
// the engine spends its life in:
//
//   queue:  deep-queue mixed read/write on a bare VLD with a TraceRecorder attached — the
//           virtual-log append path (map index, packed commits), the SPTF picker, and the
//           span/event recording path all in one loop;
//   array:  an 8-member striped VldArray run — eight per-member stacks, cross-disk group
//           commit, the multi-disk completion barrier;
//   sweep:  a cached-disk crash sweep (torn/corrupt/reorder points) — per-point disk-image
//           reconstruction plus full scan recovery, the inner loop of every crashsim ctest.
//           Run once serial (workers=1) and once with the configured worker pool; the two
//           reports must be byte-identical (the determinism contract), and the speedup is
//           reported alongside;
//   governed: the open-loop diurnal driver with a duty-cycled CompactionGovernor and a live
//           timeline — the long-horizon steady-state loop of bench_queue_depth (idle jumps,
//           per-batch governor decisions, preemptible compaction bursts, window polls).
//
// Output is the unified vlog-bench/1 JSON (one row per leg; wall-clock rates in "extra")
// plus acceptance gates under --smoke: generous ops/wall-second floors that catch an
// order-of-magnitude engine regression without flaking on a noisy shared runner, and the
// exact parallel==serial sweep-report identity at any worker count.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/array/vld_array.h"
#include "src/common/time.h"
#include "src/core/governor.h"
#include "src/core/vld.h"
#include "src/crashsim/harness.h"
#include "src/crashsim/scenarios.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"
#include "src/workload/array_sweep.h"
#include "src/workload/queue_sweep.h"

namespace {

using namespace vlog;

constexpr uint64_t kSeed = 2;

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

// One member's full stack, heap-held so the disk's clock pointer stays valid.
struct Stack {
  common::Clock clock;
  std::unique_ptr<simdisk::SimDisk> disk;
  std::unique_ptr<core::Vld> vld;
};

std::vector<std::unique_ptr<Stack>> MakeStacks(uint32_t n) {
  std::vector<std::unique_ptr<Stack>> stacks;
  for (uint32_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Stack>();
    s->disk = std::make_unique<simdisk::SimDisk>(simdisk::Truncated(simdisk::Hp97560(), 36),
                                                 &s->clock);
    s->vld = std::make_unique<core::Vld>(s->disk.get(), core::VldConfig{.queue_depth = 32});
    stacks.push_back(std::move(s));
  }
  return stacks;
}

std::vector<core::Vld*> Members(const std::vector<std::unique_ptr<Stack>>& stacks) {
  std::vector<core::Vld*> members;
  for (const auto& s : stacks) {
    members.push_back(s->vld.get());
  }
  return members;
}

void PrintRate(const char* leg, double units, const char* unit, double wall_s) {
  std::printf("%-8s %10.0f %-12s %8.2fs wall %12.0f %s/wall-s\n", leg, units, unit, wall_s,
              wall_s > 0 ? units / wall_s : 0, unit);
}

// A generous floor: catches an order-of-magnitude regression, tolerates a slow CI runner.
void GateFloor(const char* leg, double rate, double floor) {
  if (rate < floor) {
    std::fprintf(stderr, "FATAL bench_engine gate: %s leg ran at %.0f ops/wall-s, floor %.0f\n",
                 leg, rate, floor);
    std::exit(1);
  }
  std::printf("gate ok: %s >= %.0f ops/wall-s (measured %.0f)\n", leg, floor, rate);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  uint32_t workers = std::thread::hardware_concurrency();
  if (workers == 0) {
    workers = 1;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = static_cast<uint32_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag %s (known: --smoke --json=PATH --workers=N)\n",
                   argv[i]);
      return 2;
    }
  }
  bench::BenchFlags flags;
  flags.smoke = smoke;
  flags.json_path = json_path;

  bench::Header("Engine throughput: simulated ops per wall-second");
  bench::MetricsReport report("engine");

  // --- Leg 1: deep-queue mixed read/write, bare VLD, tracer attached ---
  {
    const int ops = smoke ? 4000 : 40000;
    auto stacks = MakeStacks(1);
    Stack& s = *stacks[0];
    obs::TraceRecorder tracer(&s.clock);
    s.disk->set_tracer(&tracer);
    bench::Check(s.vld->Format(), "queue leg format");
    workload::MixedStreamOptions options;
    options.streams = 16;
    options.ops = ops;
    options.warmup = ops / 10;
    options.seed = kSeed;
    options.stream_configs = {workload::StreamConfig{.read_fraction = 0.5}};
    const auto t0 = std::chrono::steady_clock::now();
    const workload::MixedStreamResult r =
        bench::CheckOk(workload::RunMixedStreams(*s.vld, options), "queue leg");
    const double wall = Seconds(std::chrono::steady_clock::now() - t0);
    const double rate = wall > 0 ? static_cast<double>(r.ops) / wall : 0;
    PrintRate("queue", static_cast<double>(r.ops), "ops", wall);
    report.AddRow("queue", r.iops, r.latency_hist, r.breakdown,
                  {{"ops", static_cast<double>(r.ops)},
                   {"wall_seconds", wall},
                   {"ops_per_wall_s", rate},
                   {"spans", static_cast<double>(tracer.spans().size())}});
    if (smoke) {
      GateFloor("queue", rate, 500);
    }
  }

  // --- Leg 2: 8-member striped array ---
  {
    const int updates = smoke ? 1200 : 8000;
    auto stacks = MakeStacks(8);
    array::VldArray array(Members(stacks), {.mode = array::ArrayMode::kStriped});
    bench::Check(array.Format(), "array leg format");
    const uint32_t region_blocks =
        static_cast<uint32_t>(array.SectorCount() / array.block_sectors()) / 2;
    const auto t0 = std::chrono::steady_clock::now();
    const workload::ArraySweepResult r = bench::CheckOk(
        workload::RunArrayRandomUpdates(array, 16, updates, updates / 10, kSeed, region_blocks),
        "array leg");
    const double wall = Seconds(std::chrono::steady_clock::now() - t0);
    const double rate = wall > 0 ? static_cast<double>(r.updates) / wall : 0;
    PrintRate("array", static_cast<double>(r.updates), "ops", wall);
    report.AddRow("array", r.iops, r.latency_hist, obs::TimeBreakdown{},
                  {{"ops", static_cast<double>(r.updates)},
                   {"wall_seconds", wall},
                   {"ops_per_wall_s", rate},
                   {"members", 8.0}});
    if (smoke) {
      GateFloor("array", rate, 150);
    }
  }

  // --- Leg 3: crash sweep, serial vs worker pool, byte-identical reports required ---
  {
    crashsim::CrashSweepOptions options;
    options.enumerate.seed = 1;
    options.reorder.seed = 1;
    if (smoke) {
      options.reorder.samples_per_epoch = 6;
    }
    const auto sweep_once = [&](uint32_t n_workers) {
      crashsim::VldCrashSim sim(crashsim::CrashSimCachedDiskParams(),
                                crashsim::CrashSimVldConfig());
      bench::Check(
          crashsim::RecordVldScenario(crashsim::VldScenario::kQueuedGroupCommit, sim),
          "sweep record");
      crashsim::CrashSweepOptions run = options;
      run.workers = n_workers;
      return sim.Sweep(run);
    };

    const auto t_serial = std::chrono::steady_clock::now();
    const crashsim::CrashSweepReport serial = sweep_once(1);
    const double wall_serial = Seconds(std::chrono::steady_clock::now() - t_serial);

    const auto t_par = std::chrono::steady_clock::now();
    const crashsim::CrashSweepReport parallel = sweep_once(workers);
    const double wall_par = Seconds(std::chrono::steady_clock::now() - t_par);

    if (!serial.ok() || !parallel.ok()) {
      std::fprintf(stderr, "FATAL sweep leg: invariant violations\n%s\n",
                   (!serial.ok() ? serial : parallel).Summary().c_str());
      return 1;
    }
    if (serial.Summary() != parallel.Summary()) {
      std::fprintf(stderr,
                   "FATAL sweep leg: parallel (workers=%u) report differs from serial\n"
                   "--- serial ---\n%s\n--- parallel ---\n%s\n",
                   workers, serial.Summary().c_str(), parallel.Summary().c_str());
      return 1;
    }
    const double rate_serial =
        wall_serial > 0 ? static_cast<double>(serial.points) / wall_serial : 0;
    const double rate_par = wall_par > 0 ? static_cast<double>(parallel.points) / wall_par : 0;
    PrintRate("sweep/1", static_cast<double>(serial.points), "points", wall_serial);
    char label[32];
    std::snprintf(label, sizeof(label), "sweep/%u", workers);
    PrintRate(label, static_cast<double>(parallel.points), "points", wall_par);
    std::printf("sweep parallel==serial report: identical (%llu points, workers=%u)\n",
                static_cast<unsigned long long>(serial.points), workers);
    report.AddRow("sweep", rate_serial, obs::LatencyHistogram{}, obs::TimeBreakdown{},
                  {{"points", static_cast<double>(serial.points)},
                   {"wall_seconds_serial", wall_serial},
                   {"points_per_wall_s_serial", rate_serial},
                   {"workers", static_cast<double>(workers)},
                   {"wall_seconds_parallel", wall_par},
                   {"points_per_wall_s_parallel", rate_par}});
    if (smoke) {
      GateFloor("sweep", rate_serial, 150);
    }
  }

  // --- Leg 4: duty-cycled governed compaction under open-loop diurnal arrivals ---
  //
  // The long-horizon bench_queue_depth leg's hot loop: arrival pre-generation, idle jumps
  // with trough grants, per-batch governor decisions, preemptible compaction bursts with
  // mid-track resume, and timeline polls — the path a million-op steady-state run lives in.
  {
    const int arrivals = smoke ? 3000 : 30000;
    auto stacks = MakeStacks(1);
    Stack& s = *stacks[0];
    bench::Check(s.vld->Format(), "governed leg format");
    const uint32_t region = static_cast<uint32_t>(s.vld->logical_blocks() * 0.55);
    std::vector<std::byte> payload(4096);
    for (uint32_t b = 0; b < region; ++b) {
      bench::Check(s.vld->Write(static_cast<simdisk::Lba>(b) * 8, payload),
                   "governed leg prepopulate");
    }
    workload::OpenLoopOptions options;
    options.process = workload::ArrivalProcess::kDiurnal;
    options.rate_ops_per_s = 24;
    options.diurnal_period = common::Seconds(2);
    options.diurnal_amplitude = 0.75;
    options.arrivals = arrivals;
    options.region_blocks = region;
    options.max_batch = 8;
    options.seed = kSeed;
    obs::Timeline timeline(obs::TimelineConfig{.window = common::Seconds(2),
                                               .start = s.clock.Now()});
    obs::WindowedHistogram& latency = timeline.AddHistogram("latency");
    s.vld->RegisterTimelineProbes(timeline, "");
    core::GovernorConfig gov_config;
    gov_config.slo_budget = common::Milliseconds(400);
    gov_config.target_empty_tracks = 8;
    core::CompactionGovernor governor(s.vld.get(), &timeline, gov_config);
    governor.RegisterTimelineProbes(timeline, "");
    const auto t0 = std::chrono::steady_clock::now();
    const workload::OpenLoopResult r = bench::CheckOk(
        workload::RunGovernedOpenLoop(*s.vld, options, &governor, &timeline, &latency),
        "governed leg");
    const double wall = Seconds(std::chrono::steady_clock::now() - t0);
    timeline.Finish(s.clock.Now());
    const double rate = wall > 0 ? static_cast<double>(r.ops) / wall : 0;
    PrintRate("governed", static_cast<double>(r.ops), "ops", wall);
    std::printf("governed %10llu tracks compacted, %llu governor decisions\n",
                static_cast<unsigned long long>(s.vld->compactor().stats().tracks_compacted),
                static_cast<unsigned long long>(governor.stats().decisions));
    report.AddRow("governed", r.achieved_iops, r.latency_hist, r.breakdown,
                  {{"ops", static_cast<double>(r.ops)},
                   {"wall_seconds", wall},
                   {"ops_per_wall_s", rate},
                   {"tracks_compacted",
                    static_cast<double>(s.vld->compactor().stats().tracks_compacted)},
                   {"decisions", static_cast<double>(governor.stats().decisions)}});
    if (smoke) {
      // The governed loop must compact (an idle governor would measure the wrong path) and
      // hold the same order-of-magnitude floor as the other legs.
      if (s.vld->compactor().stats().tracks_compacted == 0) {
        std::fprintf(stderr, "FATAL bench_engine gate: governed leg never compacted\n");
        return 1;
      }
      GateFloor("governed", rate, 500);
    }
  }

  report.MaybeWrite(flags);
  return 0;
}
