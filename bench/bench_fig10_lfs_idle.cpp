// Figure 10: performance of LFS (with the buffer cache as NVRAM) as a function of available
// idle time, at 80% disk utilization. Bursts of random 4 KB updates are separated by idle
// intervals during which dirty data is flushed and the cleaner runs. One curve per burst size.
// Expected shape: improvement arrives only at relatively long idle intervals (the cleaner
// moves segment-sized data), in visible steps; small bursts that fit in a cleaned segment
// converge to memory speed.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/benchmarks.h"
#include "src/workload/platform.h"

int main() {
  using namespace vlog;
  bench::Header("Figure 10: LFS (with NVRAM) latency vs idle interval length (80% util)");
  const uint64_t bursts_kb[] = {128, 256, 504, 1008, 2016, 4032};
  const double idles_s[] = {0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0};

  std::printf("%9s", "idle(s)");
  for (const uint64_t b : bursts_kb) {
    std::printf(" %8lluK", static_cast<unsigned long long>(b));
  }
  std::printf("   (ms per 4 KB update)\n");

  for (const double idle : idles_s) {
    std::printf("%9.1f", idle);
    for (const uint64_t burst_kb : bursts_kb) {
      workload::PlatformConfig config;
      config.fs_kind = workload::FsKind::kLfs;
      config.disk_kind = workload::DiskKind::kRegular;
      workload::Platform platform(config);
      bench::Check(platform.Format(), "format");
      const uint64_t capacity =
          static_cast<uint64_t>(platform.log_disk()->LogicalBlocks()) * 4096;
      const uint64_t file_bytes = capacity * 8 / 10 / 4096 * 4096;
      // Keep total update traffic roughly constant (~16 MB) so the cleaner/compactor reaches
      // steady state even for small bursts.
      const int rounds = std::max(10, static_cast<int>((16 << 20) / (burst_kb << 10)));
      const auto latency = bench::CheckOk(
          workload::RunBurstIdle(platform, file_bytes, burst_kb << 10, common::Seconds(idle),
                                 rounds, /*warmup_rounds=*/rounds / 3),
          "burst");
      std::printf(" %9.3f", bench::Ms(latency));
    }
    std::printf("\n");
  }
  bench::Note("\nColumns are burst sizes. LFS only benefits from long idle intervals because");
  bench::Note("cleaning moves whole segments; without enough idle to flush the burst, latency");
  bench::Note("stays poor.");
  return 0;
}
