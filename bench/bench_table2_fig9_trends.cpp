// Table 2 + Figure 9: the effect of technology trends.
//
// The §5.3 benchmark (random synchronous 4 KB updates on UFS, 80% utilization) is repeated on
// three platforms — (HP97560, SPARCstation-10), (ST19101, SPARCstation-10), and (ST19101,
// UltraSPARC-170) — on the regular disk and on the VLD (the VLD measured right after a
// compactor run, as in the paper). Table 2 is the speed-up; Figure 9 is the latency breakdown
// into SCSI overhead / locate / transfer / other (host). Expected shape: update-in-place grows
// increasingly dominated by mechanical "locate" time while virtual logging stays balanced, so
// the gap widens as disk and host improve.
//
// A TraceRecorder is attached for the measured window, so alongside the paper's mean-based
// breakdown the unified JSON report carries per-update latency percentiles and the exact
// seek/rotation/transfer/queueing decomposition.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/benchmarks.h"
#include "src/workload/platform.h"

namespace {

using namespace vlog;

struct Measured {
  common::Duration avg_latency = 0;
  simdisk::LatencyBreakdown per_op;      // The paper's 4-way split (Figure 9).
  obs::LatencyHistogram latency_ns;      // Per-update latency over the measured window.
  obs::TimeBreakdown breakdown;          // Exact component sums over the measured window.
  double iops = 0;
};

Measured RunConfig(workload::DiskModel disk, workload::HostKind host, workload::DiskKind kind,
                   int updates) {
  workload::PlatformConfig config;
  config.fs_kind = workload::FsKind::kUfs;
  config.disk_model = disk;
  config.disk_kind = kind;
  config.host_kind = host;
  // The paper measures the VLD "immediately after running a compactor": let compaction produce
  // as many empty tracks as the free space allows before the measured updates.
  config.vld.target_empty_tracks = 1000;
  workload::Platform platform(config);
  bench::Check(platform.Format(), "format");

  const auto& sb = platform.ufs()->superblock();
  const uint64_t capacity = static_cast<uint64_t>(sb.cg_count) * sb.DataBlocksPerCg() * 4096;
  const uint64_t file_bytes = capacity * 8 / 10 / 4096 * 4096;  // 80% utilization.
  bench::Check(workload::FillFile(platform, "/bench_data", file_bytes), "fill");

  // Warm up into steady state, then give the compactor an idle window (§5.4 measures the VLD
  // latency immediately after running a compactor).
  common::Rng rng(5);
  const uint64_t blocks = file_bytes / 4096;
  std::vector<std::byte> block(4096);
  for (int i = 0; i < 100; ++i) {
    bench::Check(platform.fs().Write("/bench_data", rng.Below(blocks) * 4096, block,
                                     fs::WritePolicy::kSync),
                 "warmup");
  }
  platform.RunIdle(common::Seconds(60));

  // Trace only the measured updates: one span per synchronous write.
  obs::TraceRecorder tracer(&platform.clock());
  platform.AttachTracer(&tracer);
  bench::StatWindow<simdisk::DiskStats> disk_window(platform.raw_disk().stats());
  const common::Time t0 = platform.clock().Now();
  for (int i = 0; i < updates; ++i) {
    bench::Check(platform.fs().Write("/bench_data", rng.Below(blocks) * 4096, block,
                                     fs::WritePolicy::kSync),
                 "update");
  }
  const common::Duration elapsed = platform.clock().Now() - t0;
  platform.AttachTracer(nullptr);

  Measured m;
  const simdisk::DiskStats delta = disk_window.Delta();
  m.avg_latency = elapsed / updates;
  m.per_op.scsi_overhead = delta.breakdown.scsi_overhead / updates;
  m.per_op.locate = delta.breakdown.locate / updates;
  m.per_op.transfer = delta.breakdown.transfer / updates;
  m.per_op.other = m.avg_latency - m.per_op.scsi_overhead - m.per_op.locate - m.per_op.transfer;
  m.latency_ns = tracer.latency_hist();
  m.breakdown = tracer.totals();
  m.iops = elapsed > 0 ? static_cast<double>(updates) / common::ToSeconds(elapsed) : 0;
  return m;
}

void PrintBreakdown(const char* label, const Measured& m) {
  const double total = static_cast<double>(m.avg_latency);
  std::printf("  %-22s %7.2f ms | scsi %4.1f%%  locate %4.1f%%  transfer %4.1f%%  other %4.1f%%\n",
              label, bench::Ms(m.avg_latency), 100.0 * m.per_op.scsi_overhead / total,
              100.0 * m.per_op.locate / total, 100.0 * m.per_op.transfer / total,
              100.0 * m.per_op.other / total);
}

}  // namespace

int main(int argc, char** argv) {
  using workload::DiskKind;
  using workload::DiskModel;
  using workload::HostKind;
  const bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv);
  const int updates = flags.smoke ? 40 : 150;
  bench::Header("Table 2 + Figure 9: technology trends (UFS random sync updates, 80% util)");

  struct PlatformCase {
    const char* label;
    DiskModel disk;
    HostKind host;
    double paper_speedup;
  };
  const PlatformCase cases[] = {
      {"HP97560 + SPARC-10", DiskModel::kHp97560, HostKind::kSparc10, 2.6},
      {"ST19101 + SPARC-10", DiskModel::kSt19101, HostKind::kSparc10, 5.1},
      {"ST19101 + Ultra-170", DiskModel::kSt19101, HostKind::kUltra170, 9.9},
  };

  bench::MetricsReport report("table2_fig9_trends");
  std::printf("\nTable 2 (speed-up of UFS/VLD over UFS/regular):\n");
  std::printf("%-24s %14s %14s %10s %12s\n", "platform", "regular ms", "VLD ms", "speedup",
              "paper");
  Measured breakdown_rows[3][2];
  int row = 0;
  for (const PlatformCase& c : cases) {
    const Measured regular = RunConfig(c.disk, c.host, DiskKind::kRegular, updates);
    const Measured vld = RunConfig(c.disk, c.host, DiskKind::kVld, updates);
    breakdown_rows[row][0] = regular;
    breakdown_rows[row][1] = vld;
    report.AddRow(std::string(c.label) + " regular", regular.iops, regular.latency_ns,
                  regular.breakdown);
    report.AddRow(std::string(c.label) + " VLD", vld.iops, vld.latency_ns, vld.breakdown,
                  {{"paper_speedup", c.paper_speedup}});
    std::printf("%-24s %14.2f %14.2f %9.1fx %11.1fx\n", c.label, bench::Ms(regular.avg_latency),
                bench::Ms(vld.avg_latency),
                static_cast<double>(regular.avg_latency) / vld.avg_latency, c.paper_speedup);
    ++row;
  }

  std::printf("\nFigure 9 (latency breakdown; left bar update-in-place, right bar VLD):\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%s\n", cases[i].label);
    PrintBreakdown("update-in-place", breakdown_rows[i][0]);
    PrintBreakdown("virtual log (VLD)", breakdown_rows[i][1]);
  }
  bench::Note("\nShape check: update-in-place becomes locate-dominated as disks improve; the");
  bench::Note("virtual log stays balanced between host and disk, so the gap keeps widening.");
  report.MaybeWrite(flags);
  return 0;
}
