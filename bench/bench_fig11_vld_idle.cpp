// Figure 11: performance of UFS on the VLD as a function of available idle time, at 80% disk
// utilization. Same burst/idle pattern as Figure 10, but the VLD's free-space compactor works
// at track granularity, so performance improves along a continuum of much shorter idle
// intervals and is far more predictable than the LFS cleaner.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/benchmarks.h"
#include "src/workload/platform.h"

int main() {
  using namespace vlog;
  bench::Header("Figure 11: UFS on VLD latency vs idle interval length (80% util)");
  const uint64_t bursts_kb[] = {128, 256, 512, 1024, 2048, 4096};
  const double idles_s[] = {0.0, 0.05, 0.1, 0.2, 0.3, 0.45, 0.6};

  std::printf("%9s", "idle(s)");
  for (const uint64_t b : bursts_kb) {
    std::printf(" %8lluK", static_cast<unsigned long long>(b));
  }
  std::printf("   (ms per 4 KB update)\n");

  for (const double idle : idles_s) {
    std::printf("%9.2f", idle);
    for (const uint64_t burst_kb : bursts_kb) {
      workload::PlatformConfig config;
      config.fs_kind = workload::FsKind::kUfs;
      config.disk_kind = workload::DiskKind::kVld;
      // Let the compactor use the whole idle interval instead of stopping at a small target.
      config.vld.target_empty_tracks = 64;
      workload::Platform platform(config);
      bench::Check(platform.Format(), "format");
      const auto& sb = platform.ufs()->superblock();
      const uint64_t capacity =
          static_cast<uint64_t>(sb.cg_count) * sb.DataBlocksPerCg() * 4096;
      const uint64_t file_bytes = capacity * 8 / 10 / 4096 * 4096;
      // Keep total update traffic roughly constant (~16 MB) so the cleaner/compactor reaches
      // steady state even for small bursts.
      const int rounds = std::max(10, static_cast<int>((16 << 20) / (burst_kb << 10)));
      const auto latency = bench::CheckOk(
          workload::RunBurstIdle(platform, file_bytes, burst_kb << 10, common::Seconds(idle),
                                 rounds, /*warmup_rounds=*/rounds / 3),
          "burst");
      std::printf(" %9.3f", bench::Ms(latency));
    }
    std::printf("\n");
  }
  bench::Note("\nThe compactor exploits idle intervals an order of magnitude shorter than the");
  bench::Note("LFS cleaner needs (compare Figure 10), and the curves are smooth.");
  return 0;
}
