// Recovery-cost bench (§3.2-§3.3 claims): how long bringing a VLD back takes, by path and by
// log size. The parked-tail path is proportional to the live map; the scan path to the disk
// capacity; a checkpoint bounds the parked path to nearly nothing.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace {

using namespace vlog;

struct Cost {
  double ms;
  uint64_t sectors;
};

Cost RecoverOnce(simdisk::SimDisk& raw, common::Clock& clock, bool expect_scan) {
  core::Vld vld(&raw);
  const common::Time t0 = clock.Now();
  auto info = vld.Recover();
  bench::Check(info.status(), "recover");
  if (info->used_scan != expect_scan) {
    std::fprintf(stderr, "unexpected recovery path\n");
    std::exit(1);
  }
  if (!expect_scan) {
    bench::Check(vld.Park(), "re-park");  // Keep the fast path armed for the caller.
  }
  return {bench::Ms(clock.Now() - t0), info->log_sectors_read};
}

}  // namespace

int main() {
  bench::Header("Recovery cost vs workload history (VLD on ST19101, 23 MB)");
  std::printf("%10s | %-22s | %-22s | %-22s\n", "writes", "parked tail", "after checkpoint",
              "crash scan");
  std::printf("%10s | %10s %10s | %10s %10s | %10s %10s\n", "", "ms", "sectors", "ms",
              "sectors", "ms", "sectors");

  for (const int writes : {100, 1000, 5000, 20000}) {
    common::Clock clock;
    simdisk::SimDisk raw(simdisk::Truncated(simdisk::SeagateSt19101(), 11), &clock);
    {
      core::Vld vld(&raw);
      bench::Check(vld.Format(), "format");
      common::Rng rng(writes);
      std::vector<std::byte> block(4096, std::byte{1});
      for (int i = 0; i < writes; ++i) {
        bench::Check(vld.Write(rng.Below(vld.logical_blocks()) * 8, block), "write");
      }
      bench::Check(vld.Park(), "park");
    }
    const Cost parked = RecoverOnce(raw, clock, /*expect_scan=*/false);
    // Take a checkpoint, park, and measure the bounded path.
    {
      core::Vld vld(&raw);
      bench::Check(vld.Recover().status(), "recover");
      bench::Check(vld.Checkpoint(), "checkpoint");
      bench::Check(vld.Park(), "park");
    }
    const Cost ckpt = RecoverOnce(raw, clock, /*expect_scan=*/false);
    // Crash (the last RecoverOnce re-parked; recover once to consume it, then crash-recover).
    {
      core::Vld vld(&raw);
      bench::Check(vld.Recover().status(), "consume park");
    }
    const Cost scan = RecoverOnce(raw, clock, /*expect_scan=*/true);
    std::printf("%10d | %10.1f %10llu | %10.1f %10llu | %10.1f %10llu\n", writes, parked.ms,
                static_cast<unsigned long long>(parked.sectors), ckpt.ms,
                static_cast<unsigned long long>(ckpt.sectors), scan.ms,
                static_cast<unsigned long long>(scan.sectors));
  }
  bench::Note("\nParked recovery scales with the live map (and is bounded by a checkpoint);");
  bench::Note("the scan path alone costs a full-disk sweep — exactly why the firmware parks");
  bench::Note("the tail during power-down (§3.2).");
  return 0;
}
