// Table 1: parameters of the HP97560 and the Seagate ST19101 disks, as realized by the
// simulator presets (plus the derived quantities the analysis in §2 uses).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/simdisk/disk_params.h"

int main() {
  using namespace vlog;
  bench::Header("Table 1: disk parameters (simulator presets)");
  const simdisk::DiskParams hp = simdisk::Hp97560();
  const simdisk::DiskParams st = simdisk::SeagateSt19101();
  std::printf("%-28s %12s %12s\n", "", "HP97560", "ST19101");
  std::printf("%-28s %12u %12u\n", "Sectors per Track (n)", hp.geometry.sectors_per_track,
              st.geometry.sectors_per_track);
  std::printf("%-28s %12u %12u\n", "Tracks per Cylinder (t)", hp.geometry.tracks_per_cylinder,
              st.geometry.tracks_per_cylinder);
  std::printf("%-28s %9.1f ms %9.1f ms\n", "Head Switch (s)", bench::Ms(hp.head_switch),
              bench::Ms(st.head_switch));
  std::printf("%-28s %9.1f ms %9.1f ms\n", "Minimum Seek",
              bench::Ms(hp.seek.SeekTime(1)), bench::Ms(st.seek.SeekTime(1)));
  std::printf("%-28s %12.0f %12.0f\n", "Rotation Speed (RPM)", hp.rpm, st.rpm);
  std::printf("%-28s %9.1f ms %9.1f ms\n", "SCSI Overhead (o)", bench::Ms(hp.scsi_overhead),
              bench::Ms(st.scsi_overhead));
  std::printf("%-28s %7.2f MB/s %7.2f MB/s\n", "Media bandwidth (derived)",
              hp.MediaBandwidthMbPerS(), st.MediaBandwidthMbPerS());
  std::printf("%-28s %9.2f ms %9.2f ms\n", "Half rotation (derived)",
              bench::Ms(hp.RotationPeriod() / 2), bench::Ms(st.RotationPeriod() / 2));
  return 0;
}
