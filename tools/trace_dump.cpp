// trace_dump: run a canned, seeded queued-write workload against the VLD with tracing on and
// render the recorded spans — a human-readable window into what the TraceRecorder captures.
//
//   trace_dump                 span table: one line per request with its time breakdown
//   trace_dump --span=N        event-by-event tree for span N (its full journey down the stack)
//   trace_dump --events        the chronological event log (all spans interleaved)
//   trace_dump --json          the raw vlog-trace/1 JSON (byte-identical across runs)
//   --depth=D --rounds=R       workload shape (defaults: depth 4, 8 rounds)
//   --cache=N                  volatile write-back cache of N sectors (default 0 = off); the
//                              VLD's barriers then destage it, so flush/destage events appear
//   --reads=P                  fraction of queued ops that are reads (default 0 = all writes);
//                              the region is prepopulated untraced first, so read spans and
//                              any same-batch RAW forwarding markers show up in the dump
//
// The workload is deterministic (fixed seed on the virtual clock), so every mode's output is
// stable run to run — the same property the trace determinism test asserts.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/obs/trace.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace {

using namespace vlog;

double Ms(common::Duration d) { return common::ToMilliseconds(d); }

void Fatal(const common::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

void PrintEvent(const obs::TraceEvent& e) {
  std::printf("  %12.3f ms  %-12s %-6s span=%llu dur=%.3f ms a=%llu b=%llu\n", Ms(e.at),
              obs::EventTypeName(e.type), obs::LayerName(e.layer),
              static_cast<unsigned long long>(e.span_id), Ms(e.dur),
              static_cast<unsigned long long>(e.a), static_cast<unsigned long long>(e.b));
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t depth = 4;
  int rounds = 8;
  uint64_t cache_sectors = 0;
  double read_fraction = 0.0;
  uint64_t show_span = 0;
  bool show_events = false;
  bool show_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--depth=", 8) == 0) {
      depth = static_cast<uint32_t>(std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--cache=", 8) == 0) {
      cache_sectors = static_cast<uint64_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--reads=", 8) == 0) {
      read_fraction = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--span=", 7) == 0) {
      show_span = static_cast<uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--events") == 0) {
      show_events = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      show_json = true;
    } else {
      std::fprintf(stderr,
                   "usage: trace_dump [--depth=D] [--rounds=R] [--cache=N] [--reads=P] "
                   "[--span=N|--events|--json]\n");
      return 2;
    }
  }
  if (depth == 0 || depth > 32 || rounds <= 0 || read_fraction < 0 || read_fraction > 1) {
    std::fprintf(stderr, "trace_dump: depth must be 1..32, rounds > 0, reads in [0, 1]\n");
    return 2;
  }

  // The canned workload: `rounds` closed-loop rounds of `depth` random 4 KB updates through
  // the queued VLD engine (group commit), traced end to end.
  common::Clock clock;
  simdisk::DiskParams params = simdisk::Truncated(simdisk::Hp97560(), 36);
  params.cache.capacity_sectors = cache_sectors;
  simdisk::SimDisk disk(params, &clock);
  obs::TraceRecorder tracer(&clock);
  disk.set_tracer(&tracer);
  core::Vld vld(&disk, core::VldConfig{.queue_depth = 32});
  Fatal(vld.Format(), "format");
  common::Rng rng(2);
  const uint32_t blocks = vld.logical_blocks() / 2;
  std::vector<std::byte> payload(4096, std::byte{0x42});
  if (read_fraction > 0) {
    // Prepopulate the region with the tracer detached, so reads hit mapped blocks without
    // hundreds of setup spans bloating the dump.
    disk.set_tracer(nullptr);
    for (uint32_t b = 0; b < blocks; ++b) {
      Fatal(vld.Write(static_cast<simdisk::Lba>(b) * 8, payload), "prepopulate");
    }
    disk.set_tracer(&tracer);
  }
  for (int round = 0; round < rounds; ++round) {
    simdisk::Lba raw_lba = 0;
    bool have_write = false;
    for (uint32_t i = 0; i < depth; ++i) {
      if (read_fraction > 0 && i + 1 == depth && have_write) {
        // The round's last op re-reads its first write: a guaranteed same-batch RAW, so the
        // forwarding markers are part of the mixed fixture.
        Fatal(vld.SubmitRead(raw_lba, 8).status(), "submit raw read");
        continue;
      }
      const simdisk::Lba lba = static_cast<simdisk::Lba>(rng.Below(blocks)) * 8;
      if (read_fraction > 0 && rng.Chance(read_fraction)) {
        Fatal(vld.SubmitRead(lba, 8).status(), "submit read");
      } else {
        Fatal(vld.SubmitWrite(lba, payload).status(), "submit");
        if (!have_write) {
          have_write = true;
          raw_lba = lba;
        }
      }
    }
    Fatal(vld.FlushQueue().status(), "flush");
  }

  if (show_json) {
    std::printf("%s\n", tracer.TraceJson().c_str());
    return 0;
  }
  if (show_events) {
    std::printf("events (%zu buffered, %llu dropped):\n", tracer.event_count(),
                static_cast<unsigned long long>(tracer.dropped_events()));
    for (const obs::TraceEvent& e : tracer.Events()) {
      PrintEvent(e);
    }
    return 0;
  }
  if (show_span != 0) {
    const obs::TraceRecorder::Span* span = tracer.span(show_span);
    if (span == nullptr) {
      std::fprintf(stderr, "trace_dump: no span %llu (have 1..%llu)\n",
                   static_cast<unsigned long long>(show_span),
                   static_cast<unsigned long long>(tracer.spans().size()));
      return 1;
    }
    std::printf("span %llu (%s, lba=%llu sectors=%llu): submit %.3f ms, complete %.3f ms, "
                "latency %.3f ms\n",
                static_cast<unsigned long long>(show_span), obs::LayerName(span->layer),
                static_cast<unsigned long long>(span->a),
                static_cast<unsigned long long>(span->b), Ms(span->submit), Ms(span->complete),
                Ms(span->Latency()));
    for (const obs::TraceEvent& e : tracer.Events()) {
      if (e.span_id == show_span) {
        PrintEvent(e);
      }
    }
    const obs::TimeBreakdown& bd = span->breakdown;
    std::printf("  breakdown: queueing %.3f + controller %.3f + seek %.3f + head_switch %.3f "
                "+ rotation %.3f + transfer %.3f + flush %.3f + host %.3f = %.3f ms\n",
                Ms(bd.queueing), Ms(bd.controller), Ms(bd.seek), Ms(bd.head_switch),
                Ms(bd.rotation), Ms(bd.transfer), Ms(bd.flush), Ms(bd.host_cpu), Ms(bd.Total()));
    return 0;
  }

  std::printf("%u-deep queued VLD writes, %d rounds: %llu spans, %zu events\n", depth, rounds,
              static_cast<unsigned long long>(tracer.spans().size()), tracer.event_count());
  std::printf("%6s %6s %10s %10s | %9s %9s %9s %9s %9s %9s %9s\n", "span", "layer", "submit ms",
              "latency", "queue", "ctrl", "seek", "rot", "xfer", "flush", "total");
  for (const auto& [id, span] : tracer.spans()) {
    if (span.open) {
      continue;
    }
    const obs::TimeBreakdown& bd = span.breakdown;
    std::printf("%6llu %6s %10.3f %10.3f | %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                static_cast<unsigned long long>(id), obs::LayerName(span.layer),
                Ms(span.submit), Ms(span.Latency()), Ms(bd.queueing), Ms(bd.controller),
                Ms(bd.seek), Ms(bd.rotation), Ms(bd.transfer), Ms(bd.flush), Ms(bd.Total()));
  }
  std::printf("(rerun with --span=N for one span's event tree, --events for the full log,\n"
              " --json for the machine-readable vlog-trace/1 dump)\n");
  return 0;
}
