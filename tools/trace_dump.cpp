// trace_dump: run a canned, seeded queued-write workload against the VLD with tracing on and
// render the recorded spans — a human-readable window into what the TraceRecorder captures.
//
//   trace_dump                 span table: one line per request with its time breakdown
//   trace_dump --span=N        event-by-event tree for span N (its full journey down the stack)
//   trace_dump --events        the chronological event log (all spans interleaved)
//   trace_dump --json          the raw vlog-trace/1 JSON (byte-identical across runs)
//   trace_dump --timeline      windowed metrics over the run: per-window table plus one ASCII
//                              sparkline per series (counters, gauges, per-window p99); with
//                              --json, the machine-readable vlog-timeline/1 document instead
//   --window=MS                timeline window width in ms (default 25)
//   --depth=D --rounds=R       workload shape (defaults: depth 4, 8 rounds)
//   --cache=N                  volatile write-back cache of N sectors (default 0 = off); the
//                              VLD's barriers then destage it, so flush/destage events appear
//   --reads=P                  fraction of queued ops that are reads (default 0 = all writes);
//                              the region is prepopulated untraced first, so read spans and
//                              any same-batch RAW forwarding markers show up in the dump
//   --array=N                  drive the same workload through an N-member striped VldArray
//                              (each member disk gets its own recorder; events and spans carry
//                              the member index in their `disk` field). --json with no --disk
//                              emits a vlog-array-trace/1 wrapper with one vlog-trace/1 dump
//                              per member, in member order.
//   --disk=D                   restrict every output mode to member D's recorder (0 is the
//                              only valid value without --array)
//   --nvm                      front the VLD with the NVM staging tier: the queued rounds pass
//                              through the stage, and each round adds a small staged sync
//                              write (an NVM log append), an overlapping direct write on odd
//                              rounds (the invalidate protocol), and a bounded destage burst,
//                              with a full drain at the end — so the dump shows the whole NVM
//                              event vocabulary (nvm_write/nvm_stage/nvm_invalidate/destage
//                              markers and the nvm breakdown component). Incompatible with
//                              --array (the stage fronts a single VLD).
//   --governor                 duty-cycled background compaction between rounds: the workload
//                              region is prepopulated and half-trimmed (untraced) to create
//                              compaction debt, a CompactionGovernor watches the timeline's
//                              latency SLO, and every round ends with a governed burst (even
//                              rounds declare a small idle gap). Its decision series
//                              (gov.* counters/gauges) land on the timeline, so this requires
//                              --timeline and is incompatible with --array.
//
// The workload is deterministic (fixed seed on the virtual clock), so every mode's output is
// stable run to run — the same property the trace determinism test asserts.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/array/vld_array.h"
#include "src/common/rng.h"
#include "src/core/governor.h"
#include "src/core/vld.h"
#include "src/nvm/nvm_stage.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/nvm_device.h"
#include "src/simdisk/sim_disk.h"

namespace {

using namespace vlog;

double Ms(common::Duration d) { return common::ToMilliseconds(d); }

void Fatal(const common::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

void PrintEvent(const obs::TraceEvent& e) {
  std::printf("  %12.3f ms  d=%u %-12s %-6s span=%llu dur=%.3f ms a=%llu b=%llu\n", Ms(e.at),
              e.disk, obs::EventTypeName(e.type), obs::LayerName(e.layer),
              static_cast<unsigned long long>(e.span_id), Ms(e.dur),
              static_cast<unsigned long long>(e.a), static_cast<unsigned long long>(e.b));
}

// One member's full stack: its own clock, disk, recorder, and VLD. A bare (non-array) run is
// simply the one-member case without the array layer on top.
struct Stack {
  common::Clock clock;
  std::unique_ptr<simdisk::SimDisk> disk;
  std::unique_ptr<obs::TraceRecorder> tracer;
  std::unique_ptr<core::Vld> vld;
};

// Strict numeric flag parsing: the whole value must be a number. atoi/atof silently turned
// "--rounds=abc" into 0, which then ran a degenerate workload and exited 0 — a malformed flag
// must instead reach the usage path and exit nonzero.
bool ParseU64(const char* s, uint64_t* out) {
  if (*s == '\0' || *s == '-' || *s == '+') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool ParseDouble(const char* s, double* out) {
  if (*s == '\0') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: trace_dump [--depth=D] [--rounds=R] [--cache=N] [--reads=P] "
               "[--array=N] [--disk=D] [--window=MS] [--governor] [--nvm] "
               "[--span=N|--events|--json|--timeline]\n");
  return 2;
}

// One sparkline glyph per window, normalized to the series max (blank when the max is 0).
std::string Spark(const std::vector<uint64_t>& values) {
  static constexpr char kLevels[] = " .:-=+*#%@";
  uint64_t max = 0;
  for (const uint64_t v : values) {
    max = std::max(max, v);
  }
  std::string out;
  out.reserve(values.size());
  for (const uint64_t v : values) {
    out.push_back(max == 0 ? ' ' : kLevels[v * 9 / max]);
  }
  return out;
}

void PrintTimeline(const obs::Timeline& timeline) {
  const std::vector<obs::TimelineWindow>& windows = timeline.windows();
  std::printf("timeline: %zu windows\n", windows.size());
  std::printf("%4s %10s %10s %6s %10s %10s %10s\n", "win", "start ms", "end ms", "ops",
              "p50 ms", "p99 ms", "max ms");
  for (const obs::TimelineWindow& w : windows) {
    const obs::LatencyHistogram& h = w.histograms[0];
    std::printf("%4llu %10.3f %10.3f %6llu %10.3f %10.3f %10.3f\n",
                static_cast<unsigned long long>(w.index), Ms(w.start), Ms(w.end),
                static_cast<unsigned long long>(h.Count()), h.Percentile(50) / 1e6,
                h.Percentile(99) / 1e6, static_cast<double>(h.Max()) / 1e6);
  }
  std::printf("\nseries sparklines (normalized per series; max on the right):\n");
  const auto series_line = [&](const std::string& name, const std::vector<uint64_t>& vals) {
    uint64_t max = 0;
    for (const uint64_t v : vals) {
      max = std::max(max, v);
    }
    std::printf("  %-28s |%s| max=%llu\n", name.c_str(), Spark(vals).c_str(),
                static_cast<unsigned long long>(max));
  };
  std::vector<uint64_t> vals(windows.size());
  for (size_t h = 0; h < timeline.histogram_names().size(); ++h) {
    for (size_t i = 0; i < windows.size(); ++i) {
      vals[i] = static_cast<uint64_t>(windows[i].histograms[h].Percentile(99));
    }
    series_line("p99:" + timeline.histogram_names()[h], vals);
  }
  for (size_t c = 0; c < timeline.counter_names().size(); ++c) {
    for (size_t i = 0; i < windows.size(); ++i) {
      vals[i] = windows[i].counters[c];
    }
    series_line(timeline.counter_names()[c], vals);
  }
  for (size_t g = 0; g < timeline.gauge_names().size(); ++g) {
    for (size_t i = 0; i < windows.size(); ++i) {
      vals[i] = windows[i].gauges[g];
    }
    series_line(timeline.gauge_names()[g], vals);
  }
  for (const obs::Timeline::SloResult& slo : timeline.slos()) {
    std::printf("\nslo: p99(%s) <= %.3f ms per window: %zu violation span(s)\n",
                slo.hist.c_str(), Ms(slo.budget), slo.violations.size());
    for (const obs::Timeline::SloViolation& v : slo.violations) {
      std::printf("  windows %llu..%llu (%.3f..%.3f ms): worst p99 %.3f ms, dominant %s\n",
                  static_cast<unsigned long long>(v.start_window),
                  static_cast<unsigned long long>(v.end_window), Ms(v.start), Ms(v.end),
                  v.worst_p99 / 1e6, v.dominant.c_str());
    }
  }
  std::printf("steady state: %s (%llu consecutive steady window(s))\n",
              timeline.IsSteady() ? "yes" : "no",
              static_cast<unsigned long long>(timeline.steady_windows()));
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t depth = 4;
  uint64_t rounds = 8;
  uint64_t cache_sectors = 0;
  double read_fraction = 0.0;
  uint64_t array_members = 0;  // 0 = bare VLD (no array layer).
  int show_disk = -1;          // -1 = every member.
  uint64_t window_ms = 25;
  uint64_t show_span = 0;
  bool show_events = false;
  bool show_json = false;
  bool show_timeline = false;
  bool governed = false;
  bool nvm = false;
  for (int i = 1; i < argc; ++i) {
    uint64_t disk_value = 0;
    if (std::strncmp(argv[i], "--depth=", 8) == 0) {
      if (!ParseU64(argv[i] + 8, &depth)) {
        return Usage();
      }
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      if (!ParseU64(argv[i] + 9, &rounds)) {
        return Usage();
      }
    } else if (std::strncmp(argv[i], "--cache=", 8) == 0) {
      if (!ParseU64(argv[i] + 8, &cache_sectors)) {
        return Usage();
      }
    } else if (std::strncmp(argv[i], "--reads=", 8) == 0) {
      if (!ParseDouble(argv[i] + 8, &read_fraction)) {
        return Usage();
      }
    } else if (std::strncmp(argv[i], "--array=", 8) == 0) {
      if (!ParseU64(argv[i] + 8, &array_members)) {
        return Usage();
      }
    } else if (std::strncmp(argv[i], "--disk=", 7) == 0) {
      if (!ParseU64(argv[i] + 7, &disk_value) || disk_value > 7) {
        return Usage();
      }
      show_disk = static_cast<int>(disk_value);
    } else if (std::strncmp(argv[i], "--window=", 9) == 0) {
      if (!ParseU64(argv[i] + 9, &window_ms) || window_ms == 0) {
        return Usage();
      }
    } else if (std::strncmp(argv[i], "--span=", 7) == 0) {
      if (!ParseU64(argv[i] + 7, &show_span) || show_span == 0) {
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--governor") == 0) {
      governed = true;
    } else if (std::strcmp(argv[i], "--nvm") == 0) {
      nvm = true;
    } else if (std::strcmp(argv[i], "--events") == 0) {
      show_events = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      show_json = true;
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      show_timeline = true;
    } else {
      return Usage();
    }
  }
  const uint32_t members = static_cast<uint32_t>(array_members == 0 ? 1 : array_members);
  if (depth == 0 || depth > 32 || rounds == 0 || read_fraction < 0 || read_fraction > 1 ||
      members > 8) {
    std::fprintf(stderr,
                 "trace_dump: depth must be 1..32, rounds > 0, reads in [0, 1], array 1..8\n");
    return 2;
  }
  if (show_disk >= static_cast<int>(members)) {
    std::fprintf(stderr, "trace_dump: --disk=%d but only members 0..%u exist\n", show_disk,
                 members - 1);
    return 2;
  }
  if (governed && (!show_timeline || array_members > 0)) {
    std::fprintf(stderr,
                 "trace_dump: --governor requires --timeline (its decision series are "
                 "timeline series) and does not support --array\n");
    return 2;
  }
  if (nvm && array_members > 0) {
    std::fprintf(stderr, "trace_dump: --nvm fronts a single VLD and does not support --array\n");
    return 2;
  }

  // The canned workload: `rounds` closed-loop rounds of `depth` random 4 KB updates through
  // the queued engine (group commit) — the bare VLD, or an N-member striped array whose
  // FlushQueue fans each round out as one packed commit per touched member.
  std::vector<std::unique_ptr<Stack>> stacks;
  for (uint32_t m = 0; m < members; ++m) {
    auto s = std::make_unique<Stack>();
    simdisk::DiskParams params = simdisk::Truncated(simdisk::Hp97560(), 36);
    params.cache.capacity_sectors = cache_sectors;
    s->disk = std::make_unique<simdisk::SimDisk>(params, &s->clock);
    s->tracer = std::make_unique<obs::TraceRecorder>(&s->clock);
    s->disk->set_tracer(s->tracer.get());
    s->vld = std::make_unique<core::Vld>(s->disk.get(), core::VldConfig{.queue_depth = 32});
    stacks.push_back(std::move(s));
  }
  std::unique_ptr<simdisk::NvmDevice> nvm_dev;
  std::unique_ptr<core::NvmStage> nvm_stage;
  std::unique_ptr<array::VldArray> array;
  if (array_members > 0) {
    std::vector<core::Vld*> vlds;
    for (const auto& s : stacks) {
      vlds.push_back(s->vld.get());
    }
    array = std::make_unique<array::VldArray>(std::move(vlds),
                                              array::VldArrayConfig{.mode = array::ArrayMode::kStriped});
    Fatal(array->Format(), "format");
  } else {
    Fatal(stacks[0]->vld->Format(), "format");
  }
  if (nvm) {
    nvm_dev = std::make_unique<simdisk::NvmDevice>(simdisk::NvmDeviceParams{},
                                                   &stacks[0]->clock);
    nvm_stage = std::make_unique<core::NvmStage>(nvm_dev.get(), stacks[0]->vld.get());
    Fatal(nvm_stage->Format(), "stage format");
    nvm_stage->set_tracer(stacks[0]->tracer.get());
  }

  const uint64_t sectors =
      array != nullptr ? array->SectorCount() : stacks[0]->vld->SectorCount();
  const uint32_t blocks = static_cast<uint32_t>(sectors / 8) / 2;
  common::Rng rng(2);
  std::vector<std::byte> payload(4096, std::byte{0x42});
  const auto submit_write = [&](simdisk::Lba lba) {
    if (nvm_stage != nullptr) {
      return nvm_stage->SubmitWrite(lba, payload).status();
    }
    return array != nullptr ? array->SubmitWrite(lba, payload).status()
                            : stacks[0]->vld->SubmitWrite(lba, payload).status();
  };
  const auto submit_read = [&](simdisk::Lba lba) {
    if (nvm_stage != nullptr) {
      return nvm_stage->SubmitRead(lba, 8).status();
    }
    return array != nullptr ? array->SubmitRead(lba, 8).status()
                            : stacks[0]->vld->SubmitRead(lba, 8).status();
  };
  if (read_fraction > 0) {
    // Prepopulate the region with the tracers detached, so reads hit mapped blocks without
    // hundreds of setup spans bloating the dump.
    for (const auto& s : stacks) {
      s->disk->set_tracer(nullptr);
    }
    for (uint32_t b = 0; b < blocks; ++b) {
      Fatal(array != nullptr ? array->Write(static_cast<simdisk::Lba>(b) * 8, payload)
                             : stacks[0]->vld->Write(static_cast<simdisk::Lba>(b) * 8, payload),
            "prepopulate");
    }
    for (const auto& s : stacks) {
      s->disk->set_tracer(s->tracer.get());
    }
  }
  if (governed) {
    // Compaction debt, built untraced: fill the region, then trim every other block so most
    // tracks hold holes worth plugging. The governed bursts during the workload then have
    // real relocations to show in the dump.
    stacks[0]->disk->set_tracer(nullptr);
    for (uint32_t b = 0; b < blocks; ++b) {
      Fatal(stacks[0]->vld->Write(static_cast<simdisk::Lba>(b) * 8, payload), "prepopulate");
    }
    for (uint32_t b = 0; b < blocks; b += 2) {
      Fatal(stacks[0]->vld->Trim(static_cast<simdisk::Lba>(b) * 8, 8), "trim");
    }
    stacks[0]->disk->set_tracer(stacks[0]->tracer.get());
  }
  // The timeline attaches after setup so window 0 starts at the workload, not at Format:
  // the completion-latency histogram the driver records into, per-member breakdown counters
  // from each recorder, every layer's probes, a default per-window p99 SLO, and a short
  // steady-state watch on the latency series.
  std::unique_ptr<obs::Timeline> timeline;
  obs::WindowedHistogram* timeline_latency = nullptr;
  const auto device_now = [&] {
    return array != nullptr ? array->now() : stacks[0]->clock.Now();
  };
  if (show_timeline) {
    timeline = std::make_unique<obs::Timeline>(obs::TimelineConfig{
        .window = common::Milliseconds(static_cast<common::Duration>(window_ms)),
        .start = device_now()});
    timeline_latency = &timeline->AddHistogram("latency");
    if (array != nullptr) {
      for (uint32_t m = 0; m < members; ++m) {
        obs::RegisterBreakdownCounters(*timeline, *stacks[m]->tracer,
                                       "m" + std::to_string(m) + ".breakdown.");
      }
      array->RegisterTimelineProbes(*timeline);
      timeline->AddSlo("latency", common::Milliseconds(25), "m0.breakdown.");
    } else {
      obs::RegisterBreakdownCounters(*timeline, *stacks[0]->tracer, "breakdown.");
      stacks[0]->vld->RegisterTimelineProbes(*timeline, "");
      if (nvm_stage != nullptr) {
        nvm_stage->RegisterTimelineProbes(*timeline, "nvm.");
      }
      timeline->AddSlo("latency", common::Milliseconds(25), "breakdown.");
    }
    timeline->AddSteadySeries("p99:latency");
    timeline->ConfigureSteadyState(4, 0.2);
  }
  std::unique_ptr<core::CompactionGovernor> governor;
  if (governed) {
    core::GovernorConfig gcfg;
    gcfg.slo_budget = common::Milliseconds(25);  // Matches the timeline's SLO budget.
    // Chase a reserve deeper than what the trimmed setup already left empty, so NeedsWork
    // holds for the whole short workload and every round's grant paths stay live.
    gcfg.target_empty_tracks =
        static_cast<uint32_t>(stacks[0]->vld->space().EmptyTrackCount()) + 8;
    gcfg.min_burst = common::Microseconds(500);
    governor = std::make_unique<core::CompactionGovernor>(stacks[0]->vld.get(),
                                                          timeline.get(), gcfg);
    governor->RegisterTimelineProbes(*timeline, "");
  }
  for (uint64_t round = 0; round < rounds; ++round) {
    simdisk::Lba raw_lba = 0;
    bool have_write = false;
    for (uint32_t i = 0; i < depth; ++i) {
      if (read_fraction > 0 && i + 1 == depth && have_write) {
        // The round's last op re-reads its first write: a guaranteed same-batch RAW, so the
        // forwarding markers are part of the mixed fixture.
        Fatal(submit_read(raw_lba), "submit raw read");
        continue;
      }
      const simdisk::Lba lba = static_cast<simdisk::Lba>(rng.Below(blocks)) * 8;
      if (read_fraction > 0 && rng.Chance(read_fraction)) {
        Fatal(submit_read(lba), "submit read");
      } else {
        Fatal(submit_write(lba), "submit");
        if (!have_write) {
          have_write = true;
          raw_lba = lba;
        }
      }
    }
    const auto flush = [&](auto& dev) {
      auto done = dev.FlushQueue();
      Fatal(done.status(), "flush");
      if (timeline != nullptr) {
        for (const auto& c : done.value()) {
          timeline_latency->Record(c.Latency());
        }
        timeline->Poll(device_now());
      }
    };
    if (array != nullptr) {
      flush(*array);
    } else if (nvm_stage != nullptr) {
      flush(*nvm_stage);
    } else {
      flush(*stacks[0]->vld);
    }
    if (nvm_stage != nullptr) {
      // One small staged sync write (an NVM log append), an overlapping above-threshold
      // direct write on odd rounds (conflict destage + invalidate record), and a bounded
      // destage burst: every NVM event type lands in the dump.
      const simdisk::Lba staged_lba = static_cast<simdisk::Lba>((round % 4) * 8);
      Fatal(nvm_stage->Write(staged_lba, payload), "staged write");
      if (round % 2 == 1) {
        const std::vector<std::byte> big(4 * 4096, std::byte{0x17});
        Fatal(nvm_stage->Write(staged_lba, big), "direct overlap write");
      }
      Fatal(nvm_stage->RunDestageBurst(common::Milliseconds(2)).status(), "destage");
      if (timeline != nullptr) {
        timeline->Poll(device_now());
      }
    }
    if (governor != nullptr) {
      // Even rounds declare a small idle gap (granted in full); odd rounds only get whatever
      // credit the duty cycle accrued — both grant paths appear in the gov.* series.
      governor->RunBurst(round % 2 == 0 ? common::Milliseconds(10) : common::Duration{0});
      timeline->Poll(device_now());
    }
  }

  if (nvm_stage != nullptr) {
    Fatal(nvm_stage->Drain(), "drain");
  }
  if (timeline != nullptr) {
    timeline->Finish(device_now());
    if (show_json) {
      std::printf("%s\n", timeline->Json().c_str());
    } else {
      PrintTimeline(*timeline);
    }
    return 0;
  }

  // The members whose recorders the chosen output mode renders (--disk narrows to one).
  std::vector<uint32_t> shown;
  for (uint32_t m = 0; m < members; ++m) {
    if (show_disk < 0 || show_disk == static_cast<int>(m)) {
      shown.push_back(m);
    }
  }

  if (show_json) {
    if (shown.size() == 1) {
      std::printf("%s\n", stacks[shown[0]]->tracer->TraceJson().c_str());
      return 0;
    }
    // Multi-member wrapper: one vlog-trace/1 dump per member, in member order.
    std::printf("{\"schema\":\"vlog-array-trace/1\",\"members\":%u,\"disks\":[", members);
    for (uint32_t m : shown) {
      std::printf("%s%s", m == 0 ? "" : ",", stacks[m]->tracer->TraceJson().c_str());
    }
    std::printf("]}\n");
    return 0;
  }
  if (show_events) {
    // Merge the shown members' (individually chronological) event logs by time; ties keep
    // member order, so the merged log is deterministic.
    std::vector<obs::TraceEvent> events;
    size_t buffered = 0;
    uint64_t dropped = 0;
    for (uint32_t m : shown) {
      buffered += stacks[m]->tracer->event_count();
      dropped += stacks[m]->tracer->dropped_events();
      for (const obs::TraceEvent& e : stacks[m]->tracer->Events()) {
        events.push_back(e);
      }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const obs::TraceEvent& x, const obs::TraceEvent& y) { return x.at < y.at; });
    std::printf("events (%zu buffered, %llu dropped):\n", buffered,
                static_cast<unsigned long long>(dropped));
    for (const obs::TraceEvent& e : events) {
      PrintEvent(e);
    }
    return 0;
  }
  if (show_span != 0) {
    // Span ids are per-member recorder; --disk picks whose (default member 0).
    const Stack& s = *stacks[shown[0]];
    const obs::TraceRecorder::Span* span = s.tracer->span(show_span);
    if (span == nullptr) {
      std::fprintf(stderr, "trace_dump: no span %llu on disk %u (have 1..%llu)\n",
                   static_cast<unsigned long long>(show_span), shown[0],
                   static_cast<unsigned long long>(s.tracer->spans().size()));
      return 1;
    }
    std::printf("span %llu (disk %u, %s, lba=%llu sectors=%llu): submit %.3f ms, "
                "complete %.3f ms, latency %.3f ms\n",
                static_cast<unsigned long long>(show_span), span->disk,
                obs::LayerName(span->layer), static_cast<unsigned long long>(span->a),
                static_cast<unsigned long long>(span->b), Ms(span->submit), Ms(span->complete),
                Ms(span->Latency()));
    for (const obs::TraceEvent& e : s.tracer->Events()) {
      if (e.span_id == show_span) {
        PrintEvent(e);
      }
    }
    const obs::TimeBreakdown& bd = span->breakdown;
    std::printf("  breakdown: queueing %.3f + controller %.3f + seek %.3f + head_switch %.3f "
                "+ rotation %.3f + transfer %.3f + flush %.3f + nvm %.3f + host %.3f "
                "= %.3f ms\n",
                Ms(bd.queueing), Ms(bd.controller), Ms(bd.seek), Ms(bd.head_switch),
                Ms(bd.rotation), Ms(bd.transfer), Ms(bd.flush), Ms(bd.nvm), Ms(bd.host_cpu),
                Ms(bd.Total()));
    return 0;
  }

  size_t total_spans = 0;
  size_t total_events = 0;
  for (uint32_t m : shown) {
    total_spans += stacks[m]->tracer->spans().size();
    total_events += stacks[m]->tracer->event_count();
  }
  std::printf("%llu-deep queued %s writes, %llu rounds: %zu spans, %zu events\n",
              static_cast<unsigned long long>(depth), array != nullptr ? "array" : "VLD",
              static_cast<unsigned long long>(rounds), total_spans, total_events);
  std::printf("%6s %4s %6s %10s %10s | %9s %9s %9s %9s %9s %9s %9s %9s\n", "span", "disk",
              "layer", "submit ms", "latency", "queue", "ctrl", "seek", "rot", "xfer", "flush",
              "nvm", "total");
  for (uint32_t m : shown) {
    const auto& spans = stacks[m]->tracer->spans();
    for (size_t i = 0; i < spans.size(); ++i) {
      const uint64_t id = i + 1;
      const auto& span = spans[i];
      if (span.open) {
        continue;
      }
      const obs::TimeBreakdown& bd = span.breakdown;
      std::printf(
          "%6llu %4u %6s %10.3f %10.3f | %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
          static_cast<unsigned long long>(id), span.disk, obs::LayerName(span.layer),
          Ms(span.submit), Ms(span.Latency()), Ms(bd.queueing), Ms(bd.controller), Ms(bd.seek),
          Ms(bd.rotation), Ms(bd.transfer), Ms(bd.flush), Ms(bd.nvm), Ms(bd.Total()));
    }
  }
  std::printf("(rerun with --span=N for one span's event tree, --events for the full log,\n"
              " --json for the machine-readable vlog-trace/1 dump)\n");
  return 0;
}
