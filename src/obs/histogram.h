// Log-scale latency histogram.
//
// Values (integral nanoseconds, matching common::Duration) are binned into power-of-two
// octaves split into 16 linear sub-buckets each, giving a worst-case relative bucket width of
// 1/16 (~6%) at any magnitude — the classic HdrHistogram compromise between resolution and
// footprint. Values below 2^5 get exact width-1 buckets. Two histograms with the same layout
// merge by bucket-wise addition, which is exact and associative, so per-run or per-shard
// histograms can be combined without re-recording — the property distribution-valued
// benchmarks need (a mean hides the multi-modality of synchronous-write latency).
//
// Percentiles interpolate linearly inside the covering bucket and are clamped to the exact
// observed [min, max], so Percentile(0)/Percentile(100) are exact.
#ifndef SRC_OBS_HISTOGRAM_H_
#define SRC_OBS_HISTOGRAM_H_

#include <bit>
#include <cstdint>
#include <vector>

namespace vlog::obs {

class LatencyHistogram {
 public:
  static constexpr uint32_t kSubBuckets = 16;  // Linear sub-buckets per octave.
  static constexpr uint32_t kFirstOctave = 4;  // Values < 2^(kFirstOctave+1) are exact.
  static constexpr uint32_t kMaxOctave = 62;   // Last octave covering int64 values.
  static constexpr uint32_t kNumBuckets =
      kSubBuckets + (kMaxOctave - kFirstOctave + 1) * kSubBuckets;

  LatencyHistogram() : buckets_(kNumBuckets, 0) {}

  // Records one value. Negative values clamp to 0 (durations are never negative when observed).
  void Record(int64_t value);

  // Bucket-wise sum: exact, commutative, and associative.
  void Merge(const LatencyHistogram& other);

  uint64_t Count() const { return count_; }
  int64_t Min() const { return count_ ? min_ : 0; }
  int64_t Max() const { return count_ ? max_ : 0; }
  int64_t Sum() const { return sum_; }
  double Mean() const { return count_ ? static_cast<double>(sum_) / count_ : 0.0; }

  // The value at percentile `p` in [0, 100], linearly interpolated within the covering bucket
  // and clamped to the observed range. 0 when empty.
  double Percentile(double p) const;

  // Bucket layout, exposed for tests and serialization. BucketIndex is a single bit-scan
  // (countl_zero) plus shifts — inline because Record() sits on every span completion, five
  // histograms deep. Negative values clamp to bucket 0.
  static uint32_t BucketIndex(int64_t value) {
    if (value < static_cast<int64_t>(kSubBuckets)) {
      return value < 0 ? 0u : static_cast<uint32_t>(value);
    }
    const uint64_t v = static_cast<uint64_t>(value);
    const uint32_t octave = 63u - static_cast<uint32_t>(std::countl_zero(v));  // 2^octave <= v.
    const uint32_t sub =
        static_cast<uint32_t>((v - (uint64_t{1} << octave)) >> (octave - kFirstOctave));
    return kSubBuckets + (octave - kFirstOctave) * kSubBuckets + sub;
  }
  static int64_t BucketLower(uint32_t index);   // Inclusive.
  static int64_t BucketUpper(uint32_t index);   // Exclusive.
  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace vlog::obs

#endif  // SRC_OBS_HISTOGRAM_H_
