// Cross-layer request tracing on the virtual clock.
//
// The whole repository is single-threaded over one simulated clock, so every clock advance
// belongs to exactly one activity. The TraceRecorder exploits that: each layer emits typed
// events (kSubmit, kSeek, kMediaXfer, kMapAppend, kGroupCommit, ...) stamped with the current
// sim-time and the *current span* — a per-request id propagated implicitly down the call tree
// (VLFS -> VLD -> VirtualLog -> RequestQueue -> SimDisk) by SpanScope guards. One host write
// is therefore followable end to end, and its latency decomposes exactly:
//
//   latency = host_cpu + controller + seek + head_switch + rotation + transfer + nvm + queueing
//
// where all but the last are the durations of the span's own charged events and `queueing` is the
// residual — time the request spent waiting on work not its own (other requests' media time,
// a shared group commit, a busy controller). For a synchronous request the residual is zero by
// construction; the identity is asserted in tests.
//
// Overhead when disabled: layers hold a `TraceRecorder*` that is null by default, and every
// instrumentation site is guarded by that null check (SpanScope no-ops on a null recorder).
// Tracing never advances the clock, so enabling it cannot change simulated time either.
//
// Determinism: events carry only integers derived from the simulation (times, ids, LBAs), the
// ring buffer is drained in chronological order, and spans are stored densely in id order —
// two runs of the same seed produce byte-identical TraceJson() output.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/obs/histogram.h"

namespace vlog::obs {

class MetricsRegistry;

// Which layer of the stack emitted an event.
enum class Layer : uint8_t { kHost, kFs, kNvm, kVld, kVlog, kQueue, kDisk };

// What a span's request is doing. Reads and writes take different paths through a queued
// device (reads are position-schedulable, writes are eager), so tooling wants them apart.
enum class SpanKind : uint8_t { kOther, kWrite, kRead };

enum class EventType : uint8_t {
  // Span lifecycle (markers).
  kSubmit,    // A request entered the stack: the root of a span.
  kEnter,     // The span's request crossed into a lower layer.
  kComplete,  // The request was acknowledged.
  // Charged time (dur = the virtual-clock advance the activity caused).
  kHostCpu,     // Host OS / file system CPU.
  kController,  // Per-command SCSI controller overhead (queued: only the un-overlapped part).
  kSeek,        // Arm movement.
  kHeadSwitch,  // Head-switch settle in excess of the concurrent seek.
  kRotation,    // Rotational delay.
  kMediaXfer,   // Media transfer.
  kBusXfer,     // Bus transfer out of the track buffer.
  kDestage,     // Write-cache destage: mechanical time writing one dirty extent (a=lba,
                // b=sectors). Emitted by Flush and by capacity-pressure drains.
  kNvmWrite,    // Byte-addressable NVM append/superblock write (a=byte offset, b=bytes).
  kNvmRead,     // NVM overlay read serving staged sectors (a=lba, b=sectors).
  // Markers (dur == 0).
  kReadForward,   // A queued read served sectors from a pending (unserviced) write's payload
                  // instead of the media (a=first lba forwarded, b=sectors forwarded).
  kFlush,         // A Flush command completed (a=extents destaged, b=sectors destaged).
  kMapAppend,     // Map sector(s) joined the virtual log (a=piece, or packed count; b=lba).
  kGroupCommit,   // A packed group commit covering a whole queue (a=requests, b=staged blocks).
  kCheckpoint,    // A full-map checkpoint (a=sequence number).
  kCompactStart,  // Idle-time compaction began (a=victim track).
  kCompactEnd,    // Idle-time compaction finished (a=victim track, b=emptied).
  kNvmStage,      // A small sync write was absorbed by the NVM stage (a=lba, b=sectors).
  kNvmInvalidate,  // Staged sectors superseded by a direct write/trim (a=lba, b=sectors).
  kNvmDestageStart,  // A background destage batch began (a=log records pending).
  kNvmDestageEnd,    // A background destage batch finished (a=records, b=sectors destaged).
};

const char* LayerName(Layer layer);
const char* SpanKindName(SpanKind kind);
const char* EventTypeName(EventType type);

struct TraceEvent {
  common::Time at = 0;
  common::Duration dur = 0;
  uint64_t span_id = 0;  // 0 = not tied to a single request.
  EventType type = EventType::kSubmit;
  Layer layer = Layer::kHost;
  uint64_t a = 0;  // Type-specific (usually an LBA, piece, or count).
  uint64_t b = 0;
  // Member disk index; stamped by the recorder from set_disk_index() (0 = single-disk stack).
  uint32_t disk = 0;
};

// Where one request's simulated service time went. All fields are exact integral nanoseconds;
// Accounted() + queueing == the span's latency (asserted in tests).
struct TimeBreakdown {
  common::Duration host_cpu = 0;
  common::Duration controller = 0;
  common::Duration seek = 0;
  common::Duration head_switch = 0;
  common::Duration rotation = 0;
  common::Duration transfer = 0;
  common::Duration flush = 0;  // Write-cache destage time charged to this span.
  common::Duration nvm = 0;    // Byte-addressable NVM staging-tier time (appends + overlay reads).
  common::Duration queueing = 0;

  common::Duration Accounted() const {
    return host_cpu + controller + seek + head_switch + rotation + transfer + flush + nvm;
  }
  common::Duration Total() const { return Accounted() + queueing; }

  TimeBreakdown& operator+=(const TimeBreakdown& rhs);
  TimeBreakdown operator-(const TimeBreakdown& rhs) const;
};

class TraceRecorder {
 public:
  struct Span {
    common::Time submit = 0;
    common::Time complete = 0;
    Layer layer = Layer::kHost;
    SpanKind kind = SpanKind::kOther;
    uint32_t disk = 0;  // Member disk index at the time the span was opened.
    uint64_t a = 0;
    uint64_t b = 0;
    bool open = true;
    TimeBreakdown breakdown;  // queueing is filled in by EndSpan.
    common::Duration Latency() const { return complete - submit; }
  };

  explicit TraceRecorder(const common::Clock* clock, size_t event_capacity = 1 << 16);

  // --- Span lifecycle ---

  // Opens a span and makes it current (records kSubmit). Returns its id.
  uint64_t BeginSpan(Layer layer, uint64_t a = 0, uint64_t b = 0,
                     SpanKind kind = SpanKind::kOther);
  // Opens a span without touching the current span — for requests that are queued now and
  // serviced later (SpanScope re-enters them at service time).
  uint64_t BeginSpanDetached(Layer layer, uint64_t a = 0, uint64_t b = 0,
                             SpanKind kind = SpanKind::kOther);
  // Closes a span at the current sim-time: records kComplete, derives the queueing residual,
  // and feeds the per-component histograms and totals.
  void EndSpan(uint64_t id);

  uint64_t current_span() const { return current_; }
  void SetCurrentSpan(uint64_t id) { current_ = id; }

  // Member disk index stamped on every subsequently opened span and pushed event. An array
  // driving N member disks through one shared recorder sets this before touching member i;
  // single-disk stacks leave it 0. Purely a label: no effect on time, spans, or totals.
  void set_disk_index(uint32_t disk) { disk_index_ = disk; }
  uint32_t disk_index() const { return disk_index_; }

  // --- Event emission (all attributed to the current span) ---

  // A charged event: `dur` nanoseconds of the virtual clock spent on `type`.
  void Charge(EventType type, Layer layer, common::Duration dur, uint64_t a = 0, uint64_t b = 0);
  // A zero-duration marker.
  void Annotate(EventType type, Layer layer, uint64_t a = 0, uint64_t b = 0);

  // --- Introspection ---

  const Span* span(uint64_t id) const;
  // All spans ever opened, in id order; span id i lives at index i-1 (ids are dense from 1).
  const std::vector<Span>& spans() const { return spans_; }
  uint64_t completed_spans() const { return completed_spans_; }
  // Sum of all completed spans' breakdowns (including queueing).
  const TimeBreakdown& totals() const { return totals_; }

  // Per-component histograms over completed spans (values in nanoseconds).
  const LatencyHistogram& latency_hist() const { return latency_hist_; }
  const LatencyHistogram& queueing_hist() const { return queueing_hist_; }
  const LatencyHistogram& seek_hist() const { return seek_hist_; }
  const LatencyHistogram& rotation_hist() const { return rotation_hist_; }
  const LatencyHistogram& transfer_hist() const { return transfer_hist_; }

  // Buffered events in chronological order (the ring keeps the newest `event_capacity`).
  std::vector<TraceEvent> Events() const;
  size_t event_count() const { return ring_.size(); }
  uint64_t dropped_events() const { return dropped_; }

  // --- Export ---

  // {"schema":"vlog-trace/1","dropped":N,"spans":[...],"events":[...]} — integers only, spans
  // in id order, events in chronological order; byte-identical across same-seed runs.
  std::string TraceJson() const;
  // Copies the recorder's histograms and span totals into `registry` under `prefix`
  // ("<prefix>.latency", "<prefix>.queueing", ...).
  void PublishTo(MetricsRegistry& registry, const std::string& prefix = "span") const;

 private:
  void Push(TraceEvent event);  // Stamps disk_index_ before buffering.

  const common::Clock* clock_;
  size_t capacity_;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;  // Next overwrite position once the ring is full.
  uint64_t dropped_ = 0;
  uint64_t current_ = 0;
  uint32_t disk_index_ = 0;
  // Dense span storage: ids are handed out sequentially from 1, so a vector indexed by id-1
  // replaces the former std::map (which allocated a tree node per request on the hot path).
  std::vector<Span> spans_;
  uint64_t completed_spans_ = 0;
  TimeBreakdown totals_;
  LatencyHistogram latency_hist_;
  LatencyHistogram queueing_hist_;
  LatencyHistogram seek_hist_;
  LatencyHistogram rotation_hist_;
  LatencyHistogram transfer_hist_;
};

// RAII guard that makes a span current for the duration of a call tree.
//
//   SpanScope span(tracer, Layer::kVld, lba, sectors);   // root-or-inherit
//     - tracer null: no-op.
//     - no current span: begins a new root span, ends it on destruction.
//     - a span is already current (an upper layer began it): records a kEnter marker and
//       inherits — the upper layer owns the lifecycle.
//
//   SpanScope span(tracer, id);                          // re-enter a detached span
//     - makes `id` current without owning it (the caller calls EndSpan explicitly).
class SpanScope {
 public:
  SpanScope(TraceRecorder* tracer, Layer layer, uint64_t a = 0, uint64_t b = 0,
            SpanKind kind = SpanKind::kOther)
      : tracer_(tracer) {
    if (tracer_ == nullptr) {
      return;
    }
    prev_ = tracer_->current_span();
    if (prev_ == 0) {
      id_ = tracer_->BeginSpan(layer, a, b, kind);
      owns_ = true;
    } else {
      id_ = prev_;
      tracer_->Annotate(EventType::kEnter, layer, a, b);
    }
  }
  SpanScope(TraceRecorder* tracer, uint64_t span_id) : tracer_(tracer) {
    if (tracer_ == nullptr) {
      return;
    }
    prev_ = tracer_->current_span();
    id_ = span_id;
    tracer_->SetCurrentSpan(span_id);
  }
  ~SpanScope() {
    if (tracer_ == nullptr) {
      return;
    }
    if (owns_) {
      tracer_->EndSpan(id_);
    }
    tracer_->SetCurrentSpan(prev_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  uint64_t id() const { return id_; }

 private:
  TraceRecorder* tracer_;
  uint64_t prev_ = 0;
  uint64_t id_ = 0;
  bool owns_ = false;
};

}  // namespace vlog::obs

#endif  // SRC_OBS_TRACE_H_
