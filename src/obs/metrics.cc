#include "src/obs/metrics.h"

#include "src/obs/json.h"

namespace vlog::obs {

void WriteHistogramSummary(JsonWriter& w, const LatencyHistogram& h) {
  w.BeginObject();
  w.Key("count");
  w.UInt(h.Count());
  w.Key("mean");
  w.Double(h.Mean());
  w.Key("p50");
  w.Double(h.Percentile(50));
  w.Key("p90");
  w.Double(h.Percentile(90));
  w.Key("p99");
  w.Double(h.Percentile(99));
  w.Key("max");
  w.Int(h.Max());
  w.EndObject();
}

std::string MetricsRegistry::Json() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("vlog-metrics/1");
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : counters_) {
    w.Key(name);
    w.UInt(value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, fn] : gauges_) {
    w.Key(name);
    w.UInt(fn());
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, hist] : histograms_) {
    w.Key(name);
    WriteHistogramSummary(w, hist);
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace vlog::obs
