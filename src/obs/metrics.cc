#include "src/obs/metrics.h"

#include <algorithm>
#include <vector>

#include "src/obs/json.h"

namespace vlog::obs {
namespace {

// Deterministic export order over an unordered backing map.
template <typename Map>
std::vector<const typename Map::value_type*> SortedByName(const Map& map) {
  std::vector<const typename Map::value_type*> entries;
  entries.reserve(map.size());
  for (const auto& entry : map) {
    entries.push_back(&entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  return entries;
}

}  // namespace

void WriteHistogramSummary(JsonWriter& w, const LatencyHistogram& h) {
  w.BeginObject();
  w.Key("count");
  w.UInt(h.Count());
  w.Key("mean");
  w.Double(h.Mean());
  w.Key("p50");
  w.Double(h.Percentile(50));
  w.Key("p90");
  w.Double(h.Percentile(90));
  w.Key("p99");
  w.Double(h.Percentile(99));
  w.Key("max");
  w.Int(h.Max());
  w.EndObject();
}

std::string MetricsRegistry::Json() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("vlog-metrics/1");
  w.Key("counters");
  w.BeginObject();
  for (const auto* entry : SortedByName(counters_)) {
    w.Key(entry->first);
    w.UInt(entry->second);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto* entry : SortedByName(gauges_)) {
    w.Key(entry->first);
    const auto pinned = sampled_.find(entry->first);
    w.UInt(pinned != sampled_.end() ? pinned->second : entry->second());
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto* entry : SortedByName(histograms_)) {
    w.Key(entry->first);
    WriteHistogramSummary(w, entry->second);
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace vlog::obs
