// Named metrics registry: counters, gauges, and log-scale latency histograms in one place.
//
// The per-layer Stats structs (DiskStats, VldStats, VirtualLogStats, CompactorStats,
// VlfsStats, ...) keep their cheap plain-field accounting, but instead of every bench
// inventing its own export, each layer registers *gauges* here — named closures that read the
// live struct on demand — and every distribution-valued metric goes into a LatencyHistogram.
// Json() renders the whole registry in one deterministic schema (keys sorted by name), which
// is what the bench_* binaries emit.
//
// Lifetime: gauges capture pointers into the registering layer, so the registry must not be
// read after that layer is destroyed. Registries are cheap; benches build one per run.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "src/obs/histogram.h"

namespace vlog::obs {

class MetricsRegistry {
 public:
  // Monotonic counter, created on first use.
  uint64_t& Counter(const std::string& name) { return counters_[name]; }

  // Log-scale histogram, created on first use.
  LatencyHistogram& Histogram(const std::string& name) { return histograms_[name]; }

  // Registers a named read-on-demand gauge (replaces any previous gauge of the same name).
  void RegisterGauge(const std::string& name, std::function<uint64_t()> fn) {
    gauges_[name] = std::move(fn);
    sampled_.erase(name);  // A stale pinned value must not shadow the new source.
  }

  // Evaluates every registered gauge once, now, and pins the sampled values: subsequent Json()
  // exports render the pinned snapshot instead of re-reading the live closures. This is what
  // keeps a timeline window sample and the final export coherent — without it, Json() reads
  // each gauge lazily at export time, after the run has moved on (and a closure with side
  // effects would fire once per export instead of once per sample).
  void Sample() {
    for (const auto& [name, fn] : gauges_) {
      sampled_[name] = fn();
    }
  }
  // Drops the pinned snapshot; Json() reads the live closures again.
  void ClearSample() { sampled_.clear(); }

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,p50,p90,p99,max}}}
  // with each section's keys in sorted order. Gauges render the pinned Sample() values when
  // one exists, falling back to a live read for gauges registered after the last Sample().
  std::string Json() const;

  const std::unordered_map<std::string, uint64_t>& counters() const { return counters_; }
  const std::unordered_map<std::string, LatencyHistogram>& histograms() const {
    return histograms_;
  }
  const std::unordered_map<std::string, std::function<uint64_t()>>& gauges() const {
    return gauges_;
  }

 private:
  // Hash maps: Counter()/Histogram() sit on per-request paths, so lookups must be O(1) in the
  // name, not a string-comparing tree walk. Json() sorts the keys at export time instead.
  std::unordered_map<std::string, uint64_t> counters_;
  std::unordered_map<std::string, LatencyHistogram> histograms_;
  std::unordered_map<std::string, std::function<uint64_t()>> gauges_;
  std::unordered_map<std::string, uint64_t> sampled_;  // Pinned gauge values (see Sample()).
};

// Renders one histogram summary object: {"count":..,"mean":..,"p50":..,"p90":..,"p99":..,
// "max":..} (values in the histogram's own unit, nanoseconds for latency histograms).
class JsonWriter;
void WriteHistogramSummary(JsonWriter& w, const LatencyHistogram& h);

}  // namespace vlog::obs

#endif  // SRC_OBS_METRICS_H_
