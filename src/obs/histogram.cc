#include "src/obs/histogram.h"

#include <algorithm>

namespace vlog::obs {

int64_t LatencyHistogram::BucketLower(uint32_t index) {
  // The first two octaves' sub-buckets all have width 1, so indices below 2*kSubBuckets are
  // their own lower bound.
  if (index < 2 * kSubBuckets) {
    return index;
  }
  const uint32_t octave = kFirstOctave + (index - kSubBuckets) / kSubBuckets;
  const uint32_t sub = (index - kSubBuckets) % kSubBuckets;
  return static_cast<int64_t>((uint64_t{1} << octave) +
                              (static_cast<uint64_t>(sub) << (octave - kFirstOctave)));
}

int64_t LatencyHistogram::BucketUpper(uint32_t index) {
  if (index + 1 >= kNumBuckets) {
    return INT64_MAX;
  }
  return BucketLower(index + 1);
}

void LatencyHistogram::Record(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  const double pos = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i];
    if (c == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + c) >= pos) {
      const double frac = (pos - static_cast<double>(cumulative)) / static_cast<double>(c);
      const double lower = static_cast<double>(BucketLower(i));
      const double upper = static_cast<double>(BucketUpper(i));
      const double value = lower + frac * (upper - lower);
      return std::clamp(value, static_cast<double>(min_), static_cast<double>(max_));
    }
    cumulative += c;
  }
  return static_cast<double>(max_);
}

}  // namespace vlog::obs
