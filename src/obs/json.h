// A minimal streaming JSON writer.
//
// Deterministic by construction: integers print exactly, doubles print with fixed precision
// ("%.3f"), and object keys are emitted in whatever order the caller chooses — callers that
// need byte-identical output across runs (the trace determinism guarantee) iterate ordered
// containers. No external dependency; the repo only ever *emits* JSON, it never parses it.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace vlog::obs {

class JsonWriter {
 public:
  void BeginObject() {
    Comma();
    out_.push_back('{');
    first_.push_back(true);
  }
  void EndObject() {
    out_.push_back('}');
    first_.pop_back();
  }
  void BeginArray() {
    Comma();
    out_.push_back('[');
    first_.push_back(true);
  }
  void EndArray() {
    out_.push_back(']');
    first_.pop_back();
  }
  void Key(std::string_view k) {
    Comma();
    Escaped(k);
    out_.push_back(':');
    pending_value_ = true;
  }
  void String(std::string_view v) {
    Comma();
    Escaped(v);
  }
  void Int(int64_t v) {
    Comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
  }
  void UInt(uint64_t v) {
    Comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out_ += buf;
  }
  void Double(double v) {
    Comma();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    out_ += buf;
  }
  void Bool(bool v) {
    Comma();
    out_ += v ? "true" : "false";
  }

  const std::string& str() const { return out_; }

 private:
  // Inserts the separating comma before any value or key that is not the first in its
  // container. A value directly following its key never takes one.
  void Comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (first_.empty()) {
      return;
    }
    if (!first_.back()) {
      out_.push_back(',');
    }
    first_.back() = false;
  }
  void Escaped(std::string_view s) {
    out_.push_back('"');
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_.push_back(c);
          }
      }
    }
    out_.push_back('"');
  }

  std::string out_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

}  // namespace vlog::obs

#endif  // SRC_OBS_JSON_H_
