// Simulated-time timeline engine: windowed metrics, SLO tracking, steady-state detection.
//
// The existing observability layer answers "what happened overall" — run-wide histograms,
// cumulative counters, end-of-run JSON. Sustained-load work (open-loop arrivals, duty-cycled
// compaction under a latency budget) needs "what happened *when*": saturation knees, the
// window where compaction interfered with foreground traffic, the long-horizon free-space
// trajectory. The Timeline provides that as a sequence of fixed-width windows on the virtual
// clock.
//
// Tick semantics. The simulation is polling-driven (a bench loop submits a batch, FlushQueue
// advances the clock, repeat), so the timeline cannot interrupt mid-batch. Instead the driver
// calls Poll(now) at its natural batch boundaries; Poll closes every window whose nominal end
// `start + (k+1)*window` has passed. Window k nominally covers [start + k*W, start + (k+1)*W).
// Attribution granularity is therefore one driver batch: histogram samples recorded between
// two Polls belong to the window that was open when they were recorded, and counters are
// sampled at Poll time (a Poll that crosses several boundaries charges the whole delta to the
// first elapsed window and zero to the rest). Finish(now) closes the trailing partial window.
//
// Determinism rules. The timeline holds no clock and never advances one — Poll/Finish receive
// the current sim-time as a value, sources are read-only closures over simulation state, and
// all exported numbers are either exact integers or doubles printed with JsonWriter's fixed
// "%.3f". Two same-seed runs therefore produce byte-identical TimelineJson() output, the same
// guarantee the trace layer makes (and the bench smoke gate asserts it by rerunning).
//
// Series kinds:
//   counters    cumulative uint64 sources (stats fields, tracer totals); each window reports
//               the delta since the previous window close — a rate series.
//   gauges      point-in-time uint64 sources (queue depth, free blocks, dirty sectors),
//               sampled at each window close.
//   histograms  WindowedHistograms the driver records into (latencies); each window keeps the
//               full bucket vector, so merging every window's histogram reproduces the
//               run-wide histogram bit for bit (asserted in tests).
//
// On top of the windows sit SLO monitors ("p99 of histogram H <= B per window"; consecutive
// violating windows coalesce into violation spans carrying the dominant latency component
// during the breach) and a steady-state detector (every registered series trend-stationary
// over the last K windows — the gate long-horizon sustained-load runs assert).
#ifndef SRC_OBS_TIMELINE_H_
#define SRC_OBS_TIMELINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/obs/histogram.h"

namespace vlog::obs {

// Records into both the current window's histogram and the run-wide one. Rotation (by the
// owning Timeline) takes the window histogram and resets it; the totals are never reset, so
// total() is exactly the merge of every rotated window plus the still-open one.
class WindowedHistogram {
 public:
  void Record(int64_t value) {
    window_.Record(value);
    total_.Record(value);
  }
  const LatencyHistogram& window() const { return window_; }
  const LatencyHistogram& total() const { return total_; }

  // Returns the current window's histogram and starts a fresh one.
  LatencyHistogram Rotate() {
    LatencyHistogram out = std::move(window_);
    window_ = LatencyHistogram();
    return out;
  }

 private:
  LatencyHistogram window_;
  LatencyHistogram total_;
};

struct TimelineConfig {
  common::Duration window = common::Milliseconds(250);  // Nominal window width.
  common::Time start = 0;  // Window 0 nominally covers [start, start + window).
};

// One closed window. Values are indexed by series registration order (the Timeline holds the
// names); `end` is the nominal boundary except for a Finish()-closed partial tail window.
struct TimelineWindow {
  uint64_t index = 0;
  common::Time start = 0;
  common::Time end = 0;
  std::vector<uint64_t> counters;  // Delta of each counter source since the previous close.
  std::vector<uint64_t> gauges;    // Each gauge source sampled at close.
  std::vector<LatencyHistogram> histograms;  // Each windowed histogram's rotated window.
};

class Timeline {
 public:
  explicit Timeline(TimelineConfig config = {});

  // --- Registration (before the first Poll) ---

  // Cumulative source: each window reports source() - previous close's value.
  void AddCounter(std::string name, std::function<uint64_t()> source);
  // Point-in-time source, sampled at each window close.
  void AddGauge(std::string name, std::function<uint64_t()> source);
  // A histogram the driver records into; the window's copy rotates out at each close. The
  // reference stays valid for the Timeline's lifetime.
  WindowedHistogram& AddHistogram(std::string name);

  // Declares "p99 of histogram `hist` <= budget over each window". Violating windows coalesce
  // into spans; the span's dominant component is the counter (among those whose name begins
  // with `component_prefix`) with the largest summed delta over the breach, ties broken by
  // name. An empty window does not violate.
  void AddSlo(const std::string& hist, common::Duration budget, std::string component_prefix);

  // Adds a series the steady-state detector watches: a gauge name, or "p99:<histogram name>".
  void AddSteadySeries(std::string series);
  // K consecutive windows over which every steady series must be trend-stationary, and the
  // relative tolerance on both the least-squares drift and the min-max range.
  void ConfigureSteadyState(uint32_t windows, double tolerance);

  // --- Driving ---

  // Closes every window whose nominal end is <= now. Reads sources; never advances any clock.
  void Poll(common::Time now);
  // Closes the in-progress partial window at `now` (no-op if nothing was recorded and no time
  // has passed since the last boundary). Call once at end of run, before exporting.
  void Finish(common::Time now);

  // --- Results ---

  const std::vector<TimelineWindow>& windows() const { return windows_; }
  const std::vector<std::string>& counter_names() const { return counter_names_; }
  const std::vector<std::string>& gauge_names() const { return gauge_names_; }
  const std::vector<std::string>& histogram_names() const { return histogram_names_; }
  // Registration index of the named series, or -1 if absent. Lets consumers (the compaction
  // governor reads per-window p99s this way) resolve a name once instead of per window.
  int HistogramIndex(const std::string& name) const;
  int GaugeIndex(const std::string& name) const;

  struct SloViolation {
    uint64_t start_window = 0;  // First violating window index (inclusive).
    uint64_t end_window = 0;    // Last violating window index (inclusive).
    common::Time start = 0;     // start_window's start.
    common::Time end = 0;       // end_window's end.
    double worst_p99 = 0;       // Max window p99 over the span (ns).
    std::string dominant;       // Component with the largest summed delta over the breach.
  };
  struct SloResult {
    std::string hist;
    common::Duration budget = 0;
    std::string component_prefix;
    std::vector<SloViolation> violations;  // Closed spans, in time order.
    bool in_violation = false;             // An open span exists (close it via Finish()).
  };
  const std::vector<SloResult>& slos() const { return slos_; }

  // True when every steady series was trend-stationary over the last K closed windows (false
  // until K windows exist or when no series is registered).
  bool IsSteady() const;
  // Number of consecutive closed windows (ending at the newest) whose close left IsSteady()
  // true; 0 when the run never settled.
  uint64_t steady_windows() const { return steady_windows_; }

  // {"schema":"vlog-timeline/1",...} — windows in order, series in registration order,
  // violation spans and the steady-state verdict included. Byte-identical across same-seed
  // runs.
  std::string Json() const;

 private:
  struct Counter {
    std::function<uint64_t()> source;
    uint64_t last = 0;  // Value at the previous window close.
  };
  void CloseWindow(common::Time end_time);
  void EvaluateSlos(const TimelineWindow& w);
  // Emits the open span of slo `i` as a violation ending at window `end_window`/time `end`.
  void CloseViolation(size_t i, uint64_t end_window, common::Time end);
  void EvaluateSteadyState();
  double SteadySample(const std::string& series, const TimelineWindow& w) const;
  // True when the last K samples of `history` are trend-stationary within tolerance.
  bool Stationary(const std::vector<double>& history) const;

  TimelineConfig config_;
  uint64_t next_index_ = 0;         // Next window to close.
  common::Time last_close_ = 0;     // Time the previous window closed (== its `end`).
  std::vector<std::string> counter_names_;
  std::vector<Counter> counters_;
  std::vector<std::string> gauge_names_;
  std::vector<std::function<uint64_t()>> gauges_;
  std::vector<std::string> histogram_names_;
  // Deque-like stability: histograms are appended once at registration and referenced by the
  // driver, so they live behind unique ownership.
  std::vector<std::unique_ptr<WindowedHistogram>> histograms_;
  std::vector<TimelineWindow> windows_;
  std::vector<SloResult> slos_;
  // Per-SLO open-span accumulator state (parallel to slos_).
  struct OpenSpan {
    bool open = false;
    uint64_t start_window = 0;
    common::Time start = 0;
    double worst_p99 = 0;
    std::vector<uint64_t> component_sums;  // Parallel to counters_ (non-prefix entries stay 0).
  };
  std::vector<OpenSpan> open_spans_;
  std::vector<std::string> steady_series_;
  std::vector<std::vector<double>> steady_history_;  // Parallel to steady_series_.
  uint32_t steady_k_ = 8;
  double steady_tolerance_ = 0.05;
  bool steady_now_ = false;
  uint64_t steady_windows_ = 0;
  bool finished_ = false;
};

class TraceRecorder;

// Registers one counter per latency component of `tracer`'s running span totals, named
// `prefix` + component ("queueing", "seek", "rotation", "transfer", "flush", "controller",
// "head_switch", "host_cpu"). Pointing an SLO's component_prefix at `prefix` makes breach
// spans report which component dominated. The tracer must outlive the timeline's last Poll.
void RegisterBreakdownCounters(Timeline& timeline, const TraceRecorder& tracer,
                               const std::string& prefix);

}  // namespace vlog::obs

#endif  // SRC_OBS_TIMELINE_H_
