#include "src/obs/timeline.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace vlog::obs {

Timeline::Timeline(TimelineConfig config) : config_(config), last_close_(config.start) {}

void Timeline::AddCounter(std::string name, std::function<uint64_t()> source) {
  counter_names_.push_back(std::move(name));
  counters_.push_back(Counter{std::move(source), 0});
  // Baseline the counter at registration so window 0 reports growth since attach, not since
  // process start (sources are often mid-run cumulative stats).
  counters_.back().last = counters_.back().source();
}

void Timeline::AddGauge(std::string name, std::function<uint64_t()> source) {
  gauge_names_.push_back(std::move(name));
  gauges_.push_back(std::move(source));
}

WindowedHistogram& Timeline::AddHistogram(std::string name) {
  histogram_names_.push_back(std::move(name));
  histograms_.push_back(std::make_unique<WindowedHistogram>());
  return *histograms_.back();
}

int Timeline::HistogramIndex(const std::string& name) const {
  for (size_t i = 0; i < histogram_names_.size(); ++i) {
    if (histogram_names_[i] == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int Timeline::GaugeIndex(const std::string& name) const {
  for (size_t i = 0; i < gauge_names_.size(); ++i) {
    if (gauge_names_[i] == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Timeline::AddSlo(const std::string& hist, common::Duration budget,
                      std::string component_prefix) {
  SloResult slo;
  slo.hist = hist;
  slo.budget = budget;
  slo.component_prefix = std::move(component_prefix);
  slos_.push_back(std::move(slo));
  OpenSpan span;
  span.component_sums.resize(counters_.size(), 0);
  open_spans_.push_back(std::move(span));
}

void Timeline::AddSteadySeries(std::string series) {
  steady_series_.push_back(std::move(series));
  steady_history_.emplace_back();
}

void Timeline::ConfigureSteadyState(uint32_t windows, double tolerance) {
  steady_k_ = windows == 0 ? 1 : windows;
  steady_tolerance_ = tolerance;
}

void Timeline::CloseWindow(common::Time end_time) {
  TimelineWindow w;
  w.index = next_index_;
  w.start = last_close_;
  w.end = end_time;
  w.counters.reserve(counters_.size());
  for (Counter& c : counters_) {
    const uint64_t now = c.source();
    w.counters.push_back(now - c.last);
    c.last = now;
  }
  w.gauges.reserve(gauges_.size());
  for (const auto& g : gauges_) {
    w.gauges.push_back(g());
  }
  w.histograms.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    w.histograms.push_back(h->Rotate());
  }
  windows_.push_back(std::move(w));
  ++next_index_;
  last_close_ = end_time;
  EvaluateSlos(windows_.back());
  EvaluateSteadyState();
}

void Timeline::Poll(common::Time now) {
  if (finished_) {
    return;
  }
  // Close every window whose nominal boundary has passed. A Poll that crosses several
  // boundaries samples the sources once per close in immediate succession: the first elapsed
  // window absorbs the whole delta, later ones report zero (see header: attribution
  // granularity is one driver batch).
  while (config_.start + static_cast<common::Duration>(next_index_ + 1) * config_.window <=
         now) {
    CloseWindow(config_.start +
                static_cast<common::Duration>(next_index_ + 1) * config_.window);
  }
}

void Timeline::Finish(common::Time now) {
  if (finished_) {
    return;
  }
  Poll(now);
  // The trailing partial window: close it if any time passed or any sample landed since the
  // last boundary, so the merge identity (windows sum to the run-wide totals) always holds.
  bool tail_samples = false;
  for (const auto& h : histograms_) {
    tail_samples |= h->window().Count() > 0;
  }
  if (now > last_close_ || tail_samples) {
    CloseWindow(now > last_close_ ? now : last_close_);
  }
  // Close any open violation spans at the final window.
  for (size_t i = 0; i < slos_.size(); ++i) {
    if (open_spans_[i].open) {
      CloseViolation(i, windows_.empty() ? open_spans_[i].start_window : windows_.back().index,
                     windows_.empty() ? open_spans_[i].start : windows_.back().end);
    }
  }
  finished_ = true;
}

void Timeline::CloseViolation(size_t i, uint64_t end_window, common::Time end) {
  OpenSpan& open = open_spans_[i];
  SloResult& slo = slos_[i];
  SloViolation v;
  v.start_window = open.start_window;
  v.end_window = end_window;
  v.start = open.start;
  v.end = end;
  v.worst_p99 = open.worst_p99;
  std::string best;
  uint64_t best_sum = 0;
  for (size_t c = 0; c < counters_.size(); ++c) {
    if (counter_names_[c].rfind(slo.component_prefix, 0) != 0) {
      continue;
    }
    const uint64_t sum = open.component_sums[c];
    const std::string name = counter_names_[c].substr(slo.component_prefix.size());
    if (best.empty() || sum > best_sum || (sum == best_sum && name < best)) {
      best = name;
      best_sum = sum;
    }
  }
  v.dominant = std::move(best);
  slo.violations.push_back(std::move(v));
  slo.in_violation = false;
  open.open = false;
}

void Timeline::EvaluateSlos(const TimelineWindow& w) {
  for (size_t i = 0; i < slos_.size(); ++i) {
    SloResult& slo = slos_[i];
    OpenSpan& open = open_spans_[i];
    // Locate the watched histogram (registration order).
    double p99 = 0;
    bool empty = true;
    for (size_t h = 0; h < histogram_names_.size(); ++h) {
      if (histogram_names_[h] == slo.hist) {
        p99 = w.histograms[h].Percentile(99);
        empty = w.histograms[h].Count() == 0;
        break;
      }
    }
    const bool violating = !empty && p99 > static_cast<double>(slo.budget);
    if (violating) {
      if (!open.open) {
        open.open = true;
        open.start_window = w.index;
        open.start = w.start;
        open.worst_p99 = 0;
        std::fill(open.component_sums.begin(), open.component_sums.end(), 0);
        slo.in_violation = true;
      }
      open.worst_p99 = std::max(open.worst_p99, p99);
      for (size_t c = 0; c < counters_.size(); ++c) {
        if (counter_names_[c].rfind(slo.component_prefix, 0) == 0) {
          open.component_sums[c] += w.counters[c];
        }
      }
      continue;
    }
    if (open.open) {
      // The breach ended at the previous window; emit the span.
      CloseViolation(i, w.index - 1, w.start);
    }
  }
}

double Timeline::SteadySample(const std::string& series, const TimelineWindow& w) const {
  if (series.rfind("p99:", 0) == 0) {
    const std::string hist = series.substr(4);
    for (size_t h = 0; h < histogram_names_.size(); ++h) {
      if (histogram_names_[h] == hist) {
        return w.histograms[h].Percentile(99);
      }
    }
    return 0;
  }
  for (size_t g = 0; g < gauge_names_.size(); ++g) {
    if (gauge_names_[g] == series) {
      return static_cast<double>(w.gauges[g]);
    }
  }
  return 0;
}

bool Timeline::Stationary(const std::vector<double>& history) const {
  if (history.size() < steady_k_) {
    return false;
  }
  const size_t n = steady_k_;
  const size_t base = history.size() - n;
  double mean = 0, lo = history[base], hi = history[base];
  for (size_t i = 0; i < n; ++i) {
    const double v = history[base + i];
    mean += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  mean /= static_cast<double>(n);
  const double scale = std::max(std::abs(mean), 1.0);
  // Min-max excursion over the K windows.
  if ((hi - lo) > steady_tolerance_ * scale) {
    return false;
  }
  if (n < 2) {
    return true;
  }
  // Least-squares slope per window; total drift over the K windows must stay within tolerance.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    const double y = history[base + i];
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  const double slope = denom != 0 ? (static_cast<double>(n) * sxy - sx * sy) / denom : 0;
  return std::abs(slope * static_cast<double>(n - 1)) <= steady_tolerance_ * scale;
}

void Timeline::EvaluateSteadyState() {
  if (steady_series_.empty()) {
    return;
  }
  const TimelineWindow& w = windows_.back();
  for (size_t s = 0; s < steady_series_.size(); ++s) {
    steady_history_[s].push_back(SteadySample(steady_series_[s], w));
  }
  bool steady = true;
  for (const std::vector<double>& history : steady_history_) {
    steady &= Stationary(history);
  }
  steady_now_ = steady;
  steady_windows_ = steady ? steady_windows_ + 1 : 0;
}

bool Timeline::IsSteady() const { return !steady_series_.empty() && steady_now_; }

std::string Timeline::Json() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("vlog-timeline/1");
  w.Key("window_ns");
  w.Int(config_.window);
  w.Key("start_ns");
  w.Int(config_.start);
  w.Key("windows");
  w.BeginArray();
  for (const TimelineWindow& win : windows_) {
    w.BeginObject();
    w.Key("index");
    w.UInt(win.index);
    w.Key("start_ns");
    w.Int(win.start);
    w.Key("end_ns");
    w.Int(win.end);
    w.Key("counters");
    w.BeginObject();
    for (size_t c = 0; c < counter_names_.size(); ++c) {
      w.Key(counter_names_[c]);
      w.UInt(win.counters[c]);
    }
    w.EndObject();
    w.Key("gauges");
    w.BeginObject();
    for (size_t g = 0; g < gauge_names_.size(); ++g) {
      w.Key(gauge_names_[g]);
      w.UInt(win.gauges[g]);
    }
    w.EndObject();
    w.Key("histograms");
    w.BeginObject();
    for (size_t h = 0; h < histogram_names_.size(); ++h) {
      w.Key(histogram_names_[h]);
      WriteHistogramSummary(w, win.histograms[h]);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("slo");
  w.BeginArray();
  for (const SloResult& slo : slos_) {
    w.BeginObject();
    w.Key("histogram");
    w.String(slo.hist);
    w.Key("budget_ns");
    w.Int(slo.budget);
    w.Key("violations");
    w.BeginArray();
    for (const SloViolation& v : slo.violations) {
      w.BeginObject();
      w.Key("start_window");
      w.UInt(v.start_window);
      w.Key("end_window");
      w.UInt(v.end_window);
      w.Key("start_ns");
      w.Int(v.start);
      w.Key("end_ns");
      w.Int(v.end);
      w.Key("worst_p99");
      w.Double(v.worst_p99);
      w.Key("dominant");
      w.String(v.dominant);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("steady");
  w.BeginObject();
  w.Key("k");
  w.UInt(steady_k_);
  w.Key("tolerance");
  w.Double(steady_tolerance_);
  w.Key("series");
  w.BeginArray();
  for (const std::string& s : steady_series_) {
    w.String(s);
  }
  w.EndArray();
  w.Key("steady");
  w.Bool(IsSteady());
  w.Key("consecutive_windows");
  w.UInt(steady_windows_);
  w.EndObject();
  w.EndObject();
  return w.str();
}

void RegisterBreakdownCounters(Timeline& timeline, const TraceRecorder& tracer,
                               const std::string& prefix) {
  const TimeBreakdown* totals = &tracer.totals();
  timeline.AddCounter(prefix + "host_cpu",
                      [totals] { return static_cast<uint64_t>(totals->host_cpu); });
  timeline.AddCounter(prefix + "controller",
                      [totals] { return static_cast<uint64_t>(totals->controller); });
  timeline.AddCounter(prefix + "seek", [totals] { return static_cast<uint64_t>(totals->seek); });
  timeline.AddCounter(prefix + "head_switch",
                      [totals] { return static_cast<uint64_t>(totals->head_switch); });
  timeline.AddCounter(prefix + "rotation",
                      [totals] { return static_cast<uint64_t>(totals->rotation); });
  timeline.AddCounter(prefix + "transfer",
                      [totals] { return static_cast<uint64_t>(totals->transfer); });
  timeline.AddCounter(prefix + "flush",
                      [totals] { return static_cast<uint64_t>(totals->flush); });
  timeline.AddCounter(prefix + "nvm", [totals] { return static_cast<uint64_t>(totals->nvm); });
  timeline.AddCounter(prefix + "queueing",
                      [totals] { return static_cast<uint64_t>(totals->queueing); });
}

}  // namespace vlog::obs
