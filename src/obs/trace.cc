#include "src/obs/trace.h"

#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace vlog::obs {

const char* LayerName(Layer layer) {
  switch (layer) {
    case Layer::kHost:
      return "host";
    case Layer::kFs:
      return "fs";
    case Layer::kNvm:
      return "nvm";
    case Layer::kVld:
      return "vld";
    case Layer::kVlog:
      return "vlog";
    case Layer::kQueue:
      return "queue";
    case Layer::kDisk:
      return "disk";
  }
  return "?";
}

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kOther:
      return "other";
    case SpanKind::kWrite:
      return "write";
    case SpanKind::kRead:
      return "read";
  }
  return "?";
}

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kSubmit:
      return "submit";
    case EventType::kEnter:
      return "enter";
    case EventType::kComplete:
      return "complete";
    case EventType::kHostCpu:
      return "host_cpu";
    case EventType::kController:
      return "controller";
    case EventType::kSeek:
      return "seek";
    case EventType::kHeadSwitch:
      return "head_switch";
    case EventType::kRotation:
      return "rotation";
    case EventType::kMediaXfer:
      return "media_xfer";
    case EventType::kBusXfer:
      return "bus_xfer";
    case EventType::kDestage:
      return "destage";
    case EventType::kNvmWrite:
      return "nvm_write";
    case EventType::kNvmRead:
      return "nvm_read";
    case EventType::kReadForward:
      return "read_forward";
    case EventType::kFlush:
      return "flush";
    case EventType::kMapAppend:
      return "map_append";
    case EventType::kGroupCommit:
      return "group_commit";
    case EventType::kCheckpoint:
      return "checkpoint";
    case EventType::kCompactStart:
      return "compact_start";
    case EventType::kCompactEnd:
      return "compact_end";
    case EventType::kNvmStage:
      return "nvm_stage";
    case EventType::kNvmInvalidate:
      return "nvm_invalidate";
    case EventType::kNvmDestageStart:
      return "nvm_destage_start";
    case EventType::kNvmDestageEnd:
      return "nvm_destage_end";
  }
  return "?";
}

TimeBreakdown& TimeBreakdown::operator+=(const TimeBreakdown& rhs) {
  host_cpu += rhs.host_cpu;
  controller += rhs.controller;
  seek += rhs.seek;
  head_switch += rhs.head_switch;
  rotation += rhs.rotation;
  transfer += rhs.transfer;
  flush += rhs.flush;
  nvm += rhs.nvm;
  queueing += rhs.queueing;
  return *this;
}

TimeBreakdown TimeBreakdown::operator-(const TimeBreakdown& rhs) const {
  TimeBreakdown d;
  d.host_cpu = host_cpu - rhs.host_cpu;
  d.controller = controller - rhs.controller;
  d.seek = seek - rhs.seek;
  d.head_switch = head_switch - rhs.head_switch;
  d.rotation = rotation - rhs.rotation;
  d.transfer = transfer - rhs.transfer;
  d.flush = flush - rhs.flush;
  d.nvm = nvm - rhs.nvm;
  d.queueing = queueing - rhs.queueing;
  return d;
}

TraceRecorder::TraceRecorder(const common::Clock* clock, size_t event_capacity)
    : clock_(clock), capacity_(event_capacity == 0 ? 1 : event_capacity) {
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

uint64_t TraceRecorder::BeginSpan(Layer layer, uint64_t a, uint64_t b, SpanKind kind) {
  const uint64_t id = BeginSpanDetached(layer, a, b, kind);
  current_ = id;
  return id;
}

uint64_t TraceRecorder::BeginSpanDetached(Layer layer, uint64_t a, uint64_t b, SpanKind kind) {
  Span& s = spans_.emplace_back();
  const uint64_t id = spans_.size();
  s.submit = clock_->Now();
  s.layer = layer;
  s.kind = kind;
  s.disk = disk_index_;
  s.a = a;
  s.b = b;
  Push({s.submit, 0, id, EventType::kSubmit, layer, a, b});
  return id;
}

void TraceRecorder::EndSpan(uint64_t id) {
  if (id == 0 || id > spans_.size() || !spans_[id - 1].open) {
    return;
  }
  Span& s = spans_[id - 1];
  s.complete = clock_->Now();
  s.open = false;
  // Everything the span waited for beyond its own charged activities is queueing: other
  // requests' media time ahead of it, overlapped controller work, a shared group commit.
  s.breakdown.queueing = s.Latency() - s.breakdown.Accounted();
  Push({s.complete, s.Latency(), id, EventType::kComplete, s.layer, s.a, s.b});
  totals_ += s.breakdown;
  ++completed_spans_;
  latency_hist_.Record(s.Latency());
  queueing_hist_.Record(s.breakdown.queueing);
  seek_hist_.Record(s.breakdown.seek);
  rotation_hist_.Record(s.breakdown.rotation);
  transfer_hist_.Record(s.breakdown.transfer);
}

void TraceRecorder::Charge(EventType type, Layer layer, common::Duration dur, uint64_t a,
                           uint64_t b) {
  Push({clock_->Now(), dur, current_, type, layer, a, b});
  if (current_ == 0 || current_ > spans_.size() || !spans_[current_ - 1].open) {
    return;
  }
  TimeBreakdown& bd = spans_[current_ - 1].breakdown;
  switch (type) {
    case EventType::kHostCpu:
      bd.host_cpu += dur;
      break;
    case EventType::kController:
      bd.controller += dur;
      break;
    case EventType::kSeek:
      bd.seek += dur;
      break;
    case EventType::kHeadSwitch:
      bd.head_switch += dur;
      break;
    case EventType::kRotation:
      bd.rotation += dur;
      break;
    case EventType::kMediaXfer:
    case EventType::kBusXfer:
      bd.transfer += dur;
      break;
    case EventType::kDestage:
      bd.flush += dur;
      break;
    case EventType::kNvmWrite:
    case EventType::kNvmRead:
      bd.nvm += dur;
      break;
    default:
      break;
  }
}

void TraceRecorder::Annotate(EventType type, Layer layer, uint64_t a, uint64_t b) {
  Push({clock_->Now(), 0, current_, type, layer, a, b});
}

const TraceRecorder::Span* TraceRecorder::span(uint64_t id) const {
  return (id == 0 || id > spans_.size()) ? nullptr : &spans_[id - 1];
}

void TraceRecorder::Push(TraceEvent event) {
  event.disk = disk_index_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (size_t i = head_; i < ring_.size(); ++i) {
    out.push_back(ring_[i]);
  }
  for (size_t i = 0; i < head_; ++i) {
    out.push_back(ring_[i]);
  }
  return out;
}

std::string TraceRecorder::TraceJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("vlog-trace/1");
  w.Key("dropped");
  w.UInt(dropped_);
  w.Key("spans");
  w.BeginArray();
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    w.BeginObject();
    w.Key("id");
    w.UInt(i + 1);
    w.Key("layer");
    w.String(LayerName(s.layer));
    w.Key("kind");
    w.String(SpanKindName(s.kind));
    w.Key("disk");
    w.UInt(s.disk);
    w.Key("submit");
    w.Int(s.submit);
    w.Key("complete");
    w.Int(s.open ? -1 : s.complete);
    w.Key("a");
    w.UInt(s.a);
    w.Key("b");
    w.UInt(s.b);
    if (!s.open) {
      w.Key("breakdown");
      w.BeginObject();
      w.Key("host_cpu");
      w.Int(s.breakdown.host_cpu);
      w.Key("controller");
      w.Int(s.breakdown.controller);
      w.Key("seek");
      w.Int(s.breakdown.seek);
      w.Key("head_switch");
      w.Int(s.breakdown.head_switch);
      w.Key("rotation");
      w.Int(s.breakdown.rotation);
      w.Key("transfer");
      w.Int(s.breakdown.transfer);
      w.Key("flush");
      w.Int(s.breakdown.flush);
      w.Key("nvm");
      w.Int(s.breakdown.nvm);
      w.Key("queueing");
      w.Int(s.breakdown.queueing);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("events");
  w.BeginArray();
  for (const TraceEvent& e : Events()) {
    w.BeginObject();
    w.Key("at");
    w.Int(e.at);
    w.Key("dur");
    w.Int(e.dur);
    w.Key("span");
    w.UInt(e.span_id);
    w.Key("type");
    w.String(EventTypeName(e.type));
    w.Key("layer");
    w.String(LayerName(e.layer));
    w.Key("disk");
    w.UInt(e.disk);
    w.Key("a");
    w.UInt(e.a);
    w.Key("b");
    w.UInt(e.b);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void TraceRecorder::PublishTo(MetricsRegistry& registry, const std::string& prefix) const {
  registry.Counter(prefix + ".completed") = completed_spans_;
  registry.Counter(prefix + ".dropped_events") = dropped_;
  registry.Histogram(prefix + ".latency_ns").Merge(latency_hist_);
  registry.Histogram(prefix + ".queueing_ns").Merge(queueing_hist_);
  registry.Histogram(prefix + ".seek_ns").Merge(seek_hist_);
  registry.Histogram(prefix + ".rotation_ns").Merge(rotation_hist_);
  registry.Histogram(prefix + ".transfer_ns").Merge(transfer_hist_);
}

}  // namespace vlog::obs
