// The NVM write-ahead staging tier (ROADMAP item 3, after NVLog — see PAPERS.md "Boosting
// File Systems Elegantly"): a byte-addressable staging area in front of any BlockDevice that
// absorbs small synchronous writes at NVM latency, acknowledges them immediately, and destages
// coalesced runs to the backing device in the background.
//
// Persistence state machine per staged write:
//
//   acked-in-NVM  --(background destage run + backing Flush)-->  durable-on-disk
//        |                                                            |
//        +--(direct write / trim over the same sectors:                |
//            destage + Flush + invalidate record)---------------------+
//
// Both states are crash-durable: an acknowledged staged write survives every crash point
// because either its NVM record replays through Recover(), or it was destaged to the backing
// device *and flushed* before the log forgot it. The invariants that make that true:
//   1. Ack = one NVM append (header CRC + payload CRC, padded to cache lines). NVM appends
//      are durable at acknowledgement; a crash mid-append tears at a cache-line boundary and
//      the CRCs drop exactly the torn record, never an earlier one.
//   2. The stage destages to the backing device and completes a backing Flush() BEFORE any
//      record leaves the log (head advance or invalidate append). The disk copy is durable
//      before the NVM copy is forgotten — on a write-back-cached disk the Flush is what makes
//      this ordering real.
//   3. Direct-path writes (large writes, queued submits, atomic batches, trims) that overlap
//      staged sectors synchronously destage + Flush + append an invalidate record before
//      touching the backing device, so a replayed overlay can never resurrect stale staged
//      data over a later acknowledged direct write.
// The crash-state matrix {NVM intact, NVM torn-tail} x {disk clean/torn/corrupt/reorder} is
// swept by crashsim with NvmStage::Recover running before the backing recovery.
//
// The log is linear, not a ring: destage advances a persisted head pointer, and when the log
// empties (or a record would overflow the capacity, after a full synchronous drain) the epoch
// increments and head/tail reset — records from a previous epoch fail the epoch check at
// recovery, so stale bytes past the reset point are never replayed.
#ifndef SRC_NVM_NVM_STAGE_H_
#define SRC_NVM_NVM_STAGE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/core/vld.h"
#include "src/obs/trace.h"
#include "src/simdisk/block_device.h"
#include "src/simdisk/nvm_device.h"

namespace vlog::obs {
class Timeline;
}  // namespace vlog::obs

namespace vlog::core {

struct NvmStageConfig {
  // Sync writes of at most this many sectors are absorbed by the stage; larger writes go
  // direct to the backing device (they amortize mechanical costs on their own, and staging
  // them would burn NVM capacity for little latency win).
  uint32_t stage_threshold_sectors = 8;
  // Records destaged per background batch (one batch = one coalesced run set + one backing
  // Flush + one persisted head advance).
  uint32_t destage_batch_records = 8;
};

struct NvmStageStats {
  uint64_t staged_writes = 0;       // Host writes absorbed by the stage.
  uint64_t staged_bytes = 0;        // Payload bytes absorbed.
  uint64_t direct_writes = 0;       // Host writes routed around the stage.
  uint64_t read_hit_sectors = 0;    // Read sectors served from the overlay.
  uint64_t destage_batches = 0;     // Background destage batches completed.
  uint64_t destaged_records = 0;    // Log records retired (data + invalidate).
  uint64_t destaged_sectors = 0;    // Live sectors written to the backing device.
  uint64_t invalidates = 0;         // Invalidate records appended by the conflict path.
  uint64_t conflict_destages = 0;   // Staged sectors destaged synchronously by conflicts.
  uint64_t drains = 0;              // Full synchronous drains (explicit or overflow).
  uint64_t overflow_drains = 0;     // Drains forced by log-capacity pressure.
  uint64_t epoch_resets = 0;        // Log resets (epoch bumps) after emptying.
};

struct NvmStageRecoveryInfo {
  uint64_t data_records = 0;        // Valid data records replayed.
  uint64_t invalidate_records = 0;  // Valid invalidate records replayed.
  bool torn_tail_dropped = false;   // Scan stopped at an invalid (torn) record.
  uint64_t staged_sectors = 0;      // Overlay size after replay.
  uint64_t log_bytes = 0;           // Live log bytes (tail - head) after replay.
  uint64_t epoch = 0;
};

// `NvmStage` is itself a BlockDevice, so any file system (UFS, the LFS logical disk) mounts on
// top of it unchanged; the VLD extensions (queued I/O, atomic batches, trim) pass through when
// the backing device is a Vld.
class NvmStage : public simdisk::BlockDevice {
 public:
  // Stage over a VLD: the headline "eager writing + NVM" composition. Queued and atomic
  // extensions are available.
  NvmStage(simdisk::NvmDevice* nvm, Vld* vld, NvmStageConfig config = {});
  // Stage over any block device (e.g. a raw SimDisk): the "NVM over naive placement" leg.
  NvmStage(simdisk::NvmDevice* nvm, simdisk::BlockDevice* backing, NvmStageConfig config = {});

  // Initializes an empty log (fresh NVM). Either Format or Recover must run before I/O.
  common::Status Format();
  // Replays the NVM log: validates the superblock, scans records (stopping at the first torn
  // or stale one), and rebuilds the DRAM overlay. Must run BEFORE the backing device's own
  // recovery reads are trusted at the stage level.
  common::StatusOr<NvmStageRecoveryInfo> Recover();

  // BlockDevice. Write routes small sync writes into the stage (acked at NVM latency) and
  // large ones around it (after resolving staged-sector conflicts). Read serves staged
  // sectors from the overlay and the rest from the backing device. Flush only drains the
  // backing device: acknowledged staged writes are already durable in NVM.
  common::Status Read(simdisk::Lba lba, std::span<std::byte> out) override;
  common::Status Write(simdisk::Lba lba, std::span<const std::byte> in) override;
  common::Status Flush() override { return backing_->Flush(); }
  uint64_t SectorCount() const override { return backing_->SectorCount(); }
  uint32_t SectorBytes() const override { return sector_bytes_; }

  // VLD extensions, forwarded after conflict resolution (staged overlaps are destaged +
  // flushed + invalidated first). Fail when the backing device is not a Vld.
  common::Status Trim(simdisk::Lba lba, uint64_t sectors);
  common::Status WriteAtomic(std::span<const Vld::AtomicWrite> writes);
  common::StatusOr<uint64_t> SubmitWrite(simdisk::Lba lba, std::span<const std::byte> in);
  common::StatusOr<uint64_t> SubmitRead(simdisk::Lba lba, uint64_t sectors);
  common::StatusOr<std::vector<Vld::QueuedCompletion>> FlushQueue();

  // Destages everything synchronously and resets the log. After Drain() the backing device's
  // contents equal what a stage-off run would have produced (the differential suite's
  // bit-identity check).
  common::Status Drain();
  // Background destage under a time budget (CompactionGovernor-style duty cycling): retires
  // whole batches of oldest records until the budget elapses or the log empties. Returns the
  // number of log records retired.
  common::StatusOr<uint64_t> RunDestageBurst(common::Duration budget);

  uint64_t staged_sectors() const { return overlay_.size(); }
  uint64_t log_bytes() const { return tail_ - head_; }
  uint64_t log_records() const { return records_.size(); }
  uint64_t epoch() const { return epoch_; }
  const NvmStageStats& stats() const { return stats_; }
  simdisk::NvmDevice& nvm() { return *nvm_; }
  Vld* vld() { return vld_; }
  common::Clock* clock() { return nvm_->clock(); }

  void set_tracer(obs::TraceRecorder* tracer) {
    tracer_ = tracer;
    nvm_->set_tracer(tracer);
  }
  // Registers stage occupancy gauges and activity counters under `prefix` (e.g. "nvm.").
  // Closures capture `this`; pure reads, never advance the clock.
  void RegisterTimelineProbes(obs::Timeline& timeline, const std::string& prefix) const;

  // On-NVM layout constants (exposed for the crashsim replayer and the property tests).
  static constexpr uint64_t kSuperblockBytes = 64;
  static constexpr uint64_t kHeaderBytes = 48;
  static constexpr uint32_t kTypeData = 1;
  static constexpr uint32_t kTypeInvalidate = 2;
  // Total log-record footprint for a payload of `payload_bytes`, padded to cache lines.
  static uint64_t RecordBytes(uint64_t payload_bytes, uint32_t cache_line_bytes);

 private:
  struct LogRecord {
    uint64_t seq = 0;
    simdisk::Lba lba = 0;
    uint64_t sectors = 0;     // 0 for invalidate records.
    uint64_t offset = 0;      // NVM byte offset of the record header.
    uint64_t total_bytes = 0; // Header + padded payload.
  };
  struct OverlaySector {
    uint64_t seq = 0;     // Owning record; stale copies in older records are dead.
    uint64_t offset = 0;  // NVM byte offset of this sector's payload bytes.
  };

  common::Status CheckRange(simdisk::Lba lba, size_t bytes, const char* op) const;
  // Absorbs one small sync write: one CRC-protected NVM append + overlay update.
  common::Status StagePut(simdisk::Lba lba, std::span<const std::byte> in);
  // Direct-path conflict protocol over [lba, lba+sectors): synchronously destages overlapping
  // staged sectors, flushes the backing device, appends an invalidate record, and drops the
  // overlay entries. No-op when nothing overlaps.
  common::Status ResolveConflicts(simdisk::Lba lba, uint64_t sectors);
  // Writes `live` (sector -> NVM payload offset, ascending) to the backing device as
  // coalesced contiguous runs. Does NOT flush or touch the overlay.
  common::Status DestageSectors(const std::vector<std::pair<simdisk::Lba, uint64_t>>& live);
  // Retires up to destage_batch_records oldest records: destage live sectors, Flush, advance
  // the persisted head (and reset the log when it empties). Returns records retired.
  common::StatusOr<uint64_t> DestageStep();
  common::Status AppendInvalidate(simdisk::Lba lba, uint64_t sectors);
  common::Status AppendRecord(uint32_t type, simdisk::Lba lba, uint64_t arg,
                              std::span<const std::byte> payload);
  common::Status WriteSuperblock();
  // Bumps the epoch and resets head/tail to the log start (records_ must be empty).
  common::Status ResetLog();

  simdisk::NvmDevice* nvm_;
  simdisk::BlockDevice* backing_;
  Vld* vld_;  // Non-null when backing_ is a Vld (enables the queued/atomic/trim passthroughs).
  NvmStageConfig config_;
  uint32_t sector_bytes_;
  obs::TraceRecorder* tracer_ = nullptr;

  uint64_t epoch_ = 0;
  uint64_t seq_ = 0;   // Last assigned record sequence number.
  uint64_t head_ = kSuperblockBytes;  // First live record byte (persisted in the superblock).
  uint64_t tail_ = kSuperblockBytes;  // Next append offset (recovered by scanning from head).
  std::deque<LogRecord> records_;     // Live records, oldest first, contiguous [head_, tail_).
  std::map<simdisk::Lba, OverlaySector> overlay_;  // Staged sector -> newest NVM copy.
  std::vector<std::byte> record_buf_;  // Reused append scratch.
  NvmStageStats stats_;
};

}  // namespace vlog::core

#endif  // SRC_NVM_NVM_STAGE_H_
