#include "src/nvm/nvm_stage.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/obs/timeline.h"

namespace vlog::core {
namespace {

constexpr uint64_t kSuperMagic = 0x314D564E474F4C56ull;  // "VLOGNVM1" little-endian.
constexpr uint32_t kRecordMagic = 0x564C4E52;            // "RNLV".

}  // namespace

uint64_t NvmStage::RecordBytes(uint64_t payload_bytes, uint32_t cache_line_bytes) {
  const uint64_t raw = kHeaderBytes + payload_bytes;
  return (raw + cache_line_bytes - 1) / cache_line_bytes * cache_line_bytes;
}

NvmStage::NvmStage(simdisk::NvmDevice* nvm, Vld* vld, NvmStageConfig config)
    : nvm_(nvm), backing_(vld), vld_(vld), config_(config),
      sector_bytes_(vld->SectorBytes()) {}

NvmStage::NvmStage(simdisk::NvmDevice* nvm, simdisk::BlockDevice* backing, NvmStageConfig config)
    : nvm_(nvm), backing_(backing), vld_(nullptr), config_(config),
      sector_bytes_(backing->SectorBytes()) {}

common::Status NvmStage::CheckRange(simdisk::Lba lba, size_t bytes, const char* op) const {
  if (bytes == 0 || bytes % sector_bytes_ != 0) {
    return common::InvalidArgument(std::string(op) + ": size " + std::to_string(bytes) +
                                   " not a positive multiple of " +
                                   std::to_string(sector_bytes_));
  }
  const uint64_t sectors = bytes / sector_bytes_;
  if (lba > backing_->SectorCount() || sectors > backing_->SectorCount() - lba) {
    return common::InvalidArgument(std::string(op) + ": range [" + std::to_string(lba) + ", +" +
                                   std::to_string(sectors) + ") exceeds device");
  }
  return common::OkStatus();
}

common::Status NvmStage::WriteSuperblock() {
  std::vector<std::byte> sb(kSuperblockBytes);
  common::StoreLe<uint64_t>(sb, 0, kSuperMagic);
  common::StoreLe<uint64_t>(sb, 8, epoch_);
  common::StoreLe<uint64_t>(sb, 16, head_);
  common::StoreLe<uint32_t>(
      sb, 24, common::Crc32c(std::span<const std::byte>(sb.data(), 24)));
  // One cache line: the NVM persistence model makes this write atomic across a crash.
  return nvm_->WriteBytes(0, sb);
}

common::Status NvmStage::Format() {
  overlay_.clear();
  records_.clear();
  epoch_ = 1;
  seq_ = 0;
  head_ = tail_ = kSuperblockBytes;
  return WriteSuperblock();
}

common::Status NvmStage::ResetLog() {
  ++epoch_;
  seq_ = 0;  // Sequence numbers restart per epoch; recovery expects the first record at 1.
  head_ = tail_ = kSuperblockBytes;
  ++stats_.epoch_resets;
  return WriteSuperblock();
}

common::Status NvmStage::AppendRecord(uint32_t type, simdisk::Lba lba, uint64_t arg,
                                      std::span<const std::byte> payload) {
  const uint64_t total = RecordBytes(payload.size(), nvm_->cache_line_bytes());
  record_buf_.assign(total, std::byte{0});
  std::span<std::byte> rec(record_buf_);
  common::StoreLe<uint32_t>(rec, 0, kRecordMagic);
  common::StoreLe<uint32_t>(rec, 4, type);
  common::StoreLe<uint64_t>(rec, 8, epoch_);
  common::StoreLe<uint64_t>(rec, 16, seq_ + 1);
  common::StoreLe<uint64_t>(rec, 24, lba);
  common::StoreLe<uint64_t>(rec, 32, arg);
  common::StoreLe<uint32_t>(rec, 40, common::Crc32c(payload));
  common::StoreLe<uint32_t>(
      rec, 44, common::Crc32c(std::span<const std::byte>(rec.data(), 44)));
  if (!payload.empty()) {
    std::memcpy(record_buf_.data() + kHeaderBytes, payload.data(), payload.size());
  }
  RETURN_IF_ERROR(nvm_->WriteBytes(tail_, record_buf_));
  ++seq_;
  records_.push_back(LogRecord{seq_, lba,
                               type == kTypeData ? payload.size() / sector_bytes_ : 0, tail_,
                               total});
  tail_ += total;
  return common::OkStatus();
}

common::Status NvmStage::StagePut(simdisk::Lba lba, std::span<const std::byte> in) {
  const uint64_t sectors = in.size() / sector_bytes_;
  const uint64_t total = RecordBytes(in.size(), nvm_->cache_line_bytes());
  if (tail_ + total > nvm_->size_bytes()) {
    ++stats_.overflow_drains;
    RETURN_IF_ERROR(Drain());  // Resets the log; the record now fits from the start.
  }
  const uint64_t record_offset = tail_;
  RETURN_IF_ERROR(AppendRecord(kTypeData, lba, in.size(), in));
  for (uint64_t s = 0; s < sectors; ++s) {
    overlay_[lba + s] =
        OverlaySector{seq_, record_offset + kHeaderBytes + s * sector_bytes_};
  }
  ++stats_.staged_writes;
  stats_.staged_bytes += in.size();
  if (tracer_ != nullptr) {
    tracer_->Annotate(obs::EventType::kNvmStage, obs::Layer::kNvm, lba, sectors);
  }
  return common::OkStatus();
}

common::Status NvmStage::AppendInvalidate(simdisk::Lba lba, uint64_t sectors) {
  const uint64_t total = RecordBytes(0, nvm_->cache_line_bytes());
  if (tail_ + total > nvm_->size_bytes()) {
    // No room for even a tombstone: drain resets the log, leaving nothing to invalidate.
    ++stats_.overflow_drains;
    return Drain();
  }
  RETURN_IF_ERROR(AppendRecord(kTypeInvalidate, lba, sectors, {}));
  ++stats_.invalidates;
  if (tracer_ != nullptr) {
    tracer_->Annotate(obs::EventType::kNvmInvalidate, obs::Layer::kNvm, lba, sectors);
  }
  return common::OkStatus();
}

common::Status NvmStage::DestageSectors(
    const std::vector<std::pair<simdisk::Lba, uint64_t>>& live) {
  // Coalesce into contiguous-LBA runs; a run's payload is gathered from the NVM copies (one
  // charged read per contiguous NVM extent inside the run).
  std::vector<std::byte> run;
  size_t i = 0;
  while (i < live.size()) {
    size_t j = i + 1;
    while (j < live.size() && live[j].first == live[j - 1].first + 1) {
      ++j;
    }
    const uint64_t run_sectors = j - i;
    run.resize(run_sectors * sector_bytes_);
    size_t k = i;
    while (k < j) {
      size_t m = k + 1;
      while (m < j && live[m].second == live[m - 1].second + sector_bytes_) {
        ++m;
      }
      RETURN_IF_ERROR(nvm_->ReadBytes(
          live[k].second,
          std::span<std::byte>(run).subspan((k - i) * sector_bytes_,
                                            (m - k) * sector_bytes_)));
      k = m;
    }
    RETURN_IF_ERROR(backing_->Write(live[i].first, run));
    stats_.destaged_sectors += run_sectors;
    i = j;
  }
  return common::OkStatus();
}

common::Status NvmStage::ResolveConflicts(simdisk::Lba lba, uint64_t sectors) {
  std::vector<std::pair<simdisk::Lba, uint64_t>> hit;
  for (auto it = overlay_.lower_bound(lba); it != overlay_.end() && it->first < lba + sectors;
       ++it) {
    hit.emplace_back(it->first, it->second.offset);
  }
  if (hit.empty()) {
    return common::OkStatus();
  }
  // Invariant 3 (see header): destage + Flush + invalidate, in that order, before the caller
  // touches the backing device.
  RETURN_IF_ERROR(DestageSectors(hit));
  RETURN_IF_ERROR(backing_->Flush());
  RETURN_IF_ERROR(AppendInvalidate(lba, sectors));
  for (const auto& [sector, offset] : hit) {
    overlay_.erase(sector);
  }
  stats_.conflict_destages += hit.size();
  return common::OkStatus();
}

common::Status NvmStage::Write(simdisk::Lba lba, std::span<const std::byte> in) {
  RETURN_IF_ERROR(CheckRange(lba, in.size(), "NvmStage::Write"));
  const uint64_t sectors = in.size() / sector_bytes_;
  obs::SpanScope span(tracer_, obs::Layer::kNvm, lba, sectors, obs::SpanKind::kWrite);
  if (sectors <= config_.stage_threshold_sectors &&
      RecordBytes(in.size(), nvm_->cache_line_bytes()) + kSuperblockBytes <=
          nvm_->size_bytes()) {
    return StagePut(lba, in);
  }
  ++stats_.direct_writes;
  RETURN_IF_ERROR(ResolveConflicts(lba, sectors));
  return backing_->Write(lba, in);
}

common::Status NvmStage::Read(simdisk::Lba lba, std::span<std::byte> out) {
  RETURN_IF_ERROR(CheckRange(lba, out.size(), "NvmStage::Read"));
  const uint64_t sectors = out.size() / sector_bytes_;
  obs::SpanScope span(tracer_, obs::Layer::kNvm, lba, sectors, obs::SpanKind::kRead);
  std::vector<std::pair<simdisk::Lba, uint64_t>> hit;
  for (auto it = overlay_.lower_bound(lba); it != overlay_.end() && it->first < lba + sectors;
       ++it) {
    hit.emplace_back(it->first, it->second.offset);
  }
  if (hit.size() < sectors) {
    // Some sectors live on the backing device; read the whole range there and patch the
    // staged sectors over it (the backing copy of a staged sector may be stale).
    RETURN_IF_ERROR(backing_->Read(lba, out));
  }
  size_t i = 0;
  while (i < hit.size()) {
    // One charged NVM read per contiguous (sector, offset) run.
    size_t j = i + 1;
    while (j < hit.size() && hit[j].first == hit[j - 1].first + 1 &&
           hit[j].second == hit[j - 1].second + sector_bytes_) {
      ++j;
    }
    RETURN_IF_ERROR(nvm_->ReadBytes(
        hit[i].second, out.subspan((hit[i].first - lba) * sector_bytes_,
                                   (j - i) * sector_bytes_)));
    i = j;
  }
  stats_.read_hit_sectors += hit.size();
  return common::OkStatus();
}

common::StatusOr<uint64_t> NvmStage::DestageStep() {
  if (records_.empty()) {
    return uint64_t{0};
  }
  const uint64_t batch =
      std::min<uint64_t>(records_.size(), std::max<uint32_t>(1, config_.destage_batch_records));
  obs::SpanScope span(tracer_, obs::Layer::kNvm, head_, batch, obs::SpanKind::kOther);
  if (tracer_ != nullptr) {
    tracer_->Annotate(obs::EventType::kNvmDestageStart, obs::Layer::kNvm, records_.size(), 0);
  }
  // Live sectors owned by the batch's records, ascending by LBA for run coalescing.
  std::vector<std::pair<simdisk::Lba, uint64_t>> live;
  uint64_t min_seq_kept = 0;
  {
    uint64_t max_seq = 0;
    for (uint64_t r = 0; r < batch; ++r) {
      max_seq = std::max(max_seq, records_[r].seq);
    }
    min_seq_kept = max_seq;
  }
  for (uint64_t r = 0; r < batch; ++r) {
    const LogRecord& rec = records_[r];
    for (uint64_t s = 0; s < rec.sectors; ++s) {
      const auto it = overlay_.find(rec.lba + s);
      if (it != overlay_.end() && it->second.seq == rec.seq) {
        live.emplace_back(it->first, it->second.offset);
      }
    }
  }
  std::sort(live.begin(), live.end());
  uint64_t destaged_sectors = live.size();
  if (!live.empty()) {
    RETURN_IF_ERROR(DestageSectors(live));
    // The destaged bytes must be durable on the backing device before the head advance lets
    // the log forget them (invariant 2 in the header).
    RETURN_IF_ERROR(backing_->Flush());
    for (const auto& [sector, offset] : live) {
      overlay_.erase(sector);
    }
  }
  for (uint64_t r = 0; r < batch; ++r) {
    records_.pop_front();
  }
  head_ = records_.empty() ? tail_ : records_.front().offset;
  stats_.destaged_records += batch;
  ++stats_.destage_batches;
  if (records_.empty()) {
    RETURN_IF_ERROR(ResetLog());
  } else {
    RETURN_IF_ERROR(WriteSuperblock());
  }
  if (tracer_ != nullptr) {
    tracer_->Annotate(obs::EventType::kNvmDestageEnd, obs::Layer::kNvm, batch,
                      destaged_sectors);
  }
  (void)min_seq_kept;
  return batch;
}

common::Status NvmStage::Drain() {
  ++stats_.drains;
  while (!records_.empty()) {
    RETURN_IF_ERROR(DestageStep().status());
  }
  return common::OkStatus();
}

common::StatusOr<uint64_t> NvmStage::RunDestageBurst(common::Duration budget) {
  const common::Time deadline = clock()->Now() + budget;
  uint64_t retired = 0;
  while (!records_.empty() && clock()->Now() < deadline) {
    ASSIGN_OR_RETURN(const uint64_t n, DestageStep());
    retired += n;
  }
  return retired;
}

common::Status NvmStage::Trim(simdisk::Lba lba, uint64_t sectors) {
  if (vld_ == nullptr) {
    return common::FailedPrecondition("NvmStage::Trim: backing device is not a Vld");
  }
  obs::SpanScope span(tracer_, obs::Layer::kNvm, lba, sectors, obs::SpanKind::kOther);
  // Conservative: destage the staged copies before trimming, so an acknowledged staged write
  // is never left with its only durable copy invalidated while the trim is still in flight
  // across a crash. (A cheaper trim-tombstone record is possible future work.)
  RETURN_IF_ERROR(ResolveConflicts(lba, sectors));
  return vld_->Trim(lba, sectors);
}

common::Status NvmStage::WriteAtomic(std::span<const Vld::AtomicWrite> writes) {
  if (vld_ == nullptr) {
    return common::FailedPrecondition("NvmStage::WriteAtomic: backing device is not a Vld");
  }
  obs::SpanScope span(tracer_, obs::Layer::kNvm, writes.empty() ? 0 : writes.front().lba,
                      writes.size(), obs::SpanKind::kWrite);
  for (const Vld::AtomicWrite& w : writes) {
    RETURN_IF_ERROR(ResolveConflicts(w.lba, w.data.size() / sector_bytes_));
  }
  ++stats_.direct_writes;
  return vld_->WriteAtomic(writes);
}

common::StatusOr<uint64_t> NvmStage::SubmitWrite(simdisk::Lba lba,
                                                 std::span<const std::byte> in) {
  if (vld_ == nullptr) {
    return common::FailedPrecondition("NvmStage::SubmitWrite: backing device is not a Vld");
  }
  RETURN_IF_ERROR(ResolveConflicts(lba, in.size() / sector_bytes_));
  ++stats_.direct_writes;
  return vld_->SubmitWrite(lba, in);
}

common::StatusOr<uint64_t> NvmStage::SubmitRead(simdisk::Lba lba, uint64_t sectors) {
  if (vld_ == nullptr) {
    return common::FailedPrecondition("NvmStage::SubmitRead: backing device is not a Vld");
  }
  // Read-triggered destage: the queued read must observe staged data, and the queue serves
  // from the backing device only, so overlapping staged sectors are destaged (and durably
  // flushed) before the read is submitted.
  RETURN_IF_ERROR(ResolveConflicts(lba, sectors));
  return vld_->SubmitRead(lba, sectors);
}

common::StatusOr<std::vector<Vld::QueuedCompletion>> NvmStage::FlushQueue() {
  if (vld_ == nullptr) {
    return common::FailedPrecondition("NvmStage::FlushQueue: backing device is not a Vld");
  }
  return vld_->FlushQueue();
}

void NvmStage::RegisterTimelineProbes(obs::Timeline& timeline, const std::string& prefix) const {
  timeline.AddGauge(prefix + "staged_sectors", [this] { return overlay_.size(); });
  timeline.AddGauge(prefix + "log_bytes", [this] { return tail_ - head_; });
  timeline.AddGauge(prefix + "log_records", [this] { return records_.size(); });
  timeline.AddCounter(prefix + "staged_writes", [this] { return stats_.staged_writes; });
  timeline.AddCounter(prefix + "destage_batches", [this] { return stats_.destage_batches; });
  timeline.AddCounter(prefix + "destaged_sectors", [this] { return stats_.destaged_sectors; });
  timeline.AddCounter(prefix + "invalidates", [this] { return stats_.invalidates; });
  timeline.AddCounter(prefix + "drains", [this] { return stats_.drains; });
}

common::StatusOr<NvmStageRecoveryInfo> NvmStage::Recover() {
  overlay_.clear();
  records_.clear();
  NvmStageRecoveryInfo info;
  std::vector<std::byte> sb(kSuperblockBytes);
  RETURN_IF_ERROR(nvm_->ReadBytes(0, sb));
  const uint64_t magic = common::LoadLe<uint64_t>(sb, 0);
  const uint32_t sb_crc = common::LoadLe<uint32_t>(sb, 24);
  if (magic != kSuperMagic ||
      sb_crc != common::Crc32c(std::span<const std::byte>(sb.data(), 24))) {
    // Fresh (or unformatted) NVM: start an empty log. The superblock itself is one cache
    // line, so a crash can never leave it torn — an invalid superblock means never formatted.
    RETURN_IF_ERROR(Format());
    info.epoch = epoch_;
    return info;
  }
  epoch_ = common::LoadLe<uint64_t>(sb, 8);
  head_ = common::LoadLe<uint64_t>(sb, 16);
  tail_ = head_;
  seq_ = 0;
  const uint64_t size = nvm_->size_bytes();
  std::vector<std::byte> header(kHeaderBytes);
  std::vector<std::byte> payload;
  uint64_t off = head_;
  while (off + kHeaderBytes <= size) {
    RETURN_IF_ERROR(nvm_->ReadBytes(off, header));
    const uint32_t magic32 = common::LoadLe<uint32_t>(header, 0);
    const uint32_t type = common::LoadLe<uint32_t>(header, 4);
    const uint64_t rec_epoch = common::LoadLe<uint64_t>(header, 8);
    const uint64_t seq = common::LoadLe<uint64_t>(header, 16);
    const uint64_t lba = common::LoadLe<uint64_t>(header, 24);
    const uint64_t arg = common::LoadLe<uint64_t>(header, 32);
    const uint32_t payload_crc = common::LoadLe<uint32_t>(header, 40);
    const uint32_t header_crc = common::LoadLe<uint32_t>(header, 44);
    // The first live record may carry any sequence number (destage advances the head past
    // retired records); after it, sequence numbers must be strictly contiguous.
    if (magic32 != kRecordMagic || rec_epoch != epoch_ ||
        (off != head_ && seq != seq_ + 1) ||
        (type != kTypeData && type != kTypeInvalidate) ||
        header_crc != common::Crc32c(std::span<const std::byte>(header.data(), 44))) {
      break;  // End of the valid log (clean end, stale epoch, or a torn header).
    }
    if (type == kTypeData) {
      if (arg == 0 || arg % sector_bytes_ != 0 ||
          RecordBytes(arg, nvm_->cache_line_bytes()) > size - off ||
          lba + arg / sector_bytes_ > backing_->SectorCount()) {
        break;
      }
      payload.resize(arg);
      RETURN_IF_ERROR(nvm_->ReadBytes(off + kHeaderBytes, payload));
      if (payload_crc != common::Crc32c(payload)) {
        // A valid header with a damaged payload: the append tore mid-payload. Drop it (and
        // everything after — appends are strictly ordered).
        info.torn_tail_dropped = true;
        break;
      }
      const uint64_t sectors = arg / sector_bytes_;
      const uint64_t total = RecordBytes(arg, nvm_->cache_line_bytes());
      seq_ = seq;
      records_.push_back(LogRecord{seq_, lba, sectors, off, total});
      for (uint64_t s = 0; s < sectors; ++s) {
        overlay_[lba + s] = OverlaySector{seq_, off + kHeaderBytes + s * sector_bytes_};
      }
      ++info.data_records;
      off += total;
    } else {
      if (lba + arg > backing_->SectorCount() || payload_crc != 0) {
        break;
      }
      const uint64_t total = RecordBytes(0, nvm_->cache_line_bytes());
      seq_ = seq;
      records_.push_back(LogRecord{seq_, lba, 0, off, total});
      overlay_.erase(overlay_.lower_bound(lba), overlay_.lower_bound(lba + arg));
      ++info.invalidate_records;
      off += total;
    }
  }
  tail_ = off;
  info.staged_sectors = overlay_.size();
  info.log_bytes = tail_ - head_;
  info.epoch = epoch_;
  return info;
}

}  // namespace vlog::core
