// Eager-writing block allocation: pick the free physical block that the head can reach soonest.
//
// Two modes, mirroring §2.2/§2.3 and §4.2 of the paper:
//  - Greedy: nearest free block in the current track, else the best candidate in the current
//    cylinder (paying a head switch), else a cylinder seek — always in one sweep direction,
//    wrapping at the last cylinder, so the head is never trapped in a full region.
//  - Fill-to-threshold (used when the compactor runs): write into an initially-empty track until
//    only `track_switch_threshold` of its blocks remain free, then move to the next empty track;
//    fall back to greedy when no empty tracks remain.
#ifndef SRC_CORE_EAGER_ALLOCATOR_H_
#define SRC_CORE_EAGER_ALLOCATOR_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "src/core/free_space.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::core {

struct AllocatorConfig {
  bool fill_to_threshold = false;
  // Fraction of a track's blocks kept free before switching tracks (the paper reserves 25%,
  // i.e. fills tracks to 75%).
  double track_switch_threshold = 0.25;
};

struct AllocatorStats {
  uint64_t allocations = 0;
  uint64_t same_track = 0;       // Satisfied from the current track.
  uint64_t same_cylinder = 0;    // Needed a head switch within the cylinder.
  uint64_t cylinder_seeks = 0;   // Needed an arm move.
  uint64_t fill_track_switches = 0;
  uint64_t greedy_fallbacks = 0;  // Fill mode ran out of empty tracks.
  common::Duration estimated_locate = 0;  // Sum of predicted positioning costs.
};

class EagerAllocator {
 public:
  EagerAllocator(simdisk::SimDisk* disk, FreeSpaceMap* space, AllocatorConfig config);

  // Chooses and marks live a free physical block near the head. Returns nullopt when the disk
  // is completely full.
  std::optional<uint32_t> Allocate();

  void Free(uint32_t block) { space_->Free(block); }

  // Compactor integration: supply a newly emptied track / exclude the current victim.
  void NoteEmptyTrack(uint64_t track);
  void SetExcludedTrack(std::optional<uint64_t> track) { excluded_track_ = track; }
  // Hole-plugging mode for compaction output: allocate into the fullest non-empty track so
  // victims drain into existing holes instead of consuming the empty tracks being produced.
  void SetCompactionMode(bool on) { compaction_mode_ = on; }

  const AllocatorConfig& config() const { return config_; }
  void set_fill_to_threshold(bool on) { config_.fill_to_threshold = on; }
  const AllocatorStats& stats() const { return stats_; }
  FreeSpaceMap& space() { return *space_; }

 private:
  struct Candidate {
    uint32_t block = 0;
    common::Duration cost = 0;
  };

  // Best candidate in `track` reachable after `arm_move` of arm repositioning time.
  std::optional<Candidate> BestInTrack(uint64_t track, common::Duration arm_move) const;
  std::optional<Candidate> GreedyPick();
  std::optional<Candidate> FillPick();
  std::optional<Candidate> HolePlugPick();
  // Next empty track for fill mode: queued empties first, then a sweep scan.
  std::optional<uint64_t> NextEmptyTrack();

  uint32_t ReservedPerTrack() const;

  simdisk::SimDisk* disk_;
  FreeSpaceMap* space_;
  AllocatorConfig config_;
  AllocatorStats stats_;
  std::deque<uint64_t> empty_tracks_;
  std::optional<uint64_t> fill_track_;
  std::optional<uint64_t> excluded_track_;
  bool compaction_mode_ = false;
  uint64_t scan_cursor_ = 0;  // Sweep position for empty-track scans (track index).
};

}  // namespace vlog::core

#endif  // SRC_CORE_EAGER_ALLOCATOR_H_
