#include "src/core/map_sector.h"

#include <algorithm>

#include "src/common/bytes.h"
#include "src/common/crc32.h"

namespace vlog::core {
namespace {

// Fixed layout offsets.
constexpr size_t kOffMagic = 0;
constexpr size_t kOffSeq = 8;
constexpr size_t kOffPiece = 16;
constexpr size_t kOffEntryCount = 20;
constexpr size_t kOffTxnId = 24;
constexpr size_t kOffTxnIndex = 32;
constexpr size_t kOffTxnTotal = 34;
constexpr size_t kOffPrevLba = 36;
constexpr size_t kOffPrevSeq = 44;
constexpr size_t kOffBypassLba = 52;
constexpr size_t kOffBypassSeq = 60;
constexpr size_t kOffEntries = 68;
constexpr size_t kOffCrc = kMapSectorBytes - 4;

static_assert(kOffEntries + kEntriesPerSector * 4 <= kOffCrc,
              "map sector entries must fit before the CRC");

// Folds the 64-bit format epoch into a CRC-32C seed.
uint32_t EpochSeed(uint64_t epoch) {
  return static_cast<uint32_t>(epoch) ^ static_cast<uint32_t>(epoch >> 32);
}

}  // namespace

std::vector<std::byte> MapSector::Serialize(uint64_t epoch) const {
  std::vector<std::byte> raw(kMapSectorBytes);
  SerializeInto(raw, epoch);
  return raw;
}

void MapSector::SerializeInto(std::span<std::byte> out, uint64_t epoch) const {
  out = out.first(kMapSectorBytes);
  std::fill(out.begin(), out.end(), std::byte{0});
  common::StoreLe<uint64_t>(out, kOffMagic, kMapSectorMagic);
  common::StoreLe<uint64_t>(out, kOffSeq, seq);
  common::StoreLe<uint32_t>(out, kOffPiece, piece);
  common::StoreLe<uint32_t>(out, kOffEntryCount, static_cast<uint32_t>(entries.size()));
  common::StoreLe<uint64_t>(out, kOffTxnId, txn_id);
  common::StoreLe<uint16_t>(out, kOffTxnIndex, txn_index);
  common::StoreLe<uint16_t>(out, kOffTxnTotal, txn_total);
  common::StoreLe<uint64_t>(out, kOffPrevLba, prev.lba);
  common::StoreLe<uint64_t>(out, kOffPrevSeq, prev.seq);
  common::StoreLe<uint64_t>(out, kOffBypassLba, bypass.lba);
  common::StoreLe<uint64_t>(out, kOffBypassSeq, bypass.seq);
  for (size_t i = 0; i < entries.size() && i < kEntriesPerSector; ++i) {
    common::StoreLe<uint32_t>(out, kOffEntries + i * 4, entries[i]);
  }
  const uint32_t crc = common::Crc32c(
      std::span<const std::byte>(out.data(), kOffCrc), EpochSeed(epoch));
  common::StoreLe<uint32_t>(out, kOffCrc, crc);
}

common::StatusOr<MapSector> MapSector::Parse(std::span<const std::byte> raw, uint64_t epoch) {
  if (raw.size() < kMapSectorBytes) {
    return common::InvalidArgument("map sector: short buffer");
  }
  raw = raw.first(kMapSectorBytes);
  if (common::LoadLe<uint64_t>(raw, kOffMagic) != kMapSectorMagic) {
    return common::Corruption("map sector: bad magic");
  }
  const uint32_t stored_crc = common::LoadLe<uint32_t>(raw, kOffCrc);
  if (common::Crc32c(raw.first(kOffCrc), EpochSeed(epoch)) != stored_crc) {
    return common::Corruption("map sector: bad CRC");
  }
  MapSector s;
  s.seq = common::LoadLe<uint64_t>(raw, kOffSeq);
  s.piece = common::LoadLe<uint32_t>(raw, kOffPiece);
  const uint32_t count = common::LoadLe<uint32_t>(raw, kOffEntryCount);
  if (count > kEntriesPerSector) {
    return common::Corruption("map sector: entry count out of range");
  }
  s.txn_id = common::LoadLe<uint64_t>(raw, kOffTxnId);
  s.txn_index = common::LoadLe<uint16_t>(raw, kOffTxnIndex);
  s.txn_total = common::LoadLe<uint16_t>(raw, kOffTxnTotal);
  s.prev.lba = common::LoadLe<uint64_t>(raw, kOffPrevLba);
  s.prev.seq = common::LoadLe<uint64_t>(raw, kOffPrevSeq);
  s.bypass.lba = common::LoadLe<uint64_t>(raw, kOffBypassLba);
  s.bypass.seq = common::LoadLe<uint64_t>(raw, kOffBypassSeq);
  s.entries.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    s.entries[i] = common::LoadLe<uint32_t>(raw, kOffEntries + i * 4);
  }
  return s;
}

}  // namespace vlog::core
