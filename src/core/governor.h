// Duty-cycled compaction governor: feedback pacing of background compaction under a p99 SLO.
//
// The idle-time compactor (§4.2) assumes idle windows exist. Under continuous open-loop
// traffic they mostly don't, so background work must be *paced* against the foreground: run
// too little and eager writing starves for empty tracks (the free-space death spiral the
// paper predicts at high utilization), run too much and compaction I/O blows the foreground
// tail latency. The governor converts observed pressure into a compaction duty cycle:
//
//   inputs    free-space gauges read straight from the VLD (empty tracks vs the allocator's
//             fill target, pinned map sectors awaiting a checkpoint) and the windowed p99 of
//             a foreground latency histogram on an obs::Timeline.
//   control   AIMD on the duty cycle: each closed timeline window whose p99 exceeds the
//             budget multiplies the duty by `backoff`; each clean window adds `ramp`.
//   actuation between foreground batches the driver asks for a grant; elapsed simulated time
//             accrues credit at the current duty (capped at `max_burst`, so bursts stay
//             short enough to preempt), and a grant spends the credit via
//             Vld::RunGovernedBurst — a preemptible, mid-track-resumable compactor run.
//   troughs   when the driver knows the device is idle until the next arrival (an open-loop
//             arrival gap), the whole gap is granted free of charge — idle time is exactly
//             when the paper's compactor runs, so troughs are where the governor ramps
//             hardest.
//   pressure  below `low_water_tracks` empty tracks the governor grants even during a
//             violating window: a bounded latency breach beats allocator starvation.
#ifndef SRC_CORE_GOVERNOR_H_
#define SRC_CORE_GOVERNOR_H_

#include <cstdint>
#include <string>

#include "src/common/time.h"
#include "src/core/vld.h"
#include "src/obs/timeline.h"

namespace vlog::core {

struct GovernorConfig {
  // Per-window p99 budget on `latency_hist`; 0 means unlimited (latency never throttles
  // compaction — the setting the governor-vs-idle differential test uses).
  common::Duration slo_budget = 0;
  std::string latency_hist = "latency";  // Timeline histogram the per-window p99 is read from.
  // Empty-track fill target; 0 inherits the VLD's own target so the governor stops granting
  // exactly where RunIdle's compactor would stop compacting.
  uint32_t target_empty_tracks = 0;
  uint32_t low_water_tracks = 2;  // Below this, grants override SLO backoff.
  double initial_duty = 0.10;
  double min_duty = 0.02;
  double max_duty = 0.50;
  double ramp = 0.04;     // Additive duty increase per clean window.
  double backoff = 0.5;   // Multiplicative duty decrease per violating window.
  common::Duration max_burst = common::Milliseconds(25);  // Credit cap == burst length cap.
  common::Duration min_burst = common::Milliseconds(1);   // Grants below this wait for credit.
};

struct GovernorStats {
  uint64_t decisions = 0;           // Grant() calls.
  uint64_t bursts = 0;              // Nonzero grants.
  uint64_t idle_grants = 0;         // Grants issued inside declared arrival troughs.
  uint64_t backoffs = 0;            // Violating windows consumed (duty cut).
  uint64_t ramps = 0;               // Clean windows consumed (duty raised).
  uint64_t pressure_overrides = 0;  // Grants forced by the low-water pressure floor.
  uint64_t granted_ns = 0;          // Total budget granted.
};

class CompactionGovernor {
 public:
  // `timeline` may be null: without one there is no latency feedback, so the duty stays at
  // `initial_duty` and only the free-space inputs gate grants (the crashsim scenario runs
  // this way). The timeline is only read (windows closed by the driver's own Polls); the
  // governor never polls or advances anything.
  CompactionGovernor(Vld* vld, const obs::Timeline* timeline, GovernorConfig config);

  // Decides how much compaction to run right now and returns the granted budget without
  // running it (callers that must route the burst themselves, e.g. through a crashsim shadow
  // device, use this then call RunGovernedBurst on their own handle). `idle_hint > 0`
  // declares a known device-idle gap until the next arrival.
  common::Duration Grant(common::Duration idle_hint = 0);

  // Grant() + Vld::RunGovernedBurst of the result. Returns the granted budget.
  common::Duration RunBurst(common::Duration idle_hint = 0);

  double duty() const { return duty_; }
  const GovernorStats& stats() const { return stats_; }

  // Registers the governor's decision series under `prefix`: counters gov.decisions,
  // gov.bursts, gov.idle_grants, gov.backoffs, gov.ramps, gov.pressure_overrides,
  // gov.granted_ns and gauges gov.duty_ppm, gov.credit_ns. Pure reads; the governor must
  // outlive the timeline's last Poll. Registering on the same timeline the governor watches
  // is fine (sampling reads no histogram).
  void RegisterTimelineProbes(obs::Timeline& timeline, const std::string& prefix) const;

 private:
  // Applies AIMD for every timeline window closed since the last call.
  void ConsumeWindows();
  // Compaction (or a pinned-sector checkpoint) is still worth granting time for.
  bool NeedsWork() const;

  Vld* vld_;
  const obs::Timeline* timeline_;
  GovernorConfig config_;
  double duty_;
  common::Duration credit_ = 0;
  common::Time last_now_ = 0;
  bool clock_seen_ = false;          // last_now_ is valid (first Grant only accrues from then).
  size_t windows_consumed_ = 0;      // Timeline windows already folded into the duty.
  bool last_window_violating_ = false;
  int hist_index_ = -1;
  GovernorStats stats_;
};

}  // namespace vlog::core

#endif  // SRC_CORE_GOVERNOR_H_
