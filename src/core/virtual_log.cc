#include "src/core/virtual_log.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <set>
#include <unordered_set>

#include "src/common/bytes.h"
#include "src/common/crc32.h"

namespace vlog::core {
namespace {

constexpr uint64_t kParkMagic = 0x564c4f475041524bULL;  // "VLOGPARK"
constexpr uint64_t kCkptMagic = 0x564c4f47434b5054ULL;  // "VLOGCKPT"
constexpr uint32_t kSectorBytes = kMapSectorBytes;

// The park record and the checkpoint headers carry the format epoch in the clear (their own
// CRCs use the default seed): they are how recovery learns which generation's map-sector CRC
// seed to use. `parked` distinguishes a real power-down park (trust the tail) from a cleared
// record (scan) — a cleared record still names the epoch, which a zeroed sector could not.
struct ParkRecord {
  DiskPtr tail;
  uint64_t checkpoint_seq = 0;
  uint64_t next_seq = 1;
  uint64_t epoch = 0;
  bool parked = false;
};

std::vector<std::byte> SerializePark(const ParkRecord& rec) {
  std::vector<std::byte> raw(kSectorBytes);
  std::span<std::byte> out(raw);
  common::StoreLe<uint64_t>(out, 0, kParkMagic);
  common::StoreLe<uint64_t>(out, 8, rec.tail.lba);
  common::StoreLe<uint64_t>(out, 16, rec.tail.seq);
  common::StoreLe<uint64_t>(out, 24, rec.checkpoint_seq);
  common::StoreLe<uint64_t>(out, 32, rec.next_seq);
  common::StoreLe<uint64_t>(out, 40, rec.epoch);
  common::StoreLe<uint32_t>(out, 48, rec.parked ? 1 : 0);
  common::StoreLe<uint32_t>(
      out, kSectorBytes - 4,
      common::Crc32c(std::span<const std::byte>(raw).first(kSectorBytes - 4)));
  return raw;
}

std::optional<ParkRecord> ParsePark(std::span<const std::byte> raw) {
  if (common::LoadLe<uint64_t>(raw, 0) != kParkMagic) {
    return std::nullopt;
  }
  if (common::LoadLe<uint32_t>(raw, kSectorBytes - 4) !=
      common::Crc32c(raw.first(kSectorBytes - 4))) {
    return std::nullopt;
  }
  ParkRecord rec;
  rec.tail.lba = common::LoadLe<uint64_t>(raw, 8);
  rec.tail.seq = common::LoadLe<uint64_t>(raw, 16);
  rec.checkpoint_seq = common::LoadLe<uint64_t>(raw, 24);
  rec.next_seq = common::LoadLe<uint64_t>(raw, 32);
  rec.epoch = common::LoadLe<uint64_t>(raw, 40);
  rec.parked = common::LoadLe<uint32_t>(raw, 48) != 0;
  return rec;
}

std::vector<std::byte> SerializeCkptHeader(uint64_t seq, uint32_t pieces, uint64_t epoch) {
  std::vector<std::byte> raw(kSectorBytes);
  std::span<std::byte> out(raw);
  common::StoreLe<uint64_t>(out, 0, kCkptMagic);
  common::StoreLe<uint64_t>(out, 8, seq);
  common::StoreLe<uint32_t>(out, 16, pieces);
  common::StoreLe<uint64_t>(out, 20, epoch);
  common::StoreLe<uint32_t>(
      out, kSectorBytes - 4,
      common::Crc32c(std::span<const std::byte>(raw).first(kSectorBytes - 4)));
  return raw;
}

struct CkptHeader {
  uint64_t seq = 0;
  uint32_t pieces = 0;
  uint64_t epoch = 0;
};

std::optional<CkptHeader> ParseCkptHeader(std::span<const std::byte> raw) {
  if (common::LoadLe<uint64_t>(raw, 0) != kCkptMagic) {
    return std::nullopt;
  }
  if (common::LoadLe<uint32_t>(raw, kSectorBytes - 4) !=
      common::Crc32c(raw.first(kSectorBytes - 4))) {
    return std::nullopt;
  }
  return CkptHeader{common::LoadLe<uint64_t>(raw, 8), common::LoadLe<uint32_t>(raw, 16),
                    common::LoadLe<uint64_t>(raw, 20)};
}

}  // namespace

VirtualLog::VirtualLog(simdisk::SimDisk* disk, EagerAllocator* allocator, VirtualLogConfig config)
    : disk_(disk), allocator_(allocator), config_(config) {
  piece_state_.resize(config_.pieces);
}

common::StatusOr<uint64_t> VirtualLog::EpochFromCheckpointHeaders() {
  uint64_t epoch = 0;
  std::vector<std::byte> raw(kSectorBytes);
  for (uint32_t slot = 0; slot < 2; ++slot) {
    RETURN_IF_ERROR(disk_->InternalRead(CkptSlotLba(slot), raw));
    if (const auto header = ParseCkptHeader(raw)) {
      epoch = std::max(epoch, header->epoch);
    }
  }
  return epoch;
}

common::Status VirtualLog::Format() {
  // Bump the format epoch past any generation this media has seen: the park record is the
  // primary carrier, the checkpoint headers the fallback (at most one of the three sectors can
  // be lost to a single crashed write, so the previous epoch is always recoverable here).
  uint64_t prev_epoch = 0;
  {
    std::vector<std::byte> raw(kSectorBytes);
    RETURN_IF_ERROR(disk_->InternalRead(config_.park_lba, raw));
    if (const auto park = ParsePark(raw)) {
      prev_epoch = park->epoch;
    } else {
      ASSIGN_OR_RETURN(prev_epoch, EpochFromCheckpointHeaders());
    }
  }
  epoch_ = prev_epoch + 1;
  next_seq_ = 1;
  checkpoint_seq_ = 0;
  next_ckpt_slot_ = 0;
  piece_state_.assign(config_.pieces, PieceState{});
  ChainClear();
  block_sector_count_.clear();
  cover_of_.clear();
  carrier_load_.clear();
  pinned_.clear();
  chain_.reserve(config_.pieces * 2);
  cover_of_.reserve(config_.pieces * 2);
  carrier_load_.reserve(config_.pieces * 2);
  // Stamp both checkpoint slots with the new epoch and seq 0 ("no checkpoint"): this both
  // invalidates any stale checkpoint from a previous life of the media (a scan would otherwise
  // trust an old map over the new log) and makes the new epoch recoverable even if a later
  // crash damages the park sector before the first checkpoint completes.
  RETURN_IF_ERROR(disk_->InternalWrite(CkptSlotLba(0),
                                       SerializeCkptHeader(/*seq=*/0, config_.pieces, epoch_)));
  RETURN_IF_ERROR(disk_->InternalWrite(CkptSlotLba(1),
                                       SerializeCkptHeader(/*seq=*/0, config_.pieces, epoch_)));
  return WritePark(/*clear=*/true);
}

DiskPtr VirtualLog::ChainHead() const {
  if (chain_newest_ == 0) {
    return DiskPtr{};
  }
  return DiskPtr{chain_.at(chain_newest_).lba, chain_newest_};
}

DiskPtr VirtualLog::ChainSuccessorOf(uint64_t seq) const {
  const auto it = chain_.find(seq);
  assert(it != chain_.end());
  const uint64_t older = it->second.older;
  if (older == 0) {
    return DiskPtr{};
  }
  return DiskPtr{chain_.at(older).lba, older};
}

void VirtualLog::ChainPushNewest(uint64_t seq, uint32_t piece, simdisk::Lba lba) {
  assert(seq > chain_newest_);
  chain_.emplace(seq, ChainNode{piece, lba, chain_newest_, 0});
  if (chain_newest_ != 0) {
    chain_.at(chain_newest_).newer = seq;
  } else {
    chain_oldest_ = seq;
  }
  chain_newest_ = seq;
}

void VirtualLog::ChainPushOldest(uint64_t seq, uint32_t piece, simdisk::Lba lba) {
  assert(chain_oldest_ == 0 || seq < chain_oldest_);
  chain_.emplace(seq, ChainNode{piece, lba, 0, chain_oldest_});
  if (chain_oldest_ != 0) {
    chain_.at(chain_oldest_).older = seq;
  } else {
    chain_newest_ = seq;
  }
  chain_oldest_ = seq;
}

void VirtualLog::ChainErase(uint64_t seq) {
  const auto it = chain_.find(seq);
  if (it == chain_.end()) {
    return;
  }
  const ChainNode node = it->second;
  chain_.erase(it);
  if (node.older != 0) {
    chain_.at(node.older).newer = node.newer;
  } else {
    chain_oldest_ = node.newer;
  }
  if (node.newer != 0) {
    chain_.at(node.newer).older = node.older;
  } else {
    chain_newest_ = node.older;
  }
}

void VirtualLog::ChainClear() {
  chain_.clear();
  chain_oldest_ = 0;
  chain_newest_ = 0;
}

void VirtualLog::FreeLogBlock(uint32_t block) {
  allocator_->Free(block);
  ++stats_.recycled_blocks;
}

void VirtualLog::NoteSectorInBlock(uint32_t block) { ++block_sector_count_[block]; }

void VirtualLog::ReleaseSectorInBlock(uint32_t block) {
  const auto it = block_sector_count_.find(block);
  assert(it != block_sector_count_.end() && it->second > 0);
  if (--it->second > 0) {
    return;  // A packed sibling (live or pinned) still occupies the block.
  }
  block_sector_count_.erase(it);
  FreeLogBlock(block);
}

void VirtualLog::SetCover(uint64_t target_seq, uint64_t carrier_seq) {
  DropCover(target_seq);
  cover_of_[target_seq] = carrier_seq;
  ++carrier_load_[carrier_seq];
}

void VirtualLog::DropCover(uint64_t target_seq) {
  const auto it = cover_of_.find(target_seq);
  if (it == cover_of_.end()) {
    return;
  }
  const uint64_t carrier = it->second;
  cover_of_.erase(it);
  DecrementLoad(carrier);
}

void VirtualLog::DecrementLoad(uint64_t carrier_seq) {
  const auto it = carrier_load_.find(carrier_seq);
  assert(it != carrier_load_.end() && it->second > 0);
  if (--it->second > 0) {
    return;
  }
  carrier_load_.erase(it);
  // An unloaded pinned sector has served its purpose: recycle it (possibly cascading).
  const auto pin = pinned_.find(carrier_seq);
  if (pin != pinned_.end()) {
    const uint32_t block = pin->second;
    pinned_.erase(pin);
    DropCover(carrier_seq);
    ReleaseSectorInBlock(block);
  }
}

void VirtualLog::RemoveObsolete(uint32_t block, uint64_t seq) {
  ChainErase(seq);
  if (carrier_load_.contains(seq)) {
    // Still the designated cover of a younger removal's bypass target: keep the sector readable
    // until every dependent has been re-covered or removed. Its block refcount is kept too.
    pinned_.emplace(seq, block);
    stats_.pinned_peak = std::max<uint64_t>(stats_.pinned_peak, pinned_.size());
  } else {
    DropCover(seq);
    ReleaseSectorInBlock(block);
  }
}

common::Status VirtualLog::AppendOne(uint32_t piece, const std::vector<uint32_t>& entries,
                                     uint64_t txn_id, uint16_t txn_index, uint16_t txn_total,
                                     std::vector<DeferredFree>* deferred_frees) {
  if (piece >= config_.pieces) {
    return common::InvalidArgument("AppendPiece: piece out of range");
  }
  MapSector sector;
  sector.seq = next_seq_;
  sector.piece = piece;
  sector.entries = entries;
  sector.txn_id = txn_id;
  sector.txn_index = txn_index;
  sector.txn_total = txn_total;
  const DiskPtr head = ChainHead();
  sector.prev = head;
  const PieceState old = piece_state_[piece];
  const bool old_live = !old.loc.IsNull() && !old.in_checkpoint;
  if (old_live) {
    sector.bypass = ChainSuccessorOf(old.loc.seq);
  }

  const auto block = allocator_->Allocate();
  if (!block) {
    return common::OutOfSpace("virtual log: no free block for map sector");
  }
  const simdisk::Lba lba = allocator_->space().BlockToLba(*block);
  append_scratch_.resize(kMapSectorBytes);
  sector.SerializeInto(append_scratch_, epoch_);
  RETURN_IF_ERROR(disk_->InternalWrite(lba, append_scratch_));
  if (obs::TraceRecorder* tracer = disk_->tracer(); tracer != nullptr) {
    tracer->Annotate(obs::EventType::kMapAppend, obs::Layer::kVlog, piece, lba);
  }

  // Designated covers: the new sector's prev edge covers the old head (even when the head is
  // the sector being obsoleted — if it ends up pinned, this edge is what keeps it reachable)
  // and its bypass edge covers the obsoleted sector's chain successor.
  if (!head.IsNull()) {
    SetCover(head.seq, sector.seq);
  }
  if (!sector.bypass.IsNull()) {
    SetCover(sector.bypass.seq, sector.seq);
  }

  if (old_live) {
    const uint32_t old_block = allocator_->space().LbaToBlock(old.loc.lba);
    if (deferred_frees != nullptr) {
      deferred_frees->push_back(DeferredFree{old_block, old.loc.seq});
    } else {
      RemoveObsolete(old_block, old.loc.seq);
    }
  }
  ChainPushNewest(sector.seq, piece, lba);
  NoteSectorInBlock(*block);
  piece_state_[piece] = PieceState{DiskPtr{lba, sector.seq}, false};
  ++next_seq_;
  ++stats_.appends;
  return common::OkStatus();
}

common::Status VirtualLog::MaybeAutoCheckpoint() {
  if (pinned_.size() <= config_.pinned_limit || !entries_provider_) {
    return common::OkStatus();
  }
  std::vector<std::vector<uint32_t>> entries(config_.pieces);
  for (uint32_t k = 0; k < config_.pieces; ++k) {
    entries[k] = entries_provider_(k);
  }
  ++stats_.auto_checkpoints;
  return WriteCheckpoint(entries);
}

common::Status VirtualLog::Barrier() {
  if (!config_.barriers) {
    return common::OkStatus();
  }
  return disk_->Flush();
}

common::Status VirtualLog::AppendPiece(uint32_t piece, const std::vector<uint32_t>& entries) {
  RETURN_IF_ERROR(MaybeAutoCheckpoint());
  // Pre-barrier: the data blocks this map sector will point at must be on media before the
  // sector can land (a reordered destage would otherwise commit a mapping to lost data).
  // Post-barrier: the commit is durable before the host write is acknowledged.
  RETURN_IF_ERROR(Barrier());
  RETURN_IF_ERROR(AppendOne(piece, entries, /*txn_id=*/0, /*txn_index=*/0, /*txn_total=*/1,
                            /*deferred_frees=*/nullptr));
  return Barrier();
}

common::Status VirtualLog::AppendTransaction(const std::vector<PieceUpdate>& updates) {
  if (updates.empty()) {
    return common::OkStatus();
  }
  if (updates.size() == 1) {
    return AppendPiece(updates[0].piece, updates[0].entries);
  }
  RETURN_IF_ERROR(MaybeAutoCheckpoint());
  // One barrier pair brackets the whole transaction: its sectors may destage in any order (an
  // incomplete set rolls back wholesale at recovery), but none may precede its data blocks and
  // the commit must be durable before acknowledgement.
  RETURN_IF_ERROR(Barrier());
  // The first sector's sequence number doubles as a never-reused transaction id.
  const uint64_t txn_id = next_seq_;
  std::vector<DeferredFree> deferred;
  for (size_t i = 0; i < updates.size(); ++i) {
    RETURN_IF_ERROR(AppendOne(updates[i].piece, updates[i].entries, txn_id,
                              static_cast<uint16_t>(i), static_cast<uint16_t>(updates.size()),
                              &deferred));
  }
  RETURN_IF_ERROR(Barrier());
  // Commit point passed: the obsoleted sectors are no longer needed for rollback.
  for (const DeferredFree& d : deferred) {
    RemoveObsolete(d.block, d.seq);
  }
  return common::OkStatus();
}

common::Status VirtualLog::AppendTransactionPacked(const std::vector<PieceUpdate>& updates) {
  if (updates.empty()) {
    return common::OkStatus();
  }
  if (updates.size() == 1) {
    return AppendPiece(updates[0].piece, updates[0].entries);
  }
  {
    std::unordered_set<uint32_t> seen;
    for (const PieceUpdate& u : updates) {
      if (u.piece >= config_.pieces) {
        return common::InvalidArgument("AppendTransactionPacked: piece out of range");
      }
      if (!seen.insert(u.piece).second) {
        return common::InvalidArgument(
            "AppendTransactionPacked: duplicate piece (merge entries first)");
      }
    }
  }
  RETURN_IF_ERROR(MaybeAutoCheckpoint());

  // Allocate every block up front so an out-of-space failure rolls back cleanly before any
  // chain state has changed.
  const uint32_t per_block = config_.block_sectors;
  const size_t blocks_needed = (updates.size() + per_block - 1) / per_block;
  std::vector<uint32_t> blocks;
  blocks.reserve(blocks_needed);
  for (size_t b = 0; b < blocks_needed; ++b) {
    const auto block = allocator_->Allocate();
    if (!block) {
      for (const uint32_t rollback : blocks) {
        allocator_->Free(rollback);
      }
      return common::OutOfSpace("virtual log: no free block for packed map sectors");
    }
    blocks.push_back(*block);
  }

  const uint64_t txn_id = next_seq_;
  std::vector<DeferredFree> deferred;
  std::vector<std::vector<std::byte>> buffers(
      blocks_needed, std::vector<std::byte>(static_cast<size_t>(per_block) * kSectorBytes));
  for (size_t i = 0; i < updates.size(); ++i) {
    const uint32_t piece = updates[i].piece;
    MapSector sector;
    sector.seq = next_seq_;
    sector.piece = piece;
    sector.entries = updates[i].entries;
    sector.txn_id = txn_id;
    sector.txn_index = static_cast<uint16_t>(i);
    sector.txn_total = static_cast<uint16_t>(updates.size());
    const DiskPtr head = ChainHead();
    sector.prev = head;
    const PieceState old = piece_state_[piece];
    const bool old_live = !old.loc.IsNull() && !old.in_checkpoint;
    if (old_live) {
      sector.bypass = ChainSuccessorOf(old.loc.seq);
    }
    const uint32_t block = blocks[i / per_block];
    const simdisk::Lba lba =
        allocator_->space().BlockToLba(block) + static_cast<simdisk::Lba>(i % per_block);
    sector.SerializeInto(
        std::span<std::byte>(buffers[i / per_block])
            .subspan(static_cast<size_t>(i % per_block) * kSectorBytes, kSectorBytes),
        epoch_);
    if (!head.IsNull()) {
      SetCover(head.seq, sector.seq);
    }
    if (!sector.bypass.IsNull()) {
      SetCover(sector.bypass.seq, sector.seq);
    }
    if (old_live) {
      deferred.push_back(
          DeferredFree{allocator_->space().LbaToBlock(old.loc.lba), old.loc.seq});
    }
    ChainPushNewest(sector.seq, piece, lba);
    NoteSectorInBlock(block);
    piece_state_[piece] = PieceState{DiskPtr{lba, sector.seq}, false};
    ++next_seq_;
    ++stats_.appends;
  }
  // One media write per packed block. A crash tearing any of these leaves an incomplete
  // transaction whose surviving sectors recovery discards wholesale (all-or-nothing). The
  // barrier pair orders the group's data blocks before its map sectors and makes the commit
  // durable before any of the batched requests is acknowledged.
  RETURN_IF_ERROR(Barrier());
  for (size_t b = 0; b < blocks_needed; ++b) {
    const simdisk::Lba block_lba = allocator_->space().BlockToLba(blocks[b]);
    RETURN_IF_ERROR(disk_->InternalWrite(block_lba, buffers[b]));
    if (obs::TraceRecorder* tracer = disk_->tracer(); tracer != nullptr) {
      const size_t in_block =
          std::min<size_t>(per_block, updates.size() - b * static_cast<size_t>(per_block));
      tracer->Annotate(obs::EventType::kMapAppend, obs::Layer::kVlog, in_block, block_lba);
    }
  }
  RETURN_IF_ERROR(Barrier());
  // Commit point passed: recycle the obsoleted sectors.
  for (const DeferredFree& d : deferred) {
    RemoveObsolete(d.block, d.seq);
  }
  ++stats_.packed_transactions;
  stats_.packed_sectors += updates.size();
  return common::OkStatus();
}

common::Status VirtualLog::WriteCheckpoint(
    const std::vector<std::vector<uint32_t>>& entries_of_piece) {
  if (entries_of_piece.size() != config_.pieces) {
    return common::InvalidArgument("WriteCheckpoint: wrong piece count");
  }
  const uint64_t seq = next_seq_++;
  const uint32_t slot = next_ckpt_slot_;
  std::vector<std::byte> body(static_cast<size_t>(config_.pieces) * kSectorBytes);
  for (uint32_t k = 0; k < config_.pieces; ++k) {
    MapSector sector;
    sector.seq = seq;
    sector.piece = k;
    sector.entries = entries_of_piece[k];
    sector.SerializeInto(
        std::span<std::byte>(body).subspan(static_cast<size_t>(k) * kSectorBytes, kSectorBytes),
        epoch_);
  }
  // Piece sectors first, CRC-signed header last: the header write is the commit point. A crash
  // before it leaves the other slot's checkpoint (and the log it bounds) untouched. The barrier
  // between body and header keeps a destage reorder from committing a header over a stale body;
  // the one after makes the checkpoint durable before its log blocks are recycled for reuse.
  if (!body.empty()) {
    RETURN_IF_ERROR(disk_->InternalWrite(CkptSlotLba(slot) + 1, body));
  }
  RETURN_IF_ERROR(Barrier());
  RETURN_IF_ERROR(
      disk_->InternalWrite(CkptSlotLba(slot), SerializeCkptHeader(seq, config_.pieces, epoch_)));
  RETURN_IF_ERROR(Barrier());
  next_ckpt_slot_ = 1 - slot;
  if (obs::TraceRecorder* tracer = disk_->tracer(); tracer != nullptr) {
    tracer->Annotate(obs::EventType::kCheckpoint, obs::Layer::kVlog, seq, config_.pieces);
  }

  // Every log sector — live or pinned — is now redundant: recycle every block that holds one
  // (each block exactly once, however many packed sectors it carries).
  for (const auto& [block, count] : block_sector_count_) {
    FreeLogBlock(block);
  }
  block_sector_count_.clear();
  ChainClear();
  cover_of_.clear();
  carrier_load_.clear();
  pinned_.clear();
  for (auto& state : piece_state_) {
    state = PieceState{DiskPtr{}, true};
  }
  checkpoint_seq_ = seq;
  ++stats_.checkpoints;
  return common::OkStatus();
}

common::Status VirtualLog::WritePark(bool clear) {
  // A cleared record (parked=false) routes recovery to the scan path but still names the format
  // epoch — a plain zeroed sector would lose it.
  ParkRecord rec;
  rec.epoch = epoch_;
  rec.parked = !clear;
  if (!clear) {
    rec.tail = ChainHead();
    rec.checkpoint_seq = checkpoint_seq_;
    rec.next_seq = next_seq_;
  }
  // The tail the record names must be durable before the record, and the record itself durable
  // before power-down completes.
  RETURN_IF_ERROR(Barrier());
  RETURN_IF_ERROR(disk_->InternalWrite(config_.park_lba, SerializePark(rec)));
  return Barrier();
}

common::Status VirtualLog::Park() { return WritePark(/*clear=*/false); }

common::StatusOr<RecoveryResult> VirtualLog::Recover() {
  // Reset in-memory state; it is rebuilt below (LoadCheckpoint re-derives next_ckpt_slot_).
  next_ckpt_slot_ = 0;
  piece_state_.assign(config_.pieces, PieceState{});
  ChainClear();
  block_sector_count_.clear();
  chain_.reserve(config_.pieces * 2);
  cover_of_.reserve(config_.pieces * 2);
  carrier_load_.reserve(config_.pieces * 2);
  cover_of_.clear();
  carrier_load_.clear();
  pinned_.clear();

  std::vector<std::byte> raw(kSectorBytes);
  RETURN_IF_ERROR(disk_->InternalRead(config_.park_lba, raw));
  const auto park = ParsePark(raw);
  if (!park) {
    // The park sector itself was lost (e.g. a crash mid-park-write): the checkpoint headers are
    // the redundant epoch carriers.
    ASSIGN_OR_RETURN(epoch_, EpochFromCheckpointHeaders());
    return RecoverByScan();
  }
  epoch_ = park->epoch;
  // Clear the park record so a stale tail is never trusted after a crash (§3.2).
  RETURN_IF_ERROR(WritePark(/*clear=*/true));
  if (!park->parked) {
    return RecoverByScan();
  }
  next_seq_ = park->next_seq;
  const DiskPtr tail = park->tail;
  if (!tail.IsNull() && tail.lba >= disk_->SectorCount()) {
    return RecoverByScan();
  }
  return RecoverFromTail(tail, park->checkpoint_seq);
}

common::StatusOr<RecoveryResult> VirtualLog::RecoverFromTail(DiskPtr tail,
                                                             uint64_t checkpoint_seq) {
  std::vector<std::pair<simdisk::Lba, MapSector>> collected;
  uint64_t sectors_read = 0;

  // Frontier ordered by age: always extend the youngest pointer first.
  auto by_seq = [](const DiskPtr& a, const DiskPtr& b) { return a.seq < b.seq; };
  std::priority_queue<DiskPtr, std::vector<DiskPtr>, decltype(by_seq)> frontier(by_seq);
  std::unordered_set<simdisk::Lba> visited;
  if (!tail.IsNull()) {
    frontier.push(tail);
  }
  std::vector<std::byte> raw(kSectorBytes);
  while (!frontier.empty()) {
    const DiskPtr ptr = frontier.top();
    frontier.pop();
    if (ptr.IsNull() || ptr.seq <= checkpoint_seq || visited.contains(ptr.lba)) {
      continue;
    }
    visited.insert(ptr.lba);
    if (ptr.lba >= disk_->SectorCount()) {
      continue;
    }
    if (!disk_->InternalRead(ptr.lba, raw).ok()) {
      continue;
    }
    ++sectors_read;
    auto parsed = MapSector::Parse(raw, epoch_);
    if (!parsed.ok() || parsed->seq != ptr.seq) {
      continue;  // Recycled: the block was reused; a bypass edge covers what lay beyond.
    }
    frontier.push(parsed->prev);
    frontier.push(parsed->bypass);
    collected.emplace_back(ptr.lba, std::move(*parsed));
  }
  return ApplyRecovered(std::move(collected), checkpoint_seq, /*used_scan=*/false, sectors_read);
}

common::StatusOr<RecoveryResult> VirtualLog::RecoverByScan() {
  // Read both slots' checkpoint headers first: the newest valid one bounds which sequence
  // numbers are still meaningful. A slot whose header fails its CRC is an interrupted or
  // damaged checkpoint and is simply ignored.
  uint64_t checkpoint_seq = 0;
  std::vector<std::byte> raw(kSectorBytes);
  for (uint32_t slot = 0; slot < 2; ++slot) {
    RETURN_IF_ERROR(disk_->InternalRead(CkptSlotLba(slot), raw));
    if (const auto header = ParseCkptHeader(raw);
        header && header->pieces == config_.pieces && header->epoch == epoch_) {
      checkpoint_seq = std::max(checkpoint_seq, header->seq);
    }
  }

  // Full scan, track by track, for cryptographically signed map sectors. Since the scan sees
  // every surviving sector, reachability is not needed: the youngest valid version of each
  // piece is by construction the live one.
  const auto& geom = disk_->geometry();
  const simdisk::Lba ckpt_begin = config_.checkpoint_lba;
  const simdisk::Lba ckpt_end = config_.checkpoint_lba + CheckpointSectors();
  std::vector<std::pair<simdisk::Lba, MapSector>> collected;
  uint64_t sectors_read = 0;
  for (uint64_t t = 0; t < geom.TotalTracks(); ++t) {
    const simdisk::Lba base = geom.TrackStart(t);
    // Zero-copy track view: same charged mechanics as InternalRead, no per-track copy (the
    // scan touches every sector on the disk, so the copies dominated sweep profiles).
    const auto track = disk_->InternalReadView(base, geom.sectors_per_track);
    if (track.empty()) {
      return common::IoError("RecoverByScan: track read out of range");
    }
    sectors_read += geom.sectors_per_track;
    for (uint32_t s = 0; s < geom.sectors_per_track; ++s) {
      const simdisk::Lba lba = base + s;
      if (lba == config_.park_lba || (lba >= ckpt_begin && lba < ckpt_end)) {
        continue;
      }
      const auto sector_bytes =
          track.subspan(static_cast<size_t>(s) * geom.sector_bytes, geom.sector_bytes);
      // Almost every sector on disk is data, not map: reject on the 8-byte magic before
      // paying for Parse's CRC pass and StatusOr construction.
      if (!MapSector::HasMagic(sector_bytes)) {
        continue;
      }
      auto parsed = MapSector::Parse(sector_bytes, epoch_);
      if (parsed.ok() && parsed->seq > checkpoint_seq) {
        collected.emplace_back(lba, std::move(*parsed));
      }
    }
  }
  uint64_t max_seq = checkpoint_seq;
  for (const auto& [lba, sector] : collected) {
    max_seq = std::max(max_seq, sector.seq);
  }
  next_seq_ = max_seq + 1;
  return ApplyRecovered(std::move(collected), checkpoint_seq, /*used_scan=*/true, sectors_read);
}

common::StatusOr<RecoveryResult> VirtualLog::ApplyRecovered(
    std::vector<std::pair<simdisk::Lba, MapSector>> sectors, uint64_t checkpoint_seq,
    bool used_scan, uint64_t sectors_read) {
  RecoveryResult result;
  result.used_scan = used_scan;
  result.sectors_read = sectors_read;
  result.pieces.resize(config_.pieces);

  std::sort(sectors.begin(), sectors.end(),
            [](const auto& a, const auto& b) { return a.second.seq > b.second.seq; });

  // An interrupted atomic commit can only be the very last thing written: discard the trailing
  // transaction iff the youngest sector belongs to it and not all of its members survived.
  std::unordered_set<simdisk::Lba> discarded;
  if (!sectors.empty() && sectors.front().second.txn_id != 0) {
    const uint64_t txn = sectors.front().second.txn_id;
    const uint16_t total = sectors.front().second.txn_total;
    std::set<uint16_t> members;
    std::vector<simdisk::Lba> lbas;
    for (const auto& [lba, sector] : sectors) {
      if (sector.txn_id == txn) {
        members.insert(sector.txn_index);
        lbas.push_back(lba);
      }
    }
    if (members.size() < total) {
      discarded.insert(lbas.begin(), lbas.end());
      result.discarded_txn_sectors = lbas.size();
    }
  }

  // Youngest surviving version per piece wins.
  for (const auto& [lba, sector] : sectors) {
    if (discarded.contains(lba) || sector.piece >= config_.pieces) {
      continue;
    }
    PieceState& state = piece_state_[sector.piece];
    if (!state.loc.IsNull()) {
      continue;  // A younger version was already applied.
    }
    state.loc = DiskPtr{lba, sector.seq};
    result.pieces[sector.piece] = sector.entries;
    ChainPushOldest(sector.seq, sector.piece, lba);
    NoteSectorInBlock(allocator_->space().LbaToBlock(lba));
    next_seq_ = std::max(next_seq_, sector.seq + 1);
  }

  // Rebuild designated covers so that future appends keep recycling safely. For each live
  // (and then transitively each pinned) non-tail sector, pick a surviving sector holding a
  // pointer to it — preferring live carriers; an obsolete carrier gets pinned.
  {
    auto is_live = [&](uint64_t seq, simdisk::Lba lba) {
      const auto it = chain_.find(seq);
      return it != chain_.end() && it->second.lba == lba;
    };
    auto find_carrier = [&](const DiskPtr& target) -> const std::pair<simdisk::Lba, MapSector>* {
      const std::pair<simdisk::Lba, MapSector>* fallback = nullptr;
      for (const auto& entry : sectors) {
        if (discarded.contains(entry.first)) {
          continue;
        }
        const MapSector& s = entry.second;
        if (s.prev == target || s.bypass == target) {
          if (is_live(s.seq, entry.first)) {
            return &entry;
          }
          if (fallback == nullptr) {
            fallback = &entry;
          }
        }
      }
      return fallback;
    };

    std::vector<DiskPtr> worklist;
    const DiskPtr tail = ChainHead();
    worklist.reserve(chain_.size());
    for (uint64_t seq = chain_oldest_; seq != 0; seq = chain_.at(seq).newer) {
      if (seq != tail.seq) {
        worklist.push_back(DiskPtr{chain_.at(seq).lba, seq});
      }
    }
    std::unordered_set<uint64_t> queued;
    for (const auto& ptr : worklist) {
      queued.insert(ptr.seq);
    }
    while (!worklist.empty()) {
      const DiskPtr target = worklist.back();
      worklist.pop_back();
      const auto* carrier = find_carrier(target);
      if (carrier == nullptr) {
        continue;  // Handled by the safety closure below.
      }
      SetCover(target.seq, carrier->second.seq);
      if (!is_live(carrier->second.seq, carrier->first) &&
          !pinned_.contains(carrier->second.seq)) {
        const uint32_t carrier_block = allocator_->space().LbaToBlock(carrier->first);
        pinned_.emplace(carrier->second.seq, carrier_block);
        NoteSectorInBlock(carrier_block);
        stats_.pinned_peak = std::max<uint64_t>(stats_.pinned_peak, pinned_.size());
        // A pinned carrier must itself stay reachable: cover it too.
        if (!queued.contains(carrier->second.seq)) {
          queued.insert(carrier->second.seq);
          worklist.push_back(DiskPtr{carrier->first, carrier->second.seq});
        }
      }
    }

    // Safety closure: a sector is safe iff its designated-cover chain reaches the tail. Any
    // live sector left unsafe (possible only after a scan, where surviving pointers may be
    // missing) must be re-appended by the caller so future traversals can reach it.
    std::unordered_map<uint64_t, bool> safe;
    std::function<bool(uint64_t)> is_safe = [&](uint64_t seq) -> bool {
      if (seq == tail.seq) {
        return true;
      }
      const auto cached = safe.find(seq);
      if (cached != safe.end()) {
        return cached->second;
      }
      safe[seq] = false;  // Break cycles conservatively (cover chains are acyclic by age).
      const auto it = cover_of_.find(seq);
      const bool ok = it != cover_of_.end() && is_safe(it->second);
      safe[seq] = ok;
      return ok;
    };
    for (uint64_t seq = chain_oldest_; seq != 0; seq = chain_.at(seq).newer) {
      if (!is_safe(seq)) {
        result.uncovered_pieces.push_back(chain_.at(seq).piece);
      }
    }
  }

  if (checkpoint_seq > 0) {
    ASSIGN_OR_RETURN(auto ckpt_pieces, LoadCheckpoint(checkpoint_seq));
    for (uint32_t k = 0; k < config_.pieces; ++k) {
      if (piece_state_[k].loc.IsNull() && !ckpt_pieces[k].empty()) {
        piece_state_[k] = PieceState{DiskPtr{}, true};
        result.pieces[k] = std::move(ckpt_pieces[k]);
      }
    }
    result.from_checkpoint = true;
    next_seq_ = std::max(next_seq_, checkpoint_seq + 1);
  }
  checkpoint_seq_ = checkpoint_seq;
  return result;
}

common::StatusOr<std::vector<std::vector<uint32_t>>> VirtualLog::LoadCheckpoint(
    uint64_t checkpoint_seq) {
  std::vector<std::byte> region(static_cast<size_t>(CheckpointSlotSectors()) * kSectorBytes);
  for (uint32_t slot = 0; slot < 2; ++slot) {
    RETURN_IF_ERROR(disk_->InternalRead(CkptSlotLba(slot), region));
    const auto header = ParseCkptHeader(std::span<const std::byte>(region).first(kSectorBytes));
    if (!header || header->seq != checkpoint_seq || header->pieces != config_.pieces ||
        header->epoch != epoch_) {
      continue;
    }
    // The header is the commit point and is written after the piece sectors, so a slot with a
    // matching header must have intact pieces; anything else is real media corruption.
    std::vector<std::vector<uint32_t>> pieces(config_.pieces);
    for (uint32_t k = 0; k < config_.pieces; ++k) {
      auto parsed = MapSector::Parse(
          std::span<const std::byte>(region).subspan(static_cast<size_t>(k + 1) * kSectorBytes,
                                                     kSectorBytes),
          epoch_);
      if (!parsed.ok() || parsed->seq != checkpoint_seq || parsed->piece != k) {
        return common::Corruption("checkpoint piece sector corrupt");
      }
      pieces[k] = std::move(parsed->entries);
    }
    next_ckpt_slot_ = 1 - slot;  // Keep alternating: don't overwrite the slot just recovered.
    return pieces;
  }
  return common::Corruption("checkpoint header mismatch");
}

std::optional<uint32_t> VirtualLog::LiveBlockOfPiece(uint32_t piece) const {
  const PieceState& state = piece_state_[piece];
  if (state.loc.IsNull() || state.in_checkpoint) {
    return std::nullopt;
  }
  return allocator_->space().LbaToBlock(state.loc.lba);
}

std::vector<uint32_t> VirtualLog::PiecesAtBlock(uint32_t block) const {
  std::vector<uint32_t> pieces;
  for (uint64_t seq = chain_oldest_; seq != 0; seq = chain_.at(seq).newer) {
    const ChainNode& node = chain_.at(seq);
    if (allocator_->space().LbaToBlock(node.lba) == block) {
      pieces.push_back(node.piece);
    }
  }
  return pieces;
}

std::vector<uint32_t> VirtualLog::PinnedBlocks() const {
  std::vector<uint32_t> blocks;
  blocks.reserve(pinned_.size());
  for (const auto& [seq, block] : pinned_) {
    blocks.push_back(block);
  }
  return blocks;
}

bool VirtualLog::IsPinnedBlock(uint32_t block) const {
  for (const auto& [seq, b] : pinned_) {
    if (b == block) {
      return true;
    }
  }
  return false;
}

}  // namespace vlog::core
