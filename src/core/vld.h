// The Virtual Log Disk (§3, §4.2): eager writing behind an unchanged block-device interface.
//
// The VLD manages the disk in fixed physical blocks (4 KB by default, matching the file system
// block size per Appendix A.1). Each host write goes to a free block near the head, followed by
// one virtual-log map-sector write that commits the new logical-to-physical translation — so
// every host write is synchronous *and* atomic. Reads translate through the in-memory
// indirection map. Deletes are inferred by monitoring logical overwrites (plus an explicit
// Trim extension). A free-space compactor runs during idle time.
//
// Layout: sector 0 is the park sector (the "landing zone" record written by the power-down
// sequence); a double-buffered checkpoint region of 2*(pieces+1) sectors follows; everything
// else is allocatable.
#ifndef SRC_CORE_VLD_H_
#define SRC_CORE_VLD_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/compactor.h"
#include "src/core/eager_allocator.h"
#include "src/core/free_space.h"
#include "src/core/virtual_log.h"
#include "src/simdisk/block_device.h"
#include "src/simdisk/request_queue.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::core {

struct VldConfig {
  uint32_t block_sectors = 8;           // 4 KB physical blocks on 512 B sectors.
  bool compactor_enabled = true;        // Also selects the allocator's fill-to-threshold mode.
  double track_switch_threshold = 0.25;  // Free fraction reserved per track (fill to 75%).
  uint32_t target_empty_tracks = 4;
  uint32_t slack_blocks = 16;  // Physical blocks withheld from the logical size so eager
                               // writing always has somewhere to go.
  uint32_t queue_depth = 8;  // Maximum outstanding queued requests (SubmitRead/SubmitWrite).
  uint64_t seed = 1;
  // FlushQueue's read-scheduling policy. Writes always service FIFO among themselves — eager
  // placement means a write lands wherever the head is, so reordering writes saves nothing —
  // but reads go where the data *is*, so SPTF orders a batch's reads by the mechanical model's
  // positioning estimate. kFcfs services the whole batch in submission order (the baseline the
  // scheduler comparison in bench_queue_depth measures against).
  simdisk::SchedulerPolicy read_policy = simdisk::SchedulerPolicy::kSptf;
  // Bounded-age promotion for SPTF reads: once the oldest unserviced request in a batch has
  // waited this long it is serviced next, position notwithstanding (0 disables the guard).
  common::Duration read_starvation_bound = 0;
  // Durability barriers around virtual-log commits (see VirtualLogConfig::barriers). Required
  // for crash consistency on a disk with a volatile write-back cache; disable only as the
  // crash sweep's negative control.
  bool barriers = true;
};

struct VldStats {
  uint64_t host_reads = 0;
  uint64_t host_writes = 0;
  uint64_t blocks_written = 0;
  uint64_t read_modify_writes = 0;  // Sub-block host writes needing a merge.
  uint64_t unmapped_reads = 0;      // Logical blocks read before ever being written.
  uint64_t relocations = 0;         // Data blocks moved by the compactor.
  uint64_t trims = 0;
  uint64_t atomic_commits = 0;
  uint64_t queued_writes = 0;   // Host writes accepted through SubmitWrite.
  uint64_t queued_reads = 0;    // Host reads accepted through SubmitRead.
  uint64_t group_commits = 0;   // FlushQueue calls that committed >1 write in one transaction.
  // Read sectors served from an earlier-submitted, same-batch write's pending payload instead
  // of the media (the RAW forwarding path).
  uint64_t forwarded_read_sectors = 0;

  // Snapshot/diff: stats are plain values, so a measurement window is a copy + subtraction.
  VldStats operator-(const VldStats& rhs) const {
    VldStats d;
    d.host_reads = host_reads - rhs.host_reads;
    d.host_writes = host_writes - rhs.host_writes;
    d.blocks_written = blocks_written - rhs.blocks_written;
    d.read_modify_writes = read_modify_writes - rhs.read_modify_writes;
    d.unmapped_reads = unmapped_reads - rhs.unmapped_reads;
    d.relocations = relocations - rhs.relocations;
    d.trims = trims - rhs.trims;
    d.atomic_commits = atomic_commits - rhs.atomic_commits;
    d.queued_writes = queued_writes - rhs.queued_writes;
    d.queued_reads = queued_reads - rhs.queued_reads;
    d.group_commits = group_commits - rhs.group_commits;
    d.forwarded_read_sectors = forwarded_read_sectors - rhs.forwarded_read_sectors;
    return d;
  }
};

struct VldRecoveryInfo {
  bool used_scan = false;
  bool from_checkpoint = false;
  uint64_t log_sectors_read = 0;
  uint64_t mapped_blocks = 0;
  uint32_t repaired_pieces = 0;  // Uncovered pieces re-appended after a scan recovery.
  // Map sectors dropped because they belonged to a trailing incomplete (torn) transaction.
  // Zero means the recovery was clean; nonzero means a crashed commit was rolled back.
  uint64_t discarded_txn_sectors = 0;
};

class Vld : public simdisk::BlockDevice, public CompactionBackend {
 public:
  explicit Vld(simdisk::SimDisk* disk, VldConfig config = {});

  // Initializes an empty VLD (fresh disk). Either Format or Recover must run before I/O.
  common::Status Format();
  // Rebuilds the map from the virtual log after a restart or crash.
  common::StatusOr<VldRecoveryInfo> Recover();
  // Firmware power-down sequence: parks the log tail for O(pieces) recovery.
  common::Status Park();
  // Writes the whole map to the checkpoint region, freeing all log blocks.
  common::Status Checkpoint();

  // BlockDevice (the unmodified host interface; sizes in whole 512 B sectors).
  common::Status Read(simdisk::Lba lba, std::span<std::byte> out) override;
  common::Status Write(simdisk::Lba lba, std::span<const std::byte> in) override;
  // Every acknowledged VLD command is already durable (its map commit flushes the underlying
  // cache), so this only drains whatever the physical disk still buffers.
  common::Status Flush() override { return disk_->Flush(); }
  uint64_t SectorCount() const override {
    return static_cast<uint64_t>(logical_blocks_) * config_.block_sectors;
  }
  uint32_t SectorBytes() const override { return disk_->SectorBytes(); }

  // Extensions beyond the classic interface.
  struct AtomicWrite {
    simdisk::Lba lba;  // Must be physical-block aligned.
    std::span<const std::byte> data;  // Whole blocks.
  };
  // All-or-nothing multi-extent write (one command, one transaction in the virtual log).
  common::Status WriteAtomic(std::span<const AtomicWrite> writes);

  // --- Queued I/O (§4.2: one map sector holds many entries, so a queue's worth of eager
  // writes can share a single virtual-log commit; reads join the same queue so the positional
  // scheduler can order them) ---

  // Per-request acknowledgement from FlushQueue, timestamped on the virtual clock.
  struct QueuedCompletion {
    uint64_t id = 0;
    bool is_write = true;
    simdisk::Lba lba = 0;
    common::Time submit_time = 0;    // When SubmitRead/SubmitWrite accepted the request.
    // Writes: when the group's map commit reached the media. Reads: when the data was
    // assembled (reads need no commit, so they complete at their own service time).
    common::Time complete_time = 0;
    common::Time dispatch_time = 0;  // When its controller work finished and media work began.
    uint64_t span_id = 0;            // Trace span (0 when the disk has no tracer attached).
    std::vector<std::byte> data;     // Read payload (empty for writes).
    common::Duration Latency() const { return complete_time - submit_time; }
    // Time the request spent behind other queue entries before its own controller work began.
    common::Duration QueueDelay() const { return dispatch_time - submit_time; }
  };
  // Enqueues a host write without any media work (the payload is copied); returns a completion
  // id. Fails with kFailedPrecondition when `queue_depth` requests are already outstanding.
  common::StatusOr<uint64_t> SubmitWrite(simdisk::Lba lba, std::span<const std::byte> in);
  // Enqueues a host read of `sectors` sectors; the data arrives in the FlushQueue completion.
  common::StatusOr<uint64_t> SubmitRead(simdisk::Lba lba, uint64_t sectors);
  // Services every queued request. Writes go down eagerly in submission order (controller
  // overhead pipelined with the media), reads are interleaved by `read_policy` (SPTF orders
  // them by positioning cost; a read whose sectors are covered by an earlier-submitted write
  // in the same batch serves those sectors from the pending payload — the RAW forwarding
  // path — and never sees a later-submitted write, because the map commits only at the end).
  // Then ALL the writes' map entries commit in one packed group transaction — one or two log
  // writes instead of one per request. A write is acknowledged (complete_time stamped) only
  // once that commit is on the media, so each acknowledged write is individually
  // all-or-nothing across a crash; reads acknowledge at their own service time and leave no
  // state behind. Completions are returned in submission order. With a single queued request
  // this is clock-identical to the synchronous path.
  common::StatusOr<std::vector<QueuedCompletion>> FlushQueue();
  size_t QueuedRequests() const { return queue_.size(); }
  size_t QueuedWrites() const;
  size_t QueuedReads() const { return queue_.size() - QueuedWrites(); }
  uint32_t queue_depth() const { return config_.queue_depth; }
  // Explicitly frees whole logical blocks covered by [lba, lba+sectors) — the delete hint the
  // paper notes is missing from the unmodified interface.
  common::Status Trim(simdisk::Lba lba, uint64_t sectors);

  // Gives the in-disk compactor an idle interval of `budget`.
  void RunIdle(common::Duration budget);

  // Governed compaction burst: like RunIdle, but preemptible — the compactor may stop
  // mid-track at the deadline and resume in a later burst. With a budget generous enough that
  // no track is truncated (and the default target), the call sequence (and therefore media
  // and clock) is identical to RunIdle. `target_empty_tracks` overrides the compactor's
  // reserve target for this burst (0 keeps it): the governor chases a deeper reserve under
  // continuous load than the idle compactor needs.
  void RunGovernedBurst(common::Duration budget, uint32_t target_empty_tracks = 0);

  // CompactionBackend:
  common::Status RelocateDataBlock(uint32_t phys_block) override;
  common::Status RewritePiece(uint32_t piece) override;

  double PhysicalUtilization() const { return space_.Utilization(); }
  // The full logical-to-physical translation map (kUnmappedBlock where unmapped). Read-only
  // introspection for invariant checkers such as crashsim.
  const std::vector<uint32_t>& logical_map() const { return map_; }
  uint32_t logical_blocks() const { return logical_blocks_; }
  uint32_t block_sectors() const { return config_.block_sectors; }
  uint32_t target_empty_tracks() const { return config_.target_empty_tracks; }
  simdisk::SimDisk& disk() { return *disk_; }
  const VldStats& stats() const { return stats_; }
  const VirtualLog& vlog() const { return vlog_; }
  const EagerAllocator& allocator() const { return allocator_; }
  const Compactor& compactor() const { return *compactor_; }
  const FreeSpaceMap& space() const { return space_; }

  // Registers this VLD's timeline series under `prefix` — throughput and log/compactor
  // counters plus queue-depth, free-space, utilization, and compaction-debt gauges — and the
  // underlying disk's probes under the same prefix. Closures capture `this`; the timeline must
  // not be polled after the VLD (or its disk) is destroyed. Pure reads: registering and
  // sampling never advance the virtual clock.
  void RegisterTimelineProbes(obs::Timeline& timeline, const std::string& prefix) const;

 private:
  struct Layout {
    uint32_t total_blocks = 0;
    uint32_t system_blocks = 0;
    uint32_t pieces = 0;
    uint32_t logical_blocks = 0;
  };
  static Layout ComputeLayout(const simdisk::DiskGeometry& geometry, const VldConfig& config);

  void MarkSystemBlocks();
  std::vector<uint32_t> PieceEntries(uint32_t piece) const;
  uint32_t PieceOf(uint32_t logical_block) const { return logical_block / kEntriesPerSector; }

  // Stages one logical-block write: allocates and writes the data block; records the map change
  // and the obsoleted physical block without touching the map yet.
  struct StagedWrite {
    uint32_t logical_block;
    uint32_t new_phys;
    uint32_t old_phys;  // kUnmappedBlock if previously unmapped.
  };
  common::Status StageBlockWrite(uint32_t logical_block, std::span<const std::byte> data,
                                 std::vector<StagedWrite>* staged);
  // Splits one host-write extent into block-granularity staged writes (read-modify-write for
  // sub-block edges). Shared by Write and FlushQueue.
  common::Status StageHostWrite(simdisk::Lba lba, std::span<const std::byte> in,
                                std::vector<StagedWrite>* staged);
  // The translate/coalesce/access core of Read: maps each sector through map_, zero-fills
  // unmapped blocks, and issues one InternalRead per physically contiguous run. No span, no
  // command charge — shared by the sync Read and the queued read service path.
  common::Status ReadMapped(simdisk::Lba lba, std::span<std::byte> out);
  // Commits staged writes: appends the affected map pieces (transactionally when more than one;
  // `packed` selects the group-commit packed encoding) then frees the obsoleted data blocks.
  common::Status CommitStaged(const std::vector<StagedWrite>& staged, bool packed = false);

  simdisk::SimDisk* disk_;
  VldConfig config_;
  uint32_t logical_blocks_ = 0;
  uint32_t system_blocks_ = 0;
  FreeSpaceMap space_;
  EagerAllocator allocator_;
  VirtualLog vlog_;
  std::unique_ptr<Compactor> compactor_;
  std::vector<uint32_t> map_;      // logical block -> physical block (kUnmappedBlock if none).
  std::vector<uint32_t> reverse_;  // physical block -> logical block (data blocks only).
  // Outstanding queued requests, in submission order.
  struct QueuedRequest {
    uint64_t id = 0;
    bool is_write = true;
    simdisk::Lba lba = 0;
    uint64_t sectors = 0;         // Extent length (for writes, data.size()/sector bytes).
    std::vector<std::byte> data;  // Write payload.
    common::Time submit_time = 0;
    uint64_t span = 0;  // Trace span opened at submission (0 = tracing off).
  };
  // Serves batch[index] (a read): forwarded sectors come from earlier-submitted pending write
  // payloads in the batch, everything else from the media through the (uncommitted) map.
  common::Status ServiceQueuedRead(const std::vector<QueuedRequest>& batch, size_t index,
                                   std::span<std::byte> out, uint64_t* forwarded_sectors);
  // SPTF positioning cost of batch[index]'s first media-served sector (0 when every sector is
  // forwarded or unmapped — a pure controller-RAM service). `first_media` caches that sector's
  // physical LBA per candidate across the batch's dispatches (kCostUnknown = not yet scanned,
  // kCostNoMedia = fully forwarded/unmapped): batch coverage and the map are both fixed until
  // the end-of-batch commit, so the scan runs once per candidate instead of once per dispatch.
  static constexpr int64_t kCostUnknown = -2;
  static constexpr int64_t kCostNoMedia = -1;
  common::Duration QueuedReadCost(const std::vector<QueuedRequest>& batch, size_t index,
                                  common::Time now, std::vector<int64_t>& first_media) const;
  // The next unserviced batch index to service under config_.read_policy.
  size_t PickNextQueued(const std::vector<QueuedRequest>& batch,
                        const std::vector<bool>& serviced,
                        std::vector<int64_t>& first_media) const;
  std::vector<QueuedRequest> queue_;
  uint64_t next_queued_id_ = 1;
  common::Time ctrl_free_ = 0;  // Controller pipeline state for queued commands.
  VldStats stats_;
};

}  // namespace vlog::core

#endif  // SRC_CORE_VLD_H_
