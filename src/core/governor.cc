#include "src/core/governor.h"

#include <algorithm>

namespace vlog::core {

CompactionGovernor::CompactionGovernor(Vld* vld, const obs::Timeline* timeline,
                                       GovernorConfig config)
    : vld_(vld), timeline_(timeline), config_(config), duty_(config.initial_duty) {
  if (config_.target_empty_tracks == 0) {
    config_.target_empty_tracks = vld_->target_empty_tracks();
  }
  if (timeline_ != nullptr) {
    hist_index_ = timeline_->HistogramIndex(config_.latency_hist);
  }
}

void CompactionGovernor::ConsumeWindows() {
  if (timeline_ == nullptr || hist_index_ < 0) {
    return;
  }
  const auto& windows = timeline_->windows();
  for (; windows_consumed_ < windows.size(); ++windows_consumed_) {
    const obs::LatencyHistogram& h =
        windows[windows_consumed_].histograms[static_cast<size_t>(hist_index_)];
    // An empty window neither violates nor certifies: foreground silence says nothing about
    // the tail, so it leaves the duty (and the violating flag) as-is.
    if (h.Count() == 0) {
      continue;
    }
    const bool violating = config_.slo_budget > 0 &&
                           h.Percentile(99) > static_cast<double>(config_.slo_budget);
    if (violating) {
      duty_ = std::max(config_.min_duty, duty_ * config_.backoff);
      ++stats_.backoffs;
    } else {
      duty_ = std::min(config_.max_duty, duty_ + config_.ramp);
      ++stats_.ramps;
    }
    last_window_violating_ = violating;
  }
}

bool CompactionGovernor::NeedsWork() const {
  // Mirrors what RunIdle would actually do with the time: a pinned map sector means a
  // checkpoint is due, and a shortfall of empty tracks means the compactor has a target to
  // chase. When neither holds, RunIdle is a no-op and a grant would be too.
  return vld_->vlog().PinnedCount() > 0 ||
         vld_->space().EmptyTrackCount() < config_.target_empty_tracks;
}

common::Duration CompactionGovernor::Grant(common::Duration idle_hint) {
  ++stats_.decisions;
  ConsumeWindows();
  const common::Time now = vld_->disk().clock()->Now();
  if (clock_seen_) {
    const double accrued = static_cast<double>(now - last_now_) * duty_;
    credit_ = std::min<common::Duration>(credit_ + static_cast<common::Duration>(accrued),
                                         config_.max_burst);
  }
  clock_seen_ = true;
  last_now_ = now;
  if (!NeedsWork()) {
    return 0;
  }
  common::Duration grant = 0;
  const bool pressure = vld_->space().EmptyTrackCount() < config_.low_water_tracks;
  if (idle_hint > 0) {
    // A declared arrival trough: compaction here delays nobody, so the whole gap is granted
    // and no credit is spent — exactly the paper's idle-time compactor behavior.
    grant = idle_hint;
    ++stats_.idle_grants;
  } else if (pressure) {
    // Starvation imminent: grant at least a minimum burst even mid-violation — a bounded
    // latency breach beats the allocator running out of fill tracks.
    grant = std::max(credit_, config_.min_burst);
    credit_ = 0;
    ++stats_.pressure_overrides;
  } else if (last_window_violating_) {
    return 0;  // Back off: let the foreground drain until a clean window arrives.
  } else if (credit_ < config_.min_burst) {
    return 0;  // Not enough duty accrued for a useful burst yet.
  } else {
    grant = credit_;
    credit_ = 0;
  }
  ++stats_.bursts;
  stats_.granted_ns += static_cast<uint64_t>(grant);
  return grant;
}

common::Duration CompactionGovernor::RunBurst(common::Duration idle_hint) {
  const common::Duration grant = Grant(idle_hint);
  if (grant > 0) {
    vld_->RunGovernedBurst(grant, config_.target_empty_tracks);
  }
  return grant;
}

void CompactionGovernor::RegisterTimelineProbes(obs::Timeline& timeline,
                                                const std::string& prefix) const {
  timeline.AddCounter(prefix + "gov.decisions", [this] { return stats_.decisions; });
  timeline.AddCounter(prefix + "gov.bursts", [this] { return stats_.bursts; });
  timeline.AddCounter(prefix + "gov.idle_grants", [this] { return stats_.idle_grants; });
  timeline.AddCounter(prefix + "gov.backoffs", [this] { return stats_.backoffs; });
  timeline.AddCounter(prefix + "gov.ramps", [this] { return stats_.ramps; });
  timeline.AddCounter(prefix + "gov.pressure_overrides",
                      [this] { return stats_.pressure_overrides; });
  timeline.AddCounter(prefix + "gov.granted_ns", [this] { return stats_.granted_ns; });
  timeline.AddGauge(prefix + "gov.duty_ppm",
                    [this] { return static_cast<uint64_t>(duty_ * 1e6); });
  timeline.AddGauge(prefix + "gov.credit_ns",
                    [this] { return static_cast<uint64_t>(credit_); });
}

}  // namespace vlog::core
