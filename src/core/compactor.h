// Idle-time free-space compactor (§2.3, §4.2).
//
// During idle periods the disk processor reads a victim track and hole-plugs its live blocks
// into free space elsewhere (via normal eager writes), producing entirely empty tracks for the
// allocator's fill-to-threshold mode. Work proceeds at track granularity, so even short idle
// intervals are useful — the property Figure 11 contrasts with the segment-granularity LFS
// cleaner. Victims are chosen randomly among compactable tracks, as in the paper.
#ifndef SRC_CORE_COMPACTOR_H_
#define SRC_CORE_COMPACTOR_H_

#include <cstdint>
#include <optional>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/core/eager_allocator.h"
#include "src/core/virtual_log.h"

namespace vlog::core {

// What the compactor needs from the VLD to move a live block.
class CompactionBackend {
 public:
  virtual ~CompactionBackend() = default;
  // Moves the data block at `phys_block` to a freshly allocated location (map update included).
  virtual common::Status RelocateDataBlock(uint32_t phys_block) = 0;
  // Re-appends `piece`'s map sector, freeing its old block.
  virtual common::Status RewritePiece(uint32_t piece) = 0;
};

struct CompactorConfig {
  uint32_t target_empty_tracks = 4;  // Stop compacting once this many empty tracks exist.
};

struct CompactorStats {
  uint64_t idle_runs = 0;
  uint64_t tracks_compacted = 0;
  uint64_t data_blocks_moved = 0;
  uint64_t map_sectors_rewritten = 0;
  uint64_t bursts_preempted = 0;  // Bounded runs that hit their deadline mid-track.
  uint64_t tracks_resumed = 0;    // Victims continued from a previously preempted burst.
  common::Duration busy_time = 0;
};

class Compactor {
 public:
  Compactor(CompactionBackend* backend, simdisk::SimDisk* disk, EagerAllocator* allocator,
            VirtualLog* vlog, CompactorConfig config, uint64_t seed);

  // Compacts until `deadline`, enough empty tracks exist, or no victim remains. Each victim
  // track is finished once started (track-granularity work units). Returns tracks emptied.
  uint32_t RunUntil(common::Time deadline);

  // Preemptible variant for governed bursts: the deadline is checked before every block move,
  // so a burst may stop mid-track. The unfinished victim is remembered and continued by the
  // next run (bounded or idle) before a new victim is drawn; relocations already committed are
  // never redone, because the resumed scan skips blocks that are no longer live. With a
  // deadline generous enough that no track is ever truncated, the call sequence is identical
  // to RunUntil. `target_empty_tracks` overrides the config target for this burst (0 keeps
  // it) — the governor chases a deeper reserve under load than the idle compactor's default.
  uint32_t RunBounded(common::Time deadline, uint32_t target_empty_tracks = 0);

  // The victim a preempted burst left mid-track, if any. It stays excluded from allocation
  // until the next run resumes or abandons it — otherwise foreground writes between bursts
  // would refill the holes the burst just opened (the arm parks on the victim, making its
  // free blocks the allocator's nearest candidates) and no track would ever empty.
  std::optional<uint64_t> resume_track() const { return resume_track_; }

  const CompactorStats& stats() const { return stats_; }

 private:
  uint32_t Run(common::Time deadline, bool preemptible, uint32_t target_empty_tracks);
  void AbandonResume();
  bool Compactable(uint64_t track) const;
  std::optional<uint64_t> PickVictim();
  bool CompactTrack(uint64_t track, common::Time deadline, bool preemptible, bool* interrupted);
  uint64_t CountEmptyTracks() const;

  std::optional<uint64_t> resume_track_;

  CompactionBackend* backend_;
  simdisk::SimDisk* disk_;
  EagerAllocator* allocator_;
  VirtualLog* vlog_;
  CompactorConfig config_;
  common::Rng rng_;
  CompactorStats stats_;
};

}  // namespace vlog::core

#endif  // SRC_CORE_COMPACTOR_H_
