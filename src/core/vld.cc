#include "src/core/vld.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>

#include "src/obs/timeline.h"

namespace vlog::core {

void Vld::RegisterTimelineProbes(obs::Timeline& timeline, const std::string& prefix) const {
  // Counters — per-window deltas are host/compactor throughput and log activity.
  timeline.AddCounter(prefix + "vld.host_writes", [this] { return stats_.host_writes; });
  timeline.AddCounter(prefix + "vld.host_reads", [this] { return stats_.host_reads; });
  timeline.AddCounter(prefix + "vld.blocks_written", [this] { return stats_.blocks_written; });
  timeline.AddCounter(prefix + "vld.relocations", [this] { return stats_.relocations; });
  timeline.AddCounter(prefix + "vld.group_commits", [this] { return stats_.group_commits; });
  timeline.AddCounter(prefix + "vld.log_appends", [this] { return vlog_.stats().appends; });
  timeline.AddCounter(prefix + "vld.compactor_tracks",
                      [this] { return compactor_->stats().tracks_compacted; });
  timeline.AddCounter(prefix + "vld.compactor_busy_ns", [this] {
    return static_cast<uint64_t>(compactor_->stats().busy_time);
  });
  // Gauges — instantaneous state at each window close.
  timeline.AddGauge(prefix + "vld.queue_depth",
                    [this] { return static_cast<uint64_t>(queue_.size()); });
  timeline.AddGauge(prefix + "vld.free_blocks", [this] { return space_.free_blocks(); });
  timeline.AddGauge(prefix + "vld.utilization_ppm", [this] {
    return static_cast<uint64_t>(space_.Utilization() * 1e6);
  });
  timeline.AddGauge(prefix + "vld.empty_tracks", [this] { return space_.EmptyTrackCount(); });
  // Compaction debt: tracks too full for the fill-to-threshold allocator until hole-plugged.
  timeline.AddGauge(prefix + "vld.compaction_debt_tracks", [this] {
    return space_.TracksBelowFreeFraction(config_.track_switch_threshold);
  });
  disk_->RegisterTimelineProbes(timeline, prefix);
}

Vld::Layout Vld::ComputeLayout(const simdisk::DiskGeometry& geometry, const VldConfig& config) {
  Layout layout;
  layout.total_blocks =
      static_cast<uint32_t>(geometry.TotalSectors() / config.block_sectors);
  // The logical size, piece count, and reserved region depend on each other; iterate to a fixed
  // point (converges immediately in practice).
  uint32_t pieces = 0;
  for (int iter = 0; iter < 8; ++iter) {
    // Park sector + the double-buffered checkpoint region.
    const uint32_t system_sectors = VirtualLog::ReservedSectors(pieces);
    const uint32_t system_blocks =
        (system_sectors + config.block_sectors - 1) / config.block_sectors;
    // Live map sectors occupy up to `pieces` blocks; slack keeps eager writing possible.
    const int64_t logical = static_cast<int64_t>(layout.total_blocks) - system_blocks - pieces -
                            config.slack_blocks;
    assert(logical > 0 && "disk too small for a VLD");
    const uint32_t new_pieces =
        (static_cast<uint32_t>(logical) + kEntriesPerSector - 1) / kEntriesPerSector;
    layout.system_blocks = system_blocks;
    layout.logical_blocks = static_cast<uint32_t>(logical);
    if (new_pieces == pieces) {
      break;
    }
    pieces = new_pieces;
  }
  layout.pieces = pieces;
  return layout;
}

Vld::Vld(simdisk::SimDisk* disk, VldConfig config)
    : disk_(disk),
      config_(config),
      space_(disk->geometry(), config.block_sectors),
      allocator_(disk, &space_,
                 AllocatorConfig{.fill_to_threshold = config.compactor_enabled,
                                 .track_switch_threshold = config.track_switch_threshold}),
      vlog_(disk, &allocator_,
            VirtualLogConfig{
                .pieces = ComputeLayout(disk->geometry(), config).pieces,
                .block_sectors = config.block_sectors,
                .park_lba = 0,
                .checkpoint_lba = 1,
                .barriers = config.barriers,
            }) {
  const Layout layout = ComputeLayout(disk->geometry(), config);
  logical_blocks_ = layout.logical_blocks;
  system_blocks_ = layout.system_blocks;
  map_.assign(logical_blocks_, kUnmappedBlock);
  reverse_.assign(layout.total_blocks, kUnmappedBlock);
  MarkSystemBlocks();
  vlog_.SetEntriesProvider([this](uint32_t piece) { return PieceEntries(piece); });
  compactor_ = std::make_unique<Compactor>(
      this, disk_, &allocator_, &vlog_,
      CompactorConfig{.target_empty_tracks = config_.target_empty_tracks}, config_.seed);
  // The standard read-ahead policy purges prematurely when physical addresses are not
  // monotonic; the VLD prefetches whole tracks instead (§4.2).
  disk_->set_read_ahead_policy(simdisk::ReadAheadPolicy::kAggressiveTrack);
}

void Vld::MarkSystemBlocks() {
  for (uint32_t b = 0; b < system_blocks_; ++b) {
    space_.MarkSystem(b);
  }
}

std::vector<uint32_t> Vld::PieceEntries(uint32_t piece) const {
  const uint32_t begin = piece * kEntriesPerSector;
  const uint32_t end = std::min<uint32_t>(begin + kEntriesPerSector, logical_blocks_);
  return std::vector<uint32_t>(map_.begin() + begin, map_.begin() + end);
}

common::Status Vld::Format() {
  map_.assign(logical_blocks_, kUnmappedBlock);
  reverse_.assign(space_.total_blocks(), kUnmappedBlock);
  space_ = FreeSpaceMap(disk_->geometry(), config_.block_sectors);
  MarkSystemBlocks();
  allocator_ = EagerAllocator(disk_, &space_,
                              AllocatorConfig{.fill_to_threshold = config_.compactor_enabled,
                                              .track_switch_threshold =
                                                  config_.track_switch_threshold});
  // VirtualLog::Format also invalidates any stale checkpoint headers from a previous life of
  // the media.
  return vlog_.Format();
}

common::Status Vld::Park() { return vlog_.Park(); }

common::Status Vld::Checkpoint() {
  std::vector<std::vector<uint32_t>> entries(vlog_.config().pieces);
  for (uint32_t k = 0; k < vlog_.config().pieces; ++k) {
    entries[k] = PieceEntries(k);
  }
  return vlog_.WriteCheckpoint(entries);
}

common::StatusOr<VldRecoveryInfo> Vld::Recover() {
  space_ = FreeSpaceMap(disk_->geometry(), config_.block_sectors);
  MarkSystemBlocks();
  allocator_ = EagerAllocator(disk_, &space_,
                              AllocatorConfig{.fill_to_threshold = config_.compactor_enabled,
                                              .track_switch_threshold =
                                                  config_.track_switch_threshold});
  ASSIGN_OR_RETURN(RecoveryResult recovered, vlog_.Recover());

  map_.assign(logical_blocks_, kUnmappedBlock);
  reverse_.assign(space_.total_blocks(), kUnmappedBlock);
  VldRecoveryInfo info;
  info.used_scan = recovered.used_scan;
  info.from_checkpoint = recovered.from_checkpoint;
  info.log_sectors_read = recovered.sectors_read;
  info.discarded_txn_sectors = recovered.discarded_txn_sectors;
  for (uint32_t k = 0; k < recovered.pieces.size(); ++k) {
    const auto& entries = recovered.pieces[k];
    for (uint32_t i = 0; i < entries.size(); ++i) {
      const uint64_t logical = static_cast<uint64_t>(k) * kEntriesPerSector + i;
      if (logical >= logical_blocks_ || entries[i] == kUnmappedBlock) {
        continue;
      }
      map_[logical] = entries[i];
      reverse_[entries[i]] = static_cast<uint32_t>(logical);
      space_.MarkLive(entries[i]);
      ++info.mapped_blocks;
    }
  }
  // A packed group commit can leave several live (or pinned) map sectors in one physical
  // block: collect the blocks first so each is marked live exactly once.
  std::set<uint32_t> map_blocks;
  for (uint32_t k = 0; k < vlog_.config().pieces; ++k) {
    if (const auto block = vlog_.LiveBlockOfPiece(k)) {
      map_blocks.insert(*block);
    }
  }
  for (const uint32_t block : vlog_.PinnedBlocks()) {
    map_blocks.insert(block);
  }
  for (const uint32_t block : map_blocks) {
    space_.MarkLive(block);
  }
  // Re-append pieces whose on-disk reachability could not be re-established (scan path only).
  for (const uint32_t piece : recovered.uncovered_pieces) {
    RETURN_IF_ERROR(RewritePiece(piece));
    ++info.repaired_pieces;
  }
  return info;
}

common::Status Vld::Read(simdisk::Lba lba, std::span<std::byte> out) {
  const uint32_t sector_bytes = disk_->SectorBytes();
  if (out.empty() || out.size() % sector_bytes != 0 ||
      lba + out.size() / sector_bytes > SectorCount()) {
    return common::InvalidArgument("Vld::Read: bad range");
  }
  obs::SpanScope span(disk_->tracer(), obs::Layer::kVld, lba, out.size() / sector_bytes,
                      obs::SpanKind::kRead);
  disk_->ChargeHostCommand();
  ++stats_.host_reads;
  return ReadMapped(lba, out);
}

common::Status Vld::ReadMapped(simdisk::Lba lba, std::span<std::byte> out) {
  const uint32_t sector_bytes = disk_->SectorBytes();
  // Translate sector by sector, coalescing physically contiguous runs into single accesses.
  const uint64_t sectors = out.size() / sector_bytes;
  uint64_t i = 0;
  while (i < sectors) {
    const simdisk::Lba logical_sector = lba + i;
    const uint32_t lblock = static_cast<uint32_t>(logical_sector / config_.block_sectors);
    const uint32_t offset = static_cast<uint32_t>(logical_sector % config_.block_sectors);
    if (map_[lblock] == kUnmappedBlock) {
      std::memset(out.data() + i * sector_bytes, 0, sector_bytes);
      ++stats_.unmapped_reads;
      ++i;
      continue;
    }
    simdisk::Lba phys = space_.BlockToLba(map_[lblock]) + offset;
    uint64_t run = 1;
    while (i + run < sectors) {
      const simdisk::Lba next_logical = lba + i + run;
      const uint32_t nb = static_cast<uint32_t>(next_logical / config_.block_sectors);
      const uint32_t no = static_cast<uint32_t>(next_logical % config_.block_sectors);
      if (map_[nb] == kUnmappedBlock || space_.BlockToLba(map_[nb]) + no != phys + run) {
        break;
      }
      ++run;
    }
    RETURN_IF_ERROR(disk_->InternalRead(
        phys, out.subspan(i * sector_bytes, run * sector_bytes)));
    i += run;
  }
  return common::OkStatus();
}

common::Status Vld::StageBlockWrite(uint32_t logical_block, std::span<const std::byte> data,
                                    std::vector<StagedWrite>* staged) {
  assert(data.size() == static_cast<size_t>(config_.block_sectors) * disk_->SectorBytes());
  const auto block = allocator_.Allocate();
  if (!block) {
    return common::OutOfSpace("VLD full");
  }
  RETURN_IF_ERROR(disk_->InternalWrite(space_.BlockToLba(*block), data));
  // The staged old block must reflect earlier staged writes to the same logical block.
  uint32_t old_phys = map_[logical_block];
  for (const StagedWrite& s : *staged) {
    if (s.logical_block == logical_block) {
      old_phys = s.new_phys;
    }
  }
  staged->push_back(StagedWrite{logical_block, *block, old_phys});
  ++stats_.blocks_written;
  return common::OkStatus();
}

common::Status Vld::CommitStaged(const std::vector<StagedWrite>& staged, bool packed) {
  if (staged.empty()) {
    return common::OkStatus();
  }
  // Apply the map changes in memory first so PieceEntries sees the new translations, then
  // persist every affected piece in one transaction.
  std::vector<uint32_t> affected_pieces;
  for (const StagedWrite& s : staged) {
    map_[s.logical_block] = s.new_phys;
    const uint32_t piece = PieceOf(s.logical_block);
    if (std::find(affected_pieces.begin(), affected_pieces.end(), piece) ==
        affected_pieces.end()) {
      affected_pieces.push_back(piece);
    }
  }
  std::vector<VirtualLog::PieceUpdate> updates;
  updates.reserve(affected_pieces.size());
  for (const uint32_t piece : affected_pieces) {
    updates.push_back(VirtualLog::PieceUpdate{piece, PieceEntries(piece)});
  }
  RETURN_IF_ERROR(packed ? vlog_.AppendTransactionPacked(updates)
                         : vlog_.AppendTransaction(updates));
  if (updates.size() > 1) {
    ++stats_.atomic_commits;
  }
  // Commit point passed: release the obsoleted data blocks and fix the reverse map.
  for (const StagedWrite& s : staged) {
    if (s.old_phys != kUnmappedBlock) {
      allocator_.Free(s.old_phys);
      reverse_[s.old_phys] = kUnmappedBlock;
    }
    reverse_[s.new_phys] = s.logical_block;
  }
  return common::OkStatus();
}

common::Status Vld::StageHostWrite(simdisk::Lba lba, std::span<const std::byte> in,
                                   std::vector<StagedWrite>* staged) {
  const uint32_t sector_bytes = disk_->SectorBytes();
  const uint32_t bs = config_.block_sectors;
  const size_t block_bytes = static_cast<size_t>(bs) * sector_bytes;
  std::vector<std::byte> merged(block_bytes);
  uint64_t i = 0;
  const uint64_t sectors = in.size() / sector_bytes;
  while (i < sectors) {
    const simdisk::Lba logical_sector = lba + i;
    const uint32_t lblock = static_cast<uint32_t>(logical_sector / bs);
    const uint32_t offset = static_cast<uint32_t>(logical_sector % bs);
    const uint64_t in_block = std::min<uint64_t>(bs - offset, sectors - i);
    if (offset == 0 && in_block == bs) {
      RETURN_IF_ERROR(StageBlockWrite(lblock, in.subspan(i * sector_bytes, block_bytes), staged));
    } else {
      // Sub-block write: read-modify-write the physical block (internal fragmentation biases
      // against the VLD exactly as §4.2 notes).
      ++stats_.read_modify_writes;
      uint32_t source = map_[lblock];
      for (const StagedWrite& s : *staged) {
        if (s.logical_block == lblock) {
          source = s.new_phys;  // Merge over an earlier staged write to the same block.
        }
      }
      if (source != kUnmappedBlock) {
        RETURN_IF_ERROR(disk_->InternalRead(space_.BlockToLba(source), merged));
      } else {
        std::fill(merged.begin(), merged.end(), std::byte{0});
      }
      std::memcpy(merged.data() + static_cast<size_t>(offset) * sector_bytes,
                  in.data() + i * sector_bytes, in_block * sector_bytes);
      RETURN_IF_ERROR(StageBlockWrite(lblock, merged, staged));
    }
    i += in_block;
  }
  return common::OkStatus();
}

common::Status Vld::Write(simdisk::Lba lba, std::span<const std::byte> in) {
  const uint32_t sector_bytes = disk_->SectorBytes();
  if (in.empty() || in.size() % sector_bytes != 0 ||
      lba + in.size() / sector_bytes > SectorCount()) {
    return common::InvalidArgument("Vld::Write: bad range");
  }
  obs::SpanScope span(disk_->tracer(), obs::Layer::kVld, lba, in.size() / sector_bytes,
                      obs::SpanKind::kWrite);
  disk_->ChargeHostCommand();
  ++stats_.host_writes;
  std::vector<StagedWrite> staged;
  RETURN_IF_ERROR(StageHostWrite(lba, in, &staged));
  return CommitStaged(staged);
}

size_t Vld::QueuedWrites() const {
  size_t n = 0;
  for (const QueuedRequest& req : queue_) {
    n += req.is_write ? 1 : 0;
  }
  return n;
}

common::StatusOr<uint64_t> Vld::SubmitWrite(simdisk::Lba lba, std::span<const std::byte> in) {
  const uint32_t sector_bytes = disk_->SectorBytes();
  if (in.empty() || in.size() % sector_bytes != 0 ||
      lba + in.size() / sector_bytes > SectorCount()) {
    return common::InvalidArgument("Vld::SubmitWrite: bad range");
  }
  if (queue_.size() >= config_.queue_depth) {
    return common::FailedPrecondition("Vld::SubmitWrite: queue full");
  }
  QueuedRequest req;
  req.id = next_queued_id_++;
  req.is_write = true;
  req.lba = lba;
  req.sectors = in.size() / sector_bytes;
  req.data.assign(in.begin(), in.end());
  req.submit_time = disk_->clock()->Now();
  if (obs::TraceRecorder* tracer = disk_->tracer();
      tracer != nullptr && tracer->current_span() == 0) {
    // One span per submitted request, opened here and closed when FlushQueue acknowledges it.
    // (When an upper layer's span is current we leave span 0: ownership stays above.)
    req.span = tracer->BeginSpanDetached(obs::Layer::kVld, lba, req.sectors,
                                         obs::SpanKind::kWrite);
  }
  queue_.push_back(std::move(req));
  ++stats_.queued_writes;
  return queue_.back().id;
}

common::StatusOr<uint64_t> Vld::SubmitRead(simdisk::Lba lba, uint64_t sectors) {
  if (sectors == 0 || lba + sectors > SectorCount()) {
    return common::InvalidArgument("Vld::SubmitRead: bad range");
  }
  if (queue_.size() >= config_.queue_depth) {
    return common::FailedPrecondition("Vld::SubmitRead: queue full");
  }
  QueuedRequest req;
  req.id = next_queued_id_++;
  req.is_write = false;
  req.lba = lba;
  req.sectors = sectors;
  req.submit_time = disk_->clock()->Now();
  if (obs::TraceRecorder* tracer = disk_->tracer();
      tracer != nullptr && tracer->current_span() == 0) {
    req.span = tracer->BeginSpanDetached(obs::Layer::kVld, lba, sectors, obs::SpanKind::kRead);
  }
  queue_.push_back(std::move(req));
  ++stats_.queued_reads;
  return queue_.back().id;
}

common::Status Vld::ServiceQueuedRead(const std::vector<QueuedRequest>& batch, size_t index,
                                      std::span<std::byte> out, uint64_t* forwarded_sectors) {
  const QueuedRequest& req = batch[index];
  const uint32_t sector_bytes = disk_->SectorBytes();
  *forwarded_sectors = 0;
  // For each sector, the covering write is the LAST earlier-submitted batch write containing
  // it (later writes overwrite earlier ones); later-submitted writes are invisible — their map
  // entries commit only after this whole batch is serviced, so the media path below reads
  // pre-batch data regardless of service order.
  uint64_t i = 0;
  while (i < req.sectors) {
    const QueuedRequest* covering = nullptr;
    for (size_t j = 0; j < index; ++j) {
      const QueuedRequest& w = batch[j];
      if (w.is_write && req.lba + i >= w.lba && req.lba + i < w.lba + w.sectors) {
        covering = &w;
      }
    }
    if (covering != nullptr) {
      std::memcpy(out.data() + i * sector_bytes,
                  covering->data.data() + (req.lba + i - covering->lba) * sector_bytes,
                  sector_bytes);
      ++*forwarded_sectors;
      ++i;
      continue;
    }
    // Maximal uncovered run -> one mapped media access (ReadMapped coalesces further).
    uint64_t run = 1;
    while (i + run < req.sectors) {
      bool covered = false;
      for (size_t j = 0; j < index; ++j) {
        const QueuedRequest& w = batch[j];
        if (w.is_write && req.lba + i + run >= w.lba && req.lba + i + run < w.lba + w.sectors) {
          covered = true;
          break;
        }
      }
      if (covered) {
        break;
      }
      ++run;
    }
    RETURN_IF_ERROR(ReadMapped(req.lba + i, out.subspan(i * sector_bytes, run * sector_bytes)));
    i += run;
  }
  return common::OkStatus();
}

common::Duration Vld::QueuedReadCost(const std::vector<QueuedRequest>& batch, size_t index,
                                     common::Time now, std::vector<int64_t>& first_media) const {
  // The first media-served sector is a property of the batch, not of the dispatch: same-batch
  // coverage is fixed at submission order and the map recommits only when the batch ends, so
  // the coverage/translation scan runs once per candidate and later dispatches reuse it —
  // only the positioning estimate itself depends on the clock and arm.
  if (first_media[index] == kCostUnknown) {
    first_media[index] = kCostNoMedia;
    const QueuedRequest& req = batch[index];
    // First sector the media will actually serve: skip sectors that are forwarded from earlier
    // batch writes or unmapped (those cost no mechanical time).
    for (uint64_t i = 0; i < req.sectors; ++i) {
      bool covered = false;
      for (size_t j = 0; j < index; ++j) {
        const QueuedRequest& w = batch[j];
        if (w.is_write && req.lba + i >= w.lba && req.lba + i < w.lba + w.sectors) {
          covered = true;
          break;
        }
      }
      if (covered) {
        continue;
      }
      const simdisk::Lba logical_sector = req.lba + i;
      const uint32_t lblock = static_cast<uint32_t>(logical_sector / config_.block_sectors);
      if (map_[lblock] == kUnmappedBlock) {
        continue;
      }
      first_media[index] =
          static_cast<int64_t>(space_.BlockToLba(map_[lblock]) +
                               static_cast<uint32_t>(logical_sector % config_.block_sectors));
      break;
    }
  }
  if (first_media[index] == kCostNoMedia) {
    return 0;  // Fully forwarded/unmapped: a pure controller-RAM service.
  }
  return disk_->EstimatePosition(static_cast<simdisk::Lba>(first_media[index]), now);
}

size_t Vld::PickNextQueued(const std::vector<QueuedRequest>& batch,
                           const std::vector<bool>& serviced,
                           std::vector<int64_t>& first_media) const {
  size_t oldest = batch.size();
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!serviced[i]) {
      oldest = i;
      break;
    }
  }
  if (config_.read_policy == simdisk::SchedulerPolicy::kFcfs) {
    return oldest;
  }
  const common::Time now = disk_->clock()->Now();
  // Bounded-age promotion: the oldest unserviced request jumps the positional ordering once
  // it has waited long enough.
  if (config_.read_starvation_bound > 0 &&
      now - batch[oldest].submit_time >= config_.read_starvation_bound) {
    return oldest;
  }
  // SPTF over the batch's reads; writes stay FIFO among themselves and carry positional cost 0
  // (eager placement: a write lands wherever the head is). Candidates are every unserviced
  // read plus the oldest unserviced write; ties break toward the older (lower-index) request,
  // so equal-cost service order is deterministic and FIFO.
  size_t best = batch.size();
  common::Duration best_cost = 0;
  bool write_seen = false;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (serviced[i]) {
      continue;
    }
    if (batch[i].is_write && write_seen) {
      continue;
    }
    write_seen |= batch[i].is_write;
    const common::Duration cost =
        batch[i].is_write ? 0 : QueuedReadCost(batch, i, now, first_media);
    if (best == batch.size() || cost < best_cost) {
      best = i;
      best_cost = cost;
    }
  }
  return best;
}

common::StatusOr<std::vector<Vld::QueuedCompletion>> Vld::FlushQueue() {
  std::vector<QueuedCompletion> completions;
  if (queue_.empty()) {
    return completions;
  }
  std::vector<QueuedRequest> batch;
  batch.swap(queue_);
  obs::TraceRecorder* tracer = disk_->tracer();
  // Phase 1: service the batch in scheduler order — each request's controller overhead
  // (pipelined against earlier media work), then its eager data-block writes or its media
  // reads. Disk events land on the request's own span. Reads complete here: they need no map
  // commit, so their spans close (and their completion stamps) at their own service time.
  std::vector<StagedWrite> staged;
  std::vector<common::Time> dispatch(batch.size());
  std::vector<common::Time> read_done(batch.size(), 0);
  std::vector<std::vector<std::byte>> read_data(batch.size());
  std::vector<bool> serviced(batch.size(), false);
  std::vector<int64_t> first_media(batch.size(), kCostUnknown);
  size_t write_count = 0;
  for (size_t n = 0; n < batch.size(); ++n) {
    const size_t i = PickNextQueued(batch, serviced, first_media);
    serviced[i] = true;
    const QueuedRequest& req = batch[i];
    obs::SpanScope span(req.span != 0 ? tracer : nullptr, req.span);
    ctrl_free_ = disk_->ChargeQueuedCommand(ctrl_free_, req.submit_time);
    dispatch[i] = disk_->clock()->Now();
    if (req.is_write) {
      ++write_count;
      ++stats_.host_writes;
      RETURN_IF_ERROR(StageHostWrite(req.lba, req.data, &staged));
    } else {
      ++stats_.host_reads;
      read_data[i].resize(req.sectors * disk_->SectorBytes());
      uint64_t forwarded = 0;
      RETURN_IF_ERROR(ServiceQueuedRead(batch, i, read_data[i], &forwarded));
      stats_.forwarded_read_sectors += forwarded;
      if (forwarded > 0 && tracer != nullptr) {
        tracer->Annotate(obs::EventType::kReadForward, obs::Layer::kVld, req.lba, forwarded);
      }
      read_done[i] = disk_->clock()->Now();
      if (tracer != nullptr && req.span != 0) {
        tracer->EndSpan(req.span);
      }
    }
  }
  // Phase 2: one packed group commit covers every write's map entries. Only after it reaches
  // the media are the writes acknowledged — the commit is the atomicity and durability point
  // for the whole batch. A single write's commit is that request's own work (its span shows
  // zero queueing, matching the sync path); a shared commit belongs to no single request, so
  // its time shows up as queueing on every member and one kGroupCommit marker records it. A
  // read-only batch commits nothing: read traffic leaves no VLD state behind.
  if (write_count == 1) {
    uint64_t span_id = 0;
    for (const QueuedRequest& req : batch) {
      if (req.is_write) {
        span_id = req.span;
      }
    }
    obs::SpanScope span(span_id != 0 ? tracer : nullptr, span_id);
    RETURN_IF_ERROR(CommitStaged(staged, /*packed=*/true));
  } else if (write_count > 1) {
    RETURN_IF_ERROR(CommitStaged(staged, /*packed=*/true));
    ++stats_.group_commits;
    if (tracer != nullptr) {
      tracer->Annotate(obs::EventType::kGroupCommit, obs::Layer::kVld, write_count,
                       staged.size());
    }
  }
  const common::Time done = disk_->clock()->Now();
  completions.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    QueuedRequest& req = batch[i];
    QueuedCompletion c;
    c.id = req.id;
    c.is_write = req.is_write;
    c.lba = req.lba;
    c.submit_time = req.submit_time;
    c.complete_time = req.is_write ? done : read_done[i];
    c.dispatch_time = dispatch[i];
    c.span_id = req.span;
    c.data = std::move(read_data[i]);
    completions.push_back(std::move(c));
    if (req.is_write && tracer != nullptr && req.span != 0) {
      tracer->EndSpan(req.span);
    }
  }
  return completions;
}

common::Status Vld::WriteAtomic(std::span<const AtomicWrite> writes) {
  obs::SpanScope span(disk_->tracer(), obs::Layer::kVld, writes.size(), 0,
                      obs::SpanKind::kWrite);
  disk_->ChargeHostCommand();
  ++stats_.host_writes;
  const uint32_t sector_bytes = disk_->SectorBytes();
  const uint32_t bs = config_.block_sectors;
  const size_t block_bytes = static_cast<size_t>(bs) * sector_bytes;
  std::vector<StagedWrite> staged;
  for (const AtomicWrite& w : writes) {
    if (w.lba % bs != 0 || w.data.size() % block_bytes != 0 ||
        w.lba + w.data.size() / sector_bytes > SectorCount()) {
      return common::InvalidArgument("WriteAtomic: extents must be whole aligned blocks");
    }
    for (size_t off = 0; off < w.data.size(); off += block_bytes) {
      const uint32_t lblock = static_cast<uint32_t>(w.lba / bs + off / block_bytes);
      RETURN_IF_ERROR(StageBlockWrite(lblock, w.data.subspan(off, block_bytes), &staged));
    }
  }
  return CommitStaged(staged);
}

common::Status Vld::Trim(simdisk::Lba lba, uint64_t sectors) {
  if (lba + sectors > SectorCount()) {
    return common::InvalidArgument("Trim: bad range");
  }
  obs::SpanScope span(disk_->tracer(), obs::Layer::kVld, lba, sectors);
  disk_->ChargeHostCommand();
  const uint32_t bs = config_.block_sectors;
  // Only whole blocks are dropped; partial edges are ignored.
  uint32_t first = static_cast<uint32_t>((lba + bs - 1) / bs);
  uint32_t end = static_cast<uint32_t>((lba + sectors) / bs);
  std::vector<uint32_t> affected_pieces;
  std::vector<uint32_t> freed;
  for (uint32_t b = first; b < end; ++b) {
    if (map_[b] == kUnmappedBlock) {
      continue;
    }
    freed.push_back(map_[b]);
    map_[b] = kUnmappedBlock;
    const uint32_t piece = PieceOf(b);
    if (std::find(affected_pieces.begin(), affected_pieces.end(), piece) ==
        affected_pieces.end()) {
      affected_pieces.push_back(piece);
    }
    ++stats_.trims;
  }
  if (freed.empty()) {
    return common::OkStatus();
  }
  std::vector<VirtualLog::PieceUpdate> updates;
  for (const uint32_t piece : affected_pieces) {
    updates.push_back(VirtualLog::PieceUpdate{piece, PieceEntries(piece)});
  }
  RETURN_IF_ERROR(vlog_.AppendTransaction(updates));
  for (const uint32_t phys : freed) {
    allocator_.Free(phys);
    reverse_[phys] = kUnmappedBlock;
  }
  return common::OkStatus();
}

void Vld::RunIdle(common::Duration budget) {
  if (!config_.compactor_enabled || budget <= 0) {
    return;
  }
  const common::Time deadline = disk_->clock()->Now() + budget;
  // Idle time is also when checkpoints are cheap (§3.3); a checkpoint releases every pinned
  // map sector, which in turn lets the compactor empty the tracks holding them.
  if (vlog_.PinnedCount() > 0) {
    (void)Checkpoint();
  }
  if (disk_->clock()->Now() < deadline) {
    compactor_->RunUntil(deadline);
  }
}

void Vld::RunGovernedBurst(common::Duration budget, uint32_t target_empty_tracks) {
  if (!config_.compactor_enabled || budget <= 0) {
    return;
  }
  const common::Time deadline = disk_->clock()->Now() + budget;
  // Mirror RunIdle step for step (the governor-vs-idle differential depends on it); the only
  // difference is that the compactor run is preemptible at block granularity.
  if (vlog_.PinnedCount() > 0) {
    (void)Checkpoint();
  }
  if (disk_->clock()->Now() < deadline) {
    compactor_->RunBounded(deadline, target_empty_tracks);
  }
}

common::Status Vld::RelocateDataBlock(uint32_t phys_block) {
  const uint32_t logical = reverse_[phys_block];
  if (logical == kUnmappedBlock) {
    return common::FailedPrecondition("RelocateDataBlock: not a data block");
  }
  const uint32_t sector_bytes = disk_->SectorBytes();
  std::vector<std::byte> data(static_cast<size_t>(config_.block_sectors) * sector_bytes);
  RETURN_IF_ERROR(disk_->InternalRead(space_.BlockToLba(phys_block), data));
  std::vector<StagedWrite> staged;
  RETURN_IF_ERROR(StageBlockWrite(logical, data, &staged));
  RETURN_IF_ERROR(CommitStaged(staged));
  ++stats_.relocations;
  --stats_.blocks_written;  // Compaction traffic is not host write traffic.
  return common::OkStatus();
}

common::Status Vld::RewritePiece(uint32_t piece) {
  return vlog_.AppendPiece(piece, PieceEntries(piece));
}

}  // namespace vlog::core
