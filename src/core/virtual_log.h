// The virtual log (§3.2): a log of map sectors whose entries are not physically contiguous.
//
// Appending a new version of a piece writes one eager sector whose `prev` pointer is the old
// log tail (the previous tree root) and whose `bypass` pointer is the chain successor of the
// sector it obsoletes, so that sector can usually be recycled immediately without recopying:
// recovery traversal routes around it (the paper's Figure 3b).
//
// Soundness refinement. The paper describes the single-recycle case; when a sector carrying a
// bypass pointer is itself recycled, a naively freed sector can orphan part of the log. This
// implementation therefore tracks a *designated cover* for every non-tail live sector: the
// (unique, in-memory) newer sector whose on-disk pointer guarantees its reachability. The
// invariant is that designated-cover chains have strictly increasing age and terminate at the
// log tail, so every live sector is reachable from the tail through valid sectors. An obsolete
// sector that still carries covers is *pinned* — its block is not recycled until all of its
// cover targets have been re-covered or removed. Pinned sectors are rare and bounded: when
// their count exceeds `pinned_limit` the log takes an automatic checkpoint, which resets all
// cover bookkeeping and frees every log block.
//
// Recovery bootstraps from the log tail parked at a fixed sector during power-down; if the park
// record is missing or corrupt, a full-disk scan for signed map sectors finds the live map
// instead. A checkpoint (§3.3) bounds both paths: the whole map is written contiguously to a
// reserved region and traversal prunes below the checkpoint sequence number.
//
// The checkpoint region is double-buffered: two slots of (header + one sector per piece),
// written alternately. Within a slot the piece sectors go down first and the CRC-signed header
// last, so the header write is the commit point; a crash anywhere in the middle leaves the
// previous checkpoint (in the other slot) intact. Recovery trusts the newest slot whose header
// parses.
//
// Format epoch. Every map sector's CRC is seeded with the log's format epoch, a counter bumped
// by each Format() over the same media. A scan recovery therefore only accepts sectors signed
// under the current generation — sequence numbers restarting at 1 after a reformat can never
// collide with an old generation's surviving sectors. The epoch lives redundantly in the park
// record and in both checkpoint-slot headers (Format stamps both), so it survives any single
// damaged sector; a cleared park record still carries it (with `parked` false, which routes
// recovery to the scan path exactly like the old zeroed-sector clearing did).
//
// Group commit. AppendTransactionPacked() is the queued-write commit path: the transaction's
// sectors are packed contiguously into whole physical blocks (block_sectors map sectors per
// block) and written with one media write per block, so a queue's worth of eager writes costs
// one or two log writes instead of one per request. Packing means a log block can hold several
// live (or pinned) sectors; a block is recycled only when its last live/pinned sector leaves.
#ifndef SRC_CORE_VIRTUAL_LOG_H_
#define SRC_CORE_VIRTUAL_LOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/core/eager_allocator.h"
#include "src/core/map_sector.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::core {

struct VirtualLogConfig {
  uint32_t pieces = 0;         // Number of map pieces (ceil(logical blocks / entries/sector)).
  uint32_t block_sectors = 8;  // Physical block size in sectors.
  simdisk::Lba park_lba = 0;   // The landing-zone sector holding the parked tail.
  simdisk::Lba checkpoint_lba = 1;  // First sector of the reserved (double-slot) checkpoint region.
  uint32_t pinned_limit = 64;  // Auto-checkpoint when more obsolete sectors than this are pinned.
  // Issue durability barriers (disk Flush) where recoverability depends on write ordering:
  // around every map append (data blocks before their map sectors, commits before the next
  // ack), between a checkpoint's body and its header, and around the park record. Free no-ops
  // on a write-through disk. Disable only to demonstrate that a write-back cache breaks the
  // log without them (the crash sweep's negative control).
  bool barriers = true;
};

struct RecoveryResult {
  // Recovered entries per piece; an empty vector means the piece was never written.
  std::vector<std::vector<uint32_t>> pieces;
  bool used_scan = false;         // True when the park record was unusable.
  bool from_checkpoint = false;   // True when a checkpoint seeded part of the map.
  uint64_t sectors_read = 0;      // Log sectors examined (traversal or scan).
  uint64_t discarded_txn_sectors = 0;  // Tail sectors dropped from an incomplete transaction.
  // Live pieces for which no surviving sector holds a pointer (possible only on the scan path);
  // the caller should re-append them promptly so traversal-based recovery can find them again.
  std::vector<uint32_t> uncovered_pieces;
};

struct VirtualLogStats {
  uint64_t appends = 0;
  uint64_t recycled_blocks = 0;  // Obsolete map-sector blocks returned to the free pool.
  uint64_t pinned_peak = 0;      // High-water mark of simultaneously pinned sectors.
  uint64_t checkpoints = 0;
  uint64_t auto_checkpoints = 0;  // Checkpoints forced by the pinned-sector valve.
  uint64_t packed_transactions = 0;  // Group commits that packed sectors into shared blocks.
  uint64_t packed_sectors = 0;       // Map sectors written through the packed path.

  // Snapshot/diff: stats are plain values, so a measurement window is a copy + subtraction.
  VirtualLogStats operator-(const VirtualLogStats& rhs) const {
    VirtualLogStats d;
    d.appends = appends - rhs.appends;
    d.recycled_blocks = recycled_blocks - rhs.recycled_blocks;
    // High-water marks do not difference meaningfully; keep the window-end value.
    d.pinned_peak = pinned_peak;
    d.checkpoints = checkpoints - rhs.checkpoints;
    d.auto_checkpoints = auto_checkpoints - rhs.auto_checkpoints;
    d.packed_transactions = packed_transactions - rhs.packed_transactions;
    d.packed_sectors = packed_sectors - rhs.packed_sectors;
    return d;
  }
};

class VirtualLog {
 public:
  VirtualLog(simdisk::SimDisk* disk, EagerAllocator* allocator, VirtualLogConfig config);

  // Initializes an empty log on a fresh disk: zeroes the park record. The caller is responsible
  // for having marked the park/checkpoint region as system blocks.
  common::Status Format();

  // Supplies current entries of a piece, enabling automatic checkpoints (the valve above).
  void SetEntriesProvider(std::function<std::vector<uint32_t>(uint32_t)> provider) {
    entries_provider_ = std::move(provider);
  }

  // Appends a new version of `piece` as a standalone (single-sector, atomic) commit.
  common::Status AppendPiece(uint32_t piece, const std::vector<uint32_t>& entries);

  struct PieceUpdate {
    uint32_t piece;
    std::vector<uint32_t> entries;
  };
  // Atomically appends new versions of several distinct pieces. The sectors share a transaction
  // id; recovery discards a trailing transaction whose sectors are not all present, so either
  // every piece update takes effect or none does. The obsoleted map sectors are recycled only
  // after the last sector of the transaction is on disk.
  common::Status AppendTransaction(const std::vector<PieceUpdate>& updates);

  // Group commit (queued writes): same atomicity contract as AppendTransaction, but the
  // transaction's sectors are packed contiguously into whole blocks and written with one media
  // write per block — ceil(N / block_sectors) writes instead of N. A single update degenerates
  // to AppendPiece so depth-1 behaviour is identical to the standalone path.
  common::Status AppendTransactionPacked(const std::vector<PieceUpdate>& updates);

  // Writes the whole map contiguously to the checkpoint region, frees all log blocks (live and
  // pinned), and resets the chain. `entries_of_piece[k]` must be the current entries of piece k.
  common::Status WriteCheckpoint(const std::vector<std::vector<uint32_t>>& entries_of_piece);

  // Firmware power-down: records the log tail (and checkpoint seq) at the park sector.
  common::Status Park();

  // Rebuilds the in-memory state from disk. Uses the parked tail when valid (then clears it),
  // otherwise falls back to scanning the disk for signed map sectors. The allocator's free-space
  // map must already have system blocks marked; the caller re-marks live blocks afterwards
  // (data blocks from the recovered map, map blocks from LiveBlockOfPiece and PinnedBlocks).
  common::StatusOr<RecoveryResult> Recover();

  // The physical block currently holding `piece`'s live map sector (nullopt when the piece has
  // never been written or lives in the checkpoint region).
  std::optional<uint32_t> LiveBlockOfPiece(uint32_t piece) const;
  // All pieces whose live map sectors occupy `block` (several when a packed transaction shared
  // the block). Empty when the block holds no live map sector. Used by the compactor.
  std::vector<uint32_t> PiecesAtBlock(uint32_t block) const;
  // Blocks held only because an obsolete sector in them still covers live sectors.
  std::vector<uint32_t> PinnedBlocks() const;
  bool IsPinnedBlock(uint32_t block) const;

  uint64_t NextSeq() const { return next_seq_; }
  uint64_t CheckpointSeq() const { return checkpoint_seq_; }
  // The format generation; bumped by every Format() over the same media and mixed into every
  // map sector's CRC seed.
  uint64_t Epoch() const { return epoch_; }
  size_t PinnedCount() const { return pinned_.size(); }
  const VirtualLogStats& stats() const { return stats_; }
  const VirtualLogConfig& config() const { return config_; }
  // Sectors in one checkpoint slot: one header plus one per piece.
  uint32_t CheckpointSlotSectors() const { return config_.pieces + 1; }
  // Total sectors of the reserved checkpoint region (both slots).
  uint32_t CheckpointSectors() const { return 2 * CheckpointSlotSectors(); }
  // Reserved sectors at the front of the disk for the default layout (park at sector 0,
  // checkpoint region right behind it): park + two checkpoint slots.
  static constexpr uint32_t ReservedSectors(uint32_t pieces) { return 1 + 2 * (pieces + 1); }

 private:
  struct PieceState {
    DiskPtr loc;                // Live sector (null = never written or checkpoint-resident).
    bool in_checkpoint = false;
  };
  struct ChainNode {
    uint32_t piece;
    simdisk::Lba lba;
    // Intrusive age-ordered list links: the next-older / next-newer live sequence (0 = none;
    // sequences start at 1 so 0 is a safe sentinel).
    uint64_t older = 0;
    uint64_t newer = 0;
  };
  struct DeferredFree {
    uint32_t block;
    uint64_t seq;
  };

  DiskPtr ChainHead() const;
  // Chain successor (next older live sector) of the live sector with sequence `seq`.
  DiskPtr ChainSuccessorOf(uint64_t seq) const;

  // --- Intrusive chain list maintenance ---
  // Appends carry the largest sequence so far (push at the newest end); recovery applies
  // sectors youngest-first (push at the oldest end). Both are O(1).
  void ChainPushNewest(uint64_t seq, uint32_t piece, simdisk::Lba lba);
  void ChainPushOldest(uint64_t seq, uint32_t piece, simdisk::Lba lba);
  void ChainErase(uint64_t seq);
  void ChainClear();

  // --- Per-block sector refcounts (packed transactions share blocks) ---
  void NoteSectorInBlock(uint32_t block);
  // Releases one live/pinned sector from `block`, recycling the block when it was the last.
  void ReleaseSectorInBlock(uint32_t block);

  // The newest epoch recorded in a valid checkpoint-slot header (0 when neither parses). The
  // fallback epoch source when the park record is unreadable.
  common::StatusOr<uint64_t> EpochFromCheckpointHeaders();

  // --- Designated-cover bookkeeping ---
  void SetCover(uint64_t target_seq, uint64_t carrier_seq);
  void DropCover(uint64_t target_seq);
  void DecrementLoad(uint64_t carrier_seq);
  // Called when a sector leaves the live chain: pins it if it still carries covers, otherwise
  // recycles its block.
  void RemoveObsolete(uint32_t block, uint64_t seq);
  void FreeLogBlock(uint32_t block);

  simdisk::Lba CkptSlotLba(uint32_t slot) const {
    return config_.checkpoint_lba + slot * CheckpointSlotSectors();
  }

  // Durability barrier: flushes the disk's write-back cache (no-op when disabled by config or
  // when the disk has no cache).
  common::Status Barrier();

  common::Status AppendOne(uint32_t piece, const std::vector<uint32_t>& entries, uint64_t txn_id,
                           uint16_t txn_index, uint16_t txn_total,
                           std::vector<DeferredFree>* deferred_frees);
  common::Status MaybeAutoCheckpoint();
  common::Status WritePark(bool clear);
  common::StatusOr<RecoveryResult> RecoverFromTail(DiskPtr tail, uint64_t checkpoint_seq);
  common::StatusOr<RecoveryResult> RecoverByScan();
  // Shared tail of both recovery paths: pick the youngest complete version per piece, fill from
  // the checkpoint, rebuild chain and cover state.
  common::StatusOr<RecoveryResult> ApplyRecovered(
      std::vector<std::pair<simdisk::Lba, MapSector>> sectors, uint64_t checkpoint_seq,
      bool used_scan, uint64_t sectors_read);
  common::StatusOr<std::vector<std::vector<uint32_t>>> LoadCheckpoint(uint64_t checkpoint_seq);

  simdisk::SimDisk* disk_;
  EagerAllocator* allocator_;
  VirtualLogConfig config_;
  uint64_t next_seq_ = 1;
  uint64_t checkpoint_seq_ = 0;  // 0 = no checkpoint taken.
  uint64_t epoch_ = 0;           // Format generation (CRC seed); 0 = never formatted.
  uint32_t next_ckpt_slot_ = 0;  // Slot the next checkpoint writes to (alternates).
  std::vector<PieceState> piece_state_;
  // Live map sectors keyed by sequence, threaded into a doubly-linked list ordered by age
  // (chain_oldest_ .. chain_newest_ via ChainNode::older/newer). Replaces a std::map: the
  // append path paid a red-black-tree node allocation and rebalance per map write, while every
  // ordered use here only ever needs the two ends, a neighbor, or a full ascending walk.
  std::unordered_map<uint64_t, ChainNode> chain_;
  uint64_t chain_oldest_ = 0;  // Smallest live seq (0 = chain empty).
  uint64_t chain_newest_ = 0;  // Largest live seq (0 = chain empty).
  // Physical block -> number of live or pinned map sectors it holds (absent = none). A block is
  // returned to the free pool only when its count reaches zero.
  std::unordered_map<uint32_t, uint32_t> block_sector_count_;
  // Designated covers: target sector -> the newer sector whose on-disk pointer keeps it
  // reachable. Every live or pinned sector except the tail has exactly one entry.
  std::unordered_map<uint64_t, uint64_t> cover_of_;
  std::unordered_map<uint64_t, uint32_t> carrier_load_;  // carrier -> number of cover targets.
  std::unordered_map<uint64_t, uint32_t> pinned_;  // Obsolete carrier seq -> its physical block.
  std::function<std::vector<uint32_t>(uint32_t)> entries_provider_;
  // Reused serialization buffer for the single-sector append path (one map write per update:
  // a fresh vector per append showed up in profiles).
  std::vector<std::byte> append_scratch_;
  VirtualLogStats stats_;
};

}  // namespace vlog::core

#endif  // SRC_CORE_VIRTUAL_LOG_H_
