#include "src/core/free_space.h"

#include <cassert>

namespace vlog::core {

FreeSpaceMap::FreeSpaceMap(const simdisk::DiskGeometry& geometry, uint32_t block_sectors)
    : block_sectors_(block_sectors),
      blocks_per_track_(geometry.sectors_per_track / block_sectors),
      sectors_per_track_(geometry.sectors_per_track),
      tracks_per_cylinder_(geometry.tracks_per_cylinder) {
  assert(geometry.sectors_per_track % block_sectors == 0 &&
         "physical block size must divide the track");
  const uint64_t tracks = geometry.TotalTracks();
  states_.assign(tracks * blocks_per_track_, BlockState::kFree);
  cyl_free_.assign(geometry.cylinders, tracks_per_cylinder_ * blocks_per_track_);
  track_free_.assign(tracks, blocks_per_track_);
  track_live_.assign(tracks, 0);
  track_system_.assign(tracks, 0);
  free_blocks_ = states_.size();
  empty_tracks_ = tracks;
}

void FreeSpaceMap::MarkSystem(uint32_t block) {
  assert(states_[block] == BlockState::kFree);
  states_[block] = BlockState::kSystem;
  const uint64_t track = TrackOfBlock(block);
  if (TrackEmpty(track)) {
    --empty_tracks_;
  }
  --track_free_[track];
  --cyl_free_[CylinderOfTrack(track)];
  ++track_system_[track];
  --free_blocks_;
  ++system_blocks_;
}

void FreeSpaceMap::MarkLive(uint32_t block) {
  assert(states_[block] == BlockState::kFree);
  states_[block] = BlockState::kLive;
  const uint64_t track = TrackOfBlock(block);
  if (TrackEmpty(track)) {
    --empty_tracks_;
  }
  --track_free_[track];
  --cyl_free_[CylinderOfTrack(track)];
  ++track_live_[track];
  --free_blocks_;
  ++live_blocks_;
}

void FreeSpaceMap::Free(uint32_t block) {
  assert(states_[block] == BlockState::kLive);
  states_[block] = BlockState::kFree;
  const uint64_t track = TrackOfBlock(block);
  ++track_free_[track];
  ++cyl_free_[CylinderOfTrack(track)];
  --track_live_[track];
  ++free_blocks_;
  --live_blocks_;
  if (TrackEmpty(track)) {
    ++empty_tracks_;
  }
}

bool FreeSpaceMap::TrackEmpty(uint64_t track) const {
  return track_live_[track] == 0 && track_system_[track] == 0;
}

std::optional<uint32_t> FreeSpaceMap::NearestFreeInTrack(uint64_t track, uint32_t from_sector,
                                                         uint32_t* skip_sectors) const {
  if (track_free_[track] == 0) {
    return std::nullopt;
  }
  const uint32_t base = static_cast<uint32_t>(track * blocks_per_track_);
  // The first block whose start is at or after from_sector (blocks are block_sectors_-aligned).
  const uint32_t first =
      (from_sector + block_sectors_ - 1) / block_sectors_;  // Candidate slot index in track.
  for (uint32_t i = 0; i < blocks_per_track_; ++i) {
    const uint32_t slot = (first + i) % blocks_per_track_;
    if (states_[base + slot] == BlockState::kFree) {
      if (skip_sectors != nullptr) {
        const uint32_t start = slot * block_sectors_;
        *skip_sectors = (start + sectors_per_track_ - from_sector) % sectors_per_track_;
      }
      return base + slot;
    }
  }
  return std::nullopt;
}

uint64_t FreeSpaceMap::TracksBelowFreeFraction(double frac) const {
  uint64_t below = 0;
  for (uint64_t track = 0; track < track_free_.size(); ++track) {
    if (track_system_[track] != 0) {
      continue;  // Reserved tracks are never compaction victims.
    }
    const double free_fraction =
        static_cast<double>(track_free_[track]) / static_cast<double>(blocks_per_track_);
    below += free_fraction < frac ? 1 : 0;
  }
  return below;
}

double FreeSpaceMap::Utilization() const {
  const uint64_t usable = states_.size() - system_blocks_;
  if (usable == 0) {
    return 1.0;
  }
  return static_cast<double>(live_blocks_) / static_cast<double>(usable);
}

}  // namespace vlog::core
