// On-disk format of a virtual-log map sector.
//
// The indirection map is a table of logical→physical block translations, carved into fixed
// "pieces" of kEntriesPerSector entries. Whenever an update changes a translation, the piece
// containing it is written to a free sector near the head; that sector is a node of the virtual
// log. Each node carries two backward pointers (§3.2, Figure 3b):
//   prev   — the previous log tail (the plain backward chain), and
//   bypass — the sector that the *overwritten* (now obsolete) version of this piece pointed to,
//            so the obsolete sector's physical space can be recycled without disconnecting the
//            log: traversal routes around it through the bypass edge.
// Pointers carry the expected sequence number of their target; a recycled target no longer
// matches (wrong magic, CRC, or sequence) and the branch is pruned.
#ifndef SRC_CORE_MAP_SECTOR_H_
#define SRC_CORE_MAP_SECTOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/simdisk/geometry.h"

namespace vlog::core {

// A pointer to a map sector on disk: its LBA plus the sequence number it is expected to hold.
struct DiskPtr {
  simdisk::Lba lba = kNullLba;
  uint64_t seq = 0;

  static constexpr simdisk::Lba kNullLba = ~0ULL;
  bool IsNull() const { return lba == kNullLba; }
  bool operator==(const DiskPtr&) const = default;
};

inline constexpr uint32_t kMapSectorBytes = 512;
inline constexpr uint64_t kMapSectorMagic = 0x564c4f474d415053ULL;  // "VLOGMAPS"
inline constexpr uint32_t kEntriesPerSector = 104;
inline constexpr uint32_t kUnmappedBlock = ~0U;

// The parsed form of one map sector.
struct MapSector {
  uint64_t seq = 0;       // Global, strictly increasing; defines age.
  uint32_t piece = 0;     // Which slice of the indirection map this sector holds.
  uint64_t txn_id = 0;    // 0 = standalone write; otherwise groups an atomic multi-piece commit.
  uint16_t txn_index = 0;
  uint16_t txn_total = 1;
  DiskPtr prev;
  DiskPtr bypass;
  // Physical block index for each logical block of the piece; kUnmappedBlock when unmapped.
  std::vector<uint32_t> entries;

  // Serializes to exactly kMapSectorBytes bytes with a trailing CRC-32C. The CRC is seeded with
  // `epoch` (the format generation): sectors signed under one generation fail the CRC under any
  // other, so a post-reformat scan can never resurrect an old generation's map.
  std::vector<std::byte> Serialize(uint64_t epoch = 0) const;
  // Same bytes as Serialize, written into `out` (>= kMapSectorBytes) — the append path reuses
  // one scratch buffer instead of allocating a fresh vector per map write.
  void SerializeInto(std::span<std::byte> out, uint64_t epoch = 0) const;

  // Cheap pre-filter: does `raw` start with the map-sector magic? Full-disk scans call this
  // per sector before paying for Parse's StatusOr (most sectors are data and fail here);
  // inline because those scans hit every sector on the disk. The magic sits at offset 0.
  static bool HasMagic(std::span<const std::byte> raw) {
    return raw.size() >= kMapSectorBytes &&
           common::LoadLe<uint64_t>(raw, 0) == kMapSectorMagic;
  }

  // Parses and validates magic + CRC (seeded with `epoch`; must match the serializing
  // generation). Returns kCorruption for anything that is not a well-formed map sector of this
  // generation (e.g. a recycled sector now holding file data, or a stale pre-format sector).
  static common::StatusOr<MapSector> Parse(std::span<const std::byte> raw, uint64_t epoch = 0);
};

}  // namespace vlog::core

#endif  // SRC_CORE_MAP_SECTOR_H_
