#include "src/core/compactor.h"

#include <vector>

namespace vlog::core {

Compactor::Compactor(CompactionBackend* backend, simdisk::SimDisk* disk,
                     EagerAllocator* allocator, VirtualLog* vlog, CompactorConfig config,
                     uint64_t seed)
    : backend_(backend),
      disk_(disk),
      allocator_(allocator),
      vlog_(vlog),
      config_(config),
      rng_(seed) {}

uint64_t Compactor::CountEmptyTracks() const {
  const FreeSpaceMap& space = allocator_->space();
  uint64_t empty = 0;
  for (uint64_t t = 0; t < space.total_tracks(); ++t) {
    if (space.TrackEmpty(t)) {
      ++empty;
    }
  }
  return empty;
}

void Compactor::AbandonResume() {
  if (resume_track_.has_value()) {
    resume_track_.reset();
    allocator_->SetExcludedTrack(std::nullopt);
  }
}

bool Compactor::Compactable(uint64_t track) const {
  const FreeSpaceMap& space = allocator_->space();
  if (space.LiveInTrack(track) == 0 || space.TrackHasSystem(track)) {
    return false;
  }
  // Pinned map sectors cannot be moved (their on-disk pointers are load-bearing); skip
  // tracks containing one — the pinned-sector valve bounds how long that lasts.
  const uint32_t base = static_cast<uint32_t>(track * space.blocks_per_track());
  for (uint32_t b = 0; b < space.blocks_per_track(); ++b) {
    if (space.state(base + b) == BlockState::kLive && vlog_->IsPinnedBlock(base + b)) {
      return false;
    }
  }
  return true;
}

std::optional<uint64_t> Compactor::PickVictim() {
  const FreeSpaceMap& space = allocator_->space();
  std::vector<uint64_t> candidates;
  for (uint64_t t = 0; t < space.total_tracks(); ++t) {
    if (Compactable(t)) {
      candidates.push_back(t);
    }
  }
  if (candidates.empty()) {
    return std::nullopt;
  }
  return candidates[rng_.Below(candidates.size())];
}

bool Compactor::CompactTrack(uint64_t track, common::Time deadline, bool preemptible,
                             bool* interrupted) {
  FreeSpaceMap& space = allocator_->space();
  // Writes triggered by the relocation must not land back on the victim, and go into holes of
  // already-occupied tracks (hole-plugging) rather than into fresh fill tracks.
  allocator_->SetExcludedTrack(track);
  allocator_->SetCompactionMode(true);
  const uint32_t base = static_cast<uint32_t>(track * space.blocks_per_track());
  bool ok = true;
  for (uint32_t b = 0; b < space.blocks_per_track() && ok; ++b) {
    if (preemptible && disk_->clock()->Now() >= deadline) {
      *interrupted = true;
      break;
    }
    const uint32_t block = base + b;
    if (space.state(block) != BlockState::kLive) {
      continue;
    }
    if (const auto pieces = vlog_->PiecesAtBlock(block); !pieces.empty()) {
      // A packed block can hold several live map sectors; rewriting each piece obsoletes its
      // sector, and the block frees once the last one leaves.
      for (const uint32_t piece : pieces) {
        ok = backend_->RewritePiece(piece).ok();
        if (!ok) {
          break;
        }
        ++stats_.map_sectors_rewritten;
      }
    } else {
      ok = backend_->RelocateDataBlock(block).ok();
      if (ok) {
        ++stats_.data_blocks_moved;
      }
    }
  }
  allocator_->SetCompactionMode(false);
  if (*interrupted) {
    // Keep the victim excluded from allocation until the next burst resumes (or drops) it.
    // The arm parks on the victim after a relocation, so without this the very holes the
    // burst just opened are the allocator's nearest free blocks — foreground traffic between
    // bursts refills them as fast as bursts drain them and no track ever empties.
    return false;
  }
  allocator_->SetExcludedTrack(std::nullopt);
  if (ok && space.TrackEmpty(track)) {
    allocator_->NoteEmptyTrack(track);
    return true;
  }
  return false;
}

uint32_t Compactor::RunUntil(common::Time deadline) {
  return Run(deadline, /*preemptible=*/false, config_.target_empty_tracks);
}

uint32_t Compactor::RunBounded(common::Time deadline, uint32_t target_empty_tracks) {
  return Run(deadline, /*preemptible=*/true,
             target_empty_tracks == 0 ? config_.target_empty_tracks : target_empty_tracks);
}

uint32_t Compactor::Run(common::Time deadline, bool preemptible, uint32_t target_empty_tracks) {
  ++stats_.idle_runs;
  const common::Time start = disk_->clock()->Now();
  uint32_t emptied = 0;
  // A victim can legitimately fail to empty (e.g. rewriting its map sector pinned the old copy
  // in place); tolerate a bounded number of such failures rather than giving up the interval.
  uint32_t failures = 0;
  while (disk_->clock()->Now() < deadline && failures < 8) {
    if (CountEmptyTracks() >= target_empty_tracks) {
      AbandonResume();
      break;
    }
    // A victim left mid-track by a preempted burst is finished before a new one is drawn, so
    // no rng draw is repeated. The victim stays allocation-excluded between bursts; if it
    // became uncompactable anyway (a checkpoint pinned a map sector into it), abandon it —
    // the relocations already committed stand regardless.
    uint64_t victim;
    if (resume_track_.has_value() && Compactable(*resume_track_)) {
      victim = *resume_track_;
      ++stats_.tracks_resumed;
    } else {
      AbandonResume();
      const auto picked = PickVictim();
      if (!picked) {
        break;
      }
      victim = *picked;
    }
    resume_track_.reset();
    obs::TraceRecorder* tracer = disk_->tracer();
    if (tracer != nullptr) {
      tracer->Annotate(obs::EventType::kCompactStart, obs::Layer::kVld, victim);
    }
    bool interrupted = false;
    const bool compacted = CompactTrack(victim, deadline, preemptible, &interrupted);
    if (tracer != nullptr) {
      tracer->Annotate(obs::EventType::kCompactEnd, obs::Layer::kVld, victim,
                       compacted ? 1 : 0);
    }
    if (interrupted) {
      resume_track_ = victim;
      ++stats_.bursts_preempted;
      break;
    }
    if (compacted) {
      ++stats_.tracks_compacted;
      ++emptied;
      failures = 0;
    } else {
      ++failures;
    }
  }
  stats_.busy_time += disk_->clock()->Now() - start;
  return emptied;
}

}  // namespace vlog::core
