#include "src/core/compactor.h"

#include <vector>

namespace vlog::core {

Compactor::Compactor(CompactionBackend* backend, simdisk::SimDisk* disk,
                     EagerAllocator* allocator, VirtualLog* vlog, CompactorConfig config,
                     uint64_t seed)
    : backend_(backend),
      disk_(disk),
      allocator_(allocator),
      vlog_(vlog),
      config_(config),
      rng_(seed) {}

uint64_t Compactor::CountEmptyTracks() const {
  const FreeSpaceMap& space = allocator_->space();
  uint64_t empty = 0;
  for (uint64_t t = 0; t < space.total_tracks(); ++t) {
    if (space.TrackEmpty(t)) {
      ++empty;
    }
  }
  return empty;
}

std::optional<uint64_t> Compactor::PickVictim() {
  const FreeSpaceMap& space = allocator_->space();
  std::vector<uint64_t> candidates;
  for (uint64_t t = 0; t < space.total_tracks(); ++t) {
    if (space.LiveInTrack(t) == 0 || space.TrackHasSystem(t)) {
      continue;
    }
    // Pinned map sectors cannot be moved (their on-disk pointers are load-bearing); skip
    // tracks containing one — the pinned-sector valve bounds how long that lasts.
    const uint32_t base = static_cast<uint32_t>(t * space.blocks_per_track());
    bool has_pinned = false;
    for (uint32_t b = 0; b < space.blocks_per_track(); ++b) {
      if (space.state(base + b) == BlockState::kLive && vlog_->IsPinnedBlock(base + b)) {
        has_pinned = true;
        break;
      }
    }
    if (has_pinned) {
      continue;
    }
    candidates.push_back(t);
  }
  if (candidates.empty()) {
    return std::nullopt;
  }
  return candidates[rng_.Below(candidates.size())];
}

bool Compactor::CompactTrack(uint64_t track) {
  FreeSpaceMap& space = allocator_->space();
  // Writes triggered by the relocation must not land back on the victim, and go into holes of
  // already-occupied tracks (hole-plugging) rather than into fresh fill tracks.
  allocator_->SetExcludedTrack(track);
  allocator_->SetCompactionMode(true);
  const uint32_t base = static_cast<uint32_t>(track * space.blocks_per_track());
  bool ok = true;
  for (uint32_t b = 0; b < space.blocks_per_track() && ok; ++b) {
    const uint32_t block = base + b;
    if (space.state(block) != BlockState::kLive) {
      continue;
    }
    if (const auto pieces = vlog_->PiecesAtBlock(block); !pieces.empty()) {
      // A packed block can hold several live map sectors; rewriting each piece obsoletes its
      // sector, and the block frees once the last one leaves.
      for (const uint32_t piece : pieces) {
        ok = backend_->RewritePiece(piece).ok();
        if (!ok) {
          break;
        }
        ++stats_.map_sectors_rewritten;
      }
    } else {
      ok = backend_->RelocateDataBlock(block).ok();
      if (ok) {
        ++stats_.data_blocks_moved;
      }
    }
  }
  allocator_->SetCompactionMode(false);
  allocator_->SetExcludedTrack(std::nullopt);
  if (ok && space.TrackEmpty(track)) {
    allocator_->NoteEmptyTrack(track);
    return true;
  }
  return false;
}

uint32_t Compactor::RunUntil(common::Time deadline) {
  ++stats_.idle_runs;
  const common::Time start = disk_->clock()->Now();
  uint32_t emptied = 0;
  // A victim can legitimately fail to empty (e.g. rewriting its map sector pinned the old copy
  // in place); tolerate a bounded number of such failures rather than giving up the interval.
  uint32_t failures = 0;
  while (disk_->clock()->Now() < deadline && failures < 8) {
    if (CountEmptyTracks() >= config_.target_empty_tracks) {
      break;
    }
    const auto victim = PickVictim();
    if (!victim) {
      break;
    }
    obs::TraceRecorder* tracer = disk_->tracer();
    if (tracer != nullptr) {
      tracer->Annotate(obs::EventType::kCompactStart, obs::Layer::kVld, *victim);
    }
    const bool compacted = CompactTrack(*victim);
    if (tracer != nullptr) {
      tracer->Annotate(obs::EventType::kCompactEnd, obs::Layer::kVld, *victim,
                       compacted ? 1 : 0);
    }
    if (compacted) {
      ++stats_.tracks_compacted;
      ++emptied;
      failures = 0;
    } else {
      ++failures;
    }
  }
  stats_.busy_time += disk_->clock()->Now() - start;
  return emptied;
}

}  // namespace vlog::core
