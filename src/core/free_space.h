// Physical-block free-space accounting for the VLD.
//
// The VLD allocates and frees fixed-size physical blocks (4 KB by default — §4.2 chooses the
// file system block size per Appendix A.1). This map tracks per-block state plus per-track
// free/live counts so the eager allocator and the compactor can reason at track granularity.
#ifndef SRC_CORE_FREE_SPACE_H_
#define SRC_CORE_FREE_SPACE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/simdisk/geometry.h"

namespace vlog::core {

enum class BlockState : uint8_t {
  kFree = 0,
  kLive,    // Holds current data or a live map sector.
  kSystem,  // Park sector / checkpoint region; never allocated or compacted.
};

class FreeSpaceMap {
 public:
  FreeSpaceMap(const simdisk::DiskGeometry& geometry, uint32_t block_sectors);

  uint32_t block_sectors() const { return block_sectors_; }
  uint32_t blocks_per_track() const { return blocks_per_track_; }
  uint64_t total_blocks() const { return states_.size(); }
  uint64_t total_tracks() const { return track_free_.size(); }
  uint64_t free_blocks() const { return free_blocks_; }
  uint64_t live_blocks() const { return live_blocks_; }
  uint64_t system_blocks() const { return system_blocks_; }

  simdisk::Lba BlockToLba(uint32_t block) const {
    return static_cast<simdisk::Lba>(block) * block_sectors_;
  }
  uint32_t LbaToBlock(simdisk::Lba lba) const { return static_cast<uint32_t>(lba / block_sectors_); }
  uint64_t TrackOfBlock(uint32_t block) const { return block / blocks_per_track_; }

  BlockState state(uint32_t block) const { return states_[block]; }
  void MarkSystem(uint32_t block);
  void MarkLive(uint32_t block);
  void Free(uint32_t block);

  uint32_t FreeInTrack(uint64_t track) const { return track_free_[track]; }
  uint32_t LiveInTrack(uint64_t track) const { return track_live_[track]; }
  // Free blocks across the whole cylinder, so the allocator's cylinder-seek search can skip
  // fully packed cylinders without probing each of their tracks.
  uint32_t FreeInCylinder(uint32_t cylinder) const { return cyl_free_[cylinder]; }
  // True when the track holds no live and no system blocks.
  bool TrackEmpty(uint64_t track) const;
  // Number of tracks for which TrackEmpty() holds. Maintained incrementally so the allocator's
  // empty-track search can bail out O(1) on a packed disk instead of scanning every track.
  uint64_t EmptyTrackCount() const { return empty_tracks_; }
  // True when any block of the track is reserved (such tracks are not compaction victims).
  bool TrackHasSystem(uint64_t track) const { return track_system_[track] != 0; }

  // The free block in `track` whose starting sector is rotationally nearest at or after
  // `from_sector`, scanning circularly. Returns the block and, via `skip_sectors`, the
  // rotational distance in sectors from `from_sector` to the block's first sector.
  std::optional<uint32_t> NearestFreeInTrack(uint64_t track, uint32_t from_sector,
                                             uint32_t* skip_sectors) const;

  // Fraction of allocatable (non-system) blocks that are live.
  double Utilization() const;

  // Compaction debt: the number of system-free tracks whose free fraction has fallen below
  // `frac` — tracks the fill-to-threshold allocator can no longer use without the compactor
  // first hole-plugging them. Timeline probes sample this per window, so its trajectory shows
  // whether background compaction keeps pace with foreground traffic. O(tracks).
  uint64_t TracksBelowFreeFraction(double frac) const;

 private:
  uint64_t CylinderOfTrack(uint64_t track) const { return track / tracks_per_cylinder_; }

  uint32_t block_sectors_;
  uint32_t blocks_per_track_;
  uint32_t sectors_per_track_;
  uint32_t tracks_per_cylinder_;
  std::vector<BlockState> states_;
  std::vector<uint32_t> cyl_free_;
  std::vector<uint32_t> track_free_;
  std::vector<uint32_t> track_live_;
  std::vector<uint32_t> track_system_;
  uint64_t free_blocks_ = 0;
  uint64_t live_blocks_ = 0;
  uint64_t system_blocks_ = 0;
  uint64_t empty_tracks_ = 0;
};

}  // namespace vlog::core

#endif  // SRC_CORE_FREE_SPACE_H_
