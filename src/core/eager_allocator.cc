#include "src/core/eager_allocator.h"

#include <algorithm>
#include <cmath>

namespace vlog::core {

EagerAllocator::EagerAllocator(simdisk::SimDisk* disk, FreeSpaceMap* space,
                               AllocatorConfig config)
    : disk_(disk), space_(space), config_(config) {}

uint32_t EagerAllocator::ReservedPerTrack() const {
  const double m = config_.track_switch_threshold * space_->blocks_per_track();
  return static_cast<uint32_t>(std::floor(m));
}

std::optional<EagerAllocator::Candidate> EagerAllocator::BestInTrack(
    uint64_t track, common::Duration arm_move) const {
  if (excluded_track_ && *excluded_track_ == track) {
    return std::nullopt;
  }
  if (space_->FreeInTrack(track) == 0) {
    return std::nullopt;  // Skip the head-position math for packed tracks.
  }
  const common::Time ready = disk_->clock()->Now() + arm_move;
  const uint32_t from = disk_->SectorUnderHead(ready);
  uint32_t skip = 0;
  const auto block = space_->NearestFreeInTrack(track, from, &skip);
  if (!block) {
    return std::nullopt;
  }
  const common::Duration rot = disk_->params().SectorTime() * skip;
  return Candidate{*block, arm_move + rot};
}

std::optional<EagerAllocator::Candidate> EagerAllocator::GreedyPick() {
  const auto& geom = disk_->geometry();
  const simdisk::PhysAddr arm = disk_->ArmPosition();
  const uint64_t current_track =
      static_cast<uint64_t>(arm.cylinder) * geom.tracks_per_cylinder + arm.head;

  std::optional<Candidate> best = BestInTrack(current_track, 0);
  if (best) {
    ++stats_.same_track;  // Provisional; corrected below if beaten.
  }

  // Other tracks in the current cylinder, each paying a head switch.
  const uint64_t cyl_base = static_cast<uint64_t>(arm.cylinder) * geom.tracks_per_cylinder;
  bool beaten_by_cylinder = false;
  for (uint32_t h = 0; h < geom.tracks_per_cylinder; ++h) {
    if (h == arm.head) {
      continue;
    }
    const auto cand = BestInTrack(cyl_base + h, disk_->params().head_switch);
    if (cand && (!best || cand->cost < best->cost)) {
      if (best && !beaten_by_cylinder) {
        --stats_.same_track;
      }
      beaten_by_cylinder = true;
      best = cand;
    }
  }
  if (beaten_by_cylinder) {
    ++stats_.same_cylinder;
  }
  if (best) {
    return best;
  }

  // Cylinder seeks in one direction only (wrapping), to the nearest cylinder with free space.
  for (uint32_t d = 1; d <= geom.cylinders; ++d) {
    const uint32_t cyl = (arm.cylinder + d) % geom.cylinders;
    if (space_->FreeInCylinder(cyl) == 0) {
      continue;  // Fully packed cylinder: no track probe can succeed.
    }
    const uint64_t base = static_cast<uint64_t>(cyl) * geom.tracks_per_cylinder;
    // Seek distance honours the one-direction sweep: wrapping costs a long reverse seek.
    const uint32_t dist = cyl >= arm.cylinder ? cyl - arm.cylinder : arm.cylinder - cyl;
    const common::Duration seek = disk_->params().seek.SeekTime(dist);
    std::optional<Candidate> cyl_best;
    for (uint32_t h = 0; h < geom.tracks_per_cylinder; ++h) {
      const common::Duration move =
          std::max(seek, h != arm.head ? disk_->params().head_switch : common::Duration{0});
      const auto cand = BestInTrack(base + h, move);
      if (cand && (!cyl_best || cand->cost < cyl_best->cost)) {
        cyl_best = cand;
      }
    }
    if (cyl_best) {
      ++stats_.cylinder_seeks;
      return cyl_best;
    }
  }
  return std::nullopt;
}

std::optional<uint64_t> EagerAllocator::NextEmptyTrack() {
  while (!empty_tracks_.empty()) {
    const uint64_t t = empty_tracks_.front();
    empty_tracks_.pop_front();
    if (space_->TrackEmpty(t) && !(excluded_track_ && *excluded_track_ == t)) {
      return t;
    }
  }
  // O(1) bail-out on a packed disk: the linear scan below cannot succeed when no track is
  // empty (or the only empty track is the excluded one), which is the steady state once the
  // disk fills — and exactly when this function is called the most.
  if (space_->EmptyTrackCount() == 0 ||
      (space_->EmptyTrackCount() == 1 && excluded_track_ && space_->TrackEmpty(*excluded_track_))) {
    return std::nullopt;
  }
  const uint64_t tracks = space_->total_tracks();
  for (uint64_t i = 0; i < tracks; ++i) {
    const uint64_t t = (scan_cursor_ + i) % tracks;
    if (space_->TrackEmpty(t) && !(excluded_track_ && *excluded_track_ == t)) {
      scan_cursor_ = (t + 1) % tracks;
      return t;
    }
  }
  return std::nullopt;
}

std::optional<EagerAllocator::Candidate> EagerAllocator::FillPick() {
  const uint32_t reserved = ReservedPerTrack();
  if (fill_track_ && (space_->FreeInTrack(*fill_track_) <= reserved ||
                      (excluded_track_ && *excluded_track_ == *fill_track_))) {
    fill_track_.reset();
  }
  if (!fill_track_) {
    fill_track_ = NextEmptyTrack();
    if (fill_track_) {
      ++stats_.fill_track_switches;
    }
  }
  if (!fill_track_) {
    ++stats_.greedy_fallbacks;
    return GreedyPick();
  }
  // Arm move cost to the fill track (0 when already there).
  const common::Duration move = disk_->ArmMoveCost(space_->BlockToLba(
      static_cast<uint32_t>(*fill_track_ * space_->blocks_per_track())));
  auto cand = BestInTrack(*fill_track_, move);
  if (!cand) {
    fill_track_.reset();
    ++stats_.greedy_fallbacks;
    return GreedyPick();
  }
  return cand;
}

std::optional<EagerAllocator::Candidate> EagerAllocator::HolePlugPick() {
  // Pack the fullest tracks first; break ties toward the current fill track's neighbourhood is
  // unnecessary — compaction runs during idle time, so cost matters less than packing quality.
  std::optional<uint64_t> best_track;
  uint32_t best_live = 0;
  const uint32_t bpt = space_->blocks_per_track();
  for (uint64_t t = 0; t < space_->total_tracks(); ++t) {
    if (space_->FreeInTrack(t) == 0 || (excluded_track_ && *excluded_track_ == t)) {
      continue;
    }
    const uint32_t live = space_->LiveInTrack(t);
    if (live == 0 || live >= bpt) {
      continue;  // Keep empty tracks empty; full tracks have no holes.
    }
    if (!best_track || live > best_live) {
      best_track = t;
      best_live = live;
    }
  }
  if (!best_track) {
    return GreedyPick();
  }
  const common::Duration move = disk_->ArmMoveCost(
      space_->BlockToLba(static_cast<uint32_t>(*best_track * bpt)));
  if (auto cand = BestInTrack(*best_track, move)) {
    return cand;
  }
  return GreedyPick();
}

std::optional<uint32_t> EagerAllocator::Allocate() {
  auto cand = compaction_mode_            ? HolePlugPick()
              : config_.fill_to_threshold ? FillPick()
                                          : GreedyPick();
  if (!cand && !compaction_mode_ && excluded_track_.has_value()) {
    // A preempted compaction victim stays excluded between bursts; that must never starve a
    // foreground write whose only remaining free blocks sit in the victim. Lift the exclusion
    // for this one allocation — the compactor revalidates the victim before resuming it.
    const auto saved = excluded_track_;
    excluded_track_.reset();
    cand = config_.fill_to_threshold ? FillPick() : GreedyPick();
    excluded_track_ = saved;
  }
  if (!cand) {
    return std::nullopt;
  }
  space_->MarkLive(cand->block);
  ++stats_.allocations;
  stats_.estimated_locate += cand->cost;
  return cand->block;
}

void EagerAllocator::NoteEmptyTrack(uint64_t track) { empty_tracks_.push_back(track); }

}  // namespace vlog::core
