#include "src/simdisk/request_queue.h"

#include <utility>

namespace vlog::simdisk {

common::StatusOr<uint64_t> RequestQueue::Enqueue(Request req) {
  if (!CanSubmit()) {
    return common::FailedPrecondition("request queue: full");
  }
  const uint64_t id = next_id_++;
  req.id = id;
  req.submit_time = disk_->clock()->Now();
  if (obs::TraceRecorder* tracer = disk_->tracer(); tracer != nullptr) {
    // If an upper layer already opened a span for this request (e.g. a file system issuing a
    // queued read), inherit it; otherwise the queue is the root and opens a detached span that
    // ServiceOne re-enters and closes at completion time.
    req.span = tracer->current_span() != 0
                   ? tracer->current_span()
                   : tracer->BeginSpanDetached(obs::Layer::kQueue, req.lba, req.sectors);
  }
  pending_.push_back(std::move(req));
  return id;
}

common::StatusOr<uint64_t> RequestQueue::SubmitRead(Lba lba, uint64_t sectors) {
  Request req;
  req.is_write = false;
  req.lba = lba;
  req.sectors = sectors;
  return Enqueue(std::move(req));
}

common::StatusOr<uint64_t> RequestQueue::SubmitWrite(Lba lba, std::span<const std::byte> data) {
  Request req;
  req.is_write = true;
  req.lba = lba;
  req.sectors = data.size() / disk_->SectorBytes();
  req.data.assign(data.begin(), data.end());
  return Enqueue(std::move(req));
}

size_t RequestQueue::PickNext() const {
  if (config_.policy == SchedulerPolicy::kFcfs || pending_.size() == 1) {
    return 0;
  }
  // SPTF: cheapest seek + rotational wait from the current arm position and clock phase. Ties
  // break toward the older request, which also keeps the policy starvation-averse in practice.
  const common::Time now = disk_->clock()->Now();
  size_t best = 0;
  common::Duration best_cost = disk_->EstimatePosition(pending_[0].lba, now);
  for (size_t i = 1; i < pending_.size(); ++i) {
    const common::Duration cost = disk_->EstimatePosition(pending_[i].lba, now);
    if (cost < best_cost) {
      best = i;
      best_cost = cost;
    }
  }
  return best;
}

common::StatusOr<IoCompletion> RequestQueue::ServiceOne() {
  if (pending_.empty()) {
    return common::FailedPrecondition("request queue: empty");
  }
  const size_t index = PickNext();
  Request req = std::move(pending_[index]);
  pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(index));

  IoCompletion done;
  done.id = req.id;
  done.is_write = req.is_write;
  done.lba = req.lba;
  done.submit_time = req.submit_time;
  done.span_id = req.span;
  // Controller overhead, pipelined with earlier media work; then the media access itself
  // (internal = no second SCSI charge). All disk events land on the request's own span.
  obs::SpanScope span(req.span != 0 ? disk_->tracer() : nullptr, req.span);
  ctrl_free_ = disk_->ChargeQueuedCommand(ctrl_free_, req.submit_time);
  done.dispatch_time = disk_->clock()->Now();
  if (req.is_write) {
    done.status = disk_->InternalWrite(req.lba, req.data);
  } else {
    done.data.resize(req.sectors * disk_->SectorBytes());
    done.status = disk_->InternalRead(req.lba, done.data);
  }
  done.complete_time = disk_->clock()->Now();
  if (obs::TraceRecorder* tracer = disk_->tracer();
      tracer != nullptr && req.span != 0 && tracer->span(req.span) != nullptr &&
      tracer->span(req.span)->open && tracer->span(req.span)->layer == obs::Layer::kQueue) {
    // Close queue-rooted spans here; spans opened by upper layers are closed by their owners.
    tracer->EndSpan(req.span);
  }
  return done;
}

common::StatusOr<std::vector<IoCompletion>> RequestQueue::Drain() {
  std::vector<IoCompletion> completions;
  completions.reserve(pending_.size());
  while (!pending_.empty()) {
    ASSIGN_OR_RETURN(IoCompletion done, ServiceOne());
    completions.push_back(std::move(done));
  }
  return completions;
}

}  // namespace vlog::simdisk
