#include "src/simdisk/request_queue.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace vlog::simdisk {

common::StatusOr<uint64_t> RequestQueue::Enqueue(Request req) {
  if (!CanSubmit()) {
    return common::FailedPrecondition("request queue: full");
  }
  const uint64_t id = next_id_++;
  req.id = id;
  req.submit_time = disk_->clock()->Now();
  req.phys = disk_->geometry().ToPhys(req.lba);
  if (obs::TraceRecorder* tracer = disk_->tracer(); tracer != nullptr) {
    // If an upper layer already opened a span for this request (e.g. a file system issuing a
    // queued read), inherit it; otherwise the queue is the root and opens a detached span that
    // ServiceOne re-enters and closes at completion time.
    req.span = tracer->current_span() != 0
                   ? tracer->current_span()
                   : tracer->BeginSpanDetached(
                         obs::Layer::kQueue, req.lba, req.sectors,
                         req.is_write ? obs::SpanKind::kWrite : obs::SpanKind::kRead);
  }
  pending_.push_back(std::move(req));
  return id;
}

common::StatusOr<uint64_t> RequestQueue::SubmitRead(Lba lba, uint64_t sectors) {
  Request req;
  req.is_write = false;
  req.lba = lba;
  req.sectors = sectors;
  return Enqueue(std::move(req));
}

common::StatusOr<uint64_t> RequestQueue::SubmitWrite(Lba lba, std::span<const std::byte> data) {
  Request req;
  req.is_write = true;
  req.lba = lba;
  req.sectors = data.size() / disk_->SectorBytes();
  req.data.assign(data.begin(), data.end());
  return Enqueue(std::move(req));
}

bool RequestQueue::Eligible(size_t index) const {
  if (!pending_[index].is_write) {
    return true;
  }
  for (size_t j = 0; j < index; ++j) {
    if (Overlaps(pending_[index], pending_[j])) {
      return false;
    }
  }
  return true;
}

size_t RequestQueue::PickNext() {
  if (config_.policy == SchedulerPolicy::kFcfs || pending_.size() == 1) {
    return 0;
  }
  const common::Time now = disk_->clock()->Now();
  // Bounded-age promotion: the oldest request (front of pending_, which is submission order
  // and always hazard-eligible) jumps the positional ordering once it has waited long enough.
  if (config_.starvation_bound > 0 &&
      now - pending_[0].submit_time >= config_.starvation_bound) {
    return 0;
  }
  // SPTF: cheapest seek + rotational wait from the current arm position and clock phase, over
  // the hazard-eligible requests. Ties break toward the older request, which also keeps the
  // policy starvation-averse in practice. The seek + head-switch component is memoized per
  // request against the disk's arm-position epoch (the arm only moves when a request is
  // serviced), so a dispatch pays one curve evaluation per candidate only after a seek — the
  // rotational wait is recomputed from the cached geometry decomposition every time, because
  // it depends on the clock. Identical arithmetic to EstimatePosition(lba, now).
  const uint64_t arm_epoch = disk_->arm_epoch();
  size_t best = pending_.size();
  common::Duration best_cost = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (!Eligible(i)) {
      continue;
    }
    Request& req = pending_[i];
    if (req.move_cost < 0 || req.move_epoch != arm_epoch) {
      req.move_epoch = arm_epoch;
      req.move_cost = disk_->ArmMoveCost(req.phys);
    }
    const common::Duration cost =
        req.move_cost + disk_->RotationalWait(req.phys.sector, now + req.move_cost);
    if (best == pending_.size() || cost < best_cost) {
      best = i;
      best_cost = cost;
    }
  }
  // pending_[0] has no older requests, so at least one request is always eligible.
  return best;
}

common::StatusOr<IoCompletion> RequestQueue::ServiceOne() {
  if (pending_.empty()) {
    return common::FailedPrecondition("request queue: empty");
  }
  const size_t index = PickNext();
  Request req = std::move(pending_[index]);
  pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(index));

  IoCompletion done;
  done.id = req.id;
  done.is_write = req.is_write;
  done.lba = req.lba;
  done.submit_time = req.submit_time;
  done.span_id = req.span;
  // Controller overhead, pipelined with earlier media work; then the media access itself
  // (internal = no second SCSI charge). All disk events land on the request's own span.
  obs::SpanScope span(req.span != 0 ? disk_->tracer() : nullptr, req.span);
  ctrl_free_ = disk_->ChargeQueuedCommand(ctrl_free_, req.submit_time);
  done.dispatch_time = disk_->clock()->Now();
  if (req.is_write) {
    done.status = disk_->InternalWrite(req.lba, req.data);
  } else {
    done.data.resize(req.sectors * disk_->SectorBytes());
    done.status = disk_->InternalRead(req.lba, done.data);
    if (done.status.ok()) {
      // RAW forwarding: sectors covered by older still-pending writes are served from their
      // payloads (newest older write wins — pending_ keeps submission order). The media access
      // above still pays the mechanical time for the whole extent; only the bytes change.
      const uint32_t sector_bytes = disk_->SectorBytes();
      std::vector<bool> forwarded(req.sectors, false);
      for (const Request& w : pending_) {
        if (!w.is_write || w.id > req.id || !Overlaps(w, req)) {
          continue;
        }
        const Lba lo = std::max(w.lba, req.lba);
        const Lba hi = std::min(w.lba + w.sectors, req.lba + req.sectors);
        std::memcpy(done.data.data() + (lo - req.lba) * sector_bytes,
                    w.data.data() + (lo - w.lba) * sector_bytes, (hi - lo) * sector_bytes);
        for (Lba s = lo; s < hi; ++s) {
          forwarded[s - req.lba] = true;
        }
      }
      Lba first = 0;
      for (uint64_t s = 0; s < req.sectors; ++s) {
        if (forwarded[s]) {
          if (done.forwarded_sectors == 0) {
            first = req.lba + s;
          }
          ++done.forwarded_sectors;
        }
      }
      if (done.forwarded_sectors > 0 && disk_->tracer() != nullptr) {
        disk_->tracer()->Annotate(obs::EventType::kReadForward, obs::Layer::kQueue, first,
                                  done.forwarded_sectors);
      }
    }
  }
  done.complete_time = disk_->clock()->Now();
  if (obs::TraceRecorder* tracer = disk_->tracer();
      tracer != nullptr && req.span != 0 && tracer->span(req.span) != nullptr &&
      tracer->span(req.span)->open && tracer->span(req.span)->layer == obs::Layer::kQueue) {
    // Close queue-rooted spans here; spans opened by upper layers are closed by their owners.
    tracer->EndSpan(req.span);
  }
  return done;
}

common::StatusOr<std::vector<IoCompletion>> RequestQueue::Drain() {
  std::vector<IoCompletion> completions;
  completions.reserve(pending_.size());
  while (!pending_.empty()) {
    ASSIGN_OR_RETURN(IoCompletion done, ServiceOne());
    completions.push_back(std::move(done));
  }
  return completions;
}

}  // namespace vlog::simdisk
