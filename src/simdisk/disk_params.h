// Mechanical and interface timing parameters for the simulated disks, with presets matching
// Table 1 of the paper (HP97560 and Seagate ST19101).
#ifndef SRC_SIMDISK_DISK_PARAMS_H_
#define SRC_SIMDISK_DISK_PARAMS_H_

#include <string>

#include "src/common/time.h"
#include "src/simdisk/geometry.h"
#include "src/simdisk/write_cache.h"

namespace vlog::simdisk {

// Two-regime seek curve: short seeks follow a + b*sqrt(d), long seeks c + e*d (d in cylinders),
// the standard form from Ruemmler & Wilkes used by the Dartmouth HP97560 model.
struct SeekCurve {
  double short_a_ms = 0;
  double short_b_ms = 0;
  double long_c_ms = 0;
  double long_e_ms = 0;
  uint32_t boundary_cylinders = 0;

  common::Duration SeekTime(uint32_t distance_cylinders) const;
};

struct DiskParams {
  std::string name;
  DiskGeometry geometry;
  double rpm = 0;
  SeekCurve seek;
  common::Duration head_switch = 0;    // Surface change within a cylinder.
  common::Duration scsi_overhead = 0;  // Per host command processing cost ("o" in Table 1).
  double bus_mb_per_s = 0;             // Host interface bandwidth, used for track-buffer hits.
  // Volatile write-back cache. Disabled (capacity 0) by default: the paper's model commits
  // every write before acknowledging it, and all presets preserve that.
  WriteCacheParams cache;

  common::Duration RotationPeriod() const {
    return static_cast<common::Duration>(60.0e9 / rpm);
  }
  common::Duration SectorTime() const {
    return RotationPeriod() / geometry.sectors_per_track;
  }
  common::Duration BusTransferTime(uint64_t bytes) const {
    return static_cast<common::Duration>(static_cast<double>(bytes) / (bus_mb_per_s * 1e6) * 1e9);
  }
  // Media bandwidth in MB/s (a full track per rotation).
  double MediaBandwidthMbPerS() const {
    const double track_bytes =
        static_cast<double>(geometry.sectors_per_track) * geometry.sector_bytes;
    return track_bytes / common::ToSeconds(RotationPeriod()) / 1e6;
  }
};

// HP97560: 1.3 GB, 4002 RPM, 72 sectors/track, 19 surfaces, 1962 cylinders. Seek curve from the
// Dartmouth/Kotz model; SCSI overhead and head switch from Table 1.
DiskParams Hp97560();

// Seagate ST19101 (Cheetah 9LP class): 10000 RPM, 256 sectors/track, 16 surfaces. The paper's
// own model is "a coarse approximation" (single zone); this preset matches that fidelity.
DiskParams SeagateSt19101();

// Returns `base` truncated to `cylinders` cylinders — the paper simulates 36 HP97560 cylinders
// and 11 ST19101 cylinders to fit the 24 MB kernel ramdisk.
DiskParams Truncated(DiskParams base, uint32_t cylinders);

}  // namespace vlog::simdisk

#endif  // SRC_SIMDISK_DISK_PARAMS_H_
