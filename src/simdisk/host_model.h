// Host CPU cost model.
//
// The paper runs on a 50 MHz SPARCstation-10 and a 167 MHz UltraSPARC-170; Figure 9 shows that
// host ("other") processing is a large share of virtual-log latency on the slow host. We model
// the host by charging per-syscall, per-block, and per-byte CPU time to the shared virtual
// clock. The UltraSPARC preset scales the SPARCstation costs by the 50/167 clock ratio, the
// same first-order assumption the paper's §5.4 narrative relies on.
#ifndef SRC_SIMDISK_HOST_MODEL_H_
#define SRC_SIMDISK_HOST_MODEL_H_

#include <string>

#include "src/common/time.h"
#include "src/obs/trace.h"

namespace vlog::simdisk {

struct HostParams {
  std::string name;
  common::Duration syscall_overhead = 0;   // Entry/exit of a file system call.
  common::Duration per_block_fs_cpu = 0;   // FS code per 4 KB block handled (lookup, alloc...).
  common::Duration per_kb_copy = 0;        // Memory copy between user and kernel buffers.
};

// 50 MHz SPARCstation-10. Calibrated so that the UFS synchronous-write path costs roughly 1 ms
// of host CPU, which reproduces the Figure 9 "other" share and the Table 2 speed-up trend.
inline HostParams SparcStation10() {
  return HostParams{.name = "SPARCstation-10",
                    .syscall_overhead = common::Microseconds(100),
                    .per_block_fs_cpu = common::Microseconds(350),
                    .per_kb_copy = common::Microseconds(12)};
}

// 167 MHz UltraSPARC-170: the SPARCstation-10 costs scaled by 50/167.
inline HostParams UltraSparc170() {
  const double scale = 50.0 / 167.0;
  return HostParams{
      .name = "UltraSPARC-170",
      .syscall_overhead =
          static_cast<common::Duration>(common::Microseconds(100) * scale),
      .per_block_fs_cpu =
          static_cast<common::Duration>(common::Microseconds(350) * scale),
      .per_kb_copy = static_cast<common::Duration>(common::Microseconds(12) * scale)};
}

// A free host, for experiments that isolate disk behaviour.
inline HostParams ZeroCostHost() { return HostParams{.name = "zero-cost"}; }

// Charges host CPU time to the virtual clock and accounts it for the Figure 9 breakdown.
class HostModel {
 public:
  HostModel(HostParams params, common::Clock* clock)
      : params_(std::move(params)), clock_(clock) {}

  void ChargeSyscall() { Charge(params_.syscall_overhead); }
  void ChargeBlocks(uint64_t blocks) {
    Charge(params_.per_block_fs_cpu * static_cast<common::Duration>(blocks));
  }
  void ChargeCopy(uint64_t bytes) {
    Charge(params_.per_kb_copy * static_cast<common::Duration>(bytes) / 1024);
  }
  void Charge(common::Duration d) {
    if (d > 0 && tracer_ != nullptr) {
      tracer_->Charge(obs::EventType::kHostCpu, obs::Layer::kHost, d);
    }
    clock_->Advance(d);
    total_charged_ += d > 0 ? d : 0;
  }

  common::Duration total_charged() const { return total_charged_; }
  const HostParams& params() const { return params_; }
  common::Clock* clock() { return clock_; }

  // The HostModel sits above any BlockDevice (not necessarily a SimDisk), so it carries its
  // own recorder pointer; Platform::AttachTracer wires it to the same recorder as the disk.
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }
  obs::TraceRecorder* tracer() const { return tracer_; }

 private:
  HostParams params_;
  common::Clock* clock_;
  common::Duration total_charged_ = 0;
  obs::TraceRecorder* tracer_ = nullptr;
};

}  // namespace vlog::simdisk

#endif  // SRC_SIMDISK_HOST_MODEL_H_
