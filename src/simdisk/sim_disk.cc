#include "src/simdisk/sim_disk.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/rng.h"
#include "src/obs/timeline.h"

namespace vlog::simdisk {

SimDisk::SimDisk(DiskParams params, common::Clock* clock)
    : params_(std::move(params)), clock_(clock), cache_(params_.cache) {
  media_.resize(params_.geometry.CapacityBytes());
}

SimDisk::SimDisk(DiskParams params, common::Clock* clock, std::vector<std::byte> media)
    : params_(std::move(params)), clock_(clock), media_(std::move(media)), cache_(params_.cache) {
  media_.resize(params_.geometry.CapacityBytes());
}

void SimDisk::RegisterTimelineProbes(obs::Timeline& timeline, const std::string& prefix) const {
  // Counters: per-window deltas give sector throughput; busy-time deltas divided by the window
  // width give mechanical (media) and controller (bus) utilization.
  timeline.AddCounter(prefix + "disk.sectors_read", [this] { return stats_.sectors_read; });
  timeline.AddCounter(prefix + "disk.sectors_written", [this] { return stats_.sectors_written; });
  timeline.AddCounter(prefix + "disk.mech_busy_ns", [this] {
    const LatencyBreakdown& b = stats_.breakdown;
    return static_cast<uint64_t>(b.locate + b.transfer + b.flush);
  });
  timeline.AddCounter(prefix + "disk.ctrl_busy_ns", [this] {
    return static_cast<uint64_t>(stats_.breakdown.scsi_overhead);
  });
  // Gauges: instantaneous write-cache pressure at each window close.
  timeline.AddGauge(prefix + "disk.cache_dirty_sectors",
                    [this] { return cache_.dirty_sectors(); });
  timeline.AddGauge(prefix + "disk.cache_dirty_ppm", [this]() -> uint64_t {
    const uint64_t capacity = params_.cache.capacity_sectors;
    if (capacity == 0) {
      return 0;
    }
    return cache_.dirty_sectors() * 1000000 / capacity;
  });
}

common::Status SimDisk::CheckRange(Lba lba, size_t bytes, const char* op) const {
  const uint32_t sector_bytes = params_.geometry.sector_bytes;
  if (bytes == 0 || bytes % sector_bytes != 0) {
    return common::InvalidArgument(std::string(op) + ": size not a whole number of sectors");
  }
  const uint64_t sectors = bytes / sector_bytes;
  if (lba + sectors > params_.geometry.TotalSectors()) {
    return common::InvalidArgument(std::string(op) + ": out of range");
  }
  return common::OkStatus();
}

uint32_t SimDisk::SectorUnderHead(common::Time t) const {
  const common::Duration period = params_.RotationPeriod();
  const common::Duration phase = t % period;
  const uint32_t n = params_.geometry.sectors_per_track;
  return static_cast<uint32_t>(static_cast<double>(phase) / static_cast<double>(period) *
                               static_cast<double>(n)) %
         n;
}

common::Duration SimDisk::RotationalWait(uint32_t sector, common::Time at) const {
  const common::Duration period = params_.RotationPeriod();
  const uint32_t n = params_.geometry.sectors_per_track;
  // Time at which the leading edge of `sector` is next under the head.
  const common::Duration sector_start =
      static_cast<common::Duration>(static_cast<double>(period) * sector / n);
  const common::Duration phase = at % period;
  common::Duration wait = sector_start - phase;
  if (wait < 0) {
    wait += period;
  }
  return wait;
}

common::Duration SimDisk::ArmMoveCost(const PhysAddr& target) const {
  const uint32_t dist = target.cylinder > arm_.cylinder ? target.cylinder - arm_.cylinder
                                                        : arm_.cylinder - target.cylinder;
  const common::Duration seek = params_.seek.SeekTime(dist);
  const common::Duration head_switch = target.head != arm_.head ? params_.head_switch : 0;
  // Head selection overlaps arm motion; the settle is bounded by the longer of the two.
  return std::max(seek, head_switch);
}

common::Duration SimDisk::ArmMoveCost(Lba lba) const {
  return ArmMoveCost(params_.geometry.ToPhys(lba));
}

common::Duration SimDisk::EstimatePosition(const PhysAddr& target, common::Time at) const {
  const common::Duration move = ArmMoveCost(target);
  return move + RotationalWait(target.sector, at + move);
}

common::Duration SimDisk::EstimatePosition(Lba lba, common::Time at) const {
  return EstimatePosition(params_.geometry.ToPhys(lba), at);
}

void SimDisk::Position(Lba lba, bool sequential) {
  const PhysAddr target = params_.geometry.ToPhys(lba);
  const uint32_t dist = target.cylinder > arm_.cylinder ? target.cylinder - arm_.cylinder
                                                        : arm_.cylinder - target.cylinder;
  const common::Duration seek = params_.seek.SeekTime(dist);
  const common::Duration move = std::max(
      seek, target.head != arm_.head ? params_.head_switch : common::Duration{0});
  if (move > 0) {
    ++stats_.seeks;
  }
  common::Duration wait = 0;
  if (!sequential) {
    wait = RotationalWait(target.sector, clock_->Now() + move);
  }
  if (tracer_ != nullptr) {
    // Head selection overlaps the seek, so only the settle in excess of the seek is charged as
    // head-switch time — the three events sum to exactly this Position call's clock advance.
    if (seek > 0) {
      tracer_->Charge(obs::EventType::kSeek, obs::Layer::kDisk, seek, lba);
    }
    if (move > seek) {
      tracer_->Charge(obs::EventType::kHeadSwitch, obs::Layer::kDisk, move - seek, lba);
    }
    if (wait > 0) {
      tracer_->Charge(obs::EventType::kRotation, obs::Layer::kDisk, wait, lba);
    }
  }
  clock_->Advance(move + wait);
  last_request_.locate += move + wait;
  if (arm_.cylinder != target.cylinder || arm_.head != target.head) {
    arm_.cylinder = target.cylinder;
    arm_.head = target.head;
    ++arm_epoch_;
  }
}

void SimDisk::CatchUpReadAhead() {
  if (!buffer_.valid() || read_ahead_policy_ != ReadAheadPolicy::kStandard) {
    return;
  }
  if (read_ahead_pos_ >= read_ahead_track_end_) {
    return;
  }
  const common::Duration elapsed = clock_->Now() - last_read_end_;
  const uint64_t passed = static_cast<uint64_t>(elapsed / params_.SectorTime());
  const Lba new_pos = std::min<Lba>(read_ahead_pos_ + passed, read_ahead_track_end_);
  buffer_.ExtendTo(new_pos);
  read_ahead_pos_ = new_pos;
  last_read_end_ = clock_->Now();
}

void SimDisk::Access(Lba lba, uint64_t sectors, bool is_write, bool host_command) {
  last_request_ = LatencyBreakdown{};
  if (host_command) {
    if (tracer_ != nullptr) {
      tracer_->Charge(obs::EventType::kController, obs::Layer::kDisk, params_.scsi_overhead,
                      lba, sectors);
    }
    clock_->Advance(params_.scsi_overhead);
    last_request_.scsi_overhead = params_.scsi_overhead;
  }

  if (is_write) {
    buffer_.InvalidateIfOverlaps(lba, sectors);
    ++stats_.write_requests;
    stats_.sectors_written += sectors;
  } else {
    CatchUpReadAhead();
    ++stats_.read_requests;
    stats_.sectors_read += sectors;
    if (cache_.enabled() && cache_.Contains(lba, sectors)) {
      // Every requested sector is dirty in the write cache, i.e. still in controller RAM: the
      // read is served over the bus without touching the media.
      const common::Duration bus =
          params_.BusTransferTime(sectors * params_.geometry.sector_bytes);
      if (tracer_ != nullptr) {
        tracer_->Charge(obs::EventType::kBusXfer, obs::Layer::kDisk, bus, lba, sectors);
      }
      clock_->Advance(bus);
      last_request_.transfer = bus;
      ++stats_.cache_read_hits;
      stats_.breakdown += last_request_;
      return;
    }
    if (buffer_.Contains(lba, sectors)) {
      // Served from the track buffer: bus transfer only.
      const common::Duration bus =
          params_.BusTransferTime(sectors * params_.geometry.sector_bytes);
      if (tracer_ != nullptr) {
        tracer_->Charge(obs::EventType::kBusXfer, obs::Layer::kDisk, bus, lba, sectors);
      }
      clock_->Advance(bus);
      last_request_.transfer = bus;
      ++stats_.buffer_hits;
      if (read_ahead_policy_ == ReadAheadPolicy::kStandard) {
        buffer_.DiscardBelow(lba);
      }
      stats_.breakdown += last_request_;
      return;
    }
  }

  // Mechanical access, one contiguous run per track.
  const uint32_t n = params_.geometry.sectors_per_track;
  Lba pos = lba;
  uint64_t remaining = sectors;
  bool first = true;
  while (remaining > 0) {
    const uint64_t track = params_.geometry.TrackOf(pos);
    const Lba track_end = params_.geometry.TrackStart(track) + n;
    const uint64_t run = std::min<uint64_t>(remaining, track_end - pos);
    Position(pos, /*sequential=*/!first);
    const common::Duration xfer = params_.SectorTime() * static_cast<common::Duration>(run);
    if (tracer_ != nullptr) {
      tracer_->Charge(obs::EventType::kMediaXfer, obs::Layer::kDisk, xfer, pos, run);
    }
    clock_->Advance(xfer);
    last_request_.transfer += xfer;
    pos += run;
    remaining -= run;
    first = false;
  }

  if (!is_write) {
    const uint64_t last_track = params_.geometry.TrackOf(pos - 1);
    const Lba last_track_start = params_.geometry.TrackStart(last_track);
    if (read_ahead_policy_ == ReadAheadPolicy::kAggressiveTrack) {
      // VLD policy: the whole target track is prefetched and retained until delivered.
      buffer_.SetRange(last_track_start, last_track_start + n);
      read_ahead_pos_ = last_track_start + n;
    } else {
      // Standard policy: cache from the request start; read-ahead continues in background.
      buffer_.SetRange(lba, pos);
      read_ahead_pos_ = pos;
    }
    read_ahead_track_end_ = last_track_start + n;
    last_read_end_ = clock_->Now();
  }
  stats_.breakdown += last_request_;
}

common::Status SimDisk::Read(Lba lba, std::span<std::byte> out) {
  RETURN_IF_ERROR(CheckRange(lba, out.size(), "Read"));
  Access(lba, out.size() / params_.geometry.sector_bytes, /*is_write=*/false,
         /*host_command=*/true);
  PeekMedia(lba, out);
  return common::OkStatus();
}

common::Status SimDisk::ApplyWriteFault(Lba lba, std::span<const std::byte> in) {
  if (!write_fault_) {
    return common::OkStatus();
  }
  if (write_fault_fired_) {
    return common::IoError("injected write failure (simulated power cut)");
  }
  if (write_fault_->after_writes > 0) {
    --write_fault_->after_writes;
    return common::OkStatus();
  }
  write_fault_fired_ = true;
  // The head is mid-operation when power drops: persist whatever the fault mode says survived.
  const uint32_t sector_bytes = params_.geometry.sector_bytes;
  const uint64_t sectors = in.size() / sector_bytes;
  switch (write_fault_->mode) {
    case WriteFaultMode::kFailStop:
      break;
    case WriteFaultMode::kTornPrefix: {
      const uint64_t keep = std::min<uint64_t>(write_fault_->keep_sectors, sectors);
      PokeMedia(lba, in.subspan(0, keep * sector_bytes));
      break;
    }
    case WriteFaultMode::kTornSuffix: {
      const uint64_t keep = std::min<uint64_t>(write_fault_->keep_sectors, sectors);
      PokeMedia(lba + (sectors - keep), in.subspan((sectors - keep) * sector_bytes));
      break;
    }
    case WriteFaultMode::kTornRandom: {
      common::Rng rng(write_fault_->seed);
      for (uint64_t s = 0; s < sectors; ++s) {
        if (rng.Chance(0.5)) {
          PokeMedia(lba + s, in.subspan(s * sector_bytes, sector_bytes));
        }
      }
      break;
    }
    case WriteFaultMode::kCorruptTail: {
      PokeMedia(lba, in);
      std::vector<std::byte> tail(in.end() - sector_bytes, in.end());
      common::Rng rng(write_fault_->seed);
      const uint64_t flips = 1 + rng.Below(8);
      for (uint64_t i = 0; i < flips; ++i) {
        tail[rng.Below(sector_bytes)] ^= static_cast<std::byte>(1 + rng.Below(255));
      }
      PokeMedia(lba + sectors - 1, tail);
      break;
    }
  }
  return common::IoError("injected write failure (simulated power cut)");
}

common::Status SimDisk::Write(Lba lba, std::span<const std::byte> in) {
  if (cache_.enabled()) {
    return WriteCached(lba, in, /*host_command=*/true);
  }
  return WriteThrough(lba, in, /*host_command=*/true, /*fua=*/false);
}

common::Status SimDisk::WriteFua(Lba lba, std::span<const std::byte> in) {
  return WriteThrough(lba, in, /*host_command=*/true, /*fua=*/true);
}

common::Status SimDisk::InternalRead(Lba lba, std::span<std::byte> out) {
  RETURN_IF_ERROR(CheckRange(lba, out.size(), "InternalRead"));
  Access(lba, out.size() / params_.geometry.sector_bytes, /*is_write=*/false,
         /*host_command=*/false);
  PeekMedia(lba, out);
  return common::OkStatus();
}

std::span<const std::byte> SimDisk::InternalReadView(Lba lba, uint64_t sectors) {
  const uint64_t bytes = sectors * params_.geometry.sector_bytes;
  if (!CheckRange(lba, bytes, "InternalRead").ok()) {
    return {};
  }
  Access(lba, sectors, /*is_write=*/false, /*host_command=*/false);
  return std::span<const std::byte>(media_).subspan(lba * params_.geometry.sector_bytes, bytes);
}

common::Status SimDisk::InternalWrite(Lba lba, std::span<const std::byte> in) {
  if (cache_.enabled()) {
    return WriteCached(lba, in, /*host_command=*/false);
  }
  return WriteThrough(lba, in, /*host_command=*/false, /*fua=*/false);
}

common::Status SimDisk::InternalWriteFua(Lba lba, std::span<const std::byte> in) {
  return WriteThrough(lba, in, /*host_command=*/false, /*fua=*/true);
}

common::Status SimDisk::WriteThrough(Lba lba, std::span<const std::byte> in, bool host_command,
                                     bool fua) {
  RETURN_IF_ERROR(CheckRange(lba, in.size(), host_command ? "Write" : "InternalWrite"));
  RETURN_IF_ERROR(ApplyWriteFault(lba, in));
  const uint64_t sectors = in.size() / params_.geometry.sector_bytes;
  if (fua) {
    ++stats_.fua_writes;
    // The media copy written below supersedes any dirty cached copy of these sectors.
    cache_.Discard(lba, sectors);
  }
  Access(lba, sectors, /*is_write=*/true, host_command);
  PokeMedia(lba, in);
  if (write_observer_) {
    write_observer_(lba, in, /*durable=*/true);
  }
  return common::OkStatus();
}

common::Status SimDisk::WriteCached(Lba lba, std::span<const std::byte> in, bool host_command) {
  RETURN_IF_ERROR(CheckRange(lba, in.size(), host_command ? "Write" : "InternalWrite"));
  RETURN_IF_ERROR(ApplyWriteFault(lba, in));
  const uint64_t sectors = in.size() / params_.geometry.sector_bytes;
  last_request_ = LatencyBreakdown{};
  if (host_command) {
    // Acknowledged from controller RAM: command processing plus the bus transfer, no
    // mechanical work. Internal (firmware) writes into the cache are free.
    if (tracer_ != nullptr) {
      tracer_->Charge(obs::EventType::kController, obs::Layer::kDisk, params_.scsi_overhead,
                      lba, sectors);
    }
    clock_->Advance(params_.scsi_overhead);
    last_request_.scsi_overhead = params_.scsi_overhead;
    const common::Duration bus = params_.BusTransferTime(in.size());
    if (tracer_ != nullptr) {
      tracer_->Charge(obs::EventType::kBusXfer, obs::Layer::kDisk, bus, lba, sectors);
    }
    clock_->Advance(bus);
    last_request_.transfer = bus;
  }
  buffer_.InvalidateIfOverlaps(lba, sectors);
  ++stats_.write_requests;
  stats_.sectors_written += sectors;
  ++stats_.cached_writes;
  // The media array is the read path's source of truth, so the data lands there at ack time;
  // the cache only tracks which sectors would still be volatile after a power cut.
  PokeMedia(lba, in);
  const bool over_capacity = cache_.Insert(lba, sectors);
  if (write_observer_) {
    write_observer_(lba, in, /*durable=*/false);
  }
  if (over_capacity) {
    // Capacity pressure: the drive destages the whole dirty set before accepting more work.
    last_request_.flush = DrainCache();
  }
  stats_.breakdown += last_request_;
  return common::OkStatus();
}

common::Duration SimDisk::DestageExtent(Lba lba, uint64_t sectors) {
  // Same track-by-track mechanics as Access, but silenced: the caller reports the whole extent
  // as one kDestage event and books the time under the flush bucket rather than locate/transfer.
  obs::TraceRecorder* const saved_tracer = tracer_;
  const LatencyBreakdown saved_last = last_request_;
  tracer_ = nullptr;
  const common::Time start = clock_->Now();
  const uint32_t n = params_.geometry.sectors_per_track;
  Lba pos = lba;
  uint64_t remaining = sectors;
  bool first = true;
  while (remaining > 0) {
    const uint64_t track = params_.geometry.TrackOf(pos);
    const Lba track_end = params_.geometry.TrackStart(track) + n;
    const uint64_t run = std::min<uint64_t>(remaining, track_end - pos);
    Position(pos, /*sequential=*/!first);
    clock_->Advance(params_.SectorTime() * static_cast<common::Duration>(run));
    pos += run;
    remaining -= run;
    first = false;
  }
  tracer_ = saved_tracer;
  last_request_ = saved_last;
  return clock_->Now() - start;
}

common::Duration SimDisk::DrainCache() {
  common::Duration total = 0;
  for (const WriteCache::Extent& e : cache_.Drain()) {
    const common::Duration dur = DestageExtent(e.lba, e.sectors);
    if (tracer_ != nullptr) {
      tracer_->Charge(obs::EventType::kDestage, obs::Layer::kDisk, dur, e.lba, e.sectors);
    }
    ++stats_.destage_extents;
    stats_.destaged_sectors += e.sectors;
    total += dur;
  }
  // Every acknowledged write is now on the media.
  if (flush_observer_) {
    flush_observer_();
  }
  return total;
}

common::Status SimDisk::Flush() {
  if (!cache_.enabled()) {
    return common::OkStatus();
  }
  last_request_ = LatencyBreakdown{};
  const uint64_t extents_before = stats_.destage_extents;
  const uint64_t sectors_before = stats_.destaged_sectors;
  // Command overhead is absorbed into the destage work: an empty flush is free, which keeps
  // barrier-heavy callers (the VLD flushes around every map append) from paying a per-command
  // tax the write-through model never charged.
  last_request_.flush = DrainCache();
  ++stats_.flushes;
  if (tracer_ != nullptr) {
    tracer_->Annotate(obs::EventType::kFlush, obs::Layer::kDisk,
                      stats_.destage_extents - extents_before,
                      stats_.destaged_sectors - sectors_before);
  }
  stats_.breakdown += last_request_;
  return common::OkStatus();
}

void SimDisk::ChargeHostCommand() {
  if (tracer_ != nullptr) {
    tracer_->Charge(obs::EventType::kController, obs::Layer::kDisk, params_.scsi_overhead);
  }
  clock_->Advance(params_.scsi_overhead);
  stats_.breakdown.scsi_overhead += params_.scsi_overhead;
}

common::Time SimDisk::ChargeQueuedCommand(common::Time ctrl_free, common::Time submitted) {
  const common::Time start = std::max(ctrl_free, submitted);
  const common::Time done = start + params_.scsi_overhead;
  stats_.breakdown.scsi_overhead += params_.scsi_overhead;
  if (tracer_ != nullptr) {
    // Only the un-overlapped part of the controller work advances the clock; controller time
    // hidden behind earlier media work is charged as zero so breakdowns still sum to latency.
    const common::Time now = clock_->Now();
    tracer_->Charge(obs::EventType::kController, obs::Layer::kDisk,
                    done > now ? done - now : 0);
  }
  clock_->AdvanceTo(done);
  return done;
}

void SimDisk::PeekMedia(Lba lba, std::span<std::byte> out) const {
  const size_t offset = lba * params_.geometry.sector_bytes;
  assert(offset + out.size() <= media_.size());
  std::memcpy(out.data(), media_.data() + offset, out.size());
}

void SimDisk::PokeMedia(Lba lba, std::span<const std::byte> in) {
  const size_t offset = lba * params_.geometry.sector_bytes;
  assert(offset + in.size() <= media_.size());
  std::memcpy(media_.data() + offset, in.data(), in.size());
}

}  // namespace vlog::simdisk
