#include "src/simdisk/write_cache.h"

#include <algorithm>

namespace vlog::simdisk {

bool WriteCache::Contains(Lba lba, uint64_t sectors) const {
  if (extents_.empty() || sectors == 0) {
    return false;
  }
  auto it = extents_.upper_bound(lba);
  if (it == extents_.begin()) {
    return false;
  }
  --it;
  return it->first <= lba && lba + sectors <= it->first + it->second.sectors;
}

bool WriteCache::Insert(Lba lba, uint64_t sectors) {
  if (sectors == 0) {
    return false;
  }
  Lba start = lba;
  Lba end = lba + sectors;
  uint64_t seq = next_seq_++;
  // Merge every overlapping or adjacent extent into [start, end), keeping the oldest sequence
  // number so FIFO draining reflects when the range first became dirty.
  auto it = extents_.upper_bound(start);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.sectors >= start) {
      it = prev;
    }
  }
  while (it != extents_.end() && it->first <= end) {
    start = std::min(start, it->first);
    end = std::max(end, it->first + it->second.sectors);
    seq = std::min(seq, it->second.seq);
    dirty_sectors_ -= it->second.sectors;
    it = extents_.erase(it);
  }
  extents_[start] = DirtyExtent{end - start, seq};
  dirty_sectors_ += end - start;
  return dirty_sectors_ > params_.capacity_sectors;
}

void WriteCache::Discard(Lba lba, uint64_t sectors) {
  if (sectors == 0 || extents_.empty()) {
    return;
  }
  const Lba end = lba + sectors;
  auto it = extents_.upper_bound(lba);
  if (it != extents_.begin()) {
    --it;
  }
  while (it != extents_.end() && it->first < end) {
    const Lba e_start = it->first;
    const Lba e_end = e_start + it->second.sectors;
    const uint64_t seq = it->second.seq;
    if (e_end <= lba) {
      ++it;
      continue;
    }
    dirty_sectors_ -= it->second.sectors;
    it = extents_.erase(it);
    if (e_start < lba) {
      extents_[e_start] = DirtyExtent{lba - e_start, seq};
      dirty_sectors_ += lba - e_start;
    }
    if (e_end > end) {
      it = extents_.emplace(end, DirtyExtent{e_end - end, seq}).first;
      dirty_sectors_ += e_end - end;
      ++it;
    }
  }
}

std::vector<WriteCache::Extent> WriteCache::Drain() {
  std::vector<Extent> out;
  out.reserve(extents_.size());
  if (params_.order == DestageOrder::kFifo) {
    std::vector<std::pair<uint64_t, Extent>> by_seq;
    by_seq.reserve(extents_.size());
    for (const auto& [lba, e] : extents_) {
      by_seq.push_back({e.seq, Extent{lba, e.sectors}});
    }
    std::sort(by_seq.begin(), by_seq.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [seq, extent] : by_seq) {
      out.push_back(extent);
    }
  } else {
    for (const auto& [lba, e] : extents_) {
      out.push_back(Extent{lba, e.sectors});
    }
  }
  extents_.clear();
  dirty_sectors_ = 0;
  return out;
}

}  // namespace vlog::simdisk
