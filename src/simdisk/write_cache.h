// Volatile write-back cache model for the simulated disk.
//
// A real drive with write caching enabled acknowledges a write as soon as the data is in
// controller RAM and destages it to the media later, in whatever order suits the head — which
// means an un-flushed write can be lost, and writes can reach the media in a different order
// than they were acknowledged. The cache here models exactly that contract: it tracks *which*
// sectors are dirty (the data itself lives in the SimDisk's media array, which is always
// current), so the only observable effects are timing (acks are cheap, Flush pays the
// mechanical destage cost) and crash semantics (the crashsim layer replays acknowledged-but-
// unflushed writes as an arbitrary admissible subset/ordering).
//
// Capacity 0 disables the cache entirely: every write is written through synchronously and
// Flush is a free no-op, preserving bit-identical timing with the cacheless model.
#ifndef SRC_SIMDISK_WRITE_CACHE_H_
#define SRC_SIMDISK_WRITE_CACHE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/simdisk/geometry.h"

namespace vlog::simdisk {

// Order in which Flush()/capacity-pressure destages walk the dirty extents.
enum class DestageOrder : uint8_t {
  kLbaAscending,  // One elevator pass in LBA order (minimises positioning).
  kFifo,          // Oldest extent first (insertion order).
};

struct WriteCacheParams {
  uint64_t capacity_sectors = 0;  // 0 = write-through (cache disabled).
  DestageOrder order = DestageOrder::kLbaAscending;
};

class WriteCache {
 public:
  WriteCache() = default;
  explicit WriteCache(WriteCacheParams params) : params_(params) {}

  bool enabled() const { return params_.capacity_sectors > 0; }
  const WriteCacheParams& params() const { return params_; }
  uint64_t dirty_sectors() const { return dirty_sectors_; }
  bool clean() const { return extents_.empty(); }

  // True when [lba, lba+sectors) is entirely dirty (a write-cache read hit).
  bool Contains(Lba lba, uint64_t sectors) const;

  // Marks [lba, lba+sectors) dirty, coalescing with adjacent/overlapping extents. Returns true
  // when the dirty set now exceeds capacity (the caller must destage).
  bool Insert(Lba lba, uint64_t sectors);

  // Drops any dirty sectors in [lba, lba+sectors) without destaging them — used by FUA writes,
  // which supersede the cached copy by writing the sector through to the media.
  void Discard(Lba lba, uint64_t sectors);

  struct Extent {
    Lba lba = 0;
    uint64_t sectors = 0;
  };

  // Removes and returns every dirty extent in destage order (the whole cache drains — small
  // drive caches destage fully once they start).
  std::vector<Extent> Drain();

 private:
  struct DirtyExtent {
    uint64_t sectors = 0;
    uint64_t seq = 0;  // First-insert sequence, kept through merges for FIFO draining.
  };

  WriteCacheParams params_;
  std::map<Lba, DirtyExtent> extents_;  // Disjoint, non-adjacent after coalescing.
  uint64_t dirty_sectors_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace vlog::simdisk

#endif  // SRC_SIMDISK_WRITE_CACHE_H_
