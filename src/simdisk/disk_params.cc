#include "src/simdisk/disk_params.h"

#include <cmath>

namespace vlog::simdisk {

common::Duration SeekCurve::SeekTime(uint32_t distance_cylinders) const {
  if (distance_cylinders == 0) {
    return 0;
  }
  const double d = static_cast<double>(distance_cylinders);
  double ms = 0;
  if (distance_cylinders < boundary_cylinders) {
    ms = short_a_ms + short_b_ms * std::sqrt(d);
  } else {
    ms = long_c_ms + long_e_ms * d;
  }
  return common::Milliseconds(ms);
}

DiskParams Hp97560() {
  DiskParams p;
  p.name = "HP97560";
  p.geometry = DiskGeometry{.cylinders = 1962,
                            .tracks_per_cylinder = 19,
                            .sectors_per_track = 72,
                            .sector_bytes = 512};
  p.rpm = 4002;
  // Kotz et al.: seek(d) = 3.24 + 0.400*sqrt(d) ms for d < 383, 8.00 + 0.008*d ms otherwise.
  p.seek = SeekCurve{.short_a_ms = 3.24,
                     .short_b_ms = 0.400,
                     .long_c_ms = 8.00,
                     .long_e_ms = 0.008,
                     .boundary_cylinders = 383};
  p.head_switch = common::Milliseconds(2.5);
  p.scsi_overhead = common::Milliseconds(2.3);
  p.bus_mb_per_s = 10.0;  // SCSI-2.
  return p;
}

DiskParams SeagateSt19101() {
  DiskParams p;
  p.name = "ST19101";
  p.geometry = DiskGeometry{.cylinders = 6962,
                            .tracks_per_cylinder = 16,
                            .sectors_per_track = 256,
                            .sector_bytes = 512};
  p.rpm = 10000;
  // Fitted to Table 1 (0.5 ms minimum seek) and the published ~5.2 ms average / ~10.5 ms
  // full-stroke figures for the Cheetah 9LP family.
  p.seek = SeekCurve{.short_a_ms = 0.30,
                     .short_b_ms = 0.20,
                     .long_c_ms = 4.70,
                     .long_e_ms = 0.000828,
                     .boundary_cylinders = 600};
  p.head_switch = common::Milliseconds(0.5);
  p.scsi_overhead = common::Milliseconds(0.1);
  p.bus_mb_per_s = 40.0;  // Ultra SCSI.
  return p;
}

DiskParams Truncated(DiskParams base, uint32_t cylinders) {
  base.geometry.cylinders = cylinders;
  base.name += "-" + std::to_string(cylinders) + "cyl";
  return base;
}

}  // namespace vlog::simdisk
