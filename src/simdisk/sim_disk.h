// The mechanical disk simulator.
//
// Replaces the paper's in-kernel port of the Dartmouth HP97560 model: a sector-granularity
// simulation of arm position, rotation, head switches, per-command SCSI overhead, media
// transfer, and a track read-ahead buffer, all advancing a shared virtual clock. The media
// contents live in an in-memory byte array (the paper's 24 MB kernel ramdisk).
//
// Rotational position is derived from the clock: the platter turns continuously, so the sector
// under the head at time t is (t mod rotation_period) scaled to sectors-per-track. Sequential
// runs that cross a track boundary are charged only the head-switch/seek cost (implicit optimal
// track skew).
#ifndef SRC_SIMDISK_SIM_DISK_H_
#define SRC_SIMDISK_SIM_DISK_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/obs/trace.h"
#include "src/simdisk/block_device.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/latency.h"
#include "src/simdisk/track_buffer.h"

namespace vlog::obs {
class Timeline;
}  // namespace vlog::obs

namespace vlog::simdisk {

class SimDisk : public BlockDevice {
 public:
  SimDisk(DiskParams params, common::Clock* clock);
  // Adopts `media` as the initial platter contents (resized to capacity) instead of
  // zero-filling a fresh allocation — sweeps that build thousands of short-lived disks from
  // prebuilt images use this with TakeMedia() to recycle one buffer across points.
  SimDisk(DiskParams params, common::Clock* clock, std::vector<std::byte> media);

  // BlockDevice: host commands. Each charges the SCSI command overhead. With a write-back
  // cache enabled, Write acknowledges after controller + bus time only and the mechanical work
  // is deferred to Flush (or capacity pressure).
  common::Status Read(Lba lba, std::span<std::byte> out) override;
  common::Status Write(Lba lba, std::span<const std::byte> in) override;
  // Destages every dirty cached extent to the media and returns once all acknowledged writes
  // are durable. Free no-op when the cache is disabled.
  common::Status Flush() override;
  uint64_t SectorCount() const override { return params_.geometry.TotalSectors(); }
  uint32_t SectorBytes() const override { return params_.geometry.sector_bytes; }

  // Force-unit-access write: bypasses the write cache (discarding any cached copy it
  // supersedes) and commits to media before acknowledging. Identical to Write when the cache
  // is disabled.
  common::Status WriteFua(Lba lba, std::span<const std::byte> in);

  // In-disk operations used by VLD firmware and the compactor: no SCSI command overhead.
  common::Status InternalRead(Lba lba, std::span<std::byte> out);
  common::Status InternalWrite(Lba lba, std::span<const std::byte> in);
  common::Status InternalWriteFua(Lba lba, std::span<const std::byte> in);
  // Zero-copy InternalRead: charges exactly the same mechanics, stats, and clock time, but
  // returns a read-only view into the media instead of copying it out. Always current — dirty
  // write-cache sectors live in the media array too (the cache tracks only dirtiness). The
  // view is invalidated by the next write. Used by recovery's full-disk scan, where copying
  // every track dominated the sweep profile. Returns an empty span on a range error.
  std::span<const std::byte> InternalReadView(Lba lba, uint64_t sectors);

  // Charges one SCSI command's controller overhead. The VLD calls this once per *host* command
  // before issuing however many internal operations the command expands to.
  void ChargeHostCommand();

  // Queued-command variant: the controller processes one command header at a time, pipelined
  // with the media. The command's controller work starts when both the controller is free
  // (`ctrl_free`, the previous command's return value) and the command has been submitted
  // (`submitted`); it finishes scsi_overhead later. Advances the clock only if that finish time
  // is in the future, so controller work fully overlapped with earlier media work costs nothing
  // extra. With one outstanding command this degenerates exactly to ChargeHostCommand.
  common::Time ChargeQueuedCommand(common::Time ctrl_free, common::Time submitted);

  // Zero-cost media access, for test setup and for modeling in-memory behaviour.
  void PeekMedia(Lba lba, std::span<std::byte> out) const;
  void PokeMedia(Lba lba, std::span<const std::byte> in);
  // Surrenders the media buffer (the disk is dead afterwards — destroy it). Pairs with the
  // media-adopting constructor so sweep loops reuse one allocation per worker.
  std::vector<std::byte> TakeMedia() && { return std::move(media_); }

  // --- Introspection for eager writing (the VLD runs "inside" this disk) ---

  // Arm position (cylinder+surface). The rotational position is time-derived; see below.
  const PhysAddr& ArmPosition() const { return arm_; }

  // Bumped whenever the arm actually moves to a different track. SPTF schedulers key their
  // per-request positioning-cost memo on this: while the epoch is unchanged, every cached
  // ArmMoveCost stays exact, so a dispatch loop re-estimates only after a move.
  uint64_t arm_epoch() const { return arm_epoch_; }

  // The sector index whose leading edge is under the head at time t (fractional part dropped).
  uint32_t SectorUnderHead(common::Time t) const;

  // Rotational delay from time `at` until the start of `sector` passes under the head.
  common::Duration RotationalWait(uint32_t sector, common::Time at) const;

  // Seek + head-switch cost from the current arm position to the track holding `lba`
  // (0 when already there). Excludes rotation. The PhysAddr overload skips the LBA->geometry
  // decomposition, for callers that cache the decomposition per request (SPTF schedulers).
  common::Duration ArmMoveCost(Lba lba) const;
  common::Duration ArmMoveCost(const PhysAddr& target) const;

  // Full positioning estimate: arm move plus rotational wait, starting at time `at`.
  common::Duration EstimatePosition(Lba lba, common::Time at) const;
  common::Duration EstimatePosition(const PhysAddr& target, common::Time at) const;

  const DiskParams& params() const { return params_; }
  const DiskGeometry& geometry() const { return params_.geometry; }
  common::Clock* clock() { return clock_; }

  DiskStats& stats() { return stats_; }
  const DiskStats& stats() const { return stats_; }
  // Breakdown of the most recent request (host or internal).
  const LatencyBreakdown& last_request() const { return last_request_; }

  void set_read_ahead_policy(ReadAheadPolicy policy) { read_ahead_policy_ = policy; }
  ReadAheadPolicy read_ahead_policy() const { return read_ahead_policy_; }

  // Optional tracing. The disk is the bottom of the stack and the one object every layer
  // already holds, so upper layers (VLD, VirtualLog, RequestQueue, VLFS) reach the recorder
  // through here instead of each taking a constructor parameter. Null (the default) disables
  // all tracing; the simulation never reads the recorder, so attaching one cannot change
  // simulated time.
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }
  obs::TraceRecorder* tracer() const { return tracer_; }

  // Registers this disk's timeline series under `prefix`: sector-count and busy-time counters
  // (whose per-window deltas give throughput and disk/bus utilization) and write-cache dirty
  // gauges. The closures capture `this`, so the timeline must not be polled after the disk is
  // destroyed. Pure reads — sampling never advances the clock.
  void RegisterTimelineProbes(obs::Timeline& timeline, const std::string& prefix) const;

  // --- Failure injection for crash-recovery tests ---

  // What happens to the first write issued once the armed fault fires. Every write after the
  // faulted one fails with kIoError and leaves the media untouched (power is off).
  enum class WriteFaultMode : uint8_t {
    kFailStop,    // The faulted write persists nothing.
    kTornPrefix,  // Only the first `keep_sectors` sectors of the faulted write persist.
    kTornSuffix,  // Only the last `keep_sectors` sectors persist.
    kTornRandom,  // A pseudo-random (seeded) subset of the faulted write's sectors persists.
    kCorruptTail,  // All sectors persist, then seeded bit flips damage the final sector.
  };

  struct WriteFault {
    WriteFaultMode mode = WriteFaultMode::kFailStop;
    // How many more writes (host or internal) complete normally before the fault fires.
    uint64_t after_writes = 0;
    // kTornPrefix/kTornSuffix: sectors of the faulted write that persist (clamped to its size).
    uint32_t keep_sectors = 0;
    // kTornRandom/kCorruptTail: seed for the persisted-subset / bit-flip choice.
    uint64_t seed = 1;
  };

  // Arms (or, with nullopt, disarms) the write fault. The faulted write and all later ones
  // return kIoError; the media keeps whatever the fault mode persisted.
  void SetWriteFault(std::optional<WriteFault> fault) {
    write_fault_ = fault;
    write_fault_fired_ = false;
  }

  // Legacy interface: after `writes` more successful writes, every subsequent write fails with
  // kIoError and leaves the media untouched — a fail-stop power cut. Kept as a thin wrapper over
  // SetWriteFault.
  void SetWriteFailureAfter(std::optional<uint64_t> writes) {
    if (writes.has_value()) {
      SetWriteFault(WriteFault{.mode = WriteFaultMode::kFailStop, .after_writes = *writes});
    } else {
      SetWriteFault(std::nullopt);
    }
  }

  // Observer invoked after every successfully acknowledged write (host or internal) with the
  // written range and payload. `durable` is true when the write is committed to stable media at
  // acknowledgement time (write-through or FUA) and false when it was acknowledged into the
  // volatile cache. Faulted writes do not reach the observer, matching their kIoError result.
  // Used by the crashsim recording shim; null disables.
  using WriteObserver =
      std::function<void(Lba lba, std::span<const std::byte> data, bool durable)>;
  void set_write_observer(WriteObserver observer) { write_observer_ = std::move(observer); }

  // Observer invoked whenever every previously acknowledged write has just become durable: at
  // the end of each Flush and of each capacity-pressure drain. The crashsim recording shim uses
  // it to mark durability barriers in the write trace; null disables.
  using FlushObserver = std::function<void()>;
  void set_flush_observer(FlushObserver observer) { flush_observer_ = std::move(observer); }

  // Write-back cache introspection (dirty-extent timing model; media is always current).
  const WriteCache& cache() const { return cache_; }
  uint64_t cache_dirty_sectors() const { return cache_.dirty_sectors(); }

 private:
  common::Status CheckRange(Lba lba, size_t bytes, const char* op) const;
  // Checks the armed write fault before a write touches media. Returns ok when the write should
  // proceed normally; otherwise applies whatever the fault mode persists and returns kIoError.
  common::Status ApplyWriteFault(Lba lba, std::span<const std::byte> in);
  // Write-through path shared by Write/InternalWrite (cache disabled) and the FUA variants.
  common::Status WriteThrough(Lba lba, std::span<const std::byte> in, bool host_command,
                              bool fua);
  // Acknowledges a write into the volatile cache: controller + bus time for host commands,
  // free for internal ones. Triggers a capacity-pressure drain when the dirty set overflows.
  common::Status WriteCached(Lba lba, std::span<const std::byte> in, bool host_command);
  // Mechanically writes one dirty extent (no events — the caller charges the returned duration
  // as a single kDestage event so breakdowns land in the flush bucket).
  common::Duration DestageExtent(Lba lba, uint64_t sectors);
  // Destages the whole dirty set and fires the flush observer. Returns total destage time.
  common::Duration DrainCache();
  // Performs the mechanical work of accessing [lba, lba+sectors), advancing the clock and
  // filling `last_request_`. `host_command` charges SCSI overhead.
  void Access(Lba lba, uint64_t sectors, bool is_write, bool host_command);
  // Moves the arm to the track of `lba` and waits for `lba`'s sector; returns when transfer may
  // begin. `sequential` suppresses the rotational wait (implicit track skew).
  void Position(Lba lba, bool sequential);
  // Extends the standard-policy read-ahead window by the time elapsed since the last read.
  void CatchUpReadAhead();

  DiskParams params_;
  common::Clock* clock_;
  std::vector<std::byte> media_;
  PhysAddr arm_{};
  uint64_t arm_epoch_ = 0;
  DiskStats stats_;
  LatencyBreakdown last_request_;
  TrackBuffer buffer_;
  ReadAheadPolicy read_ahead_policy_ = ReadAheadPolicy::kStandard;
  // Where background read-ahead was when the last read finished.
  Lba read_ahead_pos_ = 0;
  common::Time last_read_end_ = 0;
  uint64_t read_ahead_track_end_ = 0;  // Exclusive LBA bound of the read-ahead (track end).
  std::optional<WriteFault> write_fault_;
  bool write_fault_fired_ = false;
  WriteObserver write_observer_;
  FlushObserver flush_observer_;
  WriteCache cache_;
  obs::TraceRecorder* tracer_ = nullptr;
};

}  // namespace vlog::simdisk

#endif  // SRC_SIMDISK_SIM_DISK_H_
