// A queued-command layer over SimDisk.
//
// Models a disk (or VLD firmware) that accepts up to `depth` outstanding commands and services
// them one at a time with the controller pipelined against the media: command i's controller
// work starts when the controller is free and the command has been submitted, and costs the
// SCSI overhead once — so with a full queue the per-command overhead hides behind the previous
// command's media time. Scheduling is pluggable:
//   kFcfs — service in submission order;
//   kSptf — shortest positioning time first, reusing the mechanical model's seek + rotation
//           estimate from the current arm position and clock (the classic queued-disk policy).
// With depth 1 both policies degenerate to the synchronous path and charge identical time.
//
// Reordering respects data hazards: a write is never serviced before an older request it
// overlaps (WAR/WAW), and a read serviced before an older overlapping write forwards the
// overlapping sectors from that write's still-pending payload (RAW) — so completions always
// carry the bytes the submission order implies, under either policy. SPTF additionally takes a
// `starvation_bound`: once the oldest pending request has waited that long it is serviced
// next regardless of position, so a request parked far from a hot region cannot be bypassed
// indefinitely (0 disables the guard).
//
// All submitted payloads are copied; completions carry per-request submit/dispatch/complete
// timestamps on the shared virtual clock (read completions also carry the data).
#ifndef SRC_SIMDISK_REQUEST_QUEUE_H_
#define SRC_SIMDISK_REQUEST_QUEUE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::simdisk {

enum class SchedulerPolicy : uint8_t {
  kFcfs,
  kSptf,
};

struct RequestQueueConfig {
  uint32_t depth = 8;  // Maximum outstanding requests.
  SchedulerPolicy policy = SchedulerPolicy::kFcfs;
  // SPTF bounded-age promotion: when the oldest pending request has waited at least this long
  // it is serviced next, position notwithstanding. 0 disables the guard.
  common::Duration starvation_bound = 0;
};

struct IoCompletion {
  uint64_t id = 0;
  bool is_write = false;
  Lba lba = 0;
  common::Status status;
  common::Time submit_time = 0;    // When the request entered the queue.
  common::Time dispatch_time = 0;  // When its controller work finished and media work began.
  common::Time complete_time = 0;  // When its media work finished.
  uint64_t span_id = 0;            // Trace span (0 when the disk has no tracer attached).
  std::vector<std::byte> data;     // Read payload (empty for writes).
  uint64_t forwarded_sectors = 0;  // Read sectors served from older pending writes' payloads.

  common::Duration Latency() const { return complete_time - submit_time; }
  common::Duration QueueDelay() const { return dispatch_time - submit_time; }
};

class RequestQueue {
 public:
  RequestQueue(SimDisk* disk, RequestQueueConfig config) : disk_(disk), config_(config) {}

  uint32_t depth() const { return config_.depth; }
  SchedulerPolicy policy() const { return config_.policy; }
  size_t Pending() const { return pending_.size(); }
  bool CanSubmit() const { return pending_.size() < config_.depth; }

  // Enqueue a request without performing any media work; returns its completion id. Fails with
  // kFailedPrecondition when `depth` requests are already outstanding.
  common::StatusOr<uint64_t> SubmitRead(Lba lba, uint64_t sectors);
  common::StatusOr<uint64_t> SubmitWrite(Lba lba, std::span<const std::byte> data);

  // Services the next request chosen by the scheduling policy. The returned completion's status
  // carries any media error; ServiceOne itself only fails when the queue is empty.
  common::StatusOr<IoCompletion> ServiceOne();

  // Services every outstanding request; completions in service order.
  common::StatusOr<std::vector<IoCompletion>> Drain();

 private:
  struct Request {
    uint64_t id = 0;
    bool is_write = false;
    Lba lba = 0;
    uint64_t sectors = 0;
    common::Time submit_time = 0;
    uint64_t span = 0;            // Trace span opened at submission (0 = tracing off).
    std::vector<std::byte> data;  // Write payload.
    // SPTF positioning cache. The geometry decomposition of `lba` is computed once at
    // submission; the arm-move (seek + head-switch) component is memoized against the disk's
    // arm-position epoch (bumped only when the arm changes track), so a dispatch re-evaluates
    // it only after the arm actually moved — one integer compare per candidate instead of a
    // PhysAddr compare, and only the cheap rotational wait depends on the clock. The cached
    // cost is arithmetically identical to EstimatePosition(lba, now), so schedules are
    // unchanged (gated by the golden traces and the brute-force reference test).
    PhysAddr phys{};
    uint64_t move_epoch = 0;           // disk arm_epoch() `move_cost` was computed at.
    common::Duration move_cost = -1;   // Cached ArmMoveCost; -1 = not yet computed.
  };

  common::StatusOr<uint64_t> Enqueue(Request req);
  // Index into pending_ of the request the policy services next (refreshes the per-request
  // positioning caches, hence non-const).
  size_t PickNext();
  // Whether pending_[index] may be serviced ahead of the older requests before it. Reads may
  // pass anything (RAW is satisfied by forwarding); a write may not pass an older request it
  // overlaps, else a later read would see it too early (WAR) or an older write would land on
  // top of it (WAW).
  bool Eligible(size_t index) const;
  static bool Overlaps(const Request& x, const Request& y) {
    return x.lba < y.lba + y.sectors && y.lba < x.lba + x.sectors;
  }

  SimDisk* disk_;
  RequestQueueConfig config_;
  std::vector<Request> pending_;  // Submission order.
  uint64_t next_id_ = 1;
  common::Time ctrl_free_ = 0;  // When the controller finishes its current command's overhead.
};

}  // namespace vlog::simdisk

#endif  // SRC_SIMDISK_REQUEST_QUEUE_H_
