#include "src/simdisk/nvm_device.h"

#include <cstring>
#include <string>
#include <utility>

namespace vlog::simdisk {

NvmDevice::NvmDevice(NvmDeviceParams params, common::Clock* clock)
    : params_(params), clock_(clock), media_(params.size_bytes) {}

NvmDevice::NvmDevice(NvmDeviceParams params, common::Clock* clock, std::vector<std::byte> image)
    : params_(params), clock_(clock), media_(std::move(image)) {
  media_.resize(params_.size_bytes);
}

common::Status NvmDevice::CheckRange(uint64_t offset, size_t bytes, const char* op) const {
  if (offset > params_.size_bytes || bytes > params_.size_bytes - offset) {
    return common::InvalidArgument(std::string(op) + ": NVM range [" + std::to_string(offset) +
                                   ", +" + std::to_string(bytes) + ") exceeds " +
                                   std::to_string(params_.size_bytes) + " bytes");
  }
  return common::OkStatus();
}

uint64_t NvmDevice::Lines(uint64_t offset, size_t bytes) const {
  if (bytes == 0) {
    return 0;
  }
  const uint64_t line = params_.cache_line_bytes;
  const uint64_t first = offset / line;
  const uint64_t last = (offset + bytes - 1) / line;
  return last - first + 1;
}

common::Status NvmDevice::WriteBytes(uint64_t offset, std::span<const std::byte> in) {
  RETURN_IF_ERROR(CheckRange(offset, in.size(), "NvmDevice::WriteBytes"));
  const common::Duration cost =
      params_.write_latency +
      params_.line_write_cost * static_cast<common::Duration>(Lines(offset, in.size()));
  clock_->Advance(cost);
  if (tracer_ != nullptr) {
    tracer_->Charge(obs::EventType::kNvmWrite, obs::Layer::kNvm, cost, offset, in.size());
  }
  std::memcpy(media_.data() + offset, in.data(), in.size());
  ++stats_.writes;
  stats_.bytes_written += in.size();
  if (write_observer_) {
    write_observer_(offset, in);
  }
  return common::OkStatus();
}

common::Status NvmDevice::ReadBytes(uint64_t offset, std::span<std::byte> out) {
  RETURN_IF_ERROR(CheckRange(offset, out.size(), "NvmDevice::ReadBytes"));
  const common::Duration cost =
      params_.read_latency +
      params_.line_read_cost * static_cast<common::Duration>(Lines(offset, out.size()));
  clock_->Advance(cost);
  if (tracer_ != nullptr) {
    tracer_->Charge(obs::EventType::kNvmRead, obs::Layer::kNvm, cost, offset, out.size());
  }
  std::memcpy(out.data(), media_.data() + offset, out.size());
  ++stats_.reads;
  stats_.bytes_read += out.size();
  return common::OkStatus();
}

void NvmDevice::Peek(uint64_t offset, std::span<std::byte> out) const {
  std::memcpy(out.data(), media_.data() + offset, out.size());
}

void NvmDevice::Poke(uint64_t offset, std::span<const std::byte> in) {
  std::memcpy(media_.data() + offset, in.data(), in.size());
}

}  // namespace vlog::simdisk
