// The narrow device-driver interface shared by every disk in the system.
//
// A regular simulated disk and a Virtual Log Disk both export this interface, which is the
// point of the paper's VLD design: an unmodified file system gets eager writing for free.
#ifndef SRC_SIMDISK_BLOCK_DEVICE_H_
#define SRC_SIMDISK_BLOCK_DEVICE_H_

#include <cstddef>
#include <span>

#include "src/common/status.h"
#include "src/simdisk/geometry.h"

namespace vlog::simdisk {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Reads `out.size()` bytes starting at sector `lba`. The size must be a whole number of
  // sectors. Charges simulated time to the device's clock.
  virtual common::Status Read(Lba lba, std::span<std::byte> out) = 0;

  // Writes `in.size()` bytes starting at sector `lba` (whole sectors). Acknowledged: when the
  // call returns the data is readable and, on a device without a volatile write cache,
  // durable. A device with a write-back cache may hold acknowledged writes in volatile state
  // until Flush() — a crash can lose them or destage them out of order.
  virtual common::Status Write(Lba lba, std::span<const std::byte> in) = 0;

  // Durability barrier: when Flush() returns, every write acknowledged before it is on stable
  // media. Devices without a volatile cache are always durable, hence the default no-op.
  virtual common::Status Flush() { return common::OkStatus(); }

  virtual uint64_t SectorCount() const = 0;
  virtual uint32_t SectorBytes() const = 0;
};

}  // namespace vlog::simdisk

#endif  // SRC_SIMDISK_BLOCK_DEVICE_H_
