// Disk geometry and physical addressing.
//
// The simulator models a single-zone disk: `cylinders` cylinders, `tracks_per_cylinder`
// surfaces, `sectors_per_track` sectors of `sector_bytes` each. Logical block addresses (LBAs)
// enumerate sectors cylinder-major: all of cylinder 0 (surface by surface), then cylinder 1, ...
#ifndef SRC_SIMDISK_GEOMETRY_H_
#define SRC_SIMDISK_GEOMETRY_H_

#include <cstdint>

namespace vlog::simdisk {

using Lba = uint64_t;

// A physical sector address: which cylinder, which surface (head), which rotational position.
struct PhysAddr {
  uint32_t cylinder = 0;
  uint32_t head = 0;
  uint32_t sector = 0;

  bool operator==(const PhysAddr&) const = default;
};

struct DiskGeometry {
  uint32_t cylinders = 0;
  uint32_t tracks_per_cylinder = 0;
  uint32_t sectors_per_track = 0;
  uint32_t sector_bytes = 512;

  uint64_t SectorsPerCylinder() const {
    return static_cast<uint64_t>(tracks_per_cylinder) * sectors_per_track;
  }
  uint64_t TotalSectors() const { return static_cast<uint64_t>(cylinders) * SectorsPerCylinder(); }
  uint64_t TotalTracks() const {
    return static_cast<uint64_t>(cylinders) * tracks_per_cylinder;
  }
  uint64_t CapacityBytes() const { return TotalSectors() * sector_bytes; }

  PhysAddr ToPhys(Lba lba) const {
    PhysAddr p;
    p.sector = static_cast<uint32_t>(lba % sectors_per_track);
    const uint64_t track = lba / sectors_per_track;
    p.head = static_cast<uint32_t>(track % tracks_per_cylinder);
    p.cylinder = static_cast<uint32_t>(track / tracks_per_cylinder);
    return p;
  }

  Lba ToLba(const PhysAddr& p) const {
    return (static_cast<uint64_t>(p.cylinder) * tracks_per_cylinder + p.head) * sectors_per_track +
           p.sector;
  }

  // Global track index (cylinder-major) of an LBA; tracks are the compactor's work unit.
  uint64_t TrackOf(Lba lba) const { return lba / sectors_per_track; }

  // First LBA of global track `track`.
  Lba TrackStart(uint64_t track) const { return track * sectors_per_track; }
};

}  // namespace vlog::simdisk

#endif  // SRC_SIMDISK_GEOMETRY_H_
