// The disk's track read-ahead buffer.
//
// Two policies, per §4.2 of the paper:
//  - kStandard: the Dartmouth behaviour — the buffer covers the sectors from the beginning of
//    the current request through the read-ahead point; data at lower addresses is discarded.
//    Read-ahead proceeds "for free" while the disk is otherwise idle.
//  - kAggressiveTrack: the VLD modification — when the head reaches the target track the whole
//    track is prefetched, and nothing is discarded until delivered, so sequential reads whose
//    *physical* addresses are non-monotonic (the VLD case) still hit.
//
// The buffer tracks which LBA range is cached; the bytes themselves always come from the media
// array (the buffer can never be stale because any overlapping write invalidates it).
#ifndef SRC_SIMDISK_TRACK_BUFFER_H_
#define SRC_SIMDISK_TRACK_BUFFER_H_

#include <algorithm>

#include "src/simdisk/geometry.h"

namespace vlog::simdisk {

enum class ReadAheadPolicy { kStandard, kAggressiveTrack };

class TrackBuffer {
 public:
  // True if [lba, lba+count) is entirely cached.
  bool Contains(Lba lba, uint64_t count) const {
    return valid_ && lba >= lo_ && lba + count <= hi_;
  }

  // Replaces the buffer contents with the range [lo, hi).
  void SetRange(Lba lo, Lba hi) {
    lo_ = lo;
    hi_ = hi;
    valid_ = hi > lo;
  }

  // Grows the read-ahead point; never shrinks.
  void ExtendTo(Lba hi) {
    if (valid_) {
      hi_ = std::max(hi_, hi);
    }
  }

  // Standard-policy discard: drop data at addresses below the new request start.
  void DiscardBelow(Lba lba) {
    if (valid_) {
      lo_ = std::max(lo_, lba);
      if (lo_ >= hi_) {
        valid_ = false;
      }
    }
  }

  void InvalidateIfOverlaps(Lba lba, uint64_t count) {
    if (valid_ && lba < hi_ && lba + count > lo_) {
      valid_ = false;
    }
  }

  void Clear() { valid_ = false; }

  bool valid() const { return valid_; }
  Lba lo() const { return lo_; }
  Lba hi() const { return hi_; }

 private:
  bool valid_ = false;
  Lba lo_ = 0;
  Lba hi_ = 0;
};

}  // namespace vlog::simdisk

#endif  // SRC_SIMDISK_TRACK_BUFFER_H_
