// Latency accounting used to regenerate Figure 9's breakdown (SCSI overhead / transfer /
// locate sectors / other) and general request statistics.
#ifndef SRC_SIMDISK_LATENCY_H_
#define SRC_SIMDISK_LATENCY_H_

#include <cstdint>

#include "src/common/time.h"

namespace vlog::simdisk {

struct LatencyBreakdown {
  common::Duration scsi_overhead = 0;  // Per-command disk controller processing.
  common::Duration locate = 0;         // Seek + head switch + rotational delay.
  common::Duration transfer = 0;       // Media or bus transfer time.
  common::Duration flush = 0;          // Write-cache destage work (Flush or capacity pressure).
  common::Duration other = 0;          // Host OS / file system processing.

  common::Duration Total() const { return scsi_overhead + locate + transfer + flush + other; }

  LatencyBreakdown& operator+=(const LatencyBreakdown& rhs) {
    scsi_overhead += rhs.scsi_overhead;
    locate += rhs.locate;
    transfer += rhs.transfer;
    flush += rhs.flush;
    other += rhs.other;
    return *this;
  }

  LatencyBreakdown operator-(const LatencyBreakdown& rhs) const {
    LatencyBreakdown d;
    d.scsi_overhead = scsi_overhead - rhs.scsi_overhead;
    d.locate = locate - rhs.locate;
    d.transfer = transfer - rhs.transfer;
    d.flush = flush - rhs.flush;
    d.other = other - rhs.other;
    return d;
  }
};

struct DiskStats {
  uint64_t read_requests = 0;
  uint64_t write_requests = 0;
  uint64_t sectors_read = 0;
  uint64_t sectors_written = 0;
  uint64_t buffer_hits = 0;  // Reads served entirely from the track buffer.
  uint64_t seeks = 0;        // Requests that moved the arm.
  // Write-back cache activity (all zero when the cache is disabled).
  uint64_t cached_writes = 0;     // Writes acknowledged into the volatile cache.
  uint64_t cache_read_hits = 0;   // Reads served entirely from dirty cached sectors.
  uint64_t flushes = 0;           // Completed Flush commands (including no-op flushes).
  uint64_t destage_extents = 0;   // Coalesced extents written to media by destages.
  uint64_t destaged_sectors = 0;  // Sectors those extents covered.
  uint64_t fua_writes = 0;        // Writes that bypassed the cache (force unit access).
  LatencyBreakdown breakdown;

  void Reset() { *this = DiskStats{}; }

  // Stats structs are plain values, so a snapshot is a copy and a measurement window is a
  // subtraction: `auto before = disk.stats(); ...; auto delta = disk.stats() - before;`.
  DiskStats operator-(const DiskStats& rhs) const {
    DiskStats d;
    d.read_requests = read_requests - rhs.read_requests;
    d.write_requests = write_requests - rhs.write_requests;
    d.sectors_read = sectors_read - rhs.sectors_read;
    d.sectors_written = sectors_written - rhs.sectors_written;
    d.buffer_hits = buffer_hits - rhs.buffer_hits;
    d.seeks = seeks - rhs.seeks;
    d.cached_writes = cached_writes - rhs.cached_writes;
    d.cache_read_hits = cache_read_hits - rhs.cache_read_hits;
    d.flushes = flushes - rhs.flushes;
    d.destage_extents = destage_extents - rhs.destage_extents;
    d.destaged_sectors = destaged_sectors - rhs.destaged_sectors;
    d.fua_writes = fua_writes - rhs.fua_writes;
    d.breakdown = breakdown - rhs.breakdown;
    return d;
  }
};

}  // namespace vlog::simdisk

#endif  // SRC_SIMDISK_LATENCY_H_
