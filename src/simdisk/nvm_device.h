// A byte-addressable non-volatile memory device: the persistence domain for the NVM
// write-ahead staging tier (NVLog-style, see PAPERS.md "Boosting File Systems Elegantly").
//
// Unlike the SimDisk, the NvmDevice has no mechanics: a write costs a fixed per-command
// latency plus a per-cache-line transfer cost, orders of magnitude below a disk access. Its
// persistence semantics also differ from both the platter and DRAM:
//   - Contents survive a crash (they are non-volatile): a crash sweep replays the recorded
//     NVM history alongside the disk trace.
//   - A write in flight at the crash tears at a *cache-line* boundary (64 B), not a sector
//     boundary: the memory controller persists whole lines in order, so a torn append keeps
//     an arbitrary line-aligned prefix. Anything staged on top (per-record CRCs) must detect
//     the torn tail.
// Torn-tail states themselves are modeled offline by the crashsim (which enumerates every
// line-aligned cut); the device only promises that acknowledged writes are durable.
#ifndef SRC_SIMDISK_NVM_DEVICE_H_
#define SRC_SIMDISK_NVM_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/obs/trace.h"

namespace vlog::simdisk {

struct NvmDeviceParams {
  uint64_t size_bytes = 1 << 20;    // Staging capacity (bytes, not sectors).
  uint32_t cache_line_bytes = 64;   // Persistence granule: torn writes cut on this boundary.
  // Latency model: fixed per-command cost plus a per-line cost. Defaults put a one-line
  // persist at ~350 ns and a 4 KB persist at ~3.5 us — far below any mechanical access.
  common::Duration write_latency = common::Nanoseconds(300);
  common::Duration line_write_cost = common::Nanoseconds(50);
  common::Duration read_latency = common::Nanoseconds(150);
  common::Duration line_read_cost = common::Nanoseconds(30);
};

struct NvmDeviceStats {
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
};

class NvmDevice {
 public:
  NvmDevice(NvmDeviceParams params, common::Clock* clock);
  // Adopts `image` as the initial contents (resized to capacity) — crash sweeps rebuild
  // thousands of short-lived devices from reconstructed NVM images.
  NvmDevice(NvmDeviceParams params, common::Clock* clock, std::vector<std::byte> image);

  // Charged accesses: advance the clock by the latency model and (when a tracer is attached)
  // charge the time to the current span as the `nvm` breakdown component. An acknowledged
  // WriteBytes is durable.
  common::Status WriteBytes(uint64_t offset, std::span<const std::byte> in);
  common::Status ReadBytes(uint64_t offset, std::span<std::byte> out);

  // Zero-cost access for recovery scans, test setup, and crash-image reconstruction.
  void Peek(uint64_t offset, std::span<std::byte> out) const;
  void Poke(uint64_t offset, std::span<const std::byte> in);
  std::vector<std::byte> Snapshot() const { return media_; }
  std::vector<std::byte> TakeMedia() && { return std::move(media_); }

  uint64_t size_bytes() const { return params_.size_bytes; }
  uint32_t cache_line_bytes() const { return params_.cache_line_bytes; }
  const NvmDeviceParams& params() const { return params_; }
  common::Clock* clock() { return clock_; }
  const NvmDeviceStats& stats() const { return stats_; }

  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }
  obs::TraceRecorder* tracer() const { return tracer_; }

  // Observer invoked after every acknowledged WriteBytes with the written range — the crashsim
  // recording shim mirrors the NVM history through it. Peek/Poke bypass it.
  using WriteObserver = std::function<void(uint64_t offset, std::span<const std::byte> data)>;
  void set_write_observer(WriteObserver observer) { write_observer_ = std::move(observer); }

 private:
  common::Status CheckRange(uint64_t offset, size_t bytes, const char* op) const;
  // Lines touched by [offset, offset+bytes), for the transfer cost.
  uint64_t Lines(uint64_t offset, size_t bytes) const;

  NvmDeviceParams params_;
  common::Clock* clock_;
  std::vector<std::byte> media_;
  NvmDeviceStats stats_;
  obs::TraceRecorder* tracer_ = nullptr;
  WriteObserver write_observer_;
};

}  // namespace vlog::simdisk

#endif  // SRC_SIMDISK_NVM_DEVICE_H_
