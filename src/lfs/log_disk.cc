#include "src/lfs/log_disk.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/bytes.h"

namespace vlog::lfs {
namespace {

constexpr uint64_t kSummaryMagic = 0x4c4c445f53554d4dULL;  // "LLD_SUMM"

}  // namespace

LogStructuredDisk::LogStructuredDisk(simdisk::BlockDevice* device, LldConfig config)
    : device_(device), config_(config) {}

common::Status LogStructuredDisk::Format() {
  const uint64_t dev_blocks =
      device_->SectorCount() / (config_.block_bytes / device_->SectorBytes());
  total_segments_ = static_cast<uint32_t>(dev_blocks / config_.segment_blocks);
  if (total_segments_ <= config_.reserve_segments) {
    return common::InvalidArgument("device too small for the segment layout");
  }
  logical_blocks_ = (total_segments_ - config_.reserve_segments) * DataBlocksPerSegment();
  map_.assign(logical_blocks_, kLldUnmapped);
  pending_slot_.assign(logical_blocks_, kLldUnmapped);
  reverse_.assign(static_cast<size_t>(total_segments_) * DataBlocksPerSegment(), kLldUnmapped);
  seg_live_.assign(total_segments_, 0);
  seg_sealed_.assign(total_segments_, false);
  segment_open_ = false;
  fill_ = flushed_ = 0;
  return common::OkStatus();
}

uint32_t LogStructuredDisk::FreeSegments() const {
  uint32_t free = 0;
  for (uint32_t s = 0; s < total_segments_; ++s) {
    if (seg_live_[s] == 0 && !(segment_open_ && s == current_segment_)) {
      ++free;
    }
  }
  return free;
}

double LogStructuredDisk::Utilization() const {
  uint64_t live = 0;
  for (const uint32_t n : seg_live_) {
    live += n;
  }
  return static_cast<double>(live) /
         (static_cast<double>(total_segments_) * DataBlocksPerSegment());
}

common::StatusOr<uint32_t> LogStructuredDisk::FindFreeSegment() const {
  for (uint32_t s = 0; s < total_segments_; ++s) {
    if (seg_live_[s] == 0 && !(segment_open_ && s == current_segment_)) {
      return s;
    }
  }
  return common::OutOfSpace("log disk: no free segment");
}

common::Status LogStructuredDisk::OpenSegment() {
  RETURN_IF_ERROR(EnsureCleanable(config_.min_free_segments));
  ASSIGN_OR_RETURN(current_segment_, FindFreeSegment());
  seg_sealed_[current_segment_] = false;
  segment_open_ = true;
  buffer_.assign(static_cast<size_t>(DataBlocksPerSegment()) * config_.block_bytes,
                 std::byte{0});
  buffer_logical_.assign(DataBlocksPerSegment(), kLldUnmapped);
  fill_ = 0;
  flushed_ = 0;
  return common::OkStatus();
}

common::Status LogStructuredDisk::WriteBlock(uint32_t lblock, std::span<const std::byte> in) {
  if (lblock >= logical_blocks_ || in.size() != config_.block_bytes) {
    return common::InvalidArgument("LLD WriteBlock: bad args");
  }
  ++stats_.blocks_written;
  if (!segment_open_) {
    RETURN_IF_ERROR(OpenSegment());
  }
  const uint32_t slot = pending_slot_[lblock];
  if (slot != kLldUnmapped && slot >= flushed_) {
    // Still only in memory: absorb the overwrite.
    std::memcpy(buffer_.data() + static_cast<size_t>(slot) * config_.block_bytes, in.data(),
                in.size());
    ++stats_.blocks_absorbed;
    return common::OkStatus();
  }
  if (fill_ == DataBlocksPerSegment()) {
    RETURN_IF_ERROR(FlushSegment(/*seal=*/true));
    RETURN_IF_ERROR(OpenSegment());
  }
  const uint32_t fresh = fill_++;
  std::memcpy(buffer_.data() + static_cast<size_t>(fresh) * config_.block_bytes, in.data(),
              in.size());
  buffer_logical_[fresh] = lblock;
  pending_slot_[lblock] = fresh;
  return common::OkStatus();
}

common::Status LogStructuredDisk::ReadBlock(uint32_t lblock, std::span<std::byte> out) {
  if (lblock >= logical_blocks_ || out.size() != config_.block_bytes) {
    return common::InvalidArgument("LLD ReadBlock: bad args");
  }
  ++stats_.reads;
  if (segment_open_ && pending_slot_[lblock] != kLldUnmapped) {
    std::memcpy(out.data(),
                buffer_.data() + static_cast<size_t>(pending_slot_[lblock]) * config_.block_bytes,
                out.size());
    ++stats_.buffer_read_hits;
    return common::OkStatus();
  }
  const uint32_t phys = map_[lblock];
  if (phys == kLldUnmapped) {
    std::fill(out.begin(), out.end(), std::byte{0});
    return common::OkStatus();
  }
  const simdisk::Lba lba = SegmentLba(SegmentOfPhys(phys)) +
                           static_cast<simdisk::Lba>(1 + SlotOfPhys(phys)) *
                               (config_.block_bytes / device_->SectorBytes());
  return device_->Read(lba, out);
}

common::Status LogStructuredDisk::TrimBlock(uint32_t lblock) {
  if (lblock >= logical_blocks_) {
    return common::InvalidArgument("LLD TrimBlock: bad block");
  }
  if (segment_open_ && pending_slot_[lblock] != kLldUnmapped) {
    const uint32_t slot = pending_slot_[lblock];
    pending_slot_[lblock] = kLldUnmapped;
    if (slot < fill_) {
      buffer_logical_[slot] = kLldUnmapped;  // The slot becomes garbage.
    }
  }
  const uint32_t phys = map_[lblock];
  if (phys != kLldUnmapped) {
    map_[lblock] = kLldUnmapped;
    reverse_[phys] = kLldUnmapped;
    --seg_live_[SegmentOfPhys(phys)];
  }
  return common::OkStatus();
}

common::Status LogStructuredDisk::FlushSegment(bool seal) {
  if (!segment_open_) {
    return common::OkStatus();
  }
  if (fill_ == flushed_ && !seal) {
    return common::OkStatus();
  }
  const uint32_t sectors_per_block = config_.block_bytes / device_->SectorBytes();

  // Summary block: magic, segment id, slot count, logical id per slot.
  std::vector<std::byte> summary(config_.block_bytes);
  common::StoreLe<uint64_t>(summary, 0, kSummaryMagic);
  common::StoreLe<uint32_t>(summary, 8, current_segment_);
  common::StoreLe<uint32_t>(summary, 12, fill_);
  for (uint32_t s = 0; s < fill_; ++s) {
    common::StoreLe<uint32_t>(summary, 16 + s * 4, buffer_logical_[s]);
  }
  RETURN_IF_ERROR(device_->Write(SegmentLba(current_segment_), summary));
  if (fill_ > flushed_) {
    RETURN_IF_ERROR(device_->Write(
        SegmentLba(current_segment_) +
            static_cast<simdisk::Lba>(1 + flushed_) * sectors_per_block,
        std::span<const std::byte>(buffer_).subspan(
            static_cast<size_t>(flushed_) * config_.block_bytes,
            static_cast<size_t>(fill_ - flushed_) * config_.block_bytes)));
  }

  // Commit the mappings of the newly durable slots.
  for (uint32_t slot = flushed_; slot < fill_; ++slot) {
    const uint32_t lblock = buffer_logical_[slot];
    if (lblock == kLldUnmapped || pending_slot_[lblock] != slot) {
      continue;  // Trimmed or superseded within the buffer: garbage.
    }
    const uint32_t phys = PhysOf(current_segment_, slot);
    const uint32_t old = map_[lblock];
    if (old != kLldUnmapped) {
      reverse_[old] = kLldUnmapped;
      --seg_live_[SegmentOfPhys(old)];
    }
    map_[lblock] = phys;
    reverse_[phys] = lblock;
    ++seg_live_[current_segment_];
  }
  flushed_ = fill_;

  if (seal || fill_ == DataBlocksPerSegment()) {
    for (uint32_t slot = 0; slot < fill_; ++slot) {
      const uint32_t lblock = buffer_logical_[slot];
      if (lblock != kLldUnmapped && pending_slot_[lblock] == slot) {
        pending_slot_[lblock] = kLldUnmapped;
      }
    }
    seg_sealed_[current_segment_] = true;
    segment_open_ = false;
    ++stats_.segment_writes;
  } else {
    ++stats_.partial_segment_writes;
  }
  return common::OkStatus();
}

common::Status LogStructuredDisk::Sync() {
  if (segment_open_ && (fill_ != 0 || flushed_ != 0)) {
    const bool above_threshold =
        fill_ >= static_cast<uint32_t>(config_.partial_segment_threshold *
                                       DataBlocksPerSegment());
    RETURN_IF_ERROR(FlushSegment(/*seal=*/above_threshold));
  }
  // Sync is the durability point: drain the device's volatile write cache so everything written
  // so far (this segment and any earlier ones) is actually on the media.
  return device_->Flush();
}

common::Status LogStructuredDisk::EnsureCleanable(uint32_t needed_free) {
  // Individual passes may be free-count neutral (an output segment is consumed while a source
  // is only partially drained), so bound by a pass budget rather than per-pass progress.
  for (uint32_t pass = 0; FreeSegments() < needed_free; ++pass) {
    if (pass > 2 * total_segments_) {
      return common::OutOfSpace("log disk full: cleaner cannot make progress");
    }
    const uint32_t before = FreeSegments();
    ASSIGN_OR_RETURN(const bool moved_any, CleanPass());
    if (!moved_any && FreeSegments() <= before) {
      if (FreeSegments() == 0) {
        return common::OutOfSpace("log disk full: cleaner cannot make progress");
      }
      break;  // Nothing cleanable; live with what we have.
    }
  }
  return common::OkStatus();
}

common::StatusOr<bool> LogStructuredDisk::CleanPass() {
  ++stats_.cleaner_runs;
  // Greedy: order sealed, non-open segments by live count, least utilized first.
  std::vector<uint32_t> candidates;
  for (uint32_t s = 0; s < total_segments_; ++s) {
    if (seg_sealed_[s] && seg_live_[s] > 0 && !(segment_open_ && s == current_segment_)) {
      candidates.push_back(s);
    }
  }
  if (candidates.empty()) {
    return false;
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](uint32_t a, uint32_t b) { return seg_live_[a] < seg_live_[b]; });

  ASSIGN_OR_RETURN(const uint32_t out, FindFreeSegment());
  const uint32_t capacity = DataBlocksPerSegment();
  std::vector<std::byte> out_data(static_cast<size_t>(capacity) * config_.block_bytes);
  std::vector<uint32_t> out_logical(capacity, kLldUnmapped);
  std::vector<std::pair<uint32_t, uint32_t>> moved;  // (logical, out slot)
  std::vector<uint32_t> sources;
  uint32_t out_fill = 0;

  std::vector<std::byte> seg_data(static_cast<size_t>(capacity) * config_.block_bytes);
  const uint32_t sectors_per_block = config_.block_bytes / device_->SectorBytes();
  for (const uint32_t src : candidates) {
    if (out_fill == capacity) {
      break;
    }
    RETURN_IF_ERROR(
        device_->Read(SegmentLba(src) + sectors_per_block, seg_data));  // Data region.
    // Sources may be split across outputs: copy as much as fits; the remainder stays live in
    // the source and a later pass drains it.
    for (uint32_t slot = 0; slot < capacity && out_fill < capacity; ++slot) {
      const uint32_t phys = PhysOf(src, slot);
      const uint32_t lblock = reverse_[phys];
      if (lblock == kLldUnmapped || map_[lblock] != phys) {
        continue;
      }
      std::memcpy(out_data.data() + static_cast<size_t>(out_fill) * config_.block_bytes,
                  seg_data.data() + static_cast<size_t>(slot) * config_.block_bytes,
                  config_.block_bytes);
      out_logical[out_fill] = lblock;
      moved.emplace_back(lblock, out_fill);
      ++out_fill;
    }
    sources.push_back(src);
  }
  if (moved.empty()) {
    return false;
  }

  // One contiguous write: summary + packed live blocks.
  std::vector<std::byte> region(config_.block_bytes);
  common::StoreLe<uint64_t>(region, 0, kSummaryMagic);
  common::StoreLe<uint32_t>(region, 8, out);
  common::StoreLe<uint32_t>(region, 12, out_fill);
  for (uint32_t s = 0; s < out_fill; ++s) {
    common::StoreLe<uint32_t>(region, 16 + s * 4, out_logical[s]);
  }
  region.insert(region.end(), out_data.begin(),
                out_data.begin() + static_cast<size_t>(out_fill) * config_.block_bytes);
  RETURN_IF_ERROR(device_->Write(SegmentLba(out), region));

  for (const auto& [lblock, slot] : moved) {
    const uint32_t old = map_[lblock];
    reverse_[old] = kLldUnmapped;
    --seg_live_[SegmentOfPhys(old)];
    const uint32_t phys = PhysOf(out, slot);
    map_[lblock] = phys;
    reverse_[phys] = lblock;
    ++seg_live_[out];
  }
  seg_sealed_[out] = true;
  for (const uint32_t src : sources) {
    if (seg_live_[src] == 0) {
      ++stats_.segments_cleaned;
    }
  }
  stats_.live_blocks_copied += moved.size();
  return true;
}

common::Status LogStructuredDisk::CleanDuringIdle(common::Time deadline, common::Clock* clock) {
  uint32_t stagnant = 0;
  while (clock->Now() < deadline && FreeSegments() < config_.idle_clean_target) {
    const uint32_t before = FreeSegments();
    ASSIGN_OR_RETURN(const bool moved_any, CleanPass());
    if (!moved_any) {
      break;
    }
    stagnant = FreeSegments() > before ? 0 : stagnant + 1;
    if (stagnant > total_segments_) {
      break;
    }
  }
  return common::OkStatus();
}

}  // namespace vlog::lfs
