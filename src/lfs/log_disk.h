// The log-structured logical disk (the paper's port of the MIT LLD, §4.4).
//
// Exports a logical 4 KB block interface; physically, writes accumulate in an in-memory
// segment buffer and reach the disk as 0.5 MB segment writes (a summary block followed by data
// blocks). "sync" applies the partial-segment rule: a buffer filled above the threshold is
// sealed as if full; below it, the current contents are written but the memory copy keeps
// receiving writes and later flushes append the delta. A greedy cleaner packs the live blocks
// of the emptiest sealed segments into fresh segments — invoked on demand when free segments
// run out and, optionally, during idle time.
#ifndef SRC_LFS_LOG_DISK_H_
#define SRC_LFS_LOG_DISK_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/simdisk/block_device.h"

namespace vlog::lfs {

inline constexpr uint32_t kLldUnmapped = ~0U;

struct LldConfig {
  uint32_t block_bytes = 4096;
  uint32_t segment_blocks = 128;  // 0.5 MB segments: 1 summary block + 127 data blocks.
  double partial_segment_threshold = 0.75;  // §4.4: flush-as-full above this fill level.
  uint32_t reserve_segments = 3;            // Withheld from the logical size for cleaning.
  uint32_t min_free_segments = 2;           // The on-demand cleaner keeps at least this many.
  uint32_t idle_clean_target = 6;           // Idle cleaning stops at this many free segments.
};

struct LldStats {
  uint64_t blocks_written = 0;       // Logical block writes accepted.
  uint64_t blocks_absorbed = 0;      // Overwrites absorbed while still in the buffer.
  uint64_t segment_writes = 0;       // Full (sealed) segment writes.
  uint64_t partial_segment_writes = 0;
  uint64_t cleaner_runs = 0;
  uint64_t segments_cleaned = 0;     // Source segments emptied by the cleaner.
  uint64_t live_blocks_copied = 0;   // Cleaning copy traffic.
  uint64_t reads = 0;
  uint64_t buffer_read_hits = 0;     // Reads served from the open segment buffer.
};

class LogStructuredDisk {
 public:
  LogStructuredDisk(simdisk::BlockDevice* device, LldConfig config = {});

  common::Status Format();

  uint32_t LogicalBlocks() const { return logical_blocks_; }
  uint32_t block_bytes() const { return config_.block_bytes; }

  common::Status ReadBlock(uint32_t lblock, std::span<std::byte> out);
  common::Status WriteBlock(uint32_t lblock, std::span<const std::byte> in);
  // Delete hint from the file system: the mapping is dropped and the space becomes cleanable.
  common::Status TrimBlock(uint32_t lblock);

  // Makes everything buffered durable, applying the partial-segment-threshold rule.
  common::Status Sync();

  // Runs the cleaner until `deadline`, enough segments are free, or nothing is cleanable.
  common::Status CleanDuringIdle(common::Time deadline, common::Clock* clock);

  uint32_t FreeSegments() const;
  double Utilization() const;  // Live blocks over data capacity.
  const LldStats& stats() const { return stats_; }

 private:
  uint32_t DataBlocksPerSegment() const { return config_.segment_blocks - 1; }
  simdisk::Lba SegmentLba(uint32_t segment) const {
    return static_cast<simdisk::Lba>(segment) * config_.segment_blocks *
           (config_.block_bytes / device_->SectorBytes());
  }
  // Physical block index helpers: phys = segment * data_blocks + slot.
  uint32_t PhysOf(uint32_t segment, uint32_t slot) const {
    return segment * DataBlocksPerSegment() + slot;
  }
  uint32_t SegmentOfPhys(uint32_t phys) const { return phys / DataBlocksPerSegment(); }
  uint32_t SlotOfPhys(uint32_t phys) const { return phys % DataBlocksPerSegment(); }

  common::Status OpenSegment();
  // Writes the buffer's unflushed tail plus the summary block; seals when requested or full.
  common::Status FlushSegment(bool seal);
  common::StatusOr<uint32_t> FindFreeSegment() const;
  common::Status EnsureCleanable(uint32_t needed_free);
  // Runs one packing pass; returns whether any block moved.
  common::StatusOr<bool> CleanPass();

  simdisk::BlockDevice* device_;
  LldConfig config_;
  uint32_t total_segments_ = 0;
  uint32_t logical_blocks_ = 0;
  std::vector<uint32_t> map_;        // logical -> phys data block (kLldUnmapped when unwritten).
  std::vector<uint32_t> reverse_;    // phys data block -> logical.
  std::vector<uint32_t> seg_live_;   // Live (mapped) blocks per segment.
  std::vector<bool> seg_sealed_;     // Sealed segments are cleanable; open/partial ones not.

  // The open segment buffer.
  bool segment_open_ = false;
  uint32_t current_segment_ = 0;
  std::vector<std::byte> buffer_;          // DataBlocksPerSegment() blocks.
  std::vector<uint32_t> buffer_logical_;   // Logical id per filled slot.
  uint32_t fill_ = 0;                      // Slots filled.
  uint32_t flushed_ = 0;                   // Slots already written by a partial flush.
  std::vector<uint32_t> pending_slot_;     // logical -> slot in open buffer (or kLldUnmapped).

  LldStats stats_;
};

}  // namespace vlog::lfs

#endif  // SRC_LFS_LOG_DISK_H_
