// A MinixUFS-style file system over the log-structured logical disk (§4.4's "LFS" stack).
//
// Block-granularity only (4 KB, no fragments), flat metadata layout in *logical* blocks:
// superblock, inode table, allocation bitmaps, then data. The log-structured logical disk
// underneath turns every write into a log append, so this pair reproduces the paper's ported
// MIT LLD + MinixUFS configuration: a 6.1 MB file buffer cache (optionally treated as NVRAM),
// all writes asynchronous until Sync()/eviction, and no read-ahead (disabled by the LLD port
// because logically contiguous blocks are not physically contiguous).
#ifndef SRC_LFS_SIMPLE_FS_H_
#define SRC_LFS_SIMPLE_FS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fs/file_system.h"
#include "src/lfs/log_disk.h"
#include "src/simdisk/host_model.h"
#include "src/ufs/layout.h"

namespace vlog::lfs {

struct SimpleFsConfig {
  uint32_t cache_blocks = 1562;  // ~6.1 MB of 4 KB buffers, as in the paper.
  bool cache_is_nvram = true;    // Documentation of the reliability assumption in Figures 8/10.
  uint32_t inode_blocks = 96;    // 32 inodes per block.
};

struct SimpleFsStats {
  uint64_t creates = 0;
  uint64_t removes = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t evictions = 0;
  uint64_t sync_writes = 0;
};

class SimpleFs : public fs::FileSystem {
 public:
  SimpleFs(LogStructuredDisk* disk, simdisk::HostModel* host, SimpleFsConfig config = {});

  common::Status Format();

  common::Status Create(const std::string& path) override;
  common::Status Mkdir(const std::string& path) override;
  common::Status Remove(const std::string& path) override;
  common::Status Write(const std::string& path, uint64_t offset, std::span<const std::byte> data,
                       fs::WritePolicy policy) override;
  common::StatusOr<uint64_t> Read(const std::string& path, uint64_t offset,
                                  std::span<std::byte> out) override;
  common::StatusOr<fs::FileInfo> Stat(const std::string& path) override;
  common::StatusOr<std::vector<std::string>> List(const std::string& dir_path) override;
  common::Status Sync() override;
  common::Status DropCaches() override;

  // Idle-time write-back: pushes dirty buffers to the log disk (oldest block numbers first)
  // until `deadline`. Unlike Sync(), it never overruns the idle budget by more than one
  // segment write, which is what Figure 10's idle-interval sweep measures.
  common::Status FlushDuringIdle(common::Time deadline, common::Clock* clock);
  uint64_t DirtyBlocks() const;

  double Utilization() const;
  uint64_t FreeBlocks() const;
  const SimpleFsStats& stats() const { return stats_; }
  LogStructuredDisk& log_disk() { return *disk_; }

 private:
  struct Buffer {
    std::vector<std::byte> data;
    bool dirty = false;
    uint64_t lru = 0;
  };

  uint32_t DataStart() const { return 1 + config_.inode_blocks; }
  uint32_t InodeCount() const { return config_.inode_blocks * ufs::kInodesPerBlock; }

  common::StatusOr<Buffer*> GetBlock(uint32_t lblock, bool read_from_disk);
  common::Status FlushBlock(uint32_t lblock, Buffer& buffer);
  common::Status EvictIfNeeded();

  common::StatusOr<ufs::Inode> ReadInode(uint32_t ino);
  common::Status StoreInode(uint32_t ino, const ufs::Inode& inode, bool sync);

  common::StatusOr<uint32_t> LookupPath(const std::string& path);
  common::StatusOr<uint32_t> ResolveParent(const std::string& path, std::string* leaf);
  common::StatusOr<uint32_t> DirFind(const ufs::Inode& dir, const std::string& name);
  common::Status DirAdd(uint32_t dir_ino, ufs::Inode& dir, const std::string& name,
                        uint32_t child, bool sync);
  common::Status DirRemove(const ufs::Inode& dir, const std::string& name, bool sync);
  common::Status CreateNode(const std::string& path, ufs::InodeType type);

  common::StatusOr<uint32_t> BmapRead(const ufs::Inode& inode, uint64_t fbi);
  common::StatusOr<uint32_t> BmapAlloc(ufs::Inode& inode, uint64_t fbi);
  common::Status FreeFileBlocks(ufs::Inode& inode);

  common::StatusOr<uint32_t> AllocBlock();
  void FreeBlock(uint32_t lblock);
  common::StatusOr<uint32_t> AllocInodeNumber();

  LogStructuredDisk* disk_;
  simdisk::HostModel* host_;
  SimpleFsConfig config_;
  std::vector<bool> block_used_;
  std::vector<bool> inode_used_;
  uint64_t free_blocks_ = 0;
  uint32_t alloc_rotor_ = 0;
  std::unordered_map<uint32_t, Buffer> cache_;
  uint64_t lru_tick_ = 0;
  SimpleFsStats stats_;
};

}  // namespace vlog::lfs

#endif  // SRC_LFS_SIMPLE_FS_H_
