#include "src/lfs/simple_fs.h"

#include <algorithm>
#include <cstring>

#include "src/common/bytes.h"

namespace vlog::lfs {

using ufs::DirEntry;
using ufs::Inode;
using ufs::InodeType;
using ufs::kBlockBytes;
using ufs::kDirectPtrs;
using ufs::kDirEntryBytes;
using ufs::kInodesPerBlock;
using ufs::kMaxNameLen;
using ufs::kNoAddr;
using ufs::kNoInode;
using ufs::kPtrsPerBlock;
using ufs::kRootInode;

namespace {

common::StatusOr<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return common::InvalidArgument("path must be absolute: " + path);
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    const size_t j = path.find('/', i);
    const size_t end = j == std::string::npos ? path.size() : j;
    if (end > i) {
      const std::string part = path.substr(i, end - i);
      if (part.size() > kMaxNameLen) {
        return common::InvalidArgument("name too long: " + part);
      }
      parts.push_back(part);
    }
    i = end + 1;
  }
  return parts;
}

}  // namespace

SimpleFs::SimpleFs(LogStructuredDisk* disk, simdisk::HostModel* host, SimpleFsConfig config)
    : disk_(disk), host_(host), config_(config) {}

common::Status SimpleFs::Format() {
  if (disk_->LogicalBlocks() <= DataStart()) {
    return common::InvalidArgument("log disk too small");
  }
  block_used_.assign(disk_->LogicalBlocks(), false);
  for (uint32_t b = 0; b < DataStart(); ++b) {
    block_used_[b] = true;
  }
  free_blocks_ = disk_->LogicalBlocks() - DataStart();
  inode_used_.assign(InodeCount(), false);
  inode_used_[kNoInode] = true;
  inode_used_[kRootInode] = true;
  cache_.clear();
  alloc_rotor_ = DataStart();

  Inode root;
  root.type = InodeType::kDirectory;
  root.nlink = 2;
  root.mtime = static_cast<uint64_t>(host_->clock()->Now());
  RETURN_IF_ERROR(StoreInode(kRootInode, root, /*sync=*/false));
  return Sync();
}

// --- Buffer cache over logical blocks ---

common::Status SimpleFs::EvictIfNeeded() {
  while (cache_.size() >= config_.cache_blocks) {
    // Global LRU (dirty buffers are flushed on the way out), as a Unix buffer cache does; a
    // clean-first policy would keep evicting the hot-but-clean indirect blocks.
    uint32_t victim = 0;
    uint64_t best = ~0ULL;
    for (const auto& [block, buffer] : cache_) {
      if (buffer.lru < best) {
        best = buffer.lru;
        victim = block;
      }
    }
    auto it = cache_.find(victim);
    if (it == cache_.end()) {
      break;
    }
    if (it->second.dirty) {
      RETURN_IF_ERROR(FlushBlock(it->first, it->second));
    }
    cache_.erase(it);
    ++stats_.evictions;
  }
  return common::OkStatus();
}

common::StatusOr<SimpleFs::Buffer*> SimpleFs::GetBlock(uint32_t lblock, bool read_from_disk) {
  auto it = cache_.find(lblock);
  if (it != cache_.end()) {
    it->second.lru = ++lru_tick_;
    ++stats_.cache_hits;
    return &it->second;
  }
  ++stats_.cache_misses;
  RETURN_IF_ERROR(EvictIfNeeded());
  Buffer buffer;
  buffer.data.resize(kBlockBytes);
  buffer.lru = ++lru_tick_;
  if (read_from_disk) {
    RETURN_IF_ERROR(disk_->ReadBlock(lblock, buffer.data));
  }
  auto [pos, inserted] = cache_.emplace(lblock, std::move(buffer));
  return &pos->second;
}

common::Status SimpleFs::FlushBlock(uint32_t lblock, Buffer& buffer) {
  RETURN_IF_ERROR(disk_->WriteBlock(lblock, buffer.data));
  buffer.dirty = false;
  return common::OkStatus();
}

// --- Inodes ---

common::StatusOr<Inode> SimpleFs::ReadInode(uint32_t ino) {
  if (ino == kNoInode || ino >= InodeCount()) {
    return common::InvalidArgument("bad inode number");
  }
  ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(1 + ino / kInodesPerBlock, true));
  return Inode::Decode(
      std::span<const std::byte>(buffer->data).subspan((ino % kInodesPerBlock) * ufs::kInodeBytes));
}

common::Status SimpleFs::StoreInode(uint32_t ino, const Inode& inode, bool sync) {
  const uint32_t lblock = 1 + ino / kInodesPerBlock;
  ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(lblock, true));
  inode.EncodeTo(
      std::span<std::byte>(buffer->data).subspan((ino % kInodesPerBlock) * ufs::kInodeBytes));
  buffer->dirty = true;
  if (sync) {
    RETURN_IF_ERROR(FlushBlock(lblock, *buffer));
  }
  return common::OkStatus();
}

// --- Allocation ---

uint64_t SimpleFs::FreeBlocks() const { return free_blocks_; }

double SimpleFs::Utilization() const {
  const uint64_t data = disk_->LogicalBlocks() - DataStart();
  return 1.0 - static_cast<double>(free_blocks_) / static_cast<double>(data);
}

common::StatusOr<uint32_t> SimpleFs::AllocBlock() {
  if (free_blocks_ == 0) {
    return common::OutOfSpace("file system full");
  }
  const uint32_t total = disk_->LogicalBlocks();
  for (uint32_t i = 0; i < total; ++i) {
    const uint32_t b = alloc_rotor_ + i < total ? alloc_rotor_ + i
                                                : DataStart() + (alloc_rotor_ + i - total);
    if (!block_used_[b]) {
      block_used_[b] = true;
      --free_blocks_;
      alloc_rotor_ = b + 1 < total ? b + 1 : DataStart();
      return b;
    }
  }
  return common::OutOfSpace("file system full");
}

void SimpleFs::FreeBlock(uint32_t lblock) {
  block_used_[lblock] = false;
  ++free_blocks_;
  cache_.erase(lblock);          // Cancel any delayed write.
  (void)disk_->TrimBlock(lblock);  // Delete hint so the cleaner can reclaim the space.
}

common::StatusOr<uint32_t> SimpleFs::AllocInodeNumber() {
  for (uint32_t i = 0; i < inode_used_.size(); ++i) {
    if (!inode_used_[i]) {
      inode_used_[i] = true;
      return i;
    }
  }
  return common::OutOfSpace("out of inodes");
}

// --- Block mapping ---

common::StatusOr<uint32_t> SimpleFs::BmapRead(const Inode& inode, uint64_t fbi) {
  if (fbi < kDirectPtrs) {
    return inode.direct[fbi];
  }
  fbi -= kDirectPtrs;
  if (fbi < kPtrsPerBlock) {
    if (inode.indirect == kNoAddr) {
      return kNoAddr;
    }
    ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(inode.indirect, true));
    return common::LoadLe<uint32_t>(buffer->data, fbi * 4);
  }
  fbi -= kPtrsPerBlock;
  if (fbi < static_cast<uint64_t>(kPtrsPerBlock) * kPtrsPerBlock) {
    if (inode.dindirect == kNoAddr) {
      return kNoAddr;
    }
    ASSIGN_OR_RETURN(Buffer * outer, GetBlock(inode.dindirect, true));
    const uint32_t mid = common::LoadLe<uint32_t>(outer->data, (fbi / kPtrsPerBlock) * 4);
    if (mid == kNoAddr) {
      return kNoAddr;
    }
    ASSIGN_OR_RETURN(Buffer * inner, GetBlock(mid, true));
    return common::LoadLe<uint32_t>(inner->data, (fbi % kPtrsPerBlock) * 4);
  }
  return common::InvalidArgument("file too large");
}

common::StatusOr<uint32_t> SimpleFs::BmapAlloc(Inode& inode, uint64_t fbi) {
  ASSIGN_OR_RETURN(uint32_t current, BmapRead(inode, fbi));
  if (current != kNoAddr) {
    return current;
  }
  ASSIGN_OR_RETURN(const uint32_t fresh, AllocBlock());
  if (fbi < kDirectPtrs) {
    inode.direct[fbi] = fresh;
    return fresh;
  }
  uint64_t idx = fbi - kDirectPtrs;
  uint32_t table;
  if (idx < kPtrsPerBlock) {
    if (inode.indirect == kNoAddr) {
      ASSIGN_OR_RETURN(inode.indirect, AllocBlock());
      ASSIGN_OR_RETURN(Buffer * b, GetBlock(inode.indirect, false));
      std::fill(b->data.begin(), b->data.end(), std::byte{0});
      b->dirty = true;
    }
    table = inode.indirect;
  } else {
    idx -= kPtrsPerBlock;
    if (inode.dindirect == kNoAddr) {
      ASSIGN_OR_RETURN(inode.dindirect, AllocBlock());
      ASSIGN_OR_RETURN(Buffer * b, GetBlock(inode.dindirect, false));
      std::fill(b->data.begin(), b->data.end(), std::byte{0});
      b->dirty = true;
    }
    ASSIGN_OR_RETURN(Buffer * outer, GetBlock(inode.dindirect, true));
    uint32_t mid = common::LoadLe<uint32_t>(outer->data, (idx / kPtrsPerBlock) * 4);
    if (mid == kNoAddr) {
      ASSIGN_OR_RETURN(mid, AllocBlock());
      ASSIGN_OR_RETURN(Buffer * b, GetBlock(mid, false));
      std::fill(b->data.begin(), b->data.end(), std::byte{0});
      b->dirty = true;
      common::StoreLe<uint32_t>(outer->data, (idx / kPtrsPerBlock) * 4, mid);
      outer->dirty = true;
    }
    table = mid;
  }
  ASSIGN_OR_RETURN(Buffer * tb, GetBlock(table, true));
  common::StoreLe<uint32_t>(tb->data, (idx % kPtrsPerBlock) * 4, fresh);
  tb->dirty = true;
  return fresh;
}

common::Status SimpleFs::FreeFileBlocks(Inode& inode) {
  const uint64_t blocks = (inode.size + kBlockBytes - 1) / kBlockBytes;
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t addr, BmapRead(inode, fbi));
    if (addr != kNoAddr) {
      FreeBlock(addr);
    }
  }
  if (inode.indirect != kNoAddr) {
    FreeBlock(inode.indirect);
  }
  if (inode.dindirect != kNoAddr) {
    ASSIGN_OR_RETURN(Buffer * outer, GetBlock(inode.dindirect, true));
    for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      const uint32_t mid = common::LoadLe<uint32_t>(outer->data, i * 4);
      if (mid != kNoAddr) {
        FreeBlock(mid);
      }
    }
    FreeBlock(inode.dindirect);
  }
  std::fill(std::begin(inode.direct), std::end(inode.direct), kNoAddr);
  inode.indirect = kNoAddr;
  inode.dindirect = kNoAddr;
  inode.size = 0;
  return common::OkStatus();
}

// --- Paths & directories ---

common::StatusOr<uint32_t> SimpleFs::LookupPath(const std::string& path) {
  ASSIGN_OR_RETURN(const auto parts, SplitPath(path));
  uint32_t ino = kRootInode;
  for (const std::string& part : parts) {
    ASSIGN_OR_RETURN(const Inode dir, ReadInode(ino));
    if (dir.type != InodeType::kDirectory) {
      return common::InvalidArgument("not a directory on path: " + path);
    }
    ASSIGN_OR_RETURN(ino, DirFind(dir, part));
  }
  return ino;
}

common::StatusOr<uint32_t> SimpleFs::ResolveParent(const std::string& path, std::string* leaf) {
  ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  if (parts.empty()) {
    return common::InvalidArgument("path refers to the root");
  }
  *leaf = parts.back();
  parts.pop_back();
  uint32_t ino = kRootInode;
  for (const std::string& part : parts) {
    ASSIGN_OR_RETURN(const Inode dir, ReadInode(ino));
    ASSIGN_OR_RETURN(ino, DirFind(dir, part));
  }
  return ino;
}

common::StatusOr<uint32_t> SimpleFs::DirFind(const Inode& dir, const std::string& name) {
  const uint64_t blocks = dir.size / kBlockBytes;
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t addr, BmapRead(dir, fbi));
    if (addr == kNoAddr) {
      continue;
    }
    ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(addr, true));
    for (uint32_t e = 0; e < kBlockBytes / kDirEntryBytes; ++e) {
      const DirEntry entry =
          DirEntry::Decode(std::span<const std::byte>(buffer->data).subspan(e * kDirEntryBytes));
      if (entry.ino != kNoInode && entry.name == name) {
        return entry.ino;
      }
    }
  }
  return common::NotFound("no such file: " + name);
}

common::Status SimpleFs::DirAdd(uint32_t dir_ino, Inode& dir, const std::string& name,
                                uint32_t child, bool sync) {
  const uint64_t blocks = dir.size / kBlockBytes;
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t addr, BmapRead(dir, fbi));
    ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(addr, true));
    for (uint32_t e = 0; e < kBlockBytes / kDirEntryBytes; ++e) {
      const DirEntry entry =
          DirEntry::Decode(std::span<const std::byte>(buffer->data).subspan(e * kDirEntryBytes));
      if (entry.ino == kNoInode) {
        DirEntry fresh{child, name};
        fresh.EncodeTo(std::span<std::byte>(buffer->data).subspan(e * kDirEntryBytes));
        buffer->dirty = true;
        if (sync) {
          RETURN_IF_ERROR(FlushBlock(addr, *buffer));
        }
        return common::OkStatus();
      }
    }
  }
  ASSIGN_OR_RETURN(const uint32_t addr, BmapAlloc(dir, blocks));
  ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(addr, false));
  std::fill(buffer->data.begin(), buffer->data.end(), std::byte{0});
  DirEntry fresh{child, name};
  fresh.EncodeTo(buffer->data);
  buffer->dirty = true;
  dir.size += kBlockBytes;
  dir.mtime = static_cast<uint64_t>(host_->clock()->Now());
  if (sync) {
    RETURN_IF_ERROR(FlushBlock(addr, *buffer));
  }
  return StoreInode(dir_ino, dir, sync);
}

common::Status SimpleFs::DirRemove(const Inode& dir, const std::string& name, bool sync) {
  const uint64_t blocks = dir.size / kBlockBytes;
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t addr, BmapRead(dir, fbi));
    ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(addr, true));
    for (uint32_t e = 0; e < kBlockBytes / kDirEntryBytes; ++e) {
      const DirEntry entry =
          DirEntry::Decode(std::span<const std::byte>(buffer->data).subspan(e * kDirEntryBytes));
      if (entry.ino != kNoInode && entry.name == name) {
        DirEntry empty;
        empty.EncodeTo(std::span<std::byte>(buffer->data).subspan(e * kDirEntryBytes));
        buffer->dirty = true;
        if (sync) {
          RETURN_IF_ERROR(FlushBlock(addr, *buffer));
        }
        return common::OkStatus();
      }
    }
  }
  return common::NotFound("no such entry: " + name);
}

common::Status SimpleFs::CreateNode(const std::string& path, InodeType type) {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs);
  host_->ChargeSyscall();
  std::string leaf;
  ASSIGN_OR_RETURN(const uint32_t parent_ino, ResolveParent(path, &leaf));
  ASSIGN_OR_RETURN(Inode parent, ReadInode(parent_ino));
  if (parent.type != InodeType::kDirectory) {
    return common::InvalidArgument("parent is not a directory");
  }
  if (DirFind(parent, leaf).ok()) {
    return common::AlreadyExists(path);
  }
  ASSIGN_OR_RETURN(const uint32_t ino, AllocInodeNumber());
  Inode node;
  node.type = type;
  node.nlink = type == InodeType::kDirectory ? 2 : 1;
  node.mtime = static_cast<uint64_t>(host_->clock()->Now());
  host_->ChargeBlocks(2);
  // All metadata is asynchronous in this stack: the buffer cache (NVRAM in some experiments)
  // holds it until Sync() or eviction.
  RETURN_IF_ERROR(StoreInode(ino, node, /*sync=*/false));
  RETURN_IF_ERROR(DirAdd(parent_ino, parent, leaf, ino, /*sync=*/false));
  ++stats_.creates;
  return common::OkStatus();
}

common::Status SimpleFs::Create(const std::string& path) {
  return CreateNode(path, InodeType::kFile);
}

common::Status SimpleFs::Mkdir(const std::string& path) {
  return CreateNode(path, InodeType::kDirectory);
}

common::Status SimpleFs::Remove(const std::string& path) {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs);
  host_->ChargeSyscall();
  std::string leaf;
  ASSIGN_OR_RETURN(const uint32_t parent_ino, ResolveParent(path, &leaf));
  ASSIGN_OR_RETURN(const Inode parent, ReadInode(parent_ino));
  ASSIGN_OR_RETURN(const uint32_t ino, DirFind(parent, leaf));
  ASSIGN_OR_RETURN(Inode node, ReadInode(ino));
  if (node.type == InodeType::kDirectory) {
    ASSIGN_OR_RETURN(const auto entries, List(path));
    if (!entries.empty()) {
      return common::FailedPrecondition("directory not empty: " + path);
    }
  }
  host_->ChargeBlocks(2);
  RETURN_IF_ERROR(DirRemove(parent, leaf, /*sync=*/false));
  RETURN_IF_ERROR(FreeFileBlocks(node));
  node.type = InodeType::kFree;
  node.nlink = 0;
  RETURN_IF_ERROR(StoreInode(ino, node, /*sync=*/false));
  inode_used_[ino] = false;
  ++stats_.removes;
  return common::OkStatus();
}

common::Status SimpleFs::Write(const std::string& path, uint64_t offset,
                               std::span<const std::byte> data, fs::WritePolicy policy) {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs, offset, data.size());
  host_->ChargeSyscall();
  host_->ChargeCopy(data.size());
  ASSIGN_OR_RETURN(const uint32_t ino, LookupPath(path));
  ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
  if (inode.type != InodeType::kFile) {
    return common::InvalidArgument("not a regular file: " + path);
  }
  if (offset > inode.size) {
    return common::Unimplemented("sparse files not supported");
  }
  const bool sync = policy == fs::WritePolicy::kSync;

  uint64_t written = 0;
  while (written < data.size()) {
    const uint64_t pos = offset + written;
    const uint64_t fbi = pos / kBlockBytes;
    const uint64_t in_block = pos % kBlockBytes;
    const uint64_t chunk = std::min<uint64_t>(kBlockBytes - in_block, data.size() - written);
    host_->ChargeBlocks(1);
    ASSIGN_OR_RETURN(const uint32_t addr, BmapAlloc(inode, fbi));
    const bool full = in_block == 0 && chunk == kBlockBytes;
    // A partial write must preserve the block's other bytes whenever the block overlaps the
    // existing file (including an append into a partially filled tail block). A brand-new
    // block arrives zero-initialized from GetBlock.
    const bool has_old = fbi * kBlockBytes < inode.size;
    ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(addr, !full && has_old));
    std::memcpy(buffer->data.data() + in_block, data.data() + written, chunk);
    buffer->dirty = true;
    if (sync) {
      RETURN_IF_ERROR(FlushBlock(addr, *buffer));
    }
    written += chunk;
  }

  inode.size = std::max<uint64_t>(inode.size, offset + data.size());
  inode.mtime = static_cast<uint64_t>(host_->clock()->Now());
  RETURN_IF_ERROR(StoreInode(ino, inode, sync));
  if (sync) {
    ++stats_.sync_writes;
    // "fsync" semantics on LFS: force the (possibly partial) segment out (§4.4).
    return disk_->Sync();
  }
  return common::OkStatus();
}

common::StatusOr<uint64_t> SimpleFs::Read(const std::string& path, uint64_t offset,
                                          std::span<std::byte> out) {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs, offset, out.size());
  host_->ChargeSyscall();
  ASSIGN_OR_RETURN(const uint32_t ino, LookupPath(path));
  ASSIGN_OR_RETURN(const Inode inode, ReadInode(ino));
  if (offset >= inode.size) {
    return uint64_t{0};
  }
  const uint64_t len = std::min<uint64_t>(out.size(), inode.size - offset);
  host_->ChargeCopy(len);
  uint64_t done = 0;
  while (done < len) {
    const uint64_t pos = offset + done;
    const uint64_t fbi = pos / kBlockBytes;
    const uint64_t in_block = pos % kBlockBytes;
    const uint64_t chunk = std::min<uint64_t>(kBlockBytes - in_block, len - done);
    host_->ChargeBlocks(1);
    ASSIGN_OR_RETURN(const uint32_t addr, BmapRead(inode, fbi));
    if (addr == kNoAddr) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      // No read-ahead: the LLD port disabled it (§4.4).
      ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(addr, true));
      std::memcpy(out.data() + done, buffer->data.data() + in_block, chunk);
    }
    done += chunk;
  }
  return len;
}

common::StatusOr<fs::FileInfo> SimpleFs::Stat(const std::string& path) {
  host_->ChargeSyscall();
  ASSIGN_OR_RETURN(const uint32_t ino, LookupPath(path));
  ASSIGN_OR_RETURN(const Inode inode, ReadInode(ino));
  return fs::FileInfo{inode.size, inode.type == InodeType::kDirectory};
}

common::StatusOr<std::vector<std::string>> SimpleFs::List(const std::string& dir_path) {
  host_->ChargeSyscall();
  ASSIGN_OR_RETURN(const uint32_t ino, LookupPath(dir_path));
  ASSIGN_OR_RETURN(const Inode dir, ReadInode(ino));
  if (dir.type != InodeType::kDirectory) {
    return common::InvalidArgument("not a directory: " + dir_path);
  }
  std::vector<std::string> names;
  const uint64_t blocks = dir.size / kBlockBytes;
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t addr, BmapRead(dir, fbi));
    ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(addr, true));
    for (uint32_t e = 0; e < kBlockBytes / kDirEntryBytes; ++e) {
      const DirEntry entry =
          DirEntry::Decode(std::span<const std::byte>(buffer->data).subspan(e * kDirEntryBytes));
      if (entry.ino != kNoInode) {
        names.push_back(entry.name);
      }
    }
  }
  return names;
}

common::Status SimpleFs::Sync() {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs);
  host_->ChargeSyscall();
  // Deterministic flush order (ascending logical block) so segments pack consistently.
  std::vector<uint32_t> dirty;
  for (const auto& [block, buffer] : cache_) {
    if (buffer.dirty) {
      dirty.push_back(block);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  for (const uint32_t block : dirty) {
    RETURN_IF_ERROR(FlushBlock(block, cache_[block]));
  }
  return disk_->Sync();
}

uint64_t SimpleFs::DirtyBlocks() const {
  uint64_t n = 0;
  for (const auto& [block, buffer] : cache_) {
    n += buffer.dirty ? 1 : 0;
  }
  return n;
}

common::Status SimpleFs::FlushDuringIdle(common::Time deadline, common::Clock* clock) {
  std::vector<uint32_t> dirty;
  for (const auto& [block, buffer] : cache_) {
    if (buffer.dirty) {
      dirty.push_back(block);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  for (const uint32_t block : dirty) {
    if (clock->Now() >= deadline) {
      break;
    }
    RETURN_IF_ERROR(FlushBlock(block, cache_[block]));
  }
  return common::OkStatus();
}

common::Status SimpleFs::DropCaches() {
  RETURN_IF_ERROR(Sync());
  cache_.clear();
  return common::OkStatus();
}

}  // namespace vlog::lfs
