#include "src/models/analytic.h"

#include <algorithm>
#include <cmath>

namespace vlog::models {

double SingleTrackSkips(double p, uint32_t n) {
  const double nn = static_cast<double>(n);
  return (1.0 - p) * nn / (1.0 + p * nn);
}

double BlockSkips(double p, uint32_t n, uint32_t logical_sectors, uint32_t physical_sectors) {
  const double nn = static_cast<double>(n);
  const double b = static_cast<double>(physical_sectors);
  const double big_b = static_cast<double>(logical_sectors);
  // Formula (9): ((1-p)·n / (b + p·n)) · B, with B and b counted in sectors. The B/b searches
  // for b-sector physical blocks each skip (1-p)(n/b)/(1+p(n/b)) block slots of b sectors, which
  // multiplies out to the single expression below; it is minimized when b == B.
  return (1.0 - p) * nn / (b + p * nn) * big_b;
}

double SingleCylinderSkips(double p, uint32_t n, uint32_t t, double head_switch_sectors) {
  if (p <= 0.0) {
    return static_cast<double>(n);  // Degenerate: no free space; caller should avoid this.
  }
  if (t <= 1) {
    return SingleTrackSkips(p, n);
  }
  // fy(p, y) = fx(1-(1-p)^(t-1), y - s): the chance that the first (y-s) rotational positions
  // are occupied in all other (t-1) tracks and at least one is free at the next position.
  const double q = 1.0 - std::pow(1.0 - p, static_cast<double>(t - 1));
  const int s = static_cast<int>(std::llround(head_switch_sectors));
  const int limit = static_cast<int>(n) * 4 + s + 8;  // Probability mass beyond this is ~0.

  // E[min(x, y)] over independent x ~ fx(p,·) on {0,1,...} and y ~ s + fx(q,·).
  // Use E[min] = sum_{k>=1} P(x>=k)P(y>=k); tails are geometric so this converges fast.
  double expected = 0.0;
  for (int k = 1; k <= limit; ++k) {
    const double px_tail = std::pow(1.0 - p, k);              // P(x >= k)
    const double py_tail = k <= s ? 1.0 : std::pow(1.0 - q, k - s);  // P(y >= k)
    const double term = px_tail * py_tail;
    expected += term;
    if (term < 1e-12 && k > s) {
      break;
    }
  }
  return expected;
}

double FillTrackSkipsExact(uint32_t n, uint32_t m) {
  double total = 0.0;
  for (uint32_t i = m + 1; i <= n; ++i) {
    total += static_cast<double>(n - i) / (1.0 + i);
  }
  return total;
}

double NonRandomnessCorrection(uint32_t n, uint32_t m) {
  const double nn = static_cast<double>(n);
  const double mm = static_cast<double>(m);
  const double p = 1.0 + nn / 36.0;
  const double numerator = std::pow(nn - mm - 0.5, p + 2.0);
  const double denominator = (8.0 - nn / 96.0) * (p + 2.0) * std::pow(nn, p);
  if (denominator <= 0.0) {
    return 0.0;
  }
  return numerator / denominator;
}

common::Duration FillTrackLatency(uint32_t n, uint32_t m, common::Duration track_switch,
                                  common::Duration sector_time) {
  const double nn = static_cast<double>(n);
  const double mm = static_cast<double>(m);
  // (n+1)·ln((n+2)/(m+2)) − (n−m) approximates the exact sum (10); ε corrects for the
  // clustering of free space produced by greedy nearest-free writing.
  const double skips =
      (nn + 1.0) * std::log((nn + 2.0) / (mm + 2.0)) - (nn - mm) + NonRandomnessCorrection(n, m);
  const double per_write =
      (static_cast<double>(track_switch) + static_cast<double>(sector_time) * skips) / (nn - mm);
  return static_cast<common::Duration>(per_write);
}

common::Duration HalfRotation(common::Duration rotation_period) { return rotation_period / 2; }

}  // namespace vlog::models
