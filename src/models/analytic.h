// Analytical models of eager-writing latency from Section 2 and Appendix A of the paper.
//
// All results are expressed in units of *sectors skipped* (multiply by the per-sector rotation
// time to get seconds) unless a function says otherwise. Parameters follow the paper:
//   n — sectors per track        p — fraction of free space      t — tracks per cylinder
//   s — head-switch cost         m — free sectors reserved per track before switching
//   r — rotational time per sector
#ifndef SRC_MODELS_ANALYTIC_H_
#define SRC_MODELS_ANALYTIC_H_

#include <cstdint>

#include "src/common/time.h"

namespace vlog::models {

// Formula (1): expected number of occupied sectors skipped before reaching a free sector on a
// single track with n sectors and free fraction p, free space randomly distributed.
double SingleTrackSkips(double p, uint32_t n);

// Formula (9), Appendix A.1: expected sectors skipped to locate all free sectors for one file
// system logical block of B sectors when the disk allocates physical blocks of b sectors
// (b <= B). Lowest when b == B.
double BlockSkips(double p, uint32_t n, uint32_t logical_sectors, uint32_t physical_sectors);

// Formulas (2)-(4): expected latency, in sector units, to locate the nearest free sector in the
// current cylinder: min of the current-track delay x and the other-track delay y (which pays a
// head switch of `head_switch_sectors`). t is tracks per cylinder.
double SingleCylinderSkips(double p, uint32_t n, uint32_t t, double head_switch_sectors);

// Formula (10): exact sum of skips while filling an initially empty track from n free sectors
// down to m reserved free sectors, assuming random arrival positions.
double FillTrackSkipsExact(uint32_t n, uint32_t m);

// Formula (12): empirical correction for the non-randomness of free space under greedy
// nearest-free writing.
double NonRandomnessCorrection(uint32_t n, uint32_t m);

// Formula (13): average latency per write while filling an empty track to threshold, including
// the amortized track-switch cost. `track_switch` is the switch cost; `sector_time` is r.
common::Duration FillTrackLatency(uint32_t n, uint32_t m, common::Duration track_switch,
                                  common::Duration sector_time);

// Helper: the update-in-place baseline the paper quotes — an average half-rotation.
common::Duration HalfRotation(common::Duration rotation_period);

}  // namespace vlog::models

#endif  // SRC_MODELS_ANALYTIC_H_
