// Monte-Carlo validators for the Section 2 analytical models. These are the "Simulation" curves
// of Figures 1 and 2: self-contained track/cylinder experiments independent of the full SimDisk.
#ifndef SRC_MODELS_TRACK_SIM_H_
#define SRC_MODELS_TRACK_SIM_H_

#include <cstdint>

#include "src/common/rng.h"

namespace vlog::models {

// Average sectors skipped before the first free sector on one track of n sectors with exactly
// round(p*n) free sectors placed uniformly at random; head starts at a uniform position.
double SimulateSingleTrackSkips(double p, uint32_t n, uint32_t trials, common::Rng& rng);

// Average of min(current-track delay, other-track delay) over a cylinder of t tracks; other
// tracks cost `head_switch_sectors` before a candidate is reachable. Validates formula (2).
double SimulateCylinderSkips(double p, uint32_t n, uint32_t t, double head_switch_sectors,
                             uint32_t trials, common::Rng& rng);

// Fills an initially empty track from n free sectors down to m using greedy nearest-free eager
// writing and returns the average per-write latency in sector units, with the track switch cost
// (also in sector units) amortized over the n-m writes. Validates formula (13).
double SimulateFillTrack(uint32_t n, uint32_t m, double track_switch_sectors, uint32_t trials,
                         common::Rng& rng);

}  // namespace vlog::models

#endif  // SRC_MODELS_TRACK_SIM_H_
