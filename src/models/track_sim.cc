#include "src/models/track_sim.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace vlog::models {
namespace {

// Places exactly `free_count` free sectors uniformly at random in a track of n (true = free).
void RandomOccupancy(std::vector<bool>& track, uint32_t free_count, common::Rng& rng) {
  const uint32_t n = static_cast<uint32_t>(track.size());
  std::fill(track.begin(), track.end(), false);
  // Floyd's algorithm would also work; n is small, so partial Fisher-Yates over indices is fine.
  std::vector<uint32_t> idx(n);
  for (uint32_t i = 0; i < n; ++i) {
    idx[i] = i;
  }
  for (uint32_t i = 0; i < free_count; ++i) {
    const uint32_t j = i + static_cast<uint32_t>(rng.Below(n - i));
    std::swap(idx[i], idx[j]);
    track[idx[i]] = true;
  }
}

// Sectors skipped from `start` (inclusive) until the first free sector, scanning forward
// circularly. Returns n if the track is full.
uint32_t SkipsFrom(const std::vector<bool>& track, uint32_t start) {
  const uint32_t n = static_cast<uint32_t>(track.size());
  for (uint32_t d = 0; d < n; ++d) {
    if (track[(start + d) % n]) {
      return d;
    }
  }
  return n;
}

}  // namespace

double SimulateSingleTrackSkips(double p, uint32_t n, uint32_t trials, common::Rng& rng) {
  const uint32_t free_count = std::max<uint32_t>(1, static_cast<uint32_t>(std::lround(p * n)));
  std::vector<bool> track(n);
  double total = 0.0;
  for (uint32_t i = 0; i < trials; ++i) {
    RandomOccupancy(track, free_count, rng);
    total += SkipsFrom(track, static_cast<uint32_t>(rng.Below(n)));
  }
  return total / trials;
}

double SimulateCylinderSkips(double p, uint32_t n, uint32_t t, double head_switch_sectors,
                             uint32_t trials, common::Rng& rng) {
  const uint32_t free_count = std::max<uint32_t>(1, static_cast<uint32_t>(std::lround(p * n)));
  std::vector<std::vector<bool>> cyl(t, std::vector<bool>(n));
  const uint32_t s = static_cast<uint32_t>(std::llround(head_switch_sectors));
  double total = 0.0;
  for (uint32_t trial = 0; trial < trials; ++trial) {
    for (auto& track : cyl) {
      RandomOccupancy(track, free_count, rng);
    }
    const uint32_t head = static_cast<uint32_t>(rng.Below(n));
    uint32_t best = SkipsFrom(cyl[0], head);  // Current track: track 0 by convention.
    for (uint32_t k = 1; k < t; ++k) {
      // Other tracks: the earliest reachable rotational position is head + s.
      const uint32_t y = s + SkipsFrom(cyl[k], (head + s) % n);
      best = std::min(best, y);
    }
    total += best;
  }
  return total / trials;
}

double SimulateFillTrack(uint32_t n, uint32_t m, double track_switch_sectors, uint32_t trials,
                         common::Rng& rng) {
  double total_latency = 0.0;
  std::vector<bool> track(n);
  for (uint32_t trial = 0; trial < trials; ++trial) {
    std::fill(track.begin(), track.end(), true);  // All free.
    // Greedy eager writing: each write lands on the nearest free sector ahead of the head; the
    // head then rests just past it. Between writes the platter keeps spinning under a random
    // arrival phase, modeled by a uniform random head displacement.
    uint32_t head = static_cast<uint32_t>(rng.Below(n));
    double skips = 0.0;
    for (uint32_t written = 0; written < n - m; ++written) {
      const uint32_t d = SkipsFrom(track, head);
      skips += d;
      const uint32_t target = (head + d) % n;
      track[target] = false;
      // Random arrival phase of the next write.
      head = static_cast<uint32_t>(rng.Below(n));
    }
    total_latency += (track_switch_sectors + skips) / static_cast<double>(n - m);
  }
  return total_latency / trials;
}

}  // namespace vlog::models
