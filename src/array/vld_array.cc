#include "src/array/vld_array.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/core/map_sector.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"

namespace vlog::array {

void VldArray::RegisterTimelineProbes(obs::Timeline& timeline) const {
  timeline.AddGauge("array.queued_requests",
                    [this] { return static_cast<uint64_t>(queue_.size()); });
  timeline.AddGauge("array.healthy_members",
                    [this] { return static_cast<uint64_t>(healthy_members()); });
  for (uint32_t m = 0; m < member_count(); ++m) {
    members_[m]->RegisterTimelineProbes(timeline, "m" + std::to_string(m) + ".");
  }
}

VldArray::VldArray(std::vector<core::Vld*> members, VldArrayConfig config)
    : members_(std::move(members)), config_(config) {
  assert(!members_.empty());
  assert(config_.stripe_blocks > 0);
  block_sectors_ = members_[0]->block_sectors();
  uint64_t min_sectors = members_[0]->SectorCount();
  queue_depth_ = members_[0]->queue_depth();
  for (const core::Vld* m : members_) {
    assert(m->block_sectors() == block_sectors_);
    min_sectors = std::min(min_sectors, m->SectorCount());
    queue_depth_ = std::min(queue_depth_, m->queue_depth());
  }
  chunk_sectors_ = static_cast<uint64_t>(config_.stripe_blocks) * block_sectors_;
  chunks_per_member_ = min_sectors / chunk_sectors_;
  mirrored_sectors_ = min_sectors;
  failed_.assign(members_.size(), false);
  member_hist_.resize(members_.size());
}

uint64_t VldArray::SectorCount() const {
  return config_.mode == ArrayMode::kStriped
             ? members_.size() * chunks_per_member_ * chunk_sectors_
             : mirrored_sectors_;
}

uint32_t VldArray::SectorBytes() const { return members_[0]->SectorBytes(); }

uint32_t VldArray::healthy_members() const {
  uint32_t n = 0;
  for (const bool f : failed_) {
    n += f ? 0 : 1;
  }
  return n;
}

common::Status VldArray::MarkFailed(uint32_t member) {
  if (member >= members_.size()) {
    return common::InvalidArgument("array: no such member");
  }
  failed_[member] = true;
  if (config_.mode == ArrayMode::kMirrored && healthy_members() == 0) {
    return common::FailedPrecondition("array: every replica is failed");
  }
  return common::OkStatus();
}

common::Status VldArray::MarkHealthy(uint32_t member) {
  if (member >= members_.size()) {
    return common::InvalidArgument("array: no such member");
  }
  failed_[member] = false;
  return common::OkStatus();
}

void VldArray::EnterMember(uint32_t m) {
  // The member ran "in parallel" since the array last touched it; its next activity starts at
  // the array's current time. For N = 1 this is always a no-op (the member defines array time).
  members_[m]->disk().clock()->AdvanceTo(now_);
  if (obs::TraceRecorder* tracer = members_[m]->disk().tracer(); tracer != nullptr) {
    tracer->set_disk_index(m);
  }
}

void VldArray::LeaveMember(uint32_t m, common::Time* barrier) {
  *barrier = std::max(*barrier, members_[m]->disk().clock()->Now());
  if (obs::TraceRecorder* tracer = members_[m]->disk().tracer(); tracer != nullptr) {
    tracer->set_disk_index(0);
  }
}

common::StatusOr<uint32_t> VldArray::PickReadMember() {
  for (size_t k = 0; k < members_.size(); ++k) {
    const uint32_t m = read_rr_ % static_cast<uint32_t>(members_.size());
    ++read_rr_;
    if (!failed_[m]) {
      return m;
    }
  }
  return common::FailedPrecondition("array: every replica is failed");
}

std::vector<VldArray::Run> VldArray::SplitStriped(simdisk::Lba lba, uint64_t sectors) const {
  std::vector<Run> runs;
  uint64_t done = 0;
  while (done < sectors) {
    const uint64_t s = lba + done;
    const uint64_t chunk = s / chunk_sectors_;
    const uint64_t within = s % chunk_sectors_;
    const uint64_t len = std::min(sectors - done, chunk_sectors_ - within);
    Run run;
    run.member = static_cast<uint32_t>(chunk % members_.size());
    run.member_lba = (chunk / members_.size()) * chunk_sectors_ + within;
    run.offset = done;
    run.sectors = len;
    // Merge with the previous run when the extent stays on the same member and lands on the
    // member-contiguous next chunk (every members_.size()-th array chunk) — one member command
    // instead of one per chunk.
    if (!runs.empty() && runs.back().member == run.member &&
        runs.back().member_lba + runs.back().sectors == run.member_lba) {
      runs.back().sectors += len;
    } else {
      runs.push_back(run);
    }
    done += len;
  }
  return runs;
}

common::Status VldArray::CheckStriped(const std::vector<Run>& runs) const {
  for (const Run& r : runs) {
    if (failed_[r.member]) {
      return common::FailedPrecondition("array: striped member failed, no redundancy");
    }
  }
  return common::OkStatus();
}

common::Status VldArray::Write(simdisk::Lba lba, std::span<const std::byte> in) {
  const uint64_t sectors = in.size() / SectorBytes();
  if (lba + sectors > SectorCount()) {
    return common::InvalidArgument("array: write beyond capacity");
  }
  common::Time barrier = now_;
  if (config_.mode == ArrayMode::kStriped) {
    const std::vector<Run> runs = SplitStriped(lba, sectors);
    RETURN_IF_ERROR(CheckStriped(runs));
    for (const Run& r : runs) {
      EnterMember(r.member);
      const common::Status st = members_[r.member]->Write(
          r.member_lba, in.subspan(r.offset * SectorBytes(), r.sectors * SectorBytes()));
      LeaveMember(r.member, &barrier);
      RETURN_IF_ERROR(st);
    }
  } else {
    if (healthy_members() == 0) {
      return common::FailedPrecondition("array: every replica is failed");
    }
    for (uint32_t m = 0; m < members_.size(); ++m) {
      if (failed_[m]) {
        continue;
      }
      EnterMember(m);
      const common::Status st = members_[m]->Write(lba, in);
      LeaveMember(m, &barrier);
      RETURN_IF_ERROR(st);
    }
  }
  // The cross-disk barrier: the write is acknowledged only once every touched member finished.
  now_ = barrier;
  return common::OkStatus();
}

common::Status VldArray::Read(simdisk::Lba lba, std::span<std::byte> out) {
  const uint64_t sectors = out.size() / SectorBytes();
  if (lba + sectors > SectorCount()) {
    return common::InvalidArgument("array: read beyond capacity");
  }
  common::Time barrier = now_;
  if (config_.mode == ArrayMode::kStriped) {
    const std::vector<Run> runs = SplitStriped(lba, sectors);
    RETURN_IF_ERROR(CheckStriped(runs));
    for (const Run& r : runs) {
      EnterMember(r.member);
      const common::Status st = members_[r.member]->Read(
          r.member_lba, out.subspan(r.offset * SectorBytes(), r.sectors * SectorBytes()));
      LeaveMember(r.member, &barrier);
      RETURN_IF_ERROR(st);
    }
  } else {
    ASSIGN_OR_RETURN(const uint32_t m, PickReadMember());
    EnterMember(m);
    const common::Status st = members_[m]->Read(lba, out);
    LeaveMember(m, &barrier);
    RETURN_IF_ERROR(st);
  }
  now_ = barrier;
  return common::OkStatus();
}

common::Status VldArray::Flush() {
  common::Time barrier = now_;
  for (uint32_t m = 0; m < members_.size(); ++m) {
    if (failed_[m]) {
      if (config_.mode == ArrayMode::kStriped) {
        return common::FailedPrecondition("array: striped member failed, no redundancy");
      }
      continue;
    }
    EnterMember(m);
    const common::Status st = members_[m]->Flush();
    LeaveMember(m, &barrier);
    RETURN_IF_ERROR(st);
  }
  now_ = barrier;
  return common::OkStatus();
}

common::Status VldArray::Format() {
  common::Time barrier = now_;
  for (uint32_t m = 0; m < members_.size(); ++m) {
    EnterMember(m);
    const common::Status st = members_[m]->Format();
    LeaveMember(m, &barrier);
    RETURN_IF_ERROR(st);
  }
  now_ = barrier;
  return common::OkStatus();
}

common::StatusOr<uint64_t> VldArray::SubmitWrite(simdisk::Lba lba,
                                                 std::span<const std::byte> in) {
  if (queue_.size() >= queue_depth_) {
    return common::FailedPrecondition("array queue: full");
  }
  const uint64_t sectors = in.size() / SectorBytes();
  if (lba + sectors > SectorCount()) {
    return common::InvalidArgument("array: write beyond capacity");
  }
  Pending p;
  p.id = next_id_++;
  p.is_write = true;
  p.lba = lba;
  p.sectors = sectors;
  p.submit_time = now_;
  p.data.assign(in.begin(), in.end());
  queue_.push_back(std::move(p));
  return queue_.back().id;
}

common::StatusOr<uint64_t> VldArray::SubmitRead(simdisk::Lba lba, uint64_t sectors) {
  if (queue_.size() >= queue_depth_) {
    return common::FailedPrecondition("array queue: full");
  }
  if (lba + sectors > SectorCount()) {
    return common::InvalidArgument("array: read beyond capacity");
  }
  Pending p;
  p.id = next_id_++;
  p.is_write = false;
  p.lba = lba;
  p.sectors = sectors;
  p.submit_time = now_;
  queue_.push_back(std::move(p));
  return queue_.back().id;
}

common::StatusOr<std::vector<VldArray::QueuedCompletion>> VldArray::FlushQueue() {
  std::vector<QueuedCompletion> completions;
  if (queue_.empty()) {
    return completions;
  }
  std::vector<Pending> batch;
  batch.swap(queue_);

  // Split every request into member runs. Health is evaluated here, not at submission, so a
  // member failed while requests were queued is already avoided (mirrored) or reported
  // (striped) before any member sees a command.
  for (Pending& p : batch) {
    if (config_.mode == ArrayMode::kStriped) {
      p.runs = SplitStriped(p.lba, p.sectors);
      RETURN_IF_ERROR(CheckStriped(p.runs));
    } else if (p.is_write) {
      if (healthy_members() == 0) {
        return common::FailedPrecondition("array: every replica is failed");
      }
      for (uint32_t m = 0; m < members_.size(); ++m) {
        if (!failed_[m]) {
          p.runs.push_back({m, p.lba, 0, p.sectors});
        }
      }
    } else {
      ASSIGN_OR_RETURN(const uint32_t m, PickReadMember());
      p.runs.push_back({m, p.lba, 0, p.sectors});
    }
  }

  // Submit member runs in array submission order, so every member's local batch preserves the
  // array's hazard and RAW-forwarding semantics. Submission performs no media work.
  for (Pending& p : batch) {
    for (const Run& r : p.runs) {
      EnterMember(r.member);
      common::StatusOr<uint64_t> id =
          p.is_write
              ? members_[r.member]->SubmitWrite(
                    r.member_lba,
                    std::span<const std::byte>(p.data).subspan(r.offset * SectorBytes(),
                                                               r.sectors * SectorBytes()))
              : members_[r.member]->SubmitRead(r.member_lba, r.sectors);
      if (obs::TraceRecorder* tracer = members_[r.member]->disk().tracer(); tracer != nullptr) {
        tracer->set_disk_index(0);
      }
      RETURN_IF_ERROR(id.status());
      p.run_ids.push_back(*id);
    }
  }

  // The cross-disk group commit: one FlushQueue — one queue batch, one packed virtual-log
  // commit — per touched member, however many array requests fanned out to it.
  std::vector<bool> touched(members_.size(), false);
  for (const Pending& p : batch) {
    for (const Run& r : p.runs) {
      touched[r.member] = true;
    }
  }
  std::vector<std::vector<core::Vld::QueuedCompletion>> member_done(members_.size());
  common::Time barrier = now_;
  for (uint32_t m = 0; m < members_.size(); ++m) {
    if (!touched[m]) {
      continue;
    }
    EnterMember(m);
    auto done = members_[m]->FlushQueue();
    LeaveMember(m, &barrier);
    RETURN_IF_ERROR(done.status());
    member_done[m] = std::move(*done);
  }
  now_ = barrier;

  // Assemble array completions in submission order. A write acknowledges at the cross-disk
  // barrier over the members it touched; a read completes when its last member run did.
  completions.reserve(batch.size());
  for (Pending& p : batch) {
    QueuedCompletion c;
    c.id = p.id;
    c.is_write = p.is_write;
    c.lba = p.lba;
    c.submit_time = p.submit_time;
    if (!p.is_write) {
      c.data.resize(p.sectors * SectorBytes());
    }
    for (size_t j = 0; j < p.runs.size(); ++j) {
      const Run& r = p.runs[j];
      const core::Vld::QueuedCompletion* mc = nullptr;
      for (const core::Vld::QueuedCompletion& cand : member_done[r.member]) {
        if (cand.id == p.run_ids[j]) {
          mc = &cand;
          break;
        }
      }
      if (mc == nullptr) {
        return common::IoError("array: member completion missing");
      }
      c.complete_time = std::max(c.complete_time, mc->complete_time);
      c.dispatch_time = j == 0 ? mc->dispatch_time : std::min(c.dispatch_time, mc->dispatch_time);
      member_hist_[r.member].Record(mc->complete_time - mc->submit_time);
      if (!p.is_write) {
        std::memcpy(c.data.data() + r.offset * SectorBytes(), mc->data.data(),
                    r.sectors * SectorBytes());
      }
    }
    latency_hist_.Record(c.Latency());
    completions.push_back(std::move(c));
  }
  return completions;
}

common::StatusOr<ArrayRecoveryInfo> VldArray::Recover() {
  ArrayRecoveryInfo info;
  common::Time barrier = now_;
  // Stitch phase 1: every member enumerates its own virtual log independently. A member that
  // crashed mid-destage rolls back its torn tail here; the array never rolls back across
  // members (striped) — per-member-group atomicity is the invariant the crash sweep checks.
  for (uint32_t m = 0; m < members_.size(); ++m) {
    if (failed_[m]) {
      if (config_.mode == ArrayMode::kStriped) {
        return common::FailedPrecondition("array: striped member failed, no redundancy");
      }
      info.members.emplace_back();  // Placeholder: a failed replica is not enumerated.
      continue;
    }
    EnterMember(m);
    auto r = members_[m]->Recover();
    LeaveMember(m, &barrier);
    RETURN_IF_ERROR(r.status());
    info.members.push_back(*r);
  }
  now_ = barrier;
  if (config_.mode == ArrayMode::kStriped) {
    return info;
  }

  // Stitch phase 2 (mirrored): elect the lowest-indexed healthy member authoritative and
  // resynchronize the other replicas to it. Every array-acknowledged write reached all healthy
  // replicas (the acknowledgement is the max commit time), so divergence can only involve
  // writes that were still in flight at the crash — rewriting from the authoritative copy
  // makes each block consistently old or consistently new, never torn across replicas.
  uint32_t auth = 0;
  while (auth < members_.size() && failed_[auth]) {
    ++auth;
  }
  if (auth == members_.size()) {
    return common::FailedPrecondition("array: every replica is failed");
  }
  info.authoritative = auth;
  const uint64_t blocks = mirrored_sectors_ / block_sectors_;
  const uint64_t block_bytes = static_cast<uint64_t>(block_sectors_) * SectorBytes();
  std::vector<std::byte> auth_data(block_bytes);
  std::vector<std::byte> other_data(block_bytes);
  for (uint64_t b = 0; b < blocks; ++b) {
    const bool auth_mapped =
        members_[auth]->logical_map()[b] != core::kUnmappedBlock;
    bool auth_read = false;
    for (uint32_t m = 0; m < members_.size(); ++m) {
      if (m == auth || failed_[m]) {
        continue;
      }
      const bool other_mapped = members_[m]->logical_map()[b] != core::kUnmappedBlock;
      if (!auth_mapped) {
        if (other_mapped) {
          // The replica holds a block the authoritative copy never committed: trim it.
          barrier = now_;
          EnterMember(m);
          const common::Status st =
              members_[m]->Trim(b * block_sectors_, block_sectors_);
          LeaveMember(m, &barrier);
          RETURN_IF_ERROR(st);
          now_ = barrier;
          ++info.trimmed_blocks;
        }
        continue;
      }
      if (!auth_read) {
        barrier = now_;
        EnterMember(auth);
        const common::Status st = members_[auth]->Read(b * block_sectors_, auth_data);
        LeaveMember(auth, &barrier);
        RETURN_IF_ERROR(st);
        now_ = barrier;
        auth_read = true;
      }
      bool stale = !other_mapped;
      if (other_mapped) {
        barrier = now_;
        EnterMember(m);
        const common::Status st = members_[m]->Read(b * block_sectors_, other_data);
        LeaveMember(m, &barrier);
        RETURN_IF_ERROR(st);
        now_ = barrier;
        stale = other_data != auth_data;
      }
      if (stale) {
        barrier = now_;
        EnterMember(m);
        const common::Status st = members_[m]->Write(b * block_sectors_, auth_data);
        LeaveMember(m, &barrier);
        RETURN_IF_ERROR(st);
        now_ = barrier;
        ++info.resynced_blocks;
      }
    }
  }
  return info;
}

}  // namespace vlog::array
