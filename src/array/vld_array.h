// A multi-disk virtual-log array: one BlockDevice over N per-disk VLD instances.
//
// Each member keeps its own request queue, write-back cache, and virtual log; the array layer
// adds only address translation and fan-out. Two modes:
//
//   kStriped  — the logical space is cut into stripe units of `stripe_blocks` physical blocks
//               and dealt round-robin across the members (chunk c lives on member c % N).
//               Capacity is N times the smallest member, rounded down to whole chunks.
//   kMirrored — every write goes to every healthy member; reads round-robin over the healthy
//               members and keep working (degraded mode) when a replica is marked failed.
//               Capacity is the smallest member.
//
// Time: the whole repository is single-threaded over virtual clocks, so the array drives its
// members one at a time but models them as mechanically parallel. Each member disk owns its own
// clock; before the array touches member m it advances that clock to the array's own time, and
// after a fan-out the array time becomes the *maximum* of the touched members' finish times —
// the cross-disk completion barrier. An array write is acknowledged (and an array Flush is
// durable) only when every member it touched has finished its part, while members the request
// never touched contribute nothing. With N = 1 every AdvanceTo is a no-op and the array is
// bit-, clock-, and breakdown-identical to its bare member VLD (asserted in tests).
//
// Queued I/O gives cross-disk group commit: FlushQueue splits every queued array request into
// per-member runs, submits each member's runs in array submission order, and then flushes each
// member once — so a multi-stripe write burst costs one queue batch (one packed virtual-log
// commit) per member, not one commit per block. Per-member hazard and RAW-forwarding rules are
// inherited from the member VLDs because submission order is preserved within each member.
//
// Recovery enumerates every member's virtual log independently (Vld::Recover) and stitches the
// per-member maps into one consistent array map. Striped arrays have no redundancy: each
// member's recovered map is taken as-is, so a member that crashed mid-destage rolls back only
// its own torn tail — an array-level batch is atomic per member group, not across members
// (see DESIGN.md "Array"). Mirrored arrays elect the lowest-indexed healthy member as
// authoritative and resynchronize the other replicas block by block: a replica that lags
// (crashed mid-destage and rolled back) is rewritten from the authoritative copy, and blocks
// the authoritative member does not map are trimmed from replicas that do. Array-acknowledged
// writes are on every replica (the acknowledgement barrier is the max commit time), so resync
// never undoes an acknowledged write.
#ifndef SRC_ARRAY_VLD_ARRAY_H_
#define SRC_ARRAY_VLD_ARRAY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/core/vld.h"
#include "src/obs/histogram.h"
#include "src/simdisk/block_device.h"

namespace vlog::array {

enum class ArrayMode : uint8_t { kStriped, kMirrored };

struct VldArrayConfig {
  ArrayMode mode = ArrayMode::kStriped;
  // Stripe unit in physical blocks (striped mode). One chunk = stripe_blocks * block_sectors
  // sectors; chunks are dealt round-robin across the members.
  uint32_t stripe_blocks = 8;
};

struct ArrayRecoveryInfo {
  std::vector<core::VldRecoveryInfo> members;  // Per-member virtual-log recovery, in index order.
  uint32_t authoritative = 0;     // Mirrored: the member whose map won the election.
  uint64_t resynced_blocks = 0;   // Mirrored: blocks rewritten onto lagging replicas.
  uint64_t trimmed_blocks = 0;    // Mirrored: stale replica blocks trimmed away.
};

class VldArray : public simdisk::BlockDevice {
 public:
  // Non-owning: the members (and their disks and clocks) outlive the array. All members must
  // share block_sectors; member queue depths should be at least the array's total queue depth,
  // since a whole array batch can land on one member (striped) or every member (mirrored).
  VldArray(std::vector<core::Vld*> members, VldArrayConfig config = {});

  common::Status Format();
  common::StatusOr<ArrayRecoveryInfo> Recover();

  // BlockDevice. Write acknowledges at the barrier: the max finish time over the members the
  // extent touched. Read completes when its last member run completes.
  common::Status Read(simdisk::Lba lba, std::span<std::byte> out) override;
  common::Status Write(simdisk::Lba lba, std::span<const std::byte> in) override;
  // Durable only when every member's own flush barrier has completed.
  common::Status Flush() override;
  uint64_t SectorCount() const override;
  uint32_t SectorBytes() const override;

  // --- Queued I/O (cross-disk group commit) ---

  struct QueuedCompletion {
    uint64_t id = 0;
    bool is_write = true;
    simdisk::Lba lba = 0;
    common::Time submit_time = 0;
    // Writes: the cross-disk barrier — when the *last* touched member's packed map commit
    // reached its media. Reads: when the last member run's data was assembled.
    common::Time complete_time = 0;
    common::Time dispatch_time = 0;  // When the first member run's controller work finished.
    std::vector<std::byte> data;     // Read payload (empty for writes).
    common::Duration Latency() const { return complete_time - submit_time; }
  };
  common::StatusOr<uint64_t> SubmitWrite(simdisk::Lba lba, std::span<const std::byte> in);
  common::StatusOr<uint64_t> SubmitRead(simdisk::Lba lba, uint64_t sectors);
  // Splits every queued request into member runs, submits them in array submission order, then
  // flushes each touched member once — one queue batch (one packed group commit) per member.
  // Completions are returned in array submission order.
  common::StatusOr<std::vector<QueuedCompletion>> FlushQueue();
  size_t QueuedRequests() const { return queue_.size(); }
  uint32_t queue_depth() const { return queue_depth_; }

  // --- Mirroring / degraded mode ---

  // Marks a member failed: mirrored writes skip it, mirrored reads avoid it. I/O on a striped
  // array with a failed member fails (striping has no redundancy).
  common::Status MarkFailed(uint32_t member);
  // Re-admits a member. Mirrored callers should Recover() afterwards so the replica is
  // resynchronized before it serves reads.
  common::Status MarkHealthy(uint32_t member);
  bool failed(uint32_t member) const { return failed_[member]; }
  uint32_t healthy_members() const;

  // --- Introspection ---

  ArrayMode mode() const { return config_.mode; }
  uint32_t member_count() const { return static_cast<uint32_t>(members_.size()); }
  core::Vld& member(uint32_t i) { return *members_[i]; }
  uint32_t block_sectors() const { return block_sectors_; }
  uint64_t chunk_sectors() const { return chunk_sectors_; }
  common::Time now() const { return now_; }
  // Latencies of completed queued array requests, and of the member runs they fanned out to.
  const obs::LatencyHistogram& latency_hist() const { return latency_hist_; }
  const obs::LatencyHistogram& member_hist(uint32_t i) const { return member_hist_[i]; }

  // Registers array-level gauges plus every member's VLD and disk probes, each member under
  // prefix "m<i>." — so a two-member array exposes m0.vld.free_blocks, m1.disk.sectors_written,
  // and so on. Drive the timeline with Poll(array.now()). Pure reads; never advances any clock.
  void RegisterTimelineProbes(obs::Timeline& timeline) const;

 private:
  // One contiguous piece of an array extent on a single member.
  struct Run {
    uint32_t member = 0;
    simdisk::Lba member_lba = 0;
    uint64_t offset = 0;  // Sector offset into the array extent's buffer.
    uint64_t sectors = 0;
  };
  // An outstanding queued array request with the member runs it was split into.
  struct Pending {
    uint64_t id = 0;
    bool is_write = true;
    simdisk::Lba lba = 0;
    uint64_t sectors = 0;
    common::Time submit_time = 0;
    std::vector<std::byte> data;  // Write payload.
    std::vector<Run> runs;
    std::vector<uint64_t> run_ids;  // Member completion id per run (filled by FlushQueue).
  };

  std::vector<Run> SplitStriped(simdisk::Lba lba, uint64_t sectors) const;
  // Syncs member m's clock to the array's time and labels its tracer with the member index.
  void EnterMember(uint32_t m);
  // Folds member m's finish time into the fan-out barrier being accumulated in `barrier`.
  void LeaveMember(uint32_t m, common::Time* barrier);
  // The round-robin pick for a mirrored read; fails when no member is healthy.
  common::StatusOr<uint32_t> PickReadMember();
  common::Status CheckStriped(const std::vector<Run>& runs) const;

  std::vector<core::Vld*> members_;
  VldArrayConfig config_;
  uint32_t block_sectors_ = 0;
  uint64_t chunk_sectors_ = 0;       // Striped: sectors per stripe unit.
  uint64_t chunks_per_member_ = 0;   // Striped: whole chunks usable on every member.
  uint64_t mirrored_sectors_ = 0;    // Mirrored: usable sectors (smallest member).
  std::vector<bool> failed_;
  uint32_t read_rr_ = 0;  // Mirrored read round-robin cursor (deterministic).
  common::Time now_ = 0;  // Array time: the max finish time of any fan-out so far.
  std::vector<Pending> queue_;
  uint64_t next_id_ = 1;
  uint32_t queue_depth_ = 0;
  obs::LatencyHistogram latency_hist_;
  std::vector<obs::LatencyHistogram> member_hist_;
};

}  // namespace vlog::array

#endif  // SRC_ARRAY_VLD_ARRAY_H_
