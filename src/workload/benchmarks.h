// The paper's micro-benchmarks (§5), expressed against the Platform abstraction so every
// figure's bench binary is a thin parameter sweep around these.
#ifndef SRC_WORKLOAD_BENCHMARKS_H_
#define SRC_WORKLOAD_BENCHMARKS_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/workload/platform.h"

namespace vlog::workload {

// §5.1 — create, read back (after a cache flush), and delete `files` small files.
struct SmallFileResult {
  common::Duration create = 0;
  common::Duration read = 0;
  common::Duration remove = 0;
};
common::StatusOr<SmallFileResult> RunSmallFile(Platform& platform, int files = 1500,
                                               size_t file_bytes = 1024);

// §5.2 — sequentially write a large file, read it back, rewrite it randomly (async and, on
// UFS, also sync), read it sequentially again, read it randomly. Durations per phase.
struct LargeFileResult {
  uint64_t file_bytes = 0;
  common::Duration seq_write = 0;
  common::Duration seq_read = 0;
  common::Duration rand_write_async = 0;
  common::Duration rand_write_sync = 0;  // 0 when the sync phase was skipped (LFS runs).
  common::Duration seq_read_again = 0;
  common::Duration rand_read = 0;
};
common::StatusOr<LargeFileResult> RunLargeFile(Platform& platform,
                                               uint64_t file_bytes = 10 << 20,
                                               bool include_sync_phase = true,
                                               uint64_t seed = 1);

// Creates /bench_data of `bytes` with sequential asynchronous writes, then syncs.
common::Status FillFile(Platform& platform, const std::string& path, uint64_t bytes);

// §5.3 — steady-state random 4 KB updates with no idle time. UFS updates are synchronous;
// LFS updates go into the (NVRAM) cache and pay eviction/cleaning costs as they come due.
struct UpdateResult {
  common::Duration avg_latency = 0;
  double fs_utilization = 0;
};
common::StatusOr<UpdateResult> RunRandomUpdates(Platform& platform, uint64_t file_bytes,
                                                int updates, int warmup, uint64_t seed = 2);

// §5.5 — bursts of random 4 KB updates separated by idle intervals; reports the mean
// user-visible latency per update over the measured rounds.
common::StatusOr<common::Duration> RunBurstIdle(Platform& platform, uint64_t file_bytes,
                                                uint64_t burst_bytes, common::Duration idle,
                                                int rounds, int warmup_rounds,
                                                uint64_t seed = 3);

}  // namespace vlog::workload

#endif  // SRC_WORKLOAD_BENCHMARKS_H_
