// Closed-loop random-update and random-read drivers for the multi-disk virtual-log array.
//
// The update driver mirrors queue_sweep's RunQueuedRandomUpdates — `depth` streams, one
// outstanding 1-block update each, the whole queue group-serviced by FlushQueue — but runs over
// a VldArray, whose FlushQueue fans every batch out as one packed group commit per touched
// member with a cross-disk completion barrier. A bare-Vld overload drives the identical
// request sequence through a single member so the N = 1 striped array can be gated to produce
// exactly the same IOPS (the array layer must dissolve completely at N = 1).
//
// The read driver measures synchronous array reads over a region prepopulated with a known
// per-block pattern, verifying every returned payload — run it healthy and again with a
// replica marked failed to compare mirrored degraded-mode latency against the read-balanced
// healthy path.
#ifndef SRC_WORKLOAD_ARRAY_SWEEP_H_
#define SRC_WORKLOAD_ARRAY_SWEEP_H_

#include <cstdint>

#include "src/array/vld_array.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/core/vld.h"
#include "src/obs/histogram.h"
#include "src/obs/timeline.h"

namespace vlog::workload {

struct ArraySweepResult {
  uint32_t depth = 0;
  uint64_t updates = 0;           // Measured requests (excludes warmup).
  double iops = 0;                // Measured requests per simulated second.
  common::Duration mean_latency = 0;
  common::Duration p50_latency = 0;
  common::Duration p99_latency = 0;
  common::Duration max_latency = 0;
  obs::LatencyHistogram latency_hist;  // Per-request latencies (ns), mergeable.
};

// Runs `warmup` unmeasured then `updates` measured random one-block updates over the first
// `region_blocks` array blocks (0 = the first half of the device), `depth` streams
// closed-loop. Payload bytes follow the deterministic pattern (block * 131 + offset * 7) so
// reads can verify content later. The device must be freshly formatted. When `timeline` is
// non-null it is Poll()ed with the array barrier time at every batch boundary (warmup
// included); when `latency` is non-null every measured completion's latency is recorded there
// too, so a timeline window histogram tracks the same series the result histogram summarizes.
common::StatusOr<ArraySweepResult> RunArrayRandomUpdates(array::VldArray& array, uint32_t depth,
                                                         int updates, int warmup,
                                                         uint64_t seed = 2,
                                                         uint32_t region_blocks = 0,
                                                         obs::Timeline* timeline = nullptr,
                                                         obs::WindowedHistogram* latency = nullptr);

// The bare-member baseline: the identical stream/region/seed sequence through a single Vld's
// queue. Pass the array run's region so the request sequences match block for block.
common::StatusOr<ArraySweepResult> RunArrayRandomUpdates(core::Vld& vld, uint32_t depth,
                                                         int updates, int warmup,
                                                         uint64_t seed = 2,
                                                         uint32_t region_blocks = 0);

// Writes the deterministic pattern to every block of the region (0 = first half), so
// RunArrayRandomReads can verify payloads. Uses the synchronous write path.
common::Status PrepopulateArray(array::VldArray& array, uint32_t region_blocks = 0);

struct ArrayReadResult {
  uint64_t reads = 0;
  double iops = 0;
  common::Duration mean_latency = 0;
  common::Duration p50_latency = 0;
  common::Duration p99_latency = 0;
  obs::LatencyHistogram latency_hist;
  bool payloads_ok = true;  // Every read returned its block's expected pattern.
};

// Runs `reads` synchronous random one-block reads over the (prepopulated) region, verifying
// each payload against the deterministic pattern. Latency is the array-clock delta per read.
common::StatusOr<ArrayReadResult> RunArrayRandomReads(array::VldArray& array, int reads,
                                                      uint64_t seed = 3,
                                                      uint32_t region_blocks = 0);

}  // namespace vlog::workload

#endif  // SRC_WORKLOAD_ARRAY_SWEEP_H_
