#include "src/workload/platform.h"

#include <cassert>

#include "src/simdisk/disk_params.h"

namespace vlog::workload {
namespace {

simdisk::DiskParams DiskFor(const PlatformConfig& config) {
  const bool hp = config.disk_model == DiskModel::kHp97560;
  simdisk::DiskParams params = hp ? simdisk::Hp97560() : simdisk::SeagateSt19101();
  uint32_t cylinders = config.cylinders;
  if (cylinders == 0) {
    cylinders = hp ? 36 : 11;  // The paper's 24 MB kernel-ramdisk truncation.
  }
  simdisk::DiskParams truncated = simdisk::Truncated(params, cylinders);
  truncated.cache = config.cache;
  return truncated;
}

simdisk::HostParams HostFor(HostKind kind) {
  switch (kind) {
    case HostKind::kSparc10:
      return simdisk::SparcStation10();
    case HostKind::kUltra170:
      return simdisk::UltraSparc170();
    case HostKind::kZeroCost:
      return simdisk::ZeroCostHost();
  }
  return simdisk::ZeroCostHost();
}

// FFS cylinder groups sized to the physical cylinder.
uint32_t BlocksPerCylinder(const simdisk::DiskParams& params) {
  return params.geometry.tracks_per_cylinder * params.geometry.sectors_per_track *
         params.geometry.sector_bytes / ufs::kBlockBytes;
}

}  // namespace

std::string PlatformConfig::Name() const {
  std::string name = fs_kind == FsKind::kUfs ? "UFS" : "LFS";
  name += disk_kind == DiskKind::kVld ? "/VLD" : "/regular";
  name += disk_model == DiskModel::kHp97560 ? " (HP97560" : " (ST19101";
  switch (host_kind) {
    case HostKind::kSparc10:
      name += ", SPARC-10)";
      break;
    case HostKind::kUltra170:
      name += ", Ultra-170)";
      break;
    case HostKind::kZeroCost:
      name += ", zero-host)";
      break;
  }
  return name;
}

Platform::Platform(const PlatformConfig& config) : config_(config) {
  const simdisk::DiskParams params = DiskFor(config_);
  raw_ = std::make_unique<simdisk::SimDisk>(params, &clock_);
  host_ = std::make_unique<simdisk::HostModel>(HostFor(config_.host_kind), &clock_);

  simdisk::BlockDevice* device = raw_.get();
  if (config_.disk_kind == DiskKind::kVld) {
    vld_ = std::make_unique<core::Vld>(raw_.get(), config_.vld);
    device = vld_.get();
  }
  if (config_.fs_kind == FsKind::kUfs) {
    ufs::UfsConfig ufs_config;
    ufs_config.blocks_per_cg = BlocksPerCylinder(params);
    ufs_ = std::make_unique<ufs::Ufs>(device, host_.get(), ufs_config);
    fs_ = ufs_.get();
  } else {
    lld_ = std::make_unique<lfs::LogStructuredDisk>(device, config_.lld);
    simple_fs_ = std::make_unique<lfs::SimpleFs>(lld_.get(), host_.get(), config_.simple_fs);
    fs_ = simple_fs_.get();
  }
}

common::Status Platform::Format() {
  if (vld_) {
    RETURN_IF_ERROR(vld_->Format());
  }
  if (lld_) {
    RETURN_IF_ERROR(lld_->Format());
  }
  if (ufs_) {
    return ufs_->Format();
  }
  return simple_fs_->Format();
}

uint64_t Platform::DeviceBytes() const {
  if (vld_) {
    return vld_->SectorCount() * vld_->SectorBytes();
  }
  return raw_->SectorCount() * raw_->SectorBytes();
}

double Platform::FsUtilization() const {
  return ufs_ ? ufs_->Utilization() : simple_fs_->Utilization();
}

void Platform::RunIdle(common::Duration budget) {
  const common::Time deadline = clock_.Now() + budget;
  if (simple_fs_ != nullptr) {
    // LFS idle work: push dirty buffers out (filling segments), then clean ahead. Both are
    // bounded by the idle budget.
    (void)simple_fs_->FlushDuringIdle(deadline, &clock_);
    if (clock_.Now() < deadline) {
      (void)lld_->CleanDuringIdle(deadline, &clock_);
    }
  }
  if (vld_ != nullptr && clock_.Now() < deadline) {
    vld_->RunIdle(deadline - clock_.Now());
  }
  clock_.AdvanceTo(deadline);
}

}  // namespace vlog::workload
