#include "src/workload/benchmarks.h"

#include <algorithm>
#include <vector>

#include "src/common/rng.h"

namespace vlog::workload {
namespace {

std::vector<std::byte> Payload(size_t n, uint64_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed * 97 + i));
  }
  return v;
}

}  // namespace

common::StatusOr<SmallFileResult> RunSmallFile(Platform& platform, int files,
                                               size_t file_bytes) {
  fs::FileSystem& fs = platform.fs();
  common::Clock& clock = platform.clock();
  const auto payload = Payload(file_bytes, 7);
  SmallFileResult result;

  common::Time start = clock.Now();
  for (int i = 0; i < files; ++i) {
    const std::string path = "/small" + std::to_string(i);
    RETURN_IF_ERROR(fs.Create(path));
    RETURN_IF_ERROR(fs.Write(path, 0, payload, fs::WritePolicy::kAsync));
  }
  RETURN_IF_ERROR(fs.Sync());
  result.create = clock.Now() - start;

  RETURN_IF_ERROR(fs.DropCaches());
  std::vector<std::byte> out(file_bytes);
  start = clock.Now();
  for (int i = 0; i < files; ++i) {
    ASSIGN_OR_RETURN(const uint64_t n, fs.Read("/small" + std::to_string(i), 0, out));
    if (n != file_bytes) {
      return common::IoError("short read in small-file benchmark");
    }
  }
  result.read = clock.Now() - start;

  start = clock.Now();
  for (int i = 0; i < files; ++i) {
    RETURN_IF_ERROR(fs.Remove("/small" + std::to_string(i)));
  }
  RETURN_IF_ERROR(fs.Sync());
  result.remove = clock.Now() - start;
  return result;
}

common::Status FillFile(Platform& platform, const std::string& path, uint64_t bytes) {
  fs::FileSystem& fs = platform.fs();
  RETURN_IF_ERROR(fs.Create(path));
  const auto chunk = Payload(64 << 10, 11);
  uint64_t offset = 0;
  while (offset < bytes) {
    const uint64_t n = std::min<uint64_t>(chunk.size(), bytes - offset);
    RETURN_IF_ERROR(fs.Write(path, offset, std::span<const std::byte>(chunk).first(n),
                             fs::WritePolicy::kAsync));
    offset += n;
  }
  return fs.Sync();
}

common::StatusOr<LargeFileResult> RunLargeFile(Platform& platform, uint64_t file_bytes,
                                               bool include_sync_phase, uint64_t seed) {
  fs::FileSystem& fs = platform.fs();
  common::Clock& clock = platform.clock();
  common::Rng rng(seed);
  LargeFileResult result;
  result.file_bytes = file_bytes;
  const uint64_t blocks = file_bytes / 4096;
  const auto block = Payload(4096, 13);

  RETURN_IF_ERROR(fs.Create("/large"));
  common::Time start = clock.Now();
  for (uint64_t b = 0; b < blocks; ++b) {
    RETURN_IF_ERROR(fs.Write("/large", b * 4096, block, fs::WritePolicy::kAsync));
  }
  RETURN_IF_ERROR(fs.Sync());
  result.seq_write = clock.Now() - start;

  RETURN_IF_ERROR(fs.DropCaches());
  std::vector<std::byte> out(4096);
  start = clock.Now();
  for (uint64_t b = 0; b < blocks; ++b) {
    RETURN_IF_ERROR(fs.Read("/large", b * 4096, out).status());
  }
  result.seq_read = clock.Now() - start;

  RETURN_IF_ERROR(fs.DropCaches());
  start = clock.Now();
  for (uint64_t i = 0; i < blocks; ++i) {
    RETURN_IF_ERROR(fs.Write("/large", rng.Below(blocks) * 4096, block,
                             fs::WritePolicy::kAsync));
  }
  RETURN_IF_ERROR(fs.Sync());
  result.rand_write_async = clock.Now() - start;

  if (include_sync_phase) {
    RETURN_IF_ERROR(fs.DropCaches());
    start = clock.Now();
    for (uint64_t i = 0; i < blocks; ++i) {
      RETURN_IF_ERROR(fs.Write("/large", rng.Below(blocks) * 4096, block,
                               fs::WritePolicy::kSync));
    }
    result.rand_write_sync = clock.Now() - start;
  }

  RETURN_IF_ERROR(fs.DropCaches());
  start = clock.Now();
  for (uint64_t b = 0; b < blocks; ++b) {
    RETURN_IF_ERROR(fs.Read("/large", b * 4096, out).status());
  }
  result.seq_read_again = clock.Now() - start;

  RETURN_IF_ERROR(fs.DropCaches());
  start = clock.Now();
  for (uint64_t i = 0; i < blocks; ++i) {
    RETURN_IF_ERROR(fs.Read("/large", rng.Below(blocks) * 4096, out).status());
  }
  result.rand_read = clock.Now() - start;
  return result;
}

common::StatusOr<UpdateResult> RunRandomUpdates(Platform& platform, uint64_t file_bytes,
                                                int updates, int warmup, uint64_t seed) {
  RETURN_IF_ERROR(FillFile(platform, "/bench_data", file_bytes));
  fs::FileSystem& fs = platform.fs();
  common::Clock& clock = platform.clock();
  common::Rng rng(seed);
  const uint64_t blocks = file_bytes / 4096;
  const auto block = Payload(4096, 17);
  // UFS runs write synchronously ("the write system call does not return until the block is on
  // the disk surface"); LFS runs rely on the NVRAM buffer cache.
  const fs::WritePolicy policy = platform.config().fs_kind == FsKind::kUfs
                                     ? fs::WritePolicy::kSync
                                     : fs::WritePolicy::kAsync;
  for (int i = 0; i < warmup; ++i) {
    RETURN_IF_ERROR(fs.Write("/bench_data", rng.Below(blocks) * 4096, block, policy));
  }
  const common::Time start = clock.Now();
  for (int i = 0; i < updates; ++i) {
    RETURN_IF_ERROR(fs.Write("/bench_data", rng.Below(blocks) * 4096, block, policy));
  }
  UpdateResult result;
  result.avg_latency = (clock.Now() - start) / updates;
  result.fs_utilization = platform.FsUtilization();
  return result;
}

common::StatusOr<common::Duration> RunBurstIdle(Platform& platform, uint64_t file_bytes,
                                                uint64_t burst_bytes, common::Duration idle,
                                                int rounds, int warmup_rounds, uint64_t seed) {
  RETURN_IF_ERROR(FillFile(platform, "/bench_data", file_bytes));
  fs::FileSystem& fs = platform.fs();
  common::Clock& clock = platform.clock();
  common::Rng rng(seed);
  const uint64_t blocks = file_bytes / 4096;
  const uint64_t updates_per_burst = burst_bytes / 4096;
  const auto block = Payload(4096, 19);
  const fs::WritePolicy policy = platform.config().fs_kind == FsKind::kUfs
                                     ? fs::WritePolicy::kSync
                                     : fs::WritePolicy::kAsync;
  common::Duration busy = 0;
  uint64_t measured = 0;
  for (int round = 0; round < rounds; ++round) {
    const common::Time start = clock.Now();
    for (uint64_t i = 0; i < updates_per_burst; ++i) {
      RETURN_IF_ERROR(fs.Write("/bench_data", rng.Below(blocks) * 4096, block, policy));
    }
    if (round >= warmup_rounds) {
      busy += clock.Now() - start;
      measured += updates_per_burst;
    }
    platform.RunIdle(idle);
  }
  return busy / static_cast<common::Duration>(measured);
}

}  // namespace vlog::workload
