#include "src/workload/queue_sweep.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace vlog::workload {

namespace {
constexpr size_t kUpdateBytes = 4096;
}  // namespace

common::StatusOr<QueueDepthResult> RunQueuedRandomUpdates(core::Vld& vld, uint32_t depth,
                                                          int updates, int warmup,
                                                          uint64_t seed) {
  if (depth == 0 || depth > vld.queue_depth()) {
    return common::InvalidArgument("queue sweep: depth out of range");
  }
  common::Rng rng(seed);
  const uint32_t block_sectors = kUpdateBytes / vld.SectorBytes();
  const uint32_t blocks = vld.logical_blocks() / 2;
  std::vector<std::byte> payload(kUpdateBytes);

  common::Duration queue_delay_total = 0;
  // One closed-loop round: every stream submits its next update (all streams became ready at
  // the previous group commit, i.e. "now"), then the queue drains through one group commit.
  auto run_round = [&](int n,
                       std::vector<common::Duration>* latencies) -> common::Status {
    for (int i = 0; i < n; ++i) {
      const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
      for (size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<std::byte>((b * 131u + j * 7u) & 0xFF);
      }
      RETURN_IF_ERROR(
          vld.SubmitWrite(static_cast<simdisk::Lba>(b) * block_sectors, payload).status());
    }
    ASSIGN_OR_RETURN(std::vector<core::Vld::QueuedCompletion> done, vld.FlushQueue());
    if (latencies != nullptr) {
      for (const core::Vld::QueuedCompletion& c : done) {
        latencies->push_back(c.Latency());
        queue_delay_total += c.QueueDelay();
      }
    }
    return common::OkStatus();
  };

  for (int remaining = warmup; remaining > 0;) {
    const int n = std::min<int>(remaining, static_cast<int>(depth));
    RETURN_IF_ERROR(run_round(n, nullptr));
    remaining -= n;
  }

  std::vector<common::Duration> latencies;
  latencies.reserve(static_cast<size_t>(updates));
  obs::TraceRecorder* tracer = vld.disk().tracer();
  const obs::TimeBreakdown totals_before =
      tracer != nullptr ? tracer->totals() : obs::TimeBreakdown{};
  const common::Time start = vld.disk().clock()->Now();
  for (int remaining = updates; remaining > 0;) {
    const int n = std::min<int>(remaining, static_cast<int>(depth));
    RETURN_IF_ERROR(run_round(n, &latencies));
    remaining -= n;
  }
  const common::Duration elapsed = vld.disk().clock()->Now() - start;

  QueueDepthResult result;
  result.depth = depth;
  result.updates = latencies.size();
  result.iops =
      elapsed > 0 ? static_cast<double>(latencies.size()) / common::ToSeconds(elapsed) : 0;
  common::Duration total = 0;
  for (const common::Duration lat : latencies) {
    total += lat;
  }
  result.mean_latency =
      latencies.empty() ? 0 : total / static_cast<common::Duration>(latencies.size());
  result.mean_queue_delay =
      latencies.empty() ? 0
                        : queue_delay_total / static_cast<common::Duration>(latencies.size());
  for (const common::Duration lat : latencies) {
    result.latency_hist.Record(lat);
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    const auto exact_pct = [&](size_t pct) {
      return latencies[std::min(latencies.size() - 1, latencies.size() * pct / 100)];
    };
    result.p50_latency = exact_pct(50);
    result.p90_latency = exact_pct(90);
    result.p99_latency = exact_pct(99);
    result.max_latency = latencies.back();
  }
  if (tracer != nullptr) {
    result.breakdown = tracer->totals() - totals_before;
  }
  return result;
}

}  // namespace vlog::workload
