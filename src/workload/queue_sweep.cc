#include "src/workload/queue_sweep.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/payload.h"

namespace vlog::workload {

namespace {
constexpr size_t kUpdateBytes = 4096;
constexpr double kPi = 3.14159265358979323846;
}  // namespace

common::StatusOr<QueueDepthResult> RunQueuedRandomUpdates(core::Vld& vld, uint32_t depth,
                                                          int updates, int warmup,
                                                          uint64_t seed) {
  if (depth == 0 || depth > vld.queue_depth()) {
    return common::InvalidArgument("queue sweep: depth out of range");
  }
  common::Rng rng(seed);
  const uint32_t block_sectors = kUpdateBytes / vld.SectorBytes();
  const uint32_t blocks = vld.logical_blocks() / 2;
  std::vector<std::byte> payload(kUpdateBytes);

  common::Duration queue_delay_total = 0;
  // One closed-loop round: every stream submits its next update (all streams became ready at
  // the previous group commit, i.e. "now"), then the queue drains through one group commit.
  auto run_round = [&](int n,
                       std::vector<common::Duration>* latencies) -> common::Status {
    for (int i = 0; i < n; ++i) {
      const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
      FillAffinePayload(payload, b * 131u);
      RETURN_IF_ERROR(
          vld.SubmitWrite(static_cast<simdisk::Lba>(b) * block_sectors, payload).status());
    }
    ASSIGN_OR_RETURN(std::vector<core::Vld::QueuedCompletion> done, vld.FlushQueue());
    if (latencies != nullptr) {
      for (const core::Vld::QueuedCompletion& c : done) {
        latencies->push_back(c.Latency());
        queue_delay_total += c.QueueDelay();
      }
    }
    return common::OkStatus();
  };

  for (int remaining = warmup; remaining > 0;) {
    const int n = std::min<int>(remaining, static_cast<int>(depth));
    RETURN_IF_ERROR(run_round(n, nullptr));
    remaining -= n;
  }

  std::vector<common::Duration> latencies;
  latencies.reserve(static_cast<size_t>(updates));
  obs::TraceRecorder* tracer = vld.disk().tracer();
  const obs::TimeBreakdown totals_before =
      tracer != nullptr ? tracer->totals() : obs::TimeBreakdown{};
  const common::Time start = vld.disk().clock()->Now();
  for (int remaining = updates; remaining > 0;) {
    const int n = std::min<int>(remaining, static_cast<int>(depth));
    RETURN_IF_ERROR(run_round(n, &latencies));
    remaining -= n;
  }
  const common::Duration elapsed = vld.disk().clock()->Now() - start;

  QueueDepthResult result;
  result.depth = depth;
  result.updates = latencies.size();
  result.iops =
      elapsed > 0 ? static_cast<double>(latencies.size()) / common::ToSeconds(elapsed) : 0;
  common::Duration total = 0;
  for (const common::Duration lat : latencies) {
    total += lat;
  }
  result.mean_latency =
      latencies.empty() ? 0 : total / static_cast<common::Duration>(latencies.size());
  result.mean_queue_delay =
      latencies.empty() ? 0
                        : queue_delay_total / static_cast<common::Duration>(latencies.size());
  for (const common::Duration lat : latencies) {
    result.latency_hist.Record(lat);
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    const auto exact_pct = [&](size_t pct) {
      return latencies[std::min(latencies.size() - 1, latencies.size() * pct / 100)];
    };
    result.p50_latency = exact_pct(50);
    result.p90_latency = exact_pct(90);
    result.p99_latency = exact_pct(99);
    result.max_latency = latencies.back();
  }
  if (tracer != nullptr) {
    result.breakdown = tracer->totals() - totals_before;
  }
  return result;
}

ZipfSampler::ZipfSampler(uint32_t n, double theta) {
  cdf_.resize(n == 0 ? 1 : n);
  double sum = 0;
  for (uint32_t i = 0; i < cdf_.size(); ++i) {
    sum += theta == 0.0 ? 1.0 : 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (double& c : cdf_) {
    c /= sum;
  }
}

uint32_t ZipfSampler::Sample(common::Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(std::min<size_t>(static_cast<size_t>(it - cdf_.begin()),
                                                cdf_.size() - 1));
}

double MixedStreamResult::FairnessRatio() const {
  double min_iops = std::numeric_limits<double>::infinity();
  double max_iops = 0;
  for (const StreamResult& s : streams) {
    min_iops = std::min(min_iops, s.iops);
    max_iops = std::max(max_iops, s.iops);
  }
  if (max_iops <= 0) {
    return 1.0;
  }
  if (min_iops <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  return max_iops / min_iops;
}

common::StatusOr<MixedStreamResult> RunMixedStreams(core::Vld& vld,
                                                    const MixedStreamOptions& options) {
  if (options.streams == 0 || options.streams > vld.queue_depth()) {
    return common::InvalidArgument("mixed streams: stream count out of range");
  }
  if (!options.stream_configs.empty() && options.stream_configs.size() != 1 &&
      options.stream_configs.size() != options.streams) {
    return common::InvalidArgument("mixed streams: bad stream_configs size");
  }
  const uint32_t block_sectors = kUpdateBytes / vld.SectorBytes();
  const uint32_t blocks = vld.logical_blocks() / 2;
  common::Clock* clock = vld.disk().clock();

  // Per-stream state: behavior, decorrelated rng, a rotated Zipf hot spot, and the time the
  // stream's think interval ends (it resubmits then).
  struct Stream {
    StreamConfig config;
    common::Rng rng{0};
    ZipfSampler zipf{1, 0};
    uint32_t hot_offset = 0;
    common::Time next_ready = 0;
    bool outstanding = false;
    uint64_t reads = 0;
    uint64_t writes = 0;
    obs::LatencyHistogram hist;
  };
  std::vector<Stream> streams(options.streams);
  for (uint32_t s = 0; s < options.streams; ++s) {
    if (options.stream_configs.size() == options.streams) {
      streams[s].config = options.stream_configs[s];
    } else if (options.stream_configs.size() == 1) {
      streams[s].config = options.stream_configs[0];
    }
    streams[s].rng = common::Rng(options.seed * 1000003ull + 17ull * s + 1);
    streams[s].zipf = ZipfSampler(blocks, streams[s].config.zipf_theta);
    streams[s].hot_offset =
        static_cast<uint32_t>((static_cast<uint64_t>(s) * blocks) / options.streams);
  }

  std::vector<std::byte> payload(kUpdateBytes);
  const auto fill_payload = [&](uint32_t block, uint32_t stream) {
    FillAffinePayload(payload, block * 131u + stream * 29u);
  };
  if (options.prepopulate) {
    for (uint32_t b = 0; b < blocks; ++b) {
      fill_payload(b, 0);
      RETURN_IF_ERROR(vld.Write(static_cast<simdisk::Lba>(b) * block_sectors, payload));
    }
  }

  MixedStreamResult result;
  obs::TraceRecorder* tracer = vld.disk().tracer();
  obs::TimeBreakdown totals_start = tracer != nullptr ? tracer->totals() : obs::TimeBreakdown{};
  common::Time window_start = clock->Now();
  // Completion id -> stream. At most `streams` entries at once, so a flat vector with linear
  // find beats a node-allocating map on the per-op hot path.
  std::vector<std::pair<uint64_t, uint32_t>> inflight;
  inflight.reserve(options.streams);
  int discarded = 0;
  int recorded = 0;
  bool measuring = options.warmup == 0;
  // Closed loop, whole batches: submit every ready stream's next op, group-service the queue,
  // retire completions. The measured window opens at a batch boundary once `warmup`
  // completions have been discarded, so the tracer-totals diff covers exactly the recorded
  // spans and the breakdown-sums-to-latency identity carries over to mixed runs.
  while (recorded < options.ops) {
    common::Time earliest = std::numeric_limits<common::Time>::max();
    bool submitted = false;
    for (uint32_t s = 0; s < options.streams; ++s) {
      Stream& st = streams[s];
      if (st.outstanding) {
        continue;
      }
      earliest = std::min(earliest, st.next_ready);
      if (st.next_ready > clock->Now()) {
        continue;
      }
      const bool is_read = st.rng.Chance(st.config.read_fraction);
      const uint32_t rank = st.config.zipf_theta > 0 ? st.zipf.Sample(st.rng)
                                                     : static_cast<uint32_t>(st.rng.Below(blocks));
      const uint32_t block = (rank + st.hot_offset) % blocks;
      const simdisk::Lba lba = static_cast<simdisk::Lba>(block) * block_sectors;
      uint64_t id = 0;
      if (is_read) {
        ASSIGN_OR_RETURN(id, vld.SubmitRead(lba, block_sectors));
      } else {
        fill_payload(block, s);
        ASSIGN_OR_RETURN(id, vld.SubmitWrite(lba, payload));
      }
      inflight.emplace_back(id, s);
      st.outstanding = true;
      submitted = true;
    }
    if (!submitted) {
      // Every idle stream is thinking: jump to the first wakeup.
      clock->AdvanceTo(earliest);
      continue;
    }
    ASSIGN_OR_RETURN(std::vector<core::Vld::QueuedCompletion> done, vld.FlushQueue());
    for (const core::Vld::QueuedCompletion& c : done) {
      const auto it = std::find_if(inflight.begin(), inflight.end(),
                                   [&](const auto& e) { return e.first == c.id; });
      if (it == inflight.end()) {
        return common::FailedPrecondition("mixed streams: unknown completion id");
      }
      Stream& st = streams[it->second];
      *it = inflight.back();
      inflight.pop_back();
      st.outstanding = false;
      st.next_ready = c.complete_time + st.config.think_time;
      if (!measuring) {
        ++discarded;
        continue;
      }
      ++recorded;
      st.hist.Record(c.Latency());
      result.latency_hist.Record(c.Latency());
      if (c.is_write) {
        ++st.writes;
      } else {
        ++st.reads;
      }
    }
    if (!measuring && discarded >= options.warmup) {
      measuring = true;
      window_start = clock->Now();
      if (tracer != nullptr) {
        totals_start = tracer->totals();
      }
    }
  }

  const common::Duration elapsed = clock->Now() - window_start;
  result.ops = static_cast<uint64_t>(recorded);
  result.iops = elapsed > 0 ? static_cast<double>(recorded) / common::ToSeconds(elapsed) : 0;
  if (tracer != nullptr) {
    result.breakdown = tracer->totals() - totals_start;
  }
  result.streams.resize(options.streams);
  for (uint32_t s = 0; s < options.streams; ++s) {
    StreamResult& r = result.streams[s];
    r.stream = s;
    r.reads = streams[s].reads;
    r.writes = streams[s].writes;
    const uint64_t ops = r.reads + r.writes;
    r.iops = elapsed > 0 ? static_cast<double>(ops) / common::ToSeconds(elapsed) : 0;
    r.latency_hist = streams[s].hist;
    r.p50_latency = static_cast<common::Duration>(streams[s].hist.Percentile(50));
    r.p99_latency = static_cast<common::Duration>(streams[s].hist.Percentile(99));
  }
  return result;
}

namespace {

// Instantaneous arrival rate at absolute time `t` (run started at `start`). The declared
// burst interval overrides whatever the process shape would otherwise produce.
double ArrivalRateAt(const OpenLoopOptions& options, common::Time t, common::Time start) {
  const common::Time burst_lo = start + options.burst_start;
  if (options.burst_rate_ops_per_s > 0 && t >= burst_lo &&
      t < burst_lo + options.burst_duration) {
    return options.burst_rate_ops_per_s;
  }
  switch (options.process) {
    case ArrivalProcess::kPoisson:
      return options.rate_ops_per_s;
    case ArrivalProcess::kOnOff: {
      const common::Duration cycle = options.on_duration + options.off_duration;
      if (cycle <= 0) {
        return options.rate_ops_per_s;
      }
      const common::Duration phase = (t - start) % cycle;
      return phase < options.on_duration ? options.rate_ops_per_s : 0.0;
    }
    case ArrivalProcess::kDiurnal: {
      if (options.diurnal_period <= 0) {
        return options.rate_ops_per_s;
      }
      const double frac = static_cast<double>((t - start) % options.diurnal_period) /
                          static_cast<double>(options.diurnal_period);
      return options.rate_ops_per_s *
             (1.0 + options.diurnal_amplitude * std::sin(2.0 * kPi * frac));
    }
  }
  return options.rate_ops_per_s;
}

// Appends `options.arrivals` strictly increasing timestamps to `out`, drawing from `rng`.
// kPoisson keeps the original single-draw exponential walk (so existing seeds reproduce
// byte-identically); the non-homogeneous processes thin a Poisson stream at the max rate
// against ArrivalRateAt (Lewis-Shedler), which stays exact for any bounded rate function.
void AppendArrivals(const OpenLoopOptions& options, common::Time start, common::Rng& rng,
                    std::vector<common::Time>& out) {
  out.reserve(out.size() + static_cast<size_t>(options.arrivals));
  common::Time t = start;
  if (options.process == ArrivalProcess::kPoisson) {
    const common::Time burst_lo = start + options.burst_start;
    const common::Time burst_hi = burst_lo + options.burst_duration;
    for (int i = 0; i < options.arrivals; ++i) {
      const bool in_burst =
          options.burst_rate_ops_per_s > 0 && t >= burst_lo && t < burst_hi;
      const double rate = in_burst ? options.burst_rate_ops_per_s : options.rate_ops_per_s;
      const double u = rng.NextDouble();
      const double gap_ns = -std::log1p(-u) * 1e9 / rate;
      t += static_cast<common::Duration>(gap_ns) + 1;  // Strictly increasing arrival times.
      out.push_back(t);
    }
    return;
  }
  double rate_max = options.rate_ops_per_s;
  if (options.process == ArrivalProcess::kDiurnal) {
    rate_max *= 1.0 + options.diurnal_amplitude;
  }
  rate_max = std::max(rate_max, options.burst_rate_ops_per_s);
  for (int accepted = 0; accepted < options.arrivals;) {
    const double u = rng.NextDouble();
    const double gap_ns = -std::log1p(-u) * 1e9 / rate_max;
    t += static_cast<common::Duration>(gap_ns) + 1;
    if (rng.NextDouble() * rate_max < ArrivalRateAt(options, t, start)) {
      out.push_back(t);
      ++accepted;
    }
  }
}

common::StatusOr<OpenLoopResult> RunOpenLoopImpl(core::Vld& vld,
                                                 const OpenLoopOptions& options,
                                                 core::CompactionGovernor* governor,
                                                 obs::Timeline* timeline,
                                                 obs::WindowedHistogram* latency) {
  if (options.rate_ops_per_s <= 0) {
    return common::InvalidArgument("open loop: rate must be positive");
  }
  if (options.arrivals <= 0) {
    return common::InvalidArgument("open loop: arrivals must be positive");
  }
  if (options.region_blocks > vld.logical_blocks()) {
    return common::InvalidArgument("open loop: region exceeds the logical space");
  }
  const uint32_t batch_limit =
      options.max_batch == 0 ? vld.queue_depth()
                             : std::min(options.max_batch, vld.queue_depth());
  const uint32_t block_sectors = kUpdateBytes / vld.SectorBytes();
  const uint32_t blocks =
      options.region_blocks != 0 ? options.region_blocks : vld.logical_blocks() / 2;
  common::Clock* clock = vld.disk().clock();
  const common::Time run_start = clock->Now();

  // The arrival process is generated up front, sequentially, so the schedule depends only on
  // the seed and the options — never on how the device keeps up.
  common::Rng rng(options.seed);
  std::vector<common::Time> arrival_times;
  AppendArrivals(options, run_start, rng, arrival_times);

  std::vector<std::byte> payload(kUpdateBytes);
  OpenLoopResult result;
  obs::TraceRecorder* tracer = vld.disk().tracer();
  const obs::TimeBreakdown totals_before =
      tracer != nullptr ? tracer->totals() : obs::TimeBreakdown{};

  // Completion id -> arrival time of the oldest-submitted requests (at most queue_depth).
  std::vector<std::pair<uint64_t, common::Time>> inflight;
  inflight.reserve(batch_limit);
  size_t next_arrival = 0;   // First arrival not yet ingested into the backlog.
  size_t next_submit = 0;    // First arrival not yet submitted to the device.
  uint64_t completed = 0;
  while (completed < static_cast<uint64_t>(options.arrivals)) {
    const common::Time now = clock->Now();
    // Ingest every arrival whose timestamp has passed (they queue in the backlog).
    while (next_arrival < arrival_times.size() && arrival_times[next_arrival] <= now) {
      ++next_arrival;
    }
    result.max_backlog = std::max(result.max_backlog,
                                  static_cast<uint64_t>(next_arrival - next_submit));
    if (next_submit == next_arrival) {
      // Device idle and nothing has arrived: an arrival trough. Offer the whole gap to the
      // governor first (idle time is where compaction is free), then jump to the next
      // arrival. AdvanceTo clamps, so a burst that overran the gap just means no jump.
      if (governor != nullptr) {
        const common::Duration gap = arrival_times[next_arrival] - now;
        if (gap > 0 && governor->RunBurst(gap) > 0 && timeline != nullptr) {
          timeline->Poll(clock->Now());
        }
      }
      clock->AdvanceTo(arrival_times[next_arrival]);
      if (timeline != nullptr) {
        timeline->Poll(clock->Now());
      }
      continue;
    }
    // Submit up to one device batch from the backlog (oldest first), then group-service it.
    const size_t n =
        std::min<size_t>(batch_limit, next_arrival - next_submit);
    for (size_t i = 0; i < n; ++i) {
      const common::Time arrival = arrival_times[next_submit];
      const uint32_t block = static_cast<uint32_t>(rng.Below(blocks));
      const simdisk::Lba lba = static_cast<simdisk::Lba>(block) * block_sectors;
      uint64_t id = 0;
      if (rng.Chance(options.read_fraction)) {
        ASSIGN_OR_RETURN(id, vld.SubmitRead(lba, block_sectors));
      } else {
        FillAffinePayload(payload, block * 131u);
        ASSIGN_OR_RETURN(id, vld.SubmitWrite(lba, payload));
      }
      inflight.emplace_back(id, arrival);
      ++next_submit;
    }
    ASSIGN_OR_RETURN(std::vector<core::Vld::QueuedCompletion> done, vld.FlushQueue());
    for (const core::Vld::QueuedCompletion& c : done) {
      const auto it = std::find_if(inflight.begin(), inflight.end(),
                                   [&](const auto& e) { return e.first == c.id; });
      if (it == inflight.end()) {
        return common::FailedPrecondition("open loop: unknown completion id");
      }
      const common::Duration lat = c.complete_time - it->second;
      *it = inflight.back();
      inflight.pop_back();
      result.latency_hist.Record(lat);
      if (latency != nullptr) {
        latency->Record(lat);
      }
      ++completed;
    }
    if (timeline != nullptr) {
      timeline->Poll(clock->Now());
    }
    // Between-batch governed burst: the backlog is momentarily drained from the device queue,
    // so this is the natural preemption point for duty-cycled compaction.
    if (governor != nullptr && governor->RunBurst(0) > 0 && timeline != nullptr) {
      timeline->Poll(clock->Now());
    }
  }

  result.ops = completed;
  result.makespan = clock->Now() - run_start;
  const common::Duration arrival_span = arrival_times.back() - run_start;
  result.offered_rate = arrival_span > 0 ? static_cast<double>(options.arrivals) /
                                               common::ToSeconds(arrival_span)
                                         : 0;
  result.achieved_iops = result.makespan > 0 ? static_cast<double>(completed) /
                                                   common::ToSeconds(result.makespan)
                                             : 0;
  if (tracer != nullptr) {
    result.breakdown = tracer->totals() - totals_before;
  }
  return result;
}

}  // namespace

common::StatusOr<OpenLoopResult> RunOpenLoopPoisson(core::Vld& vld,
                                                    const OpenLoopOptions& options,
                                                    obs::Timeline* timeline,
                                                    obs::WindowedHistogram* latency) {
  return RunOpenLoopImpl(vld, options, /*governor=*/nullptr, timeline, latency);
}

std::vector<common::Time> GenerateArrivals(const OpenLoopOptions& options, common::Time start) {
  common::Rng rng(options.seed);
  std::vector<common::Time> out;
  AppendArrivals(options, start, rng, out);
  return out;
}

common::StatusOr<OpenLoopResult> RunGovernedOpenLoop(core::Vld& vld,
                                                     const OpenLoopOptions& options,
                                                     core::CompactionGovernor* governor,
                                                     obs::Timeline* timeline,
                                                     obs::WindowedHistogram* latency) {
  return RunOpenLoopImpl(vld, options, governor, timeline, latency);
}

}  // namespace vlog::workload
