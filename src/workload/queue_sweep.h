// Closed-loop multi-stream random-update driver for the queued VLD write engine.
//
// Models `depth` independent streams, each keeping exactly one 4 KB random update
// outstanding: the device accepts a queue's worth of requests, services them with the
// controller pipelined against the media, and acknowledges the whole group when its single
// packed map commit is durable — at which point every stream immediately submits its next
// update (closed loop). Per-request latency is measured submit -> group-commit on the virtual
// clock; IOPS over the measured interval. Depth 1 degenerates to the synchronous Write path.
#ifndef SRC_WORKLOAD_QUEUE_SWEEP_H_
#define SRC_WORKLOAD_QUEUE_SWEEP_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/core/governor.h"
#include "src/core/vld.h"
#include "src/obs/histogram.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"

namespace vlog::workload {

struct QueueDepthResult {
  uint32_t depth = 0;
  uint64_t updates = 0;           // Measured requests (excludes warmup).
  double iops = 0;                // Measured requests per simulated second.
  common::Duration mean_latency = 0;
  common::Duration p50_latency = 0;
  common::Duration p90_latency = 0;
  common::Duration p99_latency = 0;
  common::Duration max_latency = 0;
  // Mean time a request waited behind earlier queue entries before its controller work began
  // (FlushQueue services FIFO; placement is eager so service order cannot improve writes).
  common::Duration mean_queue_delay = 0;
  // Per-request latencies (ns) over the measured window, for mergeable percentile export.
  obs::LatencyHistogram latency_hist;
  // Sum over measured requests of where their time went; components add up to the total
  // simulated request time. Zero unless a TraceRecorder is attached to the Vld's disk.
  obs::TimeBreakdown breakdown;
};

// Runs `warmup` unmeasured then `updates` measured random 4 KB updates over the first half of
// the device's logical space, `depth` streams closed-loop. The Vld must be freshly formatted
// with queue_depth >= depth.
common::StatusOr<QueueDepthResult> RunQueuedRandomUpdates(core::Vld& vld, uint32_t depth,
                                                          int updates, int warmup,
                                                          uint64_t seed = 2);

// --- Mixed read/write multi-stream driver (SubmitRead + SubmitWrite through one queue) ---

// Deterministic Zipf(theta) sampler over ranks [0, n): rank 0 is hottest, p(i) ~ 1/(i+1)^theta.
// theta 0 degenerates to uniform. Sampling is a binary search over a precomputed CDF.
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double theta);
  uint32_t Sample(common::Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

// One stream's behavior in a mixed run.
struct StreamConfig {
  double read_fraction = 0.5;       // P(next op is a read).
  common::Duration think_time = 0;  // Idle time between a completion and the next submission.
  double zipf_theta = 0.0;          // Block-address skew (0 = uniform over the region).
};

struct StreamResult {
  uint32_t stream = 0;
  uint64_t reads = 0;   // Measured ops.
  uint64_t writes = 0;
  double iops = 0;      // Measured ops over the shared measured window.
  common::Duration p50_latency = 0;
  common::Duration p99_latency = 0;
  obs::LatencyHistogram latency_hist;  // Per-request latencies (ns), reads and writes.
};

struct MixedStreamResult {
  uint64_t ops = 0;  // Measured ops across all streams.
  double iops = 0;
  obs::LatencyHistogram latency_hist;
  obs::TimeBreakdown breakdown;  // Tracer totals over the measured window (zero untraced).
  std::vector<StreamResult> streams;

  // Max/min per-stream throughput over the shared window — 1.0 is perfectly fair; a scheduler
  // that feasts on near requests and starves a far stream drives this up.
  double FairnessRatio() const;
};

struct MixedStreamOptions {
  uint32_t streams = 4;  // Also the queue depth driven (one outstanding op per stream).
  int ops = 1000;        // Measured completions (across streams; excludes warmup).
  int warmup = 100;
  uint64_t seed = 2;
  // Per-stream behavior: size streams(), or size 1 to apply to every stream, or empty for
  // defaults. Each stream's Zipf hot spot is rotated so hot sets do not collide.
  std::vector<StreamConfig> stream_configs;
  // Write every block in the region once before warmup so reads hit mapped blocks.
  bool prepopulate = true;
};

// Runs a closed-loop mixed read/write workload over the first half of the logical space:
// each stream keeps one 4 KB op outstanding (submitted when its think time expires), the
// queue group-services via FlushQueue, and per-stream latency histograms are collected over
// the measured window. The Vld must be freshly formatted with queue_depth >= streams.
common::StatusOr<MixedStreamResult> RunMixedStreams(core::Vld& vld,
                                                    const MixedStreamOptions& options);

// --- Open-loop Poisson arrival driver ---
//
// Unlike the closed-loop drivers above (where the submission rate adapts to the device —
// saturation shows up as flat throughput, never as unbounded queues), arrivals here are an
// exogenous Poisson process: requests arrive whether or not earlier ones completed, queue in
// an unbounded arrival backlog in front of the device queue, and latency is measured
// arrival -> completion, so time spent waiting in the backlog counts. Offered load above the
// service capacity therefore produces the classic open-loop signature — latency grows with
// the backlog until the offered rate drops back below capacity — which is exactly the SLO
// breach-and-recovery shape the timeline leg of bench_queue_depth asserts.

// Arrival-process shapes for the open-loop driver. Every process is pre-generated up front
// from the seed and options alone — generation touches no clock and no device, so the same
// seed always yields the same schedule regardless of how the device keeps up.
enum class ArrivalProcess {
  kPoisson,  // Homogeneous base rate (plus the optional burst-interval override).
  kOnOff,    // Alternating ON (base rate) and OFF (silent) phases — bursty traffic.
  kDiurnal,  // Sinusoid-modulated rate: rate * (1 + amplitude * sin(2*pi*t/period)).
};

struct OpenLoopOptions {
  double rate_ops_per_s = 2000;      // Base Poisson arrival rate.
  // Arrivals inside [burst_start, burst_start + burst_duration) (relative to run start) use
  // this rate instead — set above the device's service capacity to force an SLO breach that
  // recovers once the burst ends. 0 disables the burst. The burst overrides whatever rate the
  // arrival process would otherwise be running (it is the *declared* overload interval the
  // long-horizon bench excludes from its p99 gate).
  double burst_rate_ops_per_s = 0;
  common::Duration burst_start = 0;
  common::Duration burst_duration = 0;
  int arrivals = 2000;        // Total arrivals; the run ends when all have completed.
  double read_fraction = 0;   // P(an arrival is a 4 KB read) — writes otherwise.
  uint64_t seed = 2;
  // Max requests submitted per FlushQueue batch (clamped to the device queue depth; 0 = use
  // the device queue depth). Smaller batches poll the timeline more often.
  uint32_t max_batch = 0;
  ArrivalProcess process = ArrivalProcess::kPoisson;
  common::Duration on_duration = common::Milliseconds(500);   // kOnOff phase lengths.
  common::Duration off_duration = common::Milliseconds(500);
  common::Duration diurnal_period = common::Seconds(2);  // kDiurnal modulation period.
  double diurnal_amplitude = 0.5;                        // Peak rate swing, in [0, 1).
  // Logical blocks the ops address, starting at block 0 (0 = half the logical space). Raising
  // this raises steady-state physical utilization — the long-horizon legs use it to put the
  // allocator under real free-space pressure.
  uint32_t region_blocks = 0;
};

struct OpenLoopResult {
  uint64_t ops = 0;
  double offered_rate = 0;   // Arrivals per second of arrival-process span.
  double achieved_iops = 0;  // Completions per second of makespan.
  common::Duration makespan = 0;
  uint64_t max_backlog = 0;  // Peak arrival-backlog depth (arrived, not yet submitted).
  obs::LatencyHistogram latency_hist;  // Arrival -> completion (includes backlog wait).
  obs::TimeBreakdown breakdown;        // Tracer totals over the run (zero untraced).
};

// Runs `arrivals` open-loop 4 KB random ops over the first half of the logical space. When
// `timeline` is non-null it is Poll()ed at every batch boundary and idle jump (the driver
// never calls Finish — the caller owns export). When `latency` is non-null every completion's
// arrival->completion latency is recorded there as well as in the result histogram, so a
// timeline window histogram can track the same series. The Vld must be freshly formatted.
common::StatusOr<OpenLoopResult> RunOpenLoopPoisson(core::Vld& vld,
                                                    const OpenLoopOptions& options,
                                                    obs::Timeline* timeline = nullptr,
                                                    obs::WindowedHistogram* latency = nullptr);

// The arrival schedule RunOpenLoopPoisson would use, relative to `start`: strictly increasing
// timestamps, `options.arrivals` of them. kPoisson draws exponential interarrivals at the
// piecewise rate; kOnOff/kDiurnal thin a max-rate Poisson stream against the instantaneous
// rate (Lewis-Shedler), so non-homogeneous schedules stay a pure function of (seed, options).
// Clock-pure: reads and advances nothing.
std::vector<common::Time> GenerateArrivals(const OpenLoopOptions& options, common::Time start);

// RunOpenLoopPoisson with duty-cycled background compaction: between foreground batches the
// driver offers the governor a grant (RunBurst(0)), and on idle jumps it declares the arrival
// gap as a trough (RunBurst(gap)) before advancing to the next arrival. `governor` must
// govern `vld`; passing nullptr is exactly RunOpenLoopPoisson. The timeline (when non-null)
// is additionally Polled after each governed burst so compaction time lands in the right
// window.
common::StatusOr<OpenLoopResult> RunGovernedOpenLoop(core::Vld& vld,
                                                     const OpenLoopOptions& options,
                                                     core::CompactionGovernor* governor,
                                                     obs::Timeline* timeline = nullptr,
                                                     obs::WindowedHistogram* latency = nullptr);

}  // namespace vlog::workload

#endif  // SRC_WORKLOAD_QUEUE_SWEEP_H_
