// Closed-loop multi-stream random-update driver for the queued VLD write engine.
//
// Models `depth` independent streams, each keeping exactly one 4 KB random update
// outstanding: the device accepts a queue's worth of requests, services them with the
// controller pipelined against the media, and acknowledges the whole group when its single
// packed map commit is durable — at which point every stream immediately submits its next
// update (closed loop). Per-request latency is measured submit -> group-commit on the virtual
// clock; IOPS over the measured interval. Depth 1 degenerates to the synchronous Write path.
#ifndef SRC_WORKLOAD_QUEUE_SWEEP_H_
#define SRC_WORKLOAD_QUEUE_SWEEP_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/core/vld.h"
#include "src/obs/histogram.h"
#include "src/obs/trace.h"

namespace vlog::workload {

struct QueueDepthResult {
  uint32_t depth = 0;
  uint64_t updates = 0;           // Measured requests (excludes warmup).
  double iops = 0;                // Measured requests per simulated second.
  common::Duration mean_latency = 0;
  common::Duration p50_latency = 0;
  common::Duration p90_latency = 0;
  common::Duration p99_latency = 0;
  common::Duration max_latency = 0;
  // Mean time a request waited behind earlier queue entries before its controller work began
  // (FlushQueue services FIFO; placement is eager so service order cannot improve writes).
  common::Duration mean_queue_delay = 0;
  // Per-request latencies (ns) over the measured window, for mergeable percentile export.
  obs::LatencyHistogram latency_hist;
  // Sum over measured requests of where their time went; components add up to the total
  // simulated request time. Zero unless a TraceRecorder is attached to the Vld's disk.
  obs::TimeBreakdown breakdown;
};

// Runs `warmup` unmeasured then `updates` measured random 4 KB updates over the first half of
// the device's logical space, `depth` streams closed-loop. The Vld must be freshly formatted
// with queue_depth >= depth.
common::StatusOr<QueueDepthResult> RunQueuedRandomUpdates(core::Vld& vld, uint32_t depth,
                                                          int updates, int warmup,
                                                          uint64_t seed = 2);

}  // namespace vlog::workload

#endif  // SRC_WORKLOAD_QUEUE_SWEEP_H_
