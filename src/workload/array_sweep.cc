#include "src/workload/array_sweep.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/payload.h"

namespace vlog::workload {

namespace {

// The deterministic block payload both drivers agree on: byte j of block b is
// (b * 131 + j * 7) & 0xFF — the same tag queue_sweep uses, so goldens stay familiar.
void FillPattern(uint32_t block, std::vector<std::byte>& payload) {
  FillAffinePayload(payload, block * 131u);
}

void Summarize(std::vector<common::Duration> latencies, common::Duration elapsed,
               ArraySweepResult* result) {
  result->updates = latencies.size();
  result->iops =
      elapsed > 0 ? static_cast<double>(latencies.size()) / common::ToSeconds(elapsed) : 0;
  common::Duration total = 0;
  for (const common::Duration lat : latencies) {
    total += lat;
    result->latency_hist.Record(lat);
  }
  result->mean_latency =
      latencies.empty() ? 0 : total / static_cast<common::Duration>(latencies.size());
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    const auto exact_pct = [&](size_t pct) {
      return latencies[std::min(latencies.size() - 1, latencies.size() * pct / 100)];
    };
    result->p50_latency = exact_pct(50);
    result->p99_latency = exact_pct(99);
    result->max_latency = latencies.back();
  }
}

// The shared closed-loop driver. `Device` is VldArray or Vld: both expose SectorCount,
// SectorBytes, block_sectors, queue_depth, SubmitWrite, and FlushQueue with Latency()-bearing
// completions, and `now` reads the device's notion of current time (array barrier time for the
// array, the member clock for a bare Vld) so elapsed — and therefore IOPS — is measured the
// same way on both sides of the N = 1 identity gate.
template <typename Device, typename NowFn>
common::StatusOr<ArraySweepResult> RunUpdates(Device& dev, NowFn now, uint32_t depth,
                                              int updates, int warmup, uint64_t seed,
                                              uint32_t region_blocks,
                                              obs::Timeline* timeline = nullptr,
                                              obs::WindowedHistogram* window_latency = nullptr) {
  if (depth == 0 || depth > dev.queue_depth()) {
    return common::InvalidArgument("array sweep: depth out of range");
  }
  const uint32_t block_sectors = dev.block_sectors();
  const uint32_t device_blocks = static_cast<uint32_t>(dev.SectorCount() / block_sectors);
  const uint32_t blocks = region_blocks != 0 ? region_blocks : device_blocks / 2;
  if (blocks == 0 || blocks > device_blocks) {
    return common::InvalidArgument("array sweep: region out of range");
  }
  common::Rng rng(seed);
  std::vector<std::byte> payload(static_cast<size_t>(block_sectors) * dev.SectorBytes());

  auto run_round = [&](int n, std::vector<common::Duration>* latencies) -> common::Status {
    for (int i = 0; i < n; ++i) {
      const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
      FillPattern(b, payload);
      RETURN_IF_ERROR(
          dev.SubmitWrite(static_cast<simdisk::Lba>(b) * block_sectors, payload).status());
    }
    auto done = dev.FlushQueue();
    RETURN_IF_ERROR(done.status());
    if (latencies != nullptr) {
      for (const auto& c : done.value()) {
        latencies->push_back(c.Latency());
        if (window_latency != nullptr) {
          window_latency->Record(c.Latency());
        }
      }
    }
    if (timeline != nullptr) {
      timeline->Poll(now());
    }
    return common::OkStatus();
  };

  for (int remaining = warmup; remaining > 0;) {
    const int n = std::min<int>(remaining, static_cast<int>(depth));
    RETURN_IF_ERROR(run_round(n, nullptr));
    remaining -= n;
  }

  std::vector<common::Duration> latencies;
  latencies.reserve(static_cast<size_t>(updates));
  const common::Time start = now();
  for (int remaining = updates; remaining > 0;) {
    const int n = std::min<int>(remaining, static_cast<int>(depth));
    RETURN_IF_ERROR(run_round(n, &latencies));
    remaining -= n;
  }
  const common::Duration elapsed = now() - start;

  ArraySweepResult result;
  result.depth = depth;
  Summarize(std::move(latencies), elapsed, &result);
  return result;
}

}  // namespace

common::StatusOr<ArraySweepResult> RunArrayRandomUpdates(array::VldArray& array, uint32_t depth,
                                                         int updates, int warmup, uint64_t seed,
                                                         uint32_t region_blocks,
                                                         obs::Timeline* timeline,
                                                         obs::WindowedHistogram* latency) {
  return RunUpdates(
      array, [&] { return array.now(); }, depth, updates, warmup, seed, region_blocks, timeline,
      latency);
}

common::StatusOr<ArraySweepResult> RunArrayRandomUpdates(core::Vld& vld, uint32_t depth,
                                                         int updates, int warmup, uint64_t seed,
                                                         uint32_t region_blocks) {
  return RunUpdates(
      vld, [&] { return vld.disk().clock()->Now(); }, depth, updates, warmup, seed,
      region_blocks);
}

common::Status PrepopulateArray(array::VldArray& array, uint32_t region_blocks) {
  const uint32_t block_sectors = array.block_sectors();
  const uint32_t device_blocks = static_cast<uint32_t>(array.SectorCount() / block_sectors);
  const uint32_t blocks = region_blocks != 0 ? region_blocks : device_blocks / 2;
  if (blocks == 0 || blocks > device_blocks) {
    return common::InvalidArgument("array prepopulate: region out of range");
  }
  std::vector<std::byte> payload(static_cast<size_t>(block_sectors) * array.SectorBytes());
  for (uint32_t b = 0; b < blocks; ++b) {
    FillPattern(b, payload);
    RETURN_IF_ERROR(array.Write(static_cast<simdisk::Lba>(b) * block_sectors, payload));
  }
  return common::OkStatus();
}

common::StatusOr<ArrayReadResult> RunArrayRandomReads(array::VldArray& array, int reads,
                                                      uint64_t seed, uint32_t region_blocks) {
  const uint32_t block_sectors = array.block_sectors();
  const uint32_t device_blocks = static_cast<uint32_t>(array.SectorCount() / block_sectors);
  const uint32_t blocks = region_blocks != 0 ? region_blocks : device_blocks / 2;
  if (blocks == 0 || blocks > device_blocks) {
    return common::InvalidArgument("array reads: region out of range");
  }
  common::Rng rng(seed);
  std::vector<std::byte> got(static_cast<size_t>(block_sectors) * array.SectorBytes());
  std::vector<std::byte> want(got.size());

  ArrayReadResult result;
  std::vector<common::Duration> latencies;
  latencies.reserve(static_cast<size_t>(reads));
  const common::Time start = array.now();
  for (int i = 0; i < reads; ++i) {
    const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
    const common::Time before = array.now();
    RETURN_IF_ERROR(array.Read(static_cast<simdisk::Lba>(b) * block_sectors, got));
    latencies.push_back(array.now() - before);
    FillPattern(b, want);
    result.payloads_ok &= got == want;
  }
  const common::Duration elapsed = array.now() - start;

  result.reads = latencies.size();
  result.iops =
      elapsed > 0 ? static_cast<double>(latencies.size()) / common::ToSeconds(elapsed) : 0;
  common::Duration total = 0;
  for (const common::Duration lat : latencies) {
    total += lat;
    result.latency_hist.Record(lat);
  }
  result.mean_latency =
      latencies.empty() ? 0 : total / static_cast<common::Duration>(latencies.size());
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    const auto exact_pct = [&](size_t pct) {
      return latencies[std::min(latencies.size() - 1, latencies.size() * pct / 100)];
    };
    result.p50_latency = exact_pct(50);
    result.p99_latency = exact_pct(99);
  }
  return result;
}

}  // namespace vlog::workload
