// The deterministic block payload every workload driver agrees on: byte j of a block tagged
// `start` is (start + 7*j) & 0xFF. Drivers derive `start` from the block number (and stream,
// for multi-stream runs), so torn-write and misdirection bugs show up as content mismatches.
#ifndef SRC_WORKLOAD_PAYLOAD_H_
#define SRC_WORKLOAD_PAYLOAD_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace vlog::workload {

// Fills payload[j] = (start + 7*j) & 0xFF. The pattern repeats every 256 bytes
// (7 * 256 == 0 mod 256), so one cycle is computed byte-wise and then doubled with memcpy —
// the fill runs per submitted write on bench hot paths, and byte-at-a-time arithmetic over a
// 4 KB block was a measurable slice of the whole closed-loop driver.
inline void FillAffinePayload(std::span<std::byte> payload, uint32_t start) {
  const size_t n = payload.size();
  const size_t cycle = std::min<size_t>(n, 256);
  uint8_t v = static_cast<uint8_t>(start);
  for (size_t j = 0; j < cycle; ++j) {
    payload[j] = static_cast<std::byte>(v);
    v = static_cast<uint8_t>(v + 7);
  }
  for (size_t filled = cycle; filled < n; filled += std::min(filled, n - filled)) {
    std::memcpy(payload.data() + filled, payload.data(), std::min(filled, n - filled));
  }
}

}  // namespace vlog::workload

#endif  // SRC_WORKLOAD_PAYLOAD_H_
