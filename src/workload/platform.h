// Experimental platform assembly (the paper's Figure 5).
//
// A Platform bundles one simulated disk (HP97560 or Seagate ST19101, truncated to the paper's
// 36/11 cylinders), optionally a Virtual Log Disk on top, a host CPU model (SPARCstation-10 or
// UltraSPARC-170), and one of the two file system stacks:
//   kUfs — update-in-place FFS work-alike directly on the block device;
//   kLfs — MinixUFS-style FS on the log-structured logical disk.
// Benchmarks drive the fs::FileSystem interface and read timing off the shared virtual clock.
#ifndef SRC_WORKLOAD_PLATFORM_H_
#define SRC_WORKLOAD_PLATFORM_H_

#include <memory>
#include <string>

#include "src/core/vld.h"
#include "src/fs/file_system.h"
#include "src/lfs/log_disk.h"
#include "src/lfs/simple_fs.h"
#include "src/simdisk/host_model.h"
#include "src/simdisk/sim_disk.h"
#include "src/ufs/ufs.h"

namespace vlog::workload {

enum class DiskModel { kHp97560, kSt19101 };
enum class DiskKind { kRegular, kVld };
enum class FsKind { kUfs, kLfs };
enum class HostKind { kSparc10, kUltra170, kZeroCost };

struct PlatformConfig {
  DiskModel disk_model = DiskModel::kSt19101;
  DiskKind disk_kind = DiskKind::kRegular;
  FsKind fs_kind = FsKind::kUfs;
  HostKind host_kind = HostKind::kSparc10;
  // 0 = the paper's truncation (36 HP cylinders / 11 Seagate cylinders, ~24 MB).
  uint32_t cylinders = 0;
  // Volatile write-back drive cache (capacity 0 = write-through, the default).
  simdisk::WriteCacheParams cache;
  core::VldConfig vld;
  lfs::LldConfig lld;
  lfs::SimpleFsConfig simple_fs;

  std::string Name() const;
};

class Platform {
 public:
  explicit Platform(const PlatformConfig& config);

  // Formats every layer; must be called before use.
  common::Status Format();

  fs::FileSystem& fs() { return *fs_; }
  common::Clock& clock() { return clock_; }
  simdisk::SimDisk& raw_disk() { return *raw_; }
  simdisk::HostModel& host() { return *host_; }
  core::Vld* vld() { return vld_.get(); }                        // Null on a regular disk.
  lfs::LogStructuredDisk* log_disk() { return lld_.get(); }      // Null for UFS.
  lfs::SimpleFs* simple_fs() { return simple_fs_.get(); }
  ufs::Ufs* ufs() { return ufs_.get(); }
  const PlatformConfig& config() const { return config_; }

  // Device capacity visible to the file system, in bytes.
  uint64_t DeviceBytes() const;
  // df-style utilisation of whichever file system is mounted.
  double FsUtilization() const;

  // Gives the storage stack an idle interval: the VLD compactor and/or the LFS stack
  // (flush dirty buffers, then clean segments) run until the budget is exhausted, after which
  // the clock stands at exactly now+budget.
  void RunIdle(common::Duration budget);

  // Snapshot of the cumulative disk-latency breakdown, for the Figure 9 decomposition.
  simdisk::LatencyBreakdown DiskBreakdown() const { return raw_->stats().breakdown; }

  // Wires one trace recorder (which must outlive the platform's use) through the whole stack:
  // the disk for mechanical/controller events — reached from there by the VLD, virtual log and
  // compactor — and the host model for CPU charges. Pass nullptr to detach.
  void AttachTracer(obs::TraceRecorder* tracer) {
    raw_->set_tracer(tracer);
    host_->set_tracer(tracer);
  }
  obs::TraceRecorder* tracer() const { return raw_->tracer(); }

 private:
  PlatformConfig config_;
  common::Clock clock_;
  std::unique_ptr<simdisk::SimDisk> raw_;
  std::unique_ptr<core::Vld> vld_;
  std::unique_ptr<simdisk::HostModel> host_;
  std::unique_ptr<ufs::Ufs> ufs_;
  std::unique_ptr<lfs::LogStructuredDisk> lld_;
  std::unique_ptr<lfs::SimpleFs> simple_fs_;
  fs::FileSystem* fs_ = nullptr;
};

}  // namespace vlog::workload

#endif  // SRC_WORKLOAD_PLATFORM_H_
