#include "src/ufs/ufs.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/bytes.h"

namespace vlog::ufs {
namespace {

// Splits an absolute path into components; empty result means the root directory.
common::StatusOr<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return common::InvalidArgument("path must be absolute: " + path);
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    const size_t j = path.find('/', i);
    const size_t end = j == std::string::npos ? path.size() : j;
    if (end > i) {
      const std::string part = path.substr(i, end - i);
      if (part.size() > kMaxNameLen) {
        return common::InvalidArgument("name too long: " + part);
      }
      parts.push_back(part);
    }
    i = end + 1;
  }
  return parts;
}

}  // namespace

Ufs::Ufs(simdisk::BlockDevice* device, simdisk::HostModel* host, UfsConfig config)
    : device_(device), host_(host), config_(config) {}

uint32_t Ufs::FragsForBlock(uint64_t size, uint64_t fbi) {
  const uint64_t blocks = (size + kBlockBytes - 1) / kBlockBytes;
  if (fbi >= blocks) {
    return 0;
  }
  if (fbi + 1 == blocks && blocks <= kDirectPtrs) {
    const uint64_t tail = size - fbi * kBlockBytes;
    return static_cast<uint32_t>((tail + kFragBytes - 1) / kFragBytes);
  }
  return kFragsPerBlock;
}

uint32_t Ufs::CgOfFrag(uint32_t frag_addr) const {
  return (frag_addr / kFragsPerBlock - 1) / sb_.blocks_per_cg;
}

common::Status Ufs::Format() {
  const uint64_t total_bytes = device_->SectorCount() * device_->SectorBytes();
  sb_ = Superblock{};
  sb_.total_frags = static_cast<uint32_t>(total_bytes / kFragBytes);
  sb_.blocks_per_cg = config_.blocks_per_cg;
  const uint32_t total_blocks = sb_.total_frags / kFragsPerBlock;
  if (total_blocks < 1 + sb_.blocks_per_cg) {
    return common::InvalidArgument("device too small for one cylinder group");
  }
  sb_.cg_count = (total_blocks - 1) / sb_.blocks_per_cg;
  sb_.inodes_per_cg = std::max(kInodesPerBlock, sb_.blocks_per_cg / 2 / kInodesPerBlock *
                                                    kInodesPerBlock);

  cgs_.assign(sb_.cg_count, CylinderGroup(sb_.DataBlocksPerCg(), sb_.inodes_per_cg));
  cg_dirty_.assign(sb_.cg_count, true);
  cache_.clear();
  read_state_.clear();
  mounted_ = true;

  // Reserve inode 0 (invalid) and the root inode, then write the root directory inode.
  (void)cgs_[0].AllocInode();  // ino 0
  (void)cgs_[0].AllocInode();  // ino 1 = root
  Inode root;
  root.type = InodeType::kDirectory;
  root.nlink = 2;
  root.mtime = static_cast<uint64_t>(host_->clock()->Now());
  RETURN_IF_ERROR(StoreInode(kRootInode, root, /*sync=*/true));

  RETURN_IF_ERROR(device_->Write(0, sb_.Serialize()));
  return Sync();
}

common::Status Ufs::Mount() {
  std::vector<std::byte> raw(kBlockBytes);
  RETURN_IF_ERROR(device_->Read(0, raw));
  ASSIGN_OR_RETURN(sb_, Superblock::Parse(raw));
  cgs_.clear();
  cgs_.reserve(sb_.cg_count);
  for (uint32_t cg = 0; cg < sb_.cg_count; ++cg) {
    RETURN_IF_ERROR(device_->Read(static_cast<uint64_t>(sb_.CgStartBlock(cg)) * 8, raw));
    ASSIGN_OR_RETURN(CylinderGroup parsed,
                     CylinderGroup::Parse(raw, sb_.DataBlocksPerCg(), sb_.inodes_per_cg));
    cgs_.push_back(std::move(parsed));
  }
  cg_dirty_.assign(sb_.cg_count, false);
  cache_.clear();
  read_state_.clear();
  mounted_ = true;
  return common::OkStatus();
}

// --- Buffer cache ---

common::Status Ufs::EvictIfNeeded() {
  while (cache_.size() >= config_.cache_blocks) {
    // Global LRU; dirty buffers are flushed on the way out, like a Unix buffer cache.
    uint32_t victim = 0;
    uint64_t best = ~0ULL;
    for (const auto& [block, buffer] : cache_) {
      if (buffer.lru < best) {
        best = buffer.lru;
        victim = block;
      }
    }
    auto it = cache_.find(victim);
    if (it == cache_.end()) {
      break;
    }
    if (it->second.dirty_mask != 0) {
      RETURN_IF_ERROR(FlushBuffer(it->first, it->second));
    }
    cache_.erase(it);
  }
  return common::OkStatus();
}

common::StatusOr<Ufs::Buffer*> Ufs::GetBlock(uint32_t dev_block, bool read_from_disk) {
  auto it = cache_.find(dev_block);
  if (it != cache_.end()) {
    it->second.lru = ++lru_tick_;
    ++stats_.cache_hits;
    return &it->second;
  }
  ++stats_.cache_misses;
  RETURN_IF_ERROR(EvictIfNeeded());
  Buffer buffer;
  buffer.data.resize(kBlockBytes);
  buffer.lru = ++lru_tick_;
  if (read_from_disk) {
    RETURN_IF_ERROR(device_->Read(static_cast<uint64_t>(dev_block) * 8, buffer.data));
  }
  auto [pos, inserted] = cache_.emplace(dev_block, std::move(buffer));
  return &pos->second;
}

common::Status Ufs::FlushBuffer(uint32_t dev_block, Buffer& buffer) {
  // Write each contiguous dirty fragment run.
  uint32_t i = 0;
  while (i < kFragsPerBlock) {
    if (!(buffer.dirty_mask & (1u << i))) {
      ++i;
      continue;
    }
    uint32_t j = i;
    while (j < kFragsPerBlock && (buffer.dirty_mask & (1u << j))) {
      ++j;
    }
    RETURN_IF_ERROR(device_->Write(
        static_cast<uint64_t>(dev_block) * 8 + i * 2,
        std::span<const std::byte>(buffer.data).subspan(i * kFragBytes, (j - i) * kFragBytes)));
    ++stats_.delayed_data_writes;
    i = j;
  }
  buffer.dirty_mask = 0;
  return common::OkStatus();
}

common::Status Ufs::WriteFragsThrough(uint32_t dev_block, uint32_t frag_off,
                                      uint32_t frag_count) {
  auto buffer = GetBlock(dev_block, /*read_from_disk=*/false);
  RETURN_IF_ERROR(buffer.status());
  RETURN_IF_ERROR(device_->Write(
      static_cast<uint64_t>(dev_block) * 8 + frag_off * 2,
      std::span<const std::byte>((*buffer)->data).subspan(frag_off * kFragBytes,
                                                          frag_count * kFragBytes)));
  for (uint32_t i = frag_off; i < frag_off + frag_count; ++i) {
    (*buffer)->dirty_mask &= ~(1u << i);
  }
  return common::OkStatus();
}

// --- Inodes ---

common::StatusOr<Inode> Ufs::ReadInode(uint32_t ino) {
  if (ino == kNoInode || ino >= sb_.TotalInodes()) {
    return common::InvalidArgument("bad inode number");
  }
  ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(sb_.InodeBlock(ino), true));
  return Inode::Decode(std::span<const std::byte>(buffer->data).subspan(sb_.InodeOffset(ino)));
}

common::Status Ufs::StoreInode(uint32_t ino, const Inode& inode, bool sync) {
  const uint32_t block = sb_.InodeBlock(ino);
  // Inode blocks may be updated before ever being read; always read to keep neighbours intact.
  ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(block, true));
  inode.EncodeTo(std::span<std::byte>(buffer->data).subspan(sb_.InodeOffset(ino)));
  // FFS buffers metadata in whole file system blocks and writes them as such.
  if (sync) {
    ++stats_.sync_metadata_writes;
    return WriteFragsThrough(block, 0, kFragsPerBlock);
  }
  buffer->dirty_mask |= 1u << (sb_.InodeOffset(ino) / kFragBytes);
  return common::OkStatus();
}

// --- Allocation ---

uint64_t Ufs::FreeFragCount() const {
  uint64_t total = 0;
  for (const auto& cg : cgs_) {
    total += cg.free_frags();
  }
  return total;
}

double Ufs::Utilization() const {
  const uint64_t data_frags =
      static_cast<uint64_t>(sb_.cg_count) * sb_.DataBlocksPerCg() * kFragsPerBlock;
  return 1.0 - static_cast<double>(FreeFragCount()) / static_cast<double>(data_frags);
}

common::StatusOr<uint32_t> Ufs::AllocFrags(uint32_t cg_hint, uint32_t count, bool block_aligned) {
  const uint64_t data_frags =
      static_cast<uint64_t>(sb_.cg_count) * sb_.DataBlocksPerCg() * kFragsPerBlock;
  if (FreeFragCount() < data_frags * config_.min_free_pct / 100 + count) {
    return common::OutOfSpace("file system full (minfree reserve reached)");
  }
  for (uint32_t d = 0; d < sb_.cg_count; ++d) {
    // Search the hinted group first, then fan out (quadratic-ish FFS-style spread kept simple).
    const uint32_t cg = (cg_hint + d) % sb_.cg_count;
    if (const auto rel = cgs_[cg].AllocFrags(count, block_aligned, 0)) {
      cg_dirty_[cg] = true;
      return sb_.DataStartBlock(cg) * kFragsPerBlock + *rel;
    }
  }
  return common::OutOfSpace("no fragment run available");
}

void Ufs::FreeFragsAt(uint32_t frag_addr, uint32_t count) {
  const uint32_t cg = CgOfFrag(frag_addr);
  const uint32_t rel = frag_addr - sb_.DataStartBlock(cg) * kFragsPerBlock;
  cgs_[cg].FreeFrags(rel, count);
  cg_dirty_[cg] = true;
  // Cancel any delayed writes to the freed fragments.
  const auto it = cache_.find(frag_addr / kFragsPerBlock);
  if (it != cache_.end()) {
    for (uint32_t i = 0; i < count; ++i) {
      it->second.dirty_mask &= ~(1u << (frag_addr % kFragsPerBlock + i));
    }
  }
}

common::StatusOr<uint32_t> Ufs::AllocInodeNumber(uint32_t cg_hint) {
  for (uint32_t d = 0; d < sb_.cg_count; ++d) {
    const uint32_t cg = (cg_hint + d) % sb_.cg_count;
    if (const auto rel = cgs_[cg].AllocInode()) {
      cg_dirty_[cg] = true;
      return cg * sb_.inodes_per_cg + *rel;
    }
  }
  return common::OutOfSpace("out of inodes");
}

// --- Block mapping ---

common::StatusOr<uint32_t> Ufs::BmapRead(const Inode& inode, uint64_t fbi) {
  if (fbi < kDirectPtrs) {
    return inode.direct[fbi];
  }
  fbi -= kDirectPtrs;
  if (fbi < kPtrsPerBlock) {
    if (inode.indirect == kNoAddr) {
      return kNoAddr;
    }
    ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(inode.indirect / kFragsPerBlock, true));
    return common::LoadLe<uint32_t>(buffer->data, fbi * 4);
  }
  fbi -= kPtrsPerBlock;
  if (fbi < static_cast<uint64_t>(kPtrsPerBlock) * kPtrsPerBlock) {
    if (inode.dindirect == kNoAddr) {
      return kNoAddr;
    }
    ASSIGN_OR_RETURN(Buffer * outer, GetBlock(inode.dindirect / kFragsPerBlock, true));
    const uint32_t mid = common::LoadLe<uint32_t>(outer->data, (fbi / kPtrsPerBlock) * 4);
    if (mid == kNoAddr) {
      return kNoAddr;
    }
    ASSIGN_OR_RETURN(Buffer * inner, GetBlock(mid / kFragsPerBlock, true));
    return common::LoadLe<uint32_t>(inner->data, (fbi % kPtrsPerBlock) * 4);
  }
  return common::InvalidArgument("file too large");
}

common::StatusOr<uint32_t> Ufs::BmapAlloc(Inode& inode, uint64_t fbi, uint32_t frags,
                                          fs::WritePolicy policy) {
  ASSIGN_OR_RETURN(uint32_t current, BmapRead(inode, fbi));
  const uint32_t old_frags = FragsForBlock(inode.size, fbi);
  if (current != kNoAddr && old_frags >= frags) {
    return current;  // Update in place.
  }

  uint32_t addr = kNoAddr;
  if (current != kNoAddr) {
    // Tail growth: try to extend the fragment run in place, else promote (copy) it.
    const uint32_t cg = CgOfFrag(current);
    const uint32_t rel = current - sb_.DataStartBlock(cg) * kFragsPerBlock;
    const bool same_block = (rel % kFragsPerBlock) + frags <= kFragsPerBlock;
    if (same_block && cgs_[cg].FragsFreeAt(rel + old_frags, frags - old_frags)) {
      cgs_[cg].TakeFragsAt(rel + old_frags, frags - old_frags);
      cg_dirty_[cg] = true;
      return current;
    }
    ASSIGN_OR_RETURN(addr, AllocFrags(cg, frags, frags == kFragsPerBlock));
    // Copy the surviving fragments to the new location (fragment promotion).
    ASSIGN_OR_RETURN(Buffer * old_buf, GetBlock(current / kFragsPerBlock, true));
    std::vector<std::byte> keep(old_buf->data.begin() +
                                    (current % kFragsPerBlock) * kFragBytes,
                                old_buf->data.begin() +
                                    (current % kFragsPerBlock + old_frags) * kFragBytes);
    ASSIGN_OR_RETURN(Buffer * new_buf, GetBlock(addr / kFragsPerBlock, true));
    std::memcpy(new_buf->data.data() + (addr % kFragsPerBlock) * kFragBytes, keep.data(),
                keep.size());
    for (uint32_t i = 0; i < old_frags; ++i) {
      new_buf->dirty_mask |= 1u << (addr % kFragsPerBlock + i);
    }
    FreeFragsAt(current, old_frags);
    ++stats_.frag_promotions;
  } else {
    // Fresh block: place near the previous one when possible.
    uint32_t hint_cg = 0;
    if (fbi > 0) {
      ASSIGN_OR_RETURN(const uint32_t prev, BmapRead(inode, fbi - 1));
      hint_cg = prev != kNoAddr ? CgOfFrag(prev) : 0;
    }
    ASSIGN_OR_RETURN(addr, AllocFrags(hint_cg, frags, frags == kFragsPerBlock));
  }

  // Record the new pointer.
  const bool sync = policy == fs::WritePolicy::kSync;
  if (fbi < kDirectPtrs) {
    inode.direct[fbi] = addr;
    return addr;
  }
  uint64_t idx = fbi - kDirectPtrs;
  uint32_t table_addr;
  if (idx < kPtrsPerBlock) {
    if (inode.indirect == kNoAddr) {
      ASSIGN_OR_RETURN(inode.indirect, AllocFrags(CgOfFrag(addr), kFragsPerBlock, true));
      ASSIGN_OR_RETURN(Buffer * fresh, GetBlock(inode.indirect / kFragsPerBlock, false));
      std::fill(fresh->data.begin(), fresh->data.end(), std::byte{0});
    }
    table_addr = inode.indirect;
  } else {
    idx -= kPtrsPerBlock;
    if (inode.dindirect == kNoAddr) {
      ASSIGN_OR_RETURN(inode.dindirect, AllocFrags(CgOfFrag(addr), kFragsPerBlock, true));
      ASSIGN_OR_RETURN(Buffer * fresh, GetBlock(inode.dindirect / kFragsPerBlock, false));
      std::fill(fresh->data.begin(), fresh->data.end(), std::byte{0});
    }
    ASSIGN_OR_RETURN(Buffer * outer, GetBlock(inode.dindirect / kFragsPerBlock, true));
    uint32_t mid = common::LoadLe<uint32_t>(outer->data, (idx / kPtrsPerBlock) * 4);
    if (mid == kNoAddr) {
      ASSIGN_OR_RETURN(mid, AllocFrags(CgOfFrag(addr), kFragsPerBlock, true));
      ASSIGN_OR_RETURN(Buffer * fresh, GetBlock(mid / kFragsPerBlock, false));
      std::fill(fresh->data.begin(), fresh->data.end(), std::byte{0});
      common::StoreLe<uint32_t>(outer->data, (idx / kPtrsPerBlock) * 4, mid);
      outer->dirty_mask = 0xF;
      if (sync) {
        RETURN_IF_ERROR(WriteFragsThrough(inode.dindirect / kFragsPerBlock, 0, kFragsPerBlock));
        ++stats_.sync_metadata_writes;
      }
    }
    table_addr = mid;
    idx %= kPtrsPerBlock;
  }
  ASSIGN_OR_RETURN(Buffer * table, GetBlock(table_addr / kFragsPerBlock, true));
  common::StoreLe<uint32_t>(table->data, (idx % kPtrsPerBlock) * 4, addr);
  table->dirty_mask = 0xF;
  if (sync) {
    RETURN_IF_ERROR(WriteFragsThrough(table_addr / kFragsPerBlock, 0, kFragsPerBlock));
    ++stats_.sync_metadata_writes;
  }
  return addr;
}

common::Status Ufs::FreeFileBlocks(Inode& inode) {
  const uint64_t blocks = (inode.size + kBlockBytes - 1) / kBlockBytes;
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t addr, BmapRead(inode, fbi));
    if (addr != kNoAddr) {
      FreeFragsAt(addr, FragsForBlock(inode.size, fbi));
    }
  }
  if (inode.indirect != kNoAddr) {
    FreeFragsAt(inode.indirect, kFragsPerBlock);
  }
  if (inode.dindirect != kNoAddr) {
    ASSIGN_OR_RETURN(Buffer * outer, GetBlock(inode.dindirect / kFragsPerBlock, true));
    for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      const uint32_t mid = common::LoadLe<uint32_t>(outer->data, i * 4);
      if (mid != kNoAddr) {
        FreeFragsAt(mid, kFragsPerBlock);
      }
    }
    FreeFragsAt(inode.dindirect, kFragsPerBlock);
  }
  std::fill(std::begin(inode.direct), std::end(inode.direct), kNoAddr);
  inode.indirect = kNoAddr;
  inode.dindirect = kNoAddr;
  inode.size = 0;
  return common::OkStatus();
}

// --- Paths & directories ---

common::StatusOr<uint32_t> Ufs::LookupPath(const std::string& path) {
  ASSIGN_OR_RETURN(const auto parts, SplitPath(path));
  uint32_t ino = kRootInode;
  for (const std::string& part : parts) {
    ASSIGN_OR_RETURN(const Inode dir, ReadInode(ino));
    if (dir.type != InodeType::kDirectory) {
      return common::InvalidArgument("not a directory on path: " + path);
    }
    ASSIGN_OR_RETURN(ino, DirFind(dir, part));
  }
  return ino;
}

common::StatusOr<uint32_t> Ufs::ResolveParent(const std::string& path, std::string* leaf) {
  ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  if (parts.empty()) {
    return common::InvalidArgument("path refers to the root");
  }
  *leaf = parts.back();
  parts.pop_back();
  uint32_t ino = kRootInode;
  for (const std::string& part : parts) {
    ASSIGN_OR_RETURN(const Inode dir, ReadInode(ino));
    ASSIGN_OR_RETURN(ino, DirFind(dir, part));
  }
  return ino;
}

common::StatusOr<uint32_t> Ufs::DirFind(const Inode& dir, const std::string& name) {
  const uint64_t blocks = dir.size / kBlockBytes;
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t addr, BmapRead(dir, fbi));
    if (addr == kNoAddr) {
      continue;
    }
    ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(addr / kFragsPerBlock, true));
    for (uint32_t e = 0; e < kBlockBytes / kDirEntryBytes; ++e) {
      const DirEntry entry = DirEntry::Decode(
          std::span<const std::byte>(buffer->data).subspan(e * kDirEntryBytes));
      if (entry.ino != kNoInode && entry.name == name) {
        return entry.ino;
      }
    }
  }
  return common::NotFound("no such file: " + name);
}

common::Status Ufs::DirAdd(uint32_t dir_ino, Inode& dir, const std::string& name,
                           uint32_t child) {
  // Find a free slot in the existing blocks.
  const uint64_t blocks = dir.size / kBlockBytes;
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t addr, BmapRead(dir, fbi));
    ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(addr / kFragsPerBlock, true));
    for (uint32_t e = 0; e < kBlockBytes / kDirEntryBytes; ++e) {
      const DirEntry entry = DirEntry::Decode(
          std::span<const std::byte>(buffer->data).subspan(e * kDirEntryBytes));
      if (entry.ino == kNoInode) {
        DirEntry fresh{child, name};
        fresh.EncodeTo(std::span<std::byte>(buffer->data).subspan(e * kDirEntryBytes));
        ++stats_.sync_metadata_writes;
        return WriteFragsThrough(addr / kFragsPerBlock, 0, kFragsPerBlock);
      }
    }
  }
  // Grow the directory by one block.
  ASSIGN_OR_RETURN(const uint32_t addr,
                   BmapAlloc(dir, blocks, kFragsPerBlock, fs::WritePolicy::kSync));
  ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(addr / kFragsPerBlock, false));
  std::fill(buffer->data.begin(), buffer->data.end(), std::byte{0});
  DirEntry fresh{child, name};
  fresh.EncodeTo(buffer->data);
  dir.size += kBlockBytes;
  dir.mtime = static_cast<uint64_t>(host_->clock()->Now());
  ++stats_.sync_metadata_writes;
  RETURN_IF_ERROR(WriteFragsThrough(addr / kFragsPerBlock, 0, kFragsPerBlock));
  return StoreInode(dir_ino, dir, /*sync=*/true);
}

common::Status Ufs::DirRemove(uint32_t dir_ino, Inode& dir, const std::string& name) {
  const uint64_t blocks = dir.size / kBlockBytes;
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t addr, BmapRead(dir, fbi));
    ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(addr / kFragsPerBlock, true));
    for (uint32_t e = 0; e < kBlockBytes / kDirEntryBytes; ++e) {
      const DirEntry entry = DirEntry::Decode(
          std::span<const std::byte>(buffer->data).subspan(e * kDirEntryBytes));
      if (entry.ino != kNoInode && entry.name == name) {
        DirEntry empty;
        empty.EncodeTo(std::span<std::byte>(buffer->data).subspan(e * kDirEntryBytes));
        ++stats_.sync_metadata_writes;
        return WriteFragsThrough(addr / kFragsPerBlock, 0, kFragsPerBlock);
      }
    }
  }
  (void)dir_ino;
  return common::NotFound("no such entry: " + name);
}

common::Status Ufs::CreateNode(const std::string& path, InodeType type) {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs);
  host_->ChargeSyscall();
  std::string leaf;
  ASSIGN_OR_RETURN(const uint32_t parent_ino, ResolveParent(path, &leaf));
  ASSIGN_OR_RETURN(Inode parent, ReadInode(parent_ino));
  if (parent.type != InodeType::kDirectory) {
    return common::InvalidArgument("parent is not a directory");
  }
  if (DirFind(parent, leaf).ok()) {
    return common::AlreadyExists(path);
  }
  ASSIGN_OR_RETURN(const uint32_t ino, AllocInodeNumber(CgOfInode(parent_ino)));
  Inode node;
  node.type = type;
  node.nlink = type == InodeType::kDirectory ? 2 : 1;
  node.mtime = static_cast<uint64_t>(host_->clock()->Now());
  host_->ChargeBlocks(2);
  RETURN_IF_ERROR(StoreInode(ino, node, /*sync=*/true));
  RETURN_IF_ERROR(DirAdd(parent_ino, parent, leaf, ino));
  if (type == InodeType::kDirectory) {
    ++parent.nlink;
    RETURN_IF_ERROR(StoreInode(parent_ino, parent, /*sync=*/true));
  }
  ++stats_.creates;
  return common::OkStatus();
}

common::Status Ufs::Create(const std::string& path) {
  return CreateNode(path, InodeType::kFile);
}

common::Status Ufs::Mkdir(const std::string& path) {
  return CreateNode(path, InodeType::kDirectory);
}

common::Status Ufs::Remove(const std::string& path) {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs);
  host_->ChargeSyscall();
  std::string leaf;
  ASSIGN_OR_RETURN(const uint32_t parent_ino, ResolveParent(path, &leaf));
  ASSIGN_OR_RETURN(Inode parent, ReadInode(parent_ino));
  ASSIGN_OR_RETURN(const uint32_t ino, DirFind(parent, leaf));
  ASSIGN_OR_RETURN(Inode node, ReadInode(ino));
  if (node.type == InodeType::kDirectory) {
    ASSIGN_OR_RETURN(const auto entries, List(path));
    if (!entries.empty()) {
      return common::FailedPrecondition("directory not empty: " + path);
    }
  }
  host_->ChargeBlocks(2);
  RETURN_IF_ERROR(DirRemove(parent_ino, parent, leaf));
  RETURN_IF_ERROR(FreeFileBlocks(node));
  node.type = InodeType::kFree;
  node.nlink = 0;
  RETURN_IF_ERROR(StoreInode(ino, node, /*sync=*/true));
  const uint32_t cg = CgOfInode(ino);
  cgs_[cg].FreeInode(ino % sb_.inodes_per_cg);
  cg_dirty_[cg] = true;
  read_state_.erase(ino);
  ++stats_.removes;
  return common::OkStatus();
}

common::Status Ufs::Write(const std::string& path, uint64_t offset,
                          std::span<const std::byte> data, fs::WritePolicy policy) {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs, offset, data.size());
  host_->ChargeSyscall();
  host_->ChargeCopy(data.size());
  ASSIGN_OR_RETURN(const uint32_t ino, LookupPath(path));
  ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
  if (inode.type != InodeType::kFile) {
    return common::InvalidArgument("not a regular file: " + path);
  }
  if (offset > inode.size) {
    return common::Unimplemented("sparse files (write past EOF) not supported");
  }
  const uint64_t new_size = std::max<uint64_t>(inode.size, offset + data.size());
  const bool sync = policy == fs::WritePolicy::kSync;

  uint64_t written = 0;
  while (written < data.size()) {
    const uint64_t pos = offset + written;
    const uint64_t fbi = pos / kBlockBytes;
    const uint64_t in_block = pos % kBlockBytes;
    const uint64_t chunk = std::min<uint64_t>(kBlockBytes - in_block, data.size() - written);
    host_->ChargeBlocks(1);

    const uint32_t frags = FragsForBlock(new_size, fbi);
    ASSIGN_OR_RETURN(const uint32_t addr, BmapAlloc(inode, fbi, frags, policy));
    const uint32_t dev_block = addr / kFragsPerBlock;
    const uint32_t frag_in_block = addr % kFragsPerBlock;
    // Read the underlying block unless this write covers the whole fragment run of a
    // block-aligned full block.
    const bool full_overwrite =
        in_block == 0 && chunk == kBlockBytes && frag_in_block == 0;
    ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(dev_block, !full_overwrite));
    std::memcpy(buffer->data.data() + frag_in_block * kFragBytes + in_block,
                data.data() + written, chunk);
    const uint32_t first_frag = frag_in_block + static_cast<uint32_t>(in_block / kFragBytes);
    const uint32_t last_frag =
        frag_in_block + static_cast<uint32_t>((in_block + chunk - 1) / kFragBytes);
    if (sync) {
      ++stats_.sync_data_writes;
      RETURN_IF_ERROR(WriteFragsThrough(dev_block, first_frag, last_frag - first_frag + 1));
    } else {
      for (uint32_t f = first_frag; f <= last_frag; ++f) {
        buffer->dirty_mask |= 1u << f;
      }
    }
    written += chunk;
  }

  inode.size = new_size;
  inode.mtime = static_cast<uint64_t>(host_->clock()->Now());
  return StoreInode(ino, inode, sync);
}

common::StatusOr<uint64_t> Ufs::Read(const std::string& path, uint64_t offset,
                                     std::span<std::byte> out) {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs, offset, out.size());
  host_->ChargeSyscall();
  ASSIGN_OR_RETURN(const uint32_t ino, LookupPath(path));
  ASSIGN_OR_RETURN(const Inode inode, ReadInode(ino));
  if (offset >= inode.size) {
    return uint64_t{0};
  }
  const uint64_t len = std::min<uint64_t>(out.size(), inode.size - offset);
  host_->ChargeCopy(len);

  uint64_t done = 0;
  while (done < len) {
    const uint64_t pos = offset + done;
    const uint64_t fbi = pos / kBlockBytes;
    const uint64_t in_block = pos % kBlockBytes;
    const uint64_t chunk = std::min<uint64_t>(kBlockBytes - in_block, len - done);
    host_->ChargeBlocks(1);
    ASSIGN_OR_RETURN(const uint32_t addr, BmapRead(inode, fbi));
    if (addr == kNoAddr) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(addr / kFragsPerBlock, true));
      std::memcpy(out.data() + done,
                  buffer->data.data() + (addr % kFragsPerBlock) * kFragBytes + in_block, chunk);
    }
    done += chunk;
  }

  // Sequential-read detection and prefetch.
  const uint64_t first_fbi = offset / kBlockBytes;
  const uint64_t next_fbi = (offset + len + kBlockBytes - 1) / kBlockBytes;
  auto& [expected, run] = read_state_[ino];
  if (first_fbi == expected && expected != 0) {
    ++run;
  } else if (first_fbi == 0) {
    run = 1;
  } else {
    run = 0;
  }
  expected = next_fbi;
  if (run >= 2) {
    // Prefetch the next config_.prefetch_blocks full blocks in coalesced device reads.
    uint64_t fbi = next_fbi;
    const uint64_t limit =
        std::min<uint64_t>(fbi + config_.prefetch_blocks, inode.size / kBlockBytes);
    while (fbi < limit) {
      ASSIGN_OR_RETURN(const uint32_t addr, BmapRead(inode, fbi));
      if (addr == kNoAddr || addr % kFragsPerBlock != 0 ||
          cache_.contains(addr / kFragsPerBlock)) {
        ++fbi;
        continue;
      }
      // Extend the run while physically contiguous.
      uint32_t run_blocks = 1;
      while (fbi + run_blocks < limit) {
        ASSIGN_OR_RETURN(const uint32_t next, BmapRead(inode, fbi + run_blocks));
        if (next != addr + run_blocks * kFragsPerBlock ||
            cache_.contains(next / kFragsPerBlock)) {
          break;
        }
        ++run_blocks;
      }
      std::vector<std::byte> bulk(static_cast<size_t>(run_blocks) * kBlockBytes);
      RETURN_IF_ERROR(device_->Read(static_cast<uint64_t>(addr) * 2, bulk));
      for (uint32_t b = 0; b < run_blocks; ++b) {
        RETURN_IF_ERROR(EvictIfNeeded());
        Buffer buffer;
        buffer.data.assign(bulk.begin() + static_cast<size_t>(b) * kBlockBytes,
                           bulk.begin() + static_cast<size_t>(b + 1) * kBlockBytes);
        buffer.lru = ++lru_tick_;
        cache_.emplace(addr / kFragsPerBlock + b, std::move(buffer));
        ++stats_.prefetch_reads;
      }
      fbi += run_blocks;
    }
  }
  return len;
}

common::StatusOr<fs::FileInfo> Ufs::Stat(const std::string& path) {
  host_->ChargeSyscall();
  ASSIGN_OR_RETURN(const uint32_t ino, LookupPath(path));
  ASSIGN_OR_RETURN(const Inode inode, ReadInode(ino));
  return fs::FileInfo{inode.size, inode.type == InodeType::kDirectory};
}

common::StatusOr<std::vector<std::string>> Ufs::List(const std::string& dir_path) {
  host_->ChargeSyscall();
  ASSIGN_OR_RETURN(const uint32_t ino, LookupPath(dir_path));
  ASSIGN_OR_RETURN(const Inode dir, ReadInode(ino));
  if (dir.type != InodeType::kDirectory) {
    return common::InvalidArgument("not a directory: " + dir_path);
  }
  std::vector<std::string> names;
  const uint64_t blocks = dir.size / kBlockBytes;
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t addr, BmapRead(dir, fbi));
    ASSIGN_OR_RETURN(Buffer * buffer, GetBlock(addr / kFragsPerBlock, true));
    for (uint32_t e = 0; e < kBlockBytes / kDirEntryBytes; ++e) {
      const DirEntry entry = DirEntry::Decode(
          std::span<const std::byte>(buffer->data).subspan(e * kDirEntryBytes));
      if (entry.ino != kNoInode) {
        names.push_back(entry.name);
      }
    }
  }
  return names;
}

common::Status Ufs::Sync() {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs);
  host_->ChargeSyscall();
  // Write clustering (UFS-style): coalesce fully dirty, physically adjacent blocks into one
  // device request (up to 64 KB) so sequential write-back does not miss a rotation per block.
  std::vector<uint32_t> dirty;
  for (const auto& [block, buffer] : cache_) {
    if (buffer.dirty_mask != 0) {
      dirty.push_back(block);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  constexpr size_t kClusterBlocks = 16;
  size_t i = 0;
  while (i < dirty.size()) {
    size_t run = 1;
    while (i + run < dirty.size() && run < kClusterBlocks &&
           dirty[i + run] == dirty[i] + run && cache_[dirty[i + run]].dirty_mask == 0xF &&
           cache_[dirty[i + run - 1]].dirty_mask == 0xF) {
      ++run;
    }
    if (run > 1 && cache_[dirty[i]].dirty_mask == 0xF) {
      std::vector<std::byte> cluster(run * kBlockBytes);
      for (size_t b = 0; b < run; ++b) {
        Buffer& buffer = cache_[dirty[i + b]];
        std::copy(buffer.data.begin(), buffer.data.end(),
                  cluster.begin() + static_cast<ptrdiff_t>(b * kBlockBytes));
        buffer.dirty_mask = 0;
      }
      RETURN_IF_ERROR(device_->Write(static_cast<uint64_t>(dirty[i]) * 8, cluster));
      stats_.delayed_data_writes += run;
      i += run;
    } else {
      RETURN_IF_ERROR(FlushBuffer(dirty[i], cache_[dirty[i]]));
      ++i;
    }
  }
  for (uint32_t cg = 0; cg < sb_.cg_count; ++cg) {
    if (cg_dirty_[cg]) {
      RETURN_IF_ERROR(
          device_->Write(static_cast<uint64_t>(sb_.CgStartBlock(cg)) * 8, cgs_[cg].Serialize()));
      cg_dirty_[cg] = false;
    }
  }
  RETURN_IF_ERROR(device_->Write(0, sb_.Serialize()));
  // Sync promises durability, so drain the device's volatile write cache too.
  return device_->Flush();
}

common::Status Ufs::DropCaches() {
  RETURN_IF_ERROR(Sync());
  cache_.clear();
  read_state_.clear();
  return common::OkStatus();
}

}  // namespace vlog::ufs
