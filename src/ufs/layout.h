// On-disk layout of the UFS work-alike (FFS-style, §4.3).
//
// The disk is addressed in 1 KB *fragments*; a file system block is 4 KB (4 fragments),
// matching the paper's UFS configuration. Block 0 holds the superblock; cylinder groups follow,
// each with a header block (bitmaps + counters), a run of inode blocks, and data blocks.
// Only a file's tail may occupy a sub-block fragment run, as in FFS.
#ifndef SRC_UFS_LAYOUT_H_
#define SRC_UFS_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace vlog::ufs {

inline constexpr uint32_t kFragBytes = 1024;
inline constexpr uint32_t kBlockBytes = 4096;
inline constexpr uint32_t kFragsPerBlock = kBlockBytes / kFragBytes;
inline constexpr uint32_t kInodeBytes = 128;
inline constexpr uint32_t kInodesPerBlock = kBlockBytes / kInodeBytes;
inline constexpr uint32_t kDirectPtrs = 12;
inline constexpr uint32_t kPtrsPerBlock = kBlockBytes / 4;
inline constexpr uint32_t kNoAddr = 0;  // Fragment 0 is the superblock, so 0 is never valid.
inline constexpr uint32_t kNoInode = 0;
inline constexpr uint32_t kRootInode = 1;
inline constexpr uint32_t kMaxNameLen = 59;
inline constexpr uint32_t kDirEntryBytes = 64;
inline constexpr uint64_t kUfsMagic = 0x5546535f464653ULL;  // "UFS_FFS"

enum class InodeType : uint16_t { kFree = 0, kFile = 1, kDirectory = 2 };

struct Superblock {
  uint32_t total_frags = 0;
  uint32_t blocks_per_cg = 0;
  uint32_t inodes_per_cg = 0;
  uint32_t cg_count = 0;

  uint32_t InodeBlocksPerCg() const { return inodes_per_cg / kInodesPerBlock; }
  // First device block of cylinder group `cg` (block 0 is the superblock).
  uint32_t CgStartBlock(uint32_t cg) const { return 1 + cg * blocks_per_cg; }
  uint32_t DataStartBlock(uint32_t cg) const { return CgStartBlock(cg) + 1 + InodeBlocksPerCg(); }
  uint32_t DataBlocksPerCg() const { return blocks_per_cg - 1 - InodeBlocksPerCg(); }
  uint32_t TotalInodes() const { return cg_count * inodes_per_cg; }
  // Device block holding inode `ino` and its byte offset within that block.
  uint32_t InodeBlock(uint32_t ino) const {
    const uint32_t cg = ino / inodes_per_cg;
    const uint32_t idx = ino % inodes_per_cg;
    return CgStartBlock(cg) + 1 + idx / kInodesPerBlock;
  }
  uint32_t InodeOffset(uint32_t ino) const {
    return (ino % kInodesPerBlock) * kInodeBytes;
  }

  std::vector<std::byte> Serialize() const;
  static common::StatusOr<Superblock> Parse(std::span<const std::byte> raw);
};

struct Inode {
  InodeType type = InodeType::kFree;
  uint16_t nlink = 0;
  uint64_t size = 0;
  uint64_t mtime = 0;  // Simulated-time stamp; updated so O_SYNC has metadata to flush.
  uint32_t direct[kDirectPtrs] = {};   // Fragment addresses of 4 KB blocks (tail may be a run).
  uint32_t indirect = kNoAddr;         // Fragment address of a block of 1024 pointers.
  uint32_t dindirect = kNoAddr;

  bool IsFree() const { return type == InodeType::kFree; }
  void EncodeTo(std::span<std::byte> out) const;  // Exactly kInodeBytes.
  static Inode Decode(std::span<const std::byte> in);
};

struct DirEntry {
  uint32_t ino = kNoInode;
  std::string name;

  void EncodeTo(std::span<std::byte> out) const;  // Exactly kDirEntryBytes.
  static DirEntry Decode(std::span<const std::byte> in);
};

// A cylinder group's header: fragment and inode bitmaps plus counters, serialized into the
// group's first block.
class CylinderGroup {
 public:
  CylinderGroup() = default;
  CylinderGroup(uint32_t data_blocks, uint32_t inodes);

  // Fragment-level allocation within the group's data area. Offsets are fragment indices
  // relative to the group's data start.
  // Finds `count` consecutive free fragments that do not cross a block boundary; when
  // `block_aligned`, the run must start a block. Returns the relative fragment offset.
  std::optional<uint32_t> AllocFrags(uint32_t count, bool block_aligned, uint32_t hint_frag);
  void FreeFrags(uint32_t rel_frag, uint32_t count);
  bool FragsFreeAt(uint32_t rel_frag, uint32_t count) const;
  void TakeFragsAt(uint32_t rel_frag, uint32_t count);

  std::optional<uint32_t> AllocInode();
  void FreeInode(uint32_t rel_ino);
  bool InodeUsed(uint32_t rel_ino) const { return inode_used_[rel_ino]; }

  uint32_t free_frags() const { return free_frags_; }
  uint32_t free_inodes() const { return free_inodes_; }

  std::vector<std::byte> Serialize() const;  // Exactly kBlockBytes.
  static common::StatusOr<CylinderGroup> Parse(std::span<const std::byte> raw,
                                               uint32_t data_blocks, uint32_t inodes);

 private:
  std::vector<bool> frag_used_;
  std::vector<bool> inode_used_;
  uint32_t free_frags_ = 0;
  uint32_t free_inodes_ = 0;
  uint32_t rotor_ = 0;  // Next-fit start position for fragment searches.
};

}  // namespace vlog::ufs

#endif  // SRC_UFS_LAYOUT_H_
