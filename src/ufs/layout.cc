#include "src/ufs/layout.h"

#include <algorithm>
#include <cstring>

#include "src/common/bytes.h"
#include "src/common/crc32.h"

namespace vlog::ufs {

std::vector<std::byte> Superblock::Serialize() const {
  std::vector<std::byte> raw(kBlockBytes);
  std::span<std::byte> out(raw);
  common::StoreLe<uint64_t>(out, 0, kUfsMagic);
  common::StoreLe<uint32_t>(out, 8, total_frags);
  common::StoreLe<uint32_t>(out, 12, blocks_per_cg);
  common::StoreLe<uint32_t>(out, 16, inodes_per_cg);
  common::StoreLe<uint32_t>(out, 20, cg_count);
  common::StoreLe<uint32_t>(out, kBlockBytes - 4,
                            common::Crc32c(std::span<const std::byte>(raw).first(kBlockBytes - 4)));
  return raw;
}

common::StatusOr<Superblock> Superblock::Parse(std::span<const std::byte> raw) {
  if (raw.size() < kBlockBytes || common::LoadLe<uint64_t>(raw, 0) != kUfsMagic) {
    return common::Corruption("ufs superblock: bad magic");
  }
  if (common::LoadLe<uint32_t>(raw, kBlockBytes - 4) !=
      common::Crc32c(raw.first(kBlockBytes - 4))) {
    return common::Corruption("ufs superblock: bad CRC");
  }
  Superblock sb;
  sb.total_frags = common::LoadLe<uint32_t>(raw, 8);
  sb.blocks_per_cg = common::LoadLe<uint32_t>(raw, 12);
  sb.inodes_per_cg = common::LoadLe<uint32_t>(raw, 16);
  sb.cg_count = common::LoadLe<uint32_t>(raw, 20);
  return sb;
}

void Inode::EncodeTo(std::span<std::byte> out) const {
  std::fill(out.begin(), out.begin() + kInodeBytes, std::byte{0});
  common::StoreLe<uint16_t>(out, 0, static_cast<uint16_t>(type));
  common::StoreLe<uint16_t>(out, 2, nlink);
  common::StoreLe<uint64_t>(out, 4, size);
  common::StoreLe<uint64_t>(out, 12, mtime);
  for (uint32_t i = 0; i < kDirectPtrs; ++i) {
    common::StoreLe<uint32_t>(out, 20 + i * 4, direct[i]);
  }
  common::StoreLe<uint32_t>(out, 20 + kDirectPtrs * 4, indirect);
  common::StoreLe<uint32_t>(out, 24 + kDirectPtrs * 4, dindirect);
}

Inode Inode::Decode(std::span<const std::byte> in) {
  Inode node;
  node.type = static_cast<InodeType>(common::LoadLe<uint16_t>(in, 0));
  node.nlink = common::LoadLe<uint16_t>(in, 2);
  node.size = common::LoadLe<uint64_t>(in, 4);
  node.mtime = common::LoadLe<uint64_t>(in, 12);
  for (uint32_t i = 0; i < kDirectPtrs; ++i) {
    node.direct[i] = common::LoadLe<uint32_t>(in, 20 + i * 4);
  }
  node.indirect = common::LoadLe<uint32_t>(in, 20 + kDirectPtrs * 4);
  node.dindirect = common::LoadLe<uint32_t>(in, 24 + kDirectPtrs * 4);
  return node;
}

void DirEntry::EncodeTo(std::span<std::byte> out) const {
  std::fill(out.begin(), out.begin() + kDirEntryBytes, std::byte{0});
  common::StoreLe<uint32_t>(out, 0, ino);
  const size_t n = std::min<size_t>(name.size(), kMaxNameLen);
  std::memcpy(out.data() + 4, name.data(), n);
}

DirEntry DirEntry::Decode(std::span<const std::byte> in) {
  DirEntry e;
  e.ino = common::LoadLe<uint32_t>(in, 0);
  const char* p = reinterpret_cast<const char*>(in.data()) + 4;
  size_t len = 0;
  while (len < kMaxNameLen && p[len] != '\0') {
    ++len;
  }
  e.name.assign(p, len);
  return e;
}

CylinderGroup::CylinderGroup(uint32_t data_blocks, uint32_t inodes)
    : frag_used_(static_cast<size_t>(data_blocks) * kFragsPerBlock, false),
      inode_used_(inodes, false),
      free_frags_(data_blocks * kFragsPerBlock),
      free_inodes_(inodes) {}

bool CylinderGroup::FragsFreeAt(uint32_t rel_frag, uint32_t count) const {
  if (rel_frag + count > frag_used_.size()) {
    return false;
  }
  for (uint32_t i = 0; i < count; ++i) {
    if (frag_used_[rel_frag + i]) {
      return false;
    }
  }
  return true;
}

void CylinderGroup::TakeFragsAt(uint32_t rel_frag, uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) {
    frag_used_[rel_frag + i] = true;
  }
  free_frags_ -= count;
}

std::optional<uint32_t> CylinderGroup::AllocFrags(uint32_t count, bool block_aligned,
                                                  uint32_t hint_frag) {
  if (free_frags_ < count || frag_used_.empty()) {
    return std::nullopt;
  }
  const uint32_t total = static_cast<uint32_t>(frag_used_.size());
  const uint32_t blocks = total / kFragsPerBlock;
  const uint32_t start_block =
      std::min(hint_frag != 0 ? hint_frag / kFragsPerBlock : rotor_ / kFragsPerBlock,
               blocks - 1);
  for (uint32_t i = 0; i < blocks; ++i) {
    const uint32_t block = (start_block + i) % blocks;
    const uint32_t base = block * kFragsPerBlock;
    if (block_aligned || count == kFragsPerBlock) {
      if (FragsFreeAt(base, kFragsPerBlock)) {
        TakeFragsAt(base, count);
        rotor_ = base + count;
        return base;
      }
    } else {
      // A sub-block run anywhere within the block.
      for (uint32_t off = 0; off + count <= kFragsPerBlock; ++off) {
        if (FragsFreeAt(base + off, count)) {
          TakeFragsAt(base + off, count);
          rotor_ = base + off + count;
          return base + off;
        }
      }
    }
  }
  return std::nullopt;
}

void CylinderGroup::FreeFrags(uint32_t rel_frag, uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) {
    frag_used_[rel_frag + i] = false;
  }
  free_frags_ += count;
}

std::optional<uint32_t> CylinderGroup::AllocInode() {
  if (free_inodes_ == 0) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < inode_used_.size(); ++i) {
    if (!inode_used_[i]) {
      inode_used_[i] = true;
      --free_inodes_;
      return i;
    }
  }
  return std::nullopt;
}

void CylinderGroup::FreeInode(uint32_t rel_ino) {
  inode_used_[rel_ino] = false;
  ++free_inodes_;
}

std::vector<std::byte> CylinderGroup::Serialize() const {
  std::vector<std::byte> raw(kBlockBytes);
  std::span<std::byte> out(raw);
  common::StoreLe<uint32_t>(out, 0, static_cast<uint32_t>(frag_used_.size()));
  common::StoreLe<uint32_t>(out, 4, static_cast<uint32_t>(inode_used_.size()));
  common::StoreLe<uint32_t>(out, 8, free_frags_);
  common::StoreLe<uint32_t>(out, 12, free_inodes_);
  size_t pos = 16;
  for (size_t i = 0; i < frag_used_.size(); ++i) {
    if (frag_used_[i]) {
      raw[pos + i / 8] |= static_cast<std::byte>(1u << (i % 8));
    }
  }
  pos += (frag_used_.size() + 7) / 8;
  for (size_t i = 0; i < inode_used_.size(); ++i) {
    if (inode_used_[i]) {
      raw[pos + i / 8] |= static_cast<std::byte>(1u << (i % 8));
    }
  }
  return raw;
}

common::StatusOr<CylinderGroup> CylinderGroup::Parse(std::span<const std::byte> raw,
                                                     uint32_t data_blocks, uint32_t inodes) {
  if (raw.size() < kBlockBytes) {
    return common::Corruption("cg header: short");
  }
  const uint32_t frags = common::LoadLe<uint32_t>(raw, 0);
  const uint32_t inode_count = common::LoadLe<uint32_t>(raw, 4);
  if (frags != data_blocks * kFragsPerBlock || inode_count != inodes) {
    return common::Corruption("cg header: geometry mismatch");
  }
  CylinderGroup cg(data_blocks, inodes);
  size_t pos = 16;
  for (uint32_t i = 0; i < frags; ++i) {
    if ((static_cast<uint8_t>(raw[pos + i / 8]) >> (i % 8)) & 1) {
      cg.frag_used_[i] = true;
      --cg.free_frags_;
    }
  }
  pos += (frags + 7) / 8;
  for (uint32_t i = 0; i < inode_count; ++i) {
    if ((static_cast<uint8_t>(raw[pos + i / 8]) >> (i % 8)) & 1) {
      cg.inode_used_[i] = true;
      --cg.free_inodes_;
    }
  }
  return cg;
}

}  // namespace vlog::ufs
