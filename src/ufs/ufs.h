// An FFS-style update-in-place file system (the paper's "UFS", §4.3).
//
// Semantics mirrored from Solaris UFS as the paper uses it:
//  - metadata (inodes, directory blocks) is written synchronously on create/remove;
//  - data writes are delayed by default and written through on WritePolicy::kSync, which also
//    synchronously updates the inode — the two-I/O pattern that update-in-place pays for on
//    every random 4 KB update (Figures 8-9);
//  - blocks are placed update-in-place: an overwrite goes to the same fragments;
//  - allocation prefers the cylinder group of the inode; 10% of fragments are reserved
//    (the "minfree" the paper's df-based utilisation axis includes);
//  - sequential reads trigger prefetch after two adjacent block reads.
//
// It runs unmodified on either a regular SimDisk or a Vld — both are BlockDevices — which is
// the point of the VLD design.
#ifndef SRC_UFS_UFS_H_
#define SRC_UFS_UFS_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fs/file_system.h"
#include "src/simdisk/block_device.h"
#include "src/simdisk/host_model.h"
#include "src/ufs/layout.h"

namespace vlog::ufs {

struct UfsConfig {
  uint32_t blocks_per_cg = 256;   // Set to the disk's blocks-per-cylinder for FFS locality.
  uint32_t cache_blocks = 8192;   // Host buffer cache capacity (4 KB blocks).
  uint32_t prefetch_blocks = 8;   // Read-ahead after a sequential pattern is detected.
  uint32_t min_free_pct = 10;     // FFS minfree: allocation fails below this reserve.
};

struct UfsStats {
  uint64_t creates = 0;
  uint64_t removes = 0;
  uint64_t sync_metadata_writes = 0;
  uint64_t sync_data_writes = 0;
  uint64_t delayed_data_writes = 0;  // Dirty buffers flushed later.
  uint64_t prefetch_reads = 0;
  uint64_t frag_promotions = 0;  // Tail fragment runs relocated on growth.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

class Ufs : public fs::FileSystem {
 public:
  Ufs(simdisk::BlockDevice* device, simdisk::HostModel* host, UfsConfig config = {});

  // Writes a fresh file system. Mount() afterwards (Format leaves it mounted).
  common::Status Format();
  // Loads the superblock and cylinder-group headers from an existing file system.
  common::Status Mount();

  common::Status Create(const std::string& path) override;
  common::Status Mkdir(const std::string& path) override;
  common::Status Remove(const std::string& path) override;
  common::Status Write(const std::string& path, uint64_t offset, std::span<const std::byte> data,
                       fs::WritePolicy policy) override;
  common::StatusOr<uint64_t> Read(const std::string& path, uint64_t offset,
                                  std::span<std::byte> out) override;
  common::StatusOr<fs::FileInfo> Stat(const std::string& path) override;
  common::StatusOr<std::vector<std::string>> List(const std::string& dir_path) override;
  common::Status Sync() override;
  common::Status DropCaches() override;

  // df-style utilisation: fraction of all fragments in use (the reserve is *not* subtracted,
  // matching the paper's Figure 8 axis).
  double Utilization() const;
  uint64_t FreeFragCount() const;
  const UfsStats& stats() const { return stats_; }
  const Superblock& superblock() const { return sb_; }

 private:
  struct Buffer {
    std::vector<std::byte> data;
    uint8_t dirty_mask = 0;  // Bit per fragment.
    uint64_t lru = 0;
  };

  // --- Buffer cache over device blocks (4 KB) ---
  common::StatusOr<Buffer*> GetBlock(uint32_t dev_block, bool read_from_disk);
  common::Status FlushBuffer(uint32_t dev_block, Buffer& buffer);
  common::Status WriteFragsThrough(uint32_t dev_block, uint32_t frag_off, uint32_t frag_count);
  common::Status EvictIfNeeded();

  // --- Inodes ---
  common::StatusOr<Inode> ReadInode(uint32_t ino);
  common::Status StoreInode(uint32_t ino, const Inode& inode, bool sync);

  // --- Paths & directories ---
  common::StatusOr<uint32_t> LookupPath(const std::string& path);
  // Splits "/a/b/c" into the inode of "/a/b" and leaf name "c".
  common::StatusOr<uint32_t> ResolveParent(const std::string& path, std::string* leaf);
  common::StatusOr<uint32_t> DirFind(const Inode& dir, const std::string& name);
  common::Status DirAdd(uint32_t dir_ino, Inode& dir, const std::string& name, uint32_t child);
  common::Status DirRemove(uint32_t dir_ino, Inode& dir, const std::string& name);
  common::Status CreateNode(const std::string& path, InodeType type);

  // --- Block mapping (fragment addresses) ---
  // Fragment address of file block `fbi`, or kNoAddr when unallocated. Does not allocate.
  common::StatusOr<uint32_t> BmapRead(const Inode& inode, uint64_t fbi);
  // Ensures file block `fbi` is backed by `frags` fragments, reallocating a tail run when it
  // must grow (fragment promotion). Returns the fragment address.
  common::StatusOr<uint32_t> BmapAlloc(Inode& inode, uint64_t fbi, uint32_t frags,
                                       fs::WritePolicy policy);
  common::Status FreeFileBlocks(Inode& inode);

  // --- Allocation across cylinder groups ---
  common::StatusOr<uint32_t> AllocFrags(uint32_t cg_hint, uint32_t count, bool block_aligned);
  void FreeFragsAt(uint32_t frag_addr, uint32_t count);
  common::StatusOr<uint32_t> AllocInodeNumber(uint32_t cg_hint);
  // How many fragments back file block `fbi` given file size `size` (tail rule).
  static uint32_t FragsForBlock(uint64_t size, uint64_t fbi);

  uint32_t CgOfFrag(uint32_t frag_addr) const;
  uint32_t CgOfInode(uint32_t ino) const { return ino / sb_.inodes_per_cg; }

  simdisk::BlockDevice* device_;
  simdisk::HostModel* host_;
  UfsConfig config_;
  Superblock sb_;
  std::vector<CylinderGroup> cgs_;
  std::vector<bool> cg_dirty_;
  bool mounted_ = false;
  std::unordered_map<uint32_t, Buffer> cache_;
  uint64_t lru_tick_ = 0;
  // Sequential-read detector: ino -> (next expected file block, run length).
  std::unordered_map<uint32_t, std::pair<uint64_t, uint32_t>> read_state_;
  UfsStats stats_;
};

}  // namespace vlog::ufs

#endif  // SRC_UFS_UFS_H_
