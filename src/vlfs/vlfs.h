// VLFS — the paper's §3.3 design, which the authors describe but did not implement.
//
// A log-structured file system integrated with the virtual log inside the programmable disk:
//  - data blocks, indirect blocks, and inode blocks are eager-written near the head;
//  - inodes hold physical block addresses (like LFS), so the only state that needs the virtual
//    log is the *inode map* — one entry per inode block — making the log tiny (one piece for
//    the default 96 inode blocks: "compact enough to be stored in memory");
//  - a write group commits atomically: data blocks first, then the dirty inode blocks to fresh
//    locations, then one virtual-log transaction updating the affected inode-map pieces; the
//    obsoleted physical blocks are recycled only after the commit point;
//  - checkpoints write the whole inode map contiguously; recovery loads the checkpoint, then
//    traverses the virtual log backwards from the parked tail (or scans after a crash) and
//    rebuilds the free-space map by walking the live inodes;
//  - the free-space compactor doubles as the cleaner, at track granularity.
//
// Synchronous small writes are cheap (no segment to fill) while the LFS-style no-seek write
// behaviour is retained — the combination §3.4 argues for.
#ifndef SRC_VLFS_VLFS_H_
#define SRC_VLFS_VLFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/compactor.h"
#include "src/core/eager_allocator.h"
#include "src/core/free_space.h"
#include "src/core/virtual_log.h"
#include "src/fs/file_system.h"
#include "src/simdisk/host_model.h"
#include "src/simdisk/sim_disk.h"
#include "src/ufs/layout.h"

namespace vlog::vlfs {

struct VlfsConfig {
  uint32_t block_sectors = 8;    // 4 KB blocks.
  uint32_t inode_blocks = 96;    // 32 inodes per block -> 3072 inodes.
  uint32_t data_cache_blocks = 512;  // Read cache for data blocks (by physical address).
  double track_switch_threshold = 0.25;
  uint32_t target_empty_tracks = 8;
  uint64_t seed = 1;
};

struct VlfsStats {
  uint64_t creates = 0;
  uint64_t removes = 0;
  uint64_t data_blocks_written = 0;
  uint64_t inode_blocks_written = 0;
  uint64_t map_transactions = 0;
  uint64_t group_commits = 0;  // Sync() calls that flushed more than one inode block.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

struct VlfsRecoveryInfo {
  bool used_scan = false;
  bool from_checkpoint = false;
  uint64_t log_sectors_read = 0;
  uint64_t inode_blocks_scanned = 0;
  uint64_t live_blocks = 0;
  // Map sectors dropped as part of a trailing incomplete (torn) commit; see VldRecoveryInfo.
  uint64_t discarded_txn_sectors = 0;
};

class Vlfs : public fs::FileSystem, public core::CompactionBackend {
 public:
  Vlfs(simdisk::SimDisk* disk, simdisk::HostModel* host, VlfsConfig config = {});

  common::Status Format();
  common::StatusOr<VlfsRecoveryInfo> Recover();
  common::Status Park();
  common::Status Checkpoint();

  common::Status Create(const std::string& path) override;
  common::Status Mkdir(const std::string& path) override;
  common::Status Remove(const std::string& path) override;
  common::Status Write(const std::string& path, uint64_t offset, std::span<const std::byte> data,
                       fs::WritePolicy policy) override;
  common::StatusOr<uint64_t> Read(const std::string& path, uint64_t offset,
                                  std::span<std::byte> out) override;
  common::StatusOr<fs::FileInfo> Stat(const std::string& path) override;
  common::StatusOr<std::vector<std::string>> List(const std::string& dir_path) override;
  common::Status Sync() override;
  common::Status DropCaches() override;

  // Idle-time work: checkpoint when pinned sectors demand it, then compact free space.
  void RunIdle(common::Duration budget);

  // CompactionBackend: relocates data, indirect, or inode blocks.
  common::Status RelocateDataBlock(uint32_t phys_block) override;
  common::Status RewritePiece(uint32_t piece) override;

  double Utilization() const { return space_.Utilization(); }
  const VlfsStats& stats() const { return stats_; }
  const core::VirtualLog& vlog() const { return vlog_; }
  const core::Compactor& compactor() const { return *compactor_; }
  // Read-only introspection for invariant checkers (crashsim): the recovered allocator state
  // and the inode map (inode-block index -> physical block, kUnmappedBlock when absent).
  const core::FreeSpaceMap& space() const { return space_; }
  const std::vector<uint32_t>& inode_map() const { return inode_map_; }
  uint32_t block_sectors() const { return config_.block_sectors; }

 private:
  struct Buffer {
    std::vector<std::byte> data;
    bool dirty = false;
    uint64_t lru = 0;
  };
  // Who owns a physical block, so the compactor can relocate it.
  // Data/indirect blocks: kOwnerData | ino<<32 | fbi (fbi = kIndirectFbi / kDindirectFbi /
  // kDindirectLeafFbi|index for pointer blocks). Inode blocks: kOwnerInodeBlock | index.
  static constexpr uint64_t kOwnerNone = ~0ULL;
  static constexpr uint64_t kOwnerData = 1ULL << 63;
  static constexpr uint64_t kOwnerInodeBlock = 1ULL << 62;

  uint32_t InodeCount() const { return config_.inode_blocks * ufs::kInodesPerBlock; }
  uint32_t PieceOfInodeBlock(uint32_t iblock) const { return iblock / core::kEntriesPerSector; }

  common::StatusOr<Buffer*> GetInodeBlock(uint32_t iblock);
  common::StatusOr<Buffer*> GetDataBlock(uint32_t phys, bool read_from_disk);
  void ForgetDataBlock(uint32_t phys) { data_cache_.erase(phys); }
  void EvictDataCacheIfNeeded();

  // Allocates a block and writes `data` to it eagerly. Returns the physical block.
  common::StatusOr<uint32_t> EagerWriteBlock(std::span<const std::byte> data, uint64_t owner);
  // Frees `phys` after the next map commit (nothing references it once the commit lands).
  void StageFree(uint32_t phys);

  common::StatusOr<ufs::Inode> ReadInode(uint32_t ino);
  common::Status StoreInode(uint32_t ino, const ufs::Inode& inode, bool sync);

  common::StatusOr<uint32_t> LookupPath(const std::string& path);
  common::StatusOr<uint32_t> ResolveParent(const std::string& path, std::string* leaf);
  common::StatusOr<uint32_t> DirFind(const ufs::Inode& dir, const std::string& name);
  common::Status DirAdd(uint32_t dir_ino, ufs::Inode& dir, const std::string& name,
                        uint32_t child, bool sync);
  common::Status DirRemove(uint32_t dir_ino, ufs::Inode& dir, const std::string& name,
                           bool sync);
  common::Status CreateNode(const std::string& path, ufs::InodeType type);

  common::StatusOr<uint32_t> BmapRead(const ufs::Inode& inode, uint64_t fbi);
  common::Status BmapSet(uint32_t ino, ufs::Inode& inode, uint64_t fbi, uint32_t phys,
                         bool sync);
  common::Status FreeFileBlocks(ufs::Inode& inode);
  common::StatusOr<uint32_t> AllocInodeNumber();

  // Flushes every dirty inode block to a fresh eager location, commits the inode-map pieces in
  // one transaction, then releases the staged frees. This is the commit point of all writes
  // since the previous flush.
  common::Status CommitGroup();

  std::vector<uint32_t> MapPieceEntries(uint32_t piece) const;

  simdisk::SimDisk* disk_;
  simdisk::HostModel* host_;
  VlfsConfig config_;
  core::FreeSpaceMap space_;
  core::EagerAllocator allocator_;
  core::VirtualLog vlog_;
  std::unique_ptr<core::Compactor> compactor_;
  std::vector<uint32_t> inode_map_;  // inode-block index -> physical block (kUnmappedBlock).
  std::vector<uint64_t> owner_;      // physical block -> owner tag.
  std::vector<bool> inode_used_;
  std::unordered_map<uint32_t, Buffer> inode_cache_;  // Keyed by inode-block index.
  std::unordered_map<uint32_t, Buffer> data_cache_;   // Keyed by physical block.
  std::vector<uint32_t> staged_frees_;
  uint64_t lru_tick_ = 0;
  VlfsStats stats_;
};

}  // namespace vlog::vlfs

#endif  // SRC_VLFS_VLFS_H_
