#include "src/vlfs/vlfs.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "src/common/bytes.h"

namespace vlog::vlfs {

using ufs::DirEntry;
using ufs::Inode;
using ufs::InodeType;
using ufs::kBlockBytes;
using ufs::kDirectPtrs;
using ufs::kDirEntryBytes;
using ufs::kInodesPerBlock;
using ufs::kMaxNameLen;
using ufs::kNoAddr;
using ufs::kNoInode;
using ufs::kPtrsPerBlock;
using ufs::kRootInode;

namespace {

constexpr uint32_t kIndirectFbi = 0xFFFFFFFF;  // Owner tag for a file's indirect block.

common::StatusOr<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return common::InvalidArgument("path must be absolute: " + path);
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    const size_t j = path.find('/', i);
    const size_t end = j == std::string::npos ? path.size() : j;
    if (end > i) {
      const std::string part = path.substr(i, end - i);
      if (part.size() > kMaxNameLen) {
        return common::InvalidArgument("name too long: " + part);
      }
      parts.push_back(part);
    }
    i = end + 1;
  }
  return parts;
}

uint32_t PiecesFor(uint32_t inode_blocks) {
  return (inode_blocks + core::kEntriesPerSector - 1) / core::kEntriesPerSector;
}

}  // namespace

Vlfs::Vlfs(simdisk::SimDisk* disk, simdisk::HostModel* host, VlfsConfig config)
    : disk_(disk),
      host_(host),
      config_(config),
      space_(disk->geometry(), config.block_sectors),
      allocator_(disk, &space_,
                 core::AllocatorConfig{.fill_to_threshold = true,
                                       .track_switch_threshold = config.track_switch_threshold}),
      vlog_(disk, &allocator_,
            core::VirtualLogConfig{.pieces = PiecesFor(config.inode_blocks),
                                   .block_sectors = config.block_sectors,
                                   .park_lba = 0,
                                   .checkpoint_lba = 1}) {
  inode_map_.assign(config_.inode_blocks, core::kUnmappedBlock);
  owner_.assign(space_.total_blocks(), kOwnerNone);
  inode_used_.assign(InodeCount(), false);
  const uint32_t system_sectors =
      core::VirtualLog::ReservedSectors(PiecesFor(config_.inode_blocks));
  const uint32_t system_blocks =
      (system_sectors + config_.block_sectors - 1) / config_.block_sectors;
  for (uint32_t b = 0; b < system_blocks; ++b) {
    space_.MarkSystem(b);
  }
  vlog_.SetEntriesProvider([this](uint32_t piece) { return MapPieceEntries(piece); });
  compactor_ = std::make_unique<core::Compactor>(
      this, disk_, &allocator_, &vlog_,
      core::CompactorConfig{.target_empty_tracks = config_.target_empty_tracks}, config_.seed);
  disk_->set_read_ahead_policy(simdisk::ReadAheadPolicy::kAggressiveTrack);
}

std::vector<uint32_t> Vlfs::MapPieceEntries(uint32_t piece) const {
  const uint32_t begin = piece * core::kEntriesPerSector;
  const uint32_t end =
      std::min<uint32_t>(begin + core::kEntriesPerSector, config_.inode_blocks);
  return std::vector<uint32_t>(inode_map_.begin() + begin, inode_map_.begin() + end);
}

common::Status Vlfs::Format() {
  const uint64_t system = space_.system_blocks();
  space_ = core::FreeSpaceMap(disk_->geometry(), config_.block_sectors);
  for (uint32_t b = 0; b < system; ++b) {
    space_.MarkSystem(b);
  }
  allocator_ = core::EagerAllocator(
      disk_, &space_,
      core::AllocatorConfig{.fill_to_threshold = true,
                            .track_switch_threshold = config_.track_switch_threshold});
  inode_map_.assign(config_.inode_blocks, core::kUnmappedBlock);
  owner_.assign(space_.total_blocks(), kOwnerNone);
  inode_used_.assign(InodeCount(), false);
  inode_cache_.clear();
  data_cache_.clear();
  staged_frees_.clear();
  RETURN_IF_ERROR(vlog_.Format());

  inode_used_[kNoInode] = true;
  inode_used_[kRootInode] = true;
  Inode root;
  root.type = InodeType::kDirectory;
  root.nlink = 2;
  root.mtime = static_cast<uint64_t>(host_->clock()->Now());
  RETURN_IF_ERROR(StoreInode(kRootInode, root, /*sync=*/false));
  return CommitGroup();
}

// --- Caches ---

void Vlfs::EvictDataCacheIfNeeded() {
  while (data_cache_.size() >= config_.data_cache_blocks) {
    uint32_t victim = 0;
    uint64_t best = ~0ULL;
    for (const auto& [phys, buffer] : data_cache_) {
      if (buffer.lru < best) {
        best = buffer.lru;
        victim = phys;
      }
    }
    data_cache_.erase(victim);  // Data-cache entries are never dirty (written through).
  }
}

common::StatusOr<Vlfs::Buffer*> Vlfs::GetInodeBlock(uint32_t iblock) {
  auto it = inode_cache_.find(iblock);
  if (it != inode_cache_.end()) {
    it->second.lru = ++lru_tick_;
    ++stats_.cache_hits;
    return &it->second;
  }
  ++stats_.cache_misses;
  Buffer buffer;
  buffer.data.assign(kBlockBytes, std::byte{0});
  buffer.lru = ++lru_tick_;
  if (inode_map_[iblock] != core::kUnmappedBlock) {
    RETURN_IF_ERROR(disk_->InternalRead(space_.BlockToLba(inode_map_[iblock]), buffer.data));
  }
  auto [pos, inserted] = inode_cache_.emplace(iblock, std::move(buffer));
  return &pos->second;
}

common::StatusOr<Vlfs::Buffer*> Vlfs::GetDataBlock(uint32_t phys, bool read_from_disk) {
  auto it = data_cache_.find(phys);
  if (it != data_cache_.end()) {
    it->second.lru = ++lru_tick_;
    ++stats_.cache_hits;
    return &it->second;
  }
  ++stats_.cache_misses;
  EvictDataCacheIfNeeded();
  Buffer buffer;
  buffer.data.assign(kBlockBytes, std::byte{0});
  buffer.lru = ++lru_tick_;
  if (read_from_disk) {
    RETURN_IF_ERROR(disk_->InternalRead(space_.BlockToLba(phys), buffer.data));
  }
  auto [pos, inserted] = data_cache_.emplace(phys, std::move(buffer));
  return &pos->second;
}

common::StatusOr<uint32_t> Vlfs::EagerWriteBlock(std::span<const std::byte> data,
                                                 uint64_t owner) {
  const auto block = allocator_.Allocate();
  if (!block) {
    return common::OutOfSpace("VLFS: disk full");
  }
  RETURN_IF_ERROR(disk_->InternalWrite(space_.BlockToLba(*block), data));
  owner_[*block] = owner;
  return *block;
}

void Vlfs::StageFree(uint32_t phys) { staged_frees_.push_back(phys); }

// --- Inodes ---

common::StatusOr<Inode> Vlfs::ReadInode(uint32_t ino) {
  if (ino == kNoInode || ino >= InodeCount()) {
    return common::InvalidArgument("bad inode number");
  }
  ASSIGN_OR_RETURN(Buffer * buffer, GetInodeBlock(ino / kInodesPerBlock));
  return Inode::Decode(std::span<const std::byte>(buffer->data)
                           .subspan((ino % kInodesPerBlock) * ufs::kInodeBytes));
}

common::Status Vlfs::StoreInode(uint32_t ino, const Inode& inode, bool sync) {
  ASSIGN_OR_RETURN(Buffer * buffer, GetInodeBlock(ino / kInodesPerBlock));
  inode.EncodeTo(
      std::span<std::byte>(buffer->data).subspan((ino % kInodesPerBlock) * ufs::kInodeBytes));
  buffer->dirty = true;
  if (sync) {
    return CommitGroup();
  }
  return common::OkStatus();
}

// --- Block mapping (direct + single indirect; files up to ~4 MB) ---

common::StatusOr<uint32_t> Vlfs::BmapRead(const Inode& inode, uint64_t fbi) {
  if (fbi < kDirectPtrs) {
    return inode.direct[fbi];
  }
  fbi -= kDirectPtrs;
  if (fbi >= kPtrsPerBlock) {
    return common::Unimplemented("VLFS: file larger than direct+indirect range");
  }
  if (inode.indirect == kNoAddr) {
    return kNoAddr;
  }
  ASSIGN_OR_RETURN(Buffer * table, GetDataBlock(inode.indirect, true));
  return common::LoadLe<uint32_t>(table->data, fbi * 4);
}

common::Status Vlfs::BmapSet(uint32_t ino, Inode& inode, uint64_t fbi, uint32_t phys,
                             bool sync) {
  if (fbi < kDirectPtrs) {
    inode.direct[fbi] = phys == core::kUnmappedBlock ? kNoAddr : phys;
    return StoreInode(ino, inode, sync);
  }
  fbi -= kDirectPtrs;
  if (fbi >= kPtrsPerBlock) {
    return common::Unimplemented("VLFS: file larger than direct+indirect range");
  }
  // The indirect block is itself eager-written (copy-on-write): build the new contents, write
  // them to a fresh block, point the inode at it, and stage the old copy for release.
  std::vector<std::byte> contents(kBlockBytes, std::byte{0});
  if (inode.indirect != kNoAddr) {
    ASSIGN_OR_RETURN(Buffer * table, GetDataBlock(inode.indirect, true));
    contents = table->data;
  }
  common::StoreLe<uint32_t>(contents, fbi * 4, phys == core::kUnmappedBlock ? kNoAddr : phys);
  ASSIGN_OR_RETURN(const uint32_t fresh,
                   EagerWriteBlock(contents, kOwnerData | (static_cast<uint64_t>(ino) << 32) |
                                                 kIndirectFbi));
  if (inode.indirect != kNoAddr) {
    StageFree(inode.indirect);
    ForgetDataBlock(inode.indirect);
  }
  inode.indirect = fresh;
  // Keep the fresh copy warm.
  ASSIGN_OR_RETURN(Buffer * table, GetDataBlock(fresh, false));
  table->data = std::move(contents);
  return StoreInode(ino, inode, sync);
}

common::Status Vlfs::FreeFileBlocks(Inode& inode) {
  const uint64_t blocks = (inode.size + kBlockBytes - 1) / kBlockBytes;
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t phys, BmapRead(inode, fbi));
    if (phys != kNoAddr) {
      StageFree(phys);
      ForgetDataBlock(phys);
    }
  }
  if (inode.indirect != kNoAddr) {
    StageFree(inode.indirect);
    ForgetDataBlock(inode.indirect);
    inode.indirect = kNoAddr;
  }
  std::fill(std::begin(inode.direct), std::end(inode.direct), kNoAddr);
  inode.size = 0;
  return common::OkStatus();
}

common::StatusOr<uint32_t> Vlfs::AllocInodeNumber() {
  for (uint32_t i = 0; i < inode_used_.size(); ++i) {
    if (!inode_used_[i]) {
      inode_used_[i] = true;
      return i;
    }
  }
  return common::OutOfSpace("out of inodes");
}

// --- Group commit ---

common::Status Vlfs::CommitGroup() {
  std::vector<uint32_t> dirty_iblocks;
  for (auto& [iblock, buffer] : inode_cache_) {
    if (buffer.dirty) {
      dirty_iblocks.push_back(iblock);
    }
  }
  if (dirty_iblocks.empty() && staged_frees_.empty()) {
    return common::OkStatus();
  }
  std::sort(dirty_iblocks.begin(), dirty_iblocks.end());

  // Phase 1: eager-write the dirty inode blocks to fresh locations.
  std::vector<uint32_t> affected_pieces;
  for (const uint32_t iblock : dirty_iblocks) {
    Buffer& buffer = inode_cache_[iblock];
    ASSIGN_OR_RETURN(const uint32_t fresh,
                     EagerWriteBlock(buffer.data, kOwnerInodeBlock | iblock));
    if (inode_map_[iblock] != core::kUnmappedBlock) {
      StageFree(inode_map_[iblock]);
    }
    inode_map_[iblock] = fresh;
    buffer.dirty = false;
    ++stats_.inode_blocks_written;
    const uint32_t piece = PieceOfInodeBlock(iblock);
    if (std::find(affected_pieces.begin(), affected_pieces.end(), piece) ==
        affected_pieces.end()) {
      affected_pieces.push_back(piece);
    }
  }

  // Phase 2: one virtual-log transaction commits every inode-map change atomically.
  if (!affected_pieces.empty()) {
    std::vector<core::VirtualLog::PieceUpdate> updates;
    for (const uint32_t piece : affected_pieces) {
      updates.push_back({piece, MapPieceEntries(piece)});
    }
    RETURN_IF_ERROR(vlog_.AppendTransaction(updates));
    ++stats_.map_transactions;
    if (dirty_iblocks.size() > 1) {
      ++stats_.group_commits;
    }
  }

  // Phase 3: past the commit point, recycle everything the group obsoleted.
  for (const uint32_t phys : staged_frees_) {
    allocator_.Free(phys);
    owner_[phys] = kOwnerNone;
  }
  staged_frees_.clear();
  return common::OkStatus();
}

// --- Paths & directories ---

common::StatusOr<uint32_t> Vlfs::LookupPath(const std::string& path) {
  ASSIGN_OR_RETURN(const auto parts, SplitPath(path));
  uint32_t ino = kRootInode;
  for (const std::string& part : parts) {
    ASSIGN_OR_RETURN(const Inode dir, ReadInode(ino));
    if (dir.type != InodeType::kDirectory) {
      return common::InvalidArgument("not a directory on path: " + path);
    }
    ASSIGN_OR_RETURN(ino, DirFind(dir, part));
  }
  return ino;
}

common::StatusOr<uint32_t> Vlfs::ResolveParent(const std::string& path, std::string* leaf) {
  ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  if (parts.empty()) {
    return common::InvalidArgument("path refers to the root");
  }
  *leaf = parts.back();
  parts.pop_back();
  uint32_t ino = kRootInode;
  for (const std::string& part : parts) {
    ASSIGN_OR_RETURN(const Inode dir, ReadInode(ino));
    ASSIGN_OR_RETURN(ino, DirFind(dir, part));
  }
  return ino;
}

common::StatusOr<uint32_t> Vlfs::DirFind(const Inode& dir, const std::string& name) {
  const uint64_t blocks = dir.size / kBlockBytes;
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t phys, BmapRead(dir, fbi));
    if (phys == kNoAddr) {
      continue;
    }
    ASSIGN_OR_RETURN(Buffer * buffer, GetDataBlock(phys, true));
    for (uint32_t e = 0; e < kBlockBytes / kDirEntryBytes; ++e) {
      const DirEntry entry =
          DirEntry::Decode(std::span<const std::byte>(buffer->data).subspan(e * kDirEntryBytes));
      if (entry.ino != kNoInode && entry.name == name) {
        return entry.ino;
      }
    }
  }
  return common::NotFound("no such file: " + name);
}

common::Status Vlfs::DirAdd(uint32_t dir_ino, Inode& dir, const std::string& name,
                            uint32_t child, bool sync) {
  const uint64_t blocks = dir.size / kBlockBytes;
  // Directory blocks are modified copy-on-write like everything else.
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t phys, BmapRead(dir, fbi));
    ASSIGN_OR_RETURN(Buffer * buffer, GetDataBlock(phys, true));
    for (uint32_t e = 0; e < kBlockBytes / kDirEntryBytes; ++e) {
      const DirEntry entry =
          DirEntry::Decode(std::span<const std::byte>(buffer->data).subspan(e * kDirEntryBytes));
      if (entry.ino == kNoInode) {
        std::vector<std::byte> contents = buffer->data;
        DirEntry fresh_entry{child, name};
        fresh_entry.EncodeTo(std::span<std::byte>(contents).subspan(e * kDirEntryBytes));
        ASSIGN_OR_RETURN(const uint32_t fresh,
                         EagerWriteBlock(contents, kOwnerData |
                                                       (static_cast<uint64_t>(dir_ino) << 32) |
                                                       fbi));
        StageFree(phys);
        ForgetDataBlock(phys);
        ASSIGN_OR_RETURN(Buffer * warm, GetDataBlock(fresh, false));
        warm->data = std::move(contents);
        ++stats_.data_blocks_written;
        return BmapSet(dir_ino, dir, fbi, fresh, sync);
      }
    }
  }
  // Grow the directory by one block.
  std::vector<std::byte> contents(kBlockBytes, std::byte{0});
  DirEntry fresh_entry{child, name};
  fresh_entry.EncodeTo(contents);
  ASSIGN_OR_RETURN(const uint32_t fresh,
                   EagerWriteBlock(contents, kOwnerData |
                                                 (static_cast<uint64_t>(dir_ino) << 32) |
                                                 blocks));
  ASSIGN_OR_RETURN(Buffer * warm, GetDataBlock(fresh, false));
  warm->data = std::move(contents);
  ++stats_.data_blocks_written;
  dir.size += kBlockBytes;
  dir.mtime = static_cast<uint64_t>(host_->clock()->Now());
  return BmapSet(dir_ino, dir, blocks, fresh, sync);
}

common::Status Vlfs::DirRemove(uint32_t dir_ino, Inode& dir, const std::string& name,
                               bool sync) {
  const uint64_t blocks = dir.size / kBlockBytes;
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t phys, BmapRead(dir, fbi));
    ASSIGN_OR_RETURN(Buffer * buffer, GetDataBlock(phys, true));
    for (uint32_t e = 0; e < kBlockBytes / kDirEntryBytes; ++e) {
      const DirEntry entry =
          DirEntry::Decode(std::span<const std::byte>(buffer->data).subspan(e * kDirEntryBytes));
      if (entry.ino != kNoInode && entry.name == name) {
        std::vector<std::byte> contents = buffer->data;
        DirEntry empty;
        empty.EncodeTo(std::span<std::byte>(contents).subspan(e * kDirEntryBytes));
        ASSIGN_OR_RETURN(const uint32_t fresh,
                         EagerWriteBlock(contents, kOwnerData |
                                                       (static_cast<uint64_t>(dir_ino) << 32) |
                                                       fbi));
        StageFree(phys);
        ForgetDataBlock(phys);
        ASSIGN_OR_RETURN(Buffer * warm, GetDataBlock(fresh, false));
        warm->data = std::move(contents);
        ++stats_.data_blocks_written;
        return BmapSet(dir_ino, dir, fbi, fresh, sync);
      }
    }
  }
  return common::NotFound("no such entry: " + name);
}

common::Status Vlfs::CreateNode(const std::string& path, InodeType type) {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs);
  host_->ChargeSyscall();
  disk_->ChargeHostCommand();
  std::string leaf;
  ASSIGN_OR_RETURN(const uint32_t parent_ino, ResolveParent(path, &leaf));
  ASSIGN_OR_RETURN(Inode parent, ReadInode(parent_ino));
  if (parent.type != InodeType::kDirectory) {
    return common::InvalidArgument("parent is not a directory");
  }
  if (DirFind(parent, leaf).ok()) {
    return common::AlreadyExists(path);
  }
  ASSIGN_OR_RETURN(const uint32_t ino, AllocInodeNumber());
  Inode node;
  node.type = type;
  node.nlink = type == InodeType::kDirectory ? 2 : 1;
  node.mtime = static_cast<uint64_t>(host_->clock()->Now());
  host_->ChargeBlocks(2);
  RETURN_IF_ERROR(StoreInode(ino, node, /*sync=*/false));
  // Creates are synchronous yet cheap: everything lands near the head (§3.4).
  RETURN_IF_ERROR(DirAdd(parent_ino, parent, leaf, ino, /*sync=*/true));
  ++stats_.creates;
  return common::OkStatus();
}

common::Status Vlfs::Create(const std::string& path) {
  return CreateNode(path, InodeType::kFile);
}

common::Status Vlfs::Mkdir(const std::string& path) {
  return CreateNode(path, InodeType::kDirectory);
}

common::Status Vlfs::Remove(const std::string& path) {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs);
  host_->ChargeSyscall();
  disk_->ChargeHostCommand();
  std::string leaf;
  ASSIGN_OR_RETURN(const uint32_t parent_ino, ResolveParent(path, &leaf));
  ASSIGN_OR_RETURN(Inode parent, ReadInode(parent_ino));
  ASSIGN_OR_RETURN(const uint32_t ino, DirFind(parent, leaf));
  ASSIGN_OR_RETURN(Inode node, ReadInode(ino));
  if (node.type == InodeType::kDirectory) {
    ASSIGN_OR_RETURN(const auto entries, List(path));
    if (!entries.empty()) {
      return common::FailedPrecondition("directory not empty: " + path);
    }
  }
  host_->ChargeBlocks(2);
  RETURN_IF_ERROR(FreeFileBlocks(node));
  node.type = InodeType::kFree;
  node.nlink = 0;
  RETURN_IF_ERROR(StoreInode(ino, node, /*sync=*/false));
  RETURN_IF_ERROR(DirRemove(parent_ino, parent, leaf, /*sync=*/true));
  inode_used_[ino] = false;
  ++stats_.removes;
  return common::OkStatus();
}

common::Status Vlfs::Write(const std::string& path, uint64_t offset,
                           std::span<const std::byte> data, fs::WritePolicy policy) {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs, offset, data.size());
  host_->ChargeSyscall();
  host_->ChargeCopy(data.size());
  disk_->ChargeHostCommand();
  ASSIGN_OR_RETURN(const uint32_t ino, LookupPath(path));
  ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
  if (inode.type != InodeType::kFile) {
    return common::InvalidArgument("not a regular file: " + path);
  }
  if (offset > inode.size) {
    return common::Unimplemented("sparse files not supported");
  }
  const bool sync = policy == fs::WritePolicy::kSync;

  uint64_t written = 0;
  std::vector<std::byte> merged(kBlockBytes);
  while (written < data.size()) {
    const uint64_t pos = offset + written;
    const uint64_t fbi = pos / kBlockBytes;
    const uint64_t in_block = pos % kBlockBytes;
    const uint64_t chunk = std::min<uint64_t>(kBlockBytes - in_block, data.size() - written);
    host_->ChargeBlocks(1);
    ASSIGN_OR_RETURN(const uint32_t old_phys, BmapRead(inode, fbi));
    if (in_block == 0 && chunk == kBlockBytes) {
      std::memcpy(merged.data(), data.data() + written, kBlockBytes);
    } else {
      std::fill(merged.begin(), merged.end(), std::byte{0});
      if (old_phys != kNoAddr) {
        ASSIGN_OR_RETURN(Buffer * old_buf, GetDataBlock(old_phys, true));
        merged = old_buf->data;
      }
      std::memcpy(merged.data() + in_block, data.data() + written, chunk);
    }
    ASSIGN_OR_RETURN(const uint32_t fresh,
                     EagerWriteBlock(merged, kOwnerData | (static_cast<uint64_t>(ino) << 32) |
                                                 fbi));
    if (old_phys != kNoAddr) {
      StageFree(old_phys);
      ForgetDataBlock(old_phys);
    }
    ASSIGN_OR_RETURN(Buffer * warm, GetDataBlock(fresh, false));
    warm->data = merged;
    ++stats_.data_blocks_written;
    RETURN_IF_ERROR(BmapSet(ino, inode, fbi, fresh, /*sync=*/false));
    written += chunk;
  }

  inode.size = std::max<uint64_t>(inode.size, offset + data.size());
  inode.mtime = static_cast<uint64_t>(host_->clock()->Now());
  return StoreInode(ino, inode, sync);
}

common::StatusOr<uint64_t> Vlfs::Read(const std::string& path, uint64_t offset,
                                      std::span<std::byte> out) {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs, offset, out.size());
  host_->ChargeSyscall();
  disk_->ChargeHostCommand();
  ASSIGN_OR_RETURN(const uint32_t ino, LookupPath(path));
  ASSIGN_OR_RETURN(const Inode inode, ReadInode(ino));
  if (offset >= inode.size) {
    return uint64_t{0};
  }
  const uint64_t len = std::min<uint64_t>(out.size(), inode.size - offset);
  host_->ChargeCopy(len);
  uint64_t done = 0;
  while (done < len) {
    const uint64_t pos = offset + done;
    const uint64_t fbi = pos / kBlockBytes;
    const uint64_t in_block = pos % kBlockBytes;
    const uint64_t chunk = std::min<uint64_t>(kBlockBytes - in_block, len - done);
    host_->ChargeBlocks(1);
    ASSIGN_OR_RETURN(const uint32_t phys, BmapRead(inode, fbi));
    if (phys == kNoAddr) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      ASSIGN_OR_RETURN(Buffer * buffer, GetDataBlock(phys, true));
      std::memcpy(out.data() + done, buffer->data.data() + in_block, chunk);
    }
    done += chunk;
  }
  return len;
}

common::StatusOr<fs::FileInfo> Vlfs::Stat(const std::string& path) {
  host_->ChargeSyscall();
  ASSIGN_OR_RETURN(const uint32_t ino, LookupPath(path));
  ASSIGN_OR_RETURN(const Inode inode, ReadInode(ino));
  return fs::FileInfo{inode.size, inode.type == InodeType::kDirectory};
}

common::StatusOr<std::vector<std::string>> Vlfs::List(const std::string& dir_path) {
  host_->ChargeSyscall();
  ASSIGN_OR_RETURN(const uint32_t ino, LookupPath(dir_path));
  ASSIGN_OR_RETURN(const Inode dir, ReadInode(ino));
  if (dir.type != InodeType::kDirectory) {
    return common::InvalidArgument("not a directory: " + dir_path);
  }
  std::vector<std::string> names;
  const uint64_t blocks = dir.size / kBlockBytes;
  for (uint64_t fbi = 0; fbi < blocks; ++fbi) {
    ASSIGN_OR_RETURN(const uint32_t phys, BmapRead(dir, fbi));
    if (phys == kNoAddr) {
      continue;
    }
    ASSIGN_OR_RETURN(Buffer * buffer, GetDataBlock(phys, true));
    for (uint32_t e = 0; e < kBlockBytes / kDirEntryBytes; ++e) {
      const DirEntry entry =
          DirEntry::Decode(std::span<const std::byte>(buffer->data).subspan(e * kDirEntryBytes));
      if (entry.ino != kNoInode) {
        names.push_back(entry.name);
      }
    }
  }
  return names;
}

common::Status Vlfs::Sync() {
  obs::SpanScope span(host_->tracer(), obs::Layer::kFs);
  host_->ChargeSyscall();
  disk_->ChargeHostCommand();
  return CommitGroup();
}

common::Status Vlfs::DropCaches() {
  RETURN_IF_ERROR(Sync());
  data_cache_.clear();
  inode_cache_.clear();
  return common::OkStatus();
}

common::Status Vlfs::Park() {
  RETURN_IF_ERROR(CommitGroup());
  return vlog_.Park();
}

common::Status Vlfs::Checkpoint() {
  RETURN_IF_ERROR(CommitGroup());
  std::vector<std::vector<uint32_t>> entries(vlog_.config().pieces);
  for (uint32_t k = 0; k < vlog_.config().pieces; ++k) {
    entries[k] = MapPieceEntries(k);
  }
  return vlog_.WriteCheckpoint(entries);
}

void Vlfs::RunIdle(common::Duration budget) {
  if (budget <= 0) {
    return;
  }
  const common::Time deadline = disk_->clock()->Now() + budget;
  (void)CommitGroup();
  if (vlog_.PinnedCount() > 0 && disk_->clock()->Now() < deadline) {
    (void)Checkpoint();
  }
  if (disk_->clock()->Now() < deadline) {
    compactor_->RunUntil(deadline);
  }
}

common::StatusOr<VlfsRecoveryInfo> Vlfs::Recover() {
  const uint64_t system = space_.system_blocks();
  space_ = core::FreeSpaceMap(disk_->geometry(), config_.block_sectors);
  for (uint32_t b = 0; b < system; ++b) {
    space_.MarkSystem(b);
  }
  allocator_ = core::EagerAllocator(
      disk_, &space_,
      core::AllocatorConfig{.fill_to_threshold = true,
                            .track_switch_threshold = config_.track_switch_threshold});
  inode_cache_.clear();
  data_cache_.clear();
  staged_frees_.clear();
  owner_.assign(space_.total_blocks(), kOwnerNone);
  inode_map_.assign(config_.inode_blocks, core::kUnmappedBlock);
  inode_used_.assign(InodeCount(), false);
  inode_used_[kNoInode] = true;

  ASSIGN_OR_RETURN(core::RecoveryResult recovered, vlog_.Recover());
  VlfsRecoveryInfo info;
  info.used_scan = recovered.used_scan;
  info.from_checkpoint = recovered.from_checkpoint;
  info.log_sectors_read = recovered.sectors_read;
  info.discarded_txn_sectors = recovered.discarded_txn_sectors;
  for (uint32_t piece = 0; piece < recovered.pieces.size(); ++piece) {
    const auto& entries = recovered.pieces[piece];
    for (uint32_t i = 0; i < entries.size(); ++i) {
      const uint32_t iblock = piece * core::kEntriesPerSector + i;
      if (iblock >= config_.inode_blocks || entries[i] == core::kUnmappedBlock) {
        continue;
      }
      inode_map_[iblock] = entries[i];
      space_.MarkLive(entries[i]);
      owner_[entries[i]] = kOwnerInodeBlock | iblock;
    }
  }
  // A packed group commit can leave several live (or pinned) map sectors in one physical
  // block: collect the blocks first so each is marked live exactly once.
  std::set<uint32_t> map_blocks;
  for (uint32_t k = 0; k < vlog_.config().pieces; ++k) {
    if (const auto block = vlog_.LiveBlockOfPiece(k)) {
      map_blocks.insert(*block);
    }
  }
  for (const uint32_t block : vlog_.PinnedBlocks()) {
    map_blocks.insert(block);
  }
  for (const uint32_t block : map_blocks) {
    space_.MarkLive(block);
  }

  // Walk the live inodes to rebuild data-block ownership and the free-space map.
  std::vector<std::byte> raw(kBlockBytes);
  for (uint32_t iblock = 0; iblock < config_.inode_blocks; ++iblock) {
    if (inode_map_[iblock] == core::kUnmappedBlock) {
      continue;
    }
    RETURN_IF_ERROR(disk_->InternalRead(space_.BlockToLba(inode_map_[iblock]), raw));
    ++info.inode_blocks_scanned;
    for (uint32_t i = 0; i < kInodesPerBlock; ++i) {
      const uint32_t ino = iblock * kInodesPerBlock + i;
      const Inode inode =
          Inode::Decode(std::span<const std::byte>(raw).subspan(i * ufs::kInodeBytes));
      if (inode.IsFree()) {
        continue;
      }
      inode_used_[ino] = true;
      const uint64_t blocks = (inode.size + kBlockBytes - 1) / kBlockBytes;
      for (uint64_t fbi = 0; fbi < std::min<uint64_t>(blocks, kDirectPtrs); ++fbi) {
        if (inode.direct[fbi] != kNoAddr) {
          space_.MarkLive(inode.direct[fbi]);
          owner_[inode.direct[fbi]] =
              kOwnerData | (static_cast<uint64_t>(ino) << 32) | fbi;
          ++info.live_blocks;
        }
      }
      if (inode.indirect != kNoAddr) {
        space_.MarkLive(inode.indirect);
        owner_[inode.indirect] =
            kOwnerData | (static_cast<uint64_t>(ino) << 32) | kIndirectFbi;
        std::vector<std::byte> table(kBlockBytes);
        RETURN_IF_ERROR(disk_->InternalRead(space_.BlockToLba(inode.indirect), table));
        const uint64_t limit = std::min<uint64_t>(blocks, kDirectPtrs + kPtrsPerBlock);
        for (uint64_t fbi = kDirectPtrs; fbi < limit; ++fbi) {
          const uint32_t phys =
              common::LoadLe<uint32_t>(table, (fbi - kDirectPtrs) * 4);
          if (phys != kNoAddr) {
            space_.MarkLive(phys);
            owner_[phys] = kOwnerData | (static_cast<uint64_t>(ino) << 32) | fbi;
            ++info.live_blocks;
          }
        }
      }
    }
  }
  for (const uint32_t piece : recovered.uncovered_pieces) {
    RETURN_IF_ERROR(RewritePiece(piece));
  }
  return info;
}

// --- Compaction backend ---

common::Status Vlfs::RelocateDataBlock(uint32_t phys_block) {
  const uint64_t owner = owner_[phys_block];
  if (owner == kOwnerNone) {
    return common::FailedPrecondition("VLFS relocate: unowned block");
  }
  std::vector<std::byte> raw(kBlockBytes);
  RETURN_IF_ERROR(disk_->InternalRead(space_.BlockToLba(phys_block), raw));

  if (owner & kOwnerInodeBlock) {
    const uint32_t iblock = static_cast<uint32_t>(owner & 0xFFFFFFFF);
    ASSIGN_OR_RETURN(const uint32_t fresh, EagerWriteBlock(raw, owner));
    inode_map_[iblock] = fresh;
    RETURN_IF_ERROR(vlog_.AppendPiece(PieceOfInodeBlock(iblock),
                                      MapPieceEntries(PieceOfInodeBlock(iblock))));
    allocator_.Free(phys_block);
    owner_[phys_block] = kOwnerNone;
    inode_cache_.erase(iblock);  // Cached copy is still valid, but keep bookkeeping simple.
    return common::OkStatus();
  }

  const uint32_t ino = static_cast<uint32_t>((owner >> 32) & 0x3FFFFFFF);
  const uint32_t fbi = static_cast<uint32_t>(owner & 0xFFFFFFFF);
  ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
  ASSIGN_OR_RETURN(const uint32_t fresh, EagerWriteBlock(raw, owner));
  ForgetDataBlock(phys_block);
  if (fbi == kIndirectFbi) {
    inode.indirect = fresh;
    RETURN_IF_ERROR(StoreInode(ino, inode, /*sync=*/false));
  } else {
    RETURN_IF_ERROR(BmapSet(ino, inode, fbi, fresh, /*sync=*/false));
  }
  // Commit immediately so the victim block is actually freed before the compactor checks.
  RETURN_IF_ERROR(CommitGroup());
  allocator_.Free(phys_block);
  owner_[phys_block] = kOwnerNone;
  return common::OkStatus();
}

common::Status Vlfs::RewritePiece(uint32_t piece) {
  return vlog_.AppendPiece(piece, MapPieceEntries(piece));
}

}  // namespace vlog::vlfs
