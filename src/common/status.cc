#include "src/common/status.h"

namespace vlog::common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfSpace:
      return "OUT_OF_SPACE";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kIoError:
      return "IO_ERROR";
  }
  return "UNKNOWN";
}

}  // namespace vlog::common
