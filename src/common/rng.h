// Deterministic pseudo-random number generation (xoshiro256**), seeded explicitly so every
// simulation run is reproducible.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace vlog::common {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference implementation), seeded through
// SplitMix64 so that any 64-bit seed yields a well-mixed state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses rejection sampling to avoid modulo bias.
  uint64_t Below(uint64_t bound) {
    if (bound <= 1) {
      return 0;
    }
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace vlog::common

#endif  // SRC_COMMON_RNG_H_
