#include "src/common/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace vlog::common {
namespace {

constexpr uint32_t kPolynomial = 0x82f63b78;  // Reflected CRC-32C polynomial.

// Slicing-by-8 tables: t[0] is the classic byte-at-a-time table; t[k][i] advances byte i
// through k additional zero bytes, so eight input bytes fold into the CRC with eight
// independent table lookups per iteration instead of eight serially dependent ones.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t{};
};

Tables BuildTables() {
  Tables tables;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables.t[k - 1][i];
      tables.t[k][i] = tables.t[0][prev & 0xff] ^ (prev >> 8);
    }
  }
  return tables;
}

const Tables& T() {
  static const Tables tables = BuildTables();
  return tables;
}

}  // namespace

uint32_t Crc32c(std::span<const std::byte> data, uint32_t seed) {
  const auto& t = T().t;
  uint32_t crc = ~seed;
  const std::byte* p = data.data();
  size_t n = data.size();
  // The 8-byte inner loop reads two little-endian words; on a big-endian target the byte
  // loop below handles everything (same polynomial, same result).
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      uint32_t lo;
      uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= crc;
      crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
            t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
            t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ static_cast<uint8_t>(*p++)) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace vlog::common
