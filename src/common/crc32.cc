#include "src/common/crc32.h"

#include <array>

namespace vlog::common {
namespace {

constexpr uint32_t kPolynomial = 0x82f63b78;  // Reflected CRC-32C polynomial.

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32c(std::span<const std::byte> data, uint32_t seed) {
  const auto& table = Table();
  uint32_t crc = ~seed;
  for (std::byte b : data) {
    crc = table[(crc ^ static_cast<uint8_t>(b)) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace vlog::common
