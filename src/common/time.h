// Simulated-time primitives.
//
// The whole repository runs on a virtual clock: every disk operation, host CPU charge, and idle
// interval advances a shared sim::Clock instead of sleeping. Durations are integral nanoseconds,
// which keeps event arithmetic exact and runs deterministic.
#ifndef SRC_COMMON_TIME_H_
#define SRC_COMMON_TIME_H_

#include <cstdint>

namespace vlog::common {

// A span of simulated time in nanoseconds. Negative durations are permitted in intermediate
// arithmetic but never observed by the clock.
using Duration = int64_t;

// An absolute point in simulated time: nanoseconds since simulation start.
using Time = int64_t;

constexpr Duration Nanoseconds(int64_t n) { return n; }
constexpr Duration Microseconds(double us) { return static_cast<Duration>(us * 1e3); }
constexpr Duration Milliseconds(double ms) { return static_cast<Duration>(ms * 1e6); }
constexpr Duration Seconds(double s) { return static_cast<Duration>(s * 1e9); }

constexpr double ToMicroseconds(Duration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToMilliseconds(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1e9; }

// The virtual clock. Time only moves forward.
class Clock {
 public:
  Clock() = default;

  Time Now() const { return now_; }

  // Advances the clock by `d` (no-op for non-positive durations).
  void Advance(Duration d) {
    if (d > 0) {
      now_ += d;
    }
  }

  // Advances the clock to `t` if `t` is in the future; otherwise leaves it unchanged.
  void AdvanceTo(Time t) {
    if (t > now_) {
      now_ = t;
    }
  }

 private:
  Time now_ = 0;
};

}  // namespace vlog::common

#endif  // SRC_COMMON_TIME_H_
