// Little-endian byte (de)serialization helpers for on-disk record formats.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace vlog::common {

// Writes `value` little-endian at `out[offset..offset+sizeof(T))`. The caller guarantees the
// span is large enough; these are building blocks for fixed-layout sectors.
template <typename T>
void StoreLe(std::span<std::byte> out, size_t offset, T value) {
  static_assert(std::is_integral_v<T>);
  for (size_t i = 0; i < sizeof(T); ++i) {
    out[offset + i] = static_cast<std::byte>(static_cast<uint64_t>(value) >> (8 * i));
  }
}

template <typename T>
T LoadLe(std::span<const std::byte> in, size_t offset) {
  static_assert(std::is_integral_v<T>);
  uint64_t v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(in[offset + i])) << (8 * i);
  }
  return static_cast<T>(v);
}

}  // namespace vlog::common

#endif  // SRC_COMMON_BYTES_H_
