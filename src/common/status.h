// Lightweight Status / StatusOr error plumbing.
//
// Fallible operations across module boundaries return common::Status (or StatusOr<T> when they
// produce a value). Exceptions are not used for control flow anywhere in this codebase.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace vlog::common {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfSpace,
  kCorruption,
  kFailedPrecondition,
  kUnimplemented,
  kIoError,
};

// Human-readable name for a status code, e.g. for log messages.
const char* StatusCodeName(StatusCode code);

// A status code plus an optional message. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status OutOfSpace(std::string msg) {
  return Status(StatusCode::kOutOfSpace, std::move(msg));
}
inline Status Corruption(std::string msg) {
  return Status(StatusCode::kCorruption, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status IoError(std::string msg) { return Status(StatusCode::kIoError, std::move(msg)); }

// Holds either a T or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT: implicit by design
    assert(!std::get<Status>(rep_).ok() && "StatusOr constructed from OK status without value");
  }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace vlog::common

// Propagates a non-OK status from an expression that evaluates to common::Status.
#define RETURN_IF_ERROR(expr)              \
  do {                                     \
    ::vlog::common::Status _st = (expr);   \
    if (!_st.ok()) {                       \
      return _st;                          \
    }                                      \
  } while (0)

#define VLOG_STATUS_CONCAT_INNER(a, b) a##b
#define VLOG_STATUS_CONCAT(a, b) VLOG_STATUS_CONCAT_INNER(a, b)

// Evaluates an expression yielding StatusOr<T>; assigns the value to `lhs` or propagates.
#define ASSIGN_OR_RETURN(lhs, expr)                                  \
  auto VLOG_STATUS_CONCAT(_sor_, __LINE__) = (expr);                 \
  if (!VLOG_STATUS_CONCAT(_sor_, __LINE__).ok()) {                   \
    return VLOG_STATUS_CONCAT(_sor_, __LINE__).status();             \
  }                                                                  \
  lhs = std::move(VLOG_STATUS_CONCAT(_sor_, __LINE__)).value()

#endif  // SRC_COMMON_STATUS_H_
