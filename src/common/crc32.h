// CRC-32C (Castagnoli) used to protect on-disk virtual-log records and the parked log tail.
#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace vlog::common {

// Computes CRC-32C over `data`, chaining from `seed` (pass the previous result to extend).
uint32_t Crc32c(std::span<const std::byte> data, uint32_t seed = 0);

}  // namespace vlog::common

#endif  // SRC_COMMON_CRC32_H_
