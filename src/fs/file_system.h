// The file system interface exercised by the examples, tests, and benchmark harness.
//
// Both file systems in this repository implement it: ufs::Ufs (update-in-place FFS work-alike,
// §4.3) and lfs::SimpleFs over the log-structured logical disk (§4.4) — and vlfs::Vlfs, the
// §3.3 design. Paths are absolute ("/dir/file"); the benchmarks mostly use the root directory.
#ifndef SRC_FS_FILE_SYSTEM_H_
#define SRC_FS_FILE_SYSTEM_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace vlog::fs {

struct FileInfo {
  uint64_t size = 0;
  bool is_directory = false;
};

// Controls durability of a single write, mirroring the O_SYNC distinction the paper leans on.
enum class WritePolicy {
  kAsync,  // Buffered; reaches the disk on Sync(), eviction, or (for UFS) delayed write-back.
  kSync,   // The call returns only after data (and the file systems' metadata) is durable.
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual common::Status Create(const std::string& path) = 0;
  virtual common::Status Mkdir(const std::string& path) = 0;
  virtual common::Status Remove(const std::string& path) = 0;

  virtual common::Status Write(const std::string& path, uint64_t offset,
                               std::span<const std::byte> data, WritePolicy policy) = 0;
  // Reads up to out.size() bytes; returns the number of bytes read (short at EOF).
  virtual common::StatusOr<uint64_t> Read(const std::string& path, uint64_t offset,
                                          std::span<std::byte> out) = 0;

  virtual common::StatusOr<FileInfo> Stat(const std::string& path) = 0;
  virtual common::StatusOr<std::vector<std::string>> List(const std::string& dir_path) = 0;

  // Flushes every dirty buffer to the device.
  virtual common::Status Sync() = 0;
  // Empties the (clean) buffer cache — the benchmarks' "cache flush" between phases.
  virtual common::Status DropCaches() = 0;
};

}  // namespace vlog::fs

#endif  // SRC_FS_FILE_SYSTEM_H_
