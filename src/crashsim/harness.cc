#include "src/crashsim/harness.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <iterator>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/bytes.h"
#include "src/simdisk/host_model.h"
#include "src/ufs/layout.h"

namespace vlog::crashsim {

std::string CrashPointName(const CrashPoint& point) {
  std::ostringstream os;
  os << "crash point #" << point.ordinal << " n=" << point.writes_applied
     << " kind=" << CrashKindName(point.kind);
  if (point.kind == CrashKind::kTornPrefix || point.kind == CrashKind::kTornSuffix) {
    os << " keep=" << point.keep_sectors;
  }
  if (point.kind == CrashKind::kTornRandom || point.kind == CrashKind::kCorruptTail) {
    os << " seed=" << point.seed;
  }
  if (point.kind == CrashKind::kReorder) {
    os << " epoch_end=" << point.epoch_end << " extra=" << point.extra.size()
       << " seed=" << point.seed;
  }
  return os.str();
}

// Regular prefix/torn points plus (for write-back traces) reorder points, merged into one list
// ordered by writes_applied, with stable per-sweep ordinals for failure messages.
std::vector<CrashPoint> AllCrashPoints(const WriteTrace& trace, uint32_t sector_bytes,
                                       const CrashSweepOptions& options) {
  // (Shared with the array sweep in array_harness.cc, which replays the same ordinals.)
  std::vector<CrashPoint> points = EnumerateCrashPoints(trace, sector_bytes, options.enumerate);
  std::vector<CrashPoint> reorder = EnumerateReorderPoints(trace, options.reorder);
  points.insert(points.end(), std::make_move_iterator(reorder.begin()),
                std::make_move_iterator(reorder.end()));
  std::stable_sort(points.begin(), points.end(), [](const CrashPoint& a, const CrashPoint& b) {
    return a.writes_applied < b.writes_applied;
  });
  for (size_t i = 0; i < points.size(); ++i) {
    points[i].ordinal = i;
  }
  return points;
}

namespace {

// Chunked memcmp against a static zero block: the sweep compares every logical block at every
// crash point and most blocks are never written, so this is the hottest loop in a sweep.
bool IsZero(std::span<const std::byte> bytes) {
  static constexpr size_t kChunk = 4096;
  static const std::array<std::byte, kChunk> kZeros{};
  size_t off = 0;
  while (off < bytes.size()) {
    const size_t n = std::min(kChunk, bytes.size() - off);
    if (std::memcmp(bytes.data() + off, kZeros.data(), n) != 0) {
      return false;
    }
    off += n;
  }
  return true;
}

// Does `got` equal `expect`, where an empty `expect` means all zeros?
bool ContentMatches(std::span<const std::byte> got, const std::vector<std::byte>& expect) {
  if (expect.empty()) {
    return IsZero(got);
  }
  return got.size() == expect.size() &&
         std::memcmp(got.data(), expect.data(), expect.size()) == 0;
}

common::Duration Percentile(std::vector<common::Duration> sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const size_t idx = std::min(sorted.size() - 1,
                              static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

}  // namespace

void CrashSweepReport::AddViolation(const CrashPoint& point, const std::string& what,
                                    size_t max_details) {
  ++violations;
  if (first_violation_ordinal < 0) {
    first_violation_ordinal = static_cast<int64_t>(point.ordinal);
  }
  if (violation_details.size() < max_details) {
    violation_details.push_back(CrashPointName(point) + ": " + what);
  }
}

std::string CrashSweepReport::Summary() const {
  std::vector<common::Duration> sorted = recovery_times;
  std::sort(sorted.begin(), sorted.end());
  std::ostringstream os;
  os << points << " crash points (" << clean_points << " clean, " << torn_points << " torn, "
     << corrupt_points << " corrupt-tail, " << reorder_points << " reorder), seed " << seed
     << ", " << violations << " violations; recoveries: "
     << park_recoveries << " park, " << scan_recoveries << " scan, " << checkpoint_recoveries
     << " checkpoint-seeded, " << rolled_back_recoveries << " rolled back a torn commit, "
     << repaired_pieces << " pieces repaired";
  if (nvm_points + nvm_torn_points > 0) {
    os << "; nvm: " << nvm_points << " intact replays, " << nvm_torn_points
       << " torn-tail variants";
  }
  if (!sorted.empty()) {
    os << "; recovery time ms min/median/p90/max = " << common::ToMilliseconds(sorted.front())
       << "/" << common::ToMilliseconds(Percentile(sorted, 0.5)) << "/"
       << common::ToMilliseconds(Percentile(sorted, 0.9)) << "/"
       << common::ToMilliseconds(sorted.back());
  }
  if (violations > 0) {
    // The full replay command: --seed reproduces the point list, --point narrows the sweep to
    // the first violating ordinal. The same pair of flags works for the single-disk and array
    // sweep binaries alike.
    os << "\n  replay: <sweep test binary> --seed=" << seed << " --point="
       << first_violation_ordinal << " (reruns exactly that crash point)";
  }
  for (const std::string& detail : violation_details) {
    os << "\n  " << detail;
  }
  return os.str();
}

uint32_t ResolveSweepWorkers(uint32_t requested, size_t points) {
  uint32_t workers = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (workers == 0) {
    workers = 1;
  }
  if (points > 0 && workers > points) {
    workers = static_cast<uint32_t>(points);
  }
  return workers;
}

CrashSweepReport RunShardedSweep(
    size_t points, uint64_t seed, const CrashSweepOptions& options,
    const std::function<CrashSweepReport(size_t, size_t)>& sweep_range) {
  const uint32_t workers = ResolveSweepWorkers(options.workers, points);
  std::vector<CrashSweepReport> shards(workers);
  if (workers <= 1) {
    shards[0] = sweep_range(0, points);
  } else {
    // Contiguous ascending ordinal ranges, sizes within one point of each other. Shard w
    // catches its rolling state up from the trace base (one pass over the write records), so
    // the only cross-thread state is the read-only trace and point list.
    const size_t base = points / workers;
    const size_t rem = points % workers;
    std::vector<std::pair<size_t, size_t>> ranges(workers);
    size_t begin = 0;
    for (uint32_t w = 0; w < workers; ++w) {
      const size_t size = base + (w < rem ? 1 : 0);
      ranges[w] = {begin, begin + size};
      begin += size;
    }
    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (uint32_t w = 1; w < workers; ++w) {
      threads.emplace_back(
          [&shards, &sweep_range, &ranges, w] { shards[w] = sweep_range(ranges[w].first, ranges[w].second); });
    }
    shards[0] = sweep_range(ranges[0].first, ranges[0].second);
    for (std::thread& t : threads) {
      t.join();
    }
  }
  // Merge in shard (= ordinal) order: counters sum, details/recovery times concatenate, and
  // the first shard reporting a violation owns first_violation_ordinal — exactly what the
  // serial loop would have produced.
  CrashSweepReport merged;
  merged.points = points;
  merged.seed = seed;
  for (CrashSweepReport& s : shards) {
    merged.clean_points += s.clean_points;
    merged.torn_points += s.torn_points;
    merged.corrupt_points += s.corrupt_points;
    merged.reorder_points += s.reorder_points;
    merged.nvm_points += s.nvm_points;
    merged.nvm_torn_points += s.nvm_torn_points;
    merged.violations += s.violations;
    if (merged.first_violation_ordinal < 0) {
      merged.first_violation_ordinal = s.first_violation_ordinal;
    }
    for (std::string& detail : s.violation_details) {
      if (merged.violation_details.size() < options.max_violation_details) {
        merged.violation_details.push_back(std::move(detail));
      }
    }
    merged.park_recoveries += s.park_recoveries;
    merged.scan_recoveries += s.scan_recoveries;
    merged.checkpoint_recoveries += s.checkpoint_recoveries;
    merged.rolled_back_recoveries += s.rolled_back_recoveries;
    merged.repaired_pieces += s.repaired_pieces;
    merged.recovery_times.insert(merged.recovery_times.end(), s.recovery_times.begin(),
                                 s.recovery_times.end());
  }
  return merged;
}

// --- VldCrashSim ---

VldCrashSim::VldCrashSim(simdisk::DiskParams params, core::VldConfig config)
    : params_(std::move(params)), config_(config) {}

void VldCrashSim::EnableStage(core::NvmStageConfig stage_config,
                              simdisk::NvmDeviceParams nvm_params) {
  staged_ = true;
  stage_config_ = stage_config;
  nvm_params_ = nvm_params;
}

common::Status VldCrashSim::Record(
    const std::function<common::Status(ShadowVld&)>& workload) {
  common::Clock clock;
  simdisk::SimDisk disk(params_, &clock);
  core::Vld vld(&disk, config_);
  RETURN_IF_ERROR(vld.Format());
  logical_blocks_ = vld.logical_blocks();
  block_bytes_ = vld.block_sectors() * disk.SectorBytes();
  // Recording starts after Format: the base image is the freshly formatted device, and every
  // later media write (data, map sectors, checkpoints, park) lands in the trace.
  trace_.set_base(SnapshotMedia(disk));
  trace_.set_write_back(params_.cache.capacity_sectors > 0);
  disk.set_write_observer([this](simdisk::Lba lba, std::span<const std::byte> data,
                                 bool durable) { trace_.Append(lba, data, durable); });
  disk.set_flush_observer([this] { trace_.AppendBarrier(); });
  std::unique_ptr<simdisk::NvmDevice> nvm;
  std::unique_ptr<core::NvmStage> stage;
  if (staged_) {
    nvm = std::make_unique<simdisk::NvmDevice>(nvm_params_, &clock);
    stage = std::make_unique<core::NvmStage>(nvm.get(), &vld, stage_config_);
    RETURN_IF_ERROR(stage->Format());
    // NVM recording starts after the stage format, mirroring the disk trace: each NVM write
    // is tagged with the disk trace length at acknowledgement so the sweep can cut both
    // persistence domains consistently.
    nvm_trace_.set_base(nvm->Snapshot());
    nvm->set_write_observer([this](uint64_t offset, std::span<const std::byte> data) {
      nvm_trace_.Append(offset, data, trace_.size());
    });
  }
  ShadowVld shadow(&vld, &trace_);
  if (staged_) {
    shadow.AttachStage(stage.get(), &nvm_trace_);
  }
  common::Status status = workload(shadow);
  disk.set_write_observer(nullptr);
  disk.set_flush_observer(nullptr);
  if (nvm != nullptr) {
    nvm->set_write_observer(nullptr);
  }
  ops_ = shadow.TakeOps();
  return status;
}

CrashSweepReport VldCrashSim::Sweep(const CrashSweepOptions& options) const {
  const std::vector<CrashPoint> points =
      AllCrashPoints(trace_, params_.geometry.sector_bytes, options);
  return RunShardedSweep(points.size(), options.enumerate.seed, options,
                         [&](size_t begin, size_t end) {
                           return SweepRange(points, begin, end, options);
                         });
}

CrashSweepReport VldCrashSim::SweepRange(const std::vector<CrashPoint>& points, size_t begin,
                                         size_t end, const CrashSweepOptions& options) const {
  CrashSweepReport report;
  const uint32_t sector_bytes = params_.geometry.sector_bytes;
  const uint32_t block_sectors = block_bytes_ / sector_bytes;

  // Rolling state, advanced monotonically since points are ordered by writes_applied: the
  // reconstructed image and the committed shadow (contents after every fully-persisted op).
  // A range that starts mid-sweep catches up via the first iteration's replay loop.
  std::vector<std::byte> image = trace_.base();
  uint64_t applied = 0;
  size_t op_idx = 0;
  std::vector<std::vector<std::byte>> committed(logical_blocks_);

  // Staged sweeps: the rolling NVM image (NVM is non-volatile, so every write tagged <= the
  // disk cut is present) plus the pre-write bytes of the last applied NVM record — the undo
  // buffer torn-NVM-tail variants are synthesized from.
  size_t nvm_applied = 0;
  std::vector<std::byte> nvm_image;
  std::vector<std::byte> nvm_undo;
  if (staged_) {
    nvm_image = nvm_trace_.base();
  }

  std::vector<std::byte> probe_block(block_bytes_, std::byte{0xA5});
  std::vector<std::byte> readback(block_bytes_);
  // The crashed image, recycled through each point's SimDisk (media-adopting constructor +
  // TakeMedia). It is kept in sync with the rolling image by *difference*: trace records are
  // applied to both copies, and the only places the two diverge — the point's crash-variant
  // bytes plus every write the recovered instance made (tracked via the disk's write
  // observer) — are listed in `dirty` and restored from `image` before the next point. The
  // dirty footprint is a few KB against a media image ~500x that, so this replaces the
  // full-media copy per point that used to dominate sweep wall time.
  std::vector<std::byte> scratch;
  std::vector<std::pair<size_t, size_t>> dirty;  // (byte offset, length) of divergences.

  for (size_t pi = begin; pi < end; ++pi) {
    const CrashPoint& point = points[pi];
    while (applied < point.writes_applied) {
      ApplyWrite(image, trace_[applied], sector_bytes);
      if (!scratch.empty()) {
        ApplyWrite(scratch, trace_[applied], sector_bytes);
      }
      ++applied;
    }
    while (op_idx < ops_.size() && ops_[op_idx].end_writes <= applied) {
      const ShadowVld::Op& op = ops_[op_idx];
      for (size_t i = 0; i < op.blocks.size(); ++i) {
        committed[op.blocks[i]] = op.after[i];
      }
      ++op_idx;
    }
    // An NVM write tagged T happened before disk write #T was issued, so it is persisted at
    // every cut with applied >= T — the same fold rule ops use for end_writes.
    while (staged_ && nvm_applied < nvm_trace_.size() &&
           nvm_trace_[nvm_applied].disk_writes <= applied) {
      const NvmWriteRecord& rec = nvm_trace_[nvm_applied];
      nvm_undo.assign(nvm_image.begin() + static_cast<ptrdiff_t>(rec.offset),
                      nvm_image.begin() + static_cast<ptrdiff_t>(rec.offset + rec.data.size()));
      ApplyNvmWrite(nvm_image, rec);
      ++nvm_applied;
    }
    // Which acknowledged ops may be partially persisted at this point. A prefix/torn point cuts
    // inside at most the next unfinished op; a reorder point's extras can touch every op whose
    // commit lies inside its epoch (a packed group commit flips them together).
    std::vector<const ShadowVld::Op*> inflight_ops;
    if (point.kind == CrashKind::kReorder) {
      for (size_t i = op_idx; i < ops_.size() && ops_[i].end_writes <= point.epoch_end; ++i) {
        inflight_ops.push_back(&ops_[i]);
      }
    } else if (op_idx < ops_.size()) {
      inflight_ops.push_back(&ops_[op_idx]);
    }

    switch (point.kind) {
      case CrashKind::kClean:
        ++report.clean_points;
        break;
      case CrashKind::kCorruptTail:
        ++report.corrupt_points;
        break;
      case CrashKind::kReorder:
        ++report.reorder_points;
        break;
      default:
        ++report.torn_points;
    }
    if (options.only_ordinal >= 0 &&
        static_cast<int64_t>(point.ordinal) != options.only_ordinal) {
      continue;  // Replay mode: count every point but recover/check only the requested one.
    }

    // Reconstruct the crashed media and recover a fresh instance over it. The scratch buffer
    // becomes the disk's media directly; TakeMedia reclaims it at the end of the point.
    if (scratch.empty()) {
      scratch = image;  // First recovered point in this range: the one full media copy.
    } else {
      for (const auto& [off, len] : dirty) {
        std::memcpy(scratch.data() + off, image.data() + off, len);
      }
    }
    dirty.clear();
    if (point.kind == CrashKind::kReorder) {
      for (const uint64_t idx : point.extra) {
        ApplyWrite(scratch, trace_[idx], sector_bytes);
        dirty.emplace_back(trace_[idx].lba * sector_bytes, trace_[idx].data.size());
      }
    } else if (point.kind != CrashKind::kClean) {
      // Every crash variant mutates only bytes inside the record's own range.
      ApplyCrashedWrite(scratch, trace_[applied], sector_bytes, point);
      dirty.emplace_back(trace_[applied].lba * sector_bytes, trace_[applied].data.size());
    }
    common::Clock clock;
    simdisk::SimDisk disk(params_, &clock, std::move(scratch));
    disk.set_write_observer(
        [&](simdisk::Lba lba, std::span<const std::byte> data, bool /*durable*/) {
          dirty.emplace_back(lba * sector_bytes, data.size());
        });
    core::Vld vld(&disk, config_);
    const common::Time start = clock.Now();
    auto info = vld.Recover();
    report.recovery_times.push_back(clock.Now() - start);
    if (!info.ok()) {
      report.AddViolation(point, "recovery failed: " + info.status().ToString(),
                          options.max_violation_details);
      scratch = std::move(disk).TakeMedia();
      continue;
    }
    (info->used_scan ? report.scan_recoveries : report.park_recoveries) += 1;
    report.checkpoint_recoveries += info->from_checkpoint ? 1 : 0;
    report.rolled_back_recoveries += info->discarded_txn_sectors > 0 ? 1 : 0;
    report.repaired_pieces += info->repaired_pieces;

    // Staged sweeps recover the stage over the recovered Vld (stage recovery validates staged
    // ranges against the backing device, and disk recovery never touches NVM, so the order is
    // observationally equivalent to recovering the stage first). The reconstructed NVM image
    // here is intact — every acknowledged append fully persisted — so a replay that reports a
    // torn tail would itself be a bug. All content checks below then read THROUGH the stage:
    // an acked-in-NVM write must be served from the replayed overlay.
    std::optional<simdisk::NvmDevice> nvm_dev;
    std::optional<core::NvmStage> stage;
    if (staged_) {
      nvm_dev.emplace(nvm_params_, &clock, nvm_image);
      stage.emplace(&*nvm_dev, &vld, stage_config_);
      auto stage_info = stage->Recover();
      if (!stage_info.ok()) {
        report.AddViolation(point,
                            "nvm stage recovery failed: " + stage_info.status().ToString(),
                            options.max_violation_details);
        scratch = std::move(disk).TakeMedia();
        continue;
      }
      ++report.nvm_points;
      if (stage_info->torn_tail_dropped) {
        report.AddViolation(point, "intact NVM image replayed with a torn tail",
                            options.max_violation_details);
      }
    }
    const auto read_block = [&](uint32_t b, std::span<std::byte> out) {
      const simdisk::Lba lba = static_cast<simdisk::Lba>(b) * block_sectors;
      return staged_ ? stage->Read(lba, out) : vld.Read(lba, out);
    };

    // Invariant 2: committed contents exact; in-flight blocks all-old or all-new. When several
    // in-flight ops touch the same block, "old" is the first writer's before-image and "new"
    // the last writer's after-image (the group commits atomically, so nothing between is
    // legal).
    struct InflightVals {
      const std::vector<std::byte>* before = nullptr;
      const std::vector<std::byte>* after = nullptr;
    };
    std::unordered_map<uint32_t, InflightVals> inflight_index;
    for (const ShadowVld::Op* op : inflight_ops) {
      for (size_t i = 0; i < op->blocks.size(); ++i) {
        auto [it, inserted] =
            inflight_index.try_emplace(op->blocks[i], InflightVals{&op->before[i], &op->after[i]});
        if (!inserted) {
          it->second.after = &op->after[i];
        }
      }
    }
    bool all_old = true;
    bool all_new = true;
    bool content_ok = true;
    for (uint32_t b = 0; b < logical_blocks_ && content_ok; ++b) {
      if (!read_block(b, readback).ok()) {
        report.AddViolation(point, "read of logical block " + std::to_string(b) + " failed",
                            options.max_violation_details);
        content_ok = false;
        break;
      }
      const auto it = inflight_index.find(b);
      if (it == inflight_index.end()) {
        if (!ContentMatches(readback, committed[b])) {
          report.AddViolation(point,
                              "committed logical block " + std::to_string(b) +
                                  " has wrong contents after recovery",
                              options.max_violation_details);
          content_ok = false;
        }
        continue;
      }
      all_old = all_old && ContentMatches(readback, *it->second.before);
      all_new = all_new && ContentMatches(readback, *it->second.after);
    }
    if (content_ok && !(all_old || all_new)) {
      report.AddViolation(point, "in-flight command partially applied (atomicity violated)",
                          options.max_violation_details);
    }

    // Invariant 3: the recovered map is injective over physical blocks.
    const std::vector<uint32_t>& map = vld.logical_map();
    std::unordered_set<uint32_t> phys_seen;
    uint64_t mapped = 0;
    for (uint32_t b = 0; b < map.size(); ++b) {
      if (map[b] == core::kUnmappedBlock) {
        continue;
      }
      ++mapped;
      if (!phys_seen.insert(map[b]).second) {
        report.AddViolation(point,
                            "two logical blocks map to physical block " + std::to_string(map[b]),
                            options.max_violation_details);
        break;
      }
      if (vld.space().state(map[b]) != core::BlockState::kLive) {
        report.AddViolation(point,
                            "mapped physical block " + std::to_string(map[b]) +
                                " not marked live in the free-space map",
                            options.max_violation_details);
        break;
      }
    }

    // Invariant 4: free-space accounting equals mapped data + live map pieces + pinned blocks.
    std::unordered_set<uint32_t> map_blocks;
    for (uint32_t k = 0; k < vld.vlog().config().pieces; ++k) {
      if (const auto block = vld.vlog().LiveBlockOfPiece(k)) {
        map_blocks.insert(*block);
      }
    }
    for (const uint32_t block : vld.vlog().PinnedBlocks()) {
      map_blocks.insert(block);
    }
    if (mapped + map_blocks.size() != vld.space().live_blocks()) {
      report.AddViolation(point,
                          "free-space accounting mismatch: " + std::to_string(mapped) +
                              " mapped + " + std::to_string(map_blocks.size()) +
                              " map blocks != " + std::to_string(vld.space().live_blocks()) +
                              " live",
                          options.max_violation_details);
    }

    // Torn-NVM-tail matrix: a crash during an NVM append keeps a line-aligned prefix of it. A
    // tear is only physically admissible at a clean point whose last persisted NVM write is
    // the append coinciding with this cut (no disk write can land after an append that never
    // finished) — and only for log records, not single-line superblock updates. Each variant
    // reverts a line-aligned suffix of that append to its pre-write bytes and re-recovers: the
    // record CRCs must drop exactly the torn record, so the op that owns the append reads back
    // all-old-or-all-new and earlier committed staged ops keep their exact contents. These
    // checks run before the probe, which mutates block 0.
    if (staged_ && point.kind == CrashKind::kClean && nvm_applied > 0 &&
        nvm_trace_[nvm_applied - 1].disk_writes == applied &&
        nvm_trace_[nvm_applied - 1].offset != 0) {
      const NvmWriteRecord& last = nvm_trace_[nvm_applied - 1];
      // The op whose acknowledgement covers the torn append — the in-flight op for these
      // variants. Ops record the NVM trace length at ack, monotonically.
      const auto owner_it =
          std::lower_bound(ops_.begin(), ops_.end(), nvm_applied,
                           [](const ShadowVld::Op& op, size_t n) { return op.nvm_end < n; });
      const ShadowVld::Op* owner = owner_it != ops_.end() ? &*owner_it : nullptr;
      std::unordered_set<uint32_t> owner_blocks;
      if (owner != nullptr) {
        owner_blocks.insert(owner->blocks.begin(), owner->blocks.end());
      }
      // Recently committed ops are collateral-damage sentinels: their records precede the torn
      // append, so the tear must leave their contents untouched.
      std::vector<const ShadowVld::Op*> sentinels;
      for (auto it = owner_it; it != ops_.begin() && sentinels.size() < 6;) {
        --it;
        if (it->end_writes <= applied && !it->blocks.empty()) {
          sentinels.push_back(&*it);
        }
      }
      const uint32_t line = nvm_params_.cache_line_bytes;
      const uint64_t lines = last.data.size() / line;
      const uint64_t step = std::max<uint64_t>(1, lines / 4);
      for (uint64_t cl = 0; cl < lines; cl += step) {
        const uint64_t cut = cl * line;
        std::vector<std::byte> torn = nvm_image;
        std::memcpy(torn.data() + last.offset + cut, nvm_undo.data() + cut,
                    last.data.size() - cut);
        simdisk::NvmDevice torn_nvm(nvm_params_, &clock, std::move(torn));
        core::NvmStage torn_stage(&torn_nvm, &vld, stage_config_);
        ++report.nvm_torn_points;
        auto torn_info = torn_stage.Recover();
        if (!torn_info.ok()) {
          report.AddViolation(point,
                              "nvm tear at line " + std::to_string(cl) +
                                  ": stage recovery failed: " + torn_info.status().ToString(),
                              options.max_violation_details);
          continue;
        }
        bool t_ok = true;
        if (owner != nullptr) {
          bool t_all_old = true;
          bool t_all_new = true;
          for (size_t i = 0; i < owner->blocks.size() && t_ok; ++i) {
            if (!torn_stage.Read(static_cast<simdisk::Lba>(owner->blocks[i]) * block_sectors,
                                 readback)
                     .ok()) {
              report.AddViolation(point,
                                  "nvm tear at line " + std::to_string(cl) +
                                      ": read of owning op's block failed",
                                  options.max_violation_details);
              t_ok = false;
              break;
            }
            t_all_old = t_all_old && ContentMatches(readback, owner->before[i]);
            t_all_new = t_all_new && ContentMatches(readback, owner->after[i]);
          }
          if (t_ok && !(t_all_old || t_all_new)) {
            report.AddViolation(point,
                                "nvm tear at line " + std::to_string(cl) +
                                    ": op owning the torn append partially applied",
                                options.max_violation_details);
          }
        }
        for (const ShadowVld::Op* op : sentinels) {
          for (size_t i = 0; i < op->blocks.size() && t_ok; ++i) {
            const uint32_t b = op->blocks[i];
            if (owner_blocks.count(b) != 0 || inflight_index.count(b) != 0) {
              continue;  // Covered by the all-old-or-all-new checks instead.
            }
            if (!torn_stage.Read(static_cast<simdisk::Lba>(b) * block_sectors, readback).ok() ||
                !ContentMatches(readback, committed[b])) {
              report.AddViolation(point,
                                  "nvm tear at line " + std::to_string(cl) +
                                      ": committed block " + std::to_string(b) + " disturbed",
                                  options.max_violation_details);
              t_ok = false;
            }
          }
        }
      }
    }

    // Invariant 5: the recovered device still accepts and serves writes. Staged runs push the
    // probe through the stage and a full drain, exercising destage + allocator in one go.
    if (options.probe_after_recovery) {
      common::Status st = staged_ ? stage->Write(0, probe_block) : vld.Write(0, probe_block);
      if (st.ok() && staged_) {
        st = stage->Drain();
      }
      if (st.ok()) {
        st = staged_ ? stage->Read(0, readback) : vld.Read(0, readback);
      }
      if (!st.ok() || !ContentMatches(readback, probe_block)) {
        report.AddViolation(point, "post-recovery probe write/read failed",
                            options.max_violation_details);
      }
    }
    scratch = std::move(disk).TakeMedia();
  }
  return report;
}

// --- VlfsCrashSim ---

VlfsCrashSim::VlfsCrashSim(simdisk::DiskParams params, vlfs::VlfsConfig config)
    : params_(std::move(params)), config_(config) {}

common::Status VlfsCrashSim::Record(const std::vector<VlfsOp>& script) {
  common::Clock clock;
  simdisk::SimDisk disk(params_, &clock);
  simdisk::HostModel host(simdisk::ZeroCostHost(), &clock);
  vlfs::Vlfs fs(&disk, &host, config_);
  RETURN_IF_ERROR(fs.Format());
  trace_.set_base(SnapshotMedia(disk));
  trace_.set_write_back(params_.cache.capacity_sectors > 0);
  disk.set_write_observer([this](simdisk::Lba lba, std::span<const std::byte> data,
                                 bool durable) { trace_.Append(lba, data, durable); });
  disk.set_flush_observer([this] { trace_.AppendBarrier(); });

  // The expected-state model is maintained here, not read back from the fs: a divergence shows
  // up in the sweep (including at the final clean point, which is the uncrashed state).
  std::unordered_map<std::string, FileState> state;
  std::unordered_set<std::string> known;
  for (const VlfsOp& op : script) {
    FsOpRecord rec;
    rec.path = op.path;
    if (!op.path.empty() && known.insert(op.path).second) {
      all_paths_.push_back(op.path);
    }
    const auto it = op.path.empty() ? state.end() : state.find(op.path);
    rec.before = it == state.end() ? std::nullopt : std::optional<FileState>(it->second);
    switch (op.kind) {
      case VlfsOp::Kind::kCreate:
        RETURN_IF_ERROR(fs.Create(op.path));
        rec.after = FileState{};
        break;
      case VlfsOp::Kind::kMkdir: {
        RETURN_IF_ERROR(fs.Mkdir(op.path));
        FileState dir;
        dir.is_dir = true;
        rec.after = std::move(dir);
        break;
      }
      case VlfsOp::Kind::kRemove:
        RETURN_IF_ERROR(fs.Remove(op.path));
        rec.after = std::nullopt;
        break;
      case VlfsOp::Kind::kWriteSync: {
        RETURN_IF_ERROR(fs.Write(op.path, op.offset, op.data, fs::WritePolicy::kSync));
        FileState next = rec.before.value_or(FileState{});
        if (next.content.size() < op.offset + op.data.size()) {
          next.content.resize(op.offset + op.data.size());
        }
        std::memcpy(next.content.data() + op.offset, op.data.data(), op.data.size());
        rec.after = std::move(next);
        break;
      }
      case VlfsOp::Kind::kCheckpoint:
        RETURN_IF_ERROR(fs.Checkpoint());
        break;
      case VlfsOp::Kind::kIdle:
        fs.RunIdle(op.idle_budget);
        break;
      case VlfsOp::Kind::kPark:
        RETURN_IF_ERROR(fs.Park());
        break;
    }
    rec.end_writes = trace_.size();
    if (!op.path.empty()) {
      if (rec.after.has_value()) {
        state[op.path] = *rec.after;
      } else {
        state.erase(op.path);
      }
    }
    ops_.push_back(std::move(rec));
  }
  disk.set_write_observer(nullptr);
  disk.set_flush_observer(nullptr);
  return common::OkStatus();
}

CrashSweepReport VlfsCrashSim::Sweep(const CrashSweepOptions& options) const {
  const std::vector<CrashPoint> points =
      AllCrashPoints(trace_, params_.geometry.sector_bytes, options);
  return RunShardedSweep(points.size(), options.enumerate.seed, options,
                         [&](size_t begin, size_t end) {
                           return SweepRange(points, begin, end, options);
                         });
}

CrashSweepReport VlfsCrashSim::SweepRange(const std::vector<CrashPoint>& points, size_t begin,
                                          size_t end, const CrashSweepOptions& options) const {
  CrashSweepReport report;
  const uint32_t sector_bytes = params_.geometry.sector_bytes;

  std::vector<std::byte> image = trace_.base();
  uint64_t applied = 0;
  size_t op_idx = 0;
  std::unordered_map<std::string, FileState> committed;
  // Recycled through each point's SimDisk and synced by dirty-range restore; see
  // VldCrashSim::SweepRange.
  std::vector<std::byte> scratch;
  std::vector<std::pair<size_t, size_t>> dirty;

  // Checks one path against an expected state (nullopt = absent). Returns a description of the
  // mismatch, or an empty string.
  auto check_path = [](vlfs::Vlfs& fs, const std::string& path,
                       const std::optional<FileState>& expect) -> std::string {
    auto stat = fs.Stat(path);
    if (!expect.has_value()) {
      return stat.ok() ? "path '" + path + "' resurrected after recovery" : "";
    }
    if (!stat.ok()) {
      return "path '" + path + "' missing after recovery";
    }
    if (stat->is_directory != expect->is_dir) {
      return "path '" + path + "' changed type after recovery";
    }
    if (expect->is_dir) {
      return "";
    }
    if (stat->size != expect->content.size()) {
      return "file '" + path + "' has wrong size after recovery";
    }
    std::vector<std::byte> data(expect->content.size());
    if (!data.empty()) {
      auto read = fs.Read(path, 0, data);
      if (!read.ok() || *read != data.size() ||
          std::memcmp(data.data(), expect->content.data(), data.size()) != 0) {
        return "file '" + path + "' has wrong contents after recovery";
      }
    }
    return "";
  };

  for (size_t pi = begin; pi < end; ++pi) {
    const CrashPoint& point = points[pi];
    while (applied < point.writes_applied) {
      ApplyWrite(image, trace_[applied], sector_bytes);
      if (!scratch.empty()) {
        ApplyWrite(scratch, trace_[applied], sector_bytes);
      }
      ++applied;
    }
    while (op_idx < ops_.size() && ops_[op_idx].end_writes <= applied) {
      const FsOpRecord& op = ops_[op_idx];
      if (!op.path.empty()) {
        if (op.after.has_value()) {
          committed[op.path] = *op.after;
        } else {
          committed.erase(op.path);
        }
      }
      ++op_idx;
    }
    // In-flight ops (see VldCrashSim::Sweep): for reorder points every op committed inside the
    // epoch may be partially persisted; otherwise just the next unfinished one.
    std::vector<const FsOpRecord*> inflight_ops;
    if (point.kind == CrashKind::kReorder) {
      for (size_t i = op_idx; i < ops_.size() && ops_[i].end_writes <= point.epoch_end; ++i) {
        inflight_ops.push_back(&ops_[i]);
      }
    } else if (op_idx < ops_.size()) {
      inflight_ops.push_back(&ops_[op_idx]);
    }
    // Per path, the first toucher's before-image and last toucher's after-image.
    std::unordered_map<std::string, std::pair<const FsOpRecord*, const FsOpRecord*>>
        inflight_paths;
    for (const FsOpRecord* op : inflight_ops) {
      if (op->path.empty()) {
        continue;
      }
      auto [it, inserted] = inflight_paths.try_emplace(op->path, op, op);
      if (!inserted) {
        it->second.second = op;
      }
    }

    switch (point.kind) {
      case CrashKind::kClean:
        ++report.clean_points;
        break;
      case CrashKind::kCorruptTail:
        ++report.corrupt_points;
        break;
      case CrashKind::kReorder:
        ++report.reorder_points;
        break;
      default:
        ++report.torn_points;
    }
    if (options.only_ordinal >= 0 &&
        static_cast<int64_t>(point.ordinal) != options.only_ordinal) {
      continue;  // Replay mode: count every point but recover/check only the requested one.
    }

    if (scratch.empty()) {
      scratch = image;  // First recovered point in this range: the one full media copy.
    } else {
      for (const auto& [off, len] : dirty) {
        std::memcpy(scratch.data() + off, image.data() + off, len);
      }
    }
    dirty.clear();
    if (point.kind == CrashKind::kReorder) {
      for (const uint64_t idx : point.extra) {
        ApplyWrite(scratch, trace_[idx], sector_bytes);
        dirty.emplace_back(trace_[idx].lba * sector_bytes, trace_[idx].data.size());
      }
    } else if (point.kind != CrashKind::kClean) {
      // Every crash variant mutates only bytes inside the record's own range.
      ApplyCrashedWrite(scratch, trace_[applied], sector_bytes, point);
      dirty.emplace_back(trace_[applied].lba * sector_bytes, trace_[applied].data.size());
    }
    common::Clock clock;
    simdisk::SimDisk disk(params_, &clock, std::move(scratch));
    disk.set_write_observer(
        [&](simdisk::Lba lba, std::span<const std::byte> data, bool /*durable*/) {
          dirty.emplace_back(lba * sector_bytes, data.size());
        });
    simdisk::HostModel host(simdisk::ZeroCostHost(), &clock);
    vlfs::Vlfs fs(&disk, &host, config_);
    const common::Time start = clock.Now();
    auto info = fs.Recover();
    report.recovery_times.push_back(clock.Now() - start);
    if (!info.ok()) {
      report.AddViolation(point, "recovery failed: " + info.status().ToString(),
                          options.max_violation_details);
      scratch = std::move(disk).TakeMedia();
      continue;
    }
    (info->used_scan ? report.scan_recoveries : report.park_recoveries) += 1;
    report.checkpoint_recoveries += info->from_checkpoint ? 1 : 0;
    report.rolled_back_recoveries += info->discarded_txn_sectors > 0 ? 1 : 0;

    for (const std::string& path : all_paths_) {
      const auto infl = inflight_paths.find(path);
      if (infl != inflight_paths.end()) {
        // The in-flight operation(s) must be all-or-nothing at the file level.
        const std::string as_old = check_path(fs, path, infl->second.first->before);
        if (!as_old.empty()) {
          const std::string as_new = check_path(fs, path, infl->second.second->after);
          if (!as_new.empty()) {
            report.AddViolation(
                point, "in-flight op on '" + path + "' neither old nor new state (" + as_old +
                           " / " + as_new + ")",
                options.max_violation_details);
          }
        }
        continue;
      }
      const auto it = committed.find(path);
      const std::string err = check_path(
          fs, path, it == committed.end() ? std::nullopt : std::optional<FileState>(it->second));
      if (!err.empty()) {
        report.AddViolation(point, err, options.max_violation_details);
      }
    }

    // Invariant 4 (mirrors VldCrashSim): the recovered allocator must agree with a free-space
    // shadow rebuilt independently from the recovered metadata — live inode-map blocks, the
    // virtual log's live/pinned map blocks, and every data/indirect block reachable from a
    // live inode read straight off the crashed media image.
    {
      const uint32_t block_sectors = fs.block_sectors();
      const size_t block_bytes = static_cast<size_t>(block_sectors) * sector_bytes;
      std::unordered_set<uint32_t> shadow;
      const std::vector<uint32_t>& imap = fs.inode_map();
      for (const uint32_t phys : imap) {
        if (phys != core::kUnmappedBlock) {
          shadow.insert(phys);
        }
      }
      for (uint32_t k = 0; k < fs.vlog().config().pieces; ++k) {
        if (const auto block = fs.vlog().LiveBlockOfPiece(k)) {
          shadow.insert(*block);
        }
      }
      for (const uint32_t block : fs.vlog().PinnedBlocks()) {
        shadow.insert(block);
      }
      std::vector<std::byte> iraw(block_bytes);
      std::vector<std::byte> table(block_bytes);
      for (const uint32_t iphys : imap) {
        if (iphys == core::kUnmappedBlock) {
          continue;
        }
        disk.PeekMedia(static_cast<simdisk::Lba>(iphys) * block_sectors, iraw);
        for (uint32_t i = 0; i < ufs::kInodesPerBlock; ++i) {
          const ufs::Inode inode = ufs::Inode::Decode(
              std::span<const std::byte>(iraw).subspan(i * ufs::kInodeBytes));
          if (inode.IsFree()) {
            continue;
          }
          const uint64_t blocks = (inode.size + block_bytes - 1) / block_bytes;
          for (uint64_t fbi = 0; fbi < std::min<uint64_t>(blocks, ufs::kDirectPtrs); ++fbi) {
            if (inode.direct[fbi] != ufs::kNoAddr) {
              shadow.insert(inode.direct[fbi]);
            }
          }
          if (inode.indirect != ufs::kNoAddr) {
            shadow.insert(inode.indirect);
            disk.PeekMedia(static_cast<simdisk::Lba>(inode.indirect) * block_sectors, table);
            const uint64_t limit =
                std::min<uint64_t>(blocks, ufs::kDirectPtrs + ufs::kPtrsPerBlock);
            for (uint64_t fbi = ufs::kDirectPtrs; fbi < limit; ++fbi) {
              const uint32_t phys =
                  common::LoadLe<uint32_t>(table, (fbi - ufs::kDirectPtrs) * 4);
              if (phys != ufs::kNoAddr) {
                shadow.insert(phys);
              }
            }
          }
        }
      }
      bool shadow_ok = true;
      for (const uint32_t block : shadow) {
        if (fs.space().state(block) != core::BlockState::kLive) {
          report.AddViolation(point,
                              "allocator disagrees with shadow: block " +
                                  std::to_string(block) + " reachable but not live",
                              options.max_violation_details);
          shadow_ok = false;
          break;
        }
      }
      if (shadow_ok && fs.space().live_blocks() != shadow.size()) {
        report.AddViolation(point,
                            "allocator live-block count " +
                                std::to_string(fs.space().live_blocks()) +
                                " != shadow reachable count " + std::to_string(shadow.size()),
                            options.max_violation_details);
      }
    }

    if (options.probe_after_recovery) {
      const std::string probe = "/crashsim-probe";
      std::vector<std::byte> payload(1024, std::byte{0x5A});
      std::vector<std::byte> back(payload.size());
      common::Status st = fs.Create(probe);
      if (st.ok()) {
        st = fs.Write(probe, 0, payload, fs::WritePolicy::kSync);
      }
      if (st.ok()) {
        auto read = fs.Read(probe, 0, back);
        st = read.ok() ? common::OkStatus() : read.status();
        if (st.ok() && (static_cast<size_t>(*read) != back.size() || back != payload)) {
          st = common::Corruption("probe readback mismatch");
        }
      }
      if (!st.ok()) {
        report.AddViolation(point, "post-recovery probe failed: " + st.ToString(),
                            options.max_violation_details);
      }
    }
    scratch = std::move(disk).TakeMedia();
  }
  return report;
}

}  // namespace vlog::crashsim
