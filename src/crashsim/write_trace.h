// Media-write recording for crash-consistency sweeps.
//
// A WriteTrace captures the complete persistence history of one workload run: the media image
// at the moment recording started, plus every subsequent successful write (host or internal)
// in the order the SimDisk committed it. Any crash point's disk image can then be rebuilt
// offline by replaying a prefix of the records over the base image — without re-executing the
// workload — which is what makes sweeping hundreds of crash points cheap.
#ifndef SRC_CRASHSIM_WRITE_TRACE_H_
#define SRC_CRASHSIM_WRITE_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/simdisk/sim_disk.h"

namespace vlog::crashsim {

// One successfully acknowledged write, as observed at the SimDisk. `durable` is false for
// writes acknowledged into a volatile write-back cache — those may be lost or reordered by a
// crash until the next durability barrier.
struct WriteRecord {
  simdisk::Lba lba = 0;  // Member-local LBA (arrays record each member's own address space).
  // Payload bytes, viewing the owning WriteTrace's arena (valid for the trace's lifetime). A
  // span, not a vector: a million-op trace allocates a handful of arena chunks instead of one
  // heap payload per write.
  std::span<const std::byte> data;
  bool durable = true;
  // Which member disk committed the write. 0 for single-disk traces; an array sweep replays
  // each record onto images[disk]. Barrier-delimited epochs still work globally because every
  // member drains its own cache at each commit, so an epoch only ever holds one member's
  // volatile writes.
  uint32_t disk = 0;

  uint64_t Sectors(uint32_t sector_bytes) const { return data.size() / sector_bytes; }
};

class WriteTrace {
 public:
  void set_base(std::vector<std::byte> image) { base_ = std::move(image); }
  const std::vector<std::byte>& base() const { return base_; }

  void Append(simdisk::Lba lba, std::span<const std::byte> data, bool durable = true,
              uint32_t disk = 0) {
    if (records_.empty()) {
      records_.reserve(kInitialRecordCapacity);
    }
    records_.push_back(WriteRecord{lba, ArenaCopy(data), durable, disk});
  }

  // Marks a durability barrier: every record appended so far is on stable media. Recorded at
  // each completed Flush (and capacity-pressure drain). Barrier positions are record counts
  // kept apart from the records themselves, so traces recorded without a write cache are
  // byte-identical to pre-barrier traces.
  void AppendBarrier() {
    if (barriers_.empty() || barriers_.back() != records_.size()) {
      barriers_.push_back(records_.size());
    }
  }
  const std::vector<uint64_t>& barriers() const { return barriers_; }

  // True when the recording device ran a volatile write-back cache, i.e. the reordering crash
  // model applies between barriers.
  void set_write_back(bool write_back) { write_back_ = write_back; }
  bool write_back() const { return write_back_; }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const WriteRecord& operator[](size_t i) const { return records_[i]; }

 private:
  static constexpr size_t kInitialRecordCapacity = 4096;
  static constexpr size_t kArenaChunkBytes = 1 << 20;

  // Copies `data` into the payload arena and returns a view of the stored bytes. Chunks are
  // never reallocated (only new ones appended), so returned spans stay valid for the trace's
  // lifetime; payloads larger than a chunk get a dedicated chunk.
  std::span<const std::byte> ArenaCopy(std::span<const std::byte> data);

  std::vector<std::byte> base_;
  std::vector<WriteRecord> records_;
  std::vector<uint64_t> barriers_;
  std::vector<std::unique_ptr<std::byte[]>> arena_;
  size_t arena_cap_ = 0;   // Capacity of arena_.back().
  size_t arena_used_ = 0;  // Bytes of arena_.back() in use.
  bool write_back_ = false;
};

// Copies the disk's whole media into a byte vector (zero simulated cost).
std::vector<std::byte> SnapshotMedia(const simdisk::SimDisk& disk);

// Applies `record` fully to `image`.
void ApplyWrite(std::vector<std::byte>& image, const WriteRecord& record, uint32_t sector_bytes);

}  // namespace vlog::crashsim

#endif  // SRC_CRASHSIM_WRITE_TRACE_H_
