#include "src/crashsim/scenarios.h"

#include <algorithm>
#include <string>

#include "src/common/rng.h"
#include "src/core/governor.h"
#include "src/lfs/log_disk.h"
#include "src/lfs/simple_fs.h"
#include "src/simdisk/host_model.h"
#include "src/ufs/ufs.h"

namespace vlog::crashsim {
namespace {

constexpr uint32_t kBlockSectors = 8;
constexpr size_t kBlockBytes = kBlockSectors * 512;

// Deterministic, version-tagged block content so stale data is never mistaken for fresh.
std::vector<std::byte> Pattern(uint32_t block, uint32_t version, size_t bytes = kBlockBytes) {
  std::vector<std::byte> data(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::byte>((block * 131u + version * 17u + i) & 0xFF);
  }
  return data;
}

common::Status UfsOnVldWorkload(ShadowVld& dev) {
  simdisk::HostModel host(simdisk::ZeroCostHost(), dev.vld().disk().clock());
  ufs::Ufs fs(&dev, &host, ufs::UfsConfig{.blocks_per_cg = 64, .cache_blocks = 32});
  RETURN_IF_ERROR(fs.Format());
  for (int f = 0; f < 6; ++f) {
    const std::string path = "/f" + std::to_string(f);
    RETURN_IF_ERROR(fs.Create(path));
    RETURN_IF_ERROR(fs.Write(path, 0, Pattern(static_cast<uint32_t>(f), 1, 2 * kBlockBytes),
                             fs::WritePolicy::kSync));
  }
  // Overwrites (update-in-place at the FS level, eager relocation at the VLD level).
  RETURN_IF_ERROR(fs.Write("/f1", 0, Pattern(1, 2, kBlockBytes), fs::WritePolicy::kSync));
  RETURN_IF_ERROR(
      fs.Write("/f3", kBlockBytes, Pattern(3, 2, kBlockBytes), fs::WritePolicy::kSync));
  RETURN_IF_ERROR(fs.Remove("/f0"));
  RETURN_IF_ERROR(fs.Remove("/f4"));
  RETURN_IF_ERROR(fs.Create("/g"));
  RETURN_IF_ERROR(fs.Write("/g", 0, Pattern(40, 1, 3 * kBlockBytes), fs::WritePolicy::kSync));
  RETURN_IF_ERROR(fs.Sync());
  return dev.Park();
}

common::Status CompactorActiveWorkload(ShadowVld& dev) {
  const uint32_t blocks = dev.vld().logical_blocks();
  const uint32_t used = blocks * 2 / 5;
  // Fill a contiguous region so trims punch holes the compactor wants to squeeze out.
  for (uint32_t b = 0; b < used; ++b) {
    RETURN_IF_ERROR(
        dev.Write(static_cast<simdisk::Lba>(b) * kBlockSectors, Pattern(b, 1)));
  }
  RETURN_IF_ERROR(dev.Trim(0, static_cast<uint64_t>(used / 3) * kBlockSectors));
  dev.RunIdle(common::Milliseconds(150));

  // Multi-extent atomic writes over blocks interleaved with trimmed and live ranges.
  common::Rng rng(7);
  for (int round = 0; round < 5; ++round) {
    const uint32_t a = static_cast<uint32_t>(rng.Below(used));
    const uint32_t b = static_cast<uint32_t>(rng.Below(used));
    const uint32_t c = used + static_cast<uint32_t>(rng.Below(blocks - used));
    const auto da = Pattern(a, 10 + static_cast<uint32_t>(round));
    const auto db = Pattern(b, 20 + static_cast<uint32_t>(round));
    const auto dc = Pattern(c, 30 + static_cast<uint32_t>(round));
    const core::Vld::AtomicWrite writes[] = {
        {static_cast<simdisk::Lba>(a) * kBlockSectors, da},
        {static_cast<simdisk::Lba>(b) * kBlockSectors, db},
        {static_cast<simdisk::Lba>(c) * kBlockSectors, dc},
    };
    RETURN_IF_ERROR(dev.WriteAtomic(writes));
    // Interleave trims with the atomic traffic, sometimes hitting just-written blocks.
    if (round % 2 == 0) {
      RETURN_IF_ERROR(dev.Trim(static_cast<simdisk::Lba>(a) * kBlockSectors, kBlockSectors));
    }
  }
  dev.RunIdle(common::Milliseconds(150));
  for (uint32_t b = used / 3; b < used / 3 + 8; ++b) {
    RETURN_IF_ERROR(
        dev.Write(static_cast<simdisk::Lba>(b) * kBlockSectors, Pattern(b, 99)));
  }
  return common::OkStatus();  // No park: every recovery takes the scan path.
}

// Duty-cycled compaction under foreground load (the governed-burst path): queued group-commit
// batches interleave with bounded compaction bursts small enough to stop mid-track, so crash
// points land inside a burst's checkpoint, between its relocations, at the preemption cut
// itself, and in the packed map commits of the surrounding batches. Recovery must see every
// acknowledged batch all-old-or-all-new regardless of how much of a burst persisted.
common::Status CompactionUnderLoadWorkload(ShadowVld& dev) {
  const uint32_t blocks = dev.vld().logical_blocks();
  const uint32_t used = blocks * 3 / 5;
  for (uint32_t b = 0; b < used; ++b) {
    RETURN_IF_ERROR(dev.Write(static_cast<simdisk::Lba>(b) * kBlockSectors, Pattern(b, 1)));
  }
  // Trims punch holes so the governor has real compaction debt from the first grant.
  RETURN_IF_ERROR(dev.Trim(0, static_cast<uint64_t>(used / 3) * kBlockSectors));
  core::GovernorConfig config;
  config.max_burst = common::Milliseconds(8);
  config.min_burst = common::Microseconds(500);
  // The truncated disk's trimmed region leaves the default empty-track target satisfied, which
  // would idle the governor; aim far above it so every round's grant path stays live and the
  // sweep actually covers bursts.
  config.target_empty_tracks = 64;
  core::CompactionGovernor governor(&dev.vld(), /*timeline=*/nullptr, config);
  common::Rng rng(29);
  uint32_t version = 2;
  for (int round = 0; round < 6; ++round) {
    const size_t depth = 1 + rng.Below(6);
    std::vector<std::vector<std::byte>> payloads;
    payloads.reserve(depth);
    std::vector<core::Vld::AtomicWrite> writes;
    writes.reserve(depth);
    for (size_t i = 0; i < depth; ++i) {
      const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
      payloads.push_back(Pattern(b, version));
      writes.push_back(core::Vld::AtomicWrite{static_cast<simdisk::Lba>(b) * kBlockSectors,
                                              payloads.back()});
    }
    RETURN_IF_ERROR(dev.WriteQueuedBatch(writes));
    ++version;
    // Alternate trough-shaped grants (idle hint: the whole gap) with credit-shaped ones, the
    // two grant paths the governor exposes; route the burst through the shadow so its media
    // writes are attributed to the burst op, not the next batch. The hint is sized to survive
    // the burst's leading checkpoint and start a victim track without finishing it, so the
    // mid-track preemption cut is part of the recorded trace.
    const common::Duration hint = round % 2 == 0 ? common::Milliseconds(60) : 0;
    const common::Duration grant = governor.Grant(hint);
    if (grant > 0) {
      dev.RunGovernedBurst(grant, config.target_empty_tracks);
    }
    if (round % 3 == 1) {
      RETURN_IF_ERROR(dev.Trim(static_cast<simdisk::Lba>(used / 2) * kBlockSectors,
                               static_cast<uint64_t>(4) * kBlockSectors));
    }
  }
  // Self-check the coverage claims: the sweep is only exercising the governed path if bursts
  // were actually granted and at least one stopped mid-track.
  if (governor.stats().granted_ns <= 0) {
    return common::InvalidArgument("scenario granted no governed bursts");
  }
  if (dev.vld().compactor().stats().bursts_preempted == 0) {
    const auto& cs = dev.vld().compactor().stats();
    return common::InvalidArgument(
        "scenario never preempted a burst mid-track: bursts=" +
        std::to_string(governor.stats().bursts) +
        " granted_ns=" + std::to_string(governor.stats().granted_ns) +
        " tracks_compacted=" + std::to_string(cs.tracks_compacted) +
        " moved=" + std::to_string(cs.data_blocks_moved));
  }
  return common::OkStatus();  // No park: every recovery takes the scan path.
}

common::Status CheckpointInterruptedWorkload(ShadowVld& dev) {
  const uint32_t blocks = dev.vld().logical_blocks();
  uint32_t version = 1;
  for (uint32_t b = 0; b < 30; ++b) {
    RETURN_IF_ERROR(
        dev.Write(static_cast<simdisk::Lba>(b) * kBlockSectors, Pattern(b, version)));
  }
  RETURN_IF_ERROR(dev.Checkpoint());
  ++version;
  for (uint32_t b = 10; b < 25; ++b) {
    RETURN_IF_ERROR(
        dev.Write(static_cast<simdisk::Lba>(b) * kBlockSectors, Pattern(b, version)));
  }
  RETURN_IF_ERROR(dev.Checkpoint());
  RETURN_IF_ERROR(dev.Trim(0, static_cast<uint64_t>(8) * kBlockSectors));
  RETURN_IF_ERROR(dev.Checkpoint());
  ++version;
  for (uint32_t b = blocks - 6; b < blocks; ++b) {
    RETURN_IF_ERROR(
        dev.Write(static_cast<simdisk::Lba>(b) * kBlockSectors, Pattern(b, version)));
  }
  return dev.Park();
}

common::Status QueuedGroupCommitWorkload(ShadowVld& dev) {
  const uint32_t blocks = dev.vld().logical_blocks();
  // Base content so the queued updates overwrite live blocks (the recovery-relevant case:
  // all-old must expose the previous version, not zeros).
  for (uint32_t b = 0; b < 24; ++b) {
    RETURN_IF_ERROR(dev.Write(static_cast<simdisk::Lba>(b) * kBlockSectors, Pattern(b, 1)));
  }
  // Batches of random-update queued writes at varying depths: each batch's map entries commit
  // in one packed multi-sector transaction, so crash points land inside packed map writes.
  common::Rng rng(11);
  uint32_t version = 2;
  for (int round = 0; round < 6; ++round) {
    const size_t depth = 1 + rng.Below(8);
    std::vector<std::vector<std::byte>> payloads;
    payloads.reserve(depth);
    std::vector<core::Vld::AtomicWrite> writes;
    writes.reserve(depth);
    for (size_t i = 0; i < depth; ++i) {
      // Random updates over the whole logical space so one batch's map entries usually span
      // several pieces — that is what makes the packed commit a multi-sector (tearable) write.
      const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
      payloads.push_back(Pattern(b, version));
      writes.push_back(core::Vld::AtomicWrite{static_cast<simdisk::Lba>(b) * kBlockSectors,
                                              payloads.back()});
    }
    RETURN_IF_ERROR(dev.WriteQueuedBatch(writes));
    ++version;
  }
  // A trim and one more deep batch, then park so the sweep also covers tail recoveries over
  // packed blocks.
  RETURN_IF_ERROR(dev.Trim(0, static_cast<uint64_t>(4) * kBlockSectors));
  {
    std::vector<std::vector<std::byte>> payloads;
    std::vector<core::Vld::AtomicWrite> writes;
    for (uint32_t i = 0; i < 12; ++i) {
      // Stride the deep batch across the logical space: 12 updates in 12 different pieces,
      // guaranteeing the packed commit spans multiple physical blocks.
      const uint32_t b = (i * (blocks / 12)) % blocks;
      payloads.push_back(Pattern(b, version));
      writes.push_back(core::Vld::AtomicWrite{static_cast<simdisk::Lba>(b) * kBlockSectors,
                                              payloads.back()});
    }
    RETURN_IF_ERROR(dev.WriteQueuedBatch(writes));
  }
  return dev.Park();
}

common::Status QueuedMixedReadWriteWorkload(ShadowVld& dev) {
  const uint32_t blocks = dev.vld().logical_blocks();
  // Base content: reads of mapped blocks must see real prior versions, not zeros.
  for (uint32_t b = 0; b < 24; ++b) {
    RETURN_IF_ERROR(dev.Write(static_cast<simdisk::Lba>(b) * kBlockSectors, Pattern(b, 1)));
  }
  common::Rng rng(13);
  uint32_t version = 2;
  for (int round = 0; round < 6; ++round) {
    // Writes and reads interleave 1:1 through one FlushQueue. Read i targets write i's block
    // every other slot (a guaranteed same-batch RAW that must be served from the pending
    // payload), otherwise a random block — occasionally unmapped, which must read as zeros.
    const size_t depth = 2 + rng.Below(6);  // depth writes + depth reads <= queue_depth 16.
    std::vector<std::vector<std::byte>> payloads;
    payloads.reserve(depth);
    std::vector<core::Vld::AtomicWrite> writes;
    writes.reserve(depth);
    std::vector<uint32_t> read_blocks;
    read_blocks.reserve(depth);
    for (size_t i = 0; i < depth; ++i) {
      const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
      payloads.push_back(Pattern(b, version));
      writes.push_back(core::Vld::AtomicWrite{static_cast<simdisk::Lba>(b) * kBlockSectors,
                                              payloads.back()});
      read_blocks.push_back(i % 2 == 0 ? b : static_cast<uint32_t>(rng.Below(blocks)));
    }
    RETURN_IF_ERROR(dev.QueuedMixedBatch(writes, read_blocks));
    ++version;
  }
  // A read-only batch: commits nothing, and QueuedMixedBatch fails the recording if it emits
  // any media write — the direct "reads never dirty state" check.
  {
    std::vector<uint32_t> read_blocks;
    for (uint32_t i = 0; i < 8; ++i) {
      read_blocks.push_back(static_cast<uint32_t>(rng.Below(blocks)));
    }
    RETURN_IF_ERROR(dev.QueuedMixedBatch({}, read_blocks));
  }
  // Trim then mix reads of the trimmed (now unmapped) blocks with fresh writes, and park so
  // the sweep covers tail recoveries too.
  RETURN_IF_ERROR(dev.Trim(0, static_cast<uint64_t>(4) * kBlockSectors));
  {
    std::vector<std::vector<std::byte>> payloads;
    std::vector<core::Vld::AtomicWrite> writes;
    std::vector<uint32_t> read_blocks;
    for (uint32_t i = 0; i < 6; ++i) {
      const uint32_t b = 8 + i * (blocks / 8) % (blocks - 8);
      payloads.push_back(Pattern(b, version));
      writes.push_back(core::Vld::AtomicWrite{static_cast<simdisk::Lba>(b) * kBlockSectors,
                                              payloads.back()});
      read_blocks.push_back(i < 4 ? i : b);  // Blocks 0..3 were just trimmed: expect zeros.
    }
    RETURN_IF_ERROR(dev.QueuedMixedBatch(writes, read_blocks));
  }
  return dev.Park();
}

// Striped array: base fill, then queued multi-block batches whose blocks scatter across both
// members (cross-disk group commit: one packed map transaction per member per batch), then a
// sync overwrite and record-time read checks. No park, so every recovery scans.
common::Status StripedArrayWorkload(ArrayCrashSim::Workload& w) {
  const uint32_t blocks = w.array_blocks();
  const uint32_t block_sectors = w.block_sectors();
  for (uint32_t b = 0; b < 12; ++b) {
    RETURN_IF_ERROR(w.WriteBlock(b, Pattern(b, 1)));
  }
  common::Rng rng(17);
  uint32_t version = 2;
  for (int round = 0; round < 4; ++round) {
    const size_t depth = 2 + rng.Below(5);
    std::vector<uint32_t> chosen;
    std::vector<std::vector<std::byte>> payloads;
    std::vector<core::Vld::AtomicWrite> writes;
    payloads.reserve(depth);
    writes.reserve(depth);
    while (chosen.size() < depth) {
      // Unique random blocks over the whole array space, so one batch usually lands runs on
      // both members and on several map pieces per member.
      const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
      if (std::find(chosen.begin(), chosen.end(), b) != chosen.end()) {
        continue;
      }
      chosen.push_back(b);
      payloads.push_back(Pattern(b, version));
      writes.push_back(core::Vld::AtomicWrite{static_cast<simdisk::Lba>(b) * block_sectors,
                                              payloads.back()});
    }
    RETURN_IF_ERROR(w.QueuedBatch(writes));
    ++version;
  }
  RETURN_IF_ERROR(w.WriteBlock(3, Pattern(3, 90)));
  RETURN_IF_ERROR(w.ReadVerify(0));
  return w.ReadVerify(3);
}

// Mirrored array: every write fans to both replicas; crash points that cut between the two
// member commits leave one replica ahead, which stitched recovery must resync.
common::Status MirroredArrayWorkload(ArrayCrashSim::Workload& w) {
  const uint32_t blocks = w.array_blocks();
  const uint32_t block_sectors = w.block_sectors();
  for (uint32_t b = 0; b < 8; ++b) {
    RETURN_IF_ERROR(w.WriteBlock(b, Pattern(b, 1)));
  }
  common::Rng rng(23);
  uint32_t version = 2;
  for (int round = 0; round < 3; ++round) {
    const size_t depth = 2 + rng.Below(3);
    std::vector<uint32_t> chosen;
    std::vector<std::vector<std::byte>> payloads;
    std::vector<core::Vld::AtomicWrite> writes;
    payloads.reserve(depth);
    writes.reserve(depth);
    while (chosen.size() < depth) {
      const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
      if (std::find(chosen.begin(), chosen.end(), b) != chosen.end()) {
        continue;
      }
      chosen.push_back(b);
      payloads.push_back(Pattern(b, version));
      writes.push_back(core::Vld::AtomicWrite{static_cast<simdisk::Lba>(b) * block_sectors,
                                              payloads.back()});
    }
    RETURN_IF_ERROR(w.QueuedBatch(writes));
    ++version;
  }
  // Overwrite a base block (the resync-relevant case: a lagging replica must roll forward to
  // this version, not back to version 1) and a fresh block.
  RETURN_IF_ERROR(w.WriteBlock(1, Pattern(1, 50)));
  RETURN_IF_ERROR(w.WriteBlock(blocks - 1, Pattern(blocks - 1, 51)));
  RETURN_IF_ERROR(w.ReadVerify(1));
  return w.ReadVerify(blocks - 1);
}

common::Status LfsOnVldWorkload(ShadowVld& dev) {
  simdisk::HostModel host(simdisk::ZeroCostHost(), dev.vld().disk().clock());
  // Small segments and caches so the truncated disk sees several sealed-segment writes plus
  // cleaning — every one a multi-block device write the VLD must keep atomic.
  lfs::LogStructuredDisk lld(&dev, lfs::LldConfig{.segment_blocks = 16,
                                                  .reserve_segments = 2,
                                                  .min_free_segments = 1,
                                                  .idle_clean_target = 3});
  RETURN_IF_ERROR(lld.Format());
  lfs::SimpleFs fs(&lld, &host,
                   lfs::SimpleFsConfig{.cache_blocks = 16, .cache_is_nvram = false,
                                       .inode_blocks = 4});
  RETURN_IF_ERROR(fs.Format());
  for (int f = 0; f < 4; ++f) {
    const std::string path = "/lfs" + std::to_string(f);
    RETURN_IF_ERROR(fs.Create(path));
    RETURN_IF_ERROR(fs.Write(path, 0, Pattern(static_cast<uint32_t>(f), 1, 2 * kBlockBytes),
                             fs::WritePolicy::kAsync));
  }
  RETURN_IF_ERROR(fs.Sync());
  // Overwrites and a remove churn the log so the cleaner has work.
  RETURN_IF_ERROR(fs.Write("/lfs1", 0, Pattern(1, 2, kBlockBytes), fs::WritePolicy::kSync));
  RETURN_IF_ERROR(fs.Remove("/lfs0"));
  RETURN_IF_ERROR(fs.Sync());
  common::Clock* clock = dev.vld().disk().clock();
  RETURN_IF_ERROR(lld.CleanDuringIdle(clock->Now() + common::Milliseconds(80), clock));
  RETURN_IF_ERROR(fs.Write("/lfs2", kBlockBytes, Pattern(2, 3, kBlockBytes),
                           fs::WritePolicy::kSync));
  RETURN_IF_ERROR(fs.Sync());
  return dev.Park();
}

// NVM-stage-focused traffic (run with VldCrashSim::EnableStage): staged sync bursts, direct
// writes and trims overlapping staged blocks (conflict destage + invalidate), duty-cycled
// destage pumps, queued batches whose submits and reads cross staged blocks, and a staged
// tail with NO final drain — the last crash points must recover acked writes whose only copy
// is the NVM log.
common::Status NvmStagedWritesWorkload(ShadowVld& dev) {
  const uint32_t blocks = dev.vld().logical_blocks();
  common::Rng rng(31);
  uint32_t version = 1;
  // Base fill: small single-block writes, all absorbed by the stage.
  for (uint32_t b = 0; b < 16; ++b) {
    RETURN_IF_ERROR(dev.Write(static_cast<simdisk::Lba>(b) * kBlockSectors, Pattern(b, 1)));
  }
  for (int round = 0; round < 5; ++round) {
    ++version;
    for (int i = 0; i < 6; ++i) {
      const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
      RETURN_IF_ERROR(
          dev.Write(static_cast<simdisk::Lba>(b) * kBlockSectors, Pattern(b, version)));
    }
    // A two-block write exceeds the staging threshold: it goes direct and must invalidate any
    // staged copy it overlaps.
    const uint32_t c = static_cast<uint32_t>(rng.Below(blocks - 2));
    RETURN_IF_ERROR(dev.Write(static_cast<simdisk::Lba>(c) * kBlockSectors,
                              Pattern(c, version, 2 * kBlockBytes)));
    RETURN_IF_ERROR(dev.PumpDestage(common::Milliseconds(2)));
    if (round % 2 == 0) {
      const uint32_t t = static_cast<uint32_t>(rng.Below(blocks - 2));
      RETURN_IF_ERROR(dev.Trim(static_cast<simdisk::Lba>(t) * kBlockSectors,
                               static_cast<uint64_t>(2) * kBlockSectors));
    }
  }
  // A queued mixed batch whose submits and reads cross staged blocks (submit-time conflict
  // destages), group-committed through the stage's passthrough.
  {
    ++version;
    std::vector<std::vector<std::byte>> payloads;
    std::vector<core::Vld::AtomicWrite> writes;
    std::vector<uint32_t> read_blocks;
    for (uint32_t i = 0; i < 4; ++i) {
      const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
      payloads.push_back(Pattern(b, version));
      writes.push_back(core::Vld::AtomicWrite{static_cast<simdisk::Lba>(b) * kBlockSectors,
                                              payloads.back()});
      read_blocks.push_back(i % 2 == 0 ? b : static_cast<uint32_t>(rng.Below(blocks)));
    }
    RETURN_IF_ERROR(dev.QueuedMixedBatch(writes, read_blocks));
  }
  RETURN_IF_ERROR(dev.DrainStage());
  // Staged residue: acked writes whose only copy is the NVM log when the trace ends. No park,
  // no drain — the sweep's tail points must replay them.
  for (uint32_t i = 0; i < 4; ++i) {
    const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
    RETURN_IF_ERROR(
        dev.Write(static_cast<simdisk::Lba>(b) * kBlockSectors, Pattern(b, 200 + i)));
  }
  return common::OkStatus();
}

}  // namespace

const char* VldScenarioName(VldScenario scenario) {
  switch (scenario) {
    case VldScenario::kUfsOnVld:
      return "ufs-on-vld";
    case VldScenario::kCompactorActive:
      return "compactor-active";
    case VldScenario::kCompactionUnderLoad:
      return "compaction-under-load";
    case VldScenario::kCheckpointInterrupted:
      return "checkpoint-interrupted";
    case VldScenario::kQueuedGroupCommit:
      return "queued-group-commit";
    case VldScenario::kQueuedMixedReadWrite:
      return "queued-mixed-read-write";
    case VldScenario::kLfsOnVld:
      return "lfs-on-vld";
    case VldScenario::kNvmStagedWrites:
      return "nvm-staged-writes";
  }
  return "?";
}

simdisk::DiskParams CrashSimDiskParams() {
  return simdisk::Truncated(simdisk::Hp97560(), 3);
}

simdisk::DiskParams CrashSimCachedDiskParams() {
  simdisk::DiskParams params = CrashSimDiskParams();
  params.cache.capacity_sectors = 1024;
  return params;
}

core::VldConfig CrashSimVldConfig() {
  // queue_depth 16 lets the queued scenario record batches deeper than the default 8.
  return core::VldConfig{.block_sectors = kBlockSectors, .queue_depth = 16};
}

vlfs::VlfsConfig CrashSimVlfsConfig() {
  return vlfs::VlfsConfig{};
}

simdisk::NvmDeviceParams CrashSimNvmParams() {
  simdisk::NvmDeviceParams params;
  params.size_bytes = 256 * 1024;
  return params;
}

core::NvmStageConfig CrashSimNvmStageConfig() {
  // Threshold = the scenarios' block size, so single-block sync writes stage and multi-block
  // writes exercise the direct/conflict path.
  return core::NvmStageConfig{.stage_threshold_sectors = kBlockSectors,
                              .destage_batch_records = 4};
}

common::Status RecordVldScenario(VldScenario scenario, VldCrashSim& sim) {
  switch (scenario) {
    case VldScenario::kUfsOnVld:
      return sim.Record(UfsOnVldWorkload);
    case VldScenario::kCompactorActive:
      return sim.Record(CompactorActiveWorkload);
    case VldScenario::kCompactionUnderLoad:
      return sim.Record(CompactionUnderLoadWorkload);
    case VldScenario::kCheckpointInterrupted:
      return sim.Record(CheckpointInterruptedWorkload);
    case VldScenario::kQueuedGroupCommit:
      return sim.Record(QueuedGroupCommitWorkload);
    case VldScenario::kQueuedMixedReadWrite:
      return sim.Record(QueuedMixedReadWriteWorkload);
    case VldScenario::kLfsOnVld:
      return sim.Record(LfsOnVldWorkload);
    case VldScenario::kNvmStagedWrites:
      return sim.Record(NvmStagedWritesWorkload);
  }
  return common::InvalidArgument("unknown scenario");
}

const char* ArrayScenarioName(ArrayScenario scenario) {
  switch (scenario) {
    case ArrayScenario::kStripedGroupCommit:
      return "striped-group-commit";
    case ArrayScenario::kMirroredResync:
      return "mirrored-resync";
  }
  return "?";
}

array::VldArrayConfig CrashSimStripedArrayConfig() {
  return array::VldArrayConfig{.mode = array::ArrayMode::kStriped, .stripe_blocks = 2};
}

array::VldArrayConfig CrashSimMirroredArrayConfig() {
  return array::VldArrayConfig{.mode = array::ArrayMode::kMirrored};
}

common::Status RecordArrayScenario(ArrayScenario scenario, ArrayCrashSim& sim) {
  switch (scenario) {
    case ArrayScenario::kStripedGroupCommit:
      return sim.Record(StripedArrayWorkload);
    case ArrayScenario::kMirroredResync:
      return sim.Record(MirroredArrayWorkload);
  }
  return common::InvalidArgument("unknown array scenario");
}

std::vector<VlfsOp> VlfsScenarioScript() {
  std::vector<VlfsOp> script;
  auto op = [&](VlfsOp::Kind kind, std::string path = {}) {
    VlfsOp o;
    o.kind = kind;
    o.path = std::move(path);
    script.push_back(std::move(o));
  };
  auto write = [&](std::string path, uint64_t offset, uint32_t tag, size_t bytes) {
    VlfsOp o;
    o.kind = VlfsOp::Kind::kWriteSync;
    o.path = std::move(path);
    o.offset = offset;
    o.data = Pattern(tag, static_cast<uint32_t>(offset / 512 + 1), bytes);
    script.push_back(std::move(o));
  };
  op(VlfsOp::Kind::kMkdir, "/d");
  op(VlfsOp::Kind::kCreate, "/a");
  write("/a", 0, 1, 2 * kBlockBytes);
  op(VlfsOp::Kind::kCreate, "/d/b");
  write("/d/b", 0, 2, kBlockBytes);
  op(VlfsOp::Kind::kCreate, "/c");
  write("/c", 0, 3, 1536);  // Sub-block tail.
  write("/a", kBlockBytes, 1, kBlockBytes);  // Overwrite the middle of /a.
  op(VlfsOp::Kind::kRemove, "/c");
  op(VlfsOp::Kind::kCheckpoint);
  write("/d/b", kBlockBytes, 2, kBlockBytes);  // Extend after the checkpoint.
  {
    VlfsOp idle;
    idle.kind = VlfsOp::Kind::kIdle;
    idle.idle_budget = common::Milliseconds(100);
    script.push_back(std::move(idle));
  }
  op(VlfsOp::Kind::kCreate, "/d/e");
  write("/d/e", 0, 4, kBlockBytes);
  op(VlfsOp::Kind::kRemove, "/d/b");
  write("/a", 0, 5, kBlockBytes);  // Overwrite the head of /a once more.
  op(VlfsOp::Kind::kPark);
  return script;
}

}  // namespace vlog::crashsim
