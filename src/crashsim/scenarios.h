// Canned crash-consistency workloads, shared by tests/crashsim_test.cc and
// bench/bench_crashsim.cpp.
//
// All scenarios run on a small truncated HP 97560 so that full-disk scan recoveries (the
// common case when the crash precedes any park) stay cheap enough to sweep hundreds of crash
// points. Each scenario stresses a different recovery surface:
//   kUfsOnVld:              an unmodified FFS-style file system generating real mixed traffic
//                           (metadata, data, directory updates) through the device interface;
//   kCompactorActive:       direct device traffic with trims, multi-extent atomic writes, and
//                           idle-time compaction moving both data and map blocks;
//   kCompactionUnderLoad:   queued group-commit batches interleaved with governed compaction
//                           bursts bounded tightly enough to stop mid-track, so crash points
//                           cut bursts at their checkpoint, between relocations, and at the
//                           preemption boundary itself;
//   kCheckpointInterrupted: repeated checkpoints so crash points land inside the multi-sector
//                           checkpoint-region writes themselves, plus a final park.
//   kQueuedGroupCommit:     batches of queued writes whose map entries land in single packed
//                           group-commit transactions, so crash points tear multi-sector map
//                           writes; each batch must recover all-old-or-all-new;
//   kQueuedMixedReadWrite:  queued reads interleaved with queued writes through the shared
//                           request queue (SPTF service order, same-batch RAW forwarding,
//                           reads of unmapped blocks); reads are verified at record time and
//                           recorded as nothing, so the sweep doubles as proof that read
//                           traffic never dirties crash-visible state;
//   kLfsOnVld:              the §4.4 LFS stack (log-structured logical disk + MinixUFS-style
//                           fs) mounted on the VLD, so multi-block segment writes are the
//                           device traffic being crash-swept.
// The VLFS scenario exercises file-level recovery: namespace ops, sync writes, checkpoint,
// idle compaction, and park.
//
// The array scenarios run the same traffic shapes through a 2-member VldArray (striped with a
// 2-block stripe unit so batches span both members, or mirrored), on the direct disk for torn
// per-member crash points and on the cached disk for reordered mid-destage subsets.
#ifndef SRC_CRASHSIM_SCENARIOS_H_
#define SRC_CRASHSIM_SCENARIOS_H_

#include "src/crashsim/array_harness.h"
#include "src/crashsim/harness.h"
#include "src/simdisk/disk_params.h"

namespace vlog::crashsim {

enum class VldScenario {
  kUfsOnVld,
  kCompactorActive,
  kCompactionUnderLoad,
  kCheckpointInterrupted,
  kQueuedGroupCommit,
  kQueuedMixedReadWrite,
  kLfsOnVld,
  // NVM-stage-focused traffic: bursts of small staged sync writes, overlapping direct writes
  // and trims (the conflict/invalidate protocol), duty-cycled destage pumps, queued batches
  // over staged blocks, and a staged-residue tail so crash points land with acked writes whose
  // ONLY copy is the NVM log. Meaningful only with VldCrashSim::EnableStage; without a stage
  // the destage pumps are no-ops and it degenerates to plain sync traffic.
  kNvmStagedWrites,
};

const char* VldScenarioName(VldScenario scenario);

// The common small disk and device configs the scenarios run on.
simdisk::DiskParams CrashSimDiskParams();
// Same disk with a volatile write-back cache enabled, for the reordering crash sweeps. The
// capacity is deliberately generous so the workload never triggers a pressure drain: a drain
// would act as an extra barrier, silently shrinking the reorderable windows under test.
simdisk::DiskParams CrashSimCachedDiskParams();
core::VldConfig CrashSimVldConfig();
vlfs::VlfsConfig CrashSimVlfsConfig();
// The NVM staging tier the staged sweeps layer over the Vld (any scenario can run with it via
// VldCrashSim::EnableStage). 256 KiB keeps overflow drains in play for the fill-heavy
// scenarios without making them the only destage path.
simdisk::NvmDeviceParams CrashSimNvmParams();
core::NvmStageConfig CrashSimNvmStageConfig();

// Records the scenario's workload into `sim` (which must be freshly constructed).
common::Status RecordVldScenario(VldScenario scenario, VldCrashSim& sim);

// The scripted VLFS workload.
std::vector<VlfsOp> VlfsScenarioScript();

// --- Array scenarios ---

enum class ArrayScenario {
  kStripedGroupCommit,  // Queued batches spanning both members: cross-disk group commit.
  kMirroredResync,      // Mirrored writes; recovery must resync replicas that crashed mid-op.
};

const char* ArrayScenarioName(ArrayScenario scenario);

// 2-member array configs. The striped unit is 2 blocks so multi-block batches regularly
// straddle the member boundary (that is the cross-disk case under test).
array::VldArrayConfig CrashSimStripedArrayConfig();
array::VldArrayConfig CrashSimMirroredArrayConfig();

// Records the scenario's workload into `sim` (which must be freshly constructed with a
// matching mode: striped for kStripedGroupCommit, mirrored for kMirroredResync).
common::Status RecordArrayScenario(ArrayScenario scenario, ArrayCrashSim& sim);

}  // namespace vlog::crashsim

#endif  // SRC_CRASHSIM_SCENARIOS_H_
