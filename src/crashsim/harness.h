// The crash-consistency harness: record a workload once, then sweep every enumerated crash
// point — rebuild the media image, run recovery on a fresh instance, and check machine-readable
// invariants against the shadow model.
//
// Invariants checked at every crash point (VLD level):
//   1. Recovery succeeds (a crash must never make the device unrecoverable).
//   2. Every acknowledged write is readable with its exact acknowledged contents; blocks the
//      in-flight command touched read back either all-old or all-new (atomic commit).
//   3. No two logical blocks map to the same physical block.
//   4. Free-space accounting matches the recovered map: live blocks = mapped data blocks +
//      live map-piece blocks + pinned map blocks.
//   5. The recovered device still works: a probe write/read round-trips (allocator sanity).
// At the VLFS level the shadow model is a path -> (type, contents) map and the same
// all-or-nothing rule applies to the file-level operation in flight.
#ifndef SRC_CRASHSIM_HARNESS_H_
#define SRC_CRASHSIM_HARNESS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/core/vld.h"
#include "src/crashsim/crash_point.h"
#include "src/crashsim/nvm_trace.h"
#include "src/crashsim/shadow_vld.h"
#include "src/crashsim/write_trace.h"
#include "src/nvm/nvm_stage.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/nvm_device.h"
#include "src/vlfs/vlfs.h"

namespace vlog::crashsim {

struct CrashSweepOptions {
  EnumerateOptions enumerate;
  // Reordering model for write-back traces (ignored when the trace was recorded without a
  // volatile cache). reorder.seed and enumerate.seed are usually set together from one
  // --seed= value so a failure replays exactly.
  ReorderOptions reorder;
  // After each recovery, write/read one probe block through the recovered instance to
  // smoke-test allocator and map consistency.
  bool probe_after_recovery = true;
  size_t max_violation_details = 8;
  // Replay mode: when >= 0, the sweep still reconstructs its rolling state over every point
  // (ordinals and images are deterministic) but runs recovery and the invariant checks only at
  // the point with this ordinal — the (seed, ordinal) pair a failure message prints.
  int64_t only_ordinal = -1;
  // Worker threads for the sweep. Every crash point's image and seed are fixed at enumeration
  // time, so points shard across workers by contiguous ordinal range and the merged report is
  // byte-identical to workers=1 at any count. 0 means hardware_concurrency.
  uint32_t workers = 1;
};

struct CrashSweepReport {
  uint64_t points = 0;
  uint64_t clean_points = 0;
  uint64_t torn_points = 0;  // Torn prefix/suffix/random variants.
  uint64_t corrupt_points = 0;
  uint64_t reorder_points = 0;  // Write-back destage subset/order variants.
  // Staged sweeps only: points where the NVM stage replayed an intact image, and synthesized
  // torn-NVM-tail variants checked on top of clean points.
  uint64_t nvm_points = 0;
  uint64_t nvm_torn_points = 0;
  uint64_t seed = 1;            // Echo of the sweep's base seed, for replay instructions.

  uint64_t violations = 0;
  std::vector<std::string> violation_details;  // First few, for diagnosis.
  int64_t first_violation_ordinal = -1;        // Ordinal of the first violating point.

  uint64_t park_recoveries = 0;
  uint64_t scan_recoveries = 0;
  uint64_t checkpoint_recoveries = 0;   // Recoveries seeded (partly) from a checkpoint.
  uint64_t rolled_back_recoveries = 0;  // Recoveries that discarded a torn transaction.
  uint64_t repaired_pieces = 0;
  std::vector<common::Duration> recovery_times;  // Simulated time, one entry per crash point.

  bool ok() const { return violations == 0; }
  void AddViolation(const CrashPoint& point, const std::string& what, size_t max_details);
  // Human-readable one-paragraph summary (for test failure messages and the bench).
  std::string Summary() const;
};

// Shared by every sweep implementation (single-disk, VLFS, array): regular prefix/torn points
// plus (for write-back traces) reorder points, merged into one list ordered by writes_applied,
// with stable per-sweep ordinals — the ordinal a replay names via --point=.
std::vector<CrashPoint> AllCrashPoints(const WriteTrace& trace, uint32_t sector_bytes,
                                       const CrashSweepOptions& options);
// "crash point #<ordinal> n=<writes> kind=..." — the prefix AddViolation puts on details.
std::string CrashPointName(const CrashPoint& point);

// Resolves CrashSweepOptions.workers: 0 means hardware concurrency, and the result is clamped
// to [1, points] (a shard with no points would be pure overhead).
uint32_t ResolveSweepWorkers(uint32_t requested, size_t points);

// Runs `sweep_range(begin, end)` over `workers` contiguous ordinal ranges covering
// [0, points), one range per thread, and merges the per-range reports in range order. Every
// crash point's variant seed, ordinal, and image are fixed at enumeration time and each range
// rebuilds its own rolling state from the trace base, so the merged report — counters,
// violation details, recovery times, Summary() text — is byte-identical to a single serial
// range at any worker count.
CrashSweepReport RunShardedSweep(
    size_t points, uint64_t seed, const CrashSweepOptions& options,
    const std::function<CrashSweepReport(size_t, size_t)>& sweep_range);

// Device-level harness: a workload drives a ShadowVld; the sweep replays its media history.
class VldCrashSim {
 public:
  VldCrashSim(simdisk::DiskParams params, core::VldConfig config);

  // Layers an NVM staging tier over the Vld for the recording AND the sweep. Call before
  // Record. The sweep then runs the full crash-state matrix: at every disk crash point the
  // exact NVM image at that cut is reconstructed and the stage recovered over the recovered
  // Vld (invariant 2 reads THROUGH the stage, so acked-in-NVM writes must survive), and on
  // top of clean points whose final NVM append coincides with the cut, torn-NVM-tail variants
  // are synthesized at cache-line granularity and checked too.
  void EnableStage(core::NvmStageConfig stage_config, simdisk::NvmDeviceParams nvm_params);

  // Formats a fresh VLD, attaches the recorder, and runs `workload`. Call once.
  common::Status Record(const std::function<common::Status(ShadowVld&)>& workload);

  CrashSweepReport Sweep(const CrashSweepOptions& options) const;

  const WriteTrace& trace() const { return trace_; }
  const NvmTrace& nvm_trace() const { return nvm_trace_; }
  const std::vector<ShadowVld::Op>& ops() const { return ops_; }

 private:
  // The serial sweep over points[begin, end): rebuilds its rolling state from the trace base
  // (the first iteration's catch-up loop), so ranges are independent and thread-safe.
  CrashSweepReport SweepRange(const std::vector<CrashPoint>& points, size_t begin, size_t end,
                              const CrashSweepOptions& options) const;

  simdisk::DiskParams params_;
  core::VldConfig config_;
  WriteTrace trace_;
  std::vector<ShadowVld::Op> ops_;
  uint32_t logical_blocks_ = 0;
  uint32_t block_bytes_ = 0;

  bool staged_ = false;
  core::NvmStageConfig stage_config_;
  simdisk::NvmDeviceParams nvm_params_;
  NvmTrace nvm_trace_;
};

// One scripted VLFS operation. All mutating ops are synchronous, so each is committed (or not)
// as a unit — which is exactly what the sweep's shadow model checks.
struct VlfsOp {
  enum class Kind { kCreate, kMkdir, kRemove, kWriteSync, kCheckpoint, kIdle, kPark };
  Kind kind = Kind::kCreate;
  std::string path;        // Target for kCreate/kMkdir/kRemove/kWriteSync.
  uint64_t offset = 0;     // kWriteSync.
  std::vector<std::byte> data;  // kWriteSync.
  common::Duration idle_budget = 0;  // kIdle.
};

// File-system-level harness over Vlfs::Recover().
class VlfsCrashSim {
 public:
  VlfsCrashSim(simdisk::DiskParams params, vlfs::VlfsConfig config);

  common::Status Record(const std::vector<VlfsOp>& script);

  CrashSweepReport Sweep(const CrashSweepOptions& options) const;

  const WriteTrace& trace() const { return trace_; }

 private:
  struct FileState {
    bool is_dir = false;
    std::vector<std::byte> content;
  };

  CrashSweepReport SweepRange(const std::vector<CrashPoint>& points, size_t begin, size_t end,
                              const CrashSweepOptions& options) const;
  // One committed namespace transition: `path` went from `before` to `after` (nullopt =
  // absent) at trace position end_writes. Ops with no namespace effect have an empty path.
  struct FsOpRecord {
    uint64_t end_writes = 0;
    std::string path;
    std::optional<FileState> before;
    std::optional<FileState> after;
  };

  simdisk::DiskParams params_;
  vlfs::VlfsConfig config_;
  WriteTrace trace_;
  std::vector<FsOpRecord> ops_;
  std::vector<std::string> all_paths_;  // Every path the script ever named (absence checks).
};

}  // namespace vlog::crashsim

#endif  // SRC_CRASHSIM_HARNESS_H_
