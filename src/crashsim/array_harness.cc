#include "src/crashsim/array_harness.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/time.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::crashsim {
namespace {

// Chunked memcmp against a static zero block; see harness.cc (the sweep's hottest loop).
bool IsZero(std::span<const std::byte> bytes) {
  static constexpr size_t kChunk = 4096;
  static const std::array<std::byte, kChunk> kZeros{};
  size_t off = 0;
  while (off < bytes.size()) {
    const size_t n = std::min(kChunk, bytes.size() - off);
    if (std::memcmp(bytes.data() + off, kZeros.data(), n) != 0) {
      return false;
    }
    off += n;
  }
  return true;
}

bool ContentMatches(std::span<const std::byte> got, const std::vector<std::byte>& expect) {
  if (expect.empty()) {
    return IsZero(got);
  }
  return got.size() == expect.size() &&
         std::memcmp(got.data(), expect.data(), expect.size()) == 0;
}

// One member stack the sweep rebuilds per crash point. Heap-held so the pointers handed to the
// VldArray stay stable.
struct MemberStack {
  std::unique_ptr<common::Clock> clock;
  std::unique_ptr<simdisk::SimDisk> disk;
  std::unique_ptr<core::Vld> vld;
};

}  // namespace

ArrayCrashSim::ArrayCrashSim(simdisk::DiskParams params, core::VldConfig member_config,
                             array::VldArrayConfig array_config, uint32_t member_count)
    : params_(std::move(params)),
      member_config_(member_config),
      array_config_(array_config),
      member_count_(member_count) {}

std::vector<uint32_t> ArrayCrashSim::MembersOfBlock(uint32_t block) const {
  if (array_config_.mode == array::ArrayMode::kMirrored) {
    std::vector<uint32_t> all(member_count_);
    for (uint32_t m = 0; m < member_count_; ++m) {
      all[m] = m;
    }
    return all;
  }
  const uint64_t chunk = static_cast<uint64_t>(block) * block_sectors_ / chunk_sectors_;
  return {static_cast<uint32_t>(chunk % member_count_)};
}

void ArrayCrashSim::RecordOp(Workload& w, const std::vector<uint32_t>& blocks,
                             const std::vector<std::vector<std::byte>>& before,
                             const std::vector<std::vector<std::byte>>& after) {
  ArrayOp op;
  op.end_writes = trace_.size();
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (const uint32_t m : MembersOfBlock(blocks[i])) {
      Group* group = nullptr;
      for (Group& g : op.groups) {
        if (g.member == m) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        op.groups.push_back(Group{m, {}, {}, {}});
        group = &op.groups.back();
      }
      group->blocks.push_back(blocks[i]);
      group->before.push_back(before[i]);
      group->after.push_back(after[i]);
    }
    w.shadow_[blocks[i]] = after[i];
  }
  ops_.push_back(std::move(op));
}

common::Status ArrayCrashSim::Workload::WriteBlock(uint32_t array_block,
                                                   std::span<const std::byte> data) {
  const std::vector<std::byte> before = shadow_[array_block];
  RETURN_IF_ERROR(array_->Write(
      static_cast<simdisk::Lba>(array_block) * sim_->block_sectors_, data));
  sim_->RecordOp(*this, {array_block}, {before}, {{data.begin(), data.end()}});
  return common::OkStatus();
}

common::Status ArrayCrashSim::Workload::QueuedBatch(
    std::span<const core::Vld::AtomicWrite> writes) {
  // Decompose the extents into blocks; a block written twice keeps the last payload (the
  // member VLD's queued-batch semantics: later submissions win).
  std::vector<uint32_t> blocks;
  std::vector<std::vector<std::byte>> before;
  std::vector<std::vector<std::byte>> after;
  const uint32_t block_sectors = sim_->block_sectors_;
  const uint32_t block_bytes = sim_->block_bytes_;
  for (const core::Vld::AtomicWrite& w : writes) {
    if (w.lba % block_sectors != 0 || w.data.size() % block_bytes != 0) {
      return common::InvalidArgument("array workload: extents must be whole aligned blocks");
    }
    for (uint64_t i = 0; i < w.data.size() / block_bytes; ++i) {
      const uint32_t b = static_cast<uint32_t>(w.lba / block_sectors + i);
      std::vector<std::byte> payload(w.data.begin() + i * block_bytes,
                                     w.data.begin() + (i + 1) * block_bytes);
      const auto it = std::find(blocks.begin(), blocks.end(), b);
      if (it != blocks.end()) {
        after[static_cast<size_t>(it - blocks.begin())] = std::move(payload);
        continue;
      }
      blocks.push_back(b);
      before.push_back(shadow_[b]);
      after.push_back(std::move(payload));
    }
    RETURN_IF_ERROR(
        array_->SubmitWrite(w.lba, w.data).status());
  }
  auto completions = array_->FlushQueue();
  RETURN_IF_ERROR(completions.status());
  if (completions->size() != writes.size()) {
    return common::Corruption("array workload: batch completion count mismatch");
  }
  sim_->RecordOp(*this, blocks, before, after);
  return common::OkStatus();
}

common::Status ArrayCrashSim::Workload::ReadVerify(uint32_t array_block) {
  std::vector<std::byte> got(sim_->block_bytes_);
  RETURN_IF_ERROR(
      array_->Read(static_cast<simdisk::Lba>(array_block) * sim_->block_sectors_, got));
  if (!ContentMatches(got, shadow_[array_block])) {
    return common::Corruption("array workload: read of block " + std::to_string(array_block) +
                              " disagrees with the shadow at record time");
  }
  return common::OkStatus();
}

common::Status ArrayCrashSim::Record(
    const std::function<common::Status(Workload&)>& workload) {
  std::vector<MemberStack> stacks(member_count_);
  std::vector<core::Vld*> members;
  for (uint32_t m = 0; m < member_count_; ++m) {
    stacks[m].clock = std::make_unique<common::Clock>();
    stacks[m].disk = std::make_unique<simdisk::SimDisk>(params_, stacks[m].clock.get());
    stacks[m].vld = std::make_unique<core::Vld>(stacks[m].disk.get(), member_config_);
    members.push_back(stacks[m].vld.get());
  }
  array::VldArray array(members, array_config_);
  RETURN_IF_ERROR(array.Format());
  block_sectors_ = array.block_sectors();
  block_bytes_ = block_sectors_ * array.SectorBytes();
  array_blocks_ = static_cast<uint32_t>(array.SectorCount() / block_sectors_);
  chunk_sectors_ = array.chunk_sectors();
  // Recording starts after Format: per-member base images, then every member media write into
  // one global trace tagged with the member index.
  trace_.set_write_back(params_.cache.capacity_sectors > 0);
  bases_.clear();
  for (uint32_t m = 0; m < member_count_; ++m) {
    bases_.push_back(SnapshotMedia(*stacks[m].disk));
    stacks[m].disk->set_write_observer(
        [this, m](simdisk::Lba lba, std::span<const std::byte> data, bool durable) {
          trace_.Append(lba, data, durable, m);
        });
    stacks[m].disk->set_flush_observer([this] { trace_.AppendBarrier(); });
  }
  Workload w;
  w.sim_ = this;
  w.array_ = &array;
  w.shadow_.assign(array_blocks_, {});
  common::Status status = workload(w);
  for (MemberStack& stack : stacks) {
    stack.disk->set_write_observer(nullptr);
    stack.disk->set_flush_observer(nullptr);
  }
  return status;
}

CrashSweepReport ArrayCrashSim::Sweep(const CrashSweepOptions& options) const {
  const std::vector<CrashPoint> points =
      AllCrashPoints(trace_, params_.geometry.sector_bytes, options);
  return RunShardedSweep(points.size(), options.enumerate.seed, options,
                         [&](size_t begin, size_t end) {
                           return SweepRange(points, begin, end, options);
                         });
}

CrashSweepReport ArrayCrashSim::SweepRange(const std::vector<CrashPoint>& points, size_t begin,
                                           size_t end, const CrashSweepOptions& options) const {
  CrashSweepReport report;
  const uint32_t sector_bytes = params_.geometry.sector_bytes;

  // Rolling per-member images plus the committed array-block shadow, advanced monotonically.
  // A range starting mid-sweep catches up via the first iteration's replay loop.
  std::vector<std::vector<std::byte>> images = bases_;
  uint64_t applied = 0;
  size_t op_idx = 0;
  std::vector<std::vector<std::byte>> committed(array_blocks_);

  std::vector<std::byte> probe_block(block_bytes_, std::byte{0xA5});
  std::vector<std::byte> readback(block_bytes_);
  // Per-member crashed images, recycled through each point's member SimDisks (media-adopting
  // constructor + TakeMedia) and kept in sync with the rolling images by *difference*: trace
  // records are applied to both copies, and each member's divergences — crash-variant bytes
  // plus every write its recovered stack made (via the disk's write observer) — are restored
  // from the rolling image before the next point instead of re-copying whole media.
  std::vector<std::vector<std::byte>> scratch(member_count_);
  std::vector<std::vector<std::pair<size_t, size_t>>> dirty(member_count_);

  for (size_t pi = begin; pi < end; ++pi) {
    const CrashPoint& point = points[pi];
    while (applied < point.writes_applied) {
      ApplyWrite(images[trace_[applied].disk], trace_[applied], sector_bytes);
      if (!scratch[trace_[applied].disk].empty()) {
        ApplyWrite(scratch[trace_[applied].disk], trace_[applied], sector_bytes);
      }
      ++applied;
    }
    while (op_idx < ops_.size() && ops_[op_idx].end_writes <= applied) {
      for (const Group& g : ops_[op_idx].groups) {
        for (size_t i = 0; i < g.blocks.size(); ++i) {
          committed[g.blocks[i]] = g.after[i];
        }
      }
      ++op_idx;
    }
    // In-flight array ops. Unlike the single-disk sweep, an array op's records span several
    // barrier epochs (per member: data epoch, then packed-commit epoch), so a reorder epoch in
    // the *middle* of the op — say member 0's commit, with member 1 still unwritten — must
    // still treat the op as in flight: the first unfinished op always is. Later ops can join
    // only if they also acknowledged inside the same epoch.
    std::vector<const ArrayOp*> inflight_ops;
    if (op_idx < ops_.size()) {
      inflight_ops.push_back(&ops_[op_idx]);
      if (point.kind == CrashKind::kReorder) {
        for (size_t i = op_idx + 1; i < ops_.size() && ops_[i].end_writes <= point.epoch_end;
             ++i) {
          inflight_ops.push_back(&ops_[i]);
        }
      }
    }

    switch (point.kind) {
      case CrashKind::kClean:
        ++report.clean_points;
        break;
      case CrashKind::kCorruptTail:
        ++report.corrupt_points;
        break;
      case CrashKind::kReorder:
        ++report.reorder_points;
        break;
      default:
        ++report.torn_points;
    }
    if (options.only_ordinal >= 0 &&
        static_cast<int64_t>(point.ordinal) != options.only_ordinal) {
      continue;  // Replay mode: count every point but recover/check only the requested one.
    }

    // Reconstruct every member's crashed media. Only the member that owns the cut (or the
    // reordered epoch) diverges from its barrier state — the others are exactly clean.
    for (uint32_t m = 0; m < member_count_; ++m) {
      if (scratch[m].empty()) {
        scratch[m] = images[m];  // First recovered point in this range: one full copy.
      } else {
        for (const auto& [off, len] : dirty[m]) {
          std::memcpy(scratch[m].data() + off, images[m].data() + off, len);
        }
      }
      dirty[m].clear();
    }
    if (point.kind == CrashKind::kReorder) {
      for (const uint64_t idx : point.extra) {
        ApplyWrite(scratch[trace_[idx].disk], trace_[idx], sector_bytes);
        dirty[trace_[idx].disk].emplace_back(trace_[idx].lba * sector_bytes,
                                             trace_[idx].data.size());
      }
    } else if (point.kind != CrashKind::kClean) {
      // Every crash variant mutates only bytes inside the record's own range.
      ApplyCrashedWrite(scratch[trace_[applied].disk], trace_[applied], sector_bytes, point);
      dirty[trace_[applied].disk].emplace_back(trace_[applied].lba * sector_bytes,
                                               trace_[applied].data.size());
    }

    // Fresh member stacks over the crashed images, then the array's stitched recovery.
    std::vector<MemberStack> stacks(member_count_);
    std::vector<core::Vld*> members;
    for (uint32_t m = 0; m < member_count_; ++m) {
      stacks[m].clock = std::make_unique<common::Clock>();
      stacks[m].disk = std::make_unique<simdisk::SimDisk>(params_, stacks[m].clock.get(),
                                                          std::move(scratch[m]));
      stacks[m].disk->set_write_observer(
          [&dirty, m, sector_bytes](simdisk::Lba lba, std::span<const std::byte> data,
                                    bool /*durable*/) {
            dirty[m].emplace_back(lba * sector_bytes, data.size());
          });
      stacks[m].vld = std::make_unique<core::Vld>(stacks[m].disk.get(), member_config_);
      members.push_back(stacks[m].vld.get());
    }
    // Reclaims every member's media buffer before the stacks die, whatever path exits the
    // point's checks.
    const auto reclaim = [&] {
      for (uint32_t m = 0; m < member_count_; ++m) {
        scratch[m] = std::move(*stacks[m].disk).TakeMedia();
      }
    };
    array::VldArray array(members, array_config_);
    auto info = array.Recover();
    report.recovery_times.push_back(array.now());  // Fresh clocks start at zero.
    if (!info.ok()) {
      report.AddViolation(point, "array recovery failed: " + info.status().ToString(),
                          options.max_violation_details);
      reclaim();
      continue;
    }
    for (const core::VldRecoveryInfo& mi : info->members) {
      (mi.used_scan ? report.scan_recoveries : report.park_recoveries) += 1;
      report.checkpoint_recoveries += mi.from_checkpoint ? 1 : 0;
      report.rolled_back_recoveries += mi.discarded_txn_sectors > 0 ? 1 : 0;
      report.repaired_pieces += mi.repaired_pieces;
    }

    auto read_block = [&](uint32_t b) {
      return array.Read(static_cast<simdisk::Lba>(b) * block_sectors_, readback);
    };

    // Invariant 2a: blocks no in-flight op touches read back their committed contents.
    std::unordered_set<uint32_t> inflight_blocks;
    for (const ArrayOp* op : inflight_ops) {
      for (const Group& g : op->groups) {
        inflight_blocks.insert(g.blocks.begin(), g.blocks.end());
      }
    }
    bool content_ok = true;
    for (uint32_t b = 0; b < array_blocks_ && content_ok; ++b) {
      if (inflight_blocks.count(b) > 0) {
        continue;
      }
      if (!read_block(b).ok()) {
        report.AddViolation(point, "read of array block " + std::to_string(b) + " failed",
                            options.max_violation_details);
        content_ok = false;
        break;
      }
      if (!ContentMatches(readback, committed[b])) {
        report.AddViolation(point,
                            "committed array block " + std::to_string(b) +
                                " has wrong contents after recovery",
                            options.max_violation_details);
        content_ok = false;
      }
    }
    // Invariant 2b: the in-flight op is atomic per member group. Striped members crash
    // independently — one member's group may have committed while another rolled back — but
    // within one member the group's packed commit must be all-old or all-new. Mirrored groups
    // all hold the full op and must agree after resync.
    for (const ArrayOp* op : inflight_ops) {
      for (const Group& g : op->groups) {
        bool all_old = true;
        bool all_new = true;
        bool reads_ok = true;
        for (size_t i = 0; i < g.blocks.size() && reads_ok; ++i) {
          if (!read_block(g.blocks[i]).ok()) {
            report.AddViolation(point,
                                "read of in-flight array block " + std::to_string(g.blocks[i]) +
                                    " failed",
                                options.max_violation_details);
            reads_ok = false;
            break;
          }
          all_old = all_old && ContentMatches(readback, g.before[i]);
          all_new = all_new && ContentMatches(readback, g.after[i]);
        }
        if (reads_ok && !(all_old || all_new)) {
          report.AddViolation(point,
                              "in-flight array op partially applied on member " +
                                  std::to_string(g.member) + " (group atomicity violated)",
                              options.max_violation_details);
        }
      }
    }

    // Invariants 3 and 4, per member: injective map, mapped blocks live, and free-space
    // accounting equal to mapped data + live map pieces + pinned blocks.
    for (uint32_t m = 0; m < member_count_; ++m) {
      const core::Vld& vld = *stacks[m].vld;
      const std::string who = "member " + std::to_string(m) + ": ";
      const std::vector<uint32_t>& map = vld.logical_map();
      std::unordered_set<uint32_t> phys_seen;
      uint64_t mapped = 0;
      for (uint32_t b = 0; b < map.size(); ++b) {
        if (map[b] == core::kUnmappedBlock) {
          continue;
        }
        ++mapped;
        if (!phys_seen.insert(map[b]).second) {
          report.AddViolation(
              point, who + "two logical blocks map to physical block " + std::to_string(map[b]),
              options.max_violation_details);
          break;
        }
        if (vld.space().state(map[b]) != core::BlockState::kLive) {
          report.AddViolation(point,
                              who + "mapped physical block " + std::to_string(map[b]) +
                                  " not marked live in the free-space map",
                              options.max_violation_details);
          break;
        }
      }
      std::unordered_set<uint32_t> map_blocks;
      for (uint32_t k = 0; k < vld.vlog().config().pieces; ++k) {
        if (const auto block = vld.vlog().LiveBlockOfPiece(k)) {
          map_blocks.insert(*block);
        }
      }
      for (const uint32_t block : vld.vlog().PinnedBlocks()) {
        map_blocks.insert(block);
      }
      if (mapped + map_blocks.size() != vld.space().live_blocks()) {
        report.AddViolation(point,
                            who + "free-space accounting mismatch: " + std::to_string(mapped) +
                                " mapped + " + std::to_string(map_blocks.size()) +
                                " map blocks != " + std::to_string(vld.space().live_blocks()) +
                                " live",
                            options.max_violation_details);
      }
    }

    // Invariant 5: the recovered array still accepts and serves writes (striped: exercises the
    // member that owns block 0; mirrored: fans out to every replica).
    if (options.probe_after_recovery) {
      const common::Status w = array.Write(0, probe_block);
      const common::Status r = w.ok() ? array.Read(0, readback) : w;
      if (!r.ok() || !ContentMatches(readback, probe_block)) {
        report.AddViolation(point, "post-recovery array probe write/read failed",
                            options.max_violation_details);
      }
    }
    reclaim();
  }
  return report;
}

}  // namespace vlog::crashsim
