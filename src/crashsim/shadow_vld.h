// A BlockDevice wrapper over a Vld that maintains a logical shadow model.
//
// Every acknowledged command is recorded as an Op: the position in the media write trace at
// which it was acknowledged, plus the before/after contents of every logical block it touched.
// A sweep can then decide, for any crash point, which ops were fully persisted (their media
// writes all lie before the cut) and which single op was in flight — and check that the
// recovered device exposes exactly the committed contents, with the in-flight op either wholly
// applied or wholly absent (the VLD commits every command with one atomic map-sector
// transaction, so nothing in between is legal).
//
// Because ShadowVld is itself a BlockDevice, a whole file system (e.g. UFS) can be mounted on
// top of it and its traffic invariant-checked at the device level.
#ifndef SRC_CRASHSIM_SHADOW_VLD_H_
#define SRC_CRASHSIM_SHADOW_VLD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/core/vld.h"
#include "src/crashsim/nvm_trace.h"
#include "src/crashsim/write_trace.h"
#include "src/simdisk/block_device.h"

namespace vlog::core {
class NvmStage;
}  // namespace vlog::core

namespace vlog::crashsim {

class ShadowVld : public simdisk::BlockDevice {
 public:
  struct Op {
    uint64_t end_writes = 0;  // Trace length when the command was acknowledged.
    // NVM trace length when the command was acknowledged (0 when no stage is attached). An op
    // whose staged append is the torn one is the sweep's in-flight op for that NVM tear.
    uint64_t nvm_end = 0;
    // Touched logical blocks with their full before/after contents. An empty vector means the
    // block is unmapped and reads back as zeros.
    std::vector<uint32_t> blocks;
    std::vector<std::vector<std::byte>> before;
    std::vector<std::vector<std::byte>> after;
  };

  // `trace` must be the trace attached to the Vld's SimDisk write observer.
  ShadowVld(core::Vld* vld, const WriteTrace* trace);

  // Routes all subsequent traffic through an NVM staging tier layered over the same Vld.
  // `nvm_trace` must be the trace attached to the stage's NvmDevice write observer; ops then
  // record the NVM trace length at acknowledgement alongside the disk trace length.
  void AttachStage(core::NvmStage* stage, const NvmTrace* nvm_trace);

  // BlockDevice. Reads are verified against the shadow (a mismatch during recording is itself
  // a bug worth failing loudly on) and writes are recorded as ops.
  common::Status Read(simdisk::Lba lba, std::span<std::byte> out) override;
  common::Status Write(simdisk::Lba lba, std::span<const std::byte> in) override;
  common::Status Flush() override { return vld_->Flush(); }
  uint64_t SectorCount() const override { return vld_->SectorCount(); }
  uint32_t SectorBytes() const override { return vld_->SectorBytes(); }

  // VLD extensions, passed through with shadow bookkeeping. Trim drops whole covered blocks
  // (mirroring Vld::Trim); Checkpoint/Park/RunIdle touch no logical blocks but still record op
  // boundaries so their media writes are attributed to them rather than to the next command.
  common::Status Trim(simdisk::Lba lba, uint64_t sectors);
  common::Status WriteAtomic(std::span<const core::Vld::AtomicWrite> writes);
  // Queued-write path: submits every extent through SubmitWrite, then FlushQueue group-commits
  // all of their map entries in one packed transaction. The batch shares a single commit point,
  // so across a crash it is all-old-or-all-new; it is recorded as ONE op and the sweep verifies
  // exactly that. Extents must be whole aligned blocks (like WriteAtomic).
  common::Status WriteQueuedBatch(std::span<const core::Vld::AtomicWrite> writes);
  // Mixed queued batch: interleaves SubmitRead with SubmitWrite through one FlushQueue (read i
  // is submitted right after write i, so it must observe this batch's writes 0..i via the
  // same-batch RAW forwarding path and must NOT observe writes i+1.. regardless of SPTF service
  // order). Each read's returned bytes are verified against the shadow with those earlier
  // writes overlaid. Only the writes are recorded (as ONE op, like WriteQueuedBatch): read
  // traffic must leave crash-visible state untouched — a read-only batch that emits any media
  // write fails here, and the sweep then re-verifies the recorded history as if the reads had
  // never happened. Writes must be whole aligned blocks; reads are whole single blocks.
  common::Status QueuedMixedBatch(std::span<const core::Vld::AtomicWrite> writes,
                                  std::span<const uint32_t> read_blocks);
  common::Status Checkpoint();
  common::Status Park();
  void RunIdle(common::Duration budget);
  // Preemptible governed compaction burst (possibly preceded by a checkpoint, like RunIdle).
  // Touches no logical blocks; recorded as an op boundary so its media writes — relocations
  // truncated mid-track included — are attributed to it.
  void RunGovernedBurst(common::Duration budget, uint32_t target_empty_tracks = 0);
  // Staged-mode background maintenance: a duty-cycled destage burst / a full synchronous
  // drain. Both are recorded as op boundaries (their media writes belong to them, not to the
  // next command) and are no-ops when no stage is attached.
  common::Status PumpDestage(common::Duration budget);
  common::Status DrainStage();

  core::NvmStage* stage() { return stage_; }
  core::Vld& vld() { return *vld_; }
  const std::vector<Op>& ops() const { return ops_; }
  std::vector<Op> TakeOps() { return std::move(ops_); }

 private:
  // Records an acknowledged op touching `blocks`, whose new contents are `after`, and folds it
  // into the shadow.
  void RecordOp(std::vector<uint32_t> blocks, std::vector<std::vector<std::byte>> after);
  // Shadow contents of block `b` with sectors [first, first+count) replaced from `data`.
  std::vector<std::byte> Overlay(uint32_t block, uint32_t first_sector, uint64_t sector_count,
                                 std::span<const std::byte> data) const;

  core::Vld* vld_;
  const WriteTrace* trace_;
  core::NvmStage* stage_ = nullptr;      // Non-null in staged mode.
  const NvmTrace* nvm_trace_ = nullptr;  // Non-null in staged mode.
  uint32_t block_bytes_;
  std::vector<std::vector<std::byte>> shadow_;  // Per logical block; empty = zeros.
  std::vector<Op> ops_;
};

}  // namespace vlog::crashsim

#endif  // SRC_CRASHSIM_SHADOW_VLD_H_
