#include "src/crashsim/write_trace.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace vlog::crashsim {

std::span<const std::byte> WriteTrace::ArenaCopy(std::span<const std::byte> data) {
  if (data.empty()) {
    return {};
  }
  if (arena_.empty() || arena_cap_ - arena_used_ < data.size()) {
    arena_cap_ = std::max(kArenaChunkBytes, data.size());
    arena_used_ = 0;
    arena_.push_back(std::make_unique<std::byte[]>(arena_cap_));
  }
  std::byte* dst = arena_.back().get() + arena_used_;
  std::memcpy(dst, data.data(), data.size());
  arena_used_ += data.size();
  return {dst, data.size()};
}

std::vector<std::byte> SnapshotMedia(const simdisk::SimDisk& disk) {
  std::vector<std::byte> image(disk.geometry().CapacityBytes());
  disk.PeekMedia(0, image);
  return image;
}

void ApplyWrite(std::vector<std::byte>& image, const WriteRecord& record, uint32_t sector_bytes) {
  const size_t offset = record.lba * sector_bytes;
  assert(offset + record.data.size() <= image.size());
  std::memcpy(image.data() + offset, record.data.data(), record.data.size());
}

}  // namespace vlog::crashsim
