#include "src/crashsim/write_trace.h"

#include <cassert>
#include <cstring>

namespace vlog::crashsim {

std::vector<std::byte> SnapshotMedia(const simdisk::SimDisk& disk) {
  std::vector<std::byte> image(disk.geometry().CapacityBytes());
  disk.PeekMedia(0, image);
  return image;
}

void ApplyWrite(std::vector<std::byte>& image, const WriteRecord& record, uint32_t sector_bytes) {
  const size_t offset = record.lba * sector_bytes;
  assert(offset + record.data.size() <= image.size());
  std::memcpy(image.data() + offset, record.data.data(), record.data.size());
}

}  // namespace vlog::crashsim
