// Crash-point enumeration over a recorded write trace.
//
// The crash model (see DESIGN.md, "Crash model and recovery guarantees"): power can drop
// between any two media writes (a *clean stop*), in the middle of a multi-sector write so that
// only some of its sectors persist (a *torn tail* — prefix, suffix, or an arbitrary subset,
// since the drive may reorder sectors within one command), or during the last sector so that
// it persists damaged (a *corrupted tail*, which must be caught by the CRC on every signed
// structure). On a write-through device writes are never reordered across command boundaries:
// the SimDisk commits each write before acknowledging it.
//
// With a volatile write-back cache the model widens: acknowledged writes between two
// durability barriers (Flush completions) may persist as any subset, in any order — the drive
// destages at its own convenience. A *reorder* crash point captures one such admissible state:
// everything before the last completed barrier persists exactly, plus an ordered subset of the
// in-window acknowledged writes on top. Small windows are enumerated exhaustively; larger ones
// are sampled with a seeded RNG so any failure is replayable from its seed.
#ifndef SRC_CRASHSIM_CRASH_POINT_H_
#define SRC_CRASHSIM_CRASH_POINT_H_

#include <cstdint>
#include <vector>

#include "src/crashsim/write_trace.h"

namespace vlog::crashsim {

enum class CrashKind : uint8_t {
  kClean,        // Power drops between writes; the trace prefix persists exactly.
  kTornPrefix,   // The final write persists only its first keep_sectors sectors.
  kTornSuffix,   // The final write persists only its last keep_sectors sectors.
  kTornRandom,   // A seeded pseudo-random subset of the final write's sectors persists.
  kCorruptTail,  // The final write persists fully but its last sector takes seeded bit flips.
  kReorder,      // Write-back cache lost/reordered an in-window subset of acknowledged writes:
                 // records [0, writes_applied) persist, then `extra` applies in its order.
};

const char* CrashKindName(CrashKind kind);

struct CrashPoint {
  uint64_t writes_applied = 0;  // Trace records fully persisted before the cut.
  CrashKind kind = CrashKind::kClean;  // Fate of record[writes_applied] (unused for kClean).
  uint32_t keep_sectors = 0;           // kTornPrefix / kTornSuffix only.
  uint64_t seed = 1;                   // kTornRandom / kCorruptTail / sampled kReorder.
  // kReorder only: absolute trace indices applied, in this order, on top of the durable
  // prefix; all lie in [writes_applied, epoch_end).
  std::vector<uint64_t> extra;
  // kReorder only: the barrier position ending the epoch. Ops acknowledged at or before it may
  // be partially persisted by this point; ops beyond it have no records in `extra`.
  uint64_t epoch_end = 0;
  // Stable index within the sweep's merged point list, for failure messages ("point #N"):
  // re-running with the same seed reproduces the same list, so the pair (seed, ordinal)
  // identifies a crash state exactly.
  uint64_t ordinal = 0;
};

struct EnumerateOptions {
  uint64_t clean_stride = 1;    // Clean stop after every Nth write (the final state is always
                                // included regardless of stride).
  uint64_t torn_stride = 1;     // Torn variants for every Nth multi-sector write (0 = none).
  uint64_t corrupt_stride = 4;  // Corrupt-tail variant for every Nth write (0 = none).
  uint64_t seed = 1;            // Base seed for the randomized variants.
};

// How to enumerate reorder points over a write-back trace's barrier-delimited epochs.
struct ReorderOptions {
  // Epochs with at most this many volatile writes get every ordered subset (n=4 -> 65 states);
  // larger epochs get `samples_per_epoch` seeded random (subset, order) draws instead.
  uint64_t exhaustive_window = 4;
  uint64_t samples_per_epoch = 12;
  uint64_t seed = 1;
};

// All crash points for `trace`, ordered by writes_applied so a sweep can maintain a rolling
// reconstructed image.
std::vector<CrashPoint> EnumerateCrashPoints(const WriteTrace& trace, uint32_t sector_bytes,
                                             const EnumerateOptions& options);

// Reorder points for a write-back trace: one per admissible (subset, order) of each
// barrier-delimited epoch's volatile writes (durable in-window writes — FUA — always apply
// first, in trace order). Returns an empty vector when the trace was not recorded write-back.
// Ordered by writes_applied, so it merges into the sweep's rolling pass.
std::vector<CrashPoint> EnumerateReorderPoints(const WriteTrace& trace,
                                               const ReorderOptions& options);

// Applies the partially-persisted or corrupted form of `record` that `point` describes. The
// modes mirror SimDisk's WriteFaultMode semantics, replayed over an offline image.
void ApplyCrashedWrite(std::vector<std::byte>& image, const WriteRecord& record,
                       uint32_t sector_bytes, const CrashPoint& point);

}  // namespace vlog::crashsim

#endif  // SRC_CRASHSIM_CRASH_POINT_H_
