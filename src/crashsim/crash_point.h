// Crash-point enumeration over a recorded write trace.
//
// The crash model (see DESIGN.md, "Crash model and recovery guarantees"): power can drop
// between any two media writes (a *clean stop*), in the middle of a multi-sector write so that
// only some of its sectors persist (a *torn tail* — prefix, suffix, or an arbitrary subset,
// since the drive may reorder sectors within one command), or during the last sector so that
// it persists damaged (a *corrupted tail*, which must be caught by the CRC on every signed
// structure). Writes are never reordered across command boundaries: the SimDisk commits each
// write before acknowledging it.
#ifndef SRC_CRASHSIM_CRASH_POINT_H_
#define SRC_CRASHSIM_CRASH_POINT_H_

#include <cstdint>
#include <vector>

#include "src/crashsim/write_trace.h"

namespace vlog::crashsim {

enum class CrashKind : uint8_t {
  kClean,        // Power drops between writes; the trace prefix persists exactly.
  kTornPrefix,   // The final write persists only its first keep_sectors sectors.
  kTornSuffix,   // The final write persists only its last keep_sectors sectors.
  kTornRandom,   // A seeded pseudo-random subset of the final write's sectors persists.
  kCorruptTail,  // The final write persists fully but its last sector takes seeded bit flips.
};

const char* CrashKindName(CrashKind kind);

struct CrashPoint {
  uint64_t writes_applied = 0;  // Trace records fully persisted before the cut.
  CrashKind kind = CrashKind::kClean;  // Fate of record[writes_applied] (unused for kClean).
  uint32_t keep_sectors = 0;           // kTornPrefix / kTornSuffix only.
  uint64_t seed = 1;                   // kTornRandom / kCorruptTail only.
};

struct EnumerateOptions {
  uint64_t clean_stride = 1;    // Clean stop after every Nth write (the final state is always
                                // included regardless of stride).
  uint64_t torn_stride = 1;     // Torn variants for every Nth multi-sector write (0 = none).
  uint64_t corrupt_stride = 4;  // Corrupt-tail variant for every Nth write (0 = none).
  uint64_t seed = 1;            // Base seed for the randomized variants.
};

// All crash points for `trace`, ordered by writes_applied so a sweep can maintain a rolling
// reconstructed image.
std::vector<CrashPoint> EnumerateCrashPoints(const WriteTrace& trace, uint32_t sector_bytes,
                                             const EnumerateOptions& options);

// Applies the partially-persisted or corrupted form of `record` that `point` describes. The
// modes mirror SimDisk's WriteFaultMode semantics, replayed over an offline image.
void ApplyCrashedWrite(std::vector<std::byte>& image, const WriteRecord& record,
                       uint32_t sector_bytes, const CrashPoint& point);

}  // namespace vlog::crashsim

#endif  // SRC_CRASHSIM_CRASH_POINT_H_
