// Crash-consistency harness for the multi-disk virtual-log array (src/array).
//
// Recording mirrors VldCrashSim but over N member disks: every member's media writes land in
// ONE global WriteTrace tagged with the member index, and every member's flush observer marks a
// barrier. The global barrier stream is sound because each member VLD runs with barriers on —
// every member commit drains that member's own cache — and the array fans out to members one at
// a time, so any barrier instant has every member's cache clean and each barrier-delimited epoch
// holds a single member's volatile writes. A kReorder point therefore models exactly the
// ISSUE's "subset of disks torn/reordered while the rest are clean": it scrambles one member's
// mid-destage writes while the other members' images sit at their last barrier.
//
// The sweep rebuilds per-member media images (each record replays onto images[record.disk]),
// recovers a fresh member stack per disk, runs the array's stitched recovery, and checks:
//   1. Array recovery succeeds at every crash point.
//   2. Acknowledged array writes read back exactly; the in-flight array op is atomic per member
//      group — the blocks of the op that live on one member commit all-old-or-all-new together
//      (striped arrays promise per-member-group atomicity, not cross-member; mirrored arrays
//      converge on the authoritative replica's all-old-or-all-new group after resync).
//   3. Every member's recovered map is injective over its physical blocks.
//   4. Every member's free-space accounting matches its recovered map.
//   5. The recovered array still serves a probe write/read.
#ifndef SRC_CRASHSIM_ARRAY_HARNESS_H_
#define SRC_CRASHSIM_ARRAY_HARNESS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/array/vld_array.h"
#include "src/common/status.h"
#include "src/core/vld.h"
#include "src/crashsim/harness.h"
#include "src/crashsim/write_trace.h"
#include "src/simdisk/disk_params.h"

namespace vlog::crashsim {

class ArrayCrashSim {
 public:
  // All members run on identical `params` disks with the same `member_config`.
  ArrayCrashSim(simdisk::DiskParams params, core::VldConfig member_config,
                array::VldArrayConfig array_config, uint32_t member_count);

  // The workload's handle: drives the array and maintains the acknowledged-contents shadow the
  // sweep checks against. Reads are verified here at record time and recorded as nothing.
  class Workload {
   public:
    // One synchronous block write (acknowledged at the cross-disk barrier).
    common::Status WriteBlock(uint32_t array_block, std::span<const std::byte> data);
    // Submits every extent then flushes once — one cross-disk group commit, recorded as ONE
    // array op whose member groups the sweep checks atomically. Extents must be block-aligned
    // whole blocks; a block written twice in one batch takes the last payload.
    common::Status QueuedBatch(std::span<const core::Vld::AtomicWrite> writes);
    // Reads through the array and checks against the shadow (empty shadow = zeros).
    common::Status ReadVerify(uint32_t array_block);

    array::VldArray& array() { return *array_; }
    uint32_t array_blocks() const { return sim_->array_blocks_; }
    uint32_t block_sectors() const { return sim_->block_sectors_; }

   private:
    friend class ArrayCrashSim;
    ArrayCrashSim* sim_ = nullptr;
    array::VldArray* array_ = nullptr;
    std::vector<std::vector<std::byte>> shadow_;  // Acknowledged contents per array block.
  };

  // Formats a fresh array, attaches per-member recorders, and runs `workload`. Call once.
  common::Status Record(const std::function<common::Status(Workload&)>& workload);

  CrashSweepReport Sweep(const CrashSweepOptions& options) const;

  const WriteTrace& trace() const { return trace_; }

 private:
  // The blocks of one array op that live on one member, with their array-level before/after
  // images. Striped ops have one group per touched member; mirrored ops have one identical
  // group per healthy member (each replica commits the whole op).
  struct Group {
    uint32_t member = 0;
    std::vector<uint32_t> blocks;  // Array-logical block numbers.
    std::vector<std::vector<std::byte>> before;  // Empty vector = all zeros.
    std::vector<std::vector<std::byte>> after;
  };
  struct ArrayOp {
    uint64_t end_writes = 0;  // Global trace length when the array acknowledged the op.
    std::vector<Group> groups;
  };

  // The serial sweep over points[begin, end): rebuilds its rolling per-member images from the
  // trace bases, so contiguous ordinal ranges run independently on worker threads.
  CrashSweepReport SweepRange(const std::vector<CrashPoint>& points, size_t begin, size_t end,
                              const CrashSweepOptions& options) const;

  // Member indexes that hold array block `block`.
  std::vector<uint32_t> MembersOfBlock(uint32_t block) const;
  void RecordOp(Workload& w, const std::vector<uint32_t>& blocks,
                const std::vector<std::vector<std::byte>>& before,
                const std::vector<std::vector<std::byte>>& after);

  simdisk::DiskParams params_;
  core::VldConfig member_config_;
  array::VldArrayConfig array_config_;
  uint32_t member_count_;
  WriteTrace trace_;                             // Disk-tagged global trace.
  std::vector<std::vector<std::byte>> bases_;    // Post-format media image per member.
  std::vector<ArrayOp> ops_;
  uint32_t array_blocks_ = 0;
  uint32_t block_sectors_ = 0;
  uint32_t block_bytes_ = 0;
  uint64_t chunk_sectors_ = 0;
};

}  // namespace vlog::crashsim

#endif  // SRC_CRASHSIM_ARRAY_HARNESS_H_
