#include "src/crashsim/shadow_vld.h"

#include <algorithm>
#include <cstring>

#include "src/nvm/nvm_stage.h"

namespace vlog::crashsim {

ShadowVld::ShadowVld(core::Vld* vld, const WriteTrace* trace)
    : vld_(vld),
      trace_(trace),
      block_bytes_(vld->block_sectors() * vld->SectorBytes()),
      shadow_(vld->logical_blocks()) {}

void ShadowVld::AttachStage(core::NvmStage* stage, const NvmTrace* nvm_trace) {
  stage_ = stage;
  nvm_trace_ = nvm_trace;
}

std::vector<std::byte> ShadowVld::Overlay(uint32_t block, uint32_t first_sector,
                                          uint64_t sector_count,
                                          std::span<const std::byte> data) const {
  std::vector<std::byte> content =
      shadow_[block].empty() ? std::vector<std::byte>(block_bytes_) : shadow_[block];
  const uint32_t sector_bytes = vld_->SectorBytes();
  std::memcpy(content.data() + static_cast<size_t>(first_sector) * sector_bytes, data.data(),
              sector_count * sector_bytes);
  return content;
}

void ShadowVld::RecordOp(std::vector<uint32_t> blocks,
                         std::vector<std::vector<std::byte>> after) {
  Op op;
  op.end_writes = trace_->size();
  op.nvm_end = nvm_trace_ != nullptr ? nvm_trace_->size() : 0;
  for (size_t i = 0; i < blocks.size(); ++i) {
    // A block touched twice in one op (legal in WriteAtomic) keeps its pre-op `before` and the
    // last `after`: intermediate versions are never observable across a crash.
    const auto it = std::find(op.blocks.begin(), op.blocks.end(), blocks[i]);
    if (it != op.blocks.end()) {
      op.after[static_cast<size_t>(it - op.blocks.begin())] = std::move(after[i]);
      continue;
    }
    op.blocks.push_back(blocks[i]);
    op.before.push_back(shadow_[blocks[i]]);
    op.after.push_back(std::move(after[i]));
  }
  for (size_t i = 0; i < op.blocks.size(); ++i) {
    shadow_[op.blocks[i]] = op.after[i];
  }
  ops_.push_back(std::move(op));
}

common::Status ShadowVld::Read(simdisk::Lba lba, std::span<std::byte> out) {
  RETURN_IF_ERROR(stage_ != nullptr ? stage_->Read(lba, out) : vld_->Read(lba, out));
  // Verify against the shadow: a divergence while the device is healthy is a live bug, better
  // caught here than blamed on a crash point later.
  const uint32_t sector_bytes = SectorBytes();
  const uint32_t bs = vld_->block_sectors();
  const uint64_t sectors = out.size() / sector_bytes;
  for (uint64_t s = 0; s < sectors; ++s) {
    const uint32_t block = static_cast<uint32_t>((lba + s) / bs);
    const uint32_t offset = static_cast<uint32_t>((lba + s) % bs);
    const std::span<const std::byte> got = out.subspan(s * sector_bytes, sector_bytes);
    const std::vector<std::byte>& expect = shadow_[block];
    const bool match =
        expect.empty()
            ? std::all_of(got.begin(), got.end(), [](std::byte b) { return b == std::byte{0}; })
            : std::memcmp(got.data(), expect.data() + static_cast<size_t>(offset) * sector_bytes,
                          sector_bytes) == 0;
    if (!match) {
      return common::Corruption("ShadowVld: read diverged from shadow at logical sector " +
                                std::to_string(lba + s));
    }
  }
  return common::OkStatus();
}

common::Status ShadowVld::Write(simdisk::Lba lba, std::span<const std::byte> in) {
  RETURN_IF_ERROR(stage_ != nullptr ? stage_->Write(lba, in) : vld_->Write(lba, in));
  const uint32_t sector_bytes = SectorBytes();
  const uint32_t bs = vld_->block_sectors();
  const uint64_t sectors = in.size() / sector_bytes;
  const uint32_t first = static_cast<uint32_t>(lba / bs);
  const uint32_t last = static_cast<uint32_t>((lba + sectors - 1) / bs);
  std::vector<uint32_t> blocks;
  std::vector<std::vector<std::byte>> after;
  for (uint32_t b = first; b <= last; ++b) {
    const simdisk::Lba block_start = static_cast<simdisk::Lba>(b) * bs;
    const uint64_t in_begin = std::max<simdisk::Lba>(lba, block_start) - lba;
    const uint64_t in_end = std::min<simdisk::Lba>(lba + sectors, block_start + bs) - lba;
    blocks.push_back(b);
    after.push_back(Overlay(b, static_cast<uint32_t>(lba + in_begin - block_start),
                            in_end - in_begin,
                            in.subspan(in_begin * sector_bytes,
                                       (in_end - in_begin) * sector_bytes)));
  }
  RecordOp(std::move(blocks), std::move(after));
  return common::OkStatus();
}

common::Status ShadowVld::Trim(simdisk::Lba lba, uint64_t sectors) {
  RETURN_IF_ERROR(stage_ != nullptr ? stage_->Trim(lba, sectors) : vld_->Trim(lba, sectors));
  // Mirror Vld::Trim: only whole covered blocks are dropped; partial edges are ignored.
  const uint32_t bs = vld_->block_sectors();
  const uint32_t first = static_cast<uint32_t>((lba + bs - 1) / bs);
  const uint32_t end = static_cast<uint32_t>((lba + sectors) / bs);
  std::vector<uint32_t> blocks;
  std::vector<std::vector<std::byte>> after;
  for (uint32_t b = first; b < end; ++b) {
    blocks.push_back(b);
    after.emplace_back();  // Trimmed: reads back as zeros.
  }
  RecordOp(std::move(blocks), std::move(after));
  return common::OkStatus();
}

common::Status ShadowVld::WriteAtomic(std::span<const core::Vld::AtomicWrite> writes) {
  RETURN_IF_ERROR(stage_ != nullptr ? stage_->WriteAtomic(writes) : vld_->WriteAtomic(writes));
  const uint32_t bs = vld_->block_sectors();
  std::vector<uint32_t> blocks;
  std::vector<std::vector<std::byte>> after;
  for (const core::Vld::AtomicWrite& w : writes) {
    for (size_t off = 0; off < w.data.size(); off += block_bytes_) {
      blocks.push_back(static_cast<uint32_t>(w.lba / bs + off / block_bytes_));
      after.emplace_back(w.data.begin() + off, w.data.begin() + off + block_bytes_);
    }
  }
  RecordOp(std::move(blocks), std::move(after));
  return common::OkStatus();
}

common::Status ShadowVld::WriteQueuedBatch(std::span<const core::Vld::AtomicWrite> writes) {
  return QueuedMixedBatch(writes, {});
}

common::Status ShadowVld::QueuedMixedBatch(std::span<const core::Vld::AtomicWrite> writes,
                                           std::span<const uint32_t> read_blocks) {
  const uint32_t bs = vld_->block_sectors();
  struct PendingRead {
    uint64_t id = 0;
    uint32_t block = 0;
    size_t writes_before = 0;  // This batch's writes submitted ahead of the read.
  };
  std::vector<PendingRead> reads;
  reads.reserve(read_blocks.size());
  size_t wi = 0;
  size_t ri = 0;
  while (wi < writes.size() || ri < read_blocks.size()) {
    if (wi < writes.size()) {
      // Staged submits resolve overlay conflicts (destage + flush + invalidate) at submit
      // time, so any media writes they emit land before trace_before below.
      RETURN_IF_ERROR((stage_ != nullptr ? stage_->SubmitWrite(writes[wi].lba, writes[wi].data)
                                         : vld_->SubmitWrite(writes[wi].lba, writes[wi].data))
                          .status());
      ++wi;
    }
    if (ri < read_blocks.size()) {
      const simdisk::Lba read_lba = static_cast<simdisk::Lba>(read_blocks[ri]) * bs;
      ASSIGN_OR_RETURN(const uint64_t id, stage_ != nullptr ? stage_->SubmitRead(read_lba, bs)
                                                            : vld_->SubmitRead(read_lba, bs));
      reads.push_back({id, read_blocks[ri], wi});
      ++ri;
    }
  }
  const uint64_t trace_before = trace_->size();
  ASSIGN_OR_RETURN(const std::vector<core::Vld::QueuedCompletion> done,
                   stage_ != nullptr ? stage_->FlushQueue() : vld_->FlushQueue());
  if (writes.empty() && trace_->size() != trace_before) {
    return common::Corruption("QueuedMixedBatch: read-only batch emitted media writes");
  }
  for (const PendingRead& r : reads) {
    // Expected bytes: the shadow, overlaid with the last earlier-submitted write of this batch
    // that covers the block. Later-submitted writes commit with the same batch but must stay
    // invisible to this read.
    std::vector<std::byte> expect =
        shadow_[r.block].empty() ? std::vector<std::byte>(block_bytes_) : shadow_[r.block];
    for (size_t j = 0; j < r.writes_before; ++j) {
      const core::Vld::AtomicWrite& w = writes[j];
      const uint32_t first = static_cast<uint32_t>(w.lba / bs);
      const uint32_t count = static_cast<uint32_t>(w.data.size() / block_bytes_);
      if (r.block >= first && r.block < first + count) {
        const size_t off = static_cast<size_t>(r.block - first) * block_bytes_;
        expect.assign(w.data.begin() + static_cast<ptrdiff_t>(off),
                      w.data.begin() + static_cast<ptrdiff_t>(off + block_bytes_));
      }
    }
    const core::Vld::QueuedCompletion* c = nullptr;
    for (const core::Vld::QueuedCompletion& d : done) {
      if (d.id == r.id) {
        c = &d;
        break;
      }
    }
    if (c == nullptr || c->is_write) {
      return common::Corruption("QueuedMixedBatch: no read completion for id " +
                                std::to_string(r.id));
    }
    if (c->data.size() != expect.size() ||
        std::memcmp(c->data.data(), expect.data(), expect.size()) != 0) {
      return common::Corruption("QueuedMixedBatch: queued read of block " +
                                std::to_string(r.block) + " diverged from shadow");
    }
  }
  if (writes.empty()) {
    return common::OkStatus();  // Reads dirty nothing: no op to record.
  }
  std::vector<uint32_t> blocks;
  std::vector<std::vector<std::byte>> after;
  for (const core::Vld::AtomicWrite& w : writes) {
    for (size_t off = 0; off < w.data.size(); off += block_bytes_) {
      blocks.push_back(static_cast<uint32_t>(w.lba / bs + off / block_bytes_));
      after.emplace_back(w.data.begin() + off, w.data.begin() + off + block_bytes_);
    }
  }
  RecordOp(std::move(blocks), std::move(after));
  return common::OkStatus();
}

common::Status ShadowVld::Checkpoint() {
  RETURN_IF_ERROR(vld_->Checkpoint());
  RecordOp({}, {});
  return common::OkStatus();
}

common::Status ShadowVld::Park() {
  RETURN_IF_ERROR(vld_->Park());
  RecordOp({}, {});
  return common::OkStatus();
}

void ShadowVld::RunIdle(common::Duration budget) {
  vld_->RunIdle(budget);
  RecordOp({}, {});
}

void ShadowVld::RunGovernedBurst(common::Duration budget, uint32_t target_empty_tracks) {
  vld_->RunGovernedBurst(budget, target_empty_tracks);
  RecordOp({}, {});
}

common::Status ShadowVld::PumpDestage(common::Duration budget) {
  if (stage_ == nullptr) {
    return common::OkStatus();
  }
  RETURN_IF_ERROR(stage_->RunDestageBurst(budget).status());
  RecordOp({}, {});
  return common::OkStatus();
}

common::Status ShadowVld::DrainStage() {
  if (stage_ == nullptr) {
    return common::OkStatus();
  }
  RETURN_IF_ERROR(stage_->Drain());
  RecordOp({}, {});
  return common::OkStatus();
}

}  // namespace vlog::crashsim
