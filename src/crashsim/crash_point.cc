#include "src/crashsim/crash_point.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/rng.h"

namespace vlog::crashsim {
namespace {

// Distinct, deterministic seed per (base seed, write index).
uint64_t VariantSeed(uint64_t base, uint64_t index) { return base * 1000003ULL + index + 1; }

void CopySectors(std::vector<std::byte>& image, const WriteRecord& record, uint32_t sector_bytes,
                 uint64_t first_sector, uint64_t count) {
  const size_t offset = (record.lba + first_sector) * sector_bytes;
  assert(offset + count * sector_bytes <= image.size());
  std::memcpy(image.data() + offset, record.data.data() + first_sector * sector_bytes,
              count * sector_bytes);
}

}  // namespace

const char* CrashKindName(CrashKind kind) {
  switch (kind) {
    case CrashKind::kClean:
      return "clean";
    case CrashKind::kTornPrefix:
      return "torn-prefix";
    case CrashKind::kTornSuffix:
      return "torn-suffix";
    case CrashKind::kTornRandom:
      return "torn-random";
    case CrashKind::kCorruptTail:
      return "corrupt-tail";
  }
  return "?";
}

std::vector<CrashPoint> EnumerateCrashPoints(const WriteTrace& trace, uint32_t sector_bytes,
                                             const EnumerateOptions& options) {
  std::vector<CrashPoint> points;
  for (uint64_t n = 0; n <= trace.size(); ++n) {
    if (n == trace.size() || (options.clean_stride > 0 && n % options.clean_stride == 0)) {
      points.push_back(CrashPoint{n, CrashKind::kClean});
    }
    if (n == trace.size()) {
      break;
    }
    const uint64_t sectors = trace[n].Sectors(sector_bytes);
    if (sectors > 1 && options.torn_stride > 0 && n % options.torn_stride == 0) {
      points.push_back(CrashPoint{n, CrashKind::kTornPrefix, 1});
      if (sectors > 2) {
        points.push_back(
            CrashPoint{n, CrashKind::kTornPrefix, static_cast<uint32_t>(sectors - 1)});
      }
      points.push_back(CrashPoint{n, CrashKind::kTornSuffix, 1});
      points.push_back(
          CrashPoint{n, CrashKind::kTornRandom, 0, VariantSeed(options.seed, n)});
    }
    if (options.corrupt_stride > 0 && n % options.corrupt_stride == 0) {
      points.push_back(
          CrashPoint{n, CrashKind::kCorruptTail, 0, VariantSeed(options.seed, n)});
    }
  }
  return points;
}

void ApplyCrashedWrite(std::vector<std::byte>& image, const WriteRecord& record,
                       uint32_t sector_bytes, const CrashPoint& point) {
  const uint64_t sectors = record.Sectors(sector_bytes);
  switch (point.kind) {
    case CrashKind::kClean:
      break;
    case CrashKind::kTornPrefix: {
      const uint64_t keep = std::min<uint64_t>(point.keep_sectors, sectors);
      CopySectors(image, record, sector_bytes, 0, keep);
      break;
    }
    case CrashKind::kTornSuffix: {
      const uint64_t keep = std::min<uint64_t>(point.keep_sectors, sectors);
      CopySectors(image, record, sector_bytes, sectors - keep, keep);
      break;
    }
    case CrashKind::kTornRandom: {
      common::Rng rng(point.seed);
      for (uint64_t s = 0; s < sectors; ++s) {
        if (rng.Chance(0.5)) {
          CopySectors(image, record, sector_bytes, s, 1);
        }
      }
      break;
    }
    case CrashKind::kCorruptTail: {
      CopySectors(image, record, sector_bytes, 0, sectors);
      common::Rng rng(point.seed);
      const uint64_t flips = 1 + rng.Below(8);
      std::byte* tail = image.data() + (record.lba + sectors - 1) * sector_bytes;
      for (uint64_t i = 0; i < flips; ++i) {
        tail[rng.Below(sector_bytes)] ^= static_cast<std::byte>(1 + rng.Below(255));
      }
      break;
    }
  }
}

}  // namespace vlog::crashsim
