#include "src/crashsim/crash_point.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/rng.h"

namespace vlog::crashsim {
namespace {

// Distinct, deterministic seed per (base seed, write index).
uint64_t VariantSeed(uint64_t base, uint64_t index) { return base * 1000003ULL + index + 1; }

void CopySectors(std::vector<std::byte>& image, const WriteRecord& record, uint32_t sector_bytes,
                 uint64_t first_sector, uint64_t count) {
  const size_t offset = (record.lba + first_sector) * sector_bytes;
  assert(offset + count * sector_bytes <= image.size());
  std::memcpy(image.data() + offset, record.data.data() + first_sector * sector_bytes,
              count * sector_bytes);
}

}  // namespace

const char* CrashKindName(CrashKind kind) {
  switch (kind) {
    case CrashKind::kClean:
      return "clean";
    case CrashKind::kTornPrefix:
      return "torn-prefix";
    case CrashKind::kTornSuffix:
      return "torn-suffix";
    case CrashKind::kTornRandom:
      return "torn-random";
    case CrashKind::kCorruptTail:
      return "corrupt-tail";
    case CrashKind::kReorder:
      return "reorder";
  }
  return "?";
}

std::vector<CrashPoint> EnumerateCrashPoints(const WriteTrace& trace, uint32_t sector_bytes,
                                             const EnumerateOptions& options) {
  std::vector<CrashPoint> points;
  for (uint64_t n = 0; n <= trace.size(); ++n) {
    if (n == trace.size() || (options.clean_stride > 0 && n % options.clean_stride == 0)) {
      points.push_back(CrashPoint{n, CrashKind::kClean});
    }
    if (n == trace.size()) {
      break;
    }
    const uint64_t sectors = trace[n].Sectors(sector_bytes);
    if (sectors > 1 && options.torn_stride > 0 && n % options.torn_stride == 0) {
      points.push_back(CrashPoint{n, CrashKind::kTornPrefix, 1});
      if (sectors > 2) {
        points.push_back(
            CrashPoint{n, CrashKind::kTornPrefix, static_cast<uint32_t>(sectors - 1)});
      }
      points.push_back(CrashPoint{n, CrashKind::kTornSuffix, 1});
      points.push_back(
          CrashPoint{n, CrashKind::kTornRandom, 0, VariantSeed(options.seed, n)});
    }
    if (options.corrupt_stride > 0 && n % options.corrupt_stride == 0) {
      points.push_back(
          CrashPoint{n, CrashKind::kCorruptTail, 0, VariantSeed(options.seed, n)});
    }
  }
  return points;
}

std::vector<CrashPoint> EnumerateReorderPoints(const WriteTrace& trace,
                                               const ReorderOptions& options) {
  std::vector<CrashPoint> points;
  if (!trace.write_back()) {
    return points;
  }
  // Epoch boundaries: recording start, every barrier, end of trace.
  std::vector<uint64_t> bounds;
  bounds.push_back(0);
  for (const uint64_t b : trace.barriers()) {
    if (b != bounds.back()) {
      bounds.push_back(b);
    }
  }
  if (trace.size() != bounds.back()) {
    bounds.push_back(trace.size());
  }

  uint64_t point_counter = 0;
  for (size_t e = 0; e + 1 < bounds.size(); ++e) {
    const uint64_t begin = bounds[e];
    const uint64_t end = bounds[e + 1];
    // Durable in-window writes (FUA) persist regardless; volatile ones form the reorder window.
    std::vector<uint64_t> durables;
    std::vector<uint64_t> window;
    for (uint64_t i = begin; i < end; ++i) {
      (trace[i].durable ? durables : window).push_back(i);
    }

    auto emit = [&](std::vector<uint64_t> order, uint64_t seed) {
      CrashPoint p;
      p.writes_applied = begin;
      p.kind = CrashKind::kReorder;
      p.seed = seed;
      p.epoch_end = end;
      p.extra = durables;
      p.extra.insert(p.extra.end(), order.begin(), order.end());
      points.push_back(std::move(p));
      ++point_counter;
    };

    const uint64_t n = window.size();
    if (n <= options.exhaustive_window) {
      // Every ordered subset: choose members by bitmask, then permute each choice.
      for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
        std::vector<uint64_t> subset;
        for (uint64_t i = 0; i < n; ++i) {
          if (mask & (1ULL << i)) {
            subset.push_back(window[i]);
          }
        }
        std::sort(subset.begin(), subset.end());
        do {
          emit(subset, VariantSeed(options.seed, point_counter));
        } while (std::next_permutation(subset.begin(), subset.end()));
      }
    } else {
      for (uint64_t s = 0; s < options.samples_per_epoch; ++s) {
        const uint64_t seed = VariantSeed(options.seed, point_counter);
        common::Rng rng(seed);
        const uint64_t k = rng.Below(n + 1);
        // Partial Fisher-Yates: the first k entries become a uniform k-permutation.
        std::vector<uint64_t> pool = window;
        for (uint64_t i = 0; i < k; ++i) {
          std::swap(pool[i], pool[i + rng.Below(n - i)]);
        }
        pool.resize(k);
        emit(std::move(pool), seed);
      }
    }
  }
  return points;
}

void ApplyCrashedWrite(std::vector<std::byte>& image, const WriteRecord& record,
                       uint32_t sector_bytes, const CrashPoint& point) {
  const uint64_t sectors = record.Sectors(sector_bytes);
  switch (point.kind) {
    case CrashKind::kClean:
    case CrashKind::kReorder:  // Materialized by the sweep via point.extra, not here.
      break;
    case CrashKind::kTornPrefix: {
      const uint64_t keep = std::min<uint64_t>(point.keep_sectors, sectors);
      CopySectors(image, record, sector_bytes, 0, keep);
      break;
    }
    case CrashKind::kTornSuffix: {
      const uint64_t keep = std::min<uint64_t>(point.keep_sectors, sectors);
      CopySectors(image, record, sector_bytes, sectors - keep, keep);
      break;
    }
    case CrashKind::kTornRandom: {
      common::Rng rng(point.seed);
      for (uint64_t s = 0; s < sectors; ++s) {
        if (rng.Chance(0.5)) {
          CopySectors(image, record, sector_bytes, s, 1);
        }
      }
      break;
    }
    case CrashKind::kCorruptTail: {
      CopySectors(image, record, sector_bytes, 0, sectors);
      common::Rng rng(point.seed);
      const uint64_t flips = 1 + rng.Below(8);
      std::byte* tail = image.data() + (record.lba + sectors - 1) * sector_bytes;
      for (uint64_t i = 0; i < flips; ++i) {
        tail[rng.Below(sector_bytes)] ^= static_cast<std::byte>(1 + rng.Below(255));
      }
      break;
    }
  }
}

}  // namespace vlog::crashsim
