#include "src/crashsim/nvm_trace.h"

#include <cstring>

namespace vlog::crashsim {

void NvmTrace::Append(uint64_t offset, std::span<const std::byte> data, uint64_t disk_writes) {
  NvmWriteRecord record;
  record.offset = offset;
  record.data.assign(data.begin(), data.end());
  record.disk_writes = disk_writes;
  records_.push_back(std::move(record));
}

void ApplyNvmWrite(std::vector<std::byte>& image, const NvmWriteRecord& record) {
  std::memcpy(image.data() + record.offset, record.data.data(), record.data.size());
}

}  // namespace vlog::crashsim
