// The recorded NVM write history for staged crash sweeps. Each record is one acknowledged
// NvmDevice::WriteBytes, tagged with the disk write-trace length at the moment it happened, so
// a sweep can reconstruct the exact NVM image at any disk crash cut: NVM is non-volatile, so
// the image at disk cut N is the base plus every NVM write tagged <= N.
//
// Torn-tail NVM states are NOT recorded — they are synthesized by the sweep, which reverts a
// line-aligned suffix of the final append to its pre-write bytes (the memory controller
// persists whole cache lines in order, so that is the only physically admissible tear).
#ifndef SRC_CRASHSIM_NVM_TRACE_H_
#define SRC_CRASHSIM_NVM_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace vlog::crashsim {

struct NvmWriteRecord {
  uint64_t offset = 0;
  std::vector<std::byte> data;
  // Disk write-trace length when this NVM write was acknowledged. An NVM write tagged T
  // happened before disk write #T was issued, so it is persisted at every crash cut >= T —
  // the same fold rule the op shadow uses for end_writes.
  uint64_t disk_writes = 0;
};

class NvmTrace {
 public:
  void set_base(std::vector<std::byte> base) { base_ = std::move(base); }
  const std::vector<std::byte>& base() const { return base_; }

  void Append(uint64_t offset, std::span<const std::byte> data, uint64_t disk_writes);

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const NvmWriteRecord& operator[](size_t i) const { return records_[i]; }

 private:
  std::vector<std::byte> base_;
  std::vector<NvmWriteRecord> records_;
};

// Applies one record to a reconstructed NVM image.
void ApplyNvmWrite(std::vector<std::byte>& image, const NvmWriteRecord& record);

}  // namespace vlog::crashsim

#endif  // SRC_CRASHSIM_NVM_TRACE_H_
