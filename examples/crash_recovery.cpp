// Recovery-cost anatomy: the three recovery paths of the virtual log.
//
// 1. Parked tail (clean shutdown): traverse only the live map sectors — milliseconds.
// 2. Crash without a park: full-disk scan for cryptographically signed map sectors.
// 3. Crash after a checkpoint: scan still needed, but the log replay is bounded; with a park,
//    recovery reads just the checkpoint and the short log tail.
// The paper's §3.2 design makes (1) the common case precisely so (2) stays rare.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

using namespace vlog;

namespace {

struct RecoveryCost {
  double ms;
  uint64_t sectors;
  bool scan;
};

RecoveryCost Recover(simdisk::SimDisk& raw, common::Clock& clock) {
  core::Vld vld(&raw);
  const common::Time t0 = clock.Now();
  auto info = vld.Recover();
  if (!info.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", info.status().ToString().c_str());
    std::exit(1);
  }
  return {common::ToMilliseconds(clock.Now() - t0), info->log_sectors_read, info->used_scan};
}

}  // namespace

int main() {
  common::Clock clock;
  simdisk::SimDisk raw(simdisk::Truncated(simdisk::SeagateSt19101(), 11), &clock);

  // Build up a working set: thousands of committed writes.
  {
    core::Vld vld(&raw);
    if (!vld.Format().ok()) {
      return 1;
    }
    common::Rng rng(9);
    std::vector<std::byte> block(4096, std::byte{1});
    for (int i = 0; i < 3000; ++i) {
      if (!vld.Write(rng.Below(vld.logical_blocks()) * 8, block).ok()) {
        return 1;
      }
    }
    if (!vld.Park().ok()) {
      return 1;
    }
  }
  std::printf("after 3000 committed 4 KB writes on a 23 MB VLD:\n\n");
  std::printf("%-38s %10s %12s %8s\n", "scenario", "time (ms)", "sectors", "scan?");

  // 1. Clean shutdown: the parked tail bootstraps traversal.
  auto parked = Recover(raw, clock);
  std::printf("%-38s %10.2f %12llu %8s\n", "parked tail (clean shutdown)", parked.ms,
              static_cast<unsigned long long>(parked.sectors), parked.scan ? "yes" : "no");

  // 2. Crash: the previous recovery cleared the park record, so this one must scan.
  auto crash = Recover(raw, clock);
  std::printf("%-38s %10.2f %12llu %8s\n", "crash (no park): signed-sector scan", crash.ms,
              static_cast<unsigned long long>(crash.sectors), crash.scan ? "yes" : "no");

  // 3. Checkpoint + a little more work + park: recovery is checkpoint + short log tail.
  {
    core::Vld vld(&raw);
    if (!vld.Recover().ok()) {
      return 1;
    }
    if (!vld.Checkpoint().ok()) {
      return 1;
    }
    std::vector<std::byte> block(4096, std::byte{2});
    for (int i = 0; i < 10; ++i) {
      if (!vld.Write(static_cast<simdisk::Lba>(i) * 8, block).ok()) {
        return 1;
      }
    }
    if (!vld.Park().ok()) {
      return 1;
    }
  }
  auto ckpt = Recover(raw, clock);
  std::printf("%-38s %10.2f %12llu %8s\n", "checkpoint + 10 writes + park", ckpt.ms,
              static_cast<unsigned long long>(ckpt.sectors), ckpt.scan ? "yes" : "no");

  std::printf("\nspeedup of parked over scan recovery: %.0fx\n", crash.ms / parked.ms);
  std::printf("(Mime scanned free segments to recover its map; the parked tail plus the\n"
              " backward tree makes normal recovery proportional to the live map instead.)\n");
  return 0;
}
