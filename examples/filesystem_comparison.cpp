// Runs one mixed workload (a mail-server-like mix of small file churn and synchronous
// appends — the kind of load the paper's introduction motivates) across all five storage
// stacks in this repository and prints the simulated time each needed:
//   UFS/regular, UFS/VLD, LFS/regular, LFS/VLD (Figure 5's four), and VLFS (§3.3).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/fs/file_system.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/host_model.h"
#include "src/simdisk/sim_disk.h"
#include "src/vlfs/vlfs.h"
#include "src/workload/platform.h"

using namespace vlog;

namespace {

// A mail-spool-ish mix: create a message file, append to a mailbox synchronously (the MTA's
// durability point), occasionally read and delete messages.
common::Status RunMailMix(fs::FileSystem& fs) {
  RETURN_IF_ERROR(fs.Create("/mbox"));
  std::vector<std::string> queue;
  uint64_t mbox_size = 0;
  std::vector<std::byte> msg(2048, std::byte{0x6d});
  std::vector<std::byte> out(2048);
  for (int i = 0; i < 400; ++i) {
    const std::string file = "/msg" + std::to_string(i);
    RETURN_IF_ERROR(fs.Create(file));
    RETURN_IF_ERROR(fs.Write(file, 0, msg, fs::WritePolicy::kSync));
    queue.push_back(file);
    // The mailbox append must be durable before the MTA acknowledges.
    RETURN_IF_ERROR(fs.Write("/mbox", mbox_size, msg, fs::WritePolicy::kSync));
    mbox_size += msg.size();
    if (queue.size() > 32) {
      const std::string victim = queue.front();
      queue.erase(queue.begin());
      RETURN_IF_ERROR(fs.Read(victim, 0, out).status());
      RETURN_IF_ERROR(fs.Remove(victim));
    }
  }
  return fs.Sync();
}

}  // namespace

int main() {
  std::printf("Mail-mix workload (400 messages, synchronous mailbox appends), ST19101 disk\n\n");
  std::printf("%-16s %14s %16s\n", "stack", "elapsed (s)", "vs UFS/regular");

  double baseline = 0;
  using workload::DiskKind;
  using workload::FsKind;
  struct Case {
    const char* label;
    FsKind fs;
    DiskKind disk;
  };
  const Case cases[] = {
      {"UFS/regular", FsKind::kUfs, DiskKind::kRegular},
      {"UFS/VLD", FsKind::kUfs, DiskKind::kVld},
      {"LFS/regular", FsKind::kLfs, DiskKind::kRegular},
      {"LFS/VLD", FsKind::kLfs, DiskKind::kVld},
  };
  for (const Case& c : cases) {
    workload::PlatformConfig config;
    config.fs_kind = c.fs;
    config.disk_kind = c.disk;
    workload::Platform platform(config);
    if (!platform.Format().ok()) {
      return 1;
    }
    const common::Time t0 = platform.clock().Now();
    if (!RunMailMix(platform.fs()).ok()) {
      std::fprintf(stderr, "%s failed\n", c.label);
      return 1;
    }
    const double elapsed = common::ToSeconds(platform.clock().Now() - t0);
    if (baseline == 0) {
      baseline = elapsed;
    }
    std::printf("%-16s %14.2f %15.1fx\n", c.label, elapsed, baseline / elapsed);
  }

  // VLFS: the §3.3 design, running against the same disk model.
  {
    common::Clock clock;
    simdisk::SimDisk raw(simdisk::Truncated(simdisk::SeagateSt19101(), 11), &clock);
    simdisk::HostModel host(simdisk::SparcStation10(), &clock);
    vlfs::Vlfs fs(&raw, &host);
    if (!fs.Format().ok()) {
      return 1;
    }
    const common::Time t0 = clock.Now();
    if (!RunMailMix(fs).ok()) {
      std::fprintf(stderr, "VLFS failed\n");
      return 1;
    }
    const double elapsed = common::ToSeconds(clock.Now() - t0);
    std::printf("%-16s %14.2f %15.1fx   (the paper's unimplemented design)\n", "VLFS",
                elapsed, baseline / elapsed);
  }
  std::printf("\nLFS buffers everything (its syncs force partial segments); the VLD gives the\n"
              "unmodified UFS eager writes; VLFS combines both ideas inside the disk.\n");
  return 0;
}
