// Quickstart: a Virtual Log Disk in ~60 lines.
//
// Builds a simulated Seagate ST19101, layers a VLD on it, and shows the core properties:
// synchronous 4 KB writes at a fraction of a rotation, atomic multi-extent commits, and
// recovery after a crash without any scan when the tail was parked.
#include <cstdio>
#include <vector>

#include "src/common/time.h"
#include "src/core/vld.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

using namespace vlog;

int main() {
  // A shared virtual clock: every disk operation advances it; nothing sleeps.
  common::Clock clock;
  simdisk::SimDisk raw(simdisk::Truncated(simdisk::SeagateSt19101(), 11), &clock);
  core::Vld vld(&raw);
  if (!vld.Format().ok()) {
    std::fprintf(stderr, "format failed\n");
    return 1;
  }
  std::printf("VLD ready: %llu logical 4 KB blocks on a %.1f MB disk\n",
              static_cast<unsigned long long>(vld.logical_blocks()),
              static_cast<double>(raw.geometry().CapacityBytes()) / 1e6);

  // Synchronous small writes: each returns with the data (and its map entry) on the platter.
  std::vector<std::byte> block(4096, std::byte{0x42});
  const common::Time t0 = clock.Now();
  for (int i = 0; i < 100; ++i) {
    if (!vld.Write(static_cast<simdisk::Lba>(i) * 8, block).ok()) {
      return 1;
    }
  }
  std::printf("100 synchronous 4 KB writes: %.3f ms each (half a rotation alone would be %.1f ms)\n",
              common::ToMilliseconds(clock.Now() - t0) / 100,
              common::ToMilliseconds(raw.params().RotationPeriod() / 2));

  // Atomic multi-extent commit: both blocks or neither, guaranteed by the virtual log.
  std::vector<std::byte> a(4096, std::byte{0xAA}), b(4096, std::byte{0xBB});
  std::vector<core::Vld::AtomicWrite> txn;
  txn.push_back({0, a});
  txn.push_back({40000, b});
  if (!vld.WriteAtomic(txn).ok()) {
    return 1;
  }
  std::printf("atomic two-extent commit done\n");

  // Power down cleanly: the firmware parks the log tail in the landing zone...
  if (!vld.Park().ok()) {
    return 1;
  }
  core::Vld after_reboot(&raw);
  auto info = after_reboot.Recover();
  if (!info.ok()) {
    return 1;
  }
  std::printf("recovery after clean shutdown: %llu log sectors read, scan=%s\n",
              static_cast<unsigned long long>(info->log_sectors_read),
              info->used_scan ? "yes" : "no");

  // ...or crash without parking: recovery falls back to scanning for signed map sectors.
  core::Vld after_crash(&raw);
  info = after_crash.Recover();
  if (!info.ok()) {
    return 1;
  }
  std::vector<std::byte> check(4096);
  if (!after_crash.Read(40000, check).ok() || check != b) {
    std::fprintf(stderr, "data lost!\n");
    return 1;
  }
  std::printf("recovery after crash: %llu sectors examined, scan=%s, data intact\n",
              static_cast<unsigned long long>(info->log_sectors_read),
              info->used_scan ? "yes" : "no");
  return 0;
}
