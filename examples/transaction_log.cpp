// A write-ahead-log-free transactional record store on the VLD.
//
// The paper's motivation (§1): databases and persistent stores pay dearly for small
// synchronous writes, and bolt on write-ahead logs or NVRAM to cope. With a VLD, a multi-block
// commit is a single atomic operation — this example builds a tiny bank-ledger store whose
// transfers update two account pages atomically, then injects a power cut mid-commit and shows
// that recovery never observes a half-applied transfer.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

using namespace vlog;

namespace {

constexpr uint32_t kAccounts = 64;
constexpr uint64_t kInitialBalance = 1000;

// One account per 4 KB page: balance plus a version counter.
std::vector<std::byte> AccountPage(uint64_t balance, uint64_t version) {
  std::vector<std::byte> page(4096);
  common::StoreLe<uint64_t>(page, 0, balance);
  common::StoreLe<uint64_t>(page, 8, version);
  return page;
}

uint64_t BalanceOf(const std::vector<std::byte>& page) {
  return common::LoadLe<uint64_t>(page, 0);
}

simdisk::Lba PageLba(uint32_t account) { return static_cast<simdisk::Lba>(account) * 8; }

}  // namespace

int main() {
  common::Clock clock;
  simdisk::SimDisk raw(simdisk::Truncated(simdisk::SeagateSt19101(), 4), &clock);
  auto vld = std::make_unique<core::Vld>(&raw);
  if (!vld->Format().ok()) {
    return 1;
  }

  // Initialize the ledger.
  for (uint32_t a = 0; a < kAccounts; ++a) {
    if (!vld->Write(PageLba(a), AccountPage(kInitialBalance, 0)).ok()) {
      return 1;
    }
  }
  std::printf("ledger initialized: %u accounts x %llu\n", kAccounts,
              static_cast<unsigned long long>(kInitialBalance));

  // Run transfers; each is one atomic two-page commit. Inject a power cut at a random point of
  // a random transfer and verify the invariant (total balance) after recovery — repeatedly.
  common::Rng rng(2026);
  int crashes_survived = 0;
  for (int round = 0; round < 20; ++round) {
    for (int t = 0; t < 25; ++t) {
      const uint32_t from = static_cast<uint32_t>(rng.Below(kAccounts));
      uint32_t to = static_cast<uint32_t>(rng.Below(kAccounts));
      if (to == from) {
        to = (to + 1) % kAccounts;
      }
      std::vector<std::byte> from_page(4096), to_page(4096);
      if (!vld->Read(PageLba(from), from_page).ok() || !vld->Read(PageLba(to), to_page).ok()) {
        return 1;
      }
      const uint64_t amount = 1 + rng.Below(100);
      if (BalanceOf(from_page) < amount) {
        continue;
      }
      const auto new_from = AccountPage(BalanceOf(from_page) - amount, round * 100 + t);
      const auto new_to = AccountPage(BalanceOf(to_page) + amount, round * 100 + t);
      std::vector<core::Vld::AtomicWrite> txn;
      txn.push_back({PageLba(from), new_from});
      txn.push_back({PageLba(to), new_to});

      const bool inject = t == 24;  // Crash during the last transfer of each round.
      if (inject) {
        raw.SetWriteFailureAfter(rng.Below(4));  // Die 0-3 writes into the commit.
      }
      const auto status = vld->WriteAtomic(txn);
      if (inject) {
        raw.SetWriteFailureAfter(std::nullopt);
        // Reboot and recover from whatever reached the media.
        vld = std::make_unique<core::Vld>(&raw);
        if (!vld->Recover().ok()) {
          std::fprintf(stderr, "recovery failed!\n");
          return 1;
        }
        uint64_t total = 0;
        std::vector<std::byte> page(4096);
        for (uint32_t a = 0; a < kAccounts; ++a) {
          if (!vld->Read(PageLba(a), page).ok()) {
            return 1;
          }
          total += BalanceOf(page);
        }
        if (total != kAccounts * kInitialBalance) {
          std::fprintf(stderr, "INVARIANT BROKEN after crash: total=%llu\n",
                       static_cast<unsigned long long>(total));
          return 1;
        }
        ++crashes_survived;
      } else if (!status.ok()) {
        std::fprintf(stderr, "transfer failed: %s\n", status.ToString().c_str());
        return 1;
      }
    }
  }
  std::printf("500 atomic transfers executed; %d injected power cuts; ledger invariant held "
              "every time\n", crashes_survived);
  std::printf("no write-ahead log, no NVRAM — the virtual log *is* the commit mechanism\n");
  return 0;
}
