# Empty compiler generated dependencies file for bench_fig1_locate.
# This may be replaced when dependencies are built.
