file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_locate.dir/bench_fig1_locate.cpp.o"
  "CMakeFiles/bench_fig1_locate.dir/bench_fig1_locate.cpp.o.d"
  "bench_fig1_locate"
  "bench_fig1_locate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_locate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
