# Empty dependencies file for bench_ablation_compactor.
# This may be replaced when dependencies are built.
