file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_compactor.dir/bench_ablation_compactor.cpp.o"
  "CMakeFiles/bench_ablation_compactor.dir/bench_ablation_compactor.cpp.o.d"
  "bench_ablation_compactor"
  "bench_ablation_compactor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_compactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
