file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_disks.dir/bench_table1_disks.cpp.o"
  "CMakeFiles/bench_table1_disks.dir/bench_table1_disks.cpp.o.d"
  "bench_table1_disks"
  "bench_table1_disks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_disks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
