# Empty dependencies file for bench_fig11_vld_idle.
# This may be replaced when dependencies are built.
