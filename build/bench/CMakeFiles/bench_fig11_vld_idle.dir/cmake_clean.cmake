file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_vld_idle.dir/bench_fig11_vld_idle.cpp.o"
  "CMakeFiles/bench_fig11_vld_idle.dir/bench_fig11_vld_idle.cpp.o.d"
  "bench_fig11_vld_idle"
  "bench_fig11_vld_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vld_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
