# Empty compiler generated dependencies file for bench_table2_fig9_trends.
# This may be replaced when dependencies are built.
