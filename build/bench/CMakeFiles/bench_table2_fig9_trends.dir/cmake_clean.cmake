file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_fig9_trends.dir/bench_table2_fig9_trends.cpp.o"
  "CMakeFiles/bench_table2_fig9_trends.dir/bench_table2_fig9_trends.cpp.o.d"
  "bench_table2_fig9_trends"
  "bench_table2_fig9_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_fig9_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
