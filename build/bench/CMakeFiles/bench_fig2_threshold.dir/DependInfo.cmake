
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_threshold.cpp" "bench/CMakeFiles/bench_fig2_threshold.dir/bench_fig2_threshold.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2_threshold.dir/bench_fig2_threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/vlog_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/vlog_models.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vlog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ufs/CMakeFiles/vlog_ufs.dir/DependInfo.cmake"
  "/root/repo/build/src/lfs/CMakeFiles/vlog_lfs.dir/DependInfo.cmake"
  "/root/repo/build/src/vlfs/CMakeFiles/vlog_vlfs.dir/DependInfo.cmake"
  "/root/repo/build/src/simdisk/CMakeFiles/vlog_simdisk.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vlog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
