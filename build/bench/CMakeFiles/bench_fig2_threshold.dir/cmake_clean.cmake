file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_threshold.dir/bench_fig2_threshold.cpp.o"
  "CMakeFiles/bench_fig2_threshold.dir/bench_fig2_threshold.cpp.o.d"
  "bench_fig2_threshold"
  "bench_fig2_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
