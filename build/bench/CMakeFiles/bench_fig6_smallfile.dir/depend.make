# Empty dependencies file for bench_fig6_smallfile.
# This may be replaced when dependencies are built.
