file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_smallfile.dir/bench_fig6_smallfile.cpp.o"
  "CMakeFiles/bench_fig6_smallfile.dir/bench_fig6_smallfile.cpp.o.d"
  "bench_fig6_smallfile"
  "bench_fig6_smallfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_smallfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
