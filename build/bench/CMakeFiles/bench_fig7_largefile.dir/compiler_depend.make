# Empty compiler generated dependencies file for bench_fig7_largefile.
# This may be replaced when dependencies are built.
