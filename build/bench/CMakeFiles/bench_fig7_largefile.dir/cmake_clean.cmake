file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_largefile.dir/bench_fig7_largefile.cpp.o"
  "CMakeFiles/bench_fig7_largefile.dir/bench_fig7_largefile.cpp.o.d"
  "bench_fig7_largefile"
  "bench_fig7_largefile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_largefile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
