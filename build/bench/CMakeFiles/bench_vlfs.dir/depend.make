# Empty dependencies file for bench_vlfs.
# This may be replaced when dependencies are built.
