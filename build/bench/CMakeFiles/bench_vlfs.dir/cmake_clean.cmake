file(REMOVE_RECURSE
  "CMakeFiles/bench_vlfs.dir/bench_vlfs.cpp.o"
  "CMakeFiles/bench_vlfs.dir/bench_vlfs.cpp.o.d"
  "bench_vlfs"
  "bench_vlfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vlfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
