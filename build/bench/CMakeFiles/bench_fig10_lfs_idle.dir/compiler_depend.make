# Empty compiler generated dependencies file for bench_fig10_lfs_idle.
# This may be replaced when dependencies are built.
