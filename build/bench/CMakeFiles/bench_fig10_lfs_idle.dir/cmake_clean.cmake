file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_lfs_idle.dir/bench_fig10_lfs_idle.cpp.o"
  "CMakeFiles/bench_fig10_lfs_idle.dir/bench_fig10_lfs_idle.cpp.o.d"
  "bench_fig10_lfs_idle"
  "bench_fig10_lfs_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_lfs_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
