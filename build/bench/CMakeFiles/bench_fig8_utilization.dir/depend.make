# Empty dependencies file for bench_fig8_utilization.
# This may be replaced when dependencies are built.
