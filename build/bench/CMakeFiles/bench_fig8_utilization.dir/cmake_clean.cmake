file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_utilization.dir/bench_fig8_utilization.cpp.o"
  "CMakeFiles/bench_fig8_utilization.dir/bench_fig8_utilization.cpp.o.d"
  "bench_fig8_utilization"
  "bench_fig8_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
