# Empty compiler generated dependencies file for bench_ablation_blocksize.
# This may be replaced when dependencies are built.
