file(REMOVE_RECURSE
  "CMakeFiles/transaction_log.dir/transaction_log.cpp.o"
  "CMakeFiles/transaction_log.dir/transaction_log.cpp.o.d"
  "transaction_log"
  "transaction_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transaction_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
