# Empty compiler generated dependencies file for transaction_log.
# This may be replaced when dependencies are built.
