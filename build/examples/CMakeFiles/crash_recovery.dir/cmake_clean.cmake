file(REMOVE_RECURSE
  "CMakeFiles/crash_recovery.dir/crash_recovery.cpp.o"
  "CMakeFiles/crash_recovery.dir/crash_recovery.cpp.o.d"
  "crash_recovery"
  "crash_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
