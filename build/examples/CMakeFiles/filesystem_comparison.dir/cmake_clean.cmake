file(REMOVE_RECURSE
  "CMakeFiles/filesystem_comparison.dir/filesystem_comparison.cpp.o"
  "CMakeFiles/filesystem_comparison.dir/filesystem_comparison.cpp.o.d"
  "filesystem_comparison"
  "filesystem_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filesystem_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
