# Empty dependencies file for filesystem_comparison.
# This may be replaced when dependencies are built.
