# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/simdisk_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/map_sector_test[1]_include.cmake")
include("/root/repo/build/tests/free_space_test[1]_include.cmake")
include("/root/repo/build/tests/eager_allocator_test[1]_include.cmake")
include("/root/repo/build/tests/virtual_log_test[1]_include.cmake")
include("/root/repo/build/tests/vld_test[1]_include.cmake")
include("/root/repo/build/tests/ufs_test[1]_include.cmake")
include("/root/repo/build/tests/lfs_test[1]_include.cmake")
include("/root/repo/build/tests/vlfs_test[1]_include.cmake")
include("/root/repo/build/tests/fs_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/compactor_test[1]_include.cmake")
include("/root/repo/build/tests/vld_param_test[1]_include.cmake")
