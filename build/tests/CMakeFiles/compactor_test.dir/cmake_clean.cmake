file(REMOVE_RECURSE
  "CMakeFiles/compactor_test.dir/compactor_test.cc.o"
  "CMakeFiles/compactor_test.dir/compactor_test.cc.o.d"
  "compactor_test"
  "compactor_test.pdb"
  "compactor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compactor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
