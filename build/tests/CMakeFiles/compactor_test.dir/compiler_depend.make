# Empty compiler generated dependencies file for compactor_test.
# This may be replaced when dependencies are built.
