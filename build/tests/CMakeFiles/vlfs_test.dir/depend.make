# Empty dependencies file for vlfs_test.
# This may be replaced when dependencies are built.
