file(REMOVE_RECURSE
  "CMakeFiles/vlfs_test.dir/vlfs_test.cc.o"
  "CMakeFiles/vlfs_test.dir/vlfs_test.cc.o.d"
  "vlfs_test"
  "vlfs_test.pdb"
  "vlfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
