# Empty compiler generated dependencies file for simdisk_test.
# This may be replaced when dependencies are built.
