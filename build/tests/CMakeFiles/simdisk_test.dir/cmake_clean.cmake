file(REMOVE_RECURSE
  "CMakeFiles/simdisk_test.dir/simdisk_test.cc.o"
  "CMakeFiles/simdisk_test.dir/simdisk_test.cc.o.d"
  "simdisk_test"
  "simdisk_test.pdb"
  "simdisk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdisk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
