file(REMOVE_RECURSE
  "CMakeFiles/virtual_log_test.dir/virtual_log_test.cc.o"
  "CMakeFiles/virtual_log_test.dir/virtual_log_test.cc.o.d"
  "virtual_log_test"
  "virtual_log_test.pdb"
  "virtual_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
