# Empty dependencies file for virtual_log_test.
# This may be replaced when dependencies are built.
