# Empty dependencies file for vld_param_test.
# This may be replaced when dependencies are built.
