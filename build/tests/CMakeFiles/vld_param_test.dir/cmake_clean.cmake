file(REMOVE_RECURSE
  "CMakeFiles/vld_param_test.dir/vld_param_test.cc.o"
  "CMakeFiles/vld_param_test.dir/vld_param_test.cc.o.d"
  "vld_param_test"
  "vld_param_test.pdb"
  "vld_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vld_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
