file(REMOVE_RECURSE
  "CMakeFiles/fs_conformance_test.dir/fs_conformance_test.cc.o"
  "CMakeFiles/fs_conformance_test.dir/fs_conformance_test.cc.o.d"
  "fs_conformance_test"
  "fs_conformance_test.pdb"
  "fs_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
