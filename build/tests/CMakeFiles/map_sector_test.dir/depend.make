# Empty dependencies file for map_sector_test.
# This may be replaced when dependencies are built.
