file(REMOVE_RECURSE
  "CMakeFiles/map_sector_test.dir/map_sector_test.cc.o"
  "CMakeFiles/map_sector_test.dir/map_sector_test.cc.o.d"
  "map_sector_test"
  "map_sector_test.pdb"
  "map_sector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_sector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
