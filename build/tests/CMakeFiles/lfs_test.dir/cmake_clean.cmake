file(REMOVE_RECURSE
  "CMakeFiles/lfs_test.dir/lfs_test.cc.o"
  "CMakeFiles/lfs_test.dir/lfs_test.cc.o.d"
  "lfs_test"
  "lfs_test.pdb"
  "lfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
