# Empty compiler generated dependencies file for lfs_test.
# This may be replaced when dependencies are built.
