# Empty compiler generated dependencies file for eager_allocator_test.
# This may be replaced when dependencies are built.
