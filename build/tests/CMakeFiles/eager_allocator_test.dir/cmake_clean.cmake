file(REMOVE_RECURSE
  "CMakeFiles/eager_allocator_test.dir/eager_allocator_test.cc.o"
  "CMakeFiles/eager_allocator_test.dir/eager_allocator_test.cc.o.d"
  "eager_allocator_test"
  "eager_allocator_test.pdb"
  "eager_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eager_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
