# Empty compiler generated dependencies file for vld_test.
# This may be replaced when dependencies are built.
