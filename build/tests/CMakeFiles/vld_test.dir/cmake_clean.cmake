file(REMOVE_RECURSE
  "CMakeFiles/vld_test.dir/vld_test.cc.o"
  "CMakeFiles/vld_test.dir/vld_test.cc.o.d"
  "vld_test"
  "vld_test.pdb"
  "vld_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
