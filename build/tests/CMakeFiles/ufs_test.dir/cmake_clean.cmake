file(REMOVE_RECURSE
  "CMakeFiles/ufs_test.dir/ufs_test.cc.o"
  "CMakeFiles/ufs_test.dir/ufs_test.cc.o.d"
  "ufs_test"
  "ufs_test.pdb"
  "ufs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ufs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
