# Empty dependencies file for ufs_test.
# This may be replaced when dependencies are built.
