file(REMOVE_RECURSE
  "CMakeFiles/vlog_common.dir/crc32.cc.o"
  "CMakeFiles/vlog_common.dir/crc32.cc.o.d"
  "CMakeFiles/vlog_common.dir/status.cc.o"
  "CMakeFiles/vlog_common.dir/status.cc.o.d"
  "libvlog_common.a"
  "libvlog_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlog_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
