# Empty dependencies file for vlog_common.
# This may be replaced when dependencies are built.
