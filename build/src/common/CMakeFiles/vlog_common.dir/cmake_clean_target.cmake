file(REMOVE_RECURSE
  "libvlog_common.a"
)
