# Empty compiler generated dependencies file for vlog_models.
# This may be replaced when dependencies are built.
