file(REMOVE_RECURSE
  "libvlog_models.a"
)
