file(REMOVE_RECURSE
  "CMakeFiles/vlog_models.dir/analytic.cc.o"
  "CMakeFiles/vlog_models.dir/analytic.cc.o.d"
  "CMakeFiles/vlog_models.dir/track_sim.cc.o"
  "CMakeFiles/vlog_models.dir/track_sim.cc.o.d"
  "libvlog_models.a"
  "libvlog_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlog_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
