file(REMOVE_RECURSE
  "libvlog_lfs.a"
)
