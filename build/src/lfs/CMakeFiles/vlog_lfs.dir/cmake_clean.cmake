file(REMOVE_RECURSE
  "CMakeFiles/vlog_lfs.dir/log_disk.cc.o"
  "CMakeFiles/vlog_lfs.dir/log_disk.cc.o.d"
  "CMakeFiles/vlog_lfs.dir/simple_fs.cc.o"
  "CMakeFiles/vlog_lfs.dir/simple_fs.cc.o.d"
  "libvlog_lfs.a"
  "libvlog_lfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlog_lfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
