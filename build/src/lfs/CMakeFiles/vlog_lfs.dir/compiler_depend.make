# Empty compiler generated dependencies file for vlog_lfs.
# This may be replaced when dependencies are built.
