# Empty compiler generated dependencies file for vlog_vlfs.
# This may be replaced when dependencies are built.
