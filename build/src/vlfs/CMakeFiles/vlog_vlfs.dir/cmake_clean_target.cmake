file(REMOVE_RECURSE
  "libvlog_vlfs.a"
)
