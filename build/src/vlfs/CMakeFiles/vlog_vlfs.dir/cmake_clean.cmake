file(REMOVE_RECURSE
  "CMakeFiles/vlog_vlfs.dir/vlfs.cc.o"
  "CMakeFiles/vlog_vlfs.dir/vlfs.cc.o.d"
  "libvlog_vlfs.a"
  "libvlog_vlfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlog_vlfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
