
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ufs/layout.cc" "src/ufs/CMakeFiles/vlog_ufs.dir/layout.cc.o" "gcc" "src/ufs/CMakeFiles/vlog_ufs.dir/layout.cc.o.d"
  "/root/repo/src/ufs/ufs.cc" "src/ufs/CMakeFiles/vlog_ufs.dir/ufs.cc.o" "gcc" "src/ufs/CMakeFiles/vlog_ufs.dir/ufs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simdisk/CMakeFiles/vlog_simdisk.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vlog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
