file(REMOVE_RECURSE
  "libvlog_ufs.a"
)
