# Empty dependencies file for vlog_ufs.
# This may be replaced when dependencies are built.
