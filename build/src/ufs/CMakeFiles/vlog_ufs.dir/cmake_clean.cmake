file(REMOVE_RECURSE
  "CMakeFiles/vlog_ufs.dir/layout.cc.o"
  "CMakeFiles/vlog_ufs.dir/layout.cc.o.d"
  "CMakeFiles/vlog_ufs.dir/ufs.cc.o"
  "CMakeFiles/vlog_ufs.dir/ufs.cc.o.d"
  "libvlog_ufs.a"
  "libvlog_ufs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlog_ufs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
