file(REMOVE_RECURSE
  "libvlog_core.a"
)
