file(REMOVE_RECURSE
  "CMakeFiles/vlog_core.dir/compactor.cc.o"
  "CMakeFiles/vlog_core.dir/compactor.cc.o.d"
  "CMakeFiles/vlog_core.dir/eager_allocator.cc.o"
  "CMakeFiles/vlog_core.dir/eager_allocator.cc.o.d"
  "CMakeFiles/vlog_core.dir/free_space.cc.o"
  "CMakeFiles/vlog_core.dir/free_space.cc.o.d"
  "CMakeFiles/vlog_core.dir/map_sector.cc.o"
  "CMakeFiles/vlog_core.dir/map_sector.cc.o.d"
  "CMakeFiles/vlog_core.dir/virtual_log.cc.o"
  "CMakeFiles/vlog_core.dir/virtual_log.cc.o.d"
  "CMakeFiles/vlog_core.dir/vld.cc.o"
  "CMakeFiles/vlog_core.dir/vld.cc.o.d"
  "libvlog_core.a"
  "libvlog_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlog_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
