# Empty compiler generated dependencies file for vlog_core.
# This may be replaced when dependencies are built.
