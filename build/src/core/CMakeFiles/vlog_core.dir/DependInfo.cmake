
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compactor.cc" "src/core/CMakeFiles/vlog_core.dir/compactor.cc.o" "gcc" "src/core/CMakeFiles/vlog_core.dir/compactor.cc.o.d"
  "/root/repo/src/core/eager_allocator.cc" "src/core/CMakeFiles/vlog_core.dir/eager_allocator.cc.o" "gcc" "src/core/CMakeFiles/vlog_core.dir/eager_allocator.cc.o.d"
  "/root/repo/src/core/free_space.cc" "src/core/CMakeFiles/vlog_core.dir/free_space.cc.o" "gcc" "src/core/CMakeFiles/vlog_core.dir/free_space.cc.o.d"
  "/root/repo/src/core/map_sector.cc" "src/core/CMakeFiles/vlog_core.dir/map_sector.cc.o" "gcc" "src/core/CMakeFiles/vlog_core.dir/map_sector.cc.o.d"
  "/root/repo/src/core/virtual_log.cc" "src/core/CMakeFiles/vlog_core.dir/virtual_log.cc.o" "gcc" "src/core/CMakeFiles/vlog_core.dir/virtual_log.cc.o.d"
  "/root/repo/src/core/vld.cc" "src/core/CMakeFiles/vlog_core.dir/vld.cc.o" "gcc" "src/core/CMakeFiles/vlog_core.dir/vld.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simdisk/CMakeFiles/vlog_simdisk.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vlog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
