# CMake generated Testfile for 
# Source directory: /root/repo/src/simdisk
# Build directory: /root/repo/build/src/simdisk
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
