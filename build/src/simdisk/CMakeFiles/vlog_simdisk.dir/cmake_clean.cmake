file(REMOVE_RECURSE
  "CMakeFiles/vlog_simdisk.dir/disk_params.cc.o"
  "CMakeFiles/vlog_simdisk.dir/disk_params.cc.o.d"
  "CMakeFiles/vlog_simdisk.dir/sim_disk.cc.o"
  "CMakeFiles/vlog_simdisk.dir/sim_disk.cc.o.d"
  "libvlog_simdisk.a"
  "libvlog_simdisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlog_simdisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
