# Empty dependencies file for vlog_simdisk.
# This may be replaced when dependencies are built.
