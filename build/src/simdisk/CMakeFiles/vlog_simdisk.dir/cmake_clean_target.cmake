file(REMOVE_RECURSE
  "libvlog_simdisk.a"
)
