file(REMOVE_RECURSE
  "libvlog_workload.a"
)
