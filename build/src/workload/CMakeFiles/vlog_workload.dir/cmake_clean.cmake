file(REMOVE_RECURSE
  "CMakeFiles/vlog_workload.dir/benchmarks.cc.o"
  "CMakeFiles/vlog_workload.dir/benchmarks.cc.o.d"
  "CMakeFiles/vlog_workload.dir/platform.cc.o"
  "CMakeFiles/vlog_workload.dir/platform.cc.o.d"
  "libvlog_workload.a"
  "libvlog_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlog_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
