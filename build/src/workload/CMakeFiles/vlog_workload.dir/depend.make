# Empty dependencies file for vlog_workload.
# This may be replaced when dependencies are built.
