#!/usr/bin/env bash
# Local CI: configure, build, and run the full test suite under both presets (default and
# asan-ubsan), mirroring .github/workflows/ci.yml. Usage: scripts/check.sh [preset ...]
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-ubsan)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
for preset in "${presets[@]}"; do
  echo "=== preset: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j"${jobs}"
  ctest --preset "${preset}" -j"${jobs}"
done

# Bench smoke: a short queue-depth sweep whose acceptance gates (depth-1 == sync, monotone
# IOPS, >= 2x at depth 16, breakdown sums to latency, the open-loop leg's timeline gates:
# >= 1 closed window, an SLO breach with recovery, exact window-merge, byte-identical rerun,
# and the long-haul governed-compaction gates: steady-state fires, free-space floor holds,
# breaches contained to the declared burst, governor-off control spirals) act as an
# end-to-end regression check, emitting the unified vlog-bench/1 JSON alongside plus the
# windowed vlog-timeline/1 artifacts (BENCH_queue_depth.timeline.json and the long-haul
# pair BENCH_queue_depth.longhaul{,_off}.timeline.json).
if [ -x build/bench/bench_queue_depth ]; then
  echo "=== bench smoke: queue_depth ==="
  ./build/bench/bench_queue_depth --smoke --json=BENCH_queue_depth.json
fi

# NVM staging smoke: the three-way sync-write comparison (eager-only vs NVM-over-naive vs
# NVM-over-eager) whose gates require the staged sync p99 far below the unstaged eager p99,
# every small write absorbed by the stage, no overflow drains under the duty cycle, and the
# exact breakdown identity with the nvm component attributed only on the staged legs.
if [ -x build/bench/bench_queue_depth ]; then
  echo "=== bench smoke: queue_depth --nvm ==="
  ./build/bench/bench_queue_depth --nvm --smoke --json=BENCH_queue_depth_nvm.json
fi

# Staged crash sweep: the kNvmStagedWrites scenario through the NVM-staged VldCrashSim, which
# replays the crash-state matrix {NVM intact, NVM torn-tail} x every disk crash point. Zero
# violations required; the ctest suite already sweeps all other scenarios staged.
if [ -x build/tests/crashsim_test ]; then
  echo "=== staged crash sweep ==="
  ./build/tests/crashsim_test --gtest_filter='NvmStagedSweepTest.*'
fi

# Array smoke: striped N=1..8 scaling with the N=1-equals-bare-VLD identity, monotone-IOPS,
# and mirrored degraded-read payload gates.
if [ -x build/bench/bench_array ]; then
  echo "=== bench smoke: array ==="
  ./build/bench/bench_array --smoke --json=BENCH_array.json
fi

# Engine smoke: end-to-end wall-clock throughput over the four hot legs (deep-queue mixed
# R/W, striped array, crash sweep, governed open-loop compaction) with ops/wall-second
# floors. A gate failure means an engine
# performance regression; the bench prints the offending vlog-bench/1 leg and its measured
# rate before exiting nonzero, and we stop the whole check right there.
if [ -x build/bench/bench_engine ]; then
  echo "=== bench smoke: engine ==="
  if ! ./build/bench/bench_engine --smoke --json=BENCH_engine.json; then
    echo "FAIL: engine throughput gate regressed." >&2
    echo "The offending vlog-bench/1 metric (leg + measured ops/wall-s + floor) is printed" >&2
    echo "in the FATAL line above; full rates are in BENCH_engine.json (rows[].label," >&2
    echo "rows[].extra.ops_per_wall_s). Profile the named leg before re-running." >&2
    exit 1
  fi
fi
