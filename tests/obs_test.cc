// Tracing subsystem tests: span mechanics, cross-layer propagation through the queued VLD
// engine, the exact latency-decomposition identity, byte-level trace determinism, and the
// zero-overhead-when-disabled guarantee (attaching a tracer never moves the virtual clock).
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace vlog {
namespace {

using obs::EventType;
using obs::Layer;
using obs::SpanScope;
using obs::TraceRecorder;

simdisk::DiskParams TestDisk() { return simdisk::Truncated(simdisk::Hp97560(), 24); }

// --- TraceRecorder mechanics -------------------------------------------------------------

TEST(TraceRecorderTest, ChargedEventsBecomeBreakdownAndQueueingIsResidual) {
  common::Clock clock;
  TraceRecorder tracer(&clock);
  const uint64_t id = tracer.BeginSpan(Layer::kVld, 100, 8);
  clock.Advance(1000);
  tracer.Charge(EventType::kSeek, Layer::kDisk, 1000);
  clock.Advance(500);
  tracer.Charge(EventType::kRotation, Layer::kDisk, 500);
  clock.Advance(2500);  // Un-charged time: becomes the queueing residual.
  clock.Advance(300);
  tracer.Charge(EventType::kMediaXfer, Layer::kDisk, 300);
  tracer.EndSpan(id);

  const TraceRecorder::Span* span = tracer.span(id);
  ASSERT_NE(span, nullptr);
  EXPECT_FALSE(span->open);
  EXPECT_EQ(span->Latency(), 4300);
  EXPECT_EQ(span->breakdown.seek, 1000);
  EXPECT_EQ(span->breakdown.rotation, 500);
  EXPECT_EQ(span->breakdown.transfer, 300);
  EXPECT_EQ(span->breakdown.queueing, 2500);
  EXPECT_EQ(span->breakdown.Total(), span->Latency());
  EXPECT_EQ(tracer.completed_spans(), 1u);
  EXPECT_EQ(tracer.latency_hist().Sum(), 4300);
  EXPECT_EQ(tracer.queueing_hist().Sum(), 2500);
}

TEST(TraceRecorderTest, SpanScopeRootsThenInherits) {
  common::Clock clock;
  TraceRecorder tracer(&clock);
  {
    SpanScope outer(&tracer, Layer::kFs, 1);
    EXPECT_EQ(tracer.current_span(), outer.id());
    {
      // An inner layer must inherit the caller's span, not open a second one.
      SpanScope inner(&tracer, Layer::kVld, 2);
      EXPECT_EQ(inner.id(), outer.id());
      EXPECT_EQ(tracer.current_span(), outer.id());
    }
    EXPECT_EQ(tracer.current_span(), outer.id());  // Inner exit must not end the span.
    EXPECT_TRUE(tracer.span(outer.id())->open);
  }
  EXPECT_EQ(tracer.current_span(), 0u);
  EXPECT_EQ(tracer.spans().size(), 1u);
  EXPECT_FALSE(tracer.spans().front().open);
}

TEST(TraceRecorderTest, NullTracerSpanScopeIsNoOp) {
  SpanScope scope(nullptr, Layer::kVld, 1, 2);
  EXPECT_EQ(scope.id(), 0u);
}

TEST(TraceRecorderTest, RingOverflowKeepsNewestAndCountsDropped) {
  common::Clock clock;
  TraceRecorder tracer(&clock, /*event_capacity=*/8);
  for (uint64_t i = 0; i < 20; ++i) {
    clock.Advance(1);
    tracer.Annotate(EventType::kMapAppend, Layer::kVlog, i);
  }
  EXPECT_EQ(tracer.event_count(), 8u);
  EXPECT_EQ(tracer.dropped_events(), 12u);
  const std::vector<obs::TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);  // Chronological after wraparound.
  }
  EXPECT_EQ(events.back().a, 19u);  // Newest retained.
  EXPECT_EQ(events.front().a, 12u);
}

TEST(TraceRecorderTest, PublishToRegistryExportsHistograms) {
  common::Clock clock;
  TraceRecorder tracer(&clock);
  const uint64_t id = tracer.BeginSpan(Layer::kVld);
  clock.Advance(777);
  tracer.Charge(EventType::kSeek, Layer::kDisk, 777);
  tracer.EndSpan(id);
  obs::MetricsRegistry registry;
  tracer.PublishTo(registry, "req");
  EXPECT_EQ(registry.counters().at("req.completed"), 1u);
  EXPECT_EQ(registry.histograms().at("req.latency_ns").Sum(), 777);
  EXPECT_EQ(registry.histograms().at("req.seek_ns").Sum(), 777);
  const std::string json = registry.Json();
  EXPECT_NE(json.find("\"req.completed\":1"), std::string::npos) << json;
}

// --- MetricsRegistry gauge sampling -------------------------------------------------------

TEST(MetricsRegistryTest, SamplePinsGaugeValuesUntilCleared) {
  obs::MetricsRegistry registry;
  uint64_t live = 10;
  registry.RegisterGauge("depth", [&] { return live; });
  registry.Sample();  // Pins 10.
  live = 99;
  EXPECT_NE(registry.Json().find("\"depth\":10"), std::string::npos) << registry.Json();
  registry.ClearSample();  // Back to reading the live closure.
  EXPECT_NE(registry.Json().find("\"depth\":99"), std::string::npos) << registry.Json();
  // Re-registering a gauge drops its stale pin: the new source must win immediately.
  registry.Sample();
  registry.RegisterGauge("depth", [] { return uint64_t{7}; });
  EXPECT_NE(registry.Json().find("\"depth\":7"), std::string::npos) << registry.Json();
}

// --- Cross-layer propagation through the queued VLD engine --------------------------------

struct QueuedRun {
  common::Time final_time = 0;
  std::string trace_json;
  std::vector<core::Vld::QueuedCompletion> completions;
  uint64_t completed_spans = 0;
  common::Duration latency_sum = 0;
  common::Duration breakdown_total = 0;
  common::Duration queueing_sum = 0;
  std::vector<obs::TraceEvent> events;
};

// `rounds` rounds of `depth` seeded random 4 KB updates through SubmitWrite/FlushQueue, with
// or without a tracer attached.
QueuedRun RunQueued(uint32_t depth, int rounds, bool traced) {
  common::Clock clock;
  simdisk::SimDisk disk(TestDisk(), &clock);
  TraceRecorder tracer(&clock);
  if (traced) {
    disk.set_tracer(&tracer);
  }
  core::Vld vld(&disk, core::VldConfig{.queue_depth = 32});
  EXPECT_TRUE(vld.Format().ok());
  common::Rng rng(42);
  const uint32_t blocks = vld.logical_blocks() / 2;
  std::vector<std::byte> payload(4096, std::byte{0x7});
  QueuedRun run;
  for (int round = 0; round < rounds; ++round) {
    for (uint32_t i = 0; i < depth; ++i) {
      EXPECT_TRUE(
          vld.SubmitWrite(static_cast<simdisk::Lba>(rng.Below(blocks)) * 8, payload).ok());
    }
    auto flushed = vld.FlushQueue();
    EXPECT_TRUE(flushed.ok());
    for (const core::Vld::QueuedCompletion& c : *flushed) {
      run.completions.push_back(c);
    }
  }
  run.final_time = clock.Now();
  if (traced) {
    run.trace_json = tracer.TraceJson();
    run.completed_spans = tracer.completed_spans();
    run.latency_sum = tracer.latency_hist().Sum();
    run.breakdown_total = tracer.totals().Total();
    run.queueing_sum = tracer.totals().queueing;
    run.events = tracer.Events();
  }
  return run;
}

common::Time RunSync(int writes, bool traced) {
  common::Clock clock;
  simdisk::SimDisk disk(TestDisk(), &clock);
  TraceRecorder tracer(&clock);
  if (traced) {
    disk.set_tracer(&tracer);
  }
  core::Vld vld(&disk, core::VldConfig{.queue_depth = 32});
  EXPECT_TRUE(vld.Format().ok());
  common::Rng rng(42);
  const uint32_t blocks = vld.logical_blocks() / 2;
  std::vector<std::byte> payload(4096, std::byte{0x7});
  for (int i = 0; i < writes; ++i) {
    EXPECT_TRUE(vld.Write(static_cast<simdisk::Lba>(rng.Below(blocks)) * 8, payload).ok());
  }
  return clock.Now();
}

TEST(SpanPropagationTest, OneSpanPerQueuedWriteSharingOneGroupCommit) {
  const QueuedRun run = RunQueued(/*depth=*/6, /*rounds=*/3, /*traced=*/true);
  // Every queued write got its own span, completed by FlushQueue.
  EXPECT_EQ(run.completed_spans, 18u);
  ASSERT_EQ(run.completions.size(), 18u);
  for (const core::Vld::QueuedCompletion& c : run.completions) {
    EXPECT_NE(c.span_id, 0u);
    EXPECT_GE(c.QueueDelay(), 0);
  }
  // All six spans of one round are distinct (no request inherited a sibling's span).
  for (size_t i = 1; i < 6; ++i) {
    EXPECT_NE(run.completions[i].span_id, run.completions[0].span_id);
  }
  // The batch's map entries committed as one shared group commit per round: a marker event on
  // span 0 (it belongs to the whole batch, not any single request) with a = batch size.
  int group_commits = 0;
  for (const obs::TraceEvent& e : run.events) {
    if (e.type == EventType::kGroupCommit) {
      ++group_commits;
      EXPECT_EQ(e.span_id, 0u);
      EXPECT_EQ(e.a, 6u);
      EXPECT_GT(e.b, 0u);
    }
  }
  EXPECT_EQ(group_commits, 3);
  // Each span carries disk-layer events (the request's own media work was attributed to it).
  int media_on_spans = 0;
  for (const obs::TraceEvent& e : run.events) {
    if (e.type == EventType::kMediaXfer && e.span_id != 0) {
      ++media_on_spans;
    }
  }
  EXPECT_GE(media_on_spans, 18);
}

TEST(SpanPropagationTest, BreakdownComponentsSumToLatencyExactly) {
  const QueuedRun run = RunQueued(/*depth=*/8, /*rounds=*/4, /*traced=*/true);
  // The central identity: summed per-component time (including the queueing residual) equals
  // the summed request latency, exactly, in integral nanoseconds.
  EXPECT_EQ(run.breakdown_total, run.latency_sum);
  EXPECT_GT(run.latency_sum, 0);
}

// --- Determinism --------------------------------------------------------------------------

TEST(TraceDeterminismTest, SameSeedRunsProduceByteIdenticalTraces) {
  const QueuedRun a = RunQueued(/*depth=*/4, /*rounds=*/5, /*traced=*/true);
  const QueuedRun b = RunQueued(/*depth=*/4, /*rounds=*/5, /*traced=*/true);
  EXPECT_EQ(a.final_time, b.final_time);
  ASSERT_FALSE(a.trace_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);  // Byte-identical, not just equivalent.
  EXPECT_NE(a.trace_json.find("\"schema\":\"vlog-trace/1\""), std::string::npos);
}

// --- Zero overhead when disabled ----------------------------------------------------------

TEST(TracingOverheadTest, AttachingTracerNeverMovesTheClock) {
  // Queued path: same workload with and without a tracer ends at the same sim-time.
  const QueuedRun traced = RunQueued(/*depth=*/4, /*rounds=*/4, /*traced=*/true);
  const QueuedRun bare = RunQueued(/*depth=*/4, /*rounds=*/4, /*traced=*/false);
  EXPECT_EQ(traced.final_time, bare.final_time);
  // Sync path too.
  EXPECT_EQ(RunSync(24, /*traced=*/true), RunSync(24, /*traced=*/false));
}

TEST(TracingOverheadTest, Depth1QueuedMatchesSyncWithTracerAttached) {
  // The queued engine at depth 1 must stay clock-identical to the synchronous path even while
  // traced — batch-size-1 commits are attributed to the request's own span, and tracing
  // itself charges no time.
  const QueuedRun queued = RunQueued(/*depth=*/1, /*rounds=*/16, /*traced=*/true);
  EXPECT_EQ(queued.final_time, RunSync(16, /*traced=*/false));
  // And with nothing to wait behind, every nanosecond of latency is the request's own work:
  // the queueing residual is exactly zero. (QueueDelay() is still nonzero — it measures
  // submit-to-dispatch, which includes the request's own controller time.)
  EXPECT_EQ(queued.queueing_sum, 0);
  EXPECT_EQ(queued.breakdown_total, queued.latency_sum);
}

}  // namespace
}  // namespace vlog
