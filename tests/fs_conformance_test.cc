// Parameterized conformance suite: one behavioural contract, five storage stacks.
//
// Every fs::FileSystem implementation — UFS and LFS on both the regular disk and the VLD
// (Figure 5's four configurations) plus VLFS — must satisfy the same functional contract.
// This is the guarantee behind the paper's headline deployment story: the VLD changes the
// performance of an unmodified file system, never its semantics.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/crashsim/crash_point.h"
#include "src/crashsim/write_trace.h"
#include "src/lfs/log_disk.h"
#include "src/lfs/simple_fs.h"
#include "src/nvm/nvm_stage.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/host_model.h"
#include "src/simdisk/nvm_device.h"
#include "src/simdisk/sim_disk.h"
#include "src/ufs/ufs.h"
#include "src/vlfs/vlfs.h"
#include "src/workload/platform.h"

namespace vlog {
namespace {

std::vector<std::byte> Pattern(size_t n, uint32_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed * 131 + i * 17));
  }
  return v;
}

// The staged rows mount the same file systems over an NVM staging tier fronting the VLD: the
// stage absorbs small sync writes at NVM latency and destages them later, so an acknowledged
// (and even a Sync'd) write may exist ONLY in the NVM log — a persistence domain, not a
// volatile cache. The conformance contract must be oblivious to that difference. The VLFS has
// no separate staged row: it mounts directly on the disk geometry and is itself the
// file-level virtual log, so its own commit path already provides what the stage adds to
// UFS/LFS — its rows below are the VLFS entry of the staged matrix.
enum class Stack { kUfsRegular, kUfsVld, kLfsRegular, kLfsVld, kVlfs, kUfsVldStaged,
                   kLfsVldStaged };

const char* StackName(Stack stack) {
  switch (stack) {
    case Stack::kUfsRegular:
      return "UfsRegular";
    case Stack::kUfsVld:
      return "UfsVld";
    case Stack::kLfsRegular:
      return "LfsRegular";
    case Stack::kLfsVld:
      return "LfsVld";
    case Stack::kVlfs:
      return "Vlfs";
    case Stack::kUfsVldStaged:
      return "UfsVldStaged";
    case Stack::kLfsVldStaged:
      return "LfsVldStaged";
  }
  return "?";
}

// Owns whichever stack the parameter selects and exposes it as fs::FileSystem.
// `cache_sectors` > 0 puts a volatile write-back cache under the whole stack.
class StackHarness {
 public:
  explicit StackHarness(Stack stack, uint64_t cache_sectors = 0) {
    if (stack == Stack::kVlfs) {
      simdisk::DiskParams params = simdisk::Truncated(simdisk::SeagateSt19101(), 6);
      params.cache.capacity_sectors = cache_sectors;
      disk_ = std::make_unique<simdisk::SimDisk>(params, &clock_);
      host_ = std::make_unique<simdisk::HostModel>(simdisk::ZeroCostHost(), &clock_);
      vlfs_ = std::make_unique<vlfs::Vlfs>(disk_.get(), host_.get());
      EXPECT_TRUE(vlfs_->Format().ok());
      fs_ = vlfs_.get();
      raw_ = disk_.get();
      return;
    }
    if (stack == Stack::kUfsVldStaged || stack == Stack::kLfsVldStaged) {
      simdisk::DiskParams params = simdisk::Truncated(simdisk::SeagateSt19101(), 6);
      params.cache.capacity_sectors = cache_sectors;
      disk_ = std::make_unique<simdisk::SimDisk>(params, &clock_);
      host_ = std::make_unique<simdisk::HostModel>(simdisk::ZeroCostHost(), &clock_);
      vld_ = std::make_unique<core::Vld>(disk_.get(), core::VldConfig{});
      EXPECT_TRUE(vld_->Format().ok());
      nvm_ = std::make_unique<simdisk::NvmDevice>(simdisk::NvmDeviceParams{}, &clock_);
      stage_ = std::make_unique<core::NvmStage>(nvm_.get(), vld_.get());
      EXPECT_TRUE(stage_->Format().ok());
      if (stack == Stack::kUfsVldStaged) {
        ufs_ = std::make_unique<ufs::Ufs>(stage_.get(), host_.get());
        EXPECT_TRUE(ufs_->Format().ok());
        fs_ = ufs_.get();
      } else {
        lld_ = std::make_unique<lfs::LogStructuredDisk>(stage_.get());
        EXPECT_TRUE(lld_->Format().ok());
        simple_fs_ = std::make_unique<lfs::SimpleFs>(lld_.get(), host_.get());
        EXPECT_TRUE(simple_fs_->Format().ok());
        fs_ = simple_fs_.get();
      }
      raw_ = disk_.get();
      return;
    }
    workload::PlatformConfig config;
    config.host_kind = workload::HostKind::kZeroCost;
    config.cylinders = 6;
    config.cache.capacity_sectors = cache_sectors;
    config.fs_kind = (stack == Stack::kUfsRegular || stack == Stack::kUfsVld)
                         ? workload::FsKind::kUfs
                         : workload::FsKind::kLfs;
    config.disk_kind = (stack == Stack::kUfsVld || stack == Stack::kLfsVld)
                           ? workload::DiskKind::kVld
                           : workload::DiskKind::kRegular;
    platform_ = std::make_unique<workload::Platform>(config);
    EXPECT_TRUE(platform_->Format().ok());
    fs_ = &platform_->fs();
    raw_ = &platform_->raw_disk();
  }

  fs::FileSystem& fs() { return *fs_; }
  simdisk::SimDisk& raw_disk() { return *raw_; }
  // Non-null only for the staged rows.
  core::NvmStage* stage() { return stage_.get(); }

 private:
  common::Clock clock_;
  std::unique_ptr<simdisk::SimDisk> disk_;
  std::unique_ptr<simdisk::HostModel> host_;
  std::unique_ptr<vlfs::Vlfs> vlfs_;
  std::unique_ptr<core::Vld> vld_;
  std::unique_ptr<simdisk::NvmDevice> nvm_;
  std::unique_ptr<core::NvmStage> stage_;
  std::unique_ptr<ufs::Ufs> ufs_;
  std::unique_ptr<lfs::LogStructuredDisk> lld_;
  std::unique_ptr<lfs::SimpleFs> simple_fs_;
  std::unique_ptr<workload::Platform> platform_;
  fs::FileSystem* fs_ = nullptr;
  simdisk::SimDisk* raw_ = nullptr;
};

class FsConformanceTest : public ::testing::TestWithParam<Stack> {
 protected:
  FsConformanceTest() : harness_(GetParam()) {}
  fs::FileSystem& fs() { return harness_.fs(); }
  StackHarness harness_;
};

TEST_P(FsConformanceTest, CreateStatRemoveLifecycle) {
  ASSERT_TRUE(fs().Create("/f").ok());
  auto info = fs().Stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 0u);
  EXPECT_FALSE(info->is_directory);
  ASSERT_TRUE(fs().Remove("/f").ok());
  EXPECT_EQ(fs().Stat("/f").status().code(), common::StatusCode::kNotFound);
  EXPECT_EQ(fs().Remove("/f").code(), common::StatusCode::kNotFound);
}

TEST_P(FsConformanceTest, DuplicateCreateRejected) {
  ASSERT_TRUE(fs().Create("/dup").ok());
  EXPECT_EQ(fs().Create("/dup").code(), common::StatusCode::kAlreadyExists);
}

TEST_P(FsConformanceTest, RelativePathsRejected) {
  EXPECT_EQ(fs().Create("nope").code(), common::StatusCode::kInvalidArgument);
}

TEST_P(FsConformanceTest, WriteReadByteExact) {
  ASSERT_TRUE(fs().Create("/f").ok());
  for (const size_t size : {1ul, 511ul, 512ul, 4095ul, 4096ul, 4097ul, 70000ul}) {
    const auto data = Pattern(size, static_cast<uint32_t>(size));
    ASSERT_TRUE(fs().Write("/f", 0, data, fs::WritePolicy::kSync).ok()) << size;
    std::vector<std::byte> out(size);
    auto n = fs().Read("/f", 0, out);
    ASSERT_TRUE(n.ok()) << size;
    ASSERT_EQ(*n, size);
    ASSERT_EQ(out, data) << size;
  }
}

TEST_P(FsConformanceTest, UnalignedOverwriteInMiddle) {
  ASSERT_TRUE(fs().Create("/f").ok());
  auto base = Pattern(20000, 1);
  ASSERT_TRUE(fs().Write("/f", 0, base, fs::WritePolicy::kAsync).ok());
  const auto patch = Pattern(3333, 2);
  ASSERT_TRUE(fs().Write("/f", 7777, patch, fs::WritePolicy::kSync).ok());
  std::memcpy(base.data() + 7777, patch.data(), patch.size());
  std::vector<std::byte> out(base.size());
  ASSERT_TRUE(fs().Read("/f", 0, out).ok());
  EXPECT_EQ(out, base);
}

TEST_P(FsConformanceTest, ReadBeyondEofIsShortOrZero) {
  ASSERT_TRUE(fs().Create("/f").ok());
  ASSERT_TRUE(fs().Write("/f", 0, Pattern(100, 3), fs::WritePolicy::kAsync).ok());
  std::vector<std::byte> out(500);
  auto n = fs().Read("/f", 60, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 40u);
  EXPECT_EQ(*fs().Read("/f", 100, out), 0u);
  EXPECT_EQ(*fs().Read("/f", 5000, out), 0u);
}

TEST_P(FsConformanceTest, AppendGrowsFile) {
  ASSERT_TRUE(fs().Create("/log").ok());
  std::vector<std::byte> all;
  for (int i = 0; i < 24; ++i) {
    const auto chunk = Pattern(1000 + i * 37, i);
    ASSERT_TRUE(fs().Write("/log", all.size(), chunk, fs::WritePolicy::kAsync).ok()) << i;
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(fs().Stat("/log")->size, all.size());
  std::vector<std::byte> out(all.size());
  ASSERT_TRUE(fs().Read("/log", 0, out).ok());
  EXPECT_EQ(out, all);
}

TEST_P(FsConformanceTest, DirectoryTreeOperations) {
  ASSERT_TRUE(fs().Mkdir("/a").ok());
  ASSERT_TRUE(fs().Mkdir("/a/b").ok());
  ASSERT_TRUE(fs().Create("/a/b/c").ok());
  ASSERT_TRUE(fs().Write("/a/b/c", 0, Pattern(5000, 4), fs::WritePolicy::kAsync).ok());
  EXPECT_TRUE(fs().Stat("/a")->is_directory);
  EXPECT_TRUE(fs().Stat("/a/b")->is_directory);
  auto names = fs().List("/a/b");
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "c");
  EXPECT_EQ(fs().Remove("/a").code(), common::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fs().Remove("/a/b/c").ok());
  ASSERT_TRUE(fs().Remove("/a/b").ok());
  ASSERT_TRUE(fs().Remove("/a").ok());
}

TEST_P(FsConformanceTest, DataSurvivesSyncAndCacheDrop) {
  ASSERT_TRUE(fs().Create("/durable").ok());
  const auto data = Pattern(123456, 5);
  ASSERT_TRUE(fs().Write("/durable", 0, data, fs::WritePolicy::kAsync).ok());
  ASSERT_TRUE(fs().Sync().ok());
  ASSERT_TRUE(fs().DropCaches().ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(fs().Read("/durable", 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_P(FsConformanceTest, ManyFilesChurn) {
  common::Rng rng(static_cast<uint64_t>(GetParam()) + 99);
  std::vector<std::pair<std::string, std::vector<std::byte>>> live;
  for (int op = 0; op < 300; ++op) {
    if (live.size() < 40 || rng.Chance(0.6)) {
      const std::string path = "/churn" + std::to_string(op);
      ASSERT_TRUE(fs().Create(path).ok()) << op;
      auto data = Pattern(1 + rng.Below(9000), op);
      ASSERT_TRUE(fs().Write(path, 0, data, fs::WritePolicy::kAsync).ok()) << op;
      live.emplace_back(path, std::move(data));
    } else {
      const size_t victim = rng.Below(live.size());
      ASSERT_TRUE(fs().Remove(live[victim].first).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
  }
  ASSERT_TRUE(fs().DropCaches().ok());
  for (const auto& [path, data] : live) {
    std::vector<std::byte> out(data.size());
    auto n = fs().Read(path, 0, out);
    ASSERT_TRUE(n.ok()) << path;
    ASSERT_EQ(*n, data.size()) << path;
    ASSERT_EQ(out, data) << path;
  }
}

TEST_P(FsConformanceTest, SyncWritesInterleavedWithReads) {
  ASSERT_TRUE(fs().Create("/mix").ok());
  std::vector<std::byte> shadow(64 * 1024, std::byte{0});
  ASSERT_TRUE(fs().Write("/mix", 0, shadow, fs::WritePolicy::kSync).ok());
  common::Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 1);
  for (int i = 0; i < 120; ++i) {
    const uint64_t off = rng.Below(shadow.size() - 4096);
    const auto data = Pattern(4096, i);
    ASSERT_TRUE(fs().Write("/mix", off, data, fs::WritePolicy::kSync).ok());
    std::memcpy(shadow.data() + off, data.data(), data.size());
    const uint64_t roff = rng.Below(shadow.size() - 512);
    std::vector<std::byte> out(512);
    ASSERT_TRUE(fs().Read("/mix", roff, out).ok());
    ASSERT_TRUE(std::equal(out.begin(), out.end(), shadow.begin() + roff)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStacks, FsConformanceTest,
                         ::testing::Values(Stack::kUfsRegular, Stack::kUfsVld,
                                           Stack::kLfsRegular, Stack::kLfsVld, Stack::kVlfs,
                                           Stack::kUfsVldStaged, Stack::kLfsVldStaged),
                         [](const ::testing::TestParamInfo<Stack>& param_info) {
                           return StackName(param_info.param);
                         });

// ---------------------------------------------------------------------------
// Barrier semantics over a volatile write-back drive cache.
//
// The uniform contract across every stack: a write may be acknowledged while
// its sectors still sit in the drive's volatile cache (acked-before-sync data
// is allowed to be lost by a power cut), but once Sync() returns, no volatile
// sector remains anywhere below the file system — every sync point maps onto
// a device-level flush barrier. VLD-backed stacks and the VLFS are stricter:
// every acknowledged command is already durable.
// ---------------------------------------------------------------------------

constexpr uint64_t kCacheSectors = 4096;  // 2 MB: generous, so no pressure drains.

class CachedFsBarrierTest : public ::testing::TestWithParam<Stack> {
 protected:
  CachedFsBarrierTest() : harness_(GetParam(), kCacheSectors) {}
  fs::FileSystem& fs() { return harness_.fs(); }
  simdisk::SimDisk& disk() { return harness_.raw_disk(); }
  StackHarness harness_;
};

TEST_P(CachedFsBarrierTest, SyncDrainsEveryVolatileSector) {
  ASSERT_TRUE(fs().Create("/durable").ok());
  const auto data = Pattern(100000, 21);
  ASSERT_TRUE(fs().Write("/durable", 0, data, fs::WritePolicy::kAsync).ok());
  const auto patch = Pattern(8192, 22);
  ASSERT_TRUE(fs().Write("/durable", 4096, patch, fs::WritePolicy::kSync).ok());
  ASSERT_TRUE(fs().Sync().ok());
  EXPECT_EQ(disk().cache_dirty_sectors(), 0u)
      << "Sync must leave nothing in the volatile drive cache";
  auto expected = data;
  std::memcpy(expected.data() + 4096, patch.data(), patch.size());
  std::vector<std::byte> out(expected.size());
  ASSERT_TRUE(fs().Read("/durable", 0, out).ok());
  EXPECT_EQ(out, expected);
}

TEST_P(CachedFsBarrierTest, VldBackedAcknowledgementsAreAlreadyDurable) {
  const Stack stack = GetParam();
  if (stack == Stack::kUfsRegular || stack == Stack::kLfsRegular) {
    GTEST_SKIP() << "regular disks promise durability only at Sync";
  }
  ASSERT_TRUE(fs().Create("/acked").ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        fs().Write("/acked", i * 8192, Pattern(8192, 30 + i), fs::WritePolicy::kSync).ok());
    EXPECT_EQ(disk().cache_dirty_sectors(), 0u)
        << "an acknowledged VLD-backed sync write must already be on the media (write " << i
        << ")";
  }
}

TEST_P(CachedFsBarrierTest, AckedBeforeSyncMayRemainVolatile) {
  if (GetParam() != Stack::kUfsRegular) {
    GTEST_SKIP() << "only the in-place FFS stack writes through to the cache before Sync";
  }
  ASSERT_TRUE(fs().Create("/limbo").ok());
  ASSERT_TRUE(fs().Write("/limbo", 0, Pattern(8192, 40), fs::WritePolicy::kSync).ok());
  // The write was acknowledged, yet its sectors sit in the volatile cache: this is exactly the
  // window a crash may lose, and why the crash sweeps model destage reordering.
  EXPECT_GT(disk().cache_dirty_sectors(), 0u);
  ASSERT_TRUE(fs().Sync().ok());
  EXPECT_EQ(disk().cache_dirty_sectors(), 0u);
}

// The staged barrier-audit row: Sync's contract is "no volatile copy anywhere", NOT
// "everything on the disk media". The NVM log is a persistence domain, so staged sectors are
// allowed — required, even, for the latency story — to remain only in NVM across Sync. What
// Sync must still do is drain the volatile drive cache under any direct/destage traffic.
TEST_P(CachedFsBarrierTest, StagedSyncMayLeaveDataOnlyInNvm) {
  if (GetParam() != Stack::kUfsVldStaged && GetParam() != Stack::kLfsVldStaged) {
    GTEST_SKIP() << "only the staged rows hold acknowledged data in the NVM tier";
  }
  ASSERT_TRUE(fs().Create("/staged").ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        fs().Write("/staged", i * 4096, Pattern(4096, 60 + i), fs::WritePolicy::kSync).ok());
  }
  ASSERT_TRUE(fs().Sync().ok());
  EXPECT_EQ(disk().cache_dirty_sectors(), 0u)
      << "Sync must still drain the volatile drive cache below the stage";
  // The stage was actually exercised, and Sync did NOT force a destage: the NVM log is
  // durable, so eagerly flushing it would only burn the latency win.
  ASSERT_NE(harness_.stage(), nullptr);
  EXPECT_GT(harness_.stage()->stats().staged_writes, 0u);
  // Whatever still lives only in NVM must read back through the stack.
  std::vector<std::byte> out(4096);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fs().Read("/staged", i * 4096, out).ok());
    EXPECT_EQ(out, Pattern(4096, 60 + i)) << "chunk " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStacks, CachedFsBarrierTest,
                         ::testing::Values(Stack::kUfsRegular, Stack::kUfsVld,
                                           Stack::kLfsRegular, Stack::kLfsVld, Stack::kVlfs,
                                           Stack::kUfsVldStaged, Stack::kLfsVldStaged),
                         [](const ::testing::TestParamInfo<Stack>& param_info) {
                           return StackName(param_info.param);
                         });

// Remount-level replay: everything synced before the barrier survives EVERY admissible destage
// subset/ordering of the writes acknowledged after it.
TEST(CachedBarrierRemountTest, UfsSyncedDataSurvivesEveryTailDestageOrdering) {
  simdisk::DiskParams params = simdisk::Truncated(simdisk::SeagateSt19101(), 6);
  params.cache.capacity_sectors = kCacheSectors;
  common::Clock clock;
  simdisk::SimDisk disk(params, &clock);
  simdisk::HostModel host(simdisk::ZeroCostHost(), &clock);
  ufs::Ufs fs(&disk, &host);
  ASSERT_TRUE(fs.Format().ok());

  crashsim::WriteTrace trace;
  trace.set_base(crashsim::SnapshotMedia(disk));
  trace.set_write_back(true);
  disk.set_write_observer([&](simdisk::Lba lba, std::span<const std::byte> data, bool durable) {
    trace.Append(lba, data, durable);
  });
  disk.set_flush_observer([&] { trace.AppendBarrier(); });

  const auto kept = Pattern(3 * 8192, 41);
  ASSERT_TRUE(fs.Create("/kept").ok());
  ASSERT_TRUE(fs.Write("/kept", 0, kept, fs::WritePolicy::kSync).ok());
  ASSERT_TRUE(fs.Sync().ok());
  const uint64_t synced = trace.size();

  // Acknowledged after the barrier: a power cut may persist any subset, in any order.
  ASSERT_TRUE(fs.Create("/lost").ok());
  ASSERT_TRUE(fs.Write("/lost", 0, Pattern(2 * 8192, 42), fs::WritePolicy::kSync).ok());
  disk.set_write_observer(nullptr);
  disk.set_flush_observer(nullptr);
  ASSERT_GT(trace.size(), synced) << "tail traffic is required for this test to bite";
  EXPECT_GT(disk.cache_dirty_sectors(), 0u) << "the tail must still be volatile";

  const uint32_t sector_bytes = params.geometry.sector_bytes;
  std::vector<uint64_t> tail;
  for (uint64_t i = synced; i < trace.size(); ++i) {
    tail.push_back(i);
  }
  common::Rng rng(17);
  for (int round = 0; round < 8; ++round) {
    std::vector<std::byte> image = trace.base();
    for (uint64_t i = 0; i < synced; ++i) {
      crashsim::ApplyWrite(image, trace[i], sector_bytes);
    }
    // A uniform random k-subset of the tail, applied in uniform random order.
    std::vector<uint64_t> pool = tail;
    const uint64_t k = rng.Below(pool.size() + 1);
    for (uint64_t i = 0; i < k; ++i) {
      std::swap(pool[i], pool[i + rng.Below(pool.size() - i)]);
    }
    for (uint64_t i = 0; i < k; ++i) {
      crashsim::ApplyWrite(image, trace[pool[i]], sector_bytes);
    }

    common::Clock clock2;
    simdisk::SimDisk disk2(params, &clock2);
    disk2.PokeMedia(0, image);
    simdisk::HostModel host2(simdisk::ZeroCostHost(), &clock2);
    ufs::Ufs fs2(&disk2, &host2);
    ASSERT_TRUE(fs2.Mount().ok()) << "round " << round;
    std::vector<std::byte> out(kept.size());
    auto n = fs2.Read("/kept", 0, out);
    ASSERT_TRUE(n.ok()) << "round " << round;
    ASSERT_EQ(*n, kept.size()) << "round " << round;
    EXPECT_EQ(out, kept) << "synced file damaged by a tail destage ordering (round " << round
                         << ")";
  }
}

// The VLFS never leaves an acknowledged operation volatile: its commit barriers flush the
// cache, so the last barrier always covers every volatile record — and a remount from the
// synced cut restores exactly the synced namespace.
TEST(CachedBarrierRemountTest, VlfsAcknowledgedOpsSurviveRemountAtSyncBarrier) {
  simdisk::DiskParams params = simdisk::Truncated(simdisk::SeagateSt19101(), 6);
  params.cache.capacity_sectors = kCacheSectors;
  common::Clock clock;
  simdisk::SimDisk disk(params, &clock);
  simdisk::HostModel host(simdisk::ZeroCostHost(), &clock);
  vlfs::Vlfs fs(&disk, &host);
  ASSERT_TRUE(fs.Format().ok());

  crashsim::WriteTrace trace;
  trace.set_base(crashsim::SnapshotMedia(disk));
  trace.set_write_back(true);
  disk.set_write_observer([&](simdisk::Lba lba, std::span<const std::byte> data, bool durable) {
    trace.Append(lba, data, durable);
  });
  disk.set_flush_observer([&] { trace.AppendBarrier(); });

  const auto kept = Pattern(2 * 8192, 51);
  ASSERT_TRUE(fs.Create("/kept").ok());
  ASSERT_TRUE(fs.Write("/kept", 0, kept, fs::WritePolicy::kSync).ok());
  ASSERT_TRUE(fs.Sync().ok());
  const uint64_t synced = trace.size();
  EXPECT_EQ(disk.cache_dirty_sectors(), 0u) << "acknowledged VLFS ops are already durable";

  ASSERT_TRUE(fs.Create("/later").ok());
  ASSERT_TRUE(fs.Write("/later", 0, Pattern(8192, 52), fs::WritePolicy::kSync).ok());
  disk.set_write_observer(nullptr);
  disk.set_flush_observer(nullptr);

  // Barrier discipline: every volatile record lies at or before the last barrier.
  ASSERT_FALSE(trace.barriers().empty());
  for (uint64_t i = trace.barriers().back(); i < trace.size(); ++i) {
    EXPECT_TRUE(trace[i].durable) << "volatile record " << i << " after the last barrier";
  }

  const uint32_t sector_bytes = params.geometry.sector_bytes;
  std::vector<std::byte> image = trace.base();
  for (uint64_t i = 0; i < synced; ++i) {
    crashsim::ApplyWrite(image, trace[i], sector_bytes);
  }
  common::Clock clock2;
  simdisk::SimDisk disk2(params, &clock2);
  disk2.PokeMedia(0, image);
  simdisk::HostModel host2(simdisk::ZeroCostHost(), &clock2);
  vlfs::Vlfs fs2(&disk2, &host2);
  ASSERT_TRUE(fs2.Recover().ok());
  std::vector<std::byte> out(kept.size());
  auto n = fs2.Read("/kept", 0, out);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, kept.size());
  EXPECT_EQ(out, kept);
  EXPECT_EQ(fs2.Stat("/later").status().code(), common::StatusCode::kNotFound)
      << "/later was created after the crash cut";
}

// The staged row's remount audit: a synced file whose data still lives ONLY in the NVM log
// (never destaged to the disk) must survive a crash that loses the drive cache and the
// stage's DRAM overlay. Recovery replays the NVM log over the recovered VLD; the remounted
// file system reads the staged blocks back through the rebuilt overlay.
TEST(StagedBarrierRemountTest, UfsSyncedDataSurvivesCrashWhenNvmHoldsOnlyCopy) {
  simdisk::DiskParams params = simdisk::Truncated(simdisk::SeagateSt19101(), 6);
  params.cache.capacity_sectors = kCacheSectors;
  common::Clock clock;
  simdisk::SimDisk disk(params, &clock);
  simdisk::HostModel host(simdisk::ZeroCostHost(), &clock);
  core::Vld vld(&disk, core::VldConfig{});
  ASSERT_TRUE(vld.Format().ok());
  simdisk::NvmDevice nvm(simdisk::NvmDeviceParams{}, &clock);
  core::NvmStage stage(&nvm, &vld);
  ASSERT_TRUE(stage.Format().ok());
  ufs::Ufs fs(&stage, &host);
  ASSERT_TRUE(fs.Format().ok());
  // Quiesce the format's own staged residue so /kept's blocks are attributable.
  ASSERT_TRUE(stage.Drain().ok());

  const auto kept = Pattern(3 * 4096, 61);
  ASSERT_TRUE(fs.Create("/kept").ok());
  ASSERT_TRUE(fs.Write("/kept", 0, kept, fs::WritePolicy::kSync).ok());
  ASSERT_TRUE(fs.Sync().ok());
  ASSERT_GT(stage.staged_sectors(), 0u)
      << "the test needs the NVM log to hold the only copy of the synced data";
  EXPECT_EQ(disk.cache_dirty_sectors(), 0u);

  // Power cut: the drive cache and the stage's DRAM overlay are lost; the disk media and the
  // NVM log survive.
  const std::vector<std::byte> media = crashsim::SnapshotMedia(disk);
  std::vector<std::byte> nvm_image = nvm.Snapshot();

  common::Clock clock2;
  simdisk::SimDisk disk2(params, &clock2);
  disk2.PokeMedia(0, media);
  simdisk::HostModel host2(simdisk::ZeroCostHost(), &clock2);
  core::Vld vld2(&disk2, core::VldConfig{});
  ASSERT_TRUE(vld2.Recover().ok());
  simdisk::NvmDevice nvm2(simdisk::NvmDeviceParams{}, &clock2, std::move(nvm_image));
  core::NvmStage stage2(&nvm2, &vld2);
  auto info = stage2.Recover();
  ASSERT_TRUE(info.ok()) << info.status().message();
  EXPECT_FALSE(info->torn_tail_dropped);
  ASSERT_GT(stage2.staged_sectors(), 0u) << "recovery must rebuild the staged overlay";
  ufs::Ufs fs2(&stage2, &host2);
  ASSERT_TRUE(fs2.Mount().ok());
  std::vector<std::byte> out(kept.size());
  auto n = fs2.Read("/kept", 0, out);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, kept.size());
  EXPECT_EQ(out, kept) << "synced data lost with the stage's DRAM overlay";
}

}  // namespace
}  // namespace vlog
