#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/host_model.h"
#include "src/simdisk/sim_disk.h"
#include "src/ufs/ufs.h"

namespace vlog::ufs {
namespace {

std::vector<std::byte> Pattern(size_t n, uint32_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed * 37 + i));
  }
  return v;
}

class UfsTest : public ::testing::Test {
 protected:
  UfsTest()
      : disk_(simdisk::Truncated(simdisk::SeagateSt19101(), 3), &clock_),
        host_(simdisk::ZeroCostHost(), &clock_),
        ufs_(&disk_, &host_, UfsConfig{.blocks_per_cg = 512}) {
    EXPECT_TRUE(ufs_.Format().ok());
  }

  common::Clock clock_;
  simdisk::SimDisk disk_;
  simdisk::HostModel host_;
  Ufs ufs_;
};

TEST_F(UfsTest, CreateStatRemove) {
  ASSERT_TRUE(ufs_.Create("/hello").ok());
  auto info = ufs_.Stat("/hello");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 0u);
  EXPECT_FALSE(info->is_directory);
  ASSERT_TRUE(ufs_.Remove("/hello").ok());
  EXPECT_FALSE(ufs_.Stat("/hello").ok());
}

TEST_F(UfsTest, CreateDuplicateFails) {
  ASSERT_TRUE(ufs_.Create("/a").ok());
  EXPECT_EQ(ufs_.Create("/a").code(), common::StatusCode::kAlreadyExists);
}

TEST_F(UfsTest, WriteReadRoundTripSmall) {
  ASSERT_TRUE(ufs_.Create("/f").ok());
  const auto data = Pattern(1024, 1);
  ASSERT_TRUE(ufs_.Write("/f", 0, data, fs::WritePolicy::kAsync).ok());
  std::vector<std::byte> out(1024);
  auto n = ufs_.Read("/f", 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1024u);
  EXPECT_EQ(out, data);
  EXPECT_EQ(ufs_.Stat("/f")->size, 1024u);
}

TEST_F(UfsTest, WriteReadRoundTripLargeMultiBlock) {
  ASSERT_TRUE(ufs_.Create("/big").ok());
  const auto data = Pattern(300 * 1024, 2);  // Spans direct + indirect blocks.
  ASSERT_TRUE(ufs_.Write("/big", 0, data, fs::WritePolicy::kAsync).ok());
  ASSERT_TRUE(ufs_.Sync().ok());
  ASSERT_TRUE(ufs_.DropCaches().ok());
  std::vector<std::byte> out(data.size());
  auto n = ufs_.Read("/big", 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(out, data);
}

TEST_F(UfsTest, TailFragmentGrowthPreservesData) {
  ASSERT_TRUE(ufs_.Create("/grow").ok());
  // Grow a file 1 KB at a time through the fragment sizes and into a full block.
  std::vector<std::byte> all;
  for (uint32_t step = 0; step < 6; ++step) {
    const auto chunk = Pattern(1024, 10 + step);
    ASSERT_TRUE(ufs_.Write("/grow", all.size(), chunk, fs::WritePolicy::kSync).ok());
    all.insert(all.end(), chunk.begin(), chunk.end());
    std::vector<std::byte> out(all.size());
    auto n = ufs_.Read("/grow", 0, out);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(out, all) << "after step " << step;
  }
}

TEST_F(UfsTest, PartialReadAtEof) {
  ASSERT_TRUE(ufs_.Create("/short").ok());
  ASSERT_TRUE(ufs_.Write("/short", 0, Pattern(100, 3), fs::WritePolicy::kAsync).ok());
  std::vector<std::byte> out(1000);
  auto n = ufs_.Read("/short", 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 100u);
  EXPECT_EQ(*ufs_.Read("/short", 100, out), 0u);
}

TEST_F(UfsTest, OverwriteIsInPlace) {
  ASSERT_TRUE(ufs_.Create("/f").ok());
  ASSERT_TRUE(ufs_.Write("/f", 0, Pattern(8192, 1), fs::WritePolicy::kSync).ok());
  const uint64_t free_before = ufs_.FreeFragCount();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ufs_.Write("/f", 4096, Pattern(4096, i), fs::WritePolicy::kSync).ok());
  }
  EXPECT_EQ(ufs_.FreeFragCount(), free_before) << "update-in-place must not allocate";
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(ufs_.Read("/f", 4096, out).ok());
  EXPECT_EQ(out, Pattern(4096, 9));
}

TEST_F(UfsTest, DirectoriesNestAndList) {
  ASSERT_TRUE(ufs_.Mkdir("/dir").ok());
  ASSERT_TRUE(ufs_.Mkdir("/dir/sub").ok());
  ASSERT_TRUE(ufs_.Create("/dir/sub/file").ok());
  ASSERT_TRUE(ufs_.Write("/dir/sub/file", 0, Pattern(2048, 4), fs::WritePolicy::kAsync).ok());
  auto names = ufs_.List("/dir");
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "sub");
  EXPECT_TRUE(ufs_.Stat("/dir/sub")->is_directory);
  EXPECT_EQ(ufs_.Remove("/dir").code(), common::StatusCode::kFailedPrecondition);
}

TEST_F(UfsTest, ManySmallFilesSurviveRemount) {
  for (int i = 0; i < 200; ++i) {
    const std::string path = "/file" + std::to_string(i);
    ASSERT_TRUE(ufs_.Create(path).ok());
    ASSERT_TRUE(ufs_.Write(path, 0, Pattern(1024, i), fs::WritePolicy::kAsync).ok());
  }
  ASSERT_TRUE(ufs_.Sync().ok());
  // Remount from disk.
  Ufs again(&disk_, &host_, UfsConfig{.blocks_per_cg = 512});
  ASSERT_TRUE(again.Mount().ok());
  auto names = again.List("/");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 200u);
  std::vector<std::byte> out(1024);
  for (int i = 0; i < 200; i += 17) {
    ASSERT_TRUE(again.Read("/file" + std::to_string(i), 0, out).ok());
    EXPECT_EQ(out, Pattern(1024, i)) << i;
  }
}

TEST_F(UfsTest, RemoveFreesSpace) {
  const uint64_t free0 = ufs_.FreeFragCount();
  for (int i = 0; i < 20; ++i) {
    const std::string path = "/t" + std::to_string(i);
    ASSERT_TRUE(ufs_.Create(path).ok());
    ASSERT_TRUE(ufs_.Write(path, 0, Pattern(20000, i), fs::WritePolicy::kAsync).ok());
  }
  EXPECT_LT(ufs_.FreeFragCount(), free0);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ufs_.Remove("/t" + std::to_string(i)).ok());
  }
  // The directory may have grown; everything else must be back.
  EXPECT_GE(ufs_.FreeFragCount() + 8, free0);
}

TEST_F(UfsTest, SyncWritePersistsImmediately) {
  ASSERT_TRUE(ufs_.Create("/s").ok());
  const auto data = Pattern(4096, 5);
  ASSERT_TRUE(ufs_.Write("/s", 0, data, fs::WritePolicy::kSync).ok());
  EXPECT_GE(ufs_.stats().sync_data_writes, 1u);
  // A brand-new UFS over the same media must see the data without any Sync() call.
  Ufs again(&disk_, &host_, UfsConfig{.blocks_per_cg = 512});
  ASSERT_TRUE(again.Mount().ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(again.Read("/s", 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(UfsTest, AsyncWriteStaysInCacheUntilSync) {
  ASSERT_TRUE(ufs_.Create("/a").ok());
  const uint64_t disk_writes = disk_.stats().write_requests;
  ASSERT_TRUE(ufs_.Write("/a", 0, Pattern(4096, 6), fs::WritePolicy::kAsync).ok());
  EXPECT_EQ(disk_.stats().write_requests, disk_writes) << "async data must not hit the disk";
  ASSERT_TRUE(ufs_.Sync().ok());
  EXPECT_GT(disk_.stats().write_requests, disk_writes);
}

TEST_F(UfsTest, SequentialReadTriggersPrefetch) {
  ASSERT_TRUE(ufs_.Create("/seq").ok());
  ASSERT_TRUE(ufs_.Write("/seq", 0, Pattern(64 * 4096, 7), fs::WritePolicy::kAsync).ok());
  ASSERT_TRUE(ufs_.DropCaches().ok());
  std::vector<std::byte> out(4096);
  for (int b = 0; b < 16; ++b) {
    ASSERT_TRUE(ufs_.Read("/seq", b * 4096, out).ok());
  }
  EXPECT_GT(ufs_.stats().prefetch_reads, 0u);
}

TEST_F(UfsTest, MinfreeReserveEnforced) {
  ASSERT_TRUE(ufs_.Create("/fill").ok());
  const auto chunk = Pattern(256 * 1024, 8);
  uint64_t offset = 0;
  common::Status status = common::OkStatus();
  while (status.ok()) {
    status = ufs_.Write("/fill", offset, chunk, fs::WritePolicy::kAsync);
    offset += chunk.size();
    ASSERT_LT(offset, 64ull << 20) << "filling should stop well before 64 MB";
  }
  EXPECT_EQ(status.code(), common::StatusCode::kOutOfSpace);
  EXPECT_GT(ufs_.Utilization(), 0.80);
  EXPECT_LT(ufs_.Utilization(), 0.95) << "minfree reserve must hold space back";
}

TEST_F(UfsTest, UtilizationTracksData) {
  EXPECT_LT(ufs_.Utilization(), 0.02);
  ASSERT_TRUE(ufs_.Create("/u").ok());
  ASSERT_TRUE(ufs_.Write("/u", 0, Pattern(2 << 20, 9), fs::WritePolicy::kAsync).ok());
  EXPECT_GT(ufs_.Utilization(), 0.15);  // 2 MB of the ~4 MB data area.
}

// The headline integration check: the same UFS code runs on a VLD and gets identical
// functional behaviour (Figure 5's architecture).
TEST(UfsOnVld, FunctionalParityWithRegularDisk) {
  common::Clock clock;
  simdisk::SimDisk raw(simdisk::Truncated(simdisk::SeagateSt19101(), 3), &clock);
  core::Vld vld(&raw);
  ASSERT_TRUE(vld.Format().ok());
  simdisk::HostModel host(simdisk::ZeroCostHost(), &clock);
  Ufs ufs(&vld, &host, UfsConfig{.blocks_per_cg = 512});
  ASSERT_TRUE(ufs.Format().ok());

  common::Rng rng(11);
  std::vector<std::pair<std::string, std::vector<std::byte>>> files;
  for (int i = 0; i < 60; ++i) {
    const std::string path = "/f" + std::to_string(i);
    ASSERT_TRUE(ufs.Create(path).ok());
    auto data = Pattern(1 + rng.Below(30000), i);
    ASSERT_TRUE(ufs.Write(path, 0, data, i % 2 == 0 ? fs::WritePolicy::kSync
                                                    : fs::WritePolicy::kAsync).ok());
    files.emplace_back(path, std::move(data));
  }
  ASSERT_TRUE(ufs.Sync().ok());
  ASSERT_TRUE(ufs.DropCaches().ok());
  for (const auto& [path, data] : files) {
    std::vector<std::byte> out(data.size());
    auto n = ufs.Read(path, 0, out);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, data.size());
    ASSERT_EQ(out, data) << path;
  }
}

// Synchronous random updates on the VLD must beat the regular disk by a wide margin — the
// paper's core claim, checked here as a coarse integration property.
TEST(UfsOnVld, SyncUpdatesMuchFasterThanRegularDisk) {
  auto run = [](bool use_vld) {
    common::Clock clock;
    simdisk::SimDisk raw(simdisk::Truncated(simdisk::SeagateSt19101(), 3), &clock);
    std::unique_ptr<core::Vld> vld;
    simdisk::BlockDevice* dev = &raw;
    if (use_vld) {
      vld = std::make_unique<core::Vld>(&raw);
      EXPECT_TRUE(vld->Format().ok());
      dev = vld.get();
    }
    simdisk::HostModel host(simdisk::ZeroCostHost(), &clock);
    Ufs ufs(dev, &host, UfsConfig{.blocks_per_cg = 512});
    EXPECT_TRUE(ufs.Format().ok());
    EXPECT_TRUE(ufs.Create("/data").ok());
    std::vector<std::byte> block(4096);
    for (uint64_t b = 0; b < 512; ++b) {  // 2 MB file.
      EXPECT_TRUE(ufs.Write("/data", b * 4096, block, fs::WritePolicy::kAsync).ok());
    }
    EXPECT_TRUE(ufs.Sync().ok());
    common::Rng rng(77);
    const common::Time start = clock.Now();
    for (int i = 0; i < 200; ++i) {
      const uint64_t b = rng.Below(512);
      EXPECT_TRUE(ufs.Write("/data", b * 4096, block, fs::WritePolicy::kSync).ok());
    }
    return clock.Now() - start;
  };
  const common::Duration regular = run(false);
  const common::Duration vld = run(true);
  EXPECT_GT(static_cast<double>(regular) / static_cast<double>(vld), 3.0)
      << "regular " << common::ToMilliseconds(regular) / 200 << " ms vs VLD "
      << common::ToMilliseconds(vld) / 200 << " ms per update";
}

}  // namespace
}  // namespace vlog::ufs
